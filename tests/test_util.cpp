/**
 * @file
 * Unit tests for the utility layer: circular buffer, bit vector,
 * event wheel, histogram, free list and RNG.
 */

#include <gtest/gtest.h>

#include "src/util/bit_vector.hh"
#include "src/util/circular_buffer.hh"
#include "src/util/event_wheel.hh"
#include "src/util/free_list.hh"
#include "src/util/histogram.hh"
#include "src/util/rng.hh"

using namespace kilo;

// ---------------------------------------------------------------- Rng

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, RangeBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.range(17), 17u);
}

TEST(Rng, RangeZeroIsZero)
{
    Rng r(7);
    EXPECT_EQ(r.range(0), 0u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng r(5);
    uint64_t first = r.next();
    r.next();
    r.seed(5);
    EXPECT_EQ(r.next(), first);
}

TEST(Rng, ZeroSeedRemapped)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

// --------------------------------------------------- CircularBuffer

TEST(CircularBuffer, StartsEmpty)
{
    CircularBuffer<int> cb(4);
    EXPECT_TRUE(cb.empty());
    EXPECT_FALSE(cb.full());
    EXPECT_EQ(cb.size(), 0u);
    EXPECT_EQ(cb.capacity(), 4u);
    EXPECT_EQ(cb.space(), 4u);
}

TEST(CircularBuffer, FifoOrder)
{
    CircularBuffer<int> cb(4);
    cb.pushBack(1);
    cb.pushBack(2);
    cb.pushBack(3);
    EXPECT_EQ(cb.popFront(), 1);
    EXPECT_EQ(cb.popFront(), 2);
    EXPECT_EQ(cb.popFront(), 3);
}

TEST(CircularBuffer, FullAfterCapacityPushes)
{
    CircularBuffer<int> cb(2);
    cb.pushBack(1);
    cb.pushBack(2);
    EXPECT_TRUE(cb.full());
    EXPECT_EQ(cb.space(), 0u);
}

TEST(CircularBuffer, WrapAround)
{
    CircularBuffer<int> cb(3);
    for (int round = 0; round < 10; ++round) {
        cb.pushBack(round);
        EXPECT_EQ(cb.popFront(), round);
    }
    EXPECT_TRUE(cb.empty());
}

TEST(CircularBuffer, PopBackRemovesYoungest)
{
    CircularBuffer<int> cb(4);
    cb.pushBack(1);
    cb.pushBack(2);
    cb.pushBack(3);
    EXPECT_EQ(cb.popBack(), 3);
    EXPECT_EQ(cb.back(), 2);
    EXPECT_EQ(cb.front(), 1);
}

TEST(CircularBuffer, PositionalAccess)
{
    CircularBuffer<int> cb(4);
    cb.pushBack(10);
    cb.pushBack(20);
    cb.pushBack(30);
    cb.popFront();
    cb.pushBack(40);
    EXPECT_EQ(cb.at(0), 20);
    EXPECT_EQ(cb.at(1), 30);
    EXPECT_EQ(cb.at(2), 40);
}

TEST(CircularBuffer, ClearEmpties)
{
    CircularBuffer<int> cb(4);
    cb.pushBack(1);
    cb.pushBack(2);
    cb.clear();
    EXPECT_TRUE(cb.empty());
    cb.pushBack(9);
    EXPECT_EQ(cb.front(), 9);
}

TEST(CircularBufferDeath, OverflowPanics)
{
    CircularBuffer<int> cb(1);
    cb.pushBack(1);
    EXPECT_DEATH(cb.pushBack(2), "full");
}

TEST(CircularBufferDeath, UnderflowPanics)
{
    CircularBuffer<int> cb(1);
    EXPECT_DEATH(cb.popFront(), "empty");
}

// ------------------------------------------------------- BitVector

TEST(BitVector, StartsClear)
{
    BitVector bv(100);
    EXPECT_EQ(bv.popcount(), 0u);
    EXPECT_TRUE(bv.none());
    for (size_t i = 0; i < 100; ++i)
        EXPECT_FALSE(bv.test(i));
}

TEST(BitVector, SetAndTest)
{
    BitVector bv(64);
    bv.set(0);
    bv.set(63);
    bv.set(31);
    EXPECT_TRUE(bv.test(0));
    EXPECT_TRUE(bv.test(63));
    EXPECT_TRUE(bv.test(31));
    EXPECT_FALSE(bv.test(32));
    EXPECT_EQ(bv.popcount(), 3u);
}

TEST(BitVector, ClearBit)
{
    BitVector bv(10);
    bv.set(5);
    bv.clear(5);
    EXPECT_FALSE(bv.test(5));
    EXPECT_TRUE(bv.none());
}

TEST(BitVector, ClearAll)
{
    BitVector bv(130);
    for (size_t i = 0; i < 130; i += 7)
        bv.set(i);
    bv.clearAll();
    EXPECT_TRUE(bv.none());
}

TEST(BitVector, CrossWordBoundary)
{
    BitVector bv(130);
    bv.set(64);
    bv.set(128);
    EXPECT_TRUE(bv.test(64));
    EXPECT_TRUE(bv.test(128));
    EXPECT_EQ(bv.popcount(), 2u);
}

TEST(BitVector, CopyIsIndependent)
{
    BitVector a(16);
    a.set(3);
    BitVector b = a;
    b.set(4);
    EXPECT_FALSE(a.test(4));
    EXPECT_TRUE(b.test(3));
}

TEST(BitVectorDeath, OutOfRangePanics)
{
    BitVector bv(8);
    EXPECT_DEATH(bv.set(8), "range");
}

// ------------------------------------------------------ EventWheel

TEST(EventWheel, PopsInCycleOrder)
{
    EventWheel<int> ew;
    ew.schedule(10, 1);
    ew.schedule(5, 2);
    ew.schedule(10, 3);
    EXPECT_EQ(ew.size(), 3u);
    EXPECT_EQ(ew.nextCycle(), 5u);

    std::vector<int> out;
    EXPECT_EQ(ew.popDue(5, out), 1u);
    EXPECT_EQ(out, std::vector<int>({2}));

    out.clear();
    EXPECT_EQ(ew.popDue(10, out), 2u);
    EXPECT_EQ(out, std::vector<int>({1, 3}));
    EXPECT_TRUE(ew.empty());
}

TEST(EventWheel, PopDueNothingEarly)
{
    EventWheel<int> ew;
    ew.schedule(100, 1);
    std::vector<int> out;
    EXPECT_EQ(ew.popDue(99, out), 0u);
    EXPECT_EQ(ew.size(), 1u);
}

TEST(EventWheel, PopDueSweepsPast)
{
    EventWheel<int> ew;
    ew.schedule(3, 1);
    ew.schedule(7, 2);
    std::vector<int> out;
    EXPECT_EQ(ew.popDue(50, out), 2u);
    EXPECT_TRUE(ew.empty());
}

TEST(EventWheel, ClearDropsAll)
{
    EventWheel<int> ew;
    ew.schedule(1, 1);
    ew.schedule(2, 2);
    ew.clear();
    EXPECT_TRUE(ew.empty());
}

TEST(EventWheel, PopBelowFrontierIsNoop)
{
    EventWheel<int> ew;
    ew.schedule(20, 1);
    std::vector<int> out;
    ew.popDue(10, out); // frontier now 11
    EXPECT_TRUE(out.empty());
    // A pop below the frontier must not deliver future events early.
    EXPECT_EQ(ew.popDue(5, out), 0u);
    EXPECT_EQ(ew.size(), 1u);
    EXPECT_EQ(ew.nextCycle(), 20u);
}

TEST(EventWheel, NextCycleCorrectAfterPartialPopThenSchedule)
{
    // Regression: a schedule() arriving while the next-cycle cache
    // was invalidated (partial pop with events still pending) must
    // not mask the older pending event.
    EventWheel<int> ew;
    ew.schedule(100, 1);
    ew.schedule(110, 2);
    std::vector<int> out;
    ew.popDue(100, out); // pops 1, leaves 2@110 pending
    ew.schedule(600, 3);
    EXPECT_EQ(ew.nextCycle(), 110u);
    out.clear();
    ew.popDue(110, out);
    EXPECT_EQ(out, std::vector<int>({2}));
    EXPECT_EQ(ew.nextCycle(), 600u);
}

// ------------------------------------------------------- Histogram

TEST(Histogram, BucketsSamples)
{
    Histogram h(10, 5);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(49);
    h.sample(50); // overflow
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.overflowCount(), 1u);
}

TEST(Histogram, FractionBelow)
{
    Histogram h(10, 10);
    for (int i = 0; i < 70; ++i)
        h.sample(5);
    for (int i = 0; i < 30; ++i)
        h.sample(95);
    EXPECT_NEAR(h.fractionBelow(50), 0.7, 0.01);
    EXPECT_NEAR(h.fractionBelow(100), 1.0, 0.01);
}

TEST(Histogram, Mean)
{
    Histogram h(10, 10);
    h.sample(10);
    h.sample(20);
    h.sample(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, ResetZeroes)
{
    Histogram h(10, 4);
    h.sample(3);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucketCount(0), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, RenderContainsRows)
{
    Histogram h(10, 2);
    h.sample(1);
    std::string out = h.render();
    EXPECT_NE(out.find("0"), std::string::npos);
    EXPECT_NE(out.find("%"), std::string::npos);
}

// -------------------------------------------------------- FreeList

TEST(FreeList, AllocatesAllSlots)
{
    FreeList fl(4);
    EXPECT_EQ(fl.numFree(), 4u);
    std::vector<uint32_t> got;
    for (int i = 0; i < 4; ++i)
        got.push_back(fl.alloc());
    EXPECT_FALSE(fl.hasFree());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, std::vector<uint32_t>({0, 1, 2, 3}));
}

TEST(FreeList, ReleaseMakesAvailable)
{
    FreeList fl(2);
    uint32_t a = fl.alloc();
    fl.alloc();
    EXPECT_FALSE(fl.hasFree());
    fl.release(a);
    EXPECT_TRUE(fl.hasFree());
    EXPECT_EQ(fl.alloc(), a);
}

TEST(FreeList, NumAllocatedTracks)
{
    FreeList fl(3);
    uint32_t a = fl.alloc();
    EXPECT_EQ(fl.numAllocated(), 1u);
    fl.release(a);
    EXPECT_EQ(fl.numAllocated(), 0u);
}

TEST(FreeList, ResetRestoresAll)
{
    FreeList fl(3);
    fl.alloc();
    fl.alloc();
    fl.reset();
    EXPECT_EQ(fl.numFree(), 3u);
}

TEST(FreeListDeath, DoubleReleasePanics)
{
    FreeList fl(2);
    uint32_t a = fl.alloc();
    fl.release(a);
    EXPECT_DEATH(fl.release(a), "free");
}

TEST(FreeListDeath, EmptyAllocPanics)
{
    FreeList fl(1);
    fl.alloc();
    EXPECT_DEATH(fl.alloc(), "no free");
}
