/**
 * @file
 * Behavioural tests of the baseline out-of-order core on controlled
 * micro-workloads: throughput limits, dependence chains, memory
 * latency exposure, branch recovery and window-size effects.
 */

#include <gtest/gtest.h>

#include "src/core/ooo_core.hh"
#include "src/sim/config.hh"
#include "src/wload/synthetic.hh"
#include "test_helpers.hh"

using namespace kilo;
using namespace kilo::core;

namespace
{

CoreParams
smallCore()
{
    CoreParams p;
    p.predictor = pred::BpKind::Perfect;
    return p;
}

double
runIpc(const CoreParams &params, wload::Workload &wl,
       const mem::MemConfig &mcfg, uint64_t insts = 20000)
{
    OooCore core(params, wl, mcfg);
    core.run(5000);
    core.resetStats();
    core.run(insts);
    return core.stats().ipc();
}

} // anonymous namespace

TEST(OooCore, IndependentOpsReachFetchWidth)
{
    test::VectorWorkload wl(test::independentOps(8));
    double ipc = runIpc(smallCore(), wl, mem::MemConfig::l1Only());
    EXPECT_GT(ipc, 3.5); // 4-wide machine, no branches
}

TEST(OooCore, SerialChainIpcOne)
{
    test::VectorWorkload wl(test::serialChain());
    double ipc = runIpc(smallCore(), wl, mem::MemConfig::l1Only());
    EXPECT_NEAR(ipc, 1.0, 0.05);
}

TEST(OooCore, IntMulChainBoundByLatency)
{
    test::VectorWorkload wl({isa::makeMul(1, 1, isa::NoReg)});
    double ipc = runIpc(smallCore(), wl, mem::MemConfig::l1Only());
    EXPECT_NEAR(ipc, 1.0 / isa::opLatency(isa::OpClass::IntMul), 0.02);
}

TEST(OooCore, FpDivSerialisesOnUnpipelinedUnit)
{
    // Independent divides still share the single unpipelined unit.
    test::VectorWorkload wl({
        isa::makeFpDiv(40, 41, 42),
        isa::makeFpDiv(43, 44, 45),
    });
    double ipc = runIpc(smallCore(), wl, mem::MemConfig::l1Only());
    EXPECT_LT(ipc, 2.0 / isa::opLatency(isa::OpClass::FpDiv) + 0.05);
}

TEST(OooCore, DependentLoadExposesMemoryLatency)
{
    // Pointer chase over a large region: every load misses and the
    // chain serialises at the memory latency.
    std::vector<isa::MicroOp> ops;
    for (int i = 0; i < 16; ++i) {
        auto ld = isa::makeLoad(1, 1, 0x10000000 + uint64_t(i) * 64);
        ops.push_back(ld);
    }
    // The addresses repeat each loop, so after warm-up they hit; use
    // a huge stride region instead via distinct lines per iteration.
    test::VectorWorkload wl(ops);
    OooCore core(smallCore(), wl, mem::MemConfig::mem400());
    core.run(2000);
    // Serial dependent loads: at most one completes per L1 latency,
    // and the first pass pays full memory latency per line.
    EXPECT_LT(core.stats().ipc(), 1.0);
}

TEST(OooCore, MemoryPortsLimitLoadBandwidth)
{
    // Eight independent L1-hitting loads per loop: 2 ports cap IPC.
    std::vector<isa::MicroOp> ops;
    for (int i = 0; i < 8; ++i)
        ops.push_back(isa::makeLoad(int16_t(1 + i), isa::NoReg,
                                    0x100 + uint64_t(i) * 8));
    test::VectorWorkload wl(ops);
    double ipc = runIpc(smallCore(), wl, mem::MemConfig::l1Only());
    EXPECT_LE(ipc, 2.1);
    EXPECT_GT(ipc, 1.7);
}

TEST(OooCore, PerfectPredictionNoSquashes)
{
    std::vector<isa::MicroOp> ops = test::independentOps(6);
    ops.push_back(isa::makeBranch(1, true, 0x1000));
    test::VectorWorkload wl(ops);
    OooCore core(smallCore(), wl, mem::MemConfig::l1Only());
    core.run(10000);
    EXPECT_EQ(core.stats().squashed, 0u);
    EXPECT_EQ(core.stats().mispredicts, 0u);
}

TEST(OooCore, RandomBranchesCauseSquashes)
{
    // Alternating branch against an always-taken predictor.
    std::vector<isa::MicroOp> ops = test::independentOps(4);
    ops.push_back(isa::makeBranch(1, true, 0x1000));
    std::vector<isa::MicroOp> ops2 = test::independentOps(4);
    ops2.push_back(isa::makeBranch(1, false, 0x1000));
    std::vector<isa::MicroOp> both = ops;
    both.insert(both.end(), ops2.begin(), ops2.end());

    CoreParams p = smallCore();
    p.predictor = pred::BpKind::AlwaysTaken;
    test::VectorWorkload wl(both);
    OooCore core(p, wl, mem::MemConfig::l1Only());
    core.run(10000);
    EXPECT_GT(core.stats().mispredicts, 100u);
    EXPECT_GT(core.stats().squashed, 0u);
}

TEST(OooCore, MispredictsReduceIpc)
{
    std::vector<isa::MicroOp> ops = test::independentOps(4);
    ops.push_back(isa::makeBranch(1, true, 0x1000));
    std::vector<isa::MicroOp> ops2 = test::independentOps(4);
    ops2.push_back(isa::makeBranch(1, false, 0x1000));
    std::vector<isa::MicroOp> both = ops;
    both.insert(both.end(), ops2.begin(), ops2.end());
    test::VectorWorkload wl_bad(both), wl_good(both);

    CoreParams bad = smallCore();
    bad.predictor = pred::BpKind::AlwaysTaken;
    CoreParams good = smallCore();

    double ipc_bad = runIpc(bad, wl_bad, mem::MemConfig::l1Only());
    double ipc_good = runIpc(good, wl_good, mem::MemConfig::l1Only());
    EXPECT_GT(ipc_good, ipc_bad * 1.3);
}

TEST(OooCore, LargerWindowHidesMisses)
{
    // Independent strided misses: a big window overlaps them.
    auto make_wl = [] {
        std::vector<isa::MicroOp> ops;
        ops.push_back(isa::makeAlu(2, 2, isa::NoReg));
        for (int i = 0; i < 4; ++i)
            ops.push_back(isa::makeLoad(int16_t(8 + i), 2,
                                        uint64_t(i) * (1 << 20)));
        for (int i = 0; i < 8; ++i)
            ops.push_back(isa::makeAlu(int16_t(16 + i), isa::NoReg,
                                       isa::NoReg));
        return ops;
    };
    // Distinct addresses per iteration: patch via workload that never
    // repeats -- use the synthetic art profile instead.
    auto small_wl = wload::makeWorkload("swim");
    auto big_wl = wload::makeWorkload("swim");
    (void)make_wl;

    CoreParams small = smallCore();
    small.robSize = 32;
    small.intIqSize = 32;
    small.fpIqSize = 32;
    CoreParams big = smallCore();
    big.robSize = 1024;
    big.intIqSize = 1024;
    big.fpIqSize = 1024;
    big.lsqSize = 1024;

    double ipc_small =
        runIpc(small, *small_wl, mem::MemConfig::mem400());
    double ipc_big = runIpc(big, *big_wl, mem::MemConfig::mem400());
    EXPECT_GT(ipc_big, ipc_small * 2.0);
}

TEST(OooCore, RobSizeGatesInFlight)
{
    test::VectorWorkload wl(test::serialChain());
    CoreParams p = smallCore();
    p.robSize = 16;
    OooCore core(p, wl, mem::MemConfig::l1Only());
    core.run(1000);
    EXPECT_LE(core.robOccupancy(), 16u);
}

TEST(OooCore, InOrderSlowerThanOutOfOrder)
{
    // A stall-prone mix: L2-latency loads followed by dependent work.
    auto wl_ino = wload::makeWorkload("gzip");
    auto wl_ooo = wload::makeWorkload("gzip");
    CoreParams ino = smallCore();
    ino.predictor = pred::BpKind::Perceptron;
    ino.intPolicy = SchedPolicy::InOrder;
    ino.fpPolicy = SchedPolicy::InOrder;
    CoreParams ooo = smallCore();
    ooo.predictor = pred::BpKind::Perceptron;

    double ipc_ino = runIpc(ino, *wl_ino, mem::MemConfig::mem400());
    double ipc_ooo = runIpc(ooo, *wl_ooo, mem::MemConfig::mem400());
    EXPECT_GT(ipc_ooo, ipc_ino);
}

TEST(OooCore, StoreForwardingSatisfiesLoad)
{
    std::vector<isa::MicroOp> ops;
    ops.push_back(isa::makeAlu(3, isa::NoReg, isa::NoReg));
    ops.push_back(isa::makeStore(isa::NoReg, 3, 0x100));
    ops.push_back(isa::makeLoad(4, isa::NoReg, 0x100));
    test::VectorWorkload wl(ops);
    OooCore core(smallCore(), wl, mem::MemConfig::l1Only());
    core.run(3000);
    EXPECT_GT(core.stats().storeForwards, 100u);
}

TEST(OooCore, NopsFlowThrough)
{
    test::VectorWorkload wl({isa::makeNop(), isa::makeNop(),
                             isa::makeNop(), isa::makeNop()});
    OooCore core(smallCore(), wl, mem::MemConfig::l1Only());
    core.run(1000);
    EXPECT_GE(core.stats().ipc(), 3.0);
}

TEST(OooCore, IssueLatencyHistogramPopulated)
{
    test::VectorWorkload wl(test::independentOps(4));
    OooCore core(smallCore(), wl, mem::MemConfig::l1Only());
    core.run(1000);
    EXPECT_GT(core.stats().issueLatency.samples(), 900u);
    EXPECT_GT(core.stats().issueLatency.fractionBelow(25), 0.95);
}

TEST(OooCore, ResetStatsKeepsArchitecturalProgress)
{
    test::VectorWorkload wl(test::independentOps(4));
    OooCore core(smallCore(), wl, mem::MemConfig::l1Only());
    core.run(1000);
    uint64_t cycle_before = core.cycle();
    core.resetStats();
    EXPECT_EQ(core.stats().committed, 0u);
    core.run(100);
    EXPECT_GT(core.cycle(), cycle_before);
}

TEST(OooCore, DeterministicAcrossRuns)
{
    auto wl1 = wload::makeWorkload("gcc");
    auto wl2 = wload::makeWorkload("gcc");
    CoreParams p = smallCore();
    p.predictor = pred::BpKind::Perceptron;
    OooCore a(p, *wl1, mem::MemConfig::mem400());
    OooCore b(p, *wl2, mem::MemConfig::mem400());
    a.run(20000);
    b.run(20000);
    EXPECT_EQ(a.cycle(), b.cycle());
    EXPECT_EQ(a.stats().mispredicts, b.stats().mispredicts);
}
