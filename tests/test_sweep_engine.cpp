/**
 * @file
 * Tests of the parallel sweep engine: bit-identical results against
 * the serial baseline for every machine model, deterministic result
 * ordering, matrix construction and the JSON row emitter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/sim/sweep.hh"
#include "src/sim/sweep_engine.hh"

using namespace kilo;
using namespace kilo::sim;

namespace
{

/** Small but representative suite slice (keeps test time bounded). */
std::vector<std::string>
miniSuite()
{
    return {"mcf", "gzip", "swim", "equake"};
}

RunConfig
shortRun()
{
    RunConfig rc;
    rc.warmupInsts = 5000;
    rc.measureInsts = 15000;
    return rc;
}

} // anonymous namespace

TEST(SweepEngine, MatrixIsMachineMajorRowMajor)
{
    auto jobs = SweepEngine::matrix(
        {MachineConfig::r10_64(), MachineConfig::dkip2048()},
        {"mcf", "swim"},
        {mem::MemConfig::mem100(), mem::MemConfig::mem400()},
        RunConfig());
    ASSERT_EQ(jobs.size(), 8u);
    EXPECT_EQ(jobs[0].machine.name, MachineConfig::r10_64().name);
    EXPECT_EQ(jobs[0].workload, "mcf");
    EXPECT_EQ(jobs[0].mem.name, "MEM-100");
    EXPECT_EQ(jobs[1].mem.name, "MEM-400");
    EXPECT_EQ(jobs[2].workload, "swim");
    EXPECT_EQ(jobs[4].machine.name, MachineConfig::dkip2048().name);
}

TEST(SweepEngine, ThreadCountDefaultsAndOverrides)
{
    SweepEngine four(4);
    EXPECT_EQ(four.threads(), 4u);
    SweepEngine defaulted;
    EXPECT_GE(defaulted.threads(), 1u);
}

/** The acceptance property: a 4-thread sweep is bit-identical to the
 *  serial sweep — same per-workload IPC, same ordering — for all
 *  three machine models. */
TEST(SweepEngine, ParallelBitIdenticalToSerialAllMachines)
{
    const std::vector<MachineConfig> machines = {
        MachineConfig::r10_64(),     // OooCore
        MachineConfig::kilo1024(),   // KiloCore
        MachineConfig::dkip2048(),   // DkipCore
    };
    auto jobs = SweepEngine::matrix(machines, miniSuite(),
                                    {mem::MemConfig::mem400()},
                                    shortRun());

    SweepEngine serial(1);
    SweepEngine parallel(4);
    auto s = serial.run(jobs);
    auto p = parallel.run(jobs);

    ASSERT_EQ(s.size(), jobs.size());
    ASSERT_EQ(p.size(), s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        EXPECT_EQ(s[i].machine, p[i].machine) << "row " << i;
        EXPECT_EQ(s[i].workload, p[i].workload) << "row " << i;
        // Bit-identical, not approximately equal.
        EXPECT_EQ(s[i].ipc, p[i].ipc)
            << s[i].machine << "/" << s[i].workload;
        EXPECT_EQ(s[i].stats.cycles, p[i].stats.cycles)
            << s[i].machine << "/" << s[i].workload;
        EXPECT_EQ(s[i].stats.committed, p[i].stats.committed);
        EXPECT_EQ(s[i].stats.mispredicts, p[i].stats.mispredicts);
        EXPECT_EQ(s[i].memAccesses, p[i].memAccesses);
        EXPECT_EQ(s[i].l2Misses, p[i].l2Misses);
    }
}

TEST(SweepEngine, RepeatedParallelRunsAreDeterministic)
{
    auto jobs = SweepEngine::matrix({MachineConfig::dkip2048()},
                                    {"mcf", "swim"},
                                    {mem::MemConfig::mem400()},
                                    shortRun());
    SweepEngine engine(4);
    auto a = engine.run(jobs);
    auto b = engine.run(jobs);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].ipc, b[i].ipc);
        EXPECT_EQ(a[i].stats.cycles, b[i].stats.cycles);
    }
}

TEST(SweepEngine, RunSuitePreservesSuiteOrder)
{
    SweepEngine engine(4);
    auto suite = miniSuite();
    auto results =
        engine.runSuite(MachineConfig::r10_64(), suite,
                        mem::MemConfig::mem400(), shortRun());
    ASSERT_EQ(results.size(), suite.size());
    for (size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(results[i].workload, suite[i]);
}

TEST(SweepEngine, RunSuiteMatchesLegacySerialHelper)
{
    // sim::runSuite delegates to the engine; pin the equivalence.
    auto suite = std::vector<std::string>{"mcf", "swim"};
    auto via_helper =
        runSuite(MachineConfig::r10_64(), suite,
                 mem::MemConfig::mem400(), shortRun());
    SweepEngine serial(1);
    auto direct = serial.runSuite(MachineConfig::r10_64(), suite,
                                  mem::MemConfig::mem400(),
                                  shortRun());
    ASSERT_EQ(via_helper.size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(via_helper[i].ipc, direct[i].ipc);
}

TEST(SweepEngine, JsonRowsAreWellFormedAndOrdered)
{
    SweepEngine serial(1);
    auto results = serial.runSuite(MachineConfig::r10_64(),
                                   {"mcf", "swim"},
                                   mem::MemConfig::mem400(),
                                   shortRun());
    std::ostringstream os;
    writeJsonRows(os, results);
    std::string text = os.str();

    // One object per line, fields present, suite order preserved.
    size_t lines = 0, pos = 0;
    while ((pos = text.find('\n', pos)) != std::string::npos) {
        ++lines;
        ++pos;
    }
    EXPECT_EQ(lines, 2u);
    EXPECT_LT(text.find("\"workload\":\"mcf\""),
              text.find("\"workload\":\"swim\""));
    EXPECT_NE(text.find("\"ipc\":"), std::string::npos);
    EXPECT_NE(text.find("\"cycles\":"), std::string::npos);
    EXPECT_NE(text.find("\"mp_fraction\":"), std::string::npos);
    EXPECT_NE(text.find("\"mshr_set_p50\":"), std::string::npos);
    EXPECT_NE(text.find("\"mshr_set_p99\":"), std::string::npos);
    EXPECT_NE(text.find("\"mshr_set_max\":"), std::string::npos);

    // Round-trip precision: the serialised IPC parses back exactly.
    size_t ipos = text.find("\"ipc\":") + 6;
    double parsed = std::strtod(text.c_str() + ipos, nullptr);
    EXPECT_EQ(parsed, results[0].ipc);
}
