/**
 * @file
 * Tests of the determinism audit plane (src/obs/audit.hh,
 * src/obs_audit/bisect.hh): the auditMix chain algebra, the KILOAUD
 * container's round-trip and its rejection of every malformation,
 * firstDivergence semantics, the Session-side digest producer
 * (byte-identical streams across runs and processes of the same
 * configuration, zero perturbation when the plane is off, chains
 * that survive checkpoint/restore), and kilodiff's bisection
 * narrowing a seeded single-bit divergence to its exact cycle.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "src/obs/audit.hh"
#include "src/obs_audit/bisect.hh"
#include "src/sim/session.hh"
#include "src/sim/sweep_engine.hh"
#include "src/stats/json.hh"

using namespace kilo;

namespace
{

std::string
audPath(const std::string &tag)
{
    return ::testing::TempDir() + "kilo_aud_" + tag + ".kaud";
}

/** A small synthetic stream with a valid rolling chain. */
obs::AuditStream
syntheticStream(size_t records, uint64_t interval = 1000)
{
    obs::AuditStream s;
    s.intervalInsts = interval;
    uint64_t rolling = obs::AuditBasis;
    for (size_t i = 0; i < records; ++i) {
        obs::AuditRecord r;
        r.insts = interval * (i + 1);
        r.cycle = 3 * r.insts + 17;
        r.state = 0x9e3779b97f4a7c15ull * (i + 1);
        rolling = obs::auditMix(rolling, r.insts, r.cycle, r.state);
        r.rolling = rolling;
        s.records.push_back(r);
    }
    return s;
}

sim::RunConfig
auditedRun(uint64_t interval = 1000)
{
    sim::RunConfig rc;
    rc.warmupInsts = 1000;
    rc.measureInsts = 5000;
    rc.auditIntervalInsts = interval;
    return rc;
}

/** Flip one byte of the file at @p off (from the end when < 0). */
void
flipByte(const std::string &path, long off)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    long size = long(f.tellg());
    long at = off >= 0 ? off : size + off;
    ASSERT_LT(at, size);
    f.seekg(at);
    char c = 0;
    f.read(&c, 1);
    c ^= 0x01;
    f.seekp(at);
    f.write(&c, 1);
}

} // anonymous namespace

// ------------------------------------------------- chain algebra

TEST(AuditMix, EveryFieldAndTheirOrderMatter)
{
    uint64_t base = obs::auditMix(obs::AuditBasis, 1, 2, 3);
    EXPECT_NE(base, obs::auditMix(obs::AuditBasis, 9, 2, 3));
    EXPECT_NE(base, obs::auditMix(obs::AuditBasis, 1, 9, 3));
    EXPECT_NE(base, obs::auditMix(obs::AuditBasis, 1, 2, 9));
    // XOR-multiply folding is position-sensitive, so swapped fields
    // cannot cancel into the same chain value.
    EXPECT_NE(base, obs::auditMix(obs::AuditBasis, 2, 1, 3));
    EXPECT_NE(base, obs::auditMix(obs::AuditBasis, 3, 2, 1));
}

TEST(AuditMix, ChainDependsOnHistory)
{
    // The same record folded onto different prefixes differs: a
    // stream cannot be spliced from two others without the chain
    // breaking at the seam.
    uint64_t a = obs::auditMix(obs::AuditBasis, 1, 2, 3);
    uint64_t b = obs::auditMix(obs::AuditBasis, 4, 5, 6);
    EXPECT_NE(obs::auditMix(a, 7, 8, 9), obs::auditMix(b, 7, 8, 9));
}

// --------------------------------------------- KILOAUD container

TEST(AuditFile, RoundTripsRecordsAndCadence)
{
    obs::AuditStream s = syntheticStream(5, 2500);
    std::string path = audPath("roundtrip");
    obs::writeAuditFile(path, s);

    obs::AuditStream back = obs::readAuditFile(path);
    EXPECT_EQ(back.intervalInsts, 2500u);
    ASSERT_EQ(back.records.size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(back.records[i].insts, s.records[i].insts);
        EXPECT_EQ(back.records[i].cycle, s.records[i].cycle);
        EXPECT_EQ(back.records[i].state, s.records[i].state);
        EXPECT_EQ(back.records[i].rolling, s.records[i].rolling);
    }
    EXPECT_EQ(back.finalRolling(), s.finalRolling());
    std::remove(path.c_str());
}

TEST(AuditFile, EmptyStreamRoundTrips)
{
    obs::AuditStream s;
    s.intervalInsts = 100;
    std::string path = audPath("empty");
    obs::writeAuditFile(path, s);
    obs::AuditStream back = obs::readAuditFile(path);
    EXPECT_EQ(back.records.size(), 0u);
    EXPECT_EQ(back.finalRolling(), obs::AuditBasis);
    std::remove(path.c_str());
}

TEST(AuditFile, RejectsEveryMalformation)
{
    obs::AuditStream s = syntheticStream(4);
    std::string path = audPath("malformed");

    auto rewrite = [&] { obs::writeAuditFile(path, s); };

    rewrite(); // bad magic
    flipByte(path, 0);
    EXPECT_THROW(obs::readAuditFile(path), obs::AuditError);

    rewrite(); // bad version
    flipByte(path, 8);
    EXPECT_THROW(obs::readAuditFile(path), obs::AuditError);

    rewrite(); // header field vs header checksum
    flipByte(path, 16);
    EXPECT_THROW(obs::readAuditFile(path), obs::AuditError);

    rewrite(); // corrupt record payload breaks the rolling chain
    flipByte(path, 40 + 32);
    EXPECT_THROW(obs::readAuditFile(path), obs::AuditError);

    rewrite(); // corrupt trailer disagrees with the chain
    flipByte(path, -1);
    EXPECT_THROW(obs::readAuditFile(path), obs::AuditError);

    rewrite(); // truncated mid-record
    {
        std::ifstream in(path, std::ios::binary);
        std::vector<char> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        bytes.resize(bytes.size() - 20);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), long(bytes.size()));
    }
    EXPECT_THROW(obs::readAuditFile(path), obs::AuditError);

    EXPECT_THROW(obs::readAuditFile(audPath("missing")),
                 obs::AuditError);
    std::remove(path.c_str());
}

// ------------------------------------------------ firstDivergence

TEST(AuditDivergence, IdenticalStreamsAgree)
{
    obs::AuditStream s = syntheticStream(6);
    EXPECT_EQ(obs::firstDivergence(s, s), -1);
}

TEST(AuditDivergence, ReportsTheFirstDifferingRecord)
{
    obs::AuditStream a = syntheticStream(6);
    obs::AuditStream b = a;
    b.records[3].state ^= 1; // single-bit state difference
    EXPECT_EQ(obs::firstDivergence(a, b), 3);
    // Any field counts, including a cycle-only drift.
    obs::AuditStream c = a;
    c.records[1].cycle += 1;
    EXPECT_EQ(obs::firstDivergence(a, c), 1);
}

TEST(AuditDivergence, ShorterStreamDivergesAtItsLength)
{
    obs::AuditStream a = syntheticStream(6);
    obs::AuditStream b = a;
    b.records.resize(4);
    EXPECT_EQ(obs::firstDivergence(a, b), 4);
    EXPECT_EQ(obs::firstDivergence(b, a), 4);
}

TEST(AuditDivergence, MismatchedCadencesAreNotComparable)
{
    obs::AuditStream a = syntheticStream(3, 1000);
    obs::AuditStream b = syntheticStream(3, 2000);
    EXPECT_THROW(obs::firstDivergence(a, b), obs::AuditError);
}

// ------------------------------------------- the digest producer

TEST(AuditSession, StreamsAreBitIdenticalAcrossRuns)
{
    for (const char *name : {"r10-64", "kilo", "dkip"}) {
        auto machine = sim::MachineConfig::byName(name);
        sim::RunConfig rc = auditedRun();

        sim::Session a(machine, "mcf", mem::MemConfig::mem400(), rc);
        a.run();
        sim::Session b(machine, "mcf", mem::MemConfig::mem400(), rc);
        b.run();

        ASSERT_EQ(a.auditRecords().size(), 5u) << name;
        ASSERT_EQ(a.auditRecords().size(), b.auditRecords().size());
        for (size_t i = 0; i < a.auditRecords().size(); ++i) {
            const obs::AuditRecord &ra = a.auditRecords()[i];
            const obs::AuditRecord &rb = b.auditRecords()[i];
            EXPECT_EQ(ra.insts, rb.insts) << name << " record " << i;
            EXPECT_EQ(ra.cycle, rb.cycle) << name << " record " << i;
            EXPECT_EQ(ra.state, rb.state) << name << " record " << i;
            EXPECT_EQ(ra.rolling, rb.rolling);
        }
        EXPECT_EQ(a.auditRolling(), b.auditRolling()) << name;
        EXPECT_NE(a.auditRolling(), obs::AuditBasis) << name;
    }
}

TEST(AuditSession, RecordsChainCorrectlyAndLandOnBoundaries)
{
    sim::RunConfig rc = auditedRun(1500);
    sim::Session s(sim::MachineConfig::dkip2048(), "swim",
                   mem::MemConfig::mem400(), rc);
    s.run();
    sim::RunResult res = s.finish();

    ASSERT_FALSE(res.audit.empty());
    uint64_t width = 8; // generous commit-width slack
    uint64_t rolling = obs::AuditBasis;
    uint64_t boundary = 0;
    for (const obs::AuditRecord &r : res.audit) {
        // Each record lands at the first commit point at-or-past its
        // cadence boundary (a wide commit may overshoot by a few
        // instructions — deterministically, since the advance loop
        // stops at every audit boundary).
        boundary += 1500;
        EXPECT_GE(r.insts, boundary);
        EXPECT_LT(r.insts, boundary + width);
        rolling = obs::auditMix(rolling, r.insts, r.cycle, r.state);
        EXPECT_EQ(r.rolling, rolling);
    }
    EXPECT_EQ(res.auditRolling, rolling);
}

TEST(AuditSession, OffByDefaultAndZeroPerturbation)
{
    auto machine = sim::MachineConfig::kilo1024();
    sim::RunConfig off;
    off.warmupInsts = 1000;
    off.measureInsts = 5000;

    sim::Session plain(machine, "mcf", mem::MemConfig::mem400(),
                       off);
    plain.run();
    sim::RunResult base = plain.finish();
    EXPECT_TRUE(base.audit.empty());
    EXPECT_EQ(base.auditRolling, obs::AuditBasis);

    // Auditing at a tight cadence changes nothing about the run
    // itself: the whole JSONL row is bit-identical.
    sim::RunConfig on = off;
    on.auditIntervalInsts = 500;
    sim::Session audited(machine, "mcf", mem::MemConfig::mem400(),
                         on);
    audited.run();
    sim::RunResult with = audited.finish();
    EXPECT_EQ(with.audit.size(), 10u);
    EXPECT_EQ(sim::runResultJson(base), sim::runResultJson(with));
}

TEST(AuditSession, StateDigestIsStableUntilTheStateChanges)
{
    sim::RunConfig rc = auditedRun();
    sim::Session s(sim::MachineConfig::r10_64(), "gzip",
                   mem::MemConfig::mem400(), rc);
    s.warmup();

    uint64_t d0 = s.stateDigest();
    EXPECT_EQ(d0, s.stateDigest()); // const, repeatable
    s.run();
    EXPECT_NE(d0, s.stateDigest()); // advancing changed the state
}

TEST(AuditSession, ChainSurvivesCheckpointRestore)
{
    auto machine = sim::MachineConfig::dkip2048();
    sim::RunConfig rc = auditedRun();

    sim::Session straight(machine, "mcf", mem::MemConfig::mem400(),
                          rc);
    straight.run();

    // Same run, paused by checkpoint/restore into a fresh Session
    // between audit boundaries: the stream must not notice.
    sim::Session src(machine, "mcf", mem::MemConfig::mem400(), rc);
    src.warmup();
    src.runFor(2250); // mid-interval
    ckpt::Checkpoint c = src.checkpoint();

    size_t before = src.auditRecords().size();
    EXPECT_EQ(before, 2u); // boundaries 1000 and 2000 crossed

    sim::Session dst(machine, "mcf", mem::MemConfig::mem400(), rc);
    dst.restore(c);
    dst.run();

    // restore() clears the record vector (like interval samples) but
    // the chain state travels in the image: the resumed records are
    // exactly the straight run's tail, rolling digests included —
    // which is what makes the final rolling digest comparable across
    // a checkpointed fleet.
    ASSERT_EQ(straight.auditRecords().size(),
              before + dst.auditRecords().size());
    for (size_t i = 0; i < dst.auditRecords().size(); ++i) {
        const obs::AuditRecord &want =
            straight.auditRecords()[before + i];
        const obs::AuditRecord &got = dst.auditRecords()[i];
        EXPECT_EQ(want.insts, got.insts) << "record " << i;
        EXPECT_EQ(want.cycle, got.cycle) << "record " << i;
        EXPECT_EQ(want.state, got.state) << "record " << i;
        EXPECT_EQ(want.rolling, got.rolling) << "record " << i;
    }
    EXPECT_EQ(straight.auditRolling(), dst.auditRolling());
}

// --------------------------------------------------- bisection

TEST(AuditBisect, IdenticalSpecsDoNotDiverge)
{
    obs_audit::RunSpec spec;
    spec.machine = "r10-64";
    spec.workload = "gzip";
    spec.mem = "mem-400";
    spec.rc = auditedRun();

    obs::AuditStream sa = obs_audit::recordRun(spec);
    obs::AuditStream sb = obs_audit::recordRun(spec);
    EXPECT_EQ(obs::firstDivergence(sa, sb), -1);

    obs_audit::BisectResult r = obs_audit::bisect(spec, spec, sa, sb);
    EXPECT_FALSE(r.diverged);
    EXPECT_EQ(r.record, -1);
}

TEST(AuditBisect, LocalizesASeededFlipToItsExactCycle)
{
    obs_audit::RunSpec a;
    a.machine = "dkip";
    a.workload = "mcf";
    a.mem = "mem-400";
    a.rc = auditedRun();

    // Run B is run A with one global-history bit flipped at a known
    // cycle safely inside the measured region.
    obs_audit::RunSpec b = a;
    obs::AuditStream sa = obs_audit::recordRun(a);
    ASSERT_GE(sa.records.size(), 3u);
    uint64_t flip = (sa.records[1].cycle + sa.records[2].cycle) / 2;
    b.rc.auditFlipCycle = flip;
    b.rc.auditFlipMask = 1;

    obs::AuditStream sb = obs_audit::recordRun(b);
    long k = obs::firstDivergence(sa, sb);
    ASSERT_GE(k, 2) << "flip seeded after record 1 boundary";

    std::string prefix = ::testing::TempDir() + "kilo_aud_bisect";
    obs_audit::BisectResult r =
        obs_audit::bisect(a, b, sa, sb, prefix, 100);
    EXPECT_TRUE(r.diverged);
    EXPECT_EQ(r.record, k);
    // The first divergent cycle is exactly the one where the flip
    // hook fired — the state at its boundary still agreed.
    EXPECT_EQ(r.firstDivergentCycle, flip);
    EXPECT_NE(r.digestA, r.digestB);

    // The eyeball dumps exist and are non-trivial.
    for (const std::string &p :
         {r.konataA, r.konataB, r.chromeA, r.chromeB}) {
        ASSERT_FALSE(p.empty());
        std::ifstream f(p);
        ASSERT_TRUE(f.good()) << p;
        std::string first;
        std::getline(f, first);
        EXPECT_FALSE(first.empty()) << p;
        std::remove(p.c_str());
    }
}

TEST(AuditBisect, RejectsStreamsThatAreNotFromTheSpecs)
{
    obs_audit::RunSpec spec;
    spec.machine = "r10-64";
    spec.workload = "gzip";
    spec.mem = "mem-400";
    spec.rc = auditedRun();

    obs::AuditStream sa = obs_audit::recordRun(spec);
    obs::AuditStream sb = sa;
    // Forge a divergence the live replay will contradict.
    sb.records[2].state ^= 1;
    sb.records[2].rolling ^= 1;
    EXPECT_THROW(obs_audit::bisect(spec, spec, sa, sb),
                 obs::AuditError);
}
