/**
 * @file
 * Tests of the observability layer (src/obs/): the timeline ring,
 * zero-perturbation capture, the Konata export golden, the
 * commit-slot stall attribution invariant, the heartbeat wire
 * format, and the session self-profiler.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/obs/export.hh"
#include "src/obs/heartbeat.hh"
#include "src/obs/profiler.hh"
#include "src/obs/timeline.hh"
#include "src/sample/sampled_run.hh"
#include "src/sim/session.hh"
#include "src/sim/sweep_engine.hh"
#include "src/stats/json.hh"

using namespace kilo;

namespace
{

/** Sum of every stall-slot counter. */
uint64_t
stallSlotSum(const core::CoreStats &st)
{
    uint64_t sum = 0;
    for (uint64_t v : st.stallSlots)
        sum += v;
    return sum;
}

} // anonymous namespace

// ------------------------------------------------------- timeline

TEST(Timeline, RecordsEventsInOrder)
{
    obs::Timeline t(16);
    EXPECT_EQ(t.capacity(), 16u);
    t.record(5, obs::EventKind::Fetch, 1, 0x40, 3);
    t.record(6, obs::EventKind::Rename, 1);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t.data()[0].cycle, 5u);
    EXPECT_EQ(t.data()[0].kind, obs::EventKind::Fetch);
    EXPECT_EQ(t.data()[0].seq, 1u);
    EXPECT_EQ(t.data()[0].payload, 0x40u);
    EXPECT_EQ(t.data()[0].a, 3u);
    EXPECT_EQ(t.data()[1].kind, obs::EventKind::Rename);

    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(Timeline, OverflowDropsAndCounts)
{
    obs::Timeline t(8);
    for (uint64_t i = 0; i < 20; ++i)
        t.record(i, obs::EventKind::Commit, i);
    EXPECT_EQ(t.size(), 8u);
    EXPECT_EQ(t.dropped(), 12u);
    // The ring keeps the OLDEST events (drop-new policy): the head
    // of a capture stays intact rather than sliding silently.
    EXPECT_EQ(t.data()[0].seq, 0u);
    EXPECT_EQ(t.data()[7].seq, 7u);
}

// ------------------------------------------- capture perturbation

// Attaching a timeline must not move a single cycle: two identical
// runs, one instrumented and one not, end with bit-identical timing
// statistics (the instrumented run merely ALSO has the capture).
TEST(Capture, TimelineDoesNotPerturbTiming)
{
    sim::RunConfig rc;
    rc.warmupInsts = 500;
    rc.measureInsts = 3000;

    auto machine = sim::MachineConfig::dkip2048();
    auto mem = mem::MemConfig::mem400();

    sim::Session plain(machine, "mcf", mem, rc);
    plain.run();
    sim::RunResult base = plain.finish();

    obs::Timeline timeline(1 << 16);
    sim::Session instrumented(machine, "mcf", mem, rc);
    instrumented.core().attachTimeline(&timeline);
    instrumented.run();
    sim::RunResult obs_run = instrumented.finish();

    EXPECT_GT(timeline.size(), 0u);
    EXPECT_EQ(base.stats.cycles, obs_run.stats.cycles);
    EXPECT_EQ(base.stats.committed, obs_run.stats.committed);
    EXPECT_EQ(base.stats.squashed, obs_run.stats.squashed);
    EXPECT_EQ(stallSlotSum(base.stats),
              stallSlotSum(obs_run.stats));
    // The whole JSONL row, not just headline numbers.
    auto row = [](const stats::Snapshot &snap) {
        return stats::JsonRowBuilder().rowStats(snap).str();
    };
    EXPECT_EQ(row(base.snapshot), row(obs_run.snapshot));
}

// --------------------------------------------------- konata golden

// The pinned 1k-op capture (tools/pipeview defaults) renders to
// exactly the checked-in golden; regenerate with
//     build/pipeview --konata tests/data/pipeview_1k.golden
// after an intentional timing change (CI diffs the same bytes).
TEST(Export, KonataGoldenFor1kOpTrace)
{
    sim::RunConfig rc;
    rc.warmupInsts = 0;
    rc.measureInsts = 1000;

    obs::Timeline timeline(1 << 16);
    sim::Session session(sim::MachineConfig::dkip2048(), "mcf",
                         mem::MemConfig::mem400(), rc);
    session.core().attachTimeline(&timeline);
    session.run();
    EXPECT_EQ(timeline.dropped(), 0u);

    std::string konata = obs::konataText(timeline);
    ASSERT_FALSE(konata.empty());

    std::ifstream golden(std::string(KILO_SOURCE_DIR) +
                         "/tests/data/pipeview_1k.golden");
    ASSERT_TRUE(golden.good())
        << "missing tests/data/pipeview_1k.golden";
    std::stringstream buf;
    buf << golden.rdbuf();
    const std::string &expected = buf.str();

    // On mismatch report the first differing line, not a 600 KB blob.
    if (konata != expected) {
        std::istringstream got_s(konata), want_s(expected);
        std::string got_line, want_line;
        size_t line = 1;
        while (std::getline(got_s, got_line) &&
               std::getline(want_s, want_line) &&
               got_line == want_line)
            ++line;
        FAIL() << "Konata export diverges from golden at line "
               << line << ":\n  golden: " << want_line
               << "\n  got:    " << got_line;
    }
}

TEST(Export, CollectSeparatesReusedSequenceNumbers)
{
    // A squash rewinds the fetch sequence; the refetched correct
    // path reuses seq 7. The exporter must keep the two dynamic
    // instances apart instead of merging a squashed lifecycle into
    // a committed one.
    obs::Timeline t(16);
    t.record(10, obs::EventKind::Fetch, 7, 0x100, 0);
    t.record(12, obs::EventKind::Squash, 7);
    t.record(20, obs::EventKind::Fetch, 7, 0x200, 0);
    t.record(21, obs::EventKind::Rename, 7);
    t.record(25, obs::EventKind::Commit, 7);

    auto insts = obs::collectInstructions(t);
    ASSERT_EQ(insts.size(), 2u);
    EXPECT_TRUE(insts[0].squashed);
    EXPECT_EQ(insts[0].pc, 0x100u);
    EXPECT_EQ(insts[0].commit, obs::InstRecord::Unseen);
    EXPECT_FALSE(insts[1].squashed);
    EXPECT_EQ(insts[1].pc, 0x200u);
    EXPECT_EQ(insts[1].commit, 25u);

    std::string konata = obs::konataText(t);
    EXPECT_NE(konata.find("O3PipeView:retire:0:store:0"),
              std::string::npos);
    EXPECT_NE(konata.find("O3PipeView:retire:25:store:0"),
              std::string::npos);
}

// ---------------------------------------------- stall attribution

// Plane 2's accounting identity: over an exactly simulated measured
// region, every commit slot of every cycle is either a committed
// instruction or one attributed stall slot — on all three machine
// kinds, including through idle skips.
TEST(StallAttribution, SlotsSumToWidthTimesCycles)
{
    for (const char *name : {"r10-64", "kilo", "dkip"}) {
        sim::RunConfig rc;
        rc.warmupInsts = 1000;
        rc.measureInsts = 5000;

        auto machine = sim::MachineConfig::byName(name);
        sim::Session session(machine, "mcf",
                             mem::MemConfig::mem400(), rc);
        session.run();
        sim::RunResult res = session.finish();

        uint64_t width =
            uint64_t(session.core().params().commitWidth);
        EXPECT_EQ(stallSlotSum(res.stats) + res.stats.committed,
                  width * res.stats.cycles)
            << name;
        EXPECT_GT(stallSlotSum(res.stats), 0u) << name;
    }
}

// The decoupled bucket only exists on machines with a slow lane.
TEST(StallAttribution, DecoupledBucketStaysZeroOnOoo)
{
    sim::RunConfig rc;
    rc.warmupInsts = 500;
    rc.measureInsts = 3000;
    sim::Session session(sim::MachineConfig::r10_64(), "mcf",
                         mem::MemConfig::mem400(), rc);
    session.run();
    sim::RunResult res = session.finish();
    EXPECT_EQ(res.stats.stallSlots[size_t(
                  core::StallReason::Decoupled)],
              0u);
}

// ------------------------------------------------------ heartbeat

TEST(Heartbeat, SerializeParseRoundTrip)
{
    obs::Heartbeat hb;
    hb.shard = 3;
    hb.jobsDone = 7;
    hb.jobsTotal = 12;
    hb.lastJob = 31;
    hb.instsDone = 700000;
    hb.elapsedMs = 5321;
    hb.lastJobWallMs = 740;

    std::string line = obs::serializeHeartbeat(hb);
    EXPECT_EQ(line.rfind("KILOHB ", 0), 0u);

    obs::Heartbeat got;
    ASSERT_TRUE(obs::parseHeartbeat(line, got));
    EXPECT_EQ(got.shard, hb.shard);
    EXPECT_EQ(got.jobsDone, hb.jobsDone);
    EXPECT_EQ(got.jobsTotal, hb.jobsTotal);
    EXPECT_EQ(got.lastJob, hb.lastJob);
    EXPECT_EQ(got.instsDone, hb.instsDone);
    EXPECT_EQ(got.elapsedMs, hb.elapsedMs);
    EXPECT_EQ(got.lastJobWallMs, hb.lastJobWallMs);
}

TEST(Heartbeat, RejectsNonHeartbeatLines)
{
    obs::Heartbeat out;
    out.shard = -42; // canary: rejects must not touch out
    EXPECT_FALSE(obs::parseHeartbeat("", out));
    EXPECT_FALSE(obs::parseHeartbeat("error: boom", out));
    EXPECT_FALSE(obs::parseHeartbeat("KILOHB", out));
    EXPECT_FALSE(obs::parseHeartbeat("KILOHB 1 2 3", out));
    EXPECT_FALSE(
        obs::parseHeartbeat("KILOHB 1 2 3 4 5 6 7 trailing", out));
    EXPECT_FALSE(
        obs::parseHeartbeat("XKILOHB 1 2 3 4 5 6 7", out));
    EXPECT_EQ(out.shard, -42);
}

// ------------------------------------------------------- profiler

TEST(Profiler, AccumulatesScopesAndReports)
{
    obs::Profiler prof;
    {
        obs::Profiler::Scope a(&prof, "warmup");
    }
    {
        obs::Profiler::Scope b(&prof, "measure");
    }
    {
        obs::Profiler::Scope c(&prof, "measure");
    }
    ASSERT_EQ(prof.phases().size(), 2u);
    EXPECT_EQ(prof.phases()[0].name, "warmup");
    EXPECT_EQ(prof.phases()[0].count, 1u);
    EXPECT_EQ(prof.phases()[1].name, "measure");
    EXPECT_EQ(prof.phases()[1].count, 2u);

    std::string report = prof.report();
    EXPECT_NE(report.find("warmup"), std::string::npos);
    EXPECT_NE(report.find("measure"), std::string::npos);

    // Null profiler: scopes are inert.
    obs::Profiler::Scope none(nullptr, "ignored");
}

TEST(Profiler, SessionPhasesShowUp)
{
    sim::RunConfig rc;
    rc.warmupInsts = 200;
    rc.measureInsts = 500;
    obs::Profiler prof;
    sim::Session session(sim::MachineConfig::r10_64(), "gzip",
                         mem::MemConfig::mem400(), rc);
    session.attachProfiler(&prof);
    session.run();
    session.finish();

    bool saw_warmup = false, saw_measure = false, saw_finish = false;
    for (const auto &p : prof.phases()) {
        if (p.name == "warmup")
            saw_warmup = true;
        if (p.name == "measure")
            saw_measure = true;
        if (p.name == "finish")
            saw_finish = true;
    }
    EXPECT_TRUE(saw_warmup);
    EXPECT_TRUE(saw_measure);
    EXPECT_TRUE(saw_finish);
}

TEST(Profiler, SampledRunPhasesShowUp)
{
    sim::RunConfig rc;
    rc.warmupInsts = 1000;
    rc.measureInsts = 10000;
    rc.numClusters = 3;

    obs::Profiler prof;
    sample::SampledResult with = sample::runSampled(
        sim::MachineConfig::r10_64(), "swim",
        mem::MemConfig::mem400(), rc, &prof);

    // Every methodology stage appears exactly once.
    ASSERT_EQ(prof.phases().size(), 4u);
    EXPECT_EQ(prof.phases()[0].name, "fingerprint");
    EXPECT_EQ(prof.phases()[1].name, "cluster");
    EXPECT_EQ(prof.phases()[2].name, "simulate");
    EXPECT_EQ(prof.phases()[3].name, "reconstruct");
    for (const auto &p : prof.phases())
        EXPECT_EQ(p.count, 1u) << p.name;

    // Zero-perturbation: the profiler observes wall time only; the
    // reconstructed row is identical with and without it.
    sample::SampledResult without = sample::runSampled(
        sim::MachineConfig::r10_64(), "swim",
        mem::MemConfig::mem400(), rc);
    EXPECT_EQ(sim::runResultJson(with.result),
              sim::runResultJson(without.result));
}

// ------------------------------------------- heartbeat robustness

namespace
{

/**
 * Minimal replica of the orchestrator's stderr drain: append
 * arbitrarily-sized chunks, split on newlines, classify each
 * complete line as heartbeat or passthrough.
 */
struct LineDrain
{
    std::string buf;
    std::vector<obs::Heartbeat> beats;
    std::vector<std::string> passthrough;

    void
    feed(const std::string &chunk)
    {
        buf += chunk;
        size_t pos = 0;
        size_t eol;
        while ((eol = buf.find('\n', pos)) != std::string::npos) {
            std::string line = buf.substr(pos, eol - pos);
            pos = eol + 1;
            obs::Heartbeat hb;
            if (obs::parseHeartbeat(line, hb))
                beats.push_back(hb);
            else
                passthrough.push_back(line);
        }
        buf.erase(0, pos);
    }
};

} // anonymous namespace

TEST(Heartbeat, ParsesStreamSplitAtEveryByteBoundary)
{
    obs::Heartbeat a, b;
    a.shard = 0;
    a.jobsDone = 1;
    a.jobsTotal = 4;
    a.lastJob = 0;
    a.instsDone = 123456;
    a.elapsedMs = 10;
    a.lastJobWallMs = 10;
    b = a;
    b.shard = 2;
    b.jobsDone = 2;
    b.lastJob = 6;

    std::string stream = obs::serializeHeartbeat(a) + "\n" +
                         "warning: something odd\n" +
                         obs::serializeHeartbeat(b) + "\n";

    // However a pipe fragments the byte stream — including splits
    // mid-tag and mid-number — reassembly by lines must recover
    // exactly both heartbeats and the diagnostic in between.
    for (size_t cut = 0; cut <= stream.size(); ++cut) {
        LineDrain drain;
        drain.feed(stream.substr(0, cut));
        drain.feed(stream.substr(cut));
        ASSERT_EQ(drain.beats.size(), 2u) << "cut at " << cut;
        EXPECT_EQ(drain.beats[0].shard, a.shard);
        EXPECT_EQ(drain.beats[0].instsDone, a.instsDone);
        EXPECT_EQ(drain.beats[1].shard, b.shard);
        EXPECT_EQ(drain.beats[1].lastJob, b.lastJob);
        ASSERT_EQ(drain.passthrough.size(), 1u);
        EXPECT_EQ(drain.passthrough[0], "warning: something odd");
        EXPECT_TRUE(drain.buf.empty());
    }
}

TEST(Heartbeat, TruncatedLineIsNotAHeartbeat)
{
    obs::Heartbeat hb;
    hb.shard = 1;
    hb.jobsDone = 3;
    hb.jobsTotal = 9;
    hb.lastJob = 7;
    hb.instsDone = 999999;
    hb.elapsedMs = 1234;
    hb.lastJobWallMs = 56;
    std::string line = obs::serializeHeartbeat(hb);

    // A worker killed mid-write leaves a prefix. Any prefix that
    // loses a whole field is rejected outright by the parser.
    obs::Heartbeat out;
    size_t last_field = line.rfind(' ') + 1;
    for (size_t n = 0; n < last_field; ++n)
        EXPECT_FALSE(obs::parseHeartbeat(line.substr(0, n), out))
            << "prefix length " << n;
    ASSERT_TRUE(obs::parseHeartbeat(line, out));
    EXPECT_EQ(out.instsDone, hb.instsDone);

    // A cut INSIDE the final number ("... 1234 5" for "... 1234 56")
    // is a syntactically complete line the parser alone cannot
    // flag; the newline framing catches it instead — a torn write
    // never gains its terminator, so the drain keeps it buffered and
    // no heartbeat is ever synthesized from it.
    for (size_t n = last_field + 1; n < line.size(); ++n) {
        LineDrain drain;
        drain.feed(line.substr(0, n)); // torn: no trailing newline
        EXPECT_TRUE(drain.beats.empty()) << "cut at " << n;
        EXPECT_TRUE(drain.passthrough.empty()) << "cut at " << n;
        EXPECT_EQ(drain.buf, line.substr(0, n));
    }
}

TEST(Heartbeat, InterleavedWritesAreRejectedNotMisparsed)
{
    obs::Heartbeat hb;
    hb.shard = 1;
    hb.jobsDone = 2;
    hb.jobsTotal = 3;
    hb.lastJob = 4;
    hb.instsDone = 5;
    hb.elapsedMs = 6;
    hb.lastJobWallMs = 7;
    std::string line = obs::serializeHeartbeat(hb);

    obs::Heartbeat out;
    // Two heartbeats torn onto one line (missing the newline between
    // two unsynchronized writers).
    EXPECT_FALSE(obs::parseHeartbeat(line + " " + line, out));
    EXPECT_FALSE(obs::parseHeartbeat(line + line, out));
    // Diagnostic text glued to a heartbeat on either side.
    EXPECT_FALSE(obs::parseHeartbeat("error: boom " + line, out));
    EXPECT_FALSE(obs::parseHeartbeat(line + " error: boom", out));
}
