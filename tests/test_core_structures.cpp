/**
 * @file
 * Unit tests for the core building blocks: scoreboard, functional
 * unit pool, issue queue (both policies) and LSQ, driven through
 * arena-allocated instructions.
 */

#include <gtest/gtest.h>

#include "src/core/fu_pool.hh"
#include "src/core/inst_arena.hh"
#include "src/core/issue_queue.hh"
#include "src/core/lsq.hh"
#include "src/core/scoreboard.hh"

using namespace kilo;
using namespace kilo::core;

namespace
{

/** Per-test arena plus instruction builders. */
struct Arena
{
    InstArena arena;

    InstRef
    inst(uint64_t seq, isa::MicroOp op = isa::makeAlu(1, 2, 3))
    {
        InstRef ref = arena.alloc();
        DynInst &i = arena.get(ref);
        i.op = op;
        i.seq = seq;
        return ref;
    }

    InstRef
    loadAt(uint64_t seq, uint64_t addr)
    {
        return inst(seq, isa::makeLoad(1, 2, addr));
    }

    InstRef
    storeAt(uint64_t seq, uint64_t addr)
    {
        return inst(seq, isa::makeStore(2, 3, addr));
    }

    DynInst &operator[](InstRef ref) { return arena.get(ref); }

    DynInstCold &cold(InstRef ref) { return arena.cold(ref); }
};

} // anonymous namespace

// ------------------------------------------------------ Scoreboard

TEST(Scoreboard, InitiallyReady)
{
    Scoreboard sb;
    for (int r = 0; r < isa::NumRegs; ++r) {
        EXPECT_FALSE(sb.get(int16_t(r)).producer);
        EXPECT_EQ(sb.get(int16_t(r)).readyCycle, 0u);
    }
}

TEST(Scoreboard, DefineInstallsProducer)
{
    Arena a;
    Scoreboard sb;
    auto i = a.inst(1);
    sb.define(a[i], a.cold(i));
    EXPECT_EQ(sb.get(1).producer, i);
}

TEST(Scoreboard, CompleteReplacesWithReadyCycle)
{
    Arena a;
    Scoreboard sb;
    auto i = a.inst(1);
    sb.define(a[i], a.cold(i));
    a[i].completed = true;
    a.cold(i).completeCycle = 55;
    sb.complete(a[i], a.cold(i));
    EXPECT_FALSE(sb.get(1).producer);
    EXPECT_EQ(sb.get(1).readyCycle, 55u);
}

TEST(Scoreboard, CompleteOfStaleProducerIgnored)
{
    Arena a;
    Scoreboard sb;
    auto older = a.inst(1);
    auto newer = a.inst(2);
    sb.define(a[older], a.cold(older));
    sb.define(a[newer], a.cold(newer));
    a[older].completed = true;
    a.cold(older).completeCycle = 10;
    sb.complete(a[older], a.cold(older));
    EXPECT_EQ(sb.get(1).producer, newer);
}

TEST(Scoreboard, RestoreUndoesDefine)
{
    Arena ar;
    Scoreboard sb;
    auto a = ar.inst(1);
    auto b = ar.inst(2);
    sb.define(ar[a], ar.cold(a));
    sb.define(ar[b], ar.cold(b));
    sb.restore(ar[b], ar.cold(b));
    EXPECT_EQ(sb.get(1).producer, a);
    sb.restore(ar[a], ar.cold(a));
    EXPECT_FALSE(sb.get(1).producer);
}

TEST(Scoreboard, RestoreAfterCompletionUsesDefinerSeq)
{
    Arena ar;
    Scoreboard sb;
    auto a = ar.inst(1);
    sb.define(ar[a], ar.cold(a));
    ar[a].completed = true;
    ar.cold(a).completeCycle = 9;
    sb.complete(ar[a], ar.cold(a)); // producer null, readyCycle 9
    sb.restore(ar[a], ar.cold(a));  // still the visible definer -> restored
    EXPECT_EQ(sb.get(1).readyCycle, 0u);
}

TEST(Scoreboard, ClearResets)
{
    Arena a;
    Scoreboard sb;
    { auto i = a.inst(1); sb.define(a[i], a.cold(i)); }
    sb.clear();
    EXPECT_FALSE(sb.get(1).producer);
}

// ---------------------------------------------------------- FuPool

TEST(FuPool, CacheProcessorCounts)
{
    FuConfig cfg = FuConfig::cacheProcessor();
    EXPECT_EQ(cfg.intAlu, 4);
    EXPECT_EQ(cfg.intMul, 1);
    EXPECT_EQ(cfg.fpAdd, 4);
    EXPECT_EQ(cfg.fpMulDiv, 1);
}

TEST(FuPool, AluBandwidthPerCycle)
{
    FuPool pool(FuConfig::cacheProcessor());
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(pool.tryAcquire(isa::OpClass::IntAlu, 10, 1));
    EXPECT_FALSE(pool.tryAcquire(isa::OpClass::IntAlu, 10, 1));
    // Next cycle the slots are free again (pipelined).
    EXPECT_TRUE(pool.tryAcquire(isa::OpClass::IntAlu, 11, 1));
}

TEST(FuPool, BranchesShareAlus)
{
    FuPool pool(FuConfig::cacheProcessor());
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(pool.tryAcquire(isa::OpClass::Branch, 0, 1));
    EXPECT_FALSE(pool.tryAcquire(isa::OpClass::IntAlu, 0, 1));
}

TEST(FuPool, FpDivUnpipelined)
{
    FuPool pool(FuConfig::cacheProcessor());
    EXPECT_TRUE(pool.tryAcquire(isa::OpClass::FpDiv, 0, 12));
    // The single FP mul/div unit is busy for the whole divide.
    EXPECT_FALSE(pool.tryAcquire(isa::OpClass::FpMul, 5, 4));
    EXPECT_TRUE(pool.tryAcquire(isa::OpClass::FpMul, 12, 4));
}

TEST(FuPool, FpMulPipelined)
{
    FuPool pool(FuConfig::cacheProcessor());
    EXPECT_TRUE(pool.tryAcquire(isa::OpClass::FpMul, 0, 4));
    EXPECT_TRUE(pool.tryAcquire(isa::OpClass::FpMul, 1, 4));
}

TEST(FuPool, MemOpsNeedNoUnit)
{
    FuPool pool(FuConfig::intMemProcessor());
    EXPECT_FALSE(FuPool::needsUnit(isa::OpClass::Load));
    EXPECT_FALSE(FuPool::needsUnit(isa::OpClass::Store));
    EXPECT_TRUE(pool.tryAcquire(isa::OpClass::Load, 0, 400));
}

TEST(FuPool, MissingUnitTypeRejects)
{
    FuPool pool(FuConfig::intMemProcessor()); // no FP units
    EXPECT_FALSE(pool.tryAcquire(isa::OpClass::FpAdd, 0, 2));
}

TEST(FuPool, FpMpHasAddressAlu)
{
    FuPool pool(FuConfig::fpMemProcessor());
    EXPECT_TRUE(pool.tryAcquire(isa::OpClass::IntAlu, 0, 1));
    EXPECT_FALSE(pool.tryAcquire(isa::OpClass::IntMul, 0, 3));
}

// ------------------------------------------------------ IssueQueue

TEST(IssueQueue, OooSelectsOldestReady)
{
    Arena ar;
    IssueQueue q("q", 8, SchedPolicy::OutOfOrder, ar.arena);
    q.assignId(0);
    auto a = ar.inst(1);
    auto b = ar.inst(2);
    auto c = ar.inst(3);
    ar[b].readyFlag = true;
    ar[c].readyFlag = true;
    q.insert(a); // not ready
    q.insert(b);
    q.insert(c);
    EXPECT_EQ(q.numReady(), 2u);
    EXPECT_EQ(q.popReady(0), b); // oldest ready, skips a
}

TEST(IssueQueue, OooWakeupMakesSelectable)
{
    Arena ar;
    IssueQueue q("q", 8, SchedPolicy::OutOfOrder, ar.arena);
    q.assignId(0);
    auto a = ar.inst(1);
    q.insert(a);
    EXPECT_FALSE(q.popReady(0));
    ar[a].readyFlag = true;
    q.markReady(a);
    EXPECT_EQ(q.popReady(0), a);
}

TEST(IssueQueue, InOrderHeadOnly)
{
    Arena ar;
    IssueQueue q("q", 8, SchedPolicy::InOrder, ar.arena);
    q.assignId(0);
    auto a = ar.inst(1);
    auto b = ar.inst(2);
    ar[b].readyFlag = true;
    q.insert(a); // head, not ready
    q.insert(b); // ready but behind
    q.beginCycle();
    EXPECT_FALSE(q.popReady(0)); // head blocks
}

TEST(IssueQueue, InOrderIssuesContiguousPrefix)
{
    Arena ar;
    IssueQueue q("q", 8, SchedPolicy::InOrder, ar.arena);
    q.assignId(0);
    auto a = ar.inst(1);
    auto b = ar.inst(2);
    ar[a].readyFlag = true;
    ar[b].readyFlag = true;
    q.insert(a);
    q.insert(b);
    q.beginCycle();
    auto first = q.popReady(0);
    EXPECT_EQ(first, a);
    ar[first].issued = true;
    q.removeIssued(first);
    auto second = q.popReady(0);
    EXPECT_EQ(second, b);
}

TEST(IssueQueue, InOrderStructuralHazardStallsCycle)
{
    Arena ar;
    IssueQueue q("q", 8, SchedPolicy::InOrder, ar.arena);
    q.assignId(0);
    auto a = ar.inst(1);
    ar[a].readyFlag = true;
    q.insert(a);
    q.beginCycle();
    EXPECT_EQ(q.popReady(0), a);
    q.requeue(a); // e.g. no memory port
    EXPECT_FALSE(q.popReady(0));
    q.beginCycle(); // next cycle retries
    EXPECT_EQ(q.popReady(1), a);
}

TEST(IssueQueue, OooRequeueRetriesNextCycle)
{
    Arena ar;
    IssueQueue q("q", 8, SchedPolicy::OutOfOrder, ar.arena);
    q.assignId(0);
    auto a = ar.inst(1);
    ar[a].readyFlag = true;
    q.insert(a);
    EXPECT_EQ(q.popReady(0), a);
    q.requeue(a);
    EXPECT_FALSE(q.popReady(0)); // deferred this cycle
    q.beginCycle();
    EXPECT_EQ(q.popReady(1), a);
}

TEST(IssueQueue, CapacityAndFull)
{
    Arena ar;
    IssueQueue q("q", 2, SchedPolicy::OutOfOrder, ar.arena);
    q.assignId(0);
    q.insert(ar.inst(1));
    q.insert(ar.inst(2));
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.size(), 2u);
}

TEST(IssueQueue, EraseFreesSlotWithoutIssue)
{
    Arena ar;
    IssueQueue q("q", 2, SchedPolicy::OutOfOrder, ar.arena);
    q.assignId(0);
    auto a = ar.inst(1);
    q.insert(a);
    q.erase(a);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(ar[a].iqId, -1);
}

TEST(IssueQueue, SquashRemovesYoungest)
{
    Arena ar;
    IssueQueue q("q", 4, SchedPolicy::InOrder, ar.arena);
    q.assignId(0);
    auto a = ar.inst(1);
    auto b = ar.inst(2);
    q.insert(a);
    q.insert(b);
    ar[b].squashed = true;
    q.notifySquashed(b);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.debugFront(), a);
}

TEST(IssueQueue, ReadyCountConsistentThroughLifecycle)
{
    Arena ar;
    IssueQueue q("q", 4, SchedPolicy::OutOfOrder, ar.arena);
    q.assignId(0);
    auto a = ar.inst(1);
    ar[a].readyFlag = true;
    q.insert(a);
    EXPECT_EQ(q.numReady(), 1u);
    auto got = q.popReady(0);
    ar[got].issued = true;
    q.removeIssued(got);
    EXPECT_EQ(q.numReady(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(IssueQueue, DroppedNotReadyReturnsViaWakeup)
{
    Arena ar;
    IssueQueue q("q", 4, SchedPolicy::OutOfOrder, ar.arena);
    q.assignId(0);
    auto a = ar.inst(1);
    ar[a].readyFlag = true;
    q.insert(a);
    auto got = q.popReady(0);
    ar[got].readyFlag = false; // LSQ blocked it on a store
    q.droppedNotReady(got);
    EXPECT_EQ(q.numReady(), 0u);
    ar[got].readyFlag = true;
    q.markReady(got);
    EXPECT_EQ(q.popReady(0), got);
}

TEST(IssueQueue, StaleHeapEntrySkippedAfterRecycle)
{
    Arena ar;
    IssueQueue q("q", 4, SchedPolicy::OutOfOrder, ar.arena);
    q.assignId(0);
    auto a = ar.inst(1);
    ar[a].readyFlag = true;
    q.insert(a);
    // Squash-and-recycle while the ready heap still holds the handle.
    ar[a].squashed = true;
    q.notifySquashed(a);
    ar.arena.free(a);
    EXPECT_FALSE(q.popReady(0)); // stale entry is filtered, not used
}

// ------------------------------------------------------------- LSQ

TEST(Lsq, NoConflictGoesToMemory)
{
    Arena ar;
    Lsq lsq(8, ar.arena);
    auto ld = ar.loadAt(5, 0x100);
    lsq.insert(ld);
    EXPECT_EQ(lsq.checkLoad(ar[ld]).kind, LoadCheck::Kind::Memory);
}

TEST(Lsq, BlockedOnUnexecutedOlderStore)
{
    Arena ar;
    Lsq lsq(8, ar.arena);
    auto st = ar.storeAt(1, 0x100);
    auto ld = ar.loadAt(2, 0x100);
    lsq.insert(st);
    lsq.insert(ld);
    auto check = lsq.checkLoad(ar[ld]);
    EXPECT_EQ(check.kind, LoadCheck::Kind::Blocked);
    EXPECT_EQ(check.store, st);
}

TEST(Lsq, ForwardsFromExecutedStore)
{
    Arena ar;
    Lsq lsq(8, ar.arena);
    auto st = ar.storeAt(1, 0x100);
    auto ld = ar.loadAt(2, 0x100);
    lsq.insert(st);
    lsq.insert(ld);
    ar[st].issued = true;
    EXPECT_EQ(lsq.checkLoad(ar[ld]).kind, LoadCheck::Kind::Forward);
}

TEST(Lsq, YoungerStoreDoesNotConflict)
{
    Arena ar;
    Lsq lsq(8, ar.arena);
    auto ld = ar.loadAt(1, 0x100);
    auto st = ar.storeAt(2, 0x100);
    lsq.insert(ld);
    lsq.insert(st);
    EXPECT_EQ(lsq.checkLoad(ar[ld]).kind, LoadCheck::Kind::Memory);
}

TEST(Lsq, YoungestMatchingStoreWins)
{
    Arena ar;
    Lsq lsq(8, ar.arena);
    auto st1 = ar.storeAt(1, 0x100);
    auto st2 = ar.storeAt(2, 0x100);
    auto ld = ar.loadAt(3, 0x100);
    lsq.insert(st1);
    lsq.insert(st2);
    lsq.insert(ld);
    EXPECT_EQ(lsq.checkLoad(ar[ld]).store, st2);
}

TEST(Lsq, DifferentAddressNoConflict)
{
    Arena ar;
    Lsq lsq(8, ar.arena);
    auto st = ar.storeAt(1, 0x100);
    auto ld = ar.loadAt(2, 0x108);
    lsq.insert(st);
    lsq.insert(ld);
    EXPECT_EQ(lsq.checkLoad(ar[ld]).kind, LoadCheck::Kind::Memory);
}

TEST(Lsq, RetireCompletedFreesHead)
{
    Arena ar;
    Lsq lsq(2, ar.arena);
    auto a = ar.loadAt(1, 0x10);
    auto b = ar.loadAt(2, 0x20);
    lsq.insert(a);
    lsq.insert(b);
    EXPECT_TRUE(lsq.full());
    ar[a].completed = true;
    lsq.retireCompleted();
    EXPECT_EQ(lsq.size(), 1u);
    EXPECT_FALSE(ar[a].inLsq);
    EXPECT_TRUE(ar[b].inLsq);
}

TEST(Lsq, HeadBlocksRetirement)
{
    Arena ar;
    Lsq lsq(4, ar.arena);
    auto a = ar.loadAt(1, 0x10);
    auto b = ar.loadAt(2, 0x20);
    lsq.insert(a);
    lsq.insert(b);
    ar[b].completed = true;
    lsq.retireCompleted();
    EXPECT_EQ(lsq.size(), 2u); // head incomplete keeps both
}

TEST(Lsq, SquashRemovesStoreFromIndex)
{
    Arena ar;
    Lsq lsq(8, ar.arena);
    auto st = ar.storeAt(1, 0x100);
    lsq.insert(st);
    lsq.notifySquashed(st);
    auto ld = ar.loadAt(2, 0x100);
    lsq.insert(ld);
    EXPECT_EQ(lsq.checkLoad(ar[ld]).kind, LoadCheck::Kind::Memory);
}

TEST(Lsq, RetireRecyclesCommittedEntry)
{
    Arena ar;
    Lsq lsq(4, ar.arena);
    auto a = ar.loadAt(1, 0x10);
    lsq.insert(a);
    // Commit reached the instruction while it still held its entry:
    // the recycle defers to the LSQ release.
    ar[a].completed = true;
    ar[a].retired = true;
    uint64_t frees = ar.arena.totalFrees();
    lsq.retireCompleted();
    EXPECT_EQ(ar.arena.totalFrees(), frees + 1);
    EXPECT_FALSE(ar.arena.isLive(a));
}

TEST(Lsq, ForwardCounter)
{
    Arena ar;
    Lsq lsq(4, ar.arena);
    EXPECT_EQ(lsq.forwards(), 0u);
    lsq.countForward();
    EXPECT_EQ(lsq.forwards(), 1u);
}
