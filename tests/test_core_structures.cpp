/**
 * @file
 * Unit tests for the core building blocks: scoreboard, functional
 * unit pool, issue queue (both policies) and LSQ.
 */

#include <gtest/gtest.h>

#include "src/core/fu_pool.hh"
#include "src/core/issue_queue.hh"
#include "src/core/lsq.hh"
#include "src/core/scoreboard.hh"

using namespace kilo;
using namespace kilo::core;

namespace
{

DynInstPtr
inst(uint64_t seq, isa::MicroOp op = isa::makeAlu(1, 2, 3))
{
    auto i = std::make_shared<DynInst>();
    i->op = op;
    i->seq = seq;
    return i;
}

} // anonymous namespace

// ------------------------------------------------------ Scoreboard

TEST(Scoreboard, InitiallyReady)
{
    Scoreboard sb;
    for (int r = 0; r < isa::NumRegs; ++r) {
        EXPECT_EQ(sb.get(int16_t(r)).producer, nullptr);
        EXPECT_EQ(sb.get(int16_t(r)).readyCycle, 0u);
    }
}

TEST(Scoreboard, DefineInstallsProducer)
{
    Scoreboard sb;
    auto i = inst(1);
    sb.define(i);
    EXPECT_EQ(sb.get(1).producer, i);
}

TEST(Scoreboard, CompleteReplacesWithReadyCycle)
{
    Scoreboard sb;
    auto i = inst(1);
    sb.define(i);
    i->completed = true;
    i->completeCycle = 55;
    sb.complete(i);
    EXPECT_EQ(sb.get(1).producer, nullptr);
    EXPECT_EQ(sb.get(1).readyCycle, 55u);
}

TEST(Scoreboard, CompleteOfStaleProducerIgnored)
{
    Scoreboard sb;
    auto older = inst(1);
    auto newer = inst(2);
    sb.define(older);
    sb.define(newer);
    older->completed = true;
    older->completeCycle = 10;
    sb.complete(older);
    EXPECT_EQ(sb.get(1).producer, newer);
}

TEST(Scoreboard, RestoreUndoesDefine)
{
    Scoreboard sb;
    auto a = inst(1);
    auto b = inst(2);
    sb.define(a);
    sb.define(b);
    sb.restore(b);
    EXPECT_EQ(sb.get(1).producer, a);
    sb.restore(a);
    EXPECT_EQ(sb.get(1).producer, nullptr);
}

TEST(Scoreboard, RestoreAfterCompletionUsesDefinerSeq)
{
    Scoreboard sb;
    auto a = inst(1);
    sb.define(a);
    a->completed = true;
    a->completeCycle = 9;
    sb.complete(a); // producer null, readyCycle 9
    sb.restore(a);  // still the visible definer -> restored
    EXPECT_EQ(sb.get(1).readyCycle, 0u);
}

TEST(Scoreboard, ClearResets)
{
    Scoreboard sb;
    sb.define(inst(1));
    sb.clear();
    EXPECT_EQ(sb.get(1).producer, nullptr);
}

// ---------------------------------------------------------- FuPool

TEST(FuPool, CacheProcessorCounts)
{
    FuConfig cfg = FuConfig::cacheProcessor();
    EXPECT_EQ(cfg.intAlu, 4);
    EXPECT_EQ(cfg.intMul, 1);
    EXPECT_EQ(cfg.fpAdd, 4);
    EXPECT_EQ(cfg.fpMulDiv, 1);
}

TEST(FuPool, AluBandwidthPerCycle)
{
    FuPool pool(FuConfig::cacheProcessor());
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(pool.tryAcquire(isa::OpClass::IntAlu, 10, 1));
    EXPECT_FALSE(pool.tryAcquire(isa::OpClass::IntAlu, 10, 1));
    // Next cycle the slots are free again (pipelined).
    EXPECT_TRUE(pool.tryAcquire(isa::OpClass::IntAlu, 11, 1));
}

TEST(FuPool, BranchesShareAlus)
{
    FuPool pool(FuConfig::cacheProcessor());
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(pool.tryAcquire(isa::OpClass::Branch, 0, 1));
    EXPECT_FALSE(pool.tryAcquire(isa::OpClass::IntAlu, 0, 1));
}

TEST(FuPool, FpDivUnpipelined)
{
    FuPool pool(FuConfig::cacheProcessor());
    EXPECT_TRUE(pool.tryAcquire(isa::OpClass::FpDiv, 0, 12));
    // The single FP mul/div unit is busy for the whole divide.
    EXPECT_FALSE(pool.tryAcquire(isa::OpClass::FpMul, 5, 4));
    EXPECT_TRUE(pool.tryAcquire(isa::OpClass::FpMul, 12, 4));
}

TEST(FuPool, FpMulPipelined)
{
    FuPool pool(FuConfig::cacheProcessor());
    EXPECT_TRUE(pool.tryAcquire(isa::OpClass::FpMul, 0, 4));
    EXPECT_TRUE(pool.tryAcquire(isa::OpClass::FpMul, 1, 4));
}

TEST(FuPool, MemOpsNeedNoUnit)
{
    FuPool pool(FuConfig::intMemProcessor());
    EXPECT_FALSE(FuPool::needsUnit(isa::OpClass::Load));
    EXPECT_FALSE(FuPool::needsUnit(isa::OpClass::Store));
    EXPECT_TRUE(pool.tryAcquire(isa::OpClass::Load, 0, 400));
}

TEST(FuPool, MissingUnitTypeRejects)
{
    FuPool pool(FuConfig::intMemProcessor()); // no FP units
    EXPECT_FALSE(pool.tryAcquire(isa::OpClass::FpAdd, 0, 2));
}

TEST(FuPool, FpMpHasAddressAlu)
{
    FuPool pool(FuConfig::fpMemProcessor());
    EXPECT_TRUE(pool.tryAcquire(isa::OpClass::IntAlu, 0, 1));
    EXPECT_FALSE(pool.tryAcquire(isa::OpClass::IntMul, 0, 3));
}

// ------------------------------------------------------ IssueQueue

TEST(IssueQueue, OooSelectsOldestReady)
{
    IssueQueue q("q", 8, SchedPolicy::OutOfOrder);
    auto a = inst(1);
    auto b = inst(2);
    auto c = inst(3);
    b->readyFlag = true;
    c->readyFlag = true;
    q.insert(a); // not ready
    q.insert(b);
    q.insert(c);
    EXPECT_EQ(q.numReady(), 2u);
    EXPECT_EQ(q.popReady(0), b); // oldest ready, skips a
}

TEST(IssueQueue, OooWakeupMakesSelectable)
{
    IssueQueue q("q", 8, SchedPolicy::OutOfOrder);
    auto a = inst(1);
    q.insert(a);
    EXPECT_EQ(q.popReady(0), nullptr);
    a->readyFlag = true;
    q.markReady(a);
    EXPECT_EQ(q.popReady(0), a);
}

TEST(IssueQueue, InOrderHeadOnly)
{
    IssueQueue q("q", 8, SchedPolicy::InOrder);
    auto a = inst(1);
    auto b = inst(2);
    b->readyFlag = true;
    q.insert(a); // head, not ready
    q.insert(b); // ready but behind
    q.beginCycle();
    EXPECT_EQ(q.popReady(0), nullptr); // head blocks
}

TEST(IssueQueue, InOrderIssuesContiguousPrefix)
{
    IssueQueue q("q", 8, SchedPolicy::InOrder);
    auto a = inst(1);
    auto b = inst(2);
    a->readyFlag = true;
    b->readyFlag = true;
    q.insert(a);
    q.insert(b);
    q.beginCycle();
    auto first = q.popReady(0);
    EXPECT_EQ(first, a);
    first->issued = true;
    q.removeIssued(first);
    auto second = q.popReady(0);
    EXPECT_EQ(second, b);
}

TEST(IssueQueue, InOrderStructuralHazardStallsCycle)
{
    IssueQueue q("q", 8, SchedPolicy::InOrder);
    auto a = inst(1);
    a->readyFlag = true;
    q.insert(a);
    q.beginCycle();
    EXPECT_EQ(q.popReady(0), a);
    q.requeue(a); // e.g. no memory port
    EXPECT_EQ(q.popReady(0), nullptr);
    q.beginCycle(); // next cycle retries
    EXPECT_EQ(q.popReady(1), a);
}

TEST(IssueQueue, OooRequeueRetriesNextCycle)
{
    IssueQueue q("q", 8, SchedPolicy::OutOfOrder);
    auto a = inst(1);
    a->readyFlag = true;
    q.insert(a);
    EXPECT_EQ(q.popReady(0), a);
    q.requeue(a);
    EXPECT_EQ(q.popReady(0), nullptr); // deferred this cycle
    q.beginCycle();
    EXPECT_EQ(q.popReady(1), a);
}

TEST(IssueQueue, CapacityAndFull)
{
    IssueQueue q("q", 2, SchedPolicy::OutOfOrder);
    q.insert(inst(1));
    q.insert(inst(2));
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.size(), 2u);
}

TEST(IssueQueue, EraseFreesSlotWithoutIssue)
{
    IssueQueue q("q", 2, SchedPolicy::OutOfOrder);
    auto a = inst(1);
    q.insert(a);
    q.erase(a);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(a->iq, nullptr);
}

TEST(IssueQueue, SquashRemovesYoungest)
{
    IssueQueue q("q", 4, SchedPolicy::InOrder);
    auto a = inst(1);
    auto b = inst(2);
    q.insert(a);
    q.insert(b);
    b->squashed = true;
    q.notifySquashed(b);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.debugFront(), a);
}

TEST(IssueQueue, ReadyCountConsistentThroughLifecycle)
{
    IssueQueue q("q", 4, SchedPolicy::OutOfOrder);
    auto a = inst(1);
    a->readyFlag = true;
    q.insert(a);
    EXPECT_EQ(q.numReady(), 1u);
    auto got = q.popReady(0);
    got->issued = true;
    q.removeIssued(got);
    EXPECT_EQ(q.numReady(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(IssueQueue, DroppedNotReadyReturnsViaWakeup)
{
    IssueQueue q("q", 4, SchedPolicy::OutOfOrder);
    auto a = inst(1);
    a->readyFlag = true;
    q.insert(a);
    auto got = q.popReady(0);
    got->readyFlag = false; // LSQ blocked it on a store
    q.droppedNotReady(got);
    EXPECT_EQ(q.numReady(), 0u);
    got->readyFlag = true;
    q.markReady(got);
    EXPECT_EQ(q.popReady(0), got);
}

// ------------------------------------------------------------- LSQ

namespace
{

DynInstPtr
loadAt(uint64_t seq, uint64_t addr)
{
    return inst(seq, isa::makeLoad(1, 2, addr));
}

DynInstPtr
storeAt(uint64_t seq, uint64_t addr)
{
    return inst(seq, isa::makeStore(2, 3, addr));
}

} // anonymous namespace

TEST(Lsq, NoConflictGoesToMemory)
{
    Lsq lsq(8);
    auto ld = loadAt(5, 0x100);
    lsq.insert(ld);
    EXPECT_EQ(lsq.checkLoad(ld).kind, LoadCheck::Kind::Memory);
}

TEST(Lsq, BlockedOnUnexecutedOlderStore)
{
    Lsq lsq(8);
    auto st = storeAt(1, 0x100);
    auto ld = loadAt(2, 0x100);
    lsq.insert(st);
    lsq.insert(ld);
    auto check = lsq.checkLoad(ld);
    EXPECT_EQ(check.kind, LoadCheck::Kind::Blocked);
    EXPECT_EQ(check.store, st);
}

TEST(Lsq, ForwardsFromExecutedStore)
{
    Lsq lsq(8);
    auto st = storeAt(1, 0x100);
    auto ld = loadAt(2, 0x100);
    lsq.insert(st);
    lsq.insert(ld);
    st->issued = true;
    EXPECT_EQ(lsq.checkLoad(ld).kind, LoadCheck::Kind::Forward);
}

TEST(Lsq, YoungerStoreDoesNotConflict)
{
    Lsq lsq(8);
    auto ld = loadAt(1, 0x100);
    auto st = storeAt(2, 0x100);
    lsq.insert(ld);
    lsq.insert(st);
    EXPECT_EQ(lsq.checkLoad(ld).kind, LoadCheck::Kind::Memory);
}

TEST(Lsq, YoungestMatchingStoreWins)
{
    Lsq lsq(8);
    auto st1 = storeAt(1, 0x100);
    auto st2 = storeAt(2, 0x100);
    auto ld = loadAt(3, 0x100);
    lsq.insert(st1);
    lsq.insert(st2);
    lsq.insert(ld);
    EXPECT_EQ(lsq.checkLoad(ld).store, st2);
}

TEST(Lsq, DifferentAddressNoConflict)
{
    Lsq lsq(8);
    auto st = storeAt(1, 0x100);
    auto ld = loadAt(2, 0x108);
    lsq.insert(st);
    lsq.insert(ld);
    EXPECT_EQ(lsq.checkLoad(ld).kind, LoadCheck::Kind::Memory);
}

TEST(Lsq, RetireCompletedFreesHead)
{
    Lsq lsq(2);
    auto a = loadAt(1, 0x10);
    auto b = loadAt(2, 0x20);
    lsq.insert(a);
    lsq.insert(b);
    EXPECT_TRUE(lsq.full());
    a->completed = true;
    lsq.retireCompleted();
    EXPECT_EQ(lsq.size(), 1u);
    EXPECT_FALSE(a->inLsq);
    EXPECT_TRUE(b->inLsq);
}

TEST(Lsq, HeadBlocksRetirement)
{
    Lsq lsq(4);
    auto a = loadAt(1, 0x10);
    auto b = loadAt(2, 0x20);
    lsq.insert(a);
    lsq.insert(b);
    b->completed = true;
    lsq.retireCompleted();
    EXPECT_EQ(lsq.size(), 2u); // head incomplete keeps both
}

TEST(Lsq, SquashRemovesStoreFromIndex)
{
    Lsq lsq(8);
    auto st = storeAt(1, 0x100);
    lsq.insert(st);
    lsq.notifySquashed(st);
    auto ld = loadAt(2, 0x100);
    lsq.insert(ld);
    EXPECT_EQ(lsq.checkLoad(ld).kind, LoadCheck::Kind::Memory);
}

TEST(Lsq, ForwardCounter)
{
    Lsq lsq(4);
    EXPECT_EQ(lsq.forwards(), 0u);
    lsq.countForward();
    EXPECT_EQ(lsq.forwards(), 1u);
}
