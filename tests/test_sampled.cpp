/**
 * @file
 * Tests of sampled simulation (src/sample/): interval fingerprinting,
 * deterministic k-means, sampled-vs-exact IPC accuracy on all three
 * machine models, byte-identical sampled rows across repeated runs
 * and across sharded dispatch, manifest sampling directives, and the
 * per-stat error bars of the reconstructed snapshot.
 *
 * The accuracy pins use workloads with genuine phase structure
 * (mcf, swim); a stochastic profile like vpr has ~20% per-interval
 * IPC dispersion and no signature can recover that (see
 * src/sample/DESIGN.md, "When sampling cannot help").
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "src/sample/sampled_run.hh"
#include "src/sample/signature.hh"
#include "src/shard/manifest.hh"
#include "src/sim/sweep_engine.hh"
#include "src/wload/synthetic.hh"

using namespace kilo;
using namespace kilo::sample;

namespace
{

/** The sampling configuration the accuracy pins are validated at. */
sim::RunConfig
sampledConfig()
{
    sim::RunConfig rc;
    rc.warmupInsts = 20000;
    rc.measureInsts = 400000;
    rc.intervalInsts = 10000;
    rc.numClusters = 12;
    rc.samplingMode = sim::SamplingMode::Sampled;
    return rc;
}

/** Same region, exact (every instruction simulated in detail). */
sim::RunConfig
exactConfig()
{
    sim::RunConfig rc = sampledConfig();
    rc.intervalInsts = 0;
    rc.samplingMode = sim::SamplingMode::Off;
    return rc;
}

/** The JSON keys of a JSONL row, in order of appearance. */
std::vector<std::string>
rowKeys(const std::string &row)
{
    std::vector<std::string> keys;
    for (size_t i = 0; i + 1 < row.size();) {
        size_t open = row.find('"', i);
        if (open == std::string::npos)
            break;
        size_t close = row.find('"', open + 1);
        if (close == std::string::npos)
            break;
        if (close + 1 < row.size() && row[close + 1] == ':')
            keys.push_back(row.substr(open + 1, close - open - 1));
        i = close + 1;
        // Skip the value (string values contain no escapes in our
        // rows, so the next quote after a string value closes it).
        if (row[i] == ':' && i + 1 < row.size() &&
            row[i + 1] == '"') {
            size_t end = row.find('"', i + 2);
            if (end == std::string::npos)
                break;
            i = end + 1;
        }
    }
    return keys;
}

} // anonymous namespace

// --------------------------------------------------- fingerprinting

TEST(SampledFingerprint, IntervalLengthsCoverTheRegion)
{
    auto wl = wload::makeWorkload("swim");
    SignaturePass pass =
        fingerprintIntervals(*wl, 0, 100000, 30000);
    ASSERT_EQ(pass.signatures.size(), 4u);
    ASSERT_EQ(pass.lengths.size(), 4u);
    EXPECT_EQ(pass.lengths[0], 30000u);
    EXPECT_EQ(pass.lengths[1], 30000u);
    EXPECT_EQ(pass.lengths[2], 30000u);
    EXPECT_EQ(pass.lengths[3], 10000u);  // remainder tail

    for (const Signature &sig : pass.signatures) {
        double class_sum = 0.0;
        for (int c = 0; c < isa::NumOpClasses; ++c) {
            EXPECT_GE(sig.v[c], 0.0);
            EXPECT_LE(sig.v[c], 1.0);
            class_sum += sig.v[c];
        }
        EXPECT_NEAR(class_sum, 1.0, 1e-9);
        for (int d = isa::NumOpClasses; d < SigDims; ++d) {
            EXPECT_GE(sig.v[d], 0.0);
            EXPECT_LE(sig.v[d], 1.0);
        }
    }
}

TEST(SampledFingerprint, DeterministicAcrossPasses)
{
    auto a = wload::makeWorkload("mcf");
    auto b = wload::makeWorkload("mcf");
    SignaturePass pa = fingerprintIntervals(*a, 5000, 50000, 10000);
    SignaturePass pb = fingerprintIntervals(*b, 5000, 50000, 10000);
    ASSERT_EQ(pa.signatures.size(), pb.signatures.size());
    for (size_t i = 0; i < pa.signatures.size(); ++i)
        EXPECT_EQ(pa.signatures[i].v, pb.signatures[i].v);
}

// ---------------------------------------------------------- k-means

TEST(SampledKmeans, SeparatesObviousGroups)
{
    // Two well-separated blobs along dimension 0.
    std::vector<Signature> sigs(8);
    for (int i = 0; i < 4; ++i)
        sigs[i].v[0] = 0.1 + 0.01 * i;
    for (int i = 4; i < 8; ++i)
        sigs[i].v[0] = 0.9 - 0.01 * (i - 4);

    Clustering c = clusterSignatures(sigs, 2);
    ASSERT_EQ(c.representatives.size(), 2u);
    ASSERT_EQ(c.assignment.size(), 8u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(c.assignment[i], c.assignment[0]);
    for (int i = 4; i < 8; ++i)
        EXPECT_EQ(c.assignment[i], c.assignment[4]);
    EXPECT_NE(c.assignment[0], c.assignment[4]);
    // Each representative belongs to the cluster it stands for.
    for (uint32_t k = 0; k < 2; ++k)
        EXPECT_EQ(c.assignment[c.representatives[k]], k);
}

TEST(SampledKmeans, EdgeCasesAndDeterminism)
{
    // Empty input -> empty clustering.
    Clustering empty = clusterSignatures({}, 4);
    EXPECT_TRUE(empty.assignment.empty());
    EXPECT_TRUE(empty.representatives.empty());

    // k > n clamps to n; identical points collapse to one cluster.
    std::vector<Signature> same(3);
    Clustering collapsed = clusterSignatures(same, 10);
    EXPECT_EQ(collapsed.representatives.size(), 1u);
    for (uint32_t a : collapsed.assignment)
        EXPECT_EQ(a, 0u);
    // Ties break to the lowest interval index.
    EXPECT_EQ(collapsed.representatives[0], 0u);

    // k == 0 behaves like k == 1.
    Clustering one = clusterSignatures(same, 0);
    EXPECT_EQ(one.representatives.size(), 1u);

    // Same input twice -> identical output.
    std::vector<Signature> sigs(16);
    for (int i = 0; i < 16; ++i)
        sigs[i].v[0] = (i * 37 % 16) / 16.0;
    Clustering c1 = clusterSignatures(sigs, 4);
    Clustering c2 = clusterSignatures(sigs, 4);
    EXPECT_EQ(c1.assignment, c2.assignment);
    EXPECT_EQ(c1.representatives, c2.representatives);
}

// --------------------------------------------------------- accuracy

TEST(SampledAccuracy, WithinTwoPercentOfExactAllMachines)
{
    const mem::MemConfig mem = mem::MemConfig::mem400();
    struct Case
    {
        sim::MachineConfig machine;
        const char *workload;
    };
    const Case cases[] = {
        {sim::MachineConfig::r10_64(), "mcf"},
        {sim::MachineConfig::kilo1024(), "mcf"},
        {sim::MachineConfig::dkip2048(), "mcf"},
        {sim::MachineConfig::kilo1024(), "swim"},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(std::string(c.machine.name) + "/" + c.workload);
        sim::RunResult exact = sim::Simulator::run(
            c.machine, c.workload, mem, exactConfig());
        SampledResult sampled = runSampled(
            c.machine, c.workload, mem, sampledConfig());
        ASSERT_GT(exact.ipc, 0.0);
        double rel_err =
            std::fabs(sampled.result.ipc - exact.ipc) / exact.ipc;
        EXPECT_LE(rel_err, 0.02)
            << "exact " << exact.ipc << " sampled "
            << sampled.result.ipc;
        // Sampling must actually sample: far fewer detailed
        // instructions than the exact run's measured region.
        EXPECT_LT(sampled.simulatedIntervals, sampled.totalIntervals);
        EXPECT_LT(sampled.detailInsts + sampled.warmInsts,
                  sampledConfig().measureInsts);
    }
}

// --------------------------------------------- rows and determinism

TEST(SampledRow, DeterministicAndSchemaMatchesExact)
{
    const auto machine = sim::MachineConfig::dkip2048();
    const mem::MemConfig mem = mem::MemConfig::mem400();

    sim::RunResult exact = sim::Simulator::run(machine, "swim", mem,
                                               exactConfig());
    sim::RunResult s1 = sim::Simulator::run(machine, "swim", mem,
                                            sampledConfig());
    sim::RunResult s2 = sim::Simulator::run(machine, "swim", mem,
                                            sampledConfig());

    std::string row1 = sim::runResultJson(s1);
    std::string row2 = sim::runResultJson(s2);
    EXPECT_EQ(row1, row2);  // byte-identical across repeated runs

    // A sampled row carries exactly the schema an exact row does, so
    // downstream JSONL aggregation cannot tell them apart.
    EXPECT_EQ(rowKeys(row1), rowKeys(sim::runResultJson(exact)));
}

TEST(SampledSweep, ShardedMergeMatchesSingleProcess)
{
    sim::RunConfig rc = sampledConfig();
    rc.measureInsts = 120000;  // keep the 2x4-job matrix quick
    auto jobs = sim::SweepEngine::matrixByName(
        {"r10-64", "dkip"}, {"mcf", "swim"}, {"mem-400"}, rc);

    sim::SweepEngine engine(2);
    auto full = engine.run(jobs);

    // Two shards, merged by global index like the orchestrator does.
    std::vector<sim::RunResult> merged(jobs.size());
    for (uint32_t shard = 0; shard < 2; ++shard) {
        auto indices =
            sim::SweepEngine::shardIndices(jobs.size(), shard, 2);
        auto part = engine.runSubset(jobs, indices);
        for (size_t i = 0; i < indices.size(); ++i)
            merged[indices[i]] = part[i];
    }

    ASSERT_EQ(full.size(), merged.size());
    for (size_t i = 0; i < full.size(); ++i)
        EXPECT_EQ(sim::runResultJson(full[i]),
                  sim::runResultJson(merged[i]))
            << "job " << i;
}

// -------------------------------------------------------- manifests

TEST(SampledManifest, SamplingDirectivesRoundTrip)
{
    shard::Manifest m;
    m.machines = {"dkip"};
    m.workloads = {"mcf"};
    m.mems = {"mem-400"};
    m.run.intervalInsts = 10000;
    m.run.numClusters = 12;
    m.run.samplingMode = sim::SamplingMode::Sampled;

    shard::Manifest back = shard::Manifest::parse(m.serialize());
    EXPECT_TRUE(back == m);
    EXPECT_EQ(back.serialize(), m.serialize());
    EXPECT_NE(m.serialize().find("sampling sampled"),
              std::string::npos);
    EXPECT_NE(m.serialize().find("clusters 12"), std::string::npos);

    // Defaults emit no sampling directives at all, so pre-sampling
    // manifests round-trip byte-identically.
    shard::Manifest plain;
    plain.machines = {"dkip"};
    plain.workloads = {"mcf"};
    plain.mems = {"mem-400"};
    std::string text = plain.serialize();
    EXPECT_EQ(text.find("sampling"), std::string::npos);
    EXPECT_EQ(text.find("clusters"), std::string::npos);
    EXPECT_EQ(text.find("interval"), std::string::npos);

    // Explicit directives parse back.
    shard::Manifest parsed = shard::Manifest::parse(
        "KILOSHARD 1\n"
        "machine dkip\n"
        "workload mcf\n"
        "mem mem-400\n"
        "interval 5000\n"
        "clusters 6\n"
        "sampling sampled\n");
    EXPECT_EQ(parsed.run.intervalInsts, 5000u);
    EXPECT_EQ(parsed.run.numClusters, 6u);
    EXPECT_EQ(parsed.run.samplingMode, sim::SamplingMode::Sampled);

    EXPECT_THROW(shard::Manifest::parse("KILOSHARD 1\nmachine dkip\n"
                                        "workload mcf\nmem mem-400\n"
                                        "sampling maybe\n"),
                 shard::ShardError);
    EXPECT_THROW(shard::Manifest::parse("KILOSHARD 1\nmachine dkip\n"
                                        "workload mcf\nmem mem-400\n"
                                        "clusters 0\n"),
                 shard::ShardError);
}

// ------------------------------------------------------- error bars

TEST(SampledErrorBars, CoverRowStatsWithFiniteSigmas)
{
    SampledResult r =
        runSampled(sim::MachineConfig::kilo1024(), "mcf",
                   mem::MemConfig::mem400(), sampledConfig());
    ASSERT_FALSE(r.errorBars.empty());

    std::set<std::string> names;
    for (const StatError &e : r.errorBars) {
        EXPECT_TRUE(std::isfinite(e.relSigma)) << e.name;
        EXPECT_GE(e.relSigma, 0.0) << e.name;
        names.insert(e.name);
    }
    // The headline stats all carry an error bar.
    EXPECT_TRUE(names.count("ipc"));
    EXPECT_TRUE(names.count("cycles"));
    EXPECT_TRUE(names.count("committed"));
}
