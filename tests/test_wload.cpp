/**
 * @file
 * Unit tests for the workload layer: trace window replay semantics,
 * generator determinism, instruction mix and region reporting; plus a
 * parameterised sweep over all 26 benchmark profiles.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/wload/profile.hh"
#include "src/wload/synthetic.hh"
#include "src/wload/trace_window.hh"
#include "test_helpers.hh"

using namespace kilo;
using namespace kilo::wload;

// ----------------------------------------------------- TraceWindow

TEST(TraceWindow, SequentialGeneration)
{
    test::VectorWorkload wl(test::independentOps(3));
    TraceWindow tw(wl);
    EXPECT_EQ(tw.op(0).dst, 1);
    EXPECT_EQ(tw.op(1).dst, 2);
    EXPECT_EQ(tw.op(2).dst, 3);
    EXPECT_EQ(tw.op(3).dst, 1); // loops
}

TEST(TraceWindow, ReplayReturnsIdenticalOps)
{
    auto wl = makeWorkload("swim");
    TraceWindow tw(*wl);
    auto pc5 = tw.op(5).pc;
    auto addr5 = tw.op(5).effAddr;
    tw.op(100); // run ahead
    EXPECT_EQ(tw.op(5).pc, pc5);
    EXPECT_EQ(tw.op(5).effAddr, addr5);
}

TEST(TraceWindow, ReleaseAdvancesBase)
{
    test::VectorWorkload wl(test::independentOps(2));
    TraceWindow tw(wl);
    tw.op(10);
    tw.release(5);
    EXPECT_EQ(tw.base(), 5u);
    EXPECT_EQ(tw.op(5).dst, tw.op(5).dst); // still accessible
}

TEST(TraceWindowDeath, ReleasedSeqPanics)
{
    test::VectorWorkload wl(test::independentOps(2));
    TraceWindow tw(wl);
    tw.op(10);
    tw.release(5);
    EXPECT_DEATH(tw.op(4), "released");
}

TEST(TraceWindow, FrontierTracksGeneration)
{
    test::VectorWorkload wl(test::independentOps(2));
    TraceWindow tw(wl);
    EXPECT_EQ(tw.frontier(), 0u);
    tw.op(7);
    // Refills are batched: the frontier covers the requested seq and
    // lands on a RefillBatch boundary (deterministic read-ahead).
    EXPECT_GE(tw.frontier(), 8u);
    EXPECT_EQ(tw.frontier() % TraceWindow::RefillBatch, 0u);
}

// ---------------------------------------------- SyntheticWorkload

TEST(Synthetic, NextBlockMatchesNext)
{
    auto a = makeWorkload("mcf");
    auto b = makeWorkload("mcf");
    std::vector<isa::MicroOp> got(4096);
    // Pull b through nextBlock in awkward, varying chunk sizes; the
    // stream must be op-for-op the one next() produces.
    size_t filled = 0;
    size_t chunks[] = {1, 7, 64, 129, 3, 1000};
    size_t c = 0;
    while (filled < got.size()) {
        size_t n = std::min(chunks[c++ % 6], got.size() - filled);
        ASSERT_EQ(b->nextBlock(got.data() + filled, n), n);
        filled += n;
    }
    for (size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(a->next(), got[i]) << "divergence at op " << i;
}

TEST(Synthetic, Deterministic)
{
    auto a = makeWorkload("mcf");
    auto b = makeWorkload("mcf");
    for (int i = 0; i < 5000; ++i) {
        auto oa = a->next();
        auto ob = b->next();
        ASSERT_EQ(oa.pc, ob.pc);
        ASSERT_EQ(oa.effAddr, ob.effAddr);
        ASSERT_EQ(oa.taken, ob.taken);
        ASSERT_EQ(int(oa.cls), int(ob.cls));
    }
}

TEST(Synthetic, ResetRestartsStream)
{
    auto wl = makeWorkload("gcc");
    std::vector<uint64_t> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(wl->next().effAddr);
    wl->reset();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(wl->next().effAddr, first[size_t(i)]);
}

TEST(Synthetic, ChaseIsDependentChain)
{
    WorkloadProfile p;
    p.name = "chase-only";
    p.chaseLoads = 1;
    p.chaseBytes = 1 << 20;
    p.chaseChainLen = 1000000; // effectively endless
    p.indepCompute = 0;
    p.condBranches = 0;
    p.storeEvery = 0;
    p.depComputePerLoad = 0;
    SyntheticWorkload wl(p);
    // Each chase load reads and writes the same register.
    int chase_loads = 0;
    for (int i = 0; i < 200; ++i) {
        auto op = wl.next();
        if (op.isLoad()) {
            EXPECT_EQ(op.src1, op.dst);
            ++chase_loads;
        }
    }
    EXPECT_GT(chase_loads, 50);
}

TEST(Synthetic, ChaseAddressesCoverRegion)
{
    WorkloadProfile p;
    p.name = "chase-cover";
    p.chaseLoads = 1;
    p.chaseBytes = 64 * 256; // 256 nodes
    p.chaseChainLen = 1000000;
    p.indepCompute = 0;
    p.condBranches = 0;
    p.storeEvery = 0;
    p.depComputePerLoad = 0;
    SyntheticWorkload wl(p);
    std::map<uint64_t, int> seen;
    for (int i = 0; i < 256 * 6; ++i) {
        auto op = wl.next();
        if (op.isLoad())
            seen[op.effAddr]++;
    }
    // Sattolo cycle: all nodes visited equally often.
    EXPECT_EQ(seen.size(), 256u);
}

TEST(Synthetic, StreamAdvancesByStride)
{
    WorkloadProfile p;
    p.name = "stream";
    p.streamLoads = 1;
    p.numStreams = 1;
    p.streamBytes = 1 << 20;
    p.streamStride = 64;
    p.indepCompute = 0;
    p.condBranches = 0;
    p.storeEvery = 0;
    p.depComputePerLoad = 0;
    SyntheticWorkload wl(p);
    uint64_t prev = 0;
    bool first = true;
    for (int i = 0; i < 100; ++i) {
        auto op = wl.next();
        if (!op.isLoad())
            continue;
        if (!first) {
            EXPECT_EQ(op.effAddr, prev + 64);
        }
        prev = op.effAddr;
        first = false;
    }
}

TEST(Synthetic, BranchPcsStableAcrossIterations)
{
    auto wl = makeWorkload("bzip2");
    std::map<uint64_t, int> branch_pcs;
    for (int i = 0; i < 5000; ++i) {
        auto op = wl->next();
        if (op.isBranch())
            branch_pcs[op.pc]++;
    }
    // A small static branch set, each executed many times.
    EXPECT_LE(branch_pcs.size(), 8u);
    for (const auto &[pc, n] : branch_pcs)
        EXPECT_GT(n, 10) << "pc " << pc;
}

TEST(Synthetic, RegionsReportedForPrewarm)
{
    auto wl = makeWorkload("mcf");
    auto regs = wl->regions();
    EXPECT_FALSE(regs.empty());
    uint64_t total = 0;
    for (const auto &r : regs)
        total += r.bytes;
    EXPECT_GT(total, 1024u * 1024u); // mcf's chase region alone is 2MB
}

TEST(Synthetic, AtMostTwoSourcesOneDest)
{
    for (const auto &prof : allProfiles()) {
        SyntheticWorkload wl(prof);
        for (int i = 0; i < 500; ++i) {
            auto op = wl.next();
            ASSERT_LE(op.numSrcs(), 2);
            if (op.isStore() || op.isBranch()) {
                ASSERT_EQ(op.dst, isa::NoReg);
            }
        }
    }
}

// ------------------------------------------------ profile registry

TEST(Profiles, SuiteSizesMatchSpec2000)
{
    EXPECT_EQ(intProfiles().size(), 12u);
    EXPECT_EQ(fpProfiles().size(), 14u);
    EXPECT_EQ(allProfiles().size(), 26u);
}

TEST(Profiles, NamesUniqueAndLookupWorks)
{
    std::map<std::string, int> names;
    for (const auto &p : allProfiles())
        names[p.name]++;
    for (const auto &[n, c] : names)
        EXPECT_EQ(c, 1) << n;
    EXPECT_EQ(profileByName("swim").name, "swim");
    EXPECT_TRUE(profileByName("swim").fp);
    EXPECT_FALSE(profileByName("gzip").fp);
}

TEST(ProfilesDeath, UnknownNameFatal)
{
    EXPECT_DEATH(profileByName("nonexistent"), "unknown benchmark");
}

// --------------------------------------- parameterised suite sweep

class EveryBenchmark : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryBenchmark, GeneratesValidOps)
{
    auto wl = makeWorkload(GetParam());
    int branches = 0, loads = 0;
    for (int i = 0; i < 2000; ++i) {
        auto op = wl->next();
        if (op.isBranch()) {
            ++branches;
            EXPECT_NE(op.target, 0u);
        }
        if (op.isMem()) {
            EXPECT_NE(op.effAddr, 0u);
        }
        if (op.isLoad())
            ++loads;
        if (op.dst != isa::NoReg) {
            EXPECT_GE(op.dst, 0);
            EXPECT_LT(op.dst, isa::NumRegs);
        }
    }
    EXPECT_GT(branches, 50);  // every kernel has loop control
    EXPECT_GT(loads, 20);     // and memory traffic
}

TEST_P(EveryBenchmark, FpSuiteUsesFpCompute)
{
    auto prof = profileByName(GetParam());
    auto wl = makeWorkload(GetParam());
    int fp_ops = 0;
    for (int i = 0; i < 2000; ++i)
        fp_ops += isa::isFpClass(wl->next().cls);
    if (prof.fp)
        EXPECT_GT(fp_ops, 100);
    else
        EXPECT_EQ(fp_ops, 0);
}

namespace
{

std::vector<std::string>
allNames()
{
    std::vector<std::string> names;
    for (const auto &p : allProfiles())
        names.push_back(p.name);
    return names;
}

} // anonymous namespace

INSTANTIATE_TEST_SUITE_P(Suite, EveryBenchmark,
                         ::testing::ValuesIn(allNames()),
                         [](const auto &name_info) { return name_info.param; });
