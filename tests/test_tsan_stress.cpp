/**
 * @file
 * Concurrency stress cases aimed at the ThreadSanitizer CI job: the
 * SweepEngine thread pool oversubscribed in both directions (far
 * more workers than jobs, and far more jobs than workers), repeated
 * back-to-back pool construction/teardown, and the
 * shard::Orchestrator fork/poll/merge loop including its crash-retry
 * path. The assertions re-check determinism (parallel == serial
 * byte-for-byte); the real verdict comes from TSan, which fails the
 * run on any data race these schedules expose.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/shard/orchestrator.hh"
#include "src/sim/sweep_engine.hh"

using namespace kilo;

namespace
{

const char *kWorkerPath = "./kilosim_worker";

bool
workerAvailable()
{
    std::ifstream f(kWorkerPath);
    return f.good();
}

/** A short two-job matrix (quick; stresses idle workers). */
std::vector<sim::SweepJob>
tinyMatrix()
{
    sim::RunConfig rc;
    rc.warmupInsts = 500;
    rc.measureInsts = 2000;
    return sim::SweepEngine::matrix(
        {sim::MachineConfig::byName("r10-64")}, {"swim", "mcf"},
        {mem::MemConfig::mem400()}, rc);
}

/** A wide matrix (many short jobs; stresses the job queue). */
std::vector<sim::SweepJob>
wideMatrix()
{
    sim::RunConfig rc;
    rc.warmupInsts = 200;
    rc.measureInsts = 1000;
    std::vector<std::string> wl;
    for (int i = 0; i < 16; ++i)
        wl.push_back(i % 2 ? "swim" : "mcf");
    return sim::SweepEngine::matrix(
        {sim::MachineConfig::byName("r10-64"),
         sim::MachineConfig::byName("dkip")},
        wl, {mem::MemConfig::mem400()}, rc);
}

std::string
jsonl(const std::vector<sim::RunResult> &results)
{
    std::ostringstream os;
    sim::writeJsonRows(os, results);
    return os.str();
}

} // anonymous namespace

TEST(TsanStress, ManyWorkersFewJobs)
{
    // 8 workers racing over 2 jobs: most threads start, find the
    // queue drained and exit — exercises pool startup/teardown
    // against a near-empty queue.
    auto jobs = tinyMatrix();
    std::string serial = jsonl(sim::SweepEngine(1).run(jobs));
    EXPECT_EQ(jsonl(sim::SweepEngine(8).run(jobs)), serial);
}

TEST(TsanStress, FewWorkersManyJobs)
{
    // 2 workers self-scheduling 32 jobs off the shared atomic
    // cursor: maximal contention on the claim counter and the
    // result-slot writes.
    auto jobs = wideMatrix();
    ASSERT_EQ(jobs.size(), 32u);
    std::string serial = jsonl(sim::SweepEngine(1).run(jobs));
    EXPECT_EQ(jsonl(sim::SweepEngine(2).run(jobs)), serial);
}

TEST(TsanStress, RepeatedPoolTeardown)
{
    // Construct/join the pool repeatedly; races between a finishing
    // worker and the joining destructor only show up across many
    // iterations.
    auto jobs = tinyMatrix();
    std::string serial = jsonl(sim::SweepEngine(1).run(jobs));
    for (int i = 0; i < 8; ++i) {
        sim::SweepEngine engine(4);
        EXPECT_EQ(jsonl(engine.run(jobs)), serial);
    }
}

TEST(TsanStress, OrchestratorPollLoopUnderRetry)
{
    if (!workerAvailable())
        GTEST_SKIP() << "kilosim_worker not in CWD";

    shard::Manifest m;
    m.machines = {"r10-64", "dkip"};
    m.workloads = {"swim", "mcf"};
    m.mems = {"mem-400"};
    m.run.warmupInsts = 500;
    m.run.measureInsts = 2000;

    // Single-process reference.
    std::string serial = jsonl(sim::SweepEngine(1).run(m.jobs()));

    // Crash token: the first worker to claim it aborts, its retry
    // succeeds — drives the respawn path inside the poll loop.
    std::string token = ::testing::TempDir() + "kilo_tsan_token";
    { std::ofstream(token) << "boom\n"; }

    shard::OrchestratorConfig cfg;
    cfg.workerPath = kWorkerPath;
    cfg.workerArgs = {"--crash-token", token};
    cfg.shards = 4;
    cfg.maxAttempts = 3;
    shard::Orchestrator orch(m, cfg);
    std::string merged = orch.run();
    std::remove(token.c_str());

    EXPECT_EQ(merged, serial);
    EXPECT_EQ(orch.retries(), 1u);
}
