/**
 * @file
 * Tests of the self-describing statistics layer: registration,
 * collisions, snapshots, registry-driven reset (histogram config
 * preservation) and the generic JSONL emission.
 */

#include <gtest/gtest.h>

#include "src/sim/simulator.hh"
#include "src/stats/json.hh"
#include "src/stats/registry.hh"
#include "src/wload/synthetic.hh"

using namespace kilo;
using namespace kilo::stats;

TEST(Registry, CounterGaugeHistogramSnapshot)
{
    Registry reg;
    uint64_t hits = 0;
    double ratio = 0.25;
    Histogram hist(10, 8);

    reg.counter("hits", "cache hits", &hits, Row::Yes);
    reg.gauge("hit_ratio", "hits per access", [&] { return ratio; });
    reg.gaugeInt("hist_max", "largest sample",
                 [&] { return hist.maxSample(); });
    reg.histogram("latency", "latency distribution", &hist);
    ASSERT_EQ(reg.size(), 4u);

    hits = 42;
    hist.sample(7);
    hist.sample(31);

    Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.entries.size(), 4u);

    const auto *h = snap.find("hits");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->kind, Kind::Counter);
    EXPECT_TRUE(h->inRow);
    EXPECT_FALSE(h->value.real);
    EXPECT_EQ(h->value.u, 42u);

    const auto *r = snap.find("hit_ratio");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->kind, Kind::Gauge);
    EXPECT_FALSE(r->inRow);
    EXPECT_TRUE(r->value.real);
    EXPECT_DOUBLE_EQ(r->value.d, 0.25);

    EXPECT_EQ(snap.value("hist_max"), 31.0);
    EXPECT_EQ(snap.value("latency"), 2.0); // sample count
    EXPECT_EQ(snap.find("nonexistent"), nullptr);
    EXPECT_EQ(snap.value("nonexistent"), 0.0);
}

TEST(Registry, SnapshotPreservesRegistrationOrder)
{
    Registry reg;
    uint64_t a = 1, b = 2, c = 3;
    reg.counter("zeta", "third", &c);
    reg.counter("alpha", "first", &a);
    reg.counter("mid", "second", &b);

    Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.entries.size(), 3u);
    EXPECT_EQ(snap.entries[0].name, "zeta");
    EXPECT_EQ(snap.entries[1].name, "alpha");
    EXPECT_EQ(snap.entries[2].name, "mid");
}

TEST(RegistryDeathTest, DuplicateNamePanics)
{
    Registry reg;
    uint64_t a = 0, b = 0;
    reg.counter("cycles", "first registration", &a);
    EXPECT_DEATH(reg.counter("cycles", "second registration", &b),
                 "registered twice");
}

TEST(Registry, ResetZeroesCountersAndPreservesHistogramConfig)
{
    Registry reg;
    uint64_t count = 99;
    Histogram hist(25, 80); // the issueLatency geometry
    reg.counter("count", "a counter", &count);
    reg.histogram("lat", "a histogram", &hist);
    // Derived gauges must survive reset untouched (they recompute).
    uint64_t basis = 7;
    reg.gaugeInt("derived", "reads an unregistered basis",
                 [&] { return basis; });

    hist.sample(10);
    hist.sample(1000);
    reg.reset();

    EXPECT_EQ(count, 0u);
    EXPECT_EQ(hist.samples(), 0u);
    EXPECT_EQ(basis, 7u);
    // The satellite fix this pins: reset works *in place*, so bucket
    // configuration is never silently reconstructed.
    EXPECT_EQ(hist.bucketWidth(), 25u);
    EXPECT_EQ(hist.numBuckets(), 80u);
    EXPECT_EQ(reg.snapshot().value("derived"), 7.0);
}

TEST(JsonRow, GenericEmissionMatchesHandWrittenFormatting)
{
    Registry reg;
    uint64_t cycles = 1234;
    reg.gauge("ratio", "a real", [] { return 0.5; }, Row::Yes);
    reg.counter("cycles", "an int", &cycles, Row::Yes);
    reg.counter("hidden", "not in the row", &cycles);
    reg.gauge("whole", "a double that prints like an int",
              [] { return 1.0; }, Row::Yes);

    JsonRowBuilder row;
    row.field("machine", std::string_view("M"));
    row.rowStats(reg.snapshot());
    // Doubles use round-trip formatting (0.5 and 1 print exactly as
    // the old precision(17) ostream did); non-row entries are
    // excluded; order follows registration.
    EXPECT_EQ(row.str(),
              "{\"machine\":\"M\",\"ratio\":0.5,\"cycles\":1234,"
              "\"whole\":1}");
}

TEST(JsonRow, RoundTripDoublePrecision)
{
    double v = 0.051481664142399554; // a real IPC value
    JsonRowBuilder row;
    row.field("ipc", v);
    std::string text = row.str();
    double parsed =
        std::strtod(text.c_str() + text.find(':') + 1, nullptr);
    EXPECT_EQ(parsed, v);
}

TEST(CoreRegistry, EveryMachineKindSelfDescribes)
{
    using sim::MachineConfig;
    auto wl = wload::makeWorkload("gzip");

    auto check = [&](const MachineConfig &cfg,
                     const char *kind_stat, bool expect) {
        auto core = sim::Simulator::makeCore(
            cfg, *wl, mem::MemConfig::mem400());
        const auto &defs = core->statsRegistry().defs();
        // The stable row schema head and the mem block tail.
        ASSERT_GE(defs.size(), 15u);
        EXPECT_EQ(defs[0].name, "ipc");
        EXPECT_EQ(defs[1].name, "cycles");
        bool found = false;
        for (const auto &d : defs) {
            EXPECT_FALSE(d.name.empty());
            EXPECT_FALSE(d.description.empty());
            if (d.name == kind_stat)
                found = true;
        }
        EXPECT_EQ(found, expect) << cfg.name << " / " << kind_stat;
    };

    // Decoupled structures register only on the machines that own
    // them, so the schema is genuinely per-kind.
    check(MachineConfig::r10_64(), "llib_inserted_int", false);
    check(MachineConfig::r10_64(), "sliq_occupancy", false);
    check(MachineConfig::dkip2048(), "llib_inserted_int", true);
    check(MachineConfig::dkip2048(), "sliq_occupancy", false);
    check(MachineConfig::kilo1024(), "sliq_occupancy", true);
    check(MachineConfig::kilo1024(), "llib_inserted_int", false);
}

TEST(CoreRegistry, RowSchemaIdenticalAcrossMachineKinds)
{
    using sim::MachineConfig;
    auto wl = wload::makeWorkload("gzip");
    std::vector<std::string> row_names;
    for (const auto &cfg :
         {MachineConfig::r10_64(), MachineConfig::kilo1024(),
          MachineConfig::dkip2048()}) {
        auto core = sim::Simulator::makeCore(
            cfg, *wl, mem::MemConfig::mem400());
        std::vector<std::string> names;
        for (const auto &d : core->statsRegistry().defs()) {
            if (d.inRow)
                names.push_back(d.name);
        }
        if (row_names.empty())
            row_names = names;
        else
            EXPECT_EQ(names, row_names) << cfg.name;
    }
    // The frozen JSONL schema (src/stats/DESIGN.md).
    const std::vector<std::string> expected{
        "ipc", "cycles", "committed", "branches", "mispredict_rate",
        "mp_fraction", "mem_accesses", "l2_misses", "l2_miss_ratio",
        "mem_fills", "mshr_merges", "mshr_peak", "mshr_set_p50",
        "mshr_set_p99", "mshr_set_max", "stall_frontend",
        "stall_empty", "stall_mem", "stall_exec", "stall_depend",
        "stall_issue", "stall_mshr", "stall_decoupled"};
    EXPECT_EQ(row_names, expected);
}
