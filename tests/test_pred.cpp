/**
 * @file
 * Unit tests for the branch predictors: learning behaviour of the
 * perceptron (the paper's default), gshare and bimodal, and the
 * factory.
 */

#include <gtest/gtest.h>

#include "src/pred/perceptron.hh"
#include "src/pred/predictor.hh"
#include "src/pred/table_predictors.hh"

using namespace kilo;
using namespace kilo::pred;

namespace
{

/** Train/test accuracy of @p bp on outcome = f(history). */
template <typename F>
double
accuracy(BranchPredictor &bp, F outcome, int iters = 4000)
{
    uint64_t pc = 0x4000;
    uint64_t hist = 0;
    int correct = 0;
    for (int i = 0; i < iters; ++i) {
        bool actual = outcome(i, hist);
        bool pred = bp.lookup(pc, hist);
        if (i > iters / 2) // measure after warm-up
            correct += pred == actual;
        bp.train(pc, hist, actual);
        hist = (hist << 1) | (actual ? 1 : 0);
    }
    return double(correct) / double(iters / 2);
}

} // anonymous namespace

TEST(Perceptron, LearnsAlwaysTaken)
{
    PerceptronPredictor p;
    EXPECT_GT(accuracy(p, [](int, uint64_t) { return true; }), 0.99);
}

TEST(Perceptron, LearnsAlternating)
{
    PerceptronPredictor p;
    EXPECT_GT(accuracy(p, [](int i, uint64_t) { return i % 2 == 0; }),
              0.95);
}

TEST(Perceptron, LearnsHistoryCorrelation)
{
    // Outcome equals the direction two branches ago: linearly
    // separable on history, the perceptron's home turf.
    PerceptronPredictor p;
    EXPECT_GT(accuracy(p,
                       [](int, uint64_t h) { return (h >> 1) & 1; }),
              0.95);
}

TEST(Perceptron, LearnsShortPeriod)
{
    PerceptronPredictor p;
    EXPECT_GT(accuracy(p, [](int i, uint64_t) { return i % 4 != 0; }),
              0.9);
}

TEST(Perceptron, ThresholdMatchesFormula)
{
    PerceptronPredictor p(1024, 28);
    EXPECT_EQ(p.threshold(), int32_t(1.93 * 28 + 14));
    EXPECT_EQ(p.historyLength(), 28u);
}

TEST(Perceptron, DistinctBranchesIndependent)
{
    PerceptronPredictor p;
    uint64_t hist = 0;
    for (int i = 0; i < 2000; ++i) {
        p.train(0x1000, hist, true);
        p.train(0x2000, hist, false);
        hist = (hist << 1) | (i & 1);
    }
    EXPECT_TRUE(p.lookup(0x1000, hist));
    EXPECT_FALSE(p.lookup(0x2000, hist));
}

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor p;
    EXPECT_GT(accuracy(p, [](int i, uint64_t) { return i % 10 != 0; }),
              0.85);
}

TEST(Bimodal, SaturatingCounterHysteresis)
{
    BimodalPredictor p(64);
    uint64_t pc = 0x40;
    // Drive strongly taken.
    for (int i = 0; i < 4; ++i)
        p.train(pc, 0, true);
    // One not-taken must not flip a saturated counter.
    p.train(pc, 0, false);
    EXPECT_TRUE(p.lookup(pc, 0));
}

TEST(Gshare, LearnsHistoryPattern)
{
    GsharePredictor p;
    EXPECT_GT(accuracy(p, [](int i, uint64_t) { return i % 2 == 0; }),
              0.9);
}

TEST(AlwaysTaken, PredictsTaken)
{
    AlwaysTakenPredictor p;
    EXPECT_TRUE(p.lookup(0x123, 0xff));
    EXPECT_FALSE(p.isPerfect());
}

TEST(Perfect, FlagsOracle)
{
    PerfectPredictor p;
    EXPECT_TRUE(p.isPerfect());
}

TEST(Factory, BuildsEveryKind)
{
    for (auto kind : {BpKind::Perceptron, BpKind::Gshare,
                      BpKind::Bimodal, BpKind::AlwaysTaken,
                      BpKind::Perfect}) {
        auto bp = makePredictor(kind);
        ASSERT_NE(bp, nullptr);
        EXPECT_EQ(bp->kind(), kind);
    }
}

TEST(Factory, KindNames)
{
    EXPECT_STREQ(bpKindName(BpKind::Perceptron), "perceptron");
    EXPECT_STREQ(bpKindName(BpKind::Perfect), "perfect");
}

TEST(Perceptron, BeatsBimodalOnHistoryPattern)
{
    PerceptronPredictor perc;
    BimodalPredictor bim;
    // Period-3 pattern: a PC-indexed 2-bit counter saturates toward
    // the 2/3-taken bias, while history resolves it exactly.
    auto f = [](int i, uint64_t) { return i % 3 != 0; };
    EXPECT_GT(accuracy(perc, f), accuracy(bim, f) + 0.1);
}
