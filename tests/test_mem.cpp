/**
 * @file
 * Unit tests for the cache model, the fixed-capacity MSHR file and
 * the two-level hierarchy, including MSHR-style miss merging,
 * bounded-occupancy behaviour under streaming misses, miss-statistic
 * accounting and functional pre-warming.
 */

#include <gtest/gtest.h>

#include "src/mem/cache.hh"
#include "src/mem/hierarchy.hh"
#include "src/mem/mshr.hh"

using namespace kilo;
using namespace kilo::mem;

namespace
{

CacheGeometry
smallGeom()
{
    CacheGeometry g;
    g.sizeBytes = 1024; // 16 lines
    g.assoc = 2;        // 8 sets
    g.lineBytes = 64;
    return g;
}

} // anonymous namespace

// ---------------------------------------------------- SetAssocCache

TEST(Cache, GeometryDerivation)
{
    SetAssocCache c(smallGeom());
    EXPECT_EQ(c.numSets(), 8u);
    EXPECT_EQ(c.numWays(), 2u);
    EXPECT_EQ(c.lineSize(), 64u);
}

TEST(Cache, ColdMissThenHit)
{
    SetAssocCache c(smallGeom());
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1038)); // same line
    EXPECT_EQ(c.accesses(), 3u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, ProbeDoesNotAllocate)
{
    SetAssocCache c(smallGeom());
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_FALSE(c.access(0x2000));
    EXPECT_TRUE(c.probe(0x2000));
    EXPECT_EQ(c.accesses(), 1u); // probe not counted
}

TEST(Cache, LruEviction)
{
    SetAssocCache c(smallGeom());
    // Three lines mapping to the same set (set stride = 8 lines).
    uint64_t a = 0;
    uint64_t b = 8 * 64;
    uint64_t d = 16 * 64;
    c.access(a);
    c.access(b);
    c.access(a);     // a most recent
    c.access(d);     // evicts b (LRU)
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, InvalidateAll)
{
    SetAssocCache c(smallGeom());
    c.access(0x40);
    c.invalidateAll();
    EXPECT_FALSE(c.probe(0x40));
}

TEST(Cache, MissRatio)
{
    SetAssocCache c(smallGeom());
    c.access(0x0);
    c.access(0x0);
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.5);
    c.resetStats();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.0);
}

TEST(Cache, TouchEvolvesTagsWithoutCountingStats)
{
    SetAssocCache c(smallGeom());
    // Touch of an absent line installs it but counts nothing: the
    // MSHR merge path charges the miss to the primary access only.
    c.touch(0x3000);
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_TRUE(c.probe(0x3000));
    // Touch of a present line refreshes LRU exactly like access():
    // a, b resident; touching a makes b the LRU victim.
    uint64_t a = 0, b = 8 * 64, d = 16 * 64; // one set, 2 ways
    c.access(a);
    c.access(b); // LRU order: a, b
    c.touch(a);  // LRU order: b, a
    c.access(d); // evicts b
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
}

TEST(Cache, NonPow2SetCountRoundsDownInsteadOfPanicking)
{
    // 384 KB / 64 B / 8-way = 768 sets: not a power of two. The old
    // model KILO_ASSERTed mid-sweep; now it indexes with the largest
    // power of two that fits.
    CacheGeometry g;
    g.sizeBytes = 384 * 1024;
    g.assoc = 8;
    g.lineBytes = 64;
    SetAssocCache c(g);
    EXPECT_EQ(c.numSets(), 512u);
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
}

// -------------------------------------------------------- MshrFile

TEST(Mshr, LookupTracksLiveFillsOnly)
{
    MshrFile f(64, 400);
    EXPECT_EQ(f.lookup(7, 0), 0u);
    f.allocate(7, 400, 0);
    EXPECT_EQ(f.lookup(7, 100), 400u);
    EXPECT_EQ(f.occupancy(), 1u);
    // At the fill's landing cycle the entry expires and is reclaimed.
    EXPECT_EQ(f.lookup(7, 400), 0u);
    EXPECT_EQ(f.occupancy(), 0u);
}

TEST(Mshr, CapacityIsFixedAndRoundedToWholeSets)
{
    MshrFile f(100, 400); // 100/8 -> 13 sets -> 16 sets x 8 ways
    EXPECT_EQ(f.capacity(), 128u);
}

TEST(Mshr, TinyCapacityIsExact)
{
    // A deliberately small file (capacity-sensitivity sweeps) must
    // really be that small: one entry, not a rounded-up 8-way set.
    MshrFile tiny(1, 1000000);
    EXPECT_EQ(tiny.capacity(), 1u);
    tiny.allocate(10, 5000, 0);
    EXPECT_EQ(tiny.lookup(10, 100), 5000u);
    tiny.allocate(11, 5000, 0); // displaces the only entry
    EXPECT_EQ(tiny.displacements(), 1u);
    EXPECT_EQ(tiny.lookup(10, 100), 0u);
    EXPECT_EQ(tiny.lookup(11, 100), 5000u);
    EXPECT_EQ(tiny.occupancy(), 1u);
}

TEST(Mshr, SetOccupancyHistogramSamplesEveryAllocation)
{
    MshrFile f(64, 400); // 8 sets x 8 ways
    // Three fills landing in the same set (stride = set count): the
    // per-set occupancy samples are 1, 2, 3.
    f.allocate(8, 400, 0);
    f.allocate(16, 400, 0);
    f.allocate(24, 400, 0);
    // One fill alone in a different set: sample 1.
    f.allocate(3, 400, 0);
    const Histogram &h = f.setOccupancy();
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_EQ(h.bucketCount(1), 2u); // two allocations saw 1 live way
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.maxSample(), 3u);
    EXPECT_EQ(h.percentile(0.50), 1u);
    EXPECT_EQ(h.percentile(0.99), 3u);
    // resetPeak (end of warm-up) restarts the distribution.
    f.resetPeak();
    EXPECT_EQ(f.setOccupancy().samples(), 0u);
    EXPECT_EQ(f.setOccupancy().maxSample(), 0u);
}

TEST(Hierarchy, SetOccupancySurfacesThroughHierarchy)
{
    MemoryHierarchy mem(MemConfig::mem400());
    // 64 distinct-line cold misses, all in flight together.
    for (uint64_t i = 0; i < 64; ++i)
        mem.access(i * 64, false, 0);
    const Histogram &h = mem.mshrSetOccupancy();
    EXPECT_EQ(h.samples(), 64u);
    EXPECT_GE(h.maxSample(), 1u);
    EXPECT_GE(h.percentile(0.99), h.percentile(0.50));
    mem.resetStats();
    EXPECT_EQ(mem.mshrSetOccupancy().samples(), 0u);
}

TEST(Mshr, LookupReclaimsExpiredNeighboursInProbedSet)
{
    MshrFile f(8, 1000000); // one set, sweep far away
    f.allocate(1 * 16, 100, 0);
    f.allocate(2 * 16, 200, 0);
    f.allocate(3 * 16, 5000, 0);
    EXPECT_EQ(f.occupancy(), 3u);
    // Probing any line in the set at t=300 reclaims the two landed
    // fills even though neither is the probed line.
    EXPECT_EQ(f.lookup(3 * 16, 300), 5000u);
    EXPECT_EQ(f.occupancy(), 1u);
}

TEST(Mshr, CompactScanReclaimsNeverRevisitedLines)
{
    // The regression the old unordered_map tracker failed: entries
    // for lines that are never touched again must still be reclaimed
    // once their fills land.
    MshrFile f(256, 100);
    for (uint64_t line = 0; line < 64; ++line)
        f.allocate(line, 100 + line, line);
    EXPECT_EQ(f.occupancy(), 64u);
    // Far in the future, any operation past the sweep deadline
    // reclaims everything — including lines never looked up again.
    EXPECT_EQ(f.lookup(9999, 100000), 0u);
    EXPECT_EQ(f.occupancy(), 0u);
    EXPECT_EQ(f.peakOccupancy(), 64u);
}

TEST(Mshr, DisplacementOnlyUnderLiveSetPressure)
{
    MshrFile f(8, 1000000); // one set of 8 ways, sweep far away
    for (uint64_t i = 0; i < 8; ++i)
        f.allocate(i * 16, 5000, 0); // same set (index bits equal)
    EXPECT_EQ(f.displacements(), 0u);
    f.allocate(9 * 16, 5000, 0); // ninth live fill in the set
    EXPECT_EQ(f.displacements(), 1u);
    EXPECT_EQ(f.occupancy(), 8u); // still bounded by capacity
}

// ------------------------------------------------- MemoryHierarchy

TEST(Hierarchy, PerfectL1AlwaysFast)
{
    MemoryHierarchy m(MemConfig::l1Only());
    for (uint64_t a = 0; a < 100 * 64; a += 64) {
        auto r = m.access(a, false, 0);
        EXPECT_EQ(r.latency, 2u);
        EXPECT_EQ(r.level, ServiceLevel::L1);
        EXPECT_FALSE(r.offChip());
    }
}

TEST(Hierarchy, PerfectL2ServicesL1Misses)
{
    MemoryHierarchy m(MemConfig::l2Perfect11());
    auto r1 = m.access(0x10000, false, 0);
    EXPECT_EQ(r1.level, ServiceLevel::L2);
    EXPECT_EQ(r1.latency, 11u);
    auto r2 = m.access(0x10000, false, 20);
    EXPECT_EQ(r2.level, ServiceLevel::L1);
    EXPECT_EQ(r2.latency, 2u);
}

TEST(Hierarchy, L2Perfect21Latency)
{
    MemoryHierarchy m(MemConfig::l2Perfect21());
    EXPECT_EQ(m.access(0x10000, false, 0).latency, 21u);
}

TEST(Hierarchy, ColdMissGoesToMemory)
{
    MemoryHierarchy m(MemConfig::mem400());
    auto r = m.access(0x500000, false, 0);
    EXPECT_EQ(r.level, ServiceLevel::Memory);
    EXPECT_EQ(r.latency, 400u);
    EXPECT_TRUE(r.offChip());
}

TEST(Hierarchy, MemLatencyPresets)
{
    EXPECT_EQ(MemoryHierarchy(MemConfig::mem100())
                  .access(0x0, false, 0).latency, 100u);
    EXPECT_EQ(MemoryHierarchy(MemConfig::mem1000())
                  .access(0x0, false, 0).latency, 1000u);
}

TEST(Hierarchy, MshrMergeCompletesWithPrimary)
{
    MemoryHierarchy m(MemConfig::mem400());
    auto first = m.access(0x700000, false, 100);
    EXPECT_EQ(first.latency, 400u);
    // Second access to the same line 150 cycles later merges.
    auto second = m.access(0x700008, false, 250);
    EXPECT_EQ(second.level, ServiceLevel::Memory);
    EXPECT_EQ(second.latency, 250u); // completes at cycle 500
    EXPECT_EQ(m.mshrMerges(), 1u);
}

TEST(Hierarchy, MergedLatencyFloorsAtL1)
{
    MemoryHierarchy m(MemConfig::mem400());
    m.access(0x700000, false, 0);
    auto late = m.access(0x700000, false, 399);
    EXPECT_GE(late.latency, 2u);
}

TEST(Hierarchy, AfterFillLineHitsL1)
{
    MemoryHierarchy m(MemConfig::mem400());
    m.access(0x700000, false, 0);
    auto r = m.access(0x700000, false, 1000);
    EXPECT_EQ(r.level, ServiceLevel::L1);
}

TEST(Hierarchy, HitAfterMissInL2)
{
    MemoryHierarchy m(MemConfig::mem400());
    m.access(0x700000, false, 0);
    // Evict from L1 (32KB, 4-way, 128 sets): lines 0x700000 + k*8KB
    // map to the same L1 set.
    for (int k = 1; k <= 8; ++k)
        m.access(0x700000 + uint64_t(k) * 32 * 1024, false, 1000 + k);
    auto r = m.access(0x700000, false, 5000);
    EXPECT_EQ(r.level, ServiceLevel::L2);
    EXPECT_EQ(r.latency, 11u);
}

TEST(Hierarchy, PrewarmInstallsLines)
{
    MemoryHierarchy m(MemConfig::mem400());
    m.prewarm(0x100000, 64 * 1024);
    m.resetStats();
    auto r = m.access(0x100040, false, 0);
    EXPECT_NE(r.level, ServiceLevel::Memory);
    EXPECT_EQ(m.l2Misses(), 0u);
}

TEST(Hierarchy, PrewarmRespectsCapacityLru)
{
    MemConfig cfg = MemConfig::mem400();
    cfg.l2Size = 64 * 1024;
    MemoryHierarchy m(cfg);
    m.prewarm(0x100000, 1024 * 1024); // 16x the L2
    // The head of the region was evicted by the tail.
    auto head = m.access(0x100000, false, 0);
    EXPECT_EQ(head.level, ServiceLevel::Memory);
    // The tail survives.
    auto tail = m.access(0x100000 + 1024 * 1024 - 64, false, 0);
    EXPECT_NE(tail.level, ServiceLevel::Memory);
}

TEST(Hierarchy, StoreInstallsLine)
{
    MemoryHierarchy m(MemConfig::mem400());
    m.access(0x900000, true, 0);
    auto r = m.access(0x900000, false, 1000);
    EXPECT_EQ(r.level, ServiceLevel::L1);
}

TEST(Hierarchy, StatsAccumulateAndReset)
{
    MemoryHierarchy m(MemConfig::mem400());
    m.access(0x0, false, 0);
    m.access(0x40000000, false, 0);
    EXPECT_EQ(m.accesses(), 2u);
    EXPECT_EQ(m.l2Misses(), 2u);
    EXPECT_DOUBLE_EQ(m.l2MissRatio(), 1.0);
    m.resetStats();
    EXPECT_EQ(m.accesses(), 0u);
}

TEST(Hierarchy, L2SizeSweepPresetNames)
{
    auto cfg = MemConfig::withL2Size(2 * 1024 * 1024);
    EXPECT_EQ(cfg.l2Size, 2u * 1024 * 1024);
    EXPECT_NE(cfg.name.find("2048KB"), std::string::npos);
}

TEST(Hierarchy, SmallerL2MissesMore)
{
    MemConfig small = MemConfig::withL2Size(64 * 1024);
    MemConfig big = MemConfig::withL2Size(4 * 1024 * 1024);
    MemoryHierarchy ms(small), mb(big);
    // 1MB working set, two passes; time advances so fills land.
    uint64_t now = 0;
    for (int pass = 0; pass < 2; ++pass) {
        for (uint64_t a = 0; a < (1u << 20); a += 64) {
            ms.access(a, false, now);
            mb.access(a, false, now);
            now += 500;
        }
    }
    EXPECT_GT(ms.l2Misses(), mb.l2Misses());
}

TEST(Hierarchy, StreamingMissesKeepMshrOccupancyBounded)
{
    // Regression for the in-flight-fill leak: the old unordered_map
    // only erased an expired entry when the *same line* was
    // re-accessed, so a streaming workload accumulated one entry per
    // missed line forever. A 1M-distinct-line stream must stay
    // within the fixed MSHR capacity at every point.
    MemoryHierarchy m(MemConfig::mem400());
    uint64_t now = 0;
    for (uint64_t line = 0; line < 1000000; ++line) {
        m.access(line * 64, false, now);
        now += 2;
        ASSERT_LE(m.mshrOccupancy(), m.mshrCapacity());
    }
    EXPECT_LE(m.mshrPeakOccupancy(), m.mshrCapacity());
    // At 2 cycles/access only ~200 fills are ever in flight at once;
    // the default file absorbs the stream without displacing any.
    EXPECT_EQ(m.mshrDisplacements(), 0u);
    EXPECT_EQ(m.l1Misses(), 1000000u);
}

TEST(Hierarchy, NoL2MissesCountAsMemoryFillsNotL2Misses)
{
    // An L1-only (but imperfect) hierarchy has no L2 to miss in; the
    // old accounting bumped nL2Misses anyway and inflated
    // l2MissRatio().
    MemConfig cfg = MemConfig::mem400();
    cfg.hasL2 = false;
    MemoryHierarchy m(cfg);
    auto r = m.access(0x500000, false, 0);
    EXPECT_EQ(r.level, ServiceLevel::Memory);
    EXPECT_EQ(r.latency, 400u);
    EXPECT_EQ(m.l1Misses(), 1u);
    EXPECT_EQ(m.l2Misses(), 0u);
    EXPECT_EQ(m.memFills(), 1u);
    EXPECT_DOUBLE_EQ(m.l2MissRatio(), 0.0);
    // Merging into the in-flight fill still works without an L2.
    auto merged = m.access(0x500008, false, 100);
    EXPECT_EQ(merged.latency, 300u);
    EXPECT_EQ(m.mshrMerges(), 1u);
    EXPECT_EQ(m.memFills(), 1u);
}

TEST(Hierarchy, MergedAccessesCountAsMergesOnly)
{
    // Hand-computed trace against MEM-400 (L1 32K/4w, L2 512K/8w):
    //   t=0    load 0x700000  cold miss       -> L1 miss, L2 miss,
    //                                            fill lands at t=400
    //   t=100  load 0x700008  same line       -> merge, latency 300
    //   t=200  load 0x700040  next line, cold -> L1 miss, L2 miss
    //   t=300  load 0x700010  first line      -> merge, latency 100
    //   t=1000 load 0x700000  after the fill  -> L1 hit
    // The old accounting double-charged each merge as one more L1
    // miss AND one more L2 miss.
    MemoryHierarchy m(MemConfig::mem400());

    auto a = m.access(0x700000, false, 0);
    EXPECT_EQ(a.latency, 400u);
    auto b = m.access(0x700008, false, 100);
    EXPECT_EQ(b.latency, 300u);
    auto c = m.access(0x700040, false, 200);
    EXPECT_EQ(c.latency, 400u);
    auto d = m.access(0x700010, false, 300);
    EXPECT_EQ(d.latency, 100u);
    auto e = m.access(0x700000, false, 1000);
    EXPECT_EQ(e.level, ServiceLevel::L1);

    EXPECT_EQ(m.accesses(), 5u);
    EXPECT_EQ(m.l1Misses(), 2u);
    EXPECT_EQ(m.l2Misses(), 2u);
    EXPECT_EQ(m.memFills(), 2u);
    EXPECT_EQ(m.mshrMerges(), 2u);
    EXPECT_DOUBLE_EQ(m.l2MissRatio(), 2.0 / 5.0);
}

TEST(Hierarchy, NonPow2L2SweepPointConstructs)
{
    // 384 KB was a mid-sweep panic: 384K/64/8 = 768 sets tripped
    // KILO_ASSERT(isPow2(sets)). It now rounds down with a warning
    // and simulates.
    MemoryHierarchy m(MemConfig::withL2Size(384 * 1024));
    auto r = m.access(0x100000, false, 0);
    EXPECT_EQ(r.level, ServiceLevel::Memory);
    auto again = m.access(0x100000, false, 1000);
    EXPECT_EQ(again.level, ServiceLevel::L1);
}

TEST(Hierarchy, PrewarmDoesNotPerturbStatsAfterReset)
{
    // Warm-up hygiene across all six Table-1 presets: prewarm plus
    // resetStats must leave every hierarchy- and MSHR-level counter
    // at zero, so the measured region starts clean.
    const MemConfig presets[] = {
        MemConfig::l1Only(),      MemConfig::l2Perfect11(),
        MemConfig::l2Perfect21(), MemConfig::mem100(),
        MemConfig::mem400(),      MemConfig::mem1000(),
    };
    for (const MemConfig &cfg : presets) {
        MemoryHierarchy m(cfg);
        m.prewarm(0x100000, 256 * 1024);
        m.resetStats();
        EXPECT_EQ(m.accesses(), 0u) << cfg.name;
        EXPECT_EQ(m.l1Misses(), 0u) << cfg.name;
        EXPECT_EQ(m.l2Misses(), 0u) << cfg.name;
        EXPECT_EQ(m.memFills(), 0u) << cfg.name;
        EXPECT_EQ(m.mshrMerges(), 0u) << cfg.name;
        EXPECT_EQ(m.mshrOccupancy(), 0u) << cfg.name;
        EXPECT_EQ(m.mshrPeakOccupancy(), 0u) << cfg.name;
        EXPECT_EQ(m.mshrDisplacements(), 0u) << cfg.name;
    }
}

TEST(Hierarchy, DefaultMshrCapacityIsGenerous)
{
    MemConfig cfg;
    EXPECT_EQ(cfg.numMshrs, 4096u);
    MemoryHierarchy m(MemConfig::mem400());
    EXPECT_GE(m.mshrCapacity(), cfg.numMshrs);
}

TEST(Hierarchy, ServiceLevelNames)
{
    EXPECT_STREQ(serviceLevelName(ServiceLevel::L1), "L1");
    EXPECT_STREQ(serviceLevelName(ServiceLevel::L2), "L2");
    EXPECT_STREQ(serviceLevelName(ServiceLevel::Memory), "MEM");
}

TEST(Hierarchy, Table1ConfigNames)
{
    EXPECT_EQ(MemConfig::l1Only().name, "L1-2");
    EXPECT_EQ(MemConfig::l2Perfect11().name, "L2-11");
    EXPECT_EQ(MemConfig::l2Perfect21().name, "L2-21");
    EXPECT_EQ(MemConfig::mem100().name, "MEM-100");
    EXPECT_EQ(MemConfig::mem400().name, "MEM-400");
    EXPECT_EQ(MemConfig::mem1000().name, "MEM-1000");
}

// --------------------------- finite MSHRs as a structural hazard

TEST(MshrStall, WouldBlockOnlyWhenSetIsFullOfLiveFills)
{
    // 8 entries at Ways=8 -> one set: easy to saturate exactly.
    MemConfig cfg = MemConfig::mem400();
    cfg.numMshrs = 8;
    cfg.mshrStall = true;
    MemoryHierarchy m(cfg);

    uint64_t now = 0;
    // Fill every way with a distinct off-chip miss. Large strides
    // dodge both caches so each access starts a real fill.
    auto addr_of = [](uint64_t i) { return 0x40000000ull + (i << 20); };
    for (uint64_t i = 0; i < 8; ++i) {
        EXPECT_FALSE(m.wouldBlock(addr_of(i), now));
        auto res = m.access(addr_of(i), false, now);
        EXPECT_EQ(res.level, ServiceLevel::Memory);
    }
    EXPECT_EQ(m.mshrOccupancy(), 8u);

    // A ninth distinct line is refused ...
    EXPECT_TRUE(m.wouldBlock(addr_of(8), now));
    // ... but a merge into an in-flight fill is not ...
    EXPECT_FALSE(m.wouldBlock(addr_of(0), now));
    // ... and neither is a line the caches already hold.
    m.prewarm(0x1000, 64);
    EXPECT_FALSE(m.wouldBlock(0x1000, now));

    // Once the fills land, the set drains and the access proceeds.
    now += cfg.memLatency + 1;
    EXPECT_FALSE(m.wouldBlock(addr_of(8), now));
    EXPECT_EQ(m.access(addr_of(8), false, now).level,
              ServiceLevel::Memory);

    // Back-pressure was counted, displacement never happened.
    EXPECT_EQ(m.mshrStalls(), 1u);
    EXPECT_EQ(m.mshrDisplacements(), 0u);
}

TEST(MshrStall, OffByDefaultAndNeverBlocksWhenDisabled)
{
    MemConfig cfg = MemConfig::mem400();
    EXPECT_FALSE(cfg.mshrStall);
    cfg.numMshrs = 8;
    MemoryHierarchy m(cfg);
    uint64_t now = 0;
    for (uint64_t i = 0; i < 32; ++i) {
        EXPECT_FALSE(m.wouldBlock(0x40000000ull + (i << 20), now));
        m.access(0x40000000ull + (i << 20), false, now);
    }
    EXPECT_EQ(m.mshrStalls(), 0u);
    // The displacement model still runs when stalling is off.
    EXPECT_GT(m.mshrDisplacements(), 0u);
}

TEST(MshrStall, ProbeDoesNotPerturbTagOrStatState)
{
    MemConfig cfg = MemConfig::mem400();
    cfg.numMshrs = 8;
    cfg.mshrStall = true;
    MemoryHierarchy a(cfg), b(cfg);
    uint64_t now = 0;
    // b sees a wouldBlock probe before every access, a never does;
    // the access streams must behave identically.
    for (uint64_t i = 0; i < 5000; ++i) {
        uint64_t addr = (i * 2654435761u) & 0x3fffffc0u;
        (void)b.wouldBlock(addr, now);
        auto ra = a.access(addr, false, now);
        auto rb = b.access(addr, false, now);
        ASSERT_EQ(ra.latency, rb.latency) << "access " << i;
        ASSERT_EQ(ra.level, rb.level) << "access " << i;
        now += 3;
    }
    EXPECT_EQ(a.accesses(), b.accesses());
    EXPECT_EQ(a.l1Misses(), b.l1Misses());
    EXPECT_EQ(a.l2Misses(), b.l2Misses());
    EXPECT_EQ(a.memFills(), b.memFills());
    EXPECT_EQ(a.mshrMerges(), b.mshrMerges());
}
