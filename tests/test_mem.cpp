/**
 * @file
 * Unit tests for the cache model and the two-level hierarchy,
 * including MSHR-style miss merging and functional pre-warming.
 */

#include <gtest/gtest.h>

#include "src/mem/cache.hh"
#include "src/mem/hierarchy.hh"

using namespace kilo;
using namespace kilo::mem;

namespace
{

CacheGeometry
smallGeom()
{
    CacheGeometry g;
    g.sizeBytes = 1024; // 16 lines
    g.assoc = 2;        // 8 sets
    g.lineBytes = 64;
    return g;
}

} // anonymous namespace

// ---------------------------------------------------- SetAssocCache

TEST(Cache, GeometryDerivation)
{
    SetAssocCache c(smallGeom());
    EXPECT_EQ(c.numSets(), 8u);
    EXPECT_EQ(c.numWays(), 2u);
    EXPECT_EQ(c.lineSize(), 64u);
}

TEST(Cache, ColdMissThenHit)
{
    SetAssocCache c(smallGeom());
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1038)); // same line
    EXPECT_EQ(c.accesses(), 3u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, ProbeDoesNotAllocate)
{
    SetAssocCache c(smallGeom());
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_FALSE(c.access(0x2000));
    EXPECT_TRUE(c.probe(0x2000));
    EXPECT_EQ(c.accesses(), 1u); // probe not counted
}

TEST(Cache, LruEviction)
{
    SetAssocCache c(smallGeom());
    // Three lines mapping to the same set (set stride = 8 lines).
    uint64_t a = 0;
    uint64_t b = 8 * 64;
    uint64_t d = 16 * 64;
    c.access(a);
    c.access(b);
    c.access(a);     // a most recent
    c.access(d);     // evicts b (LRU)
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, InvalidateAll)
{
    SetAssocCache c(smallGeom());
    c.access(0x40);
    c.invalidateAll();
    EXPECT_FALSE(c.probe(0x40));
}

TEST(Cache, MissRatio)
{
    SetAssocCache c(smallGeom());
    c.access(0x0);
    c.access(0x0);
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.5);
    c.resetStats();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.0);
}

// ------------------------------------------------- MemoryHierarchy

TEST(Hierarchy, PerfectL1AlwaysFast)
{
    MemoryHierarchy m(MemConfig::l1Only());
    for (uint64_t a = 0; a < 100 * 64; a += 64) {
        auto r = m.access(a, false, 0);
        EXPECT_EQ(r.latency, 2u);
        EXPECT_EQ(r.level, ServiceLevel::L1);
        EXPECT_FALSE(r.offChip());
    }
}

TEST(Hierarchy, PerfectL2ServicesL1Misses)
{
    MemoryHierarchy m(MemConfig::l2Perfect11());
    auto r1 = m.access(0x10000, false, 0);
    EXPECT_EQ(r1.level, ServiceLevel::L2);
    EXPECT_EQ(r1.latency, 11u);
    auto r2 = m.access(0x10000, false, 20);
    EXPECT_EQ(r2.level, ServiceLevel::L1);
    EXPECT_EQ(r2.latency, 2u);
}

TEST(Hierarchy, L2Perfect21Latency)
{
    MemoryHierarchy m(MemConfig::l2Perfect21());
    EXPECT_EQ(m.access(0x10000, false, 0).latency, 21u);
}

TEST(Hierarchy, ColdMissGoesToMemory)
{
    MemoryHierarchy m(MemConfig::mem400());
    auto r = m.access(0x500000, false, 0);
    EXPECT_EQ(r.level, ServiceLevel::Memory);
    EXPECT_EQ(r.latency, 400u);
    EXPECT_TRUE(r.offChip());
}

TEST(Hierarchy, MemLatencyPresets)
{
    EXPECT_EQ(MemoryHierarchy(MemConfig::mem100())
                  .access(0x0, false, 0).latency, 100u);
    EXPECT_EQ(MemoryHierarchy(MemConfig::mem1000())
                  .access(0x0, false, 0).latency, 1000u);
}

TEST(Hierarchy, MshrMergeCompletesWithPrimary)
{
    MemoryHierarchy m(MemConfig::mem400());
    auto first = m.access(0x700000, false, 100);
    EXPECT_EQ(first.latency, 400u);
    // Second access to the same line 150 cycles later merges.
    auto second = m.access(0x700008, false, 250);
    EXPECT_EQ(second.level, ServiceLevel::Memory);
    EXPECT_EQ(second.latency, 250u); // completes at cycle 500
    EXPECT_EQ(m.mshrMerges(), 1u);
}

TEST(Hierarchy, MergedLatencyFloorsAtL1)
{
    MemoryHierarchy m(MemConfig::mem400());
    m.access(0x700000, false, 0);
    auto late = m.access(0x700000, false, 399);
    EXPECT_GE(late.latency, 2u);
}

TEST(Hierarchy, AfterFillLineHitsL1)
{
    MemoryHierarchy m(MemConfig::mem400());
    m.access(0x700000, false, 0);
    auto r = m.access(0x700000, false, 1000);
    EXPECT_EQ(r.level, ServiceLevel::L1);
}

TEST(Hierarchy, HitAfterMissInL2)
{
    MemoryHierarchy m(MemConfig::mem400());
    m.access(0x700000, false, 0);
    // Evict from L1 (32KB, 4-way, 128 sets): lines 0x700000 + k*8KB
    // map to the same L1 set.
    for (int k = 1; k <= 8; ++k)
        m.access(0x700000 + uint64_t(k) * 32 * 1024, false, 1000 + k);
    auto r = m.access(0x700000, false, 5000);
    EXPECT_EQ(r.level, ServiceLevel::L2);
    EXPECT_EQ(r.latency, 11u);
}

TEST(Hierarchy, PrewarmInstallsLines)
{
    MemoryHierarchy m(MemConfig::mem400());
    m.prewarm(0x100000, 64 * 1024);
    m.resetStats();
    auto r = m.access(0x100040, false, 0);
    EXPECT_NE(r.level, ServiceLevel::Memory);
    EXPECT_EQ(m.l2Misses(), 0u);
}

TEST(Hierarchy, PrewarmRespectsCapacityLru)
{
    MemConfig cfg = MemConfig::mem400();
    cfg.l2Size = 64 * 1024;
    MemoryHierarchy m(cfg);
    m.prewarm(0x100000, 1024 * 1024); // 16x the L2
    // The head of the region was evicted by the tail.
    auto head = m.access(0x100000, false, 0);
    EXPECT_EQ(head.level, ServiceLevel::Memory);
    // The tail survives.
    auto tail = m.access(0x100000 + 1024 * 1024 - 64, false, 0);
    EXPECT_NE(tail.level, ServiceLevel::Memory);
}

TEST(Hierarchy, StoreInstallsLine)
{
    MemoryHierarchy m(MemConfig::mem400());
    m.access(0x900000, true, 0);
    auto r = m.access(0x900000, false, 1000);
    EXPECT_EQ(r.level, ServiceLevel::L1);
}

TEST(Hierarchy, StatsAccumulateAndReset)
{
    MemoryHierarchy m(MemConfig::mem400());
    m.access(0x0, false, 0);
    m.access(0x40000000, false, 0);
    EXPECT_EQ(m.accesses(), 2u);
    EXPECT_EQ(m.l2Misses(), 2u);
    EXPECT_DOUBLE_EQ(m.l2MissRatio(), 1.0);
    m.resetStats();
    EXPECT_EQ(m.accesses(), 0u);
}

TEST(Hierarchy, L2SizeSweepPresetNames)
{
    auto cfg = MemConfig::withL2Size(2 * 1024 * 1024);
    EXPECT_EQ(cfg.l2Size, 2u * 1024 * 1024);
    EXPECT_NE(cfg.name.find("2048KB"), std::string::npos);
}

TEST(Hierarchy, SmallerL2MissesMore)
{
    MemConfig small = MemConfig::withL2Size(64 * 1024);
    MemConfig big = MemConfig::withL2Size(4 * 1024 * 1024);
    MemoryHierarchy ms(small), mb(big);
    // 1MB working set, two passes; time advances so fills land.
    uint64_t now = 0;
    for (int pass = 0; pass < 2; ++pass) {
        for (uint64_t a = 0; a < (1u << 20); a += 64) {
            ms.access(a, false, now);
            mb.access(a, false, now);
            now += 500;
        }
    }
    EXPECT_GT(ms.l2Misses(), mb.l2Misses());
}

TEST(Hierarchy, ServiceLevelNames)
{
    EXPECT_STREQ(serviceLevelName(ServiceLevel::L1), "L1");
    EXPECT_STREQ(serviceLevelName(ServiceLevel::L2), "L2");
    EXPECT_STREQ(serviceLevelName(ServiceLevel::Memory), "MEM");
}

TEST(Hierarchy, Table1ConfigNames)
{
    EXPECT_EQ(MemConfig::l1Only().name, "L1-2");
    EXPECT_EQ(MemConfig::l2Perfect11().name, "L2-11");
    EXPECT_EQ(MemConfig::l2Perfect21().name, "L2-21");
    EXPECT_EQ(MemConfig::mem100().name, "MEM-100");
    EXPECT_EQ(MemConfig::mem400().name, "MEM-400");
    EXPECT_EQ(MemConfig::mem1000().name, "MEM-1000");
}
