/**
 * @file
 * Deliberate layering violation, used as a seeded fixture: util is
 * the bottom layer of the declared DAG (src/lint/layers), so an
 * #include reaching up into core must make `kilolint --layers` exit
 * nonzero. tests/test_lint.cpp and the CI kilolint job both assert
 * this file fails — if it ever lints clean, the layering rule has
 * gone soft. Never compiled; not part of any build target.
 */

#pragma once

#include "src/core/ooo_core.hh"
