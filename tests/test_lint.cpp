/**
 * @file
 * Tests of the kilolint static-analysis pass: per-rule good/bad
 * fixtures run through Linter::lintSource on in-memory buffers, the
 * semantic tier (layering, include cycles, dead stats, schema sync,
 * switch exhaustiveness, phase order) through Analysis over
 * multi-file fixtures, suppression semantics, baseline/diff
 * filtering, SARIF shape, the --fix round trip, and — the point of
 * the whole exercise — a self-scan asserting the live source tree
 * under KILO_SOURCE_DIR lints clean against its own layer spec and
 * schema golden.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/lint/fix.hh"
#include "src/lint/linter.hh"

using namespace kilo::lint;

namespace
{

/** Lint one in-memory buffer with the built-in rule set. */
LintReport
lintText(const std::string &path, const std::string &content)
{
    RuleRegistry reg = RuleRegistry::builtin();
    Linter linter(reg);
    LintReport report;
    linter.lintSource(path, content, report);
    return report;
}

/** Run the full two-tier Analysis over in-memory buffers. */
LintReport
analyzeTexts(
    const std::vector<std::pair<std::string, std::string>> &files,
    const std::string &layersText = "",
    const std::string &schemaText = "")
{
    RuleRegistry rules = RuleRegistry::builtin();
    AnalysisOptions opts;
    if (!layersText.empty())
        opts.layers = LayerSpec::parse("layers", layersText);
    if (!schemaText.empty())
        opts.schema =
            SchemaGolden::parse("schema.golden", schemaText);
    Analysis analysis(rules, std::move(opts));
    for (const auto &[path, content] : files)
        analysis.addSource(path, content);
    return analysis.run();
}

/** The rule names present in @p report, in finding order. */
std::vector<std::string>
ruleNames(const LintReport &report)
{
    std::vector<std::string> names;
    for (const auto &f : report.findings)
        names.push_back(f.rule);
    return names;
}

bool
hasRule(const LintReport &report, const std::string &rule)
{
    auto names = ruleNames(report);
    return std::find(names.begin(), names.end(), rule) !=
           names.end();
}

} // anonymous namespace

// ------------------------------------------------------- registry

TEST(LintRegistry, BuiltinCatalogIsCompleteAndEnumerable)
{
    RuleRegistry reg = RuleRegistry::builtin();
    std::vector<std::string> names;
    for (const auto &r : reg.rules()) {
        names.push_back(r->name());
        EXPECT_FALSE(r->description().empty())
            << r->name() << " has no description";
    }
    std::vector<std::string> expect = {
        "hot-path-alloc",    "nondeterminism",
        "stat-name-style",   "raw-serialization",
        "header-hygiene",    "unused-suppression",
        "layering",          "include-cycle",
        "dead-stat",         "schema-sync",
        "enum-switch-exhaustive", "phase-order",
    };
    EXPECT_EQ(names, expect);
}

TEST(LintRegistry, FindLocatesRulesByName)
{
    RuleRegistry reg = RuleRegistry::builtin();
    ASSERT_NE(reg.find("nondeterminism"), nullptr);
    EXPECT_EQ(reg.find("nondeterminism")->name(), "nondeterminism");
    EXPECT_EQ(reg.find("no-such-rule"), nullptr);
}

namespace
{

/** Inert rule used to probe registry behaviour. */
class DummyRule : public Rule
{
  public:
    explicit DummyRule(std::string rule_name)
        : Rule(std::move(rule_name), "inert test rule",
               Severity::Warning)
    {}
    void
    check(const SourceFile &, std::vector<Finding> &) const override
    {}
};

} // anonymous namespace

TEST(LintRegistryDeathTest, DuplicateRuleNamePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            RuleRegistry reg;
            reg.add(std::make_unique<DummyRule>("twice"));
            reg.add(std::make_unique<DummyRule>("twice"));
        },
        "duplicate lint rule");
}

// ------------------------------------------------- hot-path-alloc

TEST(LintHotPathAlloc, FlagsNewInsideTick)
{
    LintReport r = lintText("src/core/foo.cc",
                            "void Core::tick() {\n"
                            "    int *p = new int(3);\n"
                            "}\n");
    ASSERT_TRUE(hasRule(r, "hot-path-alloc"));
    EXPECT_EQ(r.findings[0].line, 2);
}

TEST(LintHotPathAlloc, FlagsResizeAndMakeUniqueInIssueStage)
{
    LintReport r = lintText(
        "src/dkip/engine.cc",
        "void Engine::issueReady() {\n"
        "    buf.resize(64);\n"
        "    auto q = std::make_unique<Entry>();\n"
        "}\n");
    auto names = ruleNames(r);
    EXPECT_EQ(std::count(names.begin(), names.end(),
                         "hot-path-alloc"),
              2);
}

TEST(LintHotPathAlloc, ConstructorsAndSetupAreExempt)
{
    LintReport r = lintText(
        "src/core/foo.cc",
        "Core::Core(size_t n) {\n"
        "    slots.resize(n);\n"
        "    table = new Entry[n];\n"
        "}\n"
        "void Core::configure() { buf.reserve(128); }\n");
    EXPECT_FALSE(hasRule(r, "hot-path-alloc")) << r.findings.size();
}

TEST(LintHotPathAlloc, ScopeIsHotDirectoriesOnly)
{
    // Same code outside the hot directories is not in scope.
    LintReport r = lintText("tools/report.cc",
                            "void tick() { auto p = new int; }\n");
    EXPECT_FALSE(hasRule(r, "hot-path-alloc"));
}

TEST(LintHotPathAlloc, MemberNamedFreeIsNotTheLibcCall)
{
    LintReport r = lintText("src/util/arena.cc",
                            "void Arena::advanceHead() {\n"
                            "    pool.free(node);\n"
                            "}\n");
    EXPECT_FALSE(hasRule(r, "hot-path-alloc"));
}

// ------------------------------------------------- nondeterminism

TEST(LintNondeterminism, FlagsUnorderedContainers)
{
    LintReport r = lintText(
        "src/stats/agg.cc",
        "std::unordered_map<int, int> counts;\n");
    EXPECT_TRUE(hasRule(r, "nondeterminism"));
}

TEST(LintNondeterminism, FlagsWallClockAndRand)
{
    LintReport r = lintText(
        "src/sim/x.cc",
        "void f() {\n"
        "    auto t = std::chrono::steady_clock::now();\n"
        "    int v = rand();\n"
        "}\n");
    auto names = ruleNames(r);
    EXPECT_EQ(std::count(names.begin(), names.end(),
                         "nondeterminism"),
              2);
}

TEST(LintNondeterminism, SeededProjectRngIsFine)
{
    LintReport r = lintText("src/wload/gen.cc",
                            "kilo::util::Rng rng(seed);\n"
                            "uint64_t v = rng.next();\n");
    EXPECT_FALSE(hasRule(r, "nondeterminism"));
}

// ------------------------------------------------ stat-name-style

TEST(LintStatNameStyle, FlagsNonSnakeCaseRegistration)
{
    LintReport r = lintText(
        "src/core/foo.cc",
        "void f(kilo::stats::Registry &reg) {\n"
        "    reg.counter(\"CamelName\", \"desc\");\n"
        "    reg.gauge(\"trailing_\", \"desc\");\n"
        "    reg.histogram(\"has__double\", \"desc\", 4);\n"
        "}\n");
    auto names = ruleNames(r);
    EXPECT_EQ(std::count(names.begin(), names.end(),
                         "stat-name-style"),
              3);
}

TEST(LintStatNameStyle, SnakeCaseIsClean)
{
    LintReport r = lintText(
        "src/core/foo.cc",
        "void f(kilo::stats::Registry &reg) {\n"
        "    reg.counter(\"commit_insts\", \"desc\");\n"
        "    reg.gaugeInt(\"l2_hit_rate_x1000\", \"desc\");\n"
        "}\n");
    EXPECT_FALSE(hasRule(r, "stat-name-style"));
}

// ---------------------------------------------- raw-serialization

TEST(LintRawSerialization, FlagsFwriteOutsideSerializationLayers)
{
    LintReport r = lintText(
        "src/sim/dump.cc",
        "void f(FILE *fp) { fwrite(buf, 1, n, fp); }\n");
    EXPECT_TRUE(hasRule(r, "raw-serialization"));
}

TEST(LintRawSerialization, CkptAndTraceLayersAreExempt)
{
    const char *code =
        "void f(FILE *fp) { std::fwrite(buf, 1, n, fp); }\n";
    EXPECT_FALSE(
        hasRule(lintText("src/ckpt/serial.cc", code),
                "raw-serialization"));
    EXPECT_FALSE(
        hasRule(lintText("src/trace/capture.cc", code),
                "raw-serialization"));
}

// ------------------------------------------------- header-hygiene

TEST(LintHeaderHygiene, FlagsMissingPragmaOnce)
{
    LintReport r = lintText("src/core/foo.hh",
                            "struct Foo { int x; };\n");
    EXPECT_TRUE(hasRule(r, "header-hygiene"));
}

TEST(LintHeaderHygiene, FlagsUsingNamespaceInHeader)
{
    LintReport r = lintText("src/core/foo.hh",
                            "#pragma once\n"
                            "using namespace std;\n");
    EXPECT_TRUE(hasRule(r, "header-hygiene"));
}

TEST(LintHeaderHygiene, FlagsStdEndlEverywhere)
{
    LintReport r = lintText(
        "tools/report.cc",
        "void f(std::ostream &os) { os << std::endl; }\n");
    EXPECT_TRUE(hasRule(r, "header-hygiene"));
}

TEST(LintHeaderHygiene, CleanHeaderPasses)
{
    LintReport r = lintText("src/core/foo.hh",
                            "#pragma once\n"
                            "namespace kilo { struct Foo {}; }\n");
    EXPECT_TRUE(r.clean()) << findingLine(r.findings[0]);
}

// --------------------------------------------------- suppressions

TEST(LintSuppression, TrailingAnnotationSuppressesSameLine)
{
    LintReport r = lintText(
        "src/sim/x.cc",
        "auto t = std::chrono::steady_clock::now();"
        " // kilolint: allow(nondeterminism) deadline\n");
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.suppressionsTotal, 1);
    EXPECT_EQ(r.suppressionsUsed, 1);
}

TEST(LintSuppression, StandaloneAnnotationSuppressesNextLine)
{
    LintReport r = lintText(
        "src/sim/x.cc",
        "// kilolint: allow(nondeterminism) wall deadline\n"
        "auto t = std::chrono::steady_clock::now();\n");
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.suppressionsUsed, 1);
}

TEST(LintSuppression, UnusedAnnotationIsItselfReported)
{
    LintReport r = lintText(
        "src/sim/x.cc",
        "// kilolint: allow(nondeterminism)\n"
        "int x = 3;\n");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, "unused-suppression");
    EXPECT_EQ(r.findings[0].severity, Severity::Warning);
    EXPECT_EQ(r.suppressionsTotal, 1);
    EXPECT_EQ(r.suppressionsUsed, 0);
}

TEST(LintSuppression, SuppressionIsRuleSpecific)
{
    // An allow() for one rule must not blanket others on the line.
    LintReport r = lintText(
        "src/sim/x.cc",
        "// kilolint: allow(raw-serialization)\n"
        "auto t = std::chrono::steady_clock::now();\n");
    EXPECT_TRUE(hasRule(r, "nondeterminism"));
    EXPECT_TRUE(hasRule(r, "unused-suppression"));
}

TEST(LintSuppression, DocCommentMentioningSyntaxIsNotAnAnnotation)
{
    LintReport r = lintText(
        "src/sim/x.cc",
        "// Suppress findings with `kilolint: allow(rule)`.\n"
        "int x = 3;\n");
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.suppressionsTotal, 0);
}

// --------------------------------------------------- report shape

TEST(LintReportFormat, FindingLineMatchesContract)
{
    Finding f;
    f.path = "src/core/foo.cc";
    f.line = 12;
    f.rule = "nondeterminism";
    f.message = "wall clock read";
    EXPECT_EQ(findingLine(f),
              "src/core/foo.cc:12: [kilolint-nondeterminism] "
              "wall clock read");
}

TEST(LintReportFormat, JsonHasSchemaKeysAndEscapes)
{
    LintReport r = lintText(
        "src/sim/x.cc",
        "auto t = std::chrono::steady_clock::now();\n");
    std::string js = reportJson(r);
    EXPECT_NE(js.find("\"files\":1"), std::string::npos) << js;
    EXPECT_NE(js.find("\"suppressions\":{\"total\":0,\"used\":0}"),
              std::string::npos)
        << js;
    EXPECT_NE(js.find("\"findings\":[{\"file\":\"src/sim/x.cc\""),
              std::string::npos)
        << js;
    EXPECT_NE(js.find("\"line\":1"), std::string::npos) << js;
    EXPECT_NE(js.find("\"rule\":\"nondeterminism\""),
              std::string::npos)
        << js;
    EXPECT_NE(js.find("\"severity\":\"error\""), std::string::npos)
        << js;
}

TEST(LintReportFormat, JsonEscapesQuotesAndBackslashes)
{
    LintReport r;
    Finding f;
    f.path = "a\"b\\c.cc";
    f.line = 1;
    f.rule = "x";
    f.message = "tab\there";
    r.findings.push_back(f);
    std::string js = reportJson(r);
    EXPECT_NE(js.find("a\\\"b\\\\c.cc"), std::string::npos) << js;
    EXPECT_NE(js.find("tab\\there"), std::string::npos) << js;
}

// -------------------------------------------------- project model

TEST(LintModel, NormalizePathAndModuleOf)
{
    EXPECT_EQ(normalizePath("/root/repo/src/core/lsq.cc"),
              "src/core/lsq.cc");
    EXPECT_EQ(normalizePath("../src/core/lsq.cc"),
              "src/core/lsq.cc");
    EXPECT_EQ(normalizePath("tools/kilolint.cc"),
              "tools/kilolint.cc");
    EXPECT_EQ(normalizePath("fixture.cc"), "fixture.cc");
    EXPECT_EQ(moduleOf("src/core/lsq.cc"), "core");
    EXPECT_EQ(moduleOf("tools/kilolint.cc"), "tools");
    EXPECT_EQ(moduleOf("fixture.cc"), "");
}

TEST(LintModel, LayerSpecClosesTransitively)
{
    LayerSpec spec = LayerSpec::parse("layers",
                                      "# comment\n"
                                      "util:\n"
                                      "stats: util\n"
                                      "mem: stats\n");
    EXPECT_TRUE(spec.loaded);
    EXPECT_TRUE(spec.errors.empty());
    // mem never names util, but stats does: the closure grants it.
    EXPECT_TRUE(spec.allowed.at("mem").count("util"));
    EXPECT_TRUE(spec.allowed.at("mem").count("stats"));
    EXPECT_FALSE(spec.allowed.at("stats").count("mem"));
}

TEST(LintModel, LayerSpecCycleAndSyntaxAreErrors)
{
    LayerSpec cyc = LayerSpec::parse("layers",
                                     "a: b\n"
                                     "b: a\n");
    ASSERT_FALSE(cyc.errors.empty());
    EXPECT_NE(cyc.errors[0].message.find("cycle"),
              std::string::npos);

    LayerSpec bad = LayerSpec::parse("layers", "no colon here\n");
    ASSERT_FALSE(bad.errors.empty());
    EXPECT_EQ(bad.errors[0].line, 1);
}

TEST(LintModel, FunctionMapGivesDistinctBodyIds)
{
    // Two same-named bodies (the gtest TEST shape) must not merge:
    // phase-order keys on the body id, not the name.
    SourceFile f = lex("t.cc",
                       "TEST(A, B) { int x = 1; }\n"
                       "TEST(A, C) { int y = 2; }\n");
    FunctionMap fm = functionMap(f);
    int firstBody = -1, secondBody = -1;
    for (size_t i = 0; i < f.tokens.size(); ++i) {
        if (f.tokens[i].text == "x")
            firstBody = fm.bodyAt[i];
        if (f.tokens[i].text == "y")
            secondBody = fm.bodyAt[i];
    }
    ASSERT_GE(firstBody, 0);
    ASSERT_GE(secondBody, 0);
    EXPECT_NE(firstBody, secondBody);
}

// ------------------------------------------------------- layering

namespace
{

const char *kTestLayers =
    "util:\n"
    "stats: util\n"
    "core: stats util\n";

} // namespace

TEST(LintLayering, UpwardIncludeIsFlagged)
{
    LintReport r = analyzeTexts(
        {{"src/util/helper.hh",
          "#pragma once\n"
          "#include \"src/core/engine.hh\"\n"}},
        kTestLayers);
    ASSERT_TRUE(hasRule(r, "layering")) << r.findings.size();
    EXPECT_EQ(r.findings[0].line, 2);
}

TEST(LintLayering, DownwardAndTransitiveIncludesAreClean)
{
    LintReport r = analyzeTexts(
        {{"src/core/engine.hh",
          "#pragma once\n"
          "#include \"src/stats/registry.hh\"\n"
          "#include \"src/util/logging.hh\"\n"},
         {"src/stats/registry.hh",
          "#pragma once\n"
          "#include \"src/util/logging.hh\"\n"}},
        kTestLayers);
    EXPECT_FALSE(hasRule(r, "layering"))
        << findingLine(r.findings[0]);
}

TEST(LintLayering, SuppressionCoversModelFindings)
{
    // The sanctioned sim->sample pattern: an allow() on the include
    // line absorbs the tier-1 finding like any per-file one.
    LintReport r = analyzeTexts(
        {{"src/util/helper.hh",
          "#pragma once\n"
          "#include \"src/core/engine.hh\""
          "  // kilolint: allow(layering)\n"}},
        kTestLayers);
    EXPECT_FALSE(hasRule(r, "layering"));
    EXPECT_EQ(r.suppressionsUsed, 1);
}

TEST(LintLayering, UndeclaredModuleIsFlagged)
{
    LintReport r = analyzeTexts(
        {{"src/rogue/new_code.cc",
          "#include \"src/util/logging.hh\"\n"}},
        kTestLayers);
    ASSERT_TRUE(hasRule(r, "layering"));
    EXPECT_NE(r.findings[0].message.find("not declared"),
              std::string::npos);
}

TEST(LintLayering, ToolsAndTestsAreTopOfStack)
{
    LintReport r = analyzeTexts(
        {{"tools/report.cc",
          "#include \"src/core/engine.hh\"\n"
          "#include \"src/util/logging.hh\"\n"}},
        kTestLayers);
    EXPECT_FALSE(hasRule(r, "layering"));
}

// -------------------------------------------------- include-cycle

TEST(LintIncludeCycle, TwoFileCycleIsFlaggedOnce)
{
    LintReport r = analyzeTexts(
        {{"src/core/a.hh",
          "#pragma once\n#include \"src/core/b.hh\"\n"},
         {"src/core/b.hh",
          "#pragma once\n#include \"src/core/a.hh\"\n"}});
    auto names = ruleNames(r);
    EXPECT_EQ(std::count(names.begin(), names.end(),
                         "include-cycle"),
              1);
}

TEST(LintIncludeCycle, AcyclicChainIsClean)
{
    LintReport r = analyzeTexts(
        {{"src/core/a.hh",
          "#pragma once\n#include \"src/core/b.hh\"\n"},
         {"src/core/b.hh",
          "#pragma once\n#include \"src/core/c.hh\"\n"},
         {"src/core/c.hh", "#pragma once\n"}});
    EXPECT_FALSE(hasRule(r, "include-cycle"));
}

// ------------------------------------------------------ dead-stat

TEST(LintDeadStat, UnwiredCounterIsFlagged)
{
    LintReport r = analyzeTexts(
        {{"src/core/st.cc",
          "void regStats(Registry &r, St &st) {\n"
          "    r.counter(\"hits\", \"d\", &st.hits);\n"
          "    r.counter(\"misses\", \"d\", &st.misses);\n"
          "}\n"
          "void bump(St &st) { ++st.hits; }\n"}});
    auto names = ruleNames(r);
    EXPECT_EQ(std::count(names.begin(), names.end(), "dead-stat"),
              1);
    EXPECT_NE(r.findings[0].message.find("misses"),
              std::string::npos);
}

TEST(LintDeadStat, CrossFileUpdatesCount)
{
    LintReport r = analyzeTexts(
        {{"src/core/reg.cc",
          "void regStats(Registry &r, St &st) {\n"
          "    r.counter(\"hits\", \"d\", &st.hits);\n"
          "}\n"},
         {"src/mem/update.cc",
          "void access(St &st, int n) { st.hits += n; }\n"}});
    EXPECT_FALSE(hasRule(r, "dead-stat"));
}

TEST(LintDeadStat, HistogramSampleAndSubscriptUpdatesCount)
{
    LintReport r = analyzeTexts(
        {{"src/core/st.cc",
          "void regStats(Registry &r, St &st) {\n"
          "    r.histogram(\"lat\", \"d\", &st.lat);\n"
          "    r.counter(\"slots\", \"d\",\n"
          "              &st.slots[size_t(Kind::A)]);\n"
          "}\n"
          "void tickStats(St &st, int k, int v) {\n"
          "    st.lat.sample(v);\n"
          "    st.slots[k] += v;\n"
          "}\n"}});
    EXPECT_FALSE(hasRule(r, "dead-stat"))
        << findingLine(r.findings[0]);
}

TEST(LintDeadStat, GaugesAreExemptAndDeclInitIsNotAnUpdate)
{
    LintReport r = analyzeTexts(
        {{"src/core/st.cc",
          "struct St { uint64_t cycles = 0; };\n"
          "void regStats(Registry &r, St &st) {\n"
          "    r.gauge(\"ipc\", \"d\", [&]{ return 1.0; });\n"
          "    r.counter(\"cycles\", \"d\", &st.cycles);\n"
          "}\n"}});
    // The declaration's `= 0` must not count as an update: cycles
    // really is dead here. The gauge lambda is exempt by design.
    auto names = ruleNames(r);
    EXPECT_EQ(std::count(names.begin(), names.end(), "dead-stat"),
              1);
    EXPECT_NE(r.findings[0].message.find("cycles"),
              std::string::npos);
}

// ---------------------------------------------------- schema-sync

TEST(LintSchemaSync, StaleSchemaKeyIsFlagged)
{
    LintReport r = analyzeTexts(
        {{"src/core/st.cc",
          "void regStats(Registry &r, St &st) {\n"
          "    r.counter(\"hits\", \"d\", &st.hits);\n"
          "}\n"
          "void bump(St &st) { ++st.hits; }\n"}},
        "", // no layer spec
        "== M ==\n"
        "hits counter - live\n"
        "gone gauge - stale\n");
    auto names = ruleNames(r);
    EXPECT_EQ(std::count(names.begin(), names.end(), "schema-sync"),
              1);
    EXPECT_EQ(r.findings[0].path, "schema.golden");
    EXPECT_EQ(r.findings[0].line, 3);
    EXPECT_NE(r.findings[0].message.find("gone"),
              std::string::npos);
}

// ------------------------------------- enum-switch-exhaustive

TEST(LintEnumSwitch, MissingEnumeratorWithoutDefaultIsFlagged)
{
    LintReport r = analyzeTexts(
        {{"src/core/e.hh",
          "#pragma once\n"
          "enum class Color : int { Red, Green, Blue, NumColors };\n"},
         {"src/core/use.cc",
          "#include \"src/core/e.hh\"\n"
          "int pick(Color c) {\n"
          "    switch (c) {\n"
          "      case Color::Red: return 1;\n"
          "      case Color::Green: return 2;\n"
          "    }\n"
          "    return 0;\n"
          "}\n"}});
    ASSERT_TRUE(hasRule(r, "enum-switch-exhaustive"));
    // The NumColors sentinel is never required.
    EXPECT_NE(r.findings[0].message.find("Blue"),
              std::string::npos);
    EXPECT_EQ(r.findings[0].message.find("NumColors"),
              std::string::npos);
}

TEST(LintEnumSwitch, DefaultOrFullCoverageIsClean)
{
    LintReport r = analyzeTexts(
        {{"src/core/e.hh",
          "#pragma once\n"
          "enum class Color : int { Red, Green, Blue };\n"},
         {"src/core/use.cc",
          "#include \"src/core/e.hh\"\n"
          "int all(Color c) {\n"
          "    switch (c) {\n"
          "      case Color::Red: return 1;\n"
          "      case Color::Green: return 2;\n"
          "      case Color::Blue: return 3;\n"
          "    }\n"
          "    return 0;\n"
          "}\n"
          "int dflt(Color c) {\n"
          "    switch (c) {\n"
          "      case Color::Red: return 1;\n"
          "      default: return 0;\n"
          "    }\n"
          "}\n"}});
    EXPECT_FALSE(hasRule(r, "enum-switch-exhaustive"))
        << findingLine(r.findings[0]);
}

TEST(LintEnumSwitch, AmbiguousEnumNameDropsTheCheck)
{
    // Two project enums named Kind with different enumerators
    // (stats::Kind vs Lsq::Kind): token-level matching cannot tell
    // them apart, so the check must drop out, not guess.
    LintReport r = analyzeTexts(
        {{"src/stats/k.hh",
          "#pragma once\n"
          "enum class Kind : int { Counter, Gauge };\n"},
         {"src/core/k.hh",
          "#pragma once\n"
          "enum class Kind : int { Load, Store };\n"},
         {"src/core/use.cc",
          "#include \"src/core/k.hh\"\n"
          "int f(Kind k) {\n"
          "    switch (k) {\n"
          "      case Kind::Load: return 1;\n"
          "    }\n"
          "    return 0;\n"
          "}\n"}});
    EXPECT_FALSE(hasRule(r, "enum-switch-exhaustive"));
}

TEST(LintEnumSwitch, NestedSwitchLabelsStayWithTheirSwitch)
{
    LintReport r = analyzeTexts(
        {{"src/core/e.hh",
          "#pragma once\n"
          "enum class Color : int { Red, Green };\n"
          "enum class Size : int { Small, Large };\n"},
         {"src/core/use.cc",
          "#include \"src/core/e.hh\"\n"
          "int f(Color c, Size s) {\n"
          "    switch (c) {\n"
          "      case Color::Red: {\n"
          "          switch (s) {\n"
          "            case Size::Small: return 1;\n"
          "            case Size::Large: return 2;\n"
          "          }\n"
          "          return 3;\n"
          "      }\n"
          "      case Color::Green: return 4;\n"
          "    }\n"
          "    return 0;\n"
          "}\n"}});
    // Outer switch covers Color fully; the inner one covers Size
    // fully. Neither may borrow the other's labels.
    EXPECT_FALSE(hasRule(r, "enum-switch-exhaustive"))
        << findingLine(r.findings[0]);
}

// ---------------------------------------------------- phase-order

TEST(LintPhaseOrder, StepAfterFinishIsFlagged)
{
    LintReport r = lintText("src/sim/drive.cc",
                            "void drive(Session &s) {\n"
                            "    s.runFor(1000);\n"
                            "    RunResult res = s.finish();\n"
                            "    s.step(10);\n"
                            "}\n");
    ASSERT_TRUE(hasRule(r, "phase-order"));
    EXPECT_EQ(r.findings[0].line, 4);
}

TEST(LintPhaseOrder, NormalLifecycleIsClean)
{
    LintReport r = lintText("src/sim/drive.cc",
                            "void drive(Session &s) {\n"
                            "    s.warmup();\n"
                            "    s.step(10);\n"
                            "    s.runFor(1000);\n"
                            "    RunResult res = s.finish();\n"
                            "}\n");
    EXPECT_FALSE(hasRule(r, "phase-order"));
}

TEST(LintPhaseOrder, SeparateBodiesDoNotLeakState)
{
    // The gtest shape: every TEST body parses as a function named
    // TEST. finish() in one body must not taint step() in the next.
    LintReport r = lintText("tests/t.cpp",
                            "TEST(A, B) { s.finish(); }\n"
                            "TEST(A, C) { s.step(5); }\n");
    EXPECT_FALSE(hasRule(r, "phase-order"));
}

TEST(LintPhaseOrder, DifferentReceiversAreIndependent)
{
    LintReport r = lintText("src/sim/drive.cc",
                            "void drive(Session &a, Session &b) {\n"
                            "    a.finish();\n"
                            "    b.step(10);\n"
                            "}\n");
    EXPECT_FALSE(hasRule(r, "phase-order"));
}

// ------------------------------------------------ baseline / diff

TEST(LintBaseline, RoundTripAbsorbsKnownFindings)
{
    LintReport first = lintText(
        "src/sim/x.cc",
        "auto t = std::chrono::steady_clock::now();\n"
        "int v = rand();\n");
    ASSERT_EQ(first.findings.size(), 2u);

    std::multiset<std::string> keys;
    ASSERT_TRUE(parseBaselineKeys(reportJson(first), keys));
    EXPECT_EQ(keys.size(), 2u);

    // Same findings again: the baseline absorbs both.
    LintReport second = lintText(
        "src/sim/x.cc",
        "auto t = std::chrono::steady_clock::now();\n"
        "int v = rand();\n");
    filterBaseline(second, keys);
    EXPECT_TRUE(second.clean());
}

TEST(LintBaseline, NewFindingsSurviveTheFilter)
{
    LintReport first = lintText(
        "src/sim/x.cc",
        "auto t = std::chrono::steady_clock::now();\n");
    std::multiset<std::string> keys;
    ASSERT_TRUE(parseBaselineKeys(reportJson(first), keys));

    LintReport second = lintText(
        "src/sim/x.cc",
        "auto t = std::chrono::steady_clock::now();\n"
        "int v = rand();\n");
    filterBaseline(second, keys);
    ASSERT_EQ(second.findings.size(), 1u);
    EXPECT_NE(second.findings[0].message.find("rand"),
              std::string::npos);
}

TEST(LintBaseline, KeysAreLineFreeAndPathNormalized)
{
    // Reflowing the file (finding moves lines) and linting from a
    // different directory prefix must not churn the baseline.
    Finding a;
    a.path = "../src/sim/x.cc";
    a.line = 10;
    a.rule = "nondeterminism";
    a.message = "m";
    Finding b;
    b.path = "/root/repo/src/sim/x.cc";
    b.line = 99;
    b.rule = "nondeterminism";
    b.message = "m";
    EXPECT_EQ(baselineKey(a), baselineKey(b));
}

TEST(LintBaseline, DuplicateFindingsNeedDuplicateEntries)
{
    LintReport r = lintText("src/sim/x.cc",
                            "int a = rand();\n"
                            "int b = rand();\n");
    ASSERT_EQ(r.findings.size(), 2u);
    std::multiset<std::string> one;
    one.insert(baselineKey(r.findings[0]));
    filterBaseline(r, one);
    // Identical message on another line: one baseline entry absorbs
    // exactly one of them.
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(LintBaseline, MalformedJsonIsRejected)
{
    std::multiset<std::string> keys;
    EXPECT_FALSE(parseBaselineKeys("not json", keys));
    EXPECT_FALSE(parseBaselineKeys("{\"findings\":[{]", keys));
}

TEST(LintDiff, OnlyFindingsInsideRangesGate)
{
    LintReport r = lintText("src/sim/x.cc",
                            "int a = rand();\n"
                            "int b = rand();\n"
                            "int c = rand();\n");
    ASSERT_EQ(r.findings.size(), 3u);
    DiffRanges d;
    ASSERT_TRUE(d.add("src/sim/x.cc:2-3"));
    filterDiff(r, d);
    ASSERT_EQ(r.findings.size(), 2u);
    EXPECT_EQ(r.findings[0].line, 2);
    EXPECT_EQ(r.findings[1].line, 3);
}

TEST(LintDiff, SpecsParseAndNormalize)
{
    DiffRanges d;
    EXPECT_TRUE(d.add("src/a.cc:7"));
    EXPECT_TRUE(d.add("../src/b.cc:10-20"));
    EXPECT_FALSE(d.add("no-line-part"));
    EXPECT_FALSE(d.add("src/a.cc:0"));
    EXPECT_FALSE(d.add("src/a.cc:9-4"));
    EXPECT_TRUE(d.contains("src/a.cc", 7));
    EXPECT_FALSE(d.contains("src/a.cc", 8));
    // Prefix-normalized both at add and at query time.
    EXPECT_TRUE(d.contains("/root/repo/src/b.cc", 15));
}

// ---------------------------------------------------------- sarif

TEST(LintSarif, ReportIsWellFormed)
{
    RuleRegistry rules = RuleRegistry::builtin();
    LintReport r = lintText(
        "src/sim/x.cc",
        "auto t = std::chrono::steady_clock::now();\n");
    std::string sarif = sarifJson(r, rules);
    EXPECT_NE(sarif.find("\"version\":\"2.1.0\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"name\":\"kilolint\""),
              std::string::npos);
    // Every registered rule appears in the driver catalog.
    for (const auto &rule : rules.rules())
        EXPECT_NE(sarif.find("\"id\":\"" + rule->name() + "\""),
                  std::string::npos)
            << rule->name();
    // The finding carries a normalized URI and a start line.
    EXPECT_NE(sarif.find("\"ruleId\":\"nondeterminism\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"uri\":\"src/sim/x.cc\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\":1"), std::string::npos);
    // Balanced braces/brackets — cheap structural sanity.
    EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '{'),
              std::count(sarif.begin(), sarif.end(), '}'));
    EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '['),
              std::count(sarif.begin(), sarif.end(), ']'));
}

// ----------------------------------------------------------- fix

TEST(LintFix, EndlPragmaOnceAndStatNameAreMechanical)
{
    std::string before =
        "/** doc. */\n"
        "#include <iostream>\n"
        "inline void f(std::ostream &os) { os << std::endl; }\n"
        "inline void g(Registry &r, uint64_t *v) {\n"
        "    r.counter(\"bad_name_\", \"d\", v);\n"
        "}\n";
    FixStats st;
    std::string after = applyFixes("src/core/x.hh", before, &st);
    EXPECT_EQ(st.endl, 1);
    EXPECT_EQ(st.pragmaOnce, 1);
    EXPECT_EQ(st.statName, 1);
    EXPECT_NE(after.find("#pragma once"), std::string::npos);
    EXPECT_NE(after.find("<< '\\n'"), std::string::npos);
    EXPECT_NE(after.find("\"bad_name\""), std::string::npos);
    EXPECT_EQ(after.find("std::endl"), std::string::npos);
    // The leading doc comment stays above the inserted pragma.
    EXPECT_LT(after.find("/** doc. */"),
              after.find("#pragma once"));
}

TEST(LintFix, FixedTextRelintsCleanAndRefixIsNoOp)
{
    std::string before =
        "inline void f(std::ostream &os) { os << std::endl; }\n";
    FixStats st;
    std::string after = applyFixes("src/core/x.hh", before, &st);
    ASSERT_GT(st.total(), 0);

    LintReport relint = lintText("src/core/x.hh", after);
    EXPECT_TRUE(relint.clean()) << findingLine(relint.findings[0]);

    FixStats again;
    std::string twice = applyFixes("src/core/x.hh", after, &again);
    EXPECT_EQ(again.total(), 0);
    EXPECT_EQ(twice, after);
}

TEST(LintFix, CleanFilesComeBackByteIdentical)
{
    std::string clean =
        "#pragma once\n"
        "inline int f() { return 3; }\n";
    FixStats st;
    EXPECT_EQ(applyFixes("src/core/x.hh", clean, &st), clean);
    EXPECT_EQ(st.total(), 0);
}

TEST(LintFix, StringsAndCommentsAreNeverTouched)
{
    std::string tricky =
        "#pragma once\n"
        "// mentions std::endl in prose\n"
        "inline const char *s() { return \"std::endl\"; }\n";
    FixStats st;
    EXPECT_EQ(applyFixes("src/core/x.hh", tricky, &st), tricky);
    EXPECT_EQ(st.total(), 0);
}

// ------------------------------------------------------ self-scan

#ifdef KILO_SOURCE_DIR
namespace
{

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // namespace

TEST(LintSelfScan, LiveTreeLintsClean)
{
    std::string root(KILO_SOURCE_DIR);
    RuleRegistry reg = RuleRegistry::builtin();
    AnalysisOptions opts;
    opts.layers = LayerSpec::parse(root + "/src/lint/layers",
                                   readAll(root + "/src/lint/layers"));
    opts.schema = SchemaGolden::parse(
        root + "/tools/stats_schema.golden",
        readAll(root + "/tools/stats_schema.golden"));
    ASSERT_TRUE(opts.layers.errors.empty());
    ASSERT_FALSE(opts.schema.keys.empty());

    Analysis analysis(reg, std::move(opts));
    analysis.addPath(root + "/src");
    analysis.addPath(root + "/tools");
    analysis.addPath(root + "/bench");
    analysis.addPath(root + "/examples");
    LintReport report = analysis.run();

    std::string all;
    for (const auto &f : report.findings)
        all += findingLine(f) + "\n";
    EXPECT_TRUE(report.clean()) << all;
    EXPECT_GT(report.filesScanned, 100);
    // Every sanctioned suppression must still be load-bearing; the
    // count is pinned so exemptions cannot silently accumulate (CI
    // enforces the same cap via kilolint --max-suppressions).
    // 14 = 11 nondeterminism wall-deadline sites + 2 raw-
    // serialization + 1 layering (the sim->sample dispatch); see
    // src/lint/DESIGN.md.
    EXPECT_EQ(report.suppressionsTotal, 14);
    EXPECT_EQ(report.suppressionsUsed, report.suppressionsTotal);
}

TEST(LintSelfScan, SeededLayeringFixtureFails)
{
    // tests/data/lint/bad_layering holds a deliberate upward
    // include (util -> core). If this fixture ever lints clean the
    // layering rule has gone soft — CI asserts the same via the
    // kilolint binary.
    std::string root(KILO_SOURCE_DIR);
    RuleRegistry reg = RuleRegistry::builtin();
    AnalysisOptions opts;
    opts.layers = LayerSpec::parse(root + "/src/lint/layers",
                                   readAll(root + "/src/lint/layers"));
    Analysis analysis(reg, std::move(opts));
    analysis.addPath(root + "/tests/data/lint/bad_layering");
    LintReport report = analysis.run();
    ASSERT_TRUE(hasRule(report, "layering"));
}
#endif
