/**
 * @file
 * Tests of the kilolint static-analysis pass: per-rule good/bad
 * fixtures run through Linter::lintSource on in-memory buffers,
 * suppression semantics (trailing and standalone annotations, the
 * unused-suppression backstop), the machine-readable JSON report,
 * and — the point of the whole exercise — a self-scan asserting the
 * live source tree under KILO_SOURCE_DIR lints clean.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/lint/linter.hh"

using namespace kilo::lint;

namespace
{

/** Lint one in-memory buffer with the built-in rule set. */
LintReport
lintText(const std::string &path, const std::string &content)
{
    RuleRegistry reg = RuleRegistry::builtin();
    Linter linter(reg);
    LintReport report;
    linter.lintSource(path, content, report);
    return report;
}

/** The rule names present in @p report, in finding order. */
std::vector<std::string>
ruleNames(const LintReport &report)
{
    std::vector<std::string> names;
    for (const auto &f : report.findings)
        names.push_back(f.rule);
    return names;
}

bool
hasRule(const LintReport &report, const std::string &rule)
{
    auto names = ruleNames(report);
    return std::find(names.begin(), names.end(), rule) !=
           names.end();
}

} // anonymous namespace

// ------------------------------------------------------- registry

TEST(LintRegistry, BuiltinCatalogIsCompleteAndEnumerable)
{
    RuleRegistry reg = RuleRegistry::builtin();
    std::vector<std::string> names;
    for (const auto &r : reg.rules()) {
        names.push_back(r->name());
        EXPECT_FALSE(r->description().empty())
            << r->name() << " has no description";
    }
    std::vector<std::string> expect = {
        "hot-path-alloc",    "nondeterminism",
        "stat-name-style",   "raw-serialization",
        "header-hygiene",    "unused-suppression",
    };
    EXPECT_EQ(names, expect);
}

TEST(LintRegistry, FindLocatesRulesByName)
{
    RuleRegistry reg = RuleRegistry::builtin();
    ASSERT_NE(reg.find("nondeterminism"), nullptr);
    EXPECT_EQ(reg.find("nondeterminism")->name(), "nondeterminism");
    EXPECT_EQ(reg.find("no-such-rule"), nullptr);
}

namespace
{

/** Inert rule used to probe registry behaviour. */
class DummyRule : public Rule
{
  public:
    explicit DummyRule(std::string rule_name)
        : Rule(std::move(rule_name), "inert test rule",
               Severity::Warning)
    {}
    void
    check(const SourceFile &, std::vector<Finding> &) const override
    {}
};

} // anonymous namespace

TEST(LintRegistryDeathTest, DuplicateRuleNamePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            RuleRegistry reg;
            reg.add(std::make_unique<DummyRule>("twice"));
            reg.add(std::make_unique<DummyRule>("twice"));
        },
        "duplicate lint rule");
}

// ------------------------------------------------- hot-path-alloc

TEST(LintHotPathAlloc, FlagsNewInsideTick)
{
    LintReport r = lintText("src/core/foo.cc",
                            "void Core::tick() {\n"
                            "    int *p = new int(3);\n"
                            "}\n");
    ASSERT_TRUE(hasRule(r, "hot-path-alloc"));
    EXPECT_EQ(r.findings[0].line, 2);
}

TEST(LintHotPathAlloc, FlagsResizeAndMakeUniqueInIssueStage)
{
    LintReport r = lintText(
        "src/dkip/engine.cc",
        "void Engine::issueReady() {\n"
        "    buf.resize(64);\n"
        "    auto q = std::make_unique<Entry>();\n"
        "}\n");
    auto names = ruleNames(r);
    EXPECT_EQ(std::count(names.begin(), names.end(),
                         "hot-path-alloc"),
              2);
}

TEST(LintHotPathAlloc, ConstructorsAndSetupAreExempt)
{
    LintReport r = lintText(
        "src/core/foo.cc",
        "Core::Core(size_t n) {\n"
        "    slots.resize(n);\n"
        "    table = new Entry[n];\n"
        "}\n"
        "void Core::configure() { buf.reserve(128); }\n");
    EXPECT_FALSE(hasRule(r, "hot-path-alloc")) << r.findings.size();
}

TEST(LintHotPathAlloc, ScopeIsHotDirectoriesOnly)
{
    // Same code outside the hot directories is not in scope.
    LintReport r = lintText("tools/report.cc",
                            "void tick() { auto p = new int; }\n");
    EXPECT_FALSE(hasRule(r, "hot-path-alloc"));
}

TEST(LintHotPathAlloc, MemberNamedFreeIsNotTheLibcCall)
{
    LintReport r = lintText("src/util/arena.cc",
                            "void Arena::advanceHead() {\n"
                            "    pool.free(node);\n"
                            "}\n");
    EXPECT_FALSE(hasRule(r, "hot-path-alloc"));
}

// ------------------------------------------------- nondeterminism

TEST(LintNondeterminism, FlagsUnorderedContainers)
{
    LintReport r = lintText(
        "src/stats/agg.cc",
        "std::unordered_map<int, int> counts;\n");
    EXPECT_TRUE(hasRule(r, "nondeterminism"));
}

TEST(LintNondeterminism, FlagsWallClockAndRand)
{
    LintReport r = lintText(
        "src/sim/x.cc",
        "void f() {\n"
        "    auto t = std::chrono::steady_clock::now();\n"
        "    int v = rand();\n"
        "}\n");
    auto names = ruleNames(r);
    EXPECT_EQ(std::count(names.begin(), names.end(),
                         "nondeterminism"),
              2);
}

TEST(LintNondeterminism, SeededProjectRngIsFine)
{
    LintReport r = lintText("src/wload/gen.cc",
                            "kilo::util::Rng rng(seed);\n"
                            "uint64_t v = rng.next();\n");
    EXPECT_FALSE(hasRule(r, "nondeterminism"));
}

// ------------------------------------------------ stat-name-style

TEST(LintStatNameStyle, FlagsNonSnakeCaseRegistration)
{
    LintReport r = lintText(
        "src/core/foo.cc",
        "void f(kilo::stats::Registry &reg) {\n"
        "    reg.counter(\"CamelName\", \"desc\");\n"
        "    reg.gauge(\"trailing_\", \"desc\");\n"
        "    reg.histogram(\"has__double\", \"desc\", 4);\n"
        "}\n");
    auto names = ruleNames(r);
    EXPECT_EQ(std::count(names.begin(), names.end(),
                         "stat-name-style"),
              3);
}

TEST(LintStatNameStyle, SnakeCaseIsClean)
{
    LintReport r = lintText(
        "src/core/foo.cc",
        "void f(kilo::stats::Registry &reg) {\n"
        "    reg.counter(\"commit_insts\", \"desc\");\n"
        "    reg.gaugeInt(\"l2_hit_rate_x1000\", \"desc\");\n"
        "}\n");
    EXPECT_FALSE(hasRule(r, "stat-name-style"));
}

// ---------------------------------------------- raw-serialization

TEST(LintRawSerialization, FlagsFwriteOutsideSerializationLayers)
{
    LintReport r = lintText(
        "src/sim/dump.cc",
        "void f(FILE *fp) { fwrite(buf, 1, n, fp); }\n");
    EXPECT_TRUE(hasRule(r, "raw-serialization"));
}

TEST(LintRawSerialization, CkptAndTraceLayersAreExempt)
{
    const char *code =
        "void f(FILE *fp) { std::fwrite(buf, 1, n, fp); }\n";
    EXPECT_FALSE(
        hasRule(lintText("src/ckpt/serial.cc", code),
                "raw-serialization"));
    EXPECT_FALSE(
        hasRule(lintText("src/trace/capture.cc", code),
                "raw-serialization"));
}

// ------------------------------------------------- header-hygiene

TEST(LintHeaderHygiene, FlagsMissingPragmaOnce)
{
    LintReport r = lintText("src/core/foo.hh",
                            "struct Foo { int x; };\n");
    EXPECT_TRUE(hasRule(r, "header-hygiene"));
}

TEST(LintHeaderHygiene, FlagsUsingNamespaceInHeader)
{
    LintReport r = lintText("src/core/foo.hh",
                            "#pragma once\n"
                            "using namespace std;\n");
    EXPECT_TRUE(hasRule(r, "header-hygiene"));
}

TEST(LintHeaderHygiene, FlagsStdEndlEverywhere)
{
    LintReport r = lintText(
        "tools/report.cc",
        "void f(std::ostream &os) { os << std::endl; }\n");
    EXPECT_TRUE(hasRule(r, "header-hygiene"));
}

TEST(LintHeaderHygiene, CleanHeaderPasses)
{
    LintReport r = lintText("src/core/foo.hh",
                            "#pragma once\n"
                            "namespace kilo { struct Foo {}; }\n");
    EXPECT_TRUE(r.clean()) << findingLine(r.findings[0]);
}

// --------------------------------------------------- suppressions

TEST(LintSuppression, TrailingAnnotationSuppressesSameLine)
{
    LintReport r = lintText(
        "src/sim/x.cc",
        "auto t = std::chrono::steady_clock::now();"
        " // kilolint: allow(nondeterminism) deadline\n");
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.suppressionsTotal, 1);
    EXPECT_EQ(r.suppressionsUsed, 1);
}

TEST(LintSuppression, StandaloneAnnotationSuppressesNextLine)
{
    LintReport r = lintText(
        "src/sim/x.cc",
        "// kilolint: allow(nondeterminism) wall deadline\n"
        "auto t = std::chrono::steady_clock::now();\n");
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.suppressionsUsed, 1);
}

TEST(LintSuppression, UnusedAnnotationIsItselfReported)
{
    LintReport r = lintText(
        "src/sim/x.cc",
        "// kilolint: allow(nondeterminism)\n"
        "int x = 3;\n");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, "unused-suppression");
    EXPECT_EQ(r.findings[0].severity, Severity::Warning);
    EXPECT_EQ(r.suppressionsTotal, 1);
    EXPECT_EQ(r.suppressionsUsed, 0);
}

TEST(LintSuppression, SuppressionIsRuleSpecific)
{
    // An allow() for one rule must not blanket others on the line.
    LintReport r = lintText(
        "src/sim/x.cc",
        "// kilolint: allow(raw-serialization)\n"
        "auto t = std::chrono::steady_clock::now();\n");
    EXPECT_TRUE(hasRule(r, "nondeterminism"));
    EXPECT_TRUE(hasRule(r, "unused-suppression"));
}

TEST(LintSuppression, DocCommentMentioningSyntaxIsNotAnAnnotation)
{
    LintReport r = lintText(
        "src/sim/x.cc",
        "// Suppress findings with `kilolint: allow(rule)`.\n"
        "int x = 3;\n");
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.suppressionsTotal, 0);
}

// --------------------------------------------------- report shape

TEST(LintReportFormat, FindingLineMatchesContract)
{
    Finding f;
    f.path = "src/core/foo.cc";
    f.line = 12;
    f.rule = "nondeterminism";
    f.message = "wall clock read";
    EXPECT_EQ(findingLine(f),
              "src/core/foo.cc:12: [kilolint-nondeterminism] "
              "wall clock read");
}

TEST(LintReportFormat, JsonHasSchemaKeysAndEscapes)
{
    LintReport r = lintText(
        "src/sim/x.cc",
        "auto t = std::chrono::steady_clock::now();\n");
    std::string js = reportJson(r);
    EXPECT_NE(js.find("\"files\":1"), std::string::npos) << js;
    EXPECT_NE(js.find("\"suppressions\":{\"total\":0,\"used\":0}"),
              std::string::npos)
        << js;
    EXPECT_NE(js.find("\"findings\":[{\"file\":\"src/sim/x.cc\""),
              std::string::npos)
        << js;
    EXPECT_NE(js.find("\"line\":1"), std::string::npos) << js;
    EXPECT_NE(js.find("\"rule\":\"nondeterminism\""),
              std::string::npos)
        << js;
    EXPECT_NE(js.find("\"severity\":\"error\""), std::string::npos)
        << js;
}

TEST(LintReportFormat, JsonEscapesQuotesAndBackslashes)
{
    LintReport r;
    Finding f;
    f.path = "a\"b\\c.cc";
    f.line = 1;
    f.rule = "x";
    f.message = "tab\there";
    r.findings.push_back(f);
    std::string js = reportJson(r);
    EXPECT_NE(js.find("a\\\"b\\\\c.cc"), std::string::npos) << js;
    EXPECT_NE(js.find("tab\\there"), std::string::npos) << js;
}

// ------------------------------------------------------ self-scan

#ifdef KILO_SOURCE_DIR
TEST(LintSelfScan, LiveTreeLintsClean)
{
    RuleRegistry reg = RuleRegistry::builtin();
    Linter linter(reg);
    LintReport report;
    linter.lintPath(std::string(KILO_SOURCE_DIR) + "/src", report);
    linter.lintPath(std::string(KILO_SOURCE_DIR) + "/tools", report);

    std::string all;
    for (const auto &f : report.findings)
        all += findingLine(f) + "\n";
    EXPECT_TRUE(report.clean()) << all;
    EXPECT_GT(report.filesScanned, 100);
    // Every sanctioned suppression must still be load-bearing; the
    // count is pinned so exemptions cannot silently accumulate (CI
    // enforces the same cap via kilolint --max-suppressions).
    EXPECT_EQ(report.suppressionsTotal, 13);
    EXPECT_EQ(report.suppressionsUsed, report.suppressionsTotal);
}
#endif
