/**
 * @file
 * Tests of the trace subsystem: header round-trip, capture→replay
 * op-for-op identity over every synthetic preset, end-to-end
 * bit-identical simulation results between live and replayed runs on
 * all three machine models, endless-wrap/reset semantics, and robust
 * rejection of malformed files (truncation, bad magic, version
 * mismatch, mid-block corruption).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/sim/sweep_engine.hh"
#include "src/trace/capture.hh"
#include "src/trace/trace_reader.hh"
#include "src/trace/trace_writer.hh"
#include "src/wload/profile.hh"
#include "src/wload/synthetic.hh"
#include "test_helpers.hh"

using namespace kilo;
using namespace kilo::trace;

namespace
{

/** Fresh path under the gtest temp dir; removed by the fixture. */
class TraceTest : public ::testing::Test
{
  protected:
    std::string
    tracePath(const std::string &tag)
    {
        std::string p = ::testing::TempDir() + "kilo_" + tag + "_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()->name() + ".ktrc";
        files.push_back(p);
        return p;
    }

    void
    TearDown() override
    {
        for (const auto &f : files)
            std::remove(f.c_str());
    }

    std::vector<std::string> files;
};

/** Read the whole file into a byte vector. */
std::vector<char>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

/** Overwrite the file with the first @p n bytes of @p bytes. */
void
rewrite(const std::string &path, const std::vector<char> &bytes,
        size_t n)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), long(std::min(n, bytes.size())));
}

} // anonymous namespace

// ------------------------------------------------- header round-trip

TEST_F(TraceTest, HeaderMetadataRoundTrips)
{
    auto path = tracePath("hdr");
    TraceMeta meta;
    meta.name = "my-kernel";
    meta.fp = true;
    meta.seed = 0xdeadbeefcafeull;
    meta.regions = {{0x1000, 4096}, {0x40000000, 1 << 20}};
    {
        Writer w(path, meta);
        w.append(isa::makeLoad(8, 4, 0x1000, 0x100));
        w.append(isa::makeBranch(8, true, 0x100, 0x104));
        w.finish();
    }
    Reader r(path);
    EXPECT_EQ(r.meta().name, "my-kernel");
    EXPECT_TRUE(r.meta().fp);
    EXPECT_EQ(r.meta().seed, 0xdeadbeefcafeull);
    ASSERT_EQ(r.meta().regions.size(), 2u);
    EXPECT_EQ(r.meta().regions[1].base, 0x40000000u);
    EXPECT_EQ(r.meta().regions[1].bytes, 1u << 20);
    EXPECT_EQ(r.opCount(), 2u);

    std::vector<isa::MicroOp> block;
    ASSERT_TRUE(r.readBlock(block));
    ASSERT_EQ(block.size(), 2u);
    EXPECT_EQ(block[0], isa::makeLoad(8, 4, 0x1000, 0x100));
    EXPECT_EQ(block[1], isa::makeBranch(8, true, 0x100, 0x104));
    EXPECT_FALSE(r.readBlock(block));
}

TEST_F(TraceTest, TraceWorkloadServesRegionsForPrewarm)
{
    auto path = tracePath("regions");
    auto inner = wload::makeWorkload("swim");
    {
        CapturingWorkload capture(*inner, path, 1);
        for (int i = 0; i < 100; ++i)
            capture.next();
        capture.finish();
    }
    TraceWorkload replay(path);
    EXPECT_EQ(replay.name(), "swim");
    EXPECT_TRUE(replay.isFp());
    auto live_regions = wload::makeWorkload("swim")->regions();
    auto replay_regions = replay.regions();
    ASSERT_EQ(replay_regions.size(), live_regions.size());
    for (size_t i = 0; i < live_regions.size(); ++i) {
        EXPECT_EQ(replay_regions[i].base, live_regions[i].base);
        EXPECT_EQ(replay_regions[i].bytes, live_regions[i].bytes);
    }
}

// ------------------------------------- capture -> replay op identity

TEST_F(TraceTest, RoundTripAllPresets50k)
{
    constexpr size_t NumOps = 50000;
    for (const auto &prof : wload::allProfiles()) {
        auto path = tracePath("rt_" + prof.name);
        {
            wload::SyntheticWorkload live(prof);
            CapturingWorkload capture(live, path, prof.seed);
            // Mixed pull pattern: batches and single ops, like the
            // real front end around squashes.
            isa::MicroOp buf[64];
            size_t pulled = 0;
            while (pulled < NumOps) {
                if (pulled % 1000 < 3) {
                    capture.next();
                    ++pulled;
                } else {
                    size_t n =
                        std::min<size_t>(64, NumOps - pulled);
                    ASSERT_EQ(capture.nextBlock(buf, n), n);
                    pulled += n;
                }
            }
            capture.finish();
            EXPECT_EQ(capture.recorded(), NumOps);
        }
        wload::SyntheticWorkload reference(prof);
        TraceWorkload replay(path);
        EXPECT_EQ(replay.traceOps(), NumOps);
        for (size_t i = 0; i < NumOps; ++i) {
            ASSERT_EQ(replay.next(), reference.next())
                << prof.name << " diverges at op " << i;
        }
    }
}

TEST_F(TraceTest, ReplayNextBlockMatchesNext)
{
    auto path = tracePath("blocks");
    auto inner = wload::makeWorkload("mcf");
    {
        CapturingWorkload capture(*inner, path, 1);
        isa::MicroOp buf[128];
        for (int i = 0; i < 100; ++i)
            capture.nextBlock(buf, 128);
        capture.finish();
    }
    TraceWorkload a(path);
    TraceWorkload b(path);
    isa::MicroOp buf[97];
    for (int chunk = 0; chunk < 50; ++chunk) {
        ASSERT_EQ(b.nextBlock(buf, 97), 97u);
        for (int i = 0; i < 97; ++i)
            ASSERT_EQ(a.next(), buf[i]);
    }
}

TEST_F(TraceTest, EndlessWrapAndReset)
{
    auto path = tracePath("wrap");
    {
        Writer w(path, TraceMeta{});
        for (int i = 0; i < 100; ++i)
            w.append(isa::makeAlu(int16_t(i % 8), 1, 2,
                                  0x1000 + uint64_t(i) * 4));
        w.finish();
    }
    TraceWorkload wl(path);
    std::vector<isa::MicroOp> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(wl.next());
    // The stream wraps to the start, exactly like a reset.
    for (int lap = 0; lap < 2; ++lap)
        for (int i = 0; i < 100; ++i)
            ASSERT_EQ(wl.next(), first[size_t(i)]);
    wl.next(); // leave mid-stream
    wl.reset();
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(wl.next(), first[size_t(i)]);
}

// ------------------------------------ end-to-end simulator identity

TEST_F(TraceTest, SimulatorBitIdenticalLiveVsReplay)
{
    const sim::MachineConfig machines[] = {
        sim::MachineConfig::r10_64(),
        sim::MachineConfig::kilo1024(),
        sim::MachineConfig::dkip2048(),
    };
    const char *workloads[] = {"mcf", "swim"};
    auto rc = sim::RunConfig::sweep();

    for (const auto &machine : machines) {
        for (const char *name : workloads) {
            auto path = tracePath(std::string("e2e_") +
                                  machine.name + "_" + name);
            wload::SyntheticWorkload inner(
                wload::profileByName(name));
            CapturingWorkload capture(inner, path,
                                      inner.profile().seed);
            auto live = sim::Simulator::run(
                machine, capture, mem::MemConfig::mem400(), rc);
            capture.finish();

            sim::RunConfig replay_rc = rc;
            replay_rc.tracePath = path;
            auto replayed = sim::Simulator::run(
                machine, "(ignored)", mem::MemConfig::mem400(),
                replay_rc);

            // Byte-identical JSONL rows: cycles, committed, IPC and
            // every memory/MSHR stat agree exactly.
            EXPECT_EQ(sim::runResultJson(live),
                      sim::runResultJson(replayed))
                << machine.name << "/" << name;
        }
    }
}

TEST_F(TraceTest, SweepEngineRunsTraceNamedJobs)
{
    auto path = tracePath("sweepjob");
    {
        auto inner = wload::makeWorkload("gzip");
        CapturingWorkload capture(*inner, path, 1);
        auto rc = sim::RunConfig::sweep();
        sim::Simulator::run(sim::MachineConfig::r10_64(), capture,
                            mem::MemConfig::mem400(), rc);
        capture.finish();
    }
    sim::SweepEngine engine(1);
    auto jobs = sim::SweepEngine::matrix(
        {sim::MachineConfig::r10_64()}, {"trace:" + path},
        {mem::MemConfig::mem400()}, sim::RunConfig::sweep());
    auto results = engine.run(jobs);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].workload, "gzip"); // from the trace header
    EXPECT_GT(results[0].ipc, 0.0);
}

// --------------------------------------------------- error handling

TEST_F(TraceTest, RejectsWrongMagic)
{
    auto path = tracePath("magic");
    std::ofstream(path, std::ios::binary) << "NOTATRACEFILE.......";
    EXPECT_THROW(Reader r(path), TraceError);
}

TEST_F(TraceTest, RejectsVersionMismatch)
{
    auto path = tracePath("version");
    {
        Writer w(path, TraceMeta{});
        w.append(isa::makeNop(0x1000));
        w.finish();
    }
    auto bytes = slurp(path);
    bytes[8] = char(FormatVersion + 1); // version field, LE low byte
    rewrite(path, bytes, bytes.size());
    try {
        Reader r(path);
        FAIL() << "version mismatch not detected";
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST_F(TraceTest, RejectsTruncatedHeader)
{
    auto path = tracePath("trunc_hdr");
    {
        Writer w(path, TraceMeta{});
        w.append(isa::makeNop(0x1000));
        w.finish();
    }
    auto bytes = slurp(path);
    rewrite(path, bytes, 15); // cut inside the header
    EXPECT_THROW(Reader r(path), TraceError);
}

TEST_F(TraceTest, RejectsTruncatedBlock)
{
    auto path = tracePath("trunc_blk");
    {
        Writer w(path, TraceMeta{});
        for (int i = 0; i < 1000; ++i)
            w.append(isa::makeLoad(8, 4, uint64_t(i) * 64, 0x1000));
        w.finish();
    }
    auto bytes = slurp(path);
    rewrite(path, bytes, bytes.size() - 100); // tear the block
    Reader r(path); // header still parses...
    EXPECT_EQ(r.opCount(), 1000u);
    std::vector<isa::MicroOp> block;
    EXPECT_THROW(r.readBlock(block), TraceError);
    // ...and the workload wrapper hits the same wall, not UB.
    EXPECT_THROW(TraceWorkload wl(path), TraceError);
}

TEST_F(TraceTest, RejectsMidBlockCorruption)
{
    auto path = tracePath("corrupt");
    {
        Writer w(path, TraceMeta{});
        for (int i = 0; i < 1000; ++i)
            w.append(isa::makeLoad(8, 4, uint64_t(i) * 64, 0x1000));
        w.finish();
    }
    auto bytes = slurp(path);
    bytes[bytes.size() - 200] ^= char(0x55); // flip bits mid-payload
    rewrite(path, bytes, bytes.size());
    Reader r(path);
    std::vector<isa::MicroOp> block;
    try {
        r.readBlock(block);
        FAIL() << "mid-block corruption not detected";
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("corrupt"),
                  std::string::npos);
    }
}

TEST_F(TraceTest, RejectsTruncationAtBlockBoundary)
{
    // A file cut exactly at a block frame boundary parses cleanly
    // block by block — only the header op count can expose it. The
    // replay must throw at the wrap instead of looping a plausible
    // but wrong prefix stream.
    auto path = tracePath("boundary");
    constexpr int NumOps = 20000; // > BlockTargetBytes: multi-block
    {
        Writer w(path, TraceMeta{});
        for (int i = 0; i < NumOps; ++i)
            w.append(isa::makeLoad(8, 4, uint64_t(i) * 64,
                                   0x1000 + uint64_t(i % 64) * 4));
        w.finish();
    }
    auto bytes = slurp(path);
    // Default TraceMeta header: magic 8 + version 4 + opcount 8 +
    // seed 8 + fp 1 + namelen 2 + "trace" 5 + nregions 4 = 40 bytes.
    constexpr size_t HeaderBytes = 40;
    uint32_t payload_len;
    std::memcpy(&payload_len, bytes.data() + HeaderBytes, 4);
    size_t block0_end = HeaderBytes + 12 + payload_len;
    ASSERT_LT(block0_end, bytes.size()); // really multi-block
    rewrite(path, bytes, block0_end);    // keep only block 0

    TraceWorkload wl(path); // block 0 loads fine...
    try {
        for (int i = 0; i < NumOps + 1; ++i)
            wl.next();
        FAIL() << "boundary truncation not detected at wrap";
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos);
    }
}

TEST_F(TraceTest, RejectsUnsealedTraceAtWrap)
{
    // A capture that crashed before finish() leaves the header op
    // count at the placeholder 0; the wrap check rejects it.
    auto path = tracePath("unsealed");
    {
        Writer w(path, TraceMeta{});
        for (int i = 0; i < 100; ++i)
            w.append(isa::makeNop(0x1000));
        w.finish();
    }
    auto bytes = slurp(path);
    for (int i = 0; i < 8; ++i)
        bytes[size_t(OpCountOffset) + i] = 0; // un-patch the count
    rewrite(path, bytes, bytes.size());
    TraceWorkload wl(path);
    EXPECT_THROW(
        {
            for (int i = 0; i < 101; ++i)
                wl.next();
        },
        TraceError);
}

TEST_F(TraceTest, RejectsEmptyTrace)
{
    auto path = tracePath("empty");
    {
        Writer w(path, TraceMeta{});
        w.finish(); // header only, zero blocks
    }
    EXPECT_THROW(TraceWorkload wl(path), TraceError);
}

TEST_F(TraceTest, RejectsMissingFile)
{
    EXPECT_THROW(Reader r("/nonexistent/path/to/trace.ktrc"),
                 TraceError);
}

// ------------------------------------- mmap vs streaming backends

/** Every preset decodes op-for-op identically through the mapped and
 *  the streaming backend (the sharded-replay acceptance property). */
TEST_F(TraceTest, MmapMatchesStreamingAllPresets)
{
    constexpr size_t NumOps = 8192;
    for (const auto &prof : wload::allProfiles()) {
        auto path = tracePath("mm_" + prof.name);
        {
            wload::SyntheticWorkload live(prof);
            CapturingWorkload capture(live, path, prof.seed);
            isa::MicroOp buf[256];
            for (size_t i = 0; i < NumOps / 256; ++i)
                capture.nextBlock(buf, 256);
            capture.finish();
        }
        TraceWorkload mapped(path, ReadMode::Mmap);
        TraceWorkload streamed(path, ReadMode::Streaming);
        ASSERT_TRUE(mapped.mapped());
        ASSERT_FALSE(streamed.mapped());
        // Mixed pull shapes cross block boundaries both ways.
        isa::MicroOp a[64], b[64];
        for (size_t pulled = 0; pulled < NumOps; pulled += 64) {
            mapped.nextBlock(a, 64);
            streamed.nextBlock(b, 64);
            for (size_t i = 0; i < 64; ++i)
                ASSERT_EQ(a[i], b[i])
                    << prof.name << " op " << pulled + i;
        }
    }
}

TEST_F(TraceTest, MmapReaderValidatesLikeStreaming)
{
    auto path = tracePath("mmval");
    auto inner = wload::makeWorkload("swim");
    {
        CapturingWorkload capture(*inner, path, 1);
        for (int i = 0; i < 5000; ++i)
            capture.next();
        capture.finish();
    }
    // Flip one payload byte: both backends must report the checksum
    // mismatch, not replay a wrong stream.
    auto bytes = slurp(path);
    bytes[bytes.size() / 2] = char(bytes[bytes.size() / 2] ^ 0x40);
    rewrite(path, bytes, bytes.size());
    for (auto mode : {ReadMode::Mmap, ReadMode::Streaming}) {
        Reader r(path, mode);
        std::vector<isa::MicroOp> block;
        try {
            while (r.readBlock(block)) {
            }
            FAIL() << "corruption not detected";
        } catch (const TraceError &e) {
            EXPECT_NE(std::string(e.what()).find("corrupt"),
                      std::string::npos)
                << e.what();
        }
    }
    // Truncation mid-payload is equally fatal in both backends.
    rewrite(path, bytes, bytes.size() - 7);
    for (auto mode : {ReadMode::Mmap, ReadMode::Streaming}) {
        Reader r(path, mode);
        std::vector<isa::MicroOp> block;
        EXPECT_THROW(while (r.readBlock(block)) {}, TraceError);
    }
}

TEST_F(TraceTest, MmapWrapAndResetMatchStreaming)
{
    auto path = tracePath("mmwrap");
    auto inner = wload::makeWorkload("mcf");
    {
        CapturingWorkload capture(*inner, path, 1);
        for (int i = 0; i < 777; ++i)
            capture.next();
        capture.finish();
    }
    TraceWorkload mapped(path, ReadMode::Mmap);
    TraceWorkload streamed(path, ReadMode::Streaming);
    // Walk two full passes (endless wrap) and a mid-stream reset.
    for (int i = 0; i < 1800; ++i)
        ASSERT_EQ(mapped.next(), streamed.next()) << "op " << i;
    mapped.reset();
    streamed.reset();
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(mapped.next(), streamed.next()) << "post-reset " << i;
}

TEST_F(TraceTest, AutoModeFallsBackForForcedStreaming)
{
    auto path = tracePath("mmenv");
    auto inner = wload::makeWorkload("gzip");
    {
        CapturingWorkload capture(*inner, path, 1);
        for (int i = 0; i < 100; ++i)
            capture.next();
        capture.finish();
    }
    {
        Reader def(path); // Auto picks the mapped backend here
        EXPECT_TRUE(def.mapped());
    }
    setenv("KILO_TRACE_MMAP", "0", 1);
    {
        Reader forced(path); // ... unless the env kill-switch is set
        EXPECT_FALSE(forced.mapped());
    }
    unsetenv("KILO_TRACE_MMAP");
}

/** Replayed simulation rows are byte-identical across backends. */
TEST_F(TraceTest, SimulatorRowsIdenticalAcrossBackends)
{
    auto path = tracePath("mmrow");
    auto inner = wload::makeWorkload("equake");
    {
        CapturingWorkload capture(*inner, path, 1);
        auto res = sim::Simulator::run(
            sim::MachineConfig::dkip2048(), capture,
            mem::MemConfig::mem400(), sim::RunConfig::sweep());
        capture.finish();
        (void)res;
    }
    auto run_with = [&](ReadMode mode) {
        TraceWorkload replay(path, mode);
        auto res = sim::Simulator::run(
            sim::MachineConfig::dkip2048(), replay,
            mem::MemConfig::mem400(), sim::RunConfig::sweep());
        return sim::runResultJson(res);
    };
    EXPECT_EQ(run_with(ReadMode::Mmap),
              run_with(ReadMode::Streaming));
}
