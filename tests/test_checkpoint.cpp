/**
 * @file
 * Tests of Session checkpoint/restore: a run checkpointed at cycle C
 * and restored — into the same Session or a freshly constructed one —
 * must produce the same JSONL row as a run that never paused, across
 * all three machine models. Also covers the edge cases that make
 * checkpoints trustworthy: snapshots taken while MSHR fills are in
 * flight and while fetch is redirect-blocked, double restores, and
 * the KILOCKPT container rejecting every form of file malformation
 * with ckpt::CheckpointError.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "src/ckpt/serial.hh"
#include "src/sim/session.hh"
#include "src/sim/sweep_engine.hh"

using namespace kilo;
using namespace kilo::sim;

namespace
{

RunConfig
shortRun()
{
    RunConfig rc;
    rc.warmupInsts = 5000;
    rc.measureInsts = 15000;
    return rc;
}

std::vector<MachineConfig>
allMachines()
{
    return {MachineConfig::r10_64(), MachineConfig::kilo1024(),
            MachineConfig::dkip2048()};
}

/** JSONL row of a run that never pauses. */
std::string
uninterruptedRow(const MachineConfig &machine,
                 const std::string &workload, const RunConfig &rc)
{
    Session s(machine, workload, mem::MemConfig::mem400(), rc);
    s.run();
    return runResultJson(s.finish());
}

std::string
ckptPath(const std::string &tag)
{
    return ::testing::TempDir() + "kilo_ckpt_" + tag + ".kckpt";
}

} // anonymous namespace

/** The acceptance pin: checkpoint-at-C-then-restore is exact. */
TEST(Checkpoint, RestoreBitIdenticalAllMachines)
{
    for (const auto &machine : allMachines()) {
        RunConfig rc = shortRun();
        std::string golden = uninterruptedRow(machine, "mcf", rc);

        Session src(machine, "mcf", mem::MemConfig::mem400(), rc);
        src.warmup();
        src.runFor(7000);
        ckpt::Checkpoint snap = src.checkpoint();

        // Taking the checkpoint must not perturb the source run.
        src.run();
        EXPECT_EQ(runResultJson(src.finish()), golden)
            << machine.name << " (source run after checkpoint)";

        // Restore into a freshly constructed Session and finish.
        Session dst(machine, "mcf", mem::MemConfig::mem400(), rc);
        dst.restore(snap);
        dst.run();
        EXPECT_EQ(runResultJson(dst.finish()), golden)
            << machine.name << " (fresh-session restore)";
    }
}

/** Checkpoints taken at many scattered boundaries — including ones
 *  landing inside redirect stalls and mid-drain of the decoupled
 *  structures — all restore to the same final row. */
TEST(Checkpoint, ScatteredBoundariesAllRestoreExact)
{
    for (const auto &machine : allMachines()) {
        RunConfig rc = shortRun();
        std::string golden = uninterruptedRow(machine, "mcf", rc);

        Session src(machine, "mcf", mem::MemConfig::mem400(), rc);
        src.warmup();
        std::vector<ckpt::Checkpoint> snaps;
        while (!src.finished() && snaps.size() < 6) {
            // Odd quantum on purpose: boundaries land wherever the
            // pipeline happens to be — squash recovery, full
            // windows, fetch stalls.
            src.step(931);
            snaps.push_back(src.checkpoint());
        }
        ASSERT_GE(snaps.size(), 3u) << machine.name;

        for (size_t i = 0; i < snaps.size(); ++i) {
            Session dst(machine, "mcf", mem::MemConfig::mem400(), rc);
            dst.restore(snaps[i]);
            dst.run();
            EXPECT_EQ(runResultJson(dst.finish()), golden)
                << machine.name << " checkpoint " << i;
        }
    }
}

/** A checkpoint taken while off-chip fills are in flight restores
 *  them: the merged accesses and fill completions replay exactly. */
TEST(Checkpoint, InFlightMshrFillsSurvive)
{
    RunConfig rc = shortRun();
    auto machine = MachineConfig::dkip2048();
    std::string golden = uninterruptedRow(machine, "mcf", rc);

    Session src(machine, "mcf", mem::MemConfig::mem400(), rc);
    src.warmup();
    // Step until the MSHR file holds live fills (mcf misses keep it
    // busy; the loop terminates almost immediately).
    bool found = false;
    while (!src.finished()) {
        src.step(50);
        if (src.core().memory().mshrOccupancy() > 0) {
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found) << "mcf/MEM-400 never had a live fill";

    ckpt::Checkpoint snap = src.checkpoint();
    Session dst(machine, "mcf", mem::MemConfig::mem400(), rc);
    dst.restore(snap);
    EXPECT_GT(dst.core().memory().mshrOccupancy(), 0u);
    dst.run();
    EXPECT_EQ(runResultJson(dst.finish()), golden);
}

/** Restoring the same checkpoint twice (even after advancing) yields
 *  the same row both times. */
TEST(Checkpoint, DoubleRestoreIsIdempotent)
{
    RunConfig rc = shortRun();
    auto machine = MachineConfig::kilo1024();
    std::string golden = uninterruptedRow(machine, "swim", rc);

    Session src(machine, "swim", mem::MemConfig::mem400(), rc);
    src.warmup();
    src.runFor(4000);
    ckpt::Checkpoint snap = src.checkpoint();

    Session dst(machine, "swim", mem::MemConfig::mem400(), rc);
    dst.restore(snap);
    dst.runFor(3000); // advance, then rewind via the same snapshot
    dst.restore(snap);
    dst.run();
    EXPECT_EQ(runResultJson(dst.finish()), golden);
}

/** Identity validation: a checkpoint only restores into a session of
 *  the same machine and workload. */
TEST(Checkpoint, MismatchedIdentityRejected)
{
    RunConfig rc = shortRun();
    Session src(MachineConfig::dkip2048(), "mcf",
                mem::MemConfig::mem400(), rc);
    src.warmup();
    ckpt::Checkpoint snap = src.checkpoint();

    Session other_machine(MachineConfig::r10_64(), "mcf",
                          mem::MemConfig::mem400(), rc);
    EXPECT_THROW(other_machine.restore(snap), ckpt::CheckpointError);

    Session other_workload(MachineConfig::dkip2048(), "swim",
                           mem::MemConfig::mem400(), rc);
    EXPECT_THROW(other_workload.restore(snap), ckpt::CheckpointError);
}

/** Trailing garbage after the core state is rejected, not ignored. */
TEST(Checkpoint, TrailingBytesRejected)
{
    RunConfig rc = shortRun();
    Session src(MachineConfig::r10_64(), "mcf",
                mem::MemConfig::mem400(), rc);
    src.warmup();
    ckpt::Checkpoint snap = src.checkpoint();
    snap.bytes.push_back(0x5a);

    Session dst(MachineConfig::r10_64(), "mcf",
                mem::MemConfig::mem400(), rc);
    EXPECT_THROW(dst.restore(snap), ckpt::CheckpointError);
}

/** On-disk KILOCKPT round trip is exact. */
TEST(Checkpoint, FileRoundTripBitIdentical)
{
    RunConfig rc = shortRun();
    auto machine = MachineConfig::dkip2048();
    std::string golden = uninterruptedRow(machine, "mcf", rc);
    std::string path = ckptPath("roundtrip");

    Session src(machine, "mcf", mem::MemConfig::mem400(), rc);
    src.warmup();
    src.runFor(6000);
    src.saveCheckpoint(path);

    Session dst(machine, "mcf", mem::MemConfig::mem400(), rc);
    dst.loadCheckpoint(path);
    dst.run();
    EXPECT_EQ(runResultJson(dst.finish()), golden);
    std::remove(path.c_str());
}

/** Every KILOCKPT malformation raises CheckpointError: wrong magic,
 *  future version, truncation, payload corruption. */
TEST(Checkpoint, MalformedFilesRejected)
{
    RunConfig rc = shortRun();
    Session src(MachineConfig::r10_64(), "mcf",
                mem::MemConfig::mem400(), rc);
    src.warmup();
    std::string path = ckptPath("malformed");
    src.saveCheckpoint(path);

    std::vector<char> bytes;
    {
        std::ifstream in(path, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    ASSERT_GT(bytes.size(), 32u);

    auto write_variant = [&](std::vector<char> v) {
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out.write(v.data(), std::streamsize(v.size()));
    };
    auto expect_rejected = [&](const char *what) {
        EXPECT_THROW(ckpt::readCheckpointFile(path),
                     ckpt::CheckpointError)
            << what;
    };

    // Wrong magic.
    {
        std::vector<char> v = bytes;
        v[0] = 'X';
        write_variant(v);
        expect_rejected("bad magic");
    }
    // Future format version (bytes 8..11 hold the u32 version).
    {
        std::vector<char> v = bytes;
        v[8] = char(0x7f);
        write_variant(v);
        expect_rejected("version mismatch");
    }
    // Truncated header and truncated payload.
    {
        std::vector<char> v(bytes.begin(), bytes.begin() + 10);
        write_variant(v);
        expect_rejected("truncated header");
    }
    {
        std::vector<char> v(bytes.begin(), bytes.end() - 7);
        write_variant(v);
        expect_rejected("truncated payload");
    }
    // A flipped payload byte fails the checksum.
    {
        std::vector<char> v = bytes;
        v[v.size() / 2] = char(~v[v.size() / 2]);
        write_variant(v);
        expect_rejected("checksum mismatch");
    }

    std::remove(path.c_str());
}
