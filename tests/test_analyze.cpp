/**
 * @file
 * White-box scenarios for the D-KIP Analyze stage — the paper's
 * classification rules of section 3.2 — driven through controlled
 * micro-workloads and observed via the core's structure accessors
 * and statistics.
 */

#include <gtest/gtest.h>

#include "src/dkip/dkip_core.hh"
#include "src/wload/synthetic.hh"
#include "test_helpers.hh"

using namespace kilo;
using namespace kilo::dkip;

namespace
{

DkipParams
quietParams()
{
    DkipParams p = DkipParams::dkip2048();
    p.cp.predictor = pred::BpKind::Perfect;
    return p;
}

/** Loop body: one off-chip strided load + one dependent ALU op +
 *  filler. Every load misses (64B stride over a huge region needs a
 *  never-repeating address, so use a synthetic profile). */
wload::WorkloadProfile
missProfile()
{
    wload::WorkloadProfile p;
    p.name = "miss-dep";
    p.streamLoads = 1;
    p.numStreams = 1;
    p.streamBytes = 64 << 20; // far larger than the L2
    p.streamStride = 64;
    p.depComputePerLoad = 2;
    p.indepCompute = 4;
    p.condBranches = 0;
    p.storeEvery = 0;
    p.branchRandFrac = 0.0;
    return p;
}

} // anonymous namespace

TEST(Analyze, MissDependentsEnterLlib)
{
    auto wl = wload::makeWorkload(missProfile());
    DkipCore core(quietParams(), *wl, mem::MemConfig::mem400());
    core.run(5000);
    // Dependent compute of every missing load flows through the LLIB.
    EXPECT_GT(core.stats().llibInsertedInt, 500u);
    // The loads themselves do not (they execute in the AP).
    EXPECT_GT(core.stats().mpExecuted, 0u);
}

TEST(Analyze, LoadsNeverOccupyTheLlib)
{
    auto wl = wload::makeWorkload(missProfile());
    DkipCore core(quietParams(), *wl, mem::MemConfig::mem400());
    // LLIB insert counters only see non-memory instructions; with 2
    // dep ops per load, inserts ~= 2x the off-chip loads.
    core.run(20000);
    const auto &st = core.stats();
    EXPECT_NEAR(double(st.llibInsertedInt),
                2.0 * double(st.loadMem + st.mpExecuted) / 3.0 * 1.0,
                double(st.llibInsertedInt)); // loose sanity bound
    EXPECT_GT(st.loadMem, 1000u);
}

TEST(Analyze, LlbvBitsSetWhileMissesInFlight)
{
    auto wl = wload::makeWorkload(missProfile());
    DkipCore core(quietParams(), *wl, mem::MemConfig::mem400());
    core.run(2000);
    // In steady state some registers are marked low-locality.
    // (Observed mid-run; misses are always in flight here.)
    EXPECT_GT(core.lowLocalityBits().popcount(), 0u);
}

TEST(Analyze, PerfectMemoryKeepsLlbvClear)
{
    auto wl = wload::makeWorkload(missProfile());
    DkipCore core(quietParams(), *wl, mem::MemConfig::l1Only());
    core.run(5000);
    EXPECT_TRUE(core.lowLocalityBits().none());
    EXPECT_EQ(core.stats().llibInsertedInt, 0u);
    EXPECT_EQ(core.stats().analyzeStallCycles, 0u);
}

TEST(Analyze, ShortRedefinitionClearsLlbv)
{
    // The same registers are redefined by resident loads in between:
    // low-locality marks must not accumulate forever.
    auto prof = missProfile();
    prof.streamLoads = 2; // second stream is tiny and resident
    prof.numStreams = 2;
    prof.streamBytes = 64 << 20;
    auto wl = wload::makeWorkload(prof);
    DkipCore core(quietParams(), *wl, mem::MemConfig::mem400());
    core.run(20000);
    // Fewer than half the registers marked at any sampling point.
    EXPECT_LT(core.lowLocalityBits().popcount(),
              size_t(isa::NumRegs) / 2);
}

TEST(Analyze, SliceTransitivityViaRegisters)
{
    // dep chains of depth 2: the second-level op's source is the
    // first-level op (marked via LLBV), so it must follow it into
    // the LLIB even though it does not read the load directly.
    auto prof = missProfile(); // depComputePerLoad = 2 chains
    auto wl = wload::makeWorkload(prof);
    DkipCore core(quietParams(), *wl, mem::MemConfig::mem400());
    core.run(20000);
    const auto &st = core.stats();
    // Inserts per off-chip load approach the chain depth of 2.
    double per_load = double(st.llibInsertedInt) /
                      double(st.loadMem ? st.loadMem : 1);
    EXPECT_GT(per_load, 1.2);
}

TEST(Analyze, AgingTimerDelaysClassification)
{
    // With a very long timer the window is ROB-bound and throughput
    // of the decoupled path drops on a miss-heavy stream.
    auto wl_fast = wload::makeWorkload(missProfile());
    auto wl_slow = wload::makeWorkload(missProfile());
    DkipParams fast = quietParams();
    DkipParams slow = quietParams();
    slow.robTimer = 256;
    slow.cp.robSize = 1024;
    DkipCore a(fast, *wl_fast, mem::MemConfig::mem400());
    DkipCore b(slow, *wl_slow, mem::MemConfig::mem400());
    a.run(20000);
    b.run(20000);
    // Classification at 16 cycles lets the CP window rotate much
    // faster than commit-style draining at 256 cycles.
    EXPECT_GE(a.stats().ipc(), b.stats().ipc() * 0.9);
}

TEST(Analyze, BranchInSliceTakesCheckpoint)
{
    auto prof = missProfile();
    prof.condBranches = 1;
    prof.branchOnLoad = true;
    prof.branchOnLoadFrac = 1.0;
    prof.branchRandFrac = 0.0; // perfectly biased, never squashes
    auto wl = wload::makeWorkload(prof);
    DkipCore core(quietParams(), *wl, mem::MemConfig::mem400());
    core.run(10000);
    EXPECT_GT(core.stats().checkpointsTaken, 50u);
}

TEST(Analyze, StallsOnShortInFlightWork)
{
    // FP divides take 12 cycles; an instruction reaching the Analyze
    // head mid-divide is short-latency and must stall the stage.
    wload::WorkloadProfile p;
    p.name = "div-heavy";
    p.fp = true;
    p.indepCompute = 2;
    p.fpDivEvery = 1;
    p.condBranches = 0;
    p.storeEvery = 0;
    p.branchRandFrac = 0.0;
    auto wl = wload::makeWorkload(p);
    DkipCore core(quietParams(), *wl, mem::MemConfig::l1Only());
    core.run(10000);
    EXPECT_GT(core.stats().analyzeStallCycles, 100u);
    EXPECT_EQ(core.stats().llibInsertedFp, 0u); // stalls, not slices
}

TEST(Analyze, WidthBoundsLlibInsertRate)
{
    auto wl = wload::makeWorkload(missProfile());
    DkipParams p = quietParams();
    DkipCore core(p, *wl, mem::MemConfig::mem400());
    core.run(20000);
    // The analyze stage processes at most analyzeWidth instructions
    // per cycle, so inserts can never exceed width x cycles.
    EXPECT_LE(core.stats().llibInsertedInt +
                  core.stats().llibInsertedFp,
              core.stats().cycles * uint64_t(p.analyzeWidth));
}
