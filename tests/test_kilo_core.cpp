/**
 * @file
 * Tests of the KILO-1024 baseline (pseudo-ROB + out-of-order SLIQ).
 */

#include <gtest/gtest.h>

#include "src/kilo_proc/kilo_core.hh"
#include "src/sim/sweep.hh"
#include "test_helpers.hh"

using namespace kilo;

namespace
{

sim::RunResult
runKilo(const std::string &bench,
        const mem::MemConfig &mcfg = mem::MemConfig::mem400())
{
    return sim::Simulator::run(sim::MachineConfig::kilo1024(), bench,
                               mcfg, sim::RunConfig::sweep());
}

} // anonymous namespace

TEST(KiloCore, ConfigMatchesPaper)
{
    auto p = kilo_proc::KiloParams::kilo1024();
    EXPECT_EQ(p.cp.robSize, 64u);     // pseudo-ROB
    EXPECT_EQ(p.sliqCapacity, 1024u); // SLIQ
    EXPECT_EQ(p.cp.intIqSize, 72u);   // issue queues
    EXPECT_EQ(p.robTimer, 16);
}

TEST(KiloCore, BeatsSmallBaselineOnStreamingFp)
{
    auto base = sim::Simulator::run(sim::MachineConfig::r10_64(),
                                    "swim", mem::MemConfig::mem400(),
                                    sim::RunConfig::sweep());
    auto kilo = runKilo("swim");
    EXPECT_GT(kilo.ipc, 2.0 * base.ipc);
}

TEST(KiloCore, SlowLaneExecutesLowLocalityCode)
{
    auto res = runKilo("swim");
    EXPECT_GT(res.stats.mpFraction(), 0.1); // SLIQ-executed share
    EXPECT_GT(res.stats.llibInsertedFp + res.stats.llibInsertedInt,
              0u);
}

TEST(KiloCore, PerfectMemoryNeverUsesSliq)
{
    auto res = runKilo("swim", mem::MemConfig::l1Only());
    EXPECT_EQ(res.stats.mpExecuted, 0u);
}

TEST(KiloCore, AtLeastMatchesDkipOnPointerChase)
{
    // The paper: integer pointer chasing profits from the SLIQ's
    // out-of-order reinsertion; with the loads issuing from the
    // decoupled Address Processor in both designs, the machines end
    // up within a few percent (paper: KILO 1.38 vs D-KIP 1.33).
    auto kilo = runKilo("vpr");
    auto dkip = sim::Simulator::run(sim::MachineConfig::dkip2048(),
                                    "vpr", mem::MemConfig::mem400(),
                                    sim::RunConfig::sweep());
    EXPECT_GT(kilo.ipc, 0.9 * dkip.ipc);
    EXPECT_NEAR(kilo.ipc, dkip.ipc, 0.2 * kilo.ipc);
}

TEST(KiloCore, ComparableToDkipOnStreamingFp)
{
    auto kilo = runKilo("swim");
    auto dkip = sim::Simulator::run(sim::MachineConfig::dkip2048(),
                                    "swim", mem::MemConfig::mem400(),
                                    sim::RunConfig::sweep());
    EXPECT_NEAR(kilo.ipc, dkip.ipc, 0.4 * kilo.ipc);
}

TEST(KiloCore, Deterministic)
{
    auto a = runKilo("mgrid");
    auto b = runKilo("mgrid");
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
}

TEST(KiloCore, SliqOccupancyBounded)
{
    auto res = runKilo("swim");
    EXPECT_LE(res.stats.maxLlibInstrsInt, 1024u);
}

TEST(KiloCore, SurvivesEveryFpBenchmark)
{
    for (const auto &name : sim::fpSuite()) {
        auto res = runKilo(name);
        EXPECT_GT(res.ipc, 0.01) << name;
    }
}
