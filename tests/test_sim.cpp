/**
 * @file
 * Tests of the simulation facade: machine presets, the runner,
 * suite sweeps and the table printer.
 */

#include <gtest/gtest.h>

#include "src/sim/sweep.hh"
#include "src/sim/sweep_engine.hh"
#include "src/wload/synthetic.hh"
#include "src/sim/table.hh"

using namespace kilo;
using namespace kilo::sim;

TEST(Config, BaselinePresets)
{
    auto r64 = MachineConfig::r10_64();
    EXPECT_EQ(r64.kind, MachineKind::Ooo);
    EXPECT_EQ(r64.cp.robSize, 64u);
    EXPECT_EQ(r64.cp.intIqSize, 40u);

    auto r256 = MachineConfig::r10_256();
    EXPECT_EQ(r256.cp.robSize, 256u);
    EXPECT_EQ(r256.cp.intIqSize, 160u);

    auto r768 = MachineConfig::r10_768();
    EXPECT_EQ(r768.cp.robSize, 768u);
}

TEST(Config, DecoupledPresets)
{
    EXPECT_EQ(MachineConfig::kilo1024().kind, MachineKind::Kilo);
    auto dkip = MachineConfig::dkip2048();
    EXPECT_EQ(dkip.kind, MachineKind::Dkip);
    EXPECT_EQ(dkip.dkip.llibCapacity, 2048u);
}

TEST(Config, WindowLimitScalesEverything)
{
    auto w = MachineConfig::windowLimit(4096);
    EXPECT_EQ(w.cp.robSize, 4096u);
    EXPECT_EQ(w.cp.intIqSize, 4096u);
    EXPECT_GE(w.cp.lsqSize, 4096u);
}

TEST(Config, SchedLabels)
{
    using core::SchedPolicy;
    EXPECT_EQ(MachineConfig::schedLabel(SchedPolicy::InOrder, 40,
                                        SchedPolicy::InOrder, 20),
              "INO-INO");
    EXPECT_EQ(MachineConfig::schedLabel(SchedPolicy::OutOfOrder, 80,
                                        SchedPolicy::OutOfOrder, 40),
              "OOO80-OOO40");
}

TEST(Config, DkipSchedAppliesPolicies)
{
    auto m = MachineConfig::dkipSched(core::SchedPolicy::InOrder, 20,
                                      core::SchedPolicy::OutOfOrder,
                                      40);
    EXPECT_EQ(m.dkip.cp.intPolicy, core::SchedPolicy::InOrder);
    EXPECT_EQ(m.dkip.cp.intIqSize, 20u);
    EXPECT_EQ(m.dkip.mpPolicy, core::SchedPolicy::OutOfOrder);
    EXPECT_EQ(m.dkip.mpIqSize, 40u);
}

TEST(Simulator, RunProducesConsistentResult)
{
    auto res = Simulator::run(MachineConfig::r10_64(), "gzip",
                              mem::MemConfig::mem400(),
                              RunConfig::sweep());
    EXPECT_EQ(res.machine, "R10-64");
    EXPECT_EQ(res.workload, "gzip");
    EXPECT_GT(res.ipc, 0.0);
    EXPECT_GE(res.stats.committed, 40000u);
    EXPECT_NEAR(res.ipc,
                double(res.stats.committed) / double(res.stats.cycles),
                1e-9);
}

TEST(Simulator, MakeCoreBuildsEveryKind)
{
    auto wl = wload::makeWorkload("gzip");
    for (auto cfg : {MachineConfig::r10_64(), MachineConfig::kilo1024(),
                     MachineConfig::dkip2048()}) {
        auto core = Simulator::makeCore(cfg, *wl,
                                        mem::MemConfig::mem400());
        ASSERT_NE(core, nullptr);
    }
}

TEST(Simulator, WarmupExcludedFromStats)
{
    RunConfig rc;
    rc.warmupInsts = 5000;
    rc.measureInsts = 10000;
    auto res = Simulator::run(MachineConfig::r10_64(), "gzip",
                              mem::MemConfig::mem400(), rc);
    EXPECT_LT(res.stats.committed, 11000u);
}

TEST(Sweep, SuitesMatchPaperSizes)
{
    EXPECT_EQ(intSuite().size(), 12u);
    EXPECT_EQ(fpSuite().size(), 14u);
}

TEST(Sweep, MeanIpcAverages)
{
    std::vector<RunResult> rs(2);
    rs[0].ipc = 1.0;
    rs[1].ipc = 3.0;
    EXPECT_DOUBLE_EQ(meanIpc(rs), 2.0);
    EXPECT_DOUBLE_EQ(meanIpc({}), 0.0);
}

TEST(Sweep, RunSuiteRunsAll)
{
    auto results = runSuite(MachineConfig::r10_64(),
                            {"gzip", "mesa"},
                            mem::MemConfig::mem400(),
                            RunConfig::sweep());
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].workload, "gzip");
    EXPECT_EQ(results[1].workload, "mesa");
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "ipc"});
    t.addRow({"swim", "2.45"});
    t.addRow({"a-longer-name", "0.16"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("a-longer-name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(2.456, 2), "2.46");
    EXPECT_EQ(Table::num(100.0, 1), "100.0");
}

TEST(Table, ShortRowsPadded)
{
    Table t({"a", "b", "c"});
    t.addRow({"x"});
    EXPECT_NE(t.render().find("x"), std::string::npos);
}

TEST(MshrStallRun, GenerousCapacityIsTimingIdentical)
{
    // With the default 4096-entry file no set ever fills, so the
    // structural hazard never fires and the opt-in flag must be
    // timing-invisible: the whole JSONL row matches the displacement
    // model's.
    RunConfig rc;
    rc.warmupInsts = 5000;
    rc.measureInsts = 20000;
    auto stalled_cfg = mem::MemConfig::mem400();
    stalled_cfg.mshrStall = true;
    auto base = Simulator::run(MachineConfig::dkip2048(), "swim",
                               mem::MemConfig::mem400(), rc);
    auto stalled = Simulator::run(MachineConfig::dkip2048(), "swim",
                                  stalled_cfg, rc);
    EXPECT_EQ(runResultJson(base), runResultJson(stalled));
    EXPECT_EQ(stalled.snapshot.value("mshr_stalls"), 0.0);
}

TEST(MshrStallRun, TinyFileBackPressuresAndStillCompletes)
{
    // Four MSHRs under a streaming FP workload: the MP's miss bursts
    // must hit the hazard (stalls counted), nothing may displace, and
    // the run must still complete — back-pressure, not deadlock.
    RunConfig rc;
    rc.warmupInsts = 5000;
    rc.measureInsts = 20000;
    auto tiny = mem::MemConfig::mem400();
    tiny.numMshrs = 4;
    tiny.mshrStall = true;
    auto res = Simulator::run(MachineConfig::dkip2048(), "swim",
                              tiny, rc);
    EXPECT_EQ(res.stats.committed, rc.measureInsts);
    EXPECT_GT(res.snapshot.value("mshr_stalls"), 0.0);
    EXPECT_EQ(res.snapshot.value("mshr_displacements"), 0.0);
    // Back-pressure costs cycles: IPC may only drop versus the
    // displacement model at the same capacity.
    auto displacing = tiny;
    displacing.mshrStall = false;
    auto disp = Simulator::run(MachineConfig::dkip2048(), "swim",
                               displacing, rc);
    EXPECT_LE(res.ipc, disp.ipc * 1.0001);
}
