/**
 * @file
 * White-box tests of the front end: prediction wiring, fetch-group
 * breaks, redirect stalls and squash-replay history restoration.
 */

#include <gtest/gtest.h>

#include "src/core/fetch_engine.hh"
#include "src/pred/table_predictors.hh"
#include "test_helpers.hh"

using namespace kilo;
using namespace kilo::core;

namespace
{

struct FetchFixture
{
    FetchFixture(std::vector<isa::MicroOp> ops,
                 bool stop_on_taken = true)
        : wl(std::move(ops)), tw(wl)
    {
        params.fetchStopOnTaken = stop_on_taken;
        engine =
            std::make_unique<FetchEngine>(tw, bp, params, arena);
    }

    /** Fetch into a fresh handle vector (test convenience). */
    std::vector<InstRef>
    fetch(uint64_t now, int max_count)
    {
        std::vector<InstRef> out;
        engine->fetch(now, max_count, out);
        return out;
    }

    DynInst &operator[](InstRef ref) { return arena.get(ref); }

    test::VectorWorkload wl;
    wload::TraceWindow tw;
    pred::AlwaysTakenPredictor bp;
    CoreParams params;
    InstArena arena;
    std::unique_ptr<FetchEngine> engine;
};

} // anonymous namespace

TEST(FetchEngine, FetchesUpToWidth)
{
    FetchFixture f(test::independentOps(8));
    auto got = f.fetch(0, 4);
    ASSERT_EQ(got.size(), 4u);
    EXPECT_EQ(f[got[0]].seq, 0u);
    EXPECT_EQ(f[got[3]].seq, 3u);
    EXPECT_EQ(f.engine->nextSeq(), 4u);
}

TEST(FetchEngine, SequenceNumbersMonotone)
{
    FetchFixture f(test::independentOps(4));
    auto a = f.fetch(0, 4);
    auto b = f.fetch(1, 4);
    EXPECT_EQ(f[b[0]].seq, f[a.back()].seq + 1);
}

TEST(FetchEngine, TakenBranchEndsGroup)
{
    std::vector<isa::MicroOp> ops = test::independentOps(2);
    ops.push_back(isa::makeBranch(1, true, 0x1000));
    ops.push_back(isa::makeAlu(5, isa::NoReg, isa::NoReg));
    FetchFixture f(ops);
    auto got = f.fetch(0, 4);
    ASSERT_EQ(got.size(), 3u); // stops after the taken branch
    EXPECT_TRUE(f[got.back()].op.isBranch());
}

TEST(FetchEngine, NotTakenBranchDoesNotBreak)
{
    std::vector<isa::MicroOp> ops = test::independentOps(2);
    ops.push_back(isa::makeBranch(1, false, 0x1000));
    ops.push_back(isa::makeAlu(5, isa::NoReg, isa::NoReg));
    FetchFixture f(ops);
    auto got = f.fetch(0, 4);
    EXPECT_EQ(got.size(), 4u);
}

TEST(FetchEngine, StopOnTakenCanBeDisabled)
{
    std::vector<isa::MicroOp> ops = test::independentOps(2);
    ops.push_back(isa::makeBranch(1, true, 0x1000));
    ops.push_back(isa::makeAlu(5, isa::NoReg, isa::NoReg));
    FetchFixture f(ops, /*stop_on_taken=*/false);
    auto got = f.fetch(0, 4);
    EXPECT_EQ(got.size(), 4u);
}

TEST(FetchEngine, MispredictFlagAgainstAlwaysTaken)
{
    std::vector<isa::MicroOp> ops;
    ops.push_back(isa::makeBranch(1, false, 0x1000)); // actual NT
    ops.push_back(isa::makeBranch(1, true, 0x1000));  // actual T
    FetchFixture f(ops, false);
    auto got = f.fetch(0, 2);
    EXPECT_TRUE(f[got[0]].mispredicted); // predicted taken, was not
    EXPECT_FALSE(f[got[1]].mispredicted);
}

TEST(FetchEngine, HistoryTracksActualOutcomes)
{
    std::vector<isa::MicroOp> ops;
    ops.push_back(isa::makeBranch(1, true, 0x1000));
    ops.push_back(isa::makeBranch(1, false, 0x1000));
    ops.push_back(isa::makeBranch(1, true, 0x1000));
    FetchFixture f(ops, false);
    f.fetch(0, 3);
    EXPECT_EQ(f.engine->history() & 0x7u, 0b101u);
}

TEST(FetchEngine, RedirectStallsUntilReady)
{
    FetchFixture f(test::independentOps(4));
    f.fetch(0, 4);
    f.engine->redirect(2, 10, 0);
    EXPECT_TRUE(f.engine->blocked(9));
    EXPECT_TRUE(f.fetch(9, 4).empty());
    EXPECT_FALSE(f.engine->blocked(10));
    auto got = f.fetch(10, 4);
    ASSERT_FALSE(got.empty());
    EXPECT_EQ(f[got[0]].seq, 2u); // replays from the squash point
}

TEST(FetchEngine, ReplayProducesIdenticalOps)
{
    FetchFixture f(test::independentOps(6));
    auto first = f.fetch(0, 4);
    f.engine->redirect(1, 5, 0);
    auto replay = f.fetch(5, 4);
    EXPECT_EQ(f[replay[0]].op.dst, f[first[1]].op.dst);
    EXPECT_EQ(f.arena.cold(replay[0]).pc, f.arena.cold(first[1]).pc);
}

TEST(FetchEngine, RedirectRestoresHistory)
{
    std::vector<isa::MicroOp> ops;
    ops.push_back(isa::makeBranch(1, true, 0x1000));
    ops.push_back(isa::makeBranch(1, true, 0x1000));
    FetchFixture f(ops, false);
    f.fetch(0, 2);
    uint64_t full = f.engine->history();
    // Recover at branch 0: history must roll back to just its
    // outcome.
    f.engine->redirect(1, 3, 0b1);
    EXPECT_EQ(f.engine->history(), 0b1u);
    f.fetch(3, 1);
    EXPECT_EQ(f.engine->history(), full);
}

TEST(FetchEngine, PerfectPredictorNeverMispredicts)
{
    std::vector<isa::MicroOp> ops;
    ops.push_back(isa::makeBranch(1, false, 0x1000));
    test::VectorWorkload wl(ops);
    wload::TraceWindow tw(wl);
    pred::PerfectPredictor bp;
    CoreParams params;
    InstArena arena;
    FetchEngine engine(tw, bp, params, arena);
    for (int i = 0; i < 16; ++i) {
        std::vector<InstRef> got;
        engine.fetch(uint64_t(i), 4, got);
        for (InstRef ref : got)
            EXPECT_FALSE(arena.get(ref).mispredicted);
    }
}

TEST(FetchEngine, AllocatesFromArena)
{
    FetchFixture f(test::independentOps(8));
    uint64_t before = f.arena.totalAllocs();
    auto got = f.fetch(0, 4);
    EXPECT_EQ(f.arena.totalAllocs(), before + got.size());
    for (InstRef ref : got)
        EXPECT_TRUE(f.arena.isLive(ref));
}
