/**
 * @file
 * Mutation fuzzing of the KILOTRC decoder (the robustness guarantee
 * src/trace/trace_reader.hh documents): every single-bit flip and
 * every truncation of a valid trace file must either raise
 * trace::TraceError or decode to exactly the original op stream —
 * never crash, never silently decode wrong ops. Both block-serving
 * backends (Streaming and Mmap) are driven over the same mutation
 * corpus; the CI sanitizer job runs this suite under ASan/UBSan,
 * which turns any out-of-bounds decode the validation misses into a
 * hard failure.
 *
 * Mutations are generated with a fixed LCG, so a failure reproduces
 * from the test name and iteration number alone.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/trace/capture.hh"
#include "src/trace/trace_reader.hh"
#include "src/trace/trace_writer.hh"
#include "src/wload/synthetic.hh"
#include "test_helpers.hh"

using namespace kilo;
using namespace kilo::trace;

namespace
{

/** Deterministic 64-bit LCG (MMIX constants). */
class Lcg
{
  public:
    explicit Lcg(uint64_t seed) : state(seed) {}

    uint64_t
    next()
    {
        state = state * 6364136223846793005ull +
                1442695040888963407ull;
        return state >> 16;
    }

  private:
    uint64_t state;
};

std::vector<char>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
spit(const std::string &path, const std::vector<char> &bytes,
     size_t n)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), long(std::min(n, bytes.size())));
}

/** What one mutated file did under one backend. */
enum class Outcome
{
    Rejected,   ///< TraceError raised (construction or decode)
    Identical,  ///< decoded op-for-op equal to the pristine trace
    Wrong,      ///< decoded without error but not the original ops
};

/**
 * Replay @p path as a TraceWorkload and compare one full pass against
 * @p original, then force one op past the end so the wrap-time
 * truncation check runs (a file cut at an exact block boundary
 * decodes cleanly but must be caught there). Only TraceError counts
 * as rejection; any other exception propagates and fails the test.
 */
Outcome
checkMutant(const std::string &path, ReadMode mode,
            const std::vector<isa::MicroOp> &original)
{
    try {
        TraceWorkload wl(path, mode);
        std::vector<isa::MicroOp> got(original.size());
        size_t n = 0;
        while (n < got.size()) {
            size_t want = std::min<size_t>(256, got.size() - n);
            size_t step = wl.nextBlock(got.data() + n, want);
            if (step == 0)
                return Outcome::Wrong;  // stream ended early
        // (contract: endless)
            n += step;
        }
        wl.next();  // crosses EOF -> wrap, validating the op count
        return got == original ? Outcome::Identical : Outcome::Wrong;
    } catch (const TraceError &) {
        return Outcome::Rejected;
    }
}

/** Fuzz corpus entry: a sealed trace plus its decoded ground truth. */
struct Corpus
{
    std::string path;
    std::vector<char> bytes;
    std::vector<isa::MicroOp> ops;
};

class TraceFuzzTest : public ::testing::Test
{
  protected:
    std::string
    fuzzPath(const std::string &tag)
    {
        std::string p = ::testing::TempDir() + "kilo_fuzz_" + tag +
            "_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()->name() + ".ktrc";
        files.push_back(p);
        return p;
    }

    /** Record @p n_ops of workload @p name into a fresh trace. */
    Corpus
    record(const std::string &name, uint64_t n_ops)
    {
        Corpus c;
        c.path = fuzzPath(name);
        auto inner = wload::makeWorkload(name);
        {
            CapturingWorkload capture(*inner, c.path, 42);
            isa::MicroOp buf[256];
            uint64_t left = n_ops;
            while (left) {
                size_t got = capture.nextBlock(
                    buf, size_t(std::min<uint64_t>(left, 256)));
                left -= got;
            }
            capture.finish();
        }
        c.bytes = slurp(c.path);
        Reader r(c.path);
        std::vector<isa::MicroOp> block;
        while (r.readBlock(block))
            c.ops.insert(c.ops.end(), block.begin(), block.end());
        EXPECT_EQ(c.ops.size(), n_ops);
        return c;
    }

    void
    TearDown() override
    {
        for (const auto &f : files)
            std::remove(f.c_str());
    }

    std::vector<std::string> files;
};

const ReadMode kModes[] = {ReadMode::Streaming, ReadMode::Mmap};

const char *
modeName(ReadMode m)
{
    return m == ReadMode::Streaming ? "streaming" : "mmap";
}

} // anonymous namespace

// ---------------------------------------------------------- sanity

TEST_F(TraceFuzzTest, PristineCorpusDecodesIdentically)
{
    Corpus c = record("mcf", 20000);
    for (ReadMode mode : kModes) {
        SCOPED_TRACE(modeName(mode));
        EXPECT_EQ(checkMutant(c.path, mode, c.ops),
                  Outcome::Identical);
    }
}

// --------------------------------------------------------- bit flips

TEST_F(TraceFuzzTest, SingleBitFlipsNeverDecodeWrong)
{
    Corpus c = record("mcf", 20000);
    Lcg lcg(0x5eedull);
    int rejected = 0, identical = 0;
    const int kFlips = 256;
    for (int i = 0; i < kFlips; ++i) {
        size_t pos = size_t(lcg.next() % c.bytes.size());
        int bit = int(lcg.next() % 8);
        std::vector<char> mutated = c.bytes;
        mutated[pos] = char(mutated[pos] ^ (1 << bit));
        spit(c.path, mutated, mutated.size());
        for (ReadMode mode : kModes) {
            SCOPED_TRACE(std::string(modeName(mode)) + " flip " +
                         std::to_string(i) + " byte " +
                         std::to_string(pos) + " bit " +
                         std::to_string(bit));
            Outcome out = checkMutant(c.path, mode, c.ops);
            EXPECT_NE(out, Outcome::Wrong);
            (out == Outcome::Rejected ? rejected : identical)++;
        }
    }
    // The corpus is mostly checksummed payload, so the vast majority
    // of flips must be *detected* — a fuzzer whose mutants all pass
    // is not exercising the validators.
    EXPECT_GT(rejected, identical);
    spit(c.path, c.bytes, c.bytes.size());  // restore
}

TEST_F(TraceFuzzTest, HeaderBitFlipsAreRejectedOrHarmless)
{
    // Dense coverage of every bit of the first 64 bytes: magic,
    // version, op count and metadata framing live here.
    Corpus c = record("swim", 4096);
    size_t span = std::min<size_t>(64, c.bytes.size());
    for (size_t pos = 0; pos < span; ++pos) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<char> mutated = c.bytes;
            mutated[pos] = char(mutated[pos] ^ (1 << bit));
            spit(c.path, mutated, mutated.size());
            for (ReadMode mode : kModes) {
                SCOPED_TRACE(std::string(modeName(mode)) + " byte " +
                             std::to_string(pos) + " bit " +
                             std::to_string(bit));
                EXPECT_NE(checkMutant(c.path, mode, c.ops),
                          Outcome::Wrong);
            }
        }
    }
    spit(c.path, c.bytes, c.bytes.size());
}

// ------------------------------------------------------- truncations

TEST_F(TraceFuzzTest, TruncationsNeverDecodeWrong)
{
    Corpus c = record("mcf", 20000);
    Lcg lcg(0xc0ffeeull);

    std::vector<size_t> cuts;
    for (size_t n = 0; n <= 32 && n < c.bytes.size(); ++n)
        cuts.push_back(n);             // empty + partial header
    for (int i = 0; i < 48; ++i)       // random interior cuts
        cuts.push_back(size_t(lcg.next() % c.bytes.size()));
    cuts.push_back(c.bytes.size() - 1);
    cuts.push_back(c.bytes.size() - 7);

    for (size_t cut : cuts) {
        spit(c.path, c.bytes, cut);
        for (ReadMode mode : kModes) {
            SCOPED_TRACE(std::string(modeName(mode)) + " cut at " +
                         std::to_string(cut));
            // A shortened file can never serve the full op stream:
            // anything but TraceError is a silent wrong decode.
            EXPECT_EQ(checkMutant(c.path, mode, c.ops),
                      Outcome::Rejected);
        }
    }
    spit(c.path, c.bytes, c.bytes.size());
}

// -------------------------------------------------- appended garbage

TEST_F(TraceFuzzTest, TrailingGarbageIsRejectedOrIgnoredSafely)
{
    Corpus c = record("swim", 4096);
    Lcg lcg(0xbadc0deull);
    for (size_t extra : {size_t(1), size_t(7), size_t(64)}) {
        std::vector<char> mutated = c.bytes;
        for (size_t i = 0; i < extra; ++i)
            mutated.push_back(char(lcg.next() & 0xff));
        spit(c.path, mutated, mutated.size());
        for (ReadMode mode : kModes) {
            SCOPED_TRACE(std::string(modeName(mode)) + " extra " +
                         std::to_string(extra));
            EXPECT_NE(checkMutant(c.path, mode, c.ops),
                      Outcome::Wrong);
        }
    }
    spit(c.path, c.bytes, c.bytes.size());
}
