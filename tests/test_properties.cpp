/**
 * @file
 * Property-based tests: invariants that must hold across machines,
 * benchmarks and memory configurations (parameterised sweeps).
 */

#include <gtest/gtest.h>

#include "src/sim/sweep.hh"

using namespace kilo;
using namespace kilo::sim;

namespace
{

RunConfig
tiny()
{
    RunConfig rc;
    rc.warmupInsts = 4000;
    rc.measureInsts = 20000;
    return rc;
}

} // anonymous namespace

// ------------------------------------------ per-benchmark properties

class BenchProperty : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BenchProperty, FasterMemoryNeverHurts)
{
    auto fast = Simulator::run(MachineConfig::r10_64(), GetParam(),
                               mem::MemConfig::l1Only(), tiny());
    auto slow = Simulator::run(MachineConfig::r10_64(), GetParam(),
                               mem::MemConfig::mem400(), tiny());
    EXPECT_GE(fast.ipc, slow.ipc * 0.98) << GetParam();
}

TEST_P(BenchProperty, Mem1000SlowerThanMem100)
{
    auto m100 = Simulator::run(MachineConfig::r10_64(), GetParam(),
                               mem::MemConfig::mem100(), tiny());
    auto m1000 = Simulator::run(MachineConfig::r10_64(), GetParam(),
                                mem::MemConfig::mem1000(), tiny());
    EXPECT_GE(m100.ipc, m1000.ipc * 0.98) << GetParam();
}

TEST_P(BenchProperty, IpcNeverExceedsFetchWidth)
{
    for (auto cfg : {MachineConfig::r10_64(), MachineConfig::kilo1024(),
                     MachineConfig::dkip2048()}) {
        auto res = Simulator::run(cfg, GetParam(),
                                  mem::MemConfig::mem400(), tiny());
        EXPECT_LE(res.ipc, 4.0) << GetParam() << " on " << cfg.name;
    }
}

TEST_P(BenchProperty, CommitsExactlyRequested)
{
    auto res = Simulator::run(MachineConfig::dkip2048(), GetParam(),
                              mem::MemConfig::mem400(), tiny());
    EXPECT_GE(res.stats.committed, 20000u) << GetParam();
    EXPECT_LE(res.stats.committed, 20010u) << GetParam();
}

TEST_P(BenchProperty, LocalityPartitionsCommits)
{
    auto res = Simulator::run(MachineConfig::dkip2048(), GetParam(),
                              mem::MemConfig::mem400(), tiny());
    EXPECT_EQ(res.stats.cpExecuted + res.stats.mpExecuted,
              res.stats.committed)
        << GetParam();
}

TEST_P(BenchProperty, MispredictsNeverExceedBranches)
{
    auto res = Simulator::run(MachineConfig::kilo1024(), GetParam(),
                              mem::MemConfig::mem400(), tiny());
    EXPECT_LE(res.stats.mispredicts, res.stats.branches) << GetParam();
}

TEST_P(BenchProperty, DeterministicAcrossMachineKinds)
{
    // The committed instruction mix is machine independent: loads and
    // branches per committed instruction agree across cores.
    auto a = Simulator::run(MachineConfig::r10_64(), GetParam(),
                            mem::MemConfig::mem400(), tiny());
    auto b = Simulator::run(MachineConfig::dkip2048(), GetParam(),
                            mem::MemConfig::mem400(), tiny());
    double loads_a = double(a.stats.loads) / double(a.stats.committed);
    double loads_b = double(b.stats.loads) / double(b.stats.committed);
    EXPECT_NEAR(loads_a, loads_b, 0.02) << GetParam();
}

namespace
{

std::vector<std::string>
sampleNames()
{
    // A representative cross-section (keeps the sweep quick): two
    // resident, two streaming, one chasing, one branchy per suite.
    return {"eon", "crafty", "gzip", "mcf",     "vpr",  "gcc",
            "mesa", "galgel", "swim", "equake", "ammp", "mgrid"};
}

} // anonymous namespace

INSTANTIATE_TEST_SUITE_P(Representative, BenchProperty,
                         ::testing::ValuesIn(sampleNames()),
                         [](const auto &name_info) { return name_info.param; });

// ------------------------------------------- window-size properties

class WindowProperty : public ::testing::TestWithParam<size_t>
{
};

TEST_P(WindowProperty, LargerWindowNeverMuchWorse)
{
    size_t window = GetParam();
    auto small = Simulator::run(MachineConfig::windowLimit(window),
                                "swim", mem::MemConfig::mem400(),
                                tiny());
    auto bigger =
        Simulator::run(MachineConfig::windowLimit(window * 4), "swim",
                       mem::MemConfig::mem400(), tiny());
    EXPECT_GE(bigger.ipc, small.ipc * 0.95) << "window " << window;
}

TEST_P(WindowProperty, PerfectL1InsensitiveToMemoryLatency)
{
    size_t window = GetParam();
    auto cfg = MachineConfig::windowLimit(window);
    auto a = Simulator::run(cfg, "gzip", mem::MemConfig::l1Only(),
                            tiny());
    // L1-2 has no off-chip component at all; IPC must be solid.
    EXPECT_GT(a.ipc, 1.0) << "window " << window;
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowProperty,
                         ::testing::Values(32, 64, 128, 256));

// --------------------------------------------- cache-sweep property

class CacheSweepProperty
    : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CacheSweepProperty, BiggerL2NeverMuchWorse)
{
    uint64_t kb = GetParam();
    auto small = Simulator::run(
        MachineConfig::r10_256(), "twolf",
        mem::MemConfig::withL2Size(kb * 1024), tiny());
    auto big = Simulator::run(
        MachineConfig::r10_256(), "twolf",
        mem::MemConfig::withL2Size(kb * 4 * 1024), tiny());
    EXPECT_GE(big.ipc, small.ipc * 0.95) << kb << "KB";
}

INSTANTIATE_TEST_SUITE_P(L2Sizes, CacheSweepProperty,
                         ::testing::Values(64, 256, 1024));

// ------------------------------------------------ headline property

TEST(PaperHeadline, DecoupledMachinesDominateOnFp)
{
    // Figure 9's core claim, as a regression gate: on the FP suite
    // the KILO-class machines clearly beat both R10000 baselines.
    RunConfig rc = RunConfig::sweep();
    auto mem = mem::MemConfig::mem400();
    double r64 = meanIpc(runSuite(MachineConfig::r10_64(),
                                  fpSuite(), mem, rc));
    double r256 = meanIpc(runSuite(MachineConfig::r10_256(),
                                   fpSuite(), mem, rc));
    double kilo = meanIpc(runSuite(MachineConfig::kilo1024(),
                                   fpSuite(), mem, rc));
    double dkip = meanIpc(runSuite(MachineConfig::dkip2048(),
                                   fpSuite(), mem, rc));

    EXPECT_GT(r256, r64);
    EXPECT_GT(kilo, 1.3 * r256);
    EXPECT_GT(dkip, 1.3 * r256);
    EXPECT_NEAR(dkip, kilo, 0.25 * kilo);
}

TEST(PaperHeadline, IntGainsSmallerThanFp)
{
    RunConfig rc = RunConfig::sweep();
    auto mem = mem::MemConfig::mem400();
    double int_r64 = meanIpc(runSuite(MachineConfig::r10_64(),
                                      intSuite(), mem, rc));
    double int_dkip = meanIpc(runSuite(MachineConfig::dkip2048(),
                                       intSuite(), mem, rc));
    double fp_r64 = meanIpc(runSuite(MachineConfig::r10_64(),
                                     fpSuite(), mem, rc));
    double fp_dkip = meanIpc(runSuite(MachineConfig::dkip2048(),
                                      fpSuite(), mem, rc));
    EXPECT_GT(fp_dkip / fp_r64, int_dkip / int_r64);
}
