/**
 * @file
 * Unit tests for the micro-op ISA definition.
 */

#include <gtest/gtest.h>

#include "src/isa/micro_op.hh"

using namespace kilo;
using namespace kilo::isa;

TEST(Isa, RegisterNamespace)
{
    EXPECT_EQ(NumRegs, NumIntRegs + NumFpRegs);
    EXPECT_FALSE(isFpReg(0));
    EXPECT_FALSE(isFpReg(31));
    EXPECT_TRUE(isFpReg(FirstFpReg));
    EXPECT_TRUE(isFpReg(63));
}

TEST(Isa, OpLatenciesPositiveExceptLoad)
{
    EXPECT_EQ(opLatency(OpClass::Load), 0); // hierarchy decides
    EXPECT_GE(opLatency(OpClass::IntAlu), 1);
    EXPECT_GT(opLatency(OpClass::IntMul), opLatency(OpClass::IntAlu));
    EXPECT_GT(opLatency(OpClass::FpDiv), opLatency(OpClass::FpMul));
}

TEST(Isa, ClassNames)
{
    EXPECT_STREQ(opClassName(OpClass::Load), "load");
    EXPECT_STREQ(opClassName(OpClass::Branch), "br");
    EXPECT_STREQ(opClassName(OpClass::FpDiv), "fdiv");
}

TEST(Isa, FpClassPredicate)
{
    EXPECT_TRUE(isFpClass(OpClass::FpAdd));
    EXPECT_TRUE(isFpClass(OpClass::FpMul));
    EXPECT_TRUE(isFpClass(OpClass::FpDiv));
    EXPECT_FALSE(isFpClass(OpClass::IntAlu));
    EXPECT_FALSE(isFpClass(OpClass::Load));
}

TEST(Isa, MakeAluShape)
{
    MicroOp op = makeAlu(3, 1, 2, 0x100);
    EXPECT_EQ(op.cls, OpClass::IntAlu);
    EXPECT_EQ(op.dst, 3);
    EXPECT_EQ(op.src1, 1);
    EXPECT_EQ(op.src2, 2);
    EXPECT_EQ(op.pc, 0x100u);
    EXPECT_EQ(op.numSrcs(), 2);
    EXPECT_FALSE(op.isMem());
    EXPECT_FALSE(op.isBranch());
}

TEST(Isa, MakeLoadShape)
{
    MicroOp op = makeLoad(5, 2, 0xdeadbeef);
    EXPECT_TRUE(op.isLoad());
    EXPECT_TRUE(op.isMem());
    EXPECT_EQ(op.dst, 5);
    EXPECT_EQ(op.src1, 2);
    EXPECT_EQ(op.effAddr, 0xdeadbeefu);
    EXPECT_EQ(op.numSrcs(), 1);
}

TEST(Isa, MakeStoreShape)
{
    MicroOp op = makeStore(2, 7, 0x40);
    EXPECT_TRUE(op.isStore());
    EXPECT_TRUE(op.isMem());
    EXPECT_EQ(op.dst, NoReg);
    EXPECT_EQ(op.src1, 2);
    EXPECT_EQ(op.src2, 7);
}

TEST(Isa, MakeBranchShape)
{
    MicroOp op = makeBranch(4, true, 0x2000, 0x1000);
    EXPECT_TRUE(op.isBranch());
    EXPECT_TRUE(op.taken);
    EXPECT_EQ(op.target, 0x2000u);
    EXPECT_EQ(op.dst, NoReg);
}

TEST(Isa, FpRoutingOfLoads)
{
    MicroOp int_load = makeLoad(5, 2, 0x100);
    EXPECT_FALSE(int_load.isFp());
    MicroOp fp_load = makeLoad(FirstFpReg + 5, 2, 0x100);
    EXPECT_TRUE(fp_load.isFp());
}

TEST(Isa, FpRoutingOfStores)
{
    MicroOp int_store = makeStore(2, 7, 0x40);
    EXPECT_FALSE(int_store.isFp());
    MicroOp fp_store = makeStore(2, int16_t(FirstFpReg + 1), 0x40);
    EXPECT_TRUE(fp_store.isFp());
}

TEST(Isa, FpRoutingOfCompute)
{
    EXPECT_TRUE(makeFpAdd(40, 41, 42).isFp());
    EXPECT_TRUE(makeFpDiv(40, 41, 42).isFp());
    EXPECT_FALSE(makeAlu(1, 2, 3).isFp());
}

TEST(Isa, NopHasNoEffects)
{
    MicroOp op = makeNop();
    EXPECT_EQ(op.dst, NoReg);
    EXPECT_EQ(op.numSrcs(), 0);
    EXPECT_FALSE(op.isMem());
}

TEST(Isa, ToStringMentionsClass)
{
    EXPECT_NE(makeLoad(1, 2, 0x8).toString().find("load"),
              std::string::npos);
    EXPECT_NE(makeBranch(1, true, 8).toString().find("br"),
              std::string::npos);
}
