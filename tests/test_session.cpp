/**
 * @file
 * Tests of the stepwise run API: a Session advanced via any sequence
 * of step()/runFor() calls must be bit-identical — cycles, committed,
 * the entire JSONL row — to one-shot Simulator::run, across all three
 * machine models; deadline aborts must truncate cleanly; interval
 * sampling must record the IPC-over-time series without perturbing
 * timing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/sim/session.hh"
#include "src/sim/sweep_engine.hh"
#include "src/wload/synthetic.hh"

using namespace kilo;
using namespace kilo::sim;

namespace
{

RunConfig
shortRun()
{
    RunConfig rc;
    rc.warmupInsts = 5000;
    rc.measureInsts = 15000;
    return rc;
}

std::vector<MachineConfig>
allMachines()
{
    return {MachineConfig::r10_64(), MachineConfig::kilo1024(),
            MachineConfig::dkip2048()};
}

} // anonymous namespace

/** The acceptance property: stepping is exact, for every machine. */
TEST(Session, StepBitIdenticalToOneShotAllMachines)
{
    for (const auto &machine : allMachines()) {
        auto one_shot = Simulator::run(machine, "mcf",
                                       mem::MemConfig::mem400(),
                                       shortRun());

        Session session(machine, "mcf", mem::MemConfig::mem400(),
                        shortRun());
        session.warmup();
        size_t steps = 0;
        while (!session.finished()) {
            // Odd quantum on purpose: boundaries must not matter.
            session.step(777);
            ++steps;
        }
        auto stepped = session.finish();

        EXPECT_GT(steps, 1u) << machine.name;
        EXPECT_EQ(stepped.stats.cycles, one_shot.stats.cycles)
            << machine.name;
        EXPECT_EQ(stepped.stats.committed, one_shot.stats.committed)
            << machine.name;
        EXPECT_EQ(stepped.stats.mispredicts,
                  one_shot.stats.mispredicts) << machine.name;
        EXPECT_EQ(stepped.memAccesses, one_shot.memAccesses)
            << machine.name;
        // Byte-identical, the strongest form: the whole JSONL row.
        EXPECT_EQ(runResultJson(stepped), runResultJson(one_shot))
            << machine.name;
    }
}

TEST(Session, RunForBitIdenticalToOneShot)
{
    auto machine = MachineConfig::dkip2048();
    auto one_shot = Simulator::run(machine, "swim",
                                   mem::MemConfig::mem400(),
                                   shortRun());

    Session session(machine, "swim", mem::MemConfig::mem400(),
                    shortRun());
    uint64_t total = 0;
    // warmup() is implied by the first advance; chunks are uneven.
    total += session.runFor(1234);
    total += session.runFor(6789);
    while (!session.finished())
        total += session.runFor(3000);
    auto stepped = session.finish();

    EXPECT_EQ(total, stepped.stats.committed);
    EXPECT_EQ(runResultJson(stepped), runResultJson(one_shot));
}

TEST(Session, FinishedSemantics)
{
    Session session(MachineConfig::r10_64(), "gzip",
                    mem::MemConfig::mem400(), shortRun());
    EXPECT_FALSE(session.finished());
    session.warmup();
    EXPECT_FALSE(session.finished());
    session.run();
    EXPECT_TRUE(session.finished());
    EXPECT_FALSE(session.aborted());
    auto res = session.finish();
    EXPECT_FALSE(res.aborted);
    EXPECT_GE(res.stats.committed, shortRun().measureInsts);
    // A finished session steps no further.
    EXPECT_EQ(session.step(1000), 0u);
}

TEST(Session, DeadlineAbortTruncatesRun)
{
    RunConfig rc = shortRun();
    rc.maxCycles = 2000; // mcf on R10-64 needs ~300k cycles
    Session session(MachineConfig::r10_64(), "mcf",
                    mem::MemConfig::mem400(), rc);
    session.warmup();
    session.run();

    EXPECT_TRUE(session.finished());
    EXPECT_TRUE(session.aborted());
    auto res = session.finish();
    EXPECT_TRUE(res.aborted);
    EXPECT_LT(res.stats.committed, rc.measureInsts);
    EXPECT_GE(res.stats.cycles, rc.maxCycles);
    // The truncated region still reports coherent stats.
    EXPECT_GT(res.stats.committed, 0u);
    EXPECT_NEAR(res.ipc,
                double(res.stats.committed) / double(res.stats.cycles),
                1e-9);
}

TEST(Session, DeadlineAbortThroughSimulatorAndSweepEngine)
{
    RunConfig rc = shortRun();
    // mcf on R10-64 needs ~290k cycles for the 15k-inst region; gzip
    // needs ~45k. A 100k deadline kills one and spares the other.
    rc.maxCycles = 100000;
    // The per-job deadline flows through the one-shot wrapper ...
    auto res = Simulator::run(MachineConfig::r10_64(), "mcf",
                              mem::MemConfig::mem400(), rc);
    EXPECT_TRUE(res.aborted);

    // ... and through sweep matrices: the hung-job guard for
    // cluster-scale sweeps. Unaffordable jobs finish early, cheap
    // jobs complete normally, ordering is preserved.
    auto jobs = SweepEngine::matrix({MachineConfig::r10_64()},
                                    {"mcf", "gzip"},
                                    {mem::MemConfig::mem400()}, rc);
    SweepEngine engine(1);
    auto results = engine.run(jobs);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].aborted);
    EXPECT_LT(results[0].stats.committed, rc.measureInsts);
    EXPECT_FALSE(results[1].aborted);
    EXPECT_GE(results[1].stats.committed, rc.measureInsts);
}

TEST(Session, IntervalSamplingRecordsIpcOverTime)
{
    RunConfig rc = shortRun();
    rc.intervalInsts = 5000;
    Session session(MachineConfig::dkip2048(), "swim",
                    mem::MemConfig::mem400(), rc);
    session.warmup();
    session.run();
    auto res = session.finish();

    ASSERT_EQ(res.intervals.size(), 3u); // 15000 / 5000
    uint64_t prev_committed = 0, prev_cycles = 0;
    uint64_t delta_sum = 0;
    for (size_t i = 0; i < res.intervals.size(); ++i) {
        const auto &iv = res.intervals[i];
        EXPECT_EQ(iv.index, i);
        EXPECT_GE(iv.committed, (i + 1) * rc.intervalInsts);
        EXPECT_GT(iv.cycles, prev_cycles);
        EXPECT_EQ(iv.deltaCommitted, iv.committed - prev_committed);
        EXPECT_EQ(iv.deltaCycles, iv.cycles - prev_cycles);
        EXPECT_GT(iv.intervalIpc(), 0.0);
        // The cumulative snapshot matches the boundary position.
        EXPECT_EQ(uint64_t(iv.snapshot.value("committed")),
                  iv.committed);
        EXPECT_EQ(uint64_t(iv.snapshot.value("cycles")), iv.cycles);
        prev_committed = iv.committed;
        prev_cycles = iv.cycles;
        delta_sum += iv.deltaCommitted;
    }
    EXPECT_EQ(delta_sum, res.intervals.back().committed);

    // The final sample sits at the end of the measured region.
    EXPECT_EQ(res.intervals.back().committed, res.stats.committed);
    EXPECT_EQ(res.intervals.back().cycles, res.stats.cycles);
}

TEST(Session, IntervalSamplingDoesNotPerturbTiming)
{
    RunConfig plain = shortRun();
    RunConfig sampled = shortRun();
    sampled.intervalInsts = 1000;

    auto a = Simulator::run(MachineConfig::kilo1024(), "equake",
                            mem::MemConfig::mem400(), plain);
    auto b = Simulator::run(MachineConfig::kilo1024(), "equake",
                            mem::MemConfig::mem400(), sampled);
    EXPECT_EQ(b.intervals.size(), 15u);
    EXPECT_EQ(runResultJson(a), runResultJson(b));
}

TEST(Session, WriteIntervalRowsEmitsOneRowPerSample)
{
    RunConfig rc = shortRun();
    rc.intervalInsts = 5000;
    auto res = Simulator::run(MachineConfig::dkip2048(), "swim",
                              mem::MemConfig::mem400(), rc);
    std::ostringstream os;
    writeIntervalRows(os, res);
    std::string text = os.str();

    size_t lines = 0, pos = 0;
    while ((pos = text.find('\n', pos)) != std::string::npos) {
        ++lines;
        ++pos;
    }
    EXPECT_EQ(lines, res.intervals.size());
    EXPECT_NE(text.find("\"interval\":0"), std::string::npos);
    EXPECT_NE(text.find("\"interval_ipc\":"), std::string::npos);
    EXPECT_NE(text.find("\"interval_cycles\":"), std::string::npos);
    // Row stats ride along for each sample.
    EXPECT_NE(text.find("\"mshr_set_max\":"), std::string::npos);
}

TEST(Session, SnapshotSamplesMidFlight)
{
    Session session(MachineConfig::dkip2048(), "swim",
                    mem::MemConfig::mem400(), shortRun());
    session.warmup();
    session.runFor(4000);
    auto early = session.snapshot();
    session.run();
    auto late = session.snapshot();

    EXPECT_GE(early.value("committed"), 4000.0);
    EXPECT_GT(late.value("committed"), early.value("committed"));
    EXPECT_GT(late.value("cycles"), early.value("cycles"));
    EXPECT_EQ(uint64_t(late.value("committed")),
              session.measuredCommitted());
}

TEST(Session, BorrowedWorkloadMatchesByName)
{
    auto by_name = Simulator::run(MachineConfig::r10_64(), "gzip",
                                  mem::MemConfig::mem400(),
                                  shortRun());
    auto wl = wload::makeWorkload("gzip");
    Session session(MachineConfig::r10_64(), *wl,
                    mem::MemConfig::mem400(), shortRun());
    session.warmup();
    while (!session.finished())
        session.step(10000);
    auto borrowed = session.finish();
    EXPECT_EQ(runResultJson(borrowed), runResultJson(by_name));
}

TEST(Session, ResultCarriesSnapshotAndLegacyFieldsAgree)
{
    auto res = Simulator::run(MachineConfig::dkip2048(), "swim",
                              mem::MemConfig::mem400(), shortRun());
    ASSERT_FALSE(res.snapshot.empty());
    // The deprecated flat fields and the snapshot describe the same
    // run (the MIGRATION contract).
    EXPECT_EQ(uint64_t(res.snapshot.value("mem_accesses")),
              res.memAccesses);
    EXPECT_EQ(uint64_t(res.snapshot.value("mshr_peak")),
              uint64_t(res.mshrPeak));
    EXPECT_DOUBLE_EQ(res.snapshot.value("ipc"), res.ipc);
    EXPECT_EQ(uint64_t(res.snapshot.value("cycles")),
              res.stats.cycles);
}

TEST(Session, WallClockDeadlineAborts)
{
    // A 100M-instruction region cannot complete inside 1 ms of host
    // time; the wall deadline must stop it and flag the abort. The
    // assertion is on the flag, not on how far the run got — wall
    // aborts are inherently host-speed dependent.
    RunConfig rc;
    rc.warmupInsts = 1000;
    rc.measureInsts = 100000000;
    rc.maxWallMs = 1;
    auto res = Simulator::run(MachineConfig::r10_64(), "swim",
                              mem::MemConfig::mem400(), rc);
    EXPECT_TRUE(res.aborted);
    EXPECT_LT(res.stats.committed, rc.measureInsts);
}

TEST(Session, WallClockDeadlineOffIsBitIdentical)
{
    // An armed-but-unreached wall deadline only chunks the engine's
    // runUntil quanta, which Session stepping guarantees is exact:
    // the result row must match the no-deadline run byte for byte.
    RunConfig plain = shortRun();
    RunConfig walled = shortRun();
    walled.maxWallMs = 600000; // ten minutes: never reached
    auto a = Simulator::run(MachineConfig::dkip2048(), "mcf",
                            mem::MemConfig::mem400(), plain);
    auto b = Simulator::run(MachineConfig::dkip2048(), "mcf",
                            mem::MemConfig::mem400(), walled);
    EXPECT_FALSE(b.aborted);
    EXPECT_EQ(runResultJson(a), runResultJson(b));
}
