/**
 * @file
 * Tests of the instruction arena: generation-checked handles, slot
 * recycling through the commit and squash paths of a real core, and
 * the headline property — a steady-state simulation performs zero
 * heap allocations (verified through a counting global operator new).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "src/core/inst_arena.hh"
#include "src/core/ooo_core.hh"
#include "src/dkip/dkip_core.hh"
#include "src/sim/simulator.hh"
#include "test_helpers.hh"

using namespace kilo;
using namespace kilo::core;

// ------------------------------------------------- allocation hook

namespace
{

std::atomic<uint64_t> g_heapAllocs{0};

} // anonymous namespace

void *
operator new(std::size_t size)
{
    ++g_heapAllocs;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    ++g_heapAllocs;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

__attribute__((noinline)) void
operator delete(void *p) noexcept
{
    std::free(p);
}

__attribute__((noinline)) void
operator delete[](void *p) noexcept
{
    std::free(p);
}

__attribute__((noinline)) void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

__attribute__((noinline)) void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

// ----------------------------------------------------- handle unit

TEST(InstRef, NullByDefault)
{
    InstRef ref;
    EXPECT_FALSE(ref);
    EXPECT_FALSE(ref.valid());
    EXPECT_EQ(ref, InstRef());
}

TEST(InstRef, PacksIndexAndGeneration)
{
    InstRef ref = InstRef::make(123, 45);
    EXPECT_TRUE(ref);
    EXPECT_EQ(ref.index(), 123u);
    EXPECT_EQ(ref.gen(), 45u);
    EXPECT_NE(ref, InstRef::make(123, 46));
    EXPECT_NE(ref, InstRef::make(124, 45));
}

TEST(InstArena, AllocResetsAndSetsSelf)
{
    InstArena arena;
    InstRef ref = arena.alloc();
    DynInst &inst = arena.get(ref);
    EXPECT_EQ(inst.self, ref);
    EXPECT_FALSE(inst.completed);
    EXPECT_EQ(inst.srcNotReady, 0);
    EXPECT_EQ(inst.depHead, DynInst::NoDep);
    EXPECT_EQ(arena.live(), 1u);
}

TEST(InstArena, FreeRecyclesSlotWithBumpedGeneration)
{
    InstArena arena;
    InstRef a = arena.alloc();
    uint32_t idx = a.index();
    arena.free(a);
    EXPECT_EQ(arena.live(), 0u);

    // FIFO recycling: the freed slot comes back only after every
    // other free slot has been handed out — one generation up.
    InstRef b;
    uint32_t cap = arena.capacity();
    for (uint32_t i = 0; i < cap; ++i) {
        b = arena.alloc();
        if (b.index() == idx)
            break;
    }
    EXPECT_EQ(b.index(), idx);
    EXPECT_NE(b.gen(), a.gen());
    EXPECT_FALSE(arena.isLive(a));
    EXPECT_TRUE(arena.isLive(b));
}

TEST(InstArena, TryGetFiltersStaleHandles)
{
    InstArena arena;
    InstRef a = arena.alloc();
    EXPECT_NE(arena.tryGet(a), nullptr);
    arena.free(a);
    EXPECT_EQ(arena.tryGet(a), nullptr);
    // The slot's new tenant is invisible through the old handle
    // (FIFO: drain the pool until the slot is re-issued).
    InstRef b;
    do {
        b = arena.alloc();
    } while (b.index() != a.index());
    EXPECT_TRUE(arena.isLive(b));
    EXPECT_EQ(arena.tryGet(a), nullptr);
    EXPECT_EQ(arena.tryGet(InstRef()), nullptr);
}

TEST(InstArenaDeath, GetOnStaleHandlePanics)
{
    InstArena arena;
    InstRef a = arena.alloc();
    arena.free(a);
    EXPECT_DEATH(arena.get(a), "stale");
}

TEST(InstArena, GrowsBySlabBeyondInitialCapacity)
{
    InstArena arena(InstArena::SlabSize);
    std::vector<InstRef> refs;
    for (uint32_t i = 0; i < InstArena::SlabSize + 10; ++i)
        refs.push_back(arena.alloc());
    EXPECT_GE(arena.capacity(), InstArena::SlabSize + 10);
    EXPECT_EQ(arena.live(), InstArena::SlabSize + 10);
    // Records must not have moved: every handle still dereferences
    // to a slot carrying its own self-reference.
    for (InstRef ref : refs)
        EXPECT_EQ(arena.get(ref).self, ref);
}

// ------------------------------------------- dependent-chain pool

TEST(InstArenaDeps, ChainBuildWalkAndRelease)
{
    InstArena arena;
    InstRef prod = arena.alloc();
    InstRef a = arena.alloc();
    InstRef b = arena.alloc();
    DynInst &p = arena.get(prod);
    EXPECT_EQ(p.depHead, DynInst::NoDep);

    arena.addDependent(p, a);
    arena.addDependent(p, b);
    EXPECT_EQ(arena.depEdgesLive(), 2u);

    // LIFO chain: newest edge first.
    uint32_t n = p.depHead;
    EXPECT_EQ(arena.depNode(n).dep, b);
    n = arena.depNode(n).next;
    EXPECT_EQ(arena.depNode(n).dep, a);
    EXPECT_EQ(arena.depNode(n).next, DynInst::NoDep);

    arena.releaseDependents(p);
    EXPECT_EQ(p.depHead, DynInst::NoDep);
    EXPECT_EQ(arena.depEdgesLive(), 0u);
}

TEST(InstArenaDeps, FreeReturnsHeldChainToPool)
{
    InstArena arena;
    InstRef prod = arena.alloc();
    InstRef dep = arena.alloc();
    arena.addDependent(arena.get(prod), dep);
    EXPECT_EQ(arena.depEdgesLive(), 1u);
    // Squash path: the producer dies with its chain still recorded.
    arena.free(prod);
    EXPECT_EQ(arena.depEdgesLive(), 0u);
}

TEST(InstArenaDeps, NodesRecycleWithoutPoolGrowth)
{
    InstArena arena;
    InstRef prod = arena.alloc();
    InstRef dep = arena.alloc();
    for (int i = 0; i < 10 * int(InstArena::SlabSize); ++i) {
        arena.addDependent(arena.get(prod), dep);
        arena.releaseDependents(arena.get(prod));
    }
    EXPECT_EQ(arena.depEdgesLive(), 0u);
}

// -------------------------------------------- recycling in a core

namespace
{

/** ALU/branch/load mix that lives entirely in the L1. */
std::vector<isa::MicroOp>
cacheFriendlyLoop()
{
    std::vector<isa::MicroOp> ops;
    ops.push_back(isa::makeLoad(1, 2, 0x100));
    ops.push_back(isa::makeAlu(3, 1, isa::NoReg));
    ops.push_back(isa::makeAlu(4, 3, 1));
    ops.push_back(isa::makeStore(2, 4, 0x140));
    ops.push_back(isa::makeAlu(5, isa::NoReg, isa::NoReg));
    ops.push_back(isa::makeBranch(5, true, 0x1000));
    return ops;
}

} // anonymous namespace

TEST(InstArenaLifetime, CommitRecyclesEverySlot)
{
    test::VectorWorkload wl(cacheFriendlyLoop());
    CoreParams params;
    OooCore core(params, wl, mem::MemConfig::l1Only());
    core.run(20000);
    const InstArena &arena = core.instArena();
    // Everything fetched was either recycled or is still in flight.
    EXPECT_EQ(arena.totalAllocs() - arena.totalFrees(),
              uint64_t(arena.live()));
    // The window high-water mark, not the instruction count, bounds
    // the arena: 20k committed instructions fit in one or two slabs.
    EXPECT_LE(arena.capacity(), 2 * InstArena::SlabSize);
    EXPECT_LE(arena.live(),
              params.robSize + params.fetchBufferSize);
}

TEST(InstArenaLifetime, SquashRecyclesFullPipeline)
{
    // A mispredicting branch pattern forces regular full squashes of
    // everything younger than the branch.
    std::vector<isa::MicroOp> ops = cacheFriendlyLoop();
    ops.push_back(isa::makeBranch(4, false, 0x2000));
    test::VectorWorkload wl(ops);
    CoreParams params;
    params.predictor = pred::BpKind::AlwaysTaken; // mispredicts NT
    OooCore core(params, wl, mem::MemConfig::l1Only());
    core.run(20000);
    const InstArena &arena = core.instArena();
    EXPECT_GT(core.stats().squashed, 0u);
    EXPECT_EQ(arena.totalAllocs() - arena.totalFrees(),
              uint64_t(arena.live()));
    EXPECT_LE(arena.capacity(), 2 * InstArena::SlabSize);
}

TEST(InstArenaLifetime, DkipRecyclesThroughDecoupledPaths)
{
    // The decoupled machine exercises the LLIB/LLRF/apQ residency
    // paths and the aging-ROB deferred release.
    auto res = sim::Simulator::run(sim::MachineConfig::dkip2048(),
                                   "swim", mem::MemConfig::mem400(),
                                   sim::RunConfig::sweep());
    EXPECT_GT(res.ipc, 0.0);
}

// --------------------------------------- zero-allocation property

TEST(InstArenaLifetime, SteadyStateRunsAllocationFree)
{
    test::VectorWorkload wl(cacheFriendlyLoop());
    CoreParams params;
    OooCore core(params, wl, mem::MemConfig::l1Only());

    // Warm up: grow every pool (arena slabs, ring deques, event
    // wheel slots, ready heaps) to its high-water mark.
    core.run(30000);

    uint64_t before = g_heapAllocs.load();
    core.run(30000);
    uint64_t delta = g_heapAllocs.load() - before;
    EXPECT_EQ(delta, 0u)
        << "steady-state simulation touched the heap " << delta
        << " times";
}

TEST(InstArenaLifetime, SteadyStateSquashReplayAllocationFree)
{
    std::vector<isa::MicroOp> ops = cacheFriendlyLoop();
    ops.push_back(isa::makeBranch(4, false, 0x2000));
    test::VectorWorkload wl(ops);
    CoreParams params;
    params.predictor = pred::BpKind::AlwaysTaken;
    OooCore core(params, wl, mem::MemConfig::l1Only());

    core.run(30000);

    uint64_t before = g_heapAllocs.load();
    core.run(30000);
    EXPECT_EQ(g_heapAllocs.load() - before, 0u);
}

namespace
{

/** Loads marching through memory: every load is a fresh off-chip
 *  miss, the pattern that made the old in-flight-fill map grow (and
 *  allocate) forever. */
class StreamingMissWorkload : public wload::Workload
{
  public:
    isa::MicroOp
    next() override
    {
        ++cnt;
        isa::MicroOp op;
        if (cnt % 4 == 0) {
            op = isa::makeLoad(int16_t(1 + cnt % 3), 4, addr);
            addr += 64;
        } else {
            op = isa::makeAlu(int16_t(5 + cnt % 3), 4, isa::NoReg);
        }
        op.pc = 0x1000 + (cnt % 16) * 4;
        return op;
    }

    const std::string &name() const override { return label; }
    bool isFp() const override { return false; }

    void
    reset() override
    {
        cnt = 0;
        addr = 0x10000000;
    }

  private:
    std::string label = "stream-miss";
    uint64_t cnt = 0;
    uint64_t addr = 0x10000000;
};

} // anonymous namespace

/** The full-system property the MSHR file buys: a simulation whose
 *  memory traffic is a pure miss stream — the case where the old
 *  unordered_map tracker allocated on every miss, forever — runs its
 *  steady state without a single heap allocation, memory hierarchy
 *  included. */
TEST(InstArenaLifetime, SteadyStateMissStreamAllocationFree)
{
    StreamingMissWorkload wl;
    CoreParams params;
    OooCore core(params, wl, mem::MemConfig::mem400());

    // Warm-up past every pool's high-water mark (arena slabs, dep
    // pool, queues, wheel) — and past the MSHR file's first sweep.
    core.run(30000);

    uint64_t before = g_heapAllocs.load();
    core.run(30000);
    uint64_t delta = g_heapAllocs.load() - before;
    EXPECT_EQ(delta, 0u)
        << "steady-state miss-stream simulation touched the heap "
        << delta << " times";
    EXPECT_GT(core.memory().memFills(), 0u);
    EXPECT_LE(core.memory().mshrOccupancy(),
              core.memory().mshrCapacity());
}
