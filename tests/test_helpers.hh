/**
 * @file
 * Shared test fixtures: a programmable workload that loops over a
 * fixed micro-op vector, plus tiny builders for common scenarios.
 */

#ifndef KILO_TESTS_TEST_HELPERS_HH
#define KILO_TESTS_TEST_HELPERS_HH

#include <string>
#include <vector>

#include "src/isa/micro_op.hh"
#include "src/wload/workload.hh"

namespace kilo::test
{

/** Endless loop over a fixed op sequence (PCs patched per element). */
class VectorWorkload : public wload::Workload
{
  public:
    explicit VectorWorkload(std::vector<isa::MicroOp> op_seq,
                            std::string name = "vector")
        : ops(std::move(op_seq)), label(std::move(name))
    {
        for (size_t i = 0; i < ops.size(); ++i) {
            if (ops[i].pc == 0)
                ops[i].pc = 0x1000 + i * 4;
        }
    }

    isa::MicroOp
    next() override
    {
        isa::MicroOp op = ops[pos];
        pos = (pos + 1) % ops.size();
        return op;
    }

    const std::string &name() const override { return label; }
    bool isFp() const override { return false; }
    void reset() override { pos = 0; }

  private:
    std::vector<isa::MicroOp> ops;
    std::string label;
    size_t pos = 0;
};

/** A chain of dependent single-cycle ALU ops (serial, IPC -> 1). */
inline std::vector<isa::MicroOp>
serialChain()
{
    return {
        isa::makeAlu(1, 1, isa::NoReg),
    };
}

/** Independent ALU ops on distinct registers (IPC -> width). */
inline std::vector<isa::MicroOp>
independentOps(int n)
{
    std::vector<isa::MicroOp> ops;
    for (int i = 0; i < n; ++i)
        ops.push_back(isa::makeAlu(int16_t(1 + i), isa::NoReg,
                                   isa::NoReg));
    return ops;
}

} // namespace kilo::test

#endif // KILO_TESTS_TEST_HELPERS_HH
