/**
 * @file
 * Tests of the D-KIP structures (LLRF, LLIB, checkpoint stack) and
 * end-to-end behaviour of the decoupled core: execution-locality
 * classification, LLIB occupancy, recovery and the small-structures
 * property the paper leads with.
 */

#include <gtest/gtest.h>

#include "src/core/inst_arena.hh"
#include "src/dkip/checkpoint_stack.hh"
#include "src/dkip/dkip_core.hh"
#include "src/dkip/llib.hh"
#include "src/dkip/llrf.hh"
#include "src/sim/sweep.hh"
#include "test_helpers.hh"

using namespace kilo;
using namespace kilo::dkip;

namespace
{

/** Per-test instruction arena plus a builder. */
struct Arena
{
    core::InstArena arena;

    core::InstRef
    inst(uint64_t seq, isa::MicroOp op = isa::makeAlu(1, 2, 3))
    {
        core::InstRef ref = arena.alloc();
        core::DynInst &i = arena.get(ref);
        i.op = op;
        i.seq = seq;
        return ref;
    }

    core::DynInst &operator[](core::InstRef ref)
    {
        return arena.get(ref);
    }

    core::DynInstCold &cold(core::InstRef ref)
    {
        return arena.cold(ref);
    }
};

} // anonymous namespace

// ------------------------------------------------------------ Llrf

TEST(Llrf, GeometryMatchesPaper)
{
    Llrf rf; // defaults: 8 banks x 256
    EXPECT_EQ(rf.numBanks(), 8);
    EXPECT_EQ(rf.numSlots(), 2048u);
}

TEST(Llrf, AllocRoundRobinsBanks)
{
    Arena ar;
    Llrf rf(4, 2);
    auto a = ar.inst(1);
    auto b = ar.inst(2);
    EXPECT_TRUE(rf.tryAlloc(ar[a]));
    EXPECT_TRUE(rf.tryAlloc(ar[b]));
    EXPECT_NE(ar[a].llrfBank, ar[b].llrfBank);
}

TEST(Llrf, WriteMarksBankForCycle)
{
    Arena ar;
    Llrf rf(4, 2);
    auto a = ar.inst(1);
    rf.tryAlloc(ar[a]);
    EXPECT_TRUE(rf.bankWrittenThisCycle(ar[a].llrfBank));
    rf.beginCycle();
    EXPECT_FALSE(rf.bankWrittenThisCycle(ar[a].llrfBank));
}

TEST(Llrf, FillsUpAndReleases)
{
    Arena ar;
    Llrf rf(2, 1);
    auto a = ar.inst(1);
    auto b = ar.inst(2);
    auto c = ar.inst(3);
    EXPECT_TRUE(rf.tryAlloc(ar[a]));
    EXPECT_TRUE(rf.tryAlloc(ar[b]));
    EXPECT_TRUE(rf.fullyAllocated());
    EXPECT_FALSE(rf.tryAlloc(ar[c]));
    rf.release(ar[a]);
    EXPECT_EQ(rf.numAllocated(), 1u);
    EXPECT_TRUE(rf.tryAlloc(ar[c]));
}

TEST(Llrf, ReleaseWithoutAllocIsNoop)
{
    Arena ar;
    Llrf rf(2, 1);
    auto a = ar.inst(1); // llrfBank == -1
    rf.release(ar[a]);
    EXPECT_EQ(rf.numAllocated(), 0u);
}

// ------------------------------------------------------------ Llib

TEST(Llib, FifoOrderPreserved)
{
    Arena ar;
    Llib q("test", 4, ar.arena);
    auto a = ar.inst(1);
    auto b = ar.inst(2);
    q.push(a);
    q.push(b);
    EXPECT_EQ(q.front(), a);
    EXPECT_EQ(q.popFront(), a);
    EXPECT_EQ(q.popFront(), b);
}

TEST(Llib, TracksMaxOccupancy)
{
    Arena ar;
    Llib q("test", 8, ar.arena);
    q.push(ar.inst(1));
    q.push(ar.inst(2));
    q.popFront();
    q.push(ar.inst(3));
    EXPECT_EQ(q.maxOccupancy(), 2u);
}

TEST(LlibDeath, OutOfOrderPushPanics)
{
    Arena ar;
    Llib q("test", 4, ar.arena);
    q.push(ar.inst(5));
    EXPECT_DEATH(q.push(ar.inst(3)), "order");
}

TEST(Llib, HeadBlockedOnAddressProcessorLoad)
{
    Arena ar;
    Llib q("test", 4, ar.arena);
    auto ld = ar.inst(1, isa::makeLoad(5, 2, 0x100));
    ar[ld].longLatency = true; // off-chip load in the addr proc
    auto dep = ar.inst(2, isa::makeAlu(6, 5, isa::NoReg));
    ar.cold(dep).producers[0] = ld;
    q.push(dep);
    EXPECT_TRUE(q.headBlocked());
    ar[ld].completed = true;
    EXPECT_FALSE(q.headBlocked());
}

TEST(Llib, HeadNotBlockedOnNonLoadProducer)
{
    Arena ar;
    Llib q("test", 4, ar.arena);
    auto alu = ar.inst(1, isa::makeAlu(5, 2, isa::NoReg));
    ar[alu].execInMp = true; // older low-locality ALU ahead
    auto dep = ar.inst(2, isa::makeAlu(6, 5, isa::NoReg));
    ar.cold(dep).producers[0] = alu;
    q.push(dep);
    EXPECT_FALSE(q.headBlocked());
}

TEST(Llib, SquashRemovesYoungest)
{
    Arena ar;
    Llib q("test", 4, ar.arena);
    auto a = ar.inst(1);
    auto b = ar.inst(2);
    q.push(a);
    q.push(b);
    q.notifySquashed(b);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.front(), a);
}

// ------------------------------------------------ CheckpointStack

TEST(CheckpointStack, PushFindResolve)
{
    CheckpointStack cs(4);
    BitVector bv(8);
    bv.set(3);
    cs.push(10, bv);
    cs.push(20, bv);
    ASSERT_NE(cs.findFor(10), nullptr);
    EXPECT_TRUE(cs.findFor(10)->llbv.test(3));
    EXPECT_EQ(cs.findFor(15), nullptr);
    cs.resolve(10);
    EXPECT_EQ(cs.size(), 1u);
}

TEST(CheckpointStack, OutOfOrderResolveReleasesInOrder)
{
    CheckpointStack cs(4);
    BitVector bv(8);
    cs.push(10, bv);
    cs.push(20, bv);
    cs.resolve(20); // younger resolves first: stays until 10 does
    EXPECT_EQ(cs.size(), 2u);
    cs.resolve(10);
    EXPECT_EQ(cs.size(), 0u);
}

TEST(CheckpointStack, SquashDropsYoungerAndSelf)
{
    CheckpointStack cs(4);
    BitVector bv(8);
    cs.push(10, bv);
    cs.push(20, bv);
    cs.push(30, bv);
    cs.squashFrom(20);
    EXPECT_EQ(cs.size(), 1u);
    EXPECT_NE(cs.findFor(10), nullptr);
}

TEST(CheckpointStack, CapacityEnforced)
{
    CheckpointStack cs(2);
    BitVector bv(4);
    cs.push(1, bv);
    cs.push(2, bv);
    EXPECT_TRUE(cs.full());
}

// --------------------------------------------------- DkipCore e2e

namespace
{

sim::RunResult
runDkip(const std::string &bench,
        const mem::MemConfig &mcfg = mem::MemConfig::mem400())
{
    return sim::Simulator::run(sim::MachineConfig::dkip2048(), bench,
                               mcfg, sim::RunConfig::sweep());
}

} // anonymous namespace

TEST(DkipCore, ClassifiesStreamingFpAsLowLocality)
{
    auto res = runDkip("swim");
    // The paper: CP executes ~2/3-3/4 of committed instructions on
    // SpecFP; the rest flow through the LLIBs to the MPs.
    EXPECT_GT(res.stats.mpFraction(), 0.15);
    EXPECT_LT(res.stats.mpFraction(), 0.55);
    EXPECT_GT(res.stats.llibInsertedFp, 0u);
}

TEST(DkipCore, CacheResidentCodeStaysInCp)
{
    auto res = runDkip("sixtrack");
    EXPECT_LT(res.stats.mpFraction(), 0.02);
}

TEST(DkipCore, PerfectMemoryNeverUsesMp)
{
    auto res = runDkip("swim", mem::MemConfig::l1Only());
    EXPECT_EQ(res.stats.mpExecuted, 0u);
    EXPECT_EQ(res.stats.llibInsertedFp, 0u);
}

TEST(DkipCore, BeatsSmallBaselineOnStreamingFp)
{
    auto base = sim::Simulator::run(sim::MachineConfig::r10_64(),
                                    "swim", mem::MemConfig::mem400(),
                                    sim::RunConfig::sweep());
    auto dkip = runDkip("swim");
    EXPECT_GT(dkip.ipc, 2.0 * base.ipc);
}

TEST(DkipCore, LlibOccupancyWithinCapacity)
{
    auto res = runDkip("swim");
    EXPECT_LE(res.stats.maxLlibInstrsFp, 2048u);
    EXPECT_LE(res.stats.maxLlibRegsFp, 2048u);
    EXPECT_GT(res.stats.maxLlibInstrsFp, 10u);
}

TEST(DkipCore, RegistersFewerThanInstructions)
{
    // Figures 13/14: the READY-operand register high-water mark sits
    // below the instruction high-water mark.
    auto res = runDkip("swim");
    EXPECT_LE(res.stats.maxLlibRegsFp, res.stats.maxLlibInstrsFp);
}

TEST(DkipCore, IntAndFpLlibsSeparate)
{
    auto res = runDkip("swim");
    // FP benchmark: the overwhelming share of inserts are FP-side.
    EXPECT_GT(res.stats.llibInsertedFp, res.stats.llibInsertedInt);
}

TEST(DkipCore, NoStructureLargerThan40IssuesOoO)
{
    // The headline claim: default D-KIP has no out-of-order structure
    // larger than 40 entries, yet reaches multi-GHz-window IPC.
    auto cfg = sim::MachineConfig::dkip2048();
    EXPECT_LE(cfg.dkip.cp.intIqSize, 40u);
    EXPECT_LE(cfg.dkip.cp.fpIqSize, 40u);
    EXPECT_EQ(cfg.dkip.mpPolicy, core::SchedPolicy::InOrder);
    EXPECT_EQ(cfg.dkip.cp.robSize, 64u); // aging FIFO, not a CAM
}

TEST(DkipCore, AnalyzeStallsAreRare)
{
    auto res = runDkip("swim");
    // Paper reports ~0.7% IPC loss from Analyze stalls.
    EXPECT_LT(double(res.stats.analyzeStallCycles),
              0.25 * double(res.stats.cycles));
}

TEST(DkipCore, ChasePathUsesCheckpoints)
{
    auto res = runDkip("mcf");
    EXPECT_GT(res.stats.checkpointsTaken, 0u);
}

TEST(DkipCore, SurvivesEveryIntBenchmark)
{
    for (const auto &name : sim::intSuite()) {
        auto res = sim::Simulator::run(
            sim::MachineConfig::dkip2048(), name,
            mem::MemConfig::mem400(), sim::RunConfig::sweep());
        EXPECT_GT(res.ipc, 0.01) << name;
    }
}

TEST(DkipCore, Deterministic)
{
    auto a = runDkip("equake");
    auto b = runDkip("equake");
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.llibInsertedFp, b.stats.llibInsertedFp);
}

TEST(DkipCore, InOrderCpDegradesPerformance)
{
    // Figure 10: OOO vs INO Cache Processor is worth ~30%.
    auto ooo = sim::Simulator::run(
        sim::MachineConfig::dkipSched(core::SchedPolicy::OutOfOrder,
                                      40, core::SchedPolicy::InOrder,
                                      20),
        "swim", mem::MemConfig::mem400(), sim::RunConfig::sweep());
    auto ino = sim::Simulator::run(
        sim::MachineConfig::dkipSched(core::SchedPolicy::InOrder, 40,
                                      core::SchedPolicy::InOrder, 20),
        "swim", mem::MemConfig::mem400(), sim::RunConfig::sweep());
    EXPECT_GT(ooo.ipc, ino.ipc);
}

TEST(DkipCore, CacheSizeInsensitivityOnFp)
{
    // Figure 12: the D-KIP's FP IPC moves little across a 64x L2
    // sweep compared with a conventional core.
    auto small_l2 = sim::Simulator::run(
        sim::MachineConfig::dkip2048(), "swim",
        mem::MemConfig::withL2Size(64 * 1024),
        sim::RunConfig::sweep());
    auto big_l2 = sim::Simulator::run(
        sim::MachineConfig::dkip2048(), "swim",
        mem::MemConfig::withL2Size(4 * 1024 * 1024),
        sim::RunConfig::sweep());
    EXPECT_LT(big_l2.ipc / small_l2.ipc, 1.5);
}
