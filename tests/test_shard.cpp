/**
 * @file
 * Tests of the sweep-sharding subsystem: manifest round-trip and
 * malformed-input rejection, deterministic job→shard partitioning,
 * and the end-to-end orchestrator properties — a 4-worker sharded
 * sweep whose merged JSONL stream is byte-identical to the
 * single-process run on a mixed synthetic/trace matrix, and the
 * crash-retry path.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "src/shard/orchestrator.hh"
#include "src/sim/sweep_engine.hh"
#include "src/trace/capture.hh"
#include "src/wload/profile.hh"
#include "src/wload/synthetic.hh"
#include "test_helpers.hh"

using namespace kilo;
using namespace kilo::shard;

namespace
{

/** ctest runs in the build directory, next to the worker binary. */
const char *kWorkerPath = "./kilosim_worker";

/** Fresh temp path, removed at fixture teardown. */
class ShardTest : public ::testing::Test
{
  protected:
    std::string
    tempPath(const std::string &tag)
    {
        std::string p = ::testing::TempDir() + "kilo_shard_" + tag +
            "_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()->name();
        files.push_back(p);
        return p;
    }

    void
    TearDown() override
    {
        for (const auto &f : files)
            std::remove(f.c_str());
    }

    std::vector<std::string> files;
};

/** A small mixed matrix: three machines, synthetic + trace-backed
 *  workloads. Records the trace on first use. */
Manifest
miniManifest(const std::string &trace_path)
{
    {
        wload::SyntheticWorkload inner(wload::profileByName("mcf"));
        trace::CapturingWorkload capture(inner, trace_path,
                                         inner.profile().seed);
        isa::MicroOp buf[256];
        for (int i = 0; i < 256; ++i)
            capture.nextBlock(buf, 256);
        capture.finish();
    }
    Manifest m;
    m.machines = {"r10-64", "kilo", "dkip"};
    m.workloads = {"swim", "trace:" + trace_path};
    m.mems = {"mem-400"};
    m.run.warmupInsts = 2000;
    m.run.measureInsts = 6000;
    return m;
}

std::string
singleProcessJsonl(const Manifest &m)
{
    sim::SweepEngine engine(1);
    auto results = engine.run(m.jobs());
    std::ostringstream os;
    sim::writeJsonRows(os, results);
    return os.str();
}

bool
workerAvailable()
{
    std::ifstream f(kWorkerPath);
    return f.good();
}

} // anonymous namespace

// ------------------------------------------------------- manifest

TEST(ShardManifest, RoundTripsThroughSerialize)
{
    Manifest m;
    m.machines = {"r10-64", "dkip"};
    m.workloads = {"swim", "mcf", "trace:/data/a.ktrc"};
    m.mems = {"mem-400", "l2-11"};
    m.run.warmupInsts = 123;
    m.run.measureInsts = 4567;
    m.run.maxCycles = 1000000;
    m.run.maxWallMs = 2500;
    m.shardIndex = 2;
    m.shardCount = 5;

    Manifest back = Manifest::parse(m.serialize());
    EXPECT_TRUE(back == m);
    // And the canonical text form is a fixed point.
    EXPECT_EQ(back.serialize(), m.serialize());
}

TEST(ShardManifest, ParsesCommentsBlanksAndDefaults)
{
    Manifest m = Manifest::parse("# a sweep\n"
                                 "\n"
                                 "KILOSHARD 1\n"
                                 "machine dkip\n"
                                 "  workload swim  \n"
                                 "mem mem-400\n");
    EXPECT_EQ(m.machines, std::vector<std::string>{"dkip"});
    EXPECT_EQ(m.workloads, std::vector<std::string>{"swim"});
    // Unspecified scalars keep RunConfig defaults; shard defaults to
    // the whole matrix.
    EXPECT_EQ(m.run.warmupInsts, sim::RunConfig().warmupInsts);
    EXPECT_EQ(m.run.measureInsts, sim::RunConfig().measureInsts);
    EXPECT_EQ(m.shardIndex, 0u);
    EXPECT_EQ(m.shardCount, 1u);
}

TEST(ShardManifest, RejectsMalformedInput)
{
    // No header.
    EXPECT_THROW(Manifest::parse("machine dkip\n"), ShardError);
    // Future version.
    EXPECT_THROW(Manifest::parse("KILOSHARD 99\nmachine dkip\n"),
                 ShardError);
    // Unknown directive.
    EXPECT_THROW(Manifest::parse("KILOSHARD 1\nflavour vanilla\n"),
                 ShardError);
    // Directive without value.
    EXPECT_THROW(Manifest::parse("KILOSHARD 1\nmachine\n"),
                 ShardError);
    // Non-numeric scalar.
    EXPECT_THROW(Manifest::parse("KILOSHARD 1\nmachine dkip\n"
                                 "workload swim\nmem mem-400\n"
                                 "warmup soon\n"),
                 ShardError);
    // Duplicate scalar.
    EXPECT_THROW(Manifest::parse("KILOSHARD 1\nmachine dkip\n"
                                 "workload swim\nmem mem-400\n"
                                 "measure 1\nmeasure 2\n"),
                 ShardError);
    // Shard index out of range.
    EXPECT_THROW(Manifest::parse("KILOSHARD 1\nmachine dkip\n"
                                 "workload swim\nmem mem-400\n"
                                 "shard 4/4\n"),
                 ShardError);
    // Bad shard spec syntax.
    EXPECT_THROW(Manifest::parse("KILOSHARD 1\nmachine dkip\n"
                                 "workload swim\nmem mem-400\n"
                                 "shard one/two\n"),
                 ShardError);
    // Empty axes.
    EXPECT_THROW(Manifest::parse("KILOSHARD 1\nworkload swim\n"
                                 "mem mem-400\n"),
                 ShardError);
    EXPECT_THROW(Manifest::parse("KILOSHARD 1\nmachine dkip\n"
                                 "mem mem-400\n"),
                 ShardError);
    EXPECT_THROW(Manifest::parse("KILOSHARD 1\nmachine dkip\n"
                                 "workload swim\n"),
                 ShardError);
    // Error messages carry the source location.
    try {
        Manifest::parse("KILOSHARD 1\nnope x\n");
        FAIL() << "unknown directive accepted";
    } catch (const ShardError &e) {
        EXPECT_NE(std::string(e.what()).find("<string>:2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ShardManifest, LoadReportsMissingFile)
{
    EXPECT_THROW(Manifest::load("/nonexistent/sweep.manifest"),
                 ShardError);
}

// --------------------------------------------------- partitioning

TEST(ShardPartition, ShardsAreDisjointAndCovering)
{
    const size_t jobs = 23;
    const uint32_t shards = 4;
    std::set<size_t> all;
    for (uint32_t s = 0; s < shards; ++s) {
        auto idx = sim::SweepEngine::shardIndices(jobs, s, shards);
        for (size_t i : idx) {
            EXPECT_LT(i, jobs);
            EXPECT_EQ(i % shards, s); // round-robin ownership
            EXPECT_TRUE(all.insert(i).second)
                << "job " << i << " in two shards";
        }
    }
    EXPECT_EQ(all.size(), jobs);
    // Balanced to within one job.
    for (uint32_t s = 0; s < shards; ++s) {
        auto idx = sim::SweepEngine::shardIndices(jobs, s, shards);
        EXPECT_GE(idx.size(), jobs / shards);
        EXPECT_LE(idx.size(), jobs / shards + 1);
    }
}

TEST(ShardPartition, SubsetRunMatchesFullRunSlice)
{
    sim::RunConfig rc;
    rc.warmupInsts = 2000;
    rc.measureInsts = 5000;
    auto jobs = sim::SweepEngine::matrix(
        {sim::MachineConfig::r10_64()}, {"mcf", "gzip", "swim"},
        {mem::MemConfig::mem400()}, rc);
    sim::SweepEngine engine(1);
    auto full = engine.run(jobs);
    auto idx = sim::SweepEngine::shardIndices(jobs.size(), 1, 2);
    auto part = engine.runSubset(jobs, idx);
    ASSERT_EQ(part.size(), idx.size());
    for (size_t i = 0; i < idx.size(); ++i) {
        EXPECT_EQ(sim::runResultJson(part[i]),
                  sim::runResultJson(full[idx[i]]));
    }
}

// --------------------------------------------------- orchestration

TEST_F(ShardTest, OrchestratorMatchesSingleProcessByteForByte)
{
    if (!workerAvailable())
        GTEST_SKIP() << "kilosim_worker not in CWD";
    Manifest m = miniManifest(tempPath("golden") + ".ktrc");

    OrchestratorConfig cfg;
    cfg.workerPath = kWorkerPath;
    cfg.shards = 4;
    Orchestrator orch(m, cfg);
    std::string merged = orch.run();

    EXPECT_EQ(merged, singleProcessJsonl(m));
    EXPECT_EQ(orch.retries(), 0u);
    EXPECT_EQ(orch.deadlineKills(), 0u);
}

TEST_F(ShardTest, OrchestratorRetriesCrashedShardOnce)
{
    if (!workerAvailable())
        GTEST_SKIP() << "kilosim_worker not in CWD";
    Manifest m = miniManifest(tempPath("retry") + ".ktrc");

    // Crash token: the first worker to claim it aborts; every retry
    // (and every other shard) finds it gone and succeeds.
    std::string token = tempPath("token");
    { std::ofstream(token) << "boom\n"; }

    OrchestratorConfig cfg;
    cfg.workerPath = kWorkerPath;
    cfg.workerArgs = {"--crash-token", token};
    cfg.shards = 2;
    cfg.maxAttempts = 3;
    Orchestrator orch(m, cfg);
    std::string merged = orch.run();

    EXPECT_EQ(merged, singleProcessJsonl(m));
    EXPECT_EQ(orch.retries(), 1u);
}

TEST_F(ShardTest, OrchestratorFailsAfterExhaustedAttempts)
{
    if (!workerAvailable())
        GTEST_SKIP() << "kilosim_worker not in CWD";
    Manifest m = miniManifest(tempPath("fail") + ".ktrc");

    OrchestratorConfig cfg;
    // exec of a nonexistent binary fails every attempt (exit 127).
    cfg.workerPath = "./kilosim_worker_does_not_exist";
    cfg.shards = 2;
    cfg.maxAttempts = 2;
    Orchestrator orch(m, cfg);
    try {
        orch.run();
        FAIL() << "sweep with unrunnable workers succeeded";
    } catch (const ShardError &e) {
        EXPECT_NE(std::string(e.what()).find("failed after 2"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(ShardTest, SingleShardOrchestrationAlsoMatches)
{
    if (!workerAvailable())
        GTEST_SKIP() << "kilosim_worker not in CWD";
    Manifest m = miniManifest(tempPath("one") + ".ktrc");
    OrchestratorConfig cfg;
    cfg.workerPath = kWorkerPath;
    cfg.shards = 1;
    Orchestrator orch(m, cfg);
    EXPECT_EQ(orch.run(), singleProcessJsonl(m));
}

TEST_F(ShardTest, MoreShardsThanJobsClampAndStillMatch)
{
    if (!workerAvailable())
        GTEST_SKIP() << "kilosim_worker not in CWD";
    Manifest m = miniManifest(tempPath("clamp") + ".ktrc");
    // 3 machines x 2 workloads x 1 mem = 6 jobs; ask for 16 shards.
    OrchestratorConfig cfg;
    cfg.workerPath = kWorkerPath;
    cfg.shards = 16;
    Orchestrator orch(m, cfg);
    EXPECT_EQ(orch.run(), singleProcessJsonl(m));
}

// --------------------------------------------- audited orchestration

namespace
{

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)v);
    return buf;
}

/** The stream an audited run must produce: the plain JSONL rows
 *  followed by one KILOAUD digest line per job, in job order. */
std::string
auditedSingleProcessJsonl(const Manifest &m)
{
    sim::SweepEngine engine(1);
    auto results = engine.run(m.jobs());
    std::ostringstream os;
    sim::writeJsonRows(os, results);
    for (size_t i = 0; i < results.size(); ++i) {
        os << "KILOAUD " << i << " "
           << hex16(results[i].auditRolling) << "\n";
    }
    return os.str();
}

} // anonymous namespace

TEST(ShardManifest, AuditDirectiveRoundTrips)
{
    Manifest m;
    m.machines = {"r10-64"};
    m.workloads = {"swim"};
    m.mems = {"mem-400"};
    m.run.auditIntervalInsts = 2500;
    std::string text = m.serialize();
    EXPECT_NE(text.find("audit 2500\n"), std::string::npos) << text;
    EXPECT_EQ(Manifest::parse(text), m);

    // Off by default: no directive emitted, so pre-audit manifests
    // round-trip byte-identically through a reader that knows it.
    m.run.auditIntervalInsts = 0;
    EXPECT_EQ(m.serialize().find("audit"), std::string::npos);
    EXPECT_EQ(Manifest::parse(m.serialize()), m);
}

TEST_F(ShardTest, AuditedOrchestrationMatchesAuditedSingle)
{
    if (!workerAvailable())
        GTEST_SKIP() << "kilosim_worker not in CWD";
    Manifest m = miniManifest(tempPath("aud") + ".ktrc");
    m.run.auditIntervalInsts = 1500;

    OrchestratorConfig cfg;
    cfg.workerPath = kWorkerPath;
    cfg.shards = 3;
    cfg.audit = true;
    Orchestrator orch(m, cfg);
    std::string merged = orch.run();

    EXPECT_EQ(merged, auditedSingleProcessJsonl(m));
    ASSERT_EQ(orch.telemetry().auditDigests.size(), m.jobCount());
    // No retries happened, so nothing was double-computed.
    EXPECT_EQ(orch.telemetry().auditCrossChecked, 0u);
}

TEST_F(ShardTest, RetriedShardDigestsAreCrossChecked)
{
    if (!workerAvailable())
        GTEST_SKIP() << "kilosim_worker not in CWD";
    Manifest m = miniManifest(tempPath("audretry") + ".ktrc");
    m.run.auditIntervalInsts = 1500;

    // The claiming attempt emits one job (row + digest), then dies;
    // the retry recomputes that job. Both processes were healthy
    // simulations of the same work, so the digests must agree and
    // the sweep must succeed.
    std::string token = tempPath("audtoken");
    { std::ofstream(token) << "boom\n"; }

    OrchestratorConfig cfg;
    cfg.workerPath = kWorkerPath;
    cfg.workerArgs = {"--crash-token", token, "--crash-after", "1"};
    cfg.shards = 1;
    cfg.maxAttempts = 3;
    cfg.audit = true;
    Orchestrator orch(m, cfg);
    std::string merged = orch.run();

    EXPECT_EQ(merged, auditedSingleProcessJsonl(m));
    EXPECT_EQ(orch.retries(), 1u);
    EXPECT_GE(orch.telemetry().auditCrossChecked, 1u);
}

TEST_F(ShardTest, RetriedShardDigestMismatchIsHardError)
{
    if (!workerAvailable())
        GTEST_SKIP() << "kilosim_worker not in CWD";
    Manifest m = miniManifest(tempPath("audbad") + ".ktrc");
    m.run.auditIntervalInsts = 1500;

    // The first attempt claims BOTH tokens: it simulates under the
    // audit plane's divergence seed (different architectural state,
    // different digests) and dies after reporting one job. The retry
    // runs clean — and the orchestrator must refuse to paper over
    // the disagreement between the two attempts.
    std::string crash = tempPath("crashtok");
    std::string flip = tempPath("fliptok");
    { std::ofstream(crash) << "x\n"; }
    { std::ofstream(flip) << "x\n"; }

    OrchestratorConfig cfg;
    cfg.workerPath = kWorkerPath;
    cfg.workerArgs = {"--crash-token", crash, "--crash-after", "1",
                      "--flip-token", flip, "--flip-cycle", "50"};
    cfg.shards = 1;
    cfg.maxAttempts = 3;
    cfg.audit = true;
    Orchestrator orch(m, cfg);
    try {
        orch.run();
        FAIL() << "digest mismatch between attempts went undetected";
    } catch (const ShardError &e) {
        EXPECT_NE(std::string(e.what()).find("audit digest mismatch"),
                  std::string::npos)
            << e.what();
    }
}
