/**
 * @file
 * kilolint's semantic tier: rules over the cross-TU ProjectModel
 * (layering, include cycles, stats liveness/schema sync) and
 * function-scope flow (switch exhaustiveness over project enums,
 * Session phase order).
 *
 * Same philosophy as the token rules in rules.cc: heuristic, zero
 * false positives on this tree, degrade by dropping the check — an
 * enum name defined twice with different enumerator lists is simply
 * not checked, a switch whose labels the matcher cannot resolve is
 * skipped. The dynamic tests stay the authority; these rules exist
 * so a violation on a path no test drives still fails CI with a
 * file:line instead of a golden diff three PRs later.
 */

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/lint/linter.hh"

namespace kilo::lint
{

namespace
{

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

/** tokens[i], or a harmless sentinel when out of range. */
const Token &
at(const std::vector<Token> &t, size_t i)
{
    static const Token sentinel{TokKind::Punct, "", 0, 0, 0};
    return i < t.size() ? t[i] : sentinel;
}

/** normalized path -> lexed file, for reporting against the path
 *  the user passed in (suppressions key on it). */
std::map<std::string, const SourceFile *>
fileIndex(const ProjectModel &m)
{
    std::map<std::string, const SourceFile *> out;
    for (const SourceFile *f : m.files())
        out.emplace(normalizePath(f->path), f);
    return out;
}

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.compare(0, std::string(prefix).size(), prefix) == 0;
}

// ------------------------------------------------------- layering

class LayeringRule : public Rule
{
  public:
    LayeringRule()
        : Rule("layering",
               "src/ modules include only the layers below them per "
               "the declared DAG in src/lint/layers; an upward "
               "#include couples a foundation layer to its clients",
               Severity::Error)
    {}

    void
    check(const SourceFile &, std::vector<Finding> &) const override
    {}

    void
    checkModel(const ProjectModel &m,
               std::vector<Finding> &out) const override
    {
        const LayerSpec &spec = m.layers();
        for (const LayerSpec::Error &e : spec.errors)
            reportAt(out, spec.path, e.line, e.message);
        if (!spec.loaded)
            return;

        auto files = fileIndex(m);
        std::set<std::string> unknownReported;

        for (const auto &[norm, includes] : m.includes()) {
            if (!startsWith(norm, "src/"))
                continue;  // tools/bench/tests are top-of-stack
            std::string fromMod = moduleOf(norm);
            if (fromMod.empty())
                continue;
            auto fit = files.find(norm);
            const SourceFile *file =
                fit == files.end() ? nullptr : fit->second;
            if (!file)
                continue;

            auto allowedIt = spec.allowed.find(fromMod);
            if (allowedIt == spec.allowed.end()) {
                if (unknownReported.insert(fromMod).second &&
                    !includes.empty()) {
                    report(out, *file, includes.front().line,
                           "module 'src/" + fromMod +
                               "' is not declared in " + spec.path);
                }
                continue;
            }

            for (const IncludeRef &inc : includes) {
                if (!startsWith(inc.target, "src/"))
                    continue;  // system/third-party includes
                std::string toMod = moduleOf(inc.target);
                if (toMod.empty() || toMod == fromMod)
                    continue;
                if (allowedIt->second.count(toMod))
                    continue;
                bool declared = spec.allowed.count(toMod) != 0;
                report(out, *file, inc.line,
                       "src/" + fromMod + " may not include \"" +
                           inc.target + "\": src/" + toMod +
                           (declared
                                ? " is not in its allowed layers ("
                                : " is not declared in (") +
                           spec.path + ")");
            }
        }
    }
};

// -------------------------------------------------- include-cycle

class IncludeCycleRule : public Rule
{
  public:
    IncludeCycleRule()
        : Rule("include-cycle",
               "the project include graph is acyclic at file "
               "granularity; a cycle means neither header can be "
               "understood (or compiled) without the other",
               Severity::Error)
    {}

    void
    check(const SourceFile &, std::vector<Finding> &) const override
    {}

    void
    checkModel(const ProjectModel &m,
               std::vector<Finding> &out) const override
    {
        // Edges only between scanned files, so a dangling include
        // (not lint's business) never manufactures a node.
        const auto &scanned = m.scannedPaths();
        auto files = fileIndex(m);

        // 0 unvisited / 1 on stack / 2 done.
        std::map<std::string, int> state;
        std::vector<std::string> stack;
        std::set<std::string> reportedCycles;

        std::function<void(const std::string &)> dfs =
            [&](const std::string &node) {
                state[node] = 1;
                stack.push_back(node);
                auto it = m.includes().find(node);
                if (it != m.includes().end()) {
                    for (const IncludeRef &inc : it->second) {
                        const std::string &to = inc.target;
                        if (!scanned.count(to))
                            continue;
                        if (state[to] == 2)
                            continue;
                        if (state[to] == 1) {
                            reportCycle(files, node, inc, to, stack,
                                        reportedCycles, out);
                            continue;
                        }
                        dfs(to);
                    }
                }
                stack.pop_back();
                state[node] = 2;
            };

        for (const std::string &node : scanned)
            if (state[node] == 0)
                dfs(node);
    }

  private:
    void
    reportCycle(const std::map<std::string, const SourceFile *> &files,
                const std::string &from, const IncludeRef &inc,
                const std::string &to,
                const std::vector<std::string> &stack,
                std::set<std::string> &reported,
                std::vector<Finding> &out) const
    {
        // The cycle is the stack suffix from `to` plus the back
        // edge. Canonicalize (rotate to the smallest member) so the
        // same cycle found from two entry points reports once.
        auto start = std::find(stack.begin(), stack.end(), to);
        std::vector<std::string> cycle(start, stack.end());
        size_t smallest = 0;
        for (size_t i = 1; i < cycle.size(); ++i)
            if (cycle[i] < cycle[smallest])
                smallest = i;
        std::string key;
        for (size_t i = 0; i < cycle.size(); ++i)
            key += cycle[(smallest + i) % cycle.size()] + ";";
        if (!reported.insert(key).second)
            return;

        std::string msg = "include cycle: ";
        for (const std::string &n : cycle)
            msg += n + " -> ";
        msg += to;
        auto fit = files.find(from);
        if (fit != files.end())
            report(out, *fit->second, inc.line, msg);
        else
            reportAt(out, from, inc.line, msg);
    }
};

// ------------------------------------------------------ dead-stat

class DeadStatRule : public Rule
{
  public:
    DeadStatRule()
        : Rule("dead-stat",
               "a counter/histogram registration binds a field that "
               "is never incremented, assigned or sampled anywhere "
               "in src/ — the stat would report 0 forever (gauges "
               "are derived lambdas and exempt)",
               Severity::Error)
    {}

    void
    check(const SourceFile &, std::vector<Finding> &) const override
    {}

    void
    checkModel(const ProjectModel &m,
               std::vector<Finding> &out) const override
    {
        auto files = fileIndex(m);
        for (const StatReg &reg : m.statRegs()) {
            if (reg.method != "counter" && reg.method != "histogram")
                continue;
            if (reg.field.empty())
                continue;  // unresolvable binding: drop the check
            if (m.fieldUpdated(reg.field))
                continue;
            std::string msg =
                "stat \"" + reg.name + "\" binds field '" +
                reg.field +
                "', which is never updated in src/ — dead stat "
                "(remove the registration or wire the field)";
            auto fit = files.find(reg.file);
            if (fit != files.end())
                report(out, *fit->second, reg.line, msg);
            else
                reportAt(out, reg.file, reg.line, msg);
        }
    }
};

// ---------------------------------------------------- schema-sync

class SchemaSyncRule : public Rule
{
  public:
    SchemaSyncRule()
        : Rule("schema-sync",
               "every stat key in tools/stats_schema.golden has a "
               "live Registry registration in src/; a key with none "
               "is documentation for a stat that no longer exists",
               Severity::Error)
    {}

    void
    check(const SourceFile &, std::vector<Finding> &) const override
    {}

    void
    checkModel(const ProjectModel &m,
               std::vector<Finding> &out) const override
    {
        const SchemaGolden &schema = m.schema();
        if (!schema.loaded)
            return;
        std::set<std::string> registered;
        for (const StatReg &reg : m.statRegs())
            registered.insert(reg.name);
        for (const auto &[key, line] : schema.keys) {
            if (registered.count(key))
                continue;
            reportAt(out, schema.path, line,
                     "schema key \"" + key +
                         "\" has no live registration in src/ — "
                         "stale schema entry");
        }
    }
};

// --------------------------------------- enum-switch-exhaustive

/** NumReasons / NumKinds / ... — count sentinels, never real
 *  enumerators a switch should name. */
bool
isSentinel(const std::string &name)
{
    return name.size() > 3 && name.compare(0, 3, "Num") == 0 &&
           std::isupper(static_cast<unsigned char>(name[3]));
}

class EnumSwitchRule : public Rule
{
  public:
    EnumSwitchRule()
        : Rule("enum-switch-exhaustive",
               "a switch over a project enum class with no default: "
               "names every enumerator — otherwise adding one "
               "compiles clean and silently falls through",
               Severity::Error)
    {}

    void
    check(const SourceFile &, std::vector<Finding> &) const override
    {}

    void
    checkModel(const ProjectModel &m,
               std::vector<Finding> &out) const override
    {
        // Enum registry; a name defined with two different
        // enumerator lists (stats::Kind vs Lsq::Kind) is ambiguous
        // at token level and dropped.
        std::map<std::string, const EnumDef *> defs;
        std::set<std::string> ambiguous;
        for (const EnumDef &d : m.enums()) {
            auto [it, fresh] = defs.emplace(d.name, &d);
            if (!fresh && it->second->enumerators != d.enumerators)
                ambiguous.insert(d.name);
        }
        for (const std::string &name : ambiguous)
            defs.erase(name);

        for (const SourceFile *f : m.files())
            checkFile(*f, defs, out);
    }

  private:
    void
    checkFile(const SourceFile &f,
              const std::map<std::string, const EnumDef *> &defs,
              std::vector<Finding> &out) const
    {
        const auto &t = f.tokens;
        for (size_t i = 0; i + 1 < t.size(); ++i) {
            if (t[i].kind != TokKind::Identifier ||
                t[i].text != "switch" || !isPunct(t[i + 1], "("))
                continue;

            // Skip the condition, expect the body brace.
            size_t j = i + 1;
            int paren = 0;
            for (; j < t.size(); ++j) {
                if (isPunct(t[j], "("))
                    ++paren;
                else if (isPunct(t[j], ")") && --paren == 0)
                    break;
            }
            if (j >= t.size() || !isPunct(at(t, j + 1), "{"))
                continue;

            // Walk the body; labels live at relative depth 1 (a
            // nested switch's labels sit deeper and stay out).
            size_t k = j + 1;
            int depth = 0;
            bool hasDefault = false;
            std::set<std::string> covered;
            std::string enumName;
            bool resolvable = true;
            for (; k < t.size(); ++k) {
                const Token &u = t[k];
                if (isPunct(u, "{")) {
                    ++depth;
                    continue;
                }
                if (isPunct(u, "}")) {
                    if (--depth == 0)
                        break;
                    continue;
                }
                if (depth != 1 || u.kind != TokKind::Identifier)
                    continue;
                if (u.text == "default" &&
                    isPunct(at(t, k + 1), ":")) {
                    hasDefault = true;
                    continue;
                }
                if (u.text != "case")
                    continue;
                // Label tokens up to ':' (the '::' pair is one
                // token, so a lone ':' really ends the label).
                std::string lastScope, lastName;
                size_t e = k + 1;
                for (; e < t.size() && !isPunct(t[e], ":"); ++e) {
                    if (t[e].kind == TokKind::Identifier &&
                        isPunct(at(t, e + 1), "::") &&
                        at(t, e + 2).kind == TokKind::Identifier) {
                        lastScope = t[e].text;
                        lastName = t[e + 2].text;
                    }
                }
                k = e;
                if (lastScope.empty()) {
                    resolvable = false;  // unqualified label
                    continue;
                }
                if (enumName.empty())
                    enumName = lastScope;
                else if (enumName != lastScope)
                    resolvable = false;  // mixed scopes
                covered.insert(lastName);
            }

            if (hasDefault || !resolvable || enumName.empty())
                continue;
            auto dit = defs.find(enumName);
            if (dit == defs.end())
                continue;
            const EnumDef &def = *dit->second;
            // Every label must be a real enumerator; otherwise the
            // scope was a namespace or a different type.
            bool known = true;
            for (const std::string &c : covered) {
                if (std::find(def.enumerators.begin(),
                              def.enumerators.end(),
                              c) == def.enumerators.end())
                    known = false;
            }
            if (!known)
                continue;

            std::string missing;
            int nMissing = 0;
            for (const std::string &e : def.enumerators) {
                if (isSentinel(e) || covered.count(e))
                    continue;
                if (!missing.empty())
                    missing += ", ";
                missing += e;
                ++nMissing;
            }
            if (nMissing == 0)
                continue;
            report(out, f, t[i].line,
                   "switch over " + enumName + " without default: "
                   "does not name " + missing +
                   " — name every enumerator or add a default");
        }
    }
};

// ---------------------------------------------------- phase-order

/**
 * Function-scope flow over sim::Session: after `x.finish()` the run
 * is over and its RunResult harvested — a later `x.step(...)` or
 * `x.runFor(...)` on the same object in the same function body is
 * always a bug (the session asserts at run time; this catches it on
 * paths no test drives). Pure per-file rule: runs in both tiers.
 */
class PhaseOrderRule : public Rule
{
  public:
    PhaseOrderRule()
        : Rule("phase-order",
               "no step()/runFor() on a session object after its "
               "finish() in the same function body — the run is "
               "over and the result already harvested",
               Severity::Error)
    {}

    void
    check(const SourceFile &f, std::vector<Finding> &out) const override
    {
        const auto &t = f.tokens;
        FunctionMap fm = functionMap(f);

        // (body id, receiver) -> line of the finish() call.
        std::map<std::pair<int, std::string>, int> finished;
        for (size_t i = 0; i + 3 < t.size(); ++i) {
            if (t[i].kind != TokKind::Identifier)
                continue;
            const Token &dot = at(t, i + 1);
            if (!isPunct(dot, ".") && !isPunct(dot, "->"))
                continue;
            const Token &method = at(t, i + 2);
            if (method.kind != TokKind::Identifier ||
                !isPunct(at(t, i + 3), "("))
                continue;
            int body = fm.bodyAt[i];
            if (body < 0)
                continue;
            std::pair<int, std::string> key{body, t[i].text};
            if (method.text == "finish") {
                finished.emplace(key, method.line);
                continue;
            }
            if (method.text != "step" && method.text != "runFor")
                continue;
            auto it = finished.find(key);
            if (it == finished.end())
                continue;
            report(out, f, method.line,
                   "'" + t[i].text + "." + method.text +
                       "()' after '" + t[i].text +
                       ".finish()' (line " +
                       std::to_string(it->second) +
                       ") — the session is finished");
        }
    }
};

} // anonymous namespace

void
addModelRules(RuleRegistry &reg)
{
    reg.add(std::make_unique<LayeringRule>());
    reg.add(std::make_unique<IncludeCycleRule>());
    reg.add(std::make_unique<DeadStatRule>());
    reg.add(std::make_unique<SchemaSyncRule>());
    reg.add(std::make_unique<EnumSwitchRule>());
    reg.add(std::make_unique<PhaseOrderRule>());
}

} // namespace kilo::lint
