/**
 * @file
 * Comment-, string- and preprocessor-aware C++ tokenizer for kilolint.
 *
 * This is not a compiler front end: kilolint's rules are pattern
 * checks over token streams ("identifier `rand` called as a free
 * function", "string literal at a Registry registration site"), so
 * the lexer only has to get the *boundaries* right — where comments,
 * string/char literals (including raw strings) and preprocessor
 * directives start and end — never the grammar. Everything a rule
 * sees has already had comments stripped and literals reduced to
 * single tokens, which is what makes the rules trivially immune to
 * the classic grep false positives (a banned name inside a comment,
 * a string, or an #ifdef'd-out include).
 *
 * Suppression comments are recognised here as well:
 *
 *     ::read(fd, buf, n);  // kilolint: allow(raw-serialization)
 *
 * A trailing comment suppresses findings on its own line; a comment
 * alone on a line suppresses the line below it. Multiple rules can
 * be listed, comma separated. The linter counts every annotation and
 * flags the ones that suppressed nothing (see linter.hh).
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace kilo::lint
{

/** Lexical class of one token. */
enum class TokKind : uint8_t
{
    Identifier,  ///< identifiers and keywords (text = spelling)
    Number,      ///< numeric literal
    String,      ///< string literal (text = contents, unquoted)
    CharLit,     ///< character literal
    Punct,       ///< operator/punctuator (::, ->, ., {, }, ...)
    Directive,   ///< whole preprocessor directive (text = normalised)
};

/**
 * One token, with the 1-based line it starts on and its byte extent
 * in the original buffer ([pos, end)). The extent covers the raw
 * spelling — for a string literal it includes the quotes — which is
 * what lets the autofixer (src/lint/fix.cc) splice replacements back
 * into the untokenized text.
 */
struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 0;
    size_t pos = 0;  ///< byte offset of the first character
    size_t end = 0;  ///< one past the last byte of the spelling
};

/** A lexed translation unit plus its suppression annotations. */
struct SourceFile
{
    std::string path;     ///< as passed in (display + rule scoping)
    std::vector<Token> tokens;
    bool isHeader = false;  ///< path ends in .hh/.h/.hpp

    /**
     * Suppressions by target line: the set of rule names a
     * `// kilolint: allow(rule, ...)` annotation covers on that line
     * ("*" covers every rule).
     */
    std::map<int, std::set<std::string>> allows;

    /** True when @p line carries an allow() for @p rule. */
    bool allowed(int line, const std::string &rule) const;
};

/**
 * Tokenize @p content. Never throws on malformed input: an
 * unterminated literal or comment simply ends at EOF — lint rules
 * must degrade gracefully on code that does not compile yet.
 */
SourceFile lex(std::string path, const std::string &content);

/**
 * True when @p path contains directory @p dir ("src/core") either at
 * the start or after a '/'. Both "src/core/lsq.cc" and
 * "/root/repo/src/core/lsq.cc" match "src/core".
 */
bool pathInDir(const std::string &path, const std::string &dir);

} // namespace kilo::lint
