#include "src/lint/lexer.hh"

#include <cctype>

namespace kilo::lint
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Parse "kilolint: allow(rule-a, rule-b)" out of one comment body.
 * Returns the rule names (possibly "*"); empty when the comment is
 * not an annotation.
 */
std::set<std::string>
parseAllow(const std::string &comment)
{
    std::set<std::string> rules;
    // Only a comment that *is* an annotation counts; documentation
    // that merely mentions the syntax mid-text does not.
    size_t at = comment.find_first_not_of(" \t");
    if (at == std::string::npos ||
        comment.compare(at, 9, "kilolint:") != 0)
        return rules;
    size_t open = comment.find("allow(", at);
    if (open == std::string::npos)
        return rules;
    size_t close = comment.find(')', open);
    if (close == std::string::npos)
        return rules;
    std::string list =
        comment.substr(open + 6, close - (open + 6));
    std::string cur;
    for (char c : list) {
        if (c == ',') {
            if (!cur.empty())
                rules.insert(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        rules.insert(cur);
    return rules;
}

/** Multi-character punctuators the rules care about. */
bool
isPunctPair(char a, char b)
{
    return (a == ':' && b == ':') || (a == '-' && b == '>') ||
           (a == '+' && b == '+') || (a == '-' && b == '-') ||
           (a == '<' && b == '<') || (a == '>' && b == '>') ||
           (a == '&' && b == '&') || (a == '|' && b == '|') ||
           (a == '=' && b == '=') || (a == '!' && b == '=') ||
           (a == '<' && b == '=') || (a == '>' && b == '=');
}

} // anonymous namespace

bool
SourceFile::allowed(int line, const std::string &rule) const
{
    auto it = allows.find(line);
    if (it == allows.end())
        return false;
    return it->second.count(rule) || it->second.count("*");
}

bool
pathInDir(const std::string &path, const std::string &dir)
{
    size_t at = path.find(dir);
    while (at != std::string::npos) {
        bool starts = at == 0 || path[at - 1] == '/';
        bool ends = at + dir.size() == path.size() ||
                    path[at + dir.size()] == '/';
        if (starts && ends)
            return true;
        at = path.find(dir, at + 1);
    }
    return false;
}

SourceFile
lex(std::string path, const std::string &content)
{
    SourceFile f;
    f.path = std::move(path);
    size_t dot = f.path.rfind('.');
    if (dot != std::string::npos) {
        std::string ext = f.path.substr(dot);
        f.isHeader = ext == ".hh" || ext == ".h" || ext == ".hpp";
    }

    const std::string &s = content;
    size_t i = 0;
    int line = 1;
    // Line of the last code token emitted: decides whether a comment
    // annotation targets its own line (trailing) or the next one.
    int lastCodeLine = 0;

    auto recordAllow = [&](const std::string &body, int startLine,
                           int endLine) {
        std::set<std::string> rules = parseAllow(body);
        if (rules.empty())
            return;
        int target =
            lastCodeLine == startLine ? startLine : endLine + 1;
        f.allows[target].insert(rules.begin(), rules.end());
    };

    auto push = [&](TokKind kind, std::string text, int at,
                    size_t from, size_t to) {
        lastCodeLine = at;
        f.tokens.push_back(
            Token{kind, std::move(text), at, from, to});
    };

    while (i < s.size()) {
        char c = s[i];

        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // ---------------------------------------------- comments
        if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
            size_t start = i + 2;
            size_t eol = s.find('\n', start);
            if (eol == std::string::npos)
                eol = s.size();
            recordAllow(s.substr(start, eol - start), line, line);
            i = eol;
            continue;
        }
        if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
            int startLine = line;
            size_t end = s.find("*/", i + 2);
            size_t stop = end == std::string::npos ? s.size() : end;
            std::string body = s.substr(i + 2, stop - (i + 2));
            for (char bc : body)
                if (bc == '\n')
                    ++line;
            recordAllow(body, startLine, line);
            i = end == std::string::npos ? s.size() : end + 2;
            continue;
        }

        // ------------------------------------ preprocessor lines
        // Only when '#' is the first code on its source line; a
        // directive token carries the whole (continuation-joined)
        // normalised text, so rules can match "pragma once" without
        // caring about spacing.
        if (c == '#') {
            int startLine = line;
            size_t startPos = i;
            std::string text;
            ++i;
            bool lastWasSpace = true;
            while (i < s.size()) {
                char d = s[i];
                if (d == '\\' && i + 1 < s.size() &&
                    s[i + 1] == '\n') {
                    ++line;
                    i += 2;
                    continue;
                }
                if (d == '\n')
                    break;
                if (d == '/' && i + 1 < s.size() &&
                    (s[i + 1] == '/' || s[i + 1] == '*'))
                    break; // trailing comment handled by main loop
                if (std::isspace(static_cast<unsigned char>(d))) {
                    if (!lastWasSpace)
                        text.push_back(' ');
                    lastWasSpace = true;
                } else {
                    text.push_back(d);
                    lastWasSpace = false;
                }
                ++i;
            }
            while (!text.empty() && text.back() == ' ')
                text.pop_back();
            push(TokKind::Directive, std::move(text), startLine,
                 startPos, i);
            continue;
        }

        // ------------------------------------------ raw strings
        if (c == 'R' && i + 1 < s.size() && s[i + 1] == '"') {
            size_t open = s.find('(', i + 2);
            if (open != std::string::npos) {
                std::string delim;
                delim.reserve(open - (i + 2) + 2);
                delim.push_back(')');
                delim.append(s, i + 2, open - (i + 2));
                delim.push_back('"');
                size_t close = s.find(delim, open + 1);
                size_t stop =
                    close == std::string::npos ? s.size() : close;
                std::string body =
                    s.substr(open + 1, stop - (open + 1));
                int startLine = line;
                for (char bc : body)
                    if (bc == '\n')
                        ++line;
                size_t stopPos = close == std::string::npos
                                     ? s.size()
                                     : close + delim.size();
                push(TokKind::String, std::move(body), startLine, i,
                     stopPos);
                i = stopPos;
                continue;
            }
        }

        // --------------------------------- string/char literals
        if (c == '"' || c == '\'') {
            char quote = c;
            size_t startPos = i;
            std::string body;
            ++i;
            while (i < s.size() && s[i] != quote) {
                if (s[i] == '\\' && i + 1 < s.size()) {
                    body.push_back(s[i]);
                    body.push_back(s[i + 1]);
                    if (s[i + 1] == '\n')
                        ++line;
                    i += 2;
                    continue;
                }
                if (s[i] == '\n') {
                    ++line; // unterminated; tolerate
                    break;
                }
                body.push_back(s[i]);
                ++i;
            }
            if (i < s.size() && s[i] == quote)
                ++i;
            push(quote == '"' ? TokKind::String : TokKind::CharLit,
                 std::move(body), line, startPos, i);
            continue;
        }

        // ---------------------------------------------- numbers
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < s.size() &&
             std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
            size_t start = i;
            while (i < s.size() &&
                   (identChar(s[i]) || s[i] == '.' || s[i] == '\'' ||
                    ((s[i] == '+' || s[i] == '-') && i > start &&
                     (s[i - 1] == 'e' || s[i - 1] == 'E' ||
                      s[i - 1] == 'p' || s[i - 1] == 'P'))))
                ++i;
            push(TokKind::Number, s.substr(start, i - start), line,
                 start, i);
            continue;
        }

        // ------------------------------------------ identifiers
        if (identStart(c)) {
            size_t start = i;
            while (i < s.size() && identChar(s[i]))
                ++i;
            push(TokKind::Identifier, s.substr(start, i - start),
                 line, start, i);
            continue;
        }

        // --------------------------------------------- puncts
        if (i + 1 < s.size() && isPunctPair(c, s[i + 1])) {
            push(TokKind::Punct, s.substr(i, 2), line, i, i + 2);
            i += 2;
            continue;
        }
        push(TokKind::Punct, std::string(1, c), line, i, i + 1);
        ++i;
    }

    return f;
}

} // namespace kilo::lint
