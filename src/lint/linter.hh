/**
 * @file
 * kilolint: project-invariant static analysis.
 *
 * The simulator's credibility rests on invariants the test suite can
 * only probe *dynamically* on the paths it happens to execute: the
 * steady-state hot loop is allocation-free (pinned by a counting
 * operator-new test) and every emitted byte — JSONL rows, traces,
 * checkpoints — is bit-identical across threads, shards and build
 * types (pinned by golden diffs). kilolint encodes those invariants
 * as static rules over the whole source tree, so a violation on a
 * path no golden test covers still fails CI. See src/lint/DESIGN.md
 * for the rule catalog and the rationale mapping each rule to the
 * dynamic test it mirrors.
 *
 * The rule registry follows stats::Registry: every rule is
 * registered exactly once with a name, a description and a severity;
 * duplicate names panic; the set is enumerable (tools/kilolint
 * --list). Findings print as
 *
 *     file:line: [kilolint-<rule>] message
 *
 * and can be suppressed per line with `// kilolint: allow(<rule>)`.
 * Annotations are counted (CI caps them) and any annotation that
 * suppressed nothing is itself reported under the
 * `unused-suppression` rule, so stale exemptions cannot accumulate.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/lint/lexer.hh"

namespace kilo::lint
{

enum class Severity : uint8_t
{
    Warning,
    Error,
};

const char *severityName(Severity s);

/** One reported rule violation. */
struct Finding
{
    std::string path;
    int line = 0;
    std::string rule;
    Severity severity = Severity::Error;
    std::string message;
};

/** "file:line: [kilolint-<rule>] message" */
std::string findingLine(const Finding &f);

/** One invariant check. Stateless; checks never mutate the rule. */
class Rule
{
  public:
    Rule(std::string name, std::string description, Severity sev)
        : name_(std::move(name)),
          description_(std::move(description)), severity_(sev)
    {}
    virtual ~Rule() = default;

    const std::string &name() const { return name_; }
    const std::string &description() const { return description_; }
    Severity severity() const { return severity_; }

    /** Scope predicate; default checks every file. */
    virtual bool appliesTo(const SourceFile &f) const
    {
        (void)f;
        return true;
    }

    /** Append findings for @p f (severity/rule filled by caller). */
    virtual void check(const SourceFile &f,
                       std::vector<Finding> &out) const = 0;

  protected:
    /** Convenience: emit one finding tagged with this rule. */
    void report(std::vector<Finding> &out, const SourceFile &f,
                int line, std::string message) const;

  private:
    std::string name_;
    std::string description_;
    Severity severity_;
};

/**
 * Ordered rule set; modeled on stats::Registry — register once with
 * name + description + severity, duplicate names panic, enumerable.
 */
class RuleRegistry
{
  public:
    RuleRegistry() = default;
    RuleRegistry(const RuleRegistry &) = delete;
    RuleRegistry &operator=(const RuleRegistry &) = delete;
    RuleRegistry(RuleRegistry &&) = default;
    RuleRegistry &operator=(RuleRegistry &&) = default;

    /** Register a rule; panics when the name is already taken. */
    void add(std::unique_ptr<Rule> rule);

    const std::vector<std::unique_ptr<Rule>> &rules() const
    {
        return rules_;
    }

    /** The rule named @p name, or nullptr. */
    const Rule *find(const std::string &name) const;

    /** Every built-in project-invariant rule, in catalog order. */
    static RuleRegistry builtin();

  private:
    std::vector<std::unique_ptr<Rule>> rules_;
};

/** Aggregated result of linting a set of files. */
struct LintReport
{
    std::vector<Finding> findings;  ///< post-suppression, in scan order
    int filesScanned = 0;
    int suppressionsTotal = 0;  ///< allow() annotations seen
    int suppressionsUsed = 0;   ///< annotations that suppressed >= 1

    bool clean() const { return findings.empty(); }
};

/** Runs a RuleRegistry over sources and applies suppressions. */
class Linter
{
  public:
    explicit Linter(const RuleRegistry &rules)
        : rules_(rules)
    {}

    /** Lint one in-memory buffer (used by tests and fixtures). */
    void lintSource(const std::string &path,
                    const std::string &content,
                    LintReport &report) const;

    /**
     * Lint a file, or recursively every .hh/.h/.hpp/.cc/.cpp file
     * under a directory. Traversal is sorted, so finding order is
     * deterministic — the linter holds itself to the reproducibility
     * bar it enforces. Throws std::runtime_error on unreadable
     * paths.
     */
    void lintPath(const std::string &path, LintReport &report) const;

  private:
    const RuleRegistry &rules_;
};

/**
 * Machine-readable report:
 * {"files":N,"suppressions":{"total":N,"used":N},
 *  "findings":[{"file","line","rule","severity","message"}...]}
 */
std::string reportJson(const LintReport &report);

} // namespace kilo::lint
