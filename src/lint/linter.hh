/**
 * @file
 * kilolint: project-invariant static analysis.
 *
 * The simulator's credibility rests on invariants the test suite can
 * only probe *dynamically* on the paths it happens to execute: the
 * steady-state hot loop is allocation-free (pinned by a counting
 * operator-new test) and every emitted byte — JSONL rows, traces,
 * checkpoints — is bit-identical across threads, shards and build
 * types (pinned by golden diffs). kilolint encodes those invariants
 * as static rules over the whole source tree, so a violation on a
 * path no golden test covers still fails CI. See src/lint/DESIGN.md
 * for the rule catalog and the rationale mapping each rule to the
 * dynamic test it mirrors.
 *
 * The rule registry follows stats::Registry: every rule is
 * registered exactly once with a name, a description and a severity;
 * duplicate names panic; the set is enumerable (tools/kilolint
 * --list). Findings print as
 *
 *     file:line: [kilolint-<rule>] message
 *
 * and can be suppressed per line with `// kilolint: allow(<rule>)`.
 * Annotations are counted (CI caps them) and any annotation that
 * suppressed nothing is itself reported under the
 * `unused-suppression` rule, so stale exemptions cannot accumulate.
 */

#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/lint/lexer.hh"
#include "src/lint/model.hh"

namespace kilo::lint
{

enum class Severity : uint8_t
{
    Warning,
    Error,
};

const char *severityName(Severity s);

/** One reported rule violation. */
struct Finding
{
    std::string path;
    int line = 0;
    std::string rule;
    Severity severity = Severity::Error;
    std::string message;
};

/** "file:line: [kilolint-<rule>] message" */
std::string findingLine(const Finding &f);

/** One invariant check. Stateless; checks never mutate the rule. */
class Rule
{
  public:
    Rule(std::string name, std::string description, Severity sev)
        : name_(std::move(name)),
          description_(std::move(description)), severity_(sev)
    {}
    virtual ~Rule() = default;

    const std::string &name() const { return name_; }
    const std::string &description() const { return description_; }
    Severity severity() const { return severity_; }

    /** Scope predicate; default checks every file. */
    virtual bool appliesTo(const SourceFile &f) const
    {
        (void)f;
        return true;
    }

    /** Append findings for @p f (severity/rule filled by caller). */
    virtual void check(const SourceFile &f,
                       std::vector<Finding> &out) const = 0;

    /**
     * Tier-1 hook: append findings that need the whole-project model
     * (layering, include cycles, cross-TU stat liveness, registered
     * enum definitions). Runs once per Analysis, after every file
     * has been lexed; per-file Linter runs never call it. Default:
     * nothing.
     */
    virtual void checkModel(const ProjectModel &m,
                            std::vector<Finding> &out) const
    {
        (void)m;
        (void)out;
    }

  protected:
    /** Convenience: emit one finding tagged with this rule. */
    void report(std::vector<Finding> &out, const SourceFile &f,
                int line, std::string message) const;

    /** Same, for model findings not tied to a lexed file (layer
     *  spec or schema golden lines). */
    void reportAt(std::vector<Finding> &out, std::string path,
                  int line, std::string message) const;

  private:
    std::string name_;
    std::string description_;
    Severity severity_;
};

/**
 * Ordered rule set; modeled on stats::Registry — register once with
 * name + description + severity, duplicate names panic, enumerable.
 */
class RuleRegistry
{
  public:
    RuleRegistry() = default;
    RuleRegistry(const RuleRegistry &) = delete;
    RuleRegistry &operator=(const RuleRegistry &) = delete;
    RuleRegistry(RuleRegistry &&) = default;
    RuleRegistry &operator=(RuleRegistry &&) = default;

    /** Register a rule; panics when the name is already taken. */
    void add(std::unique_ptr<Rule> rule);

    const std::vector<std::unique_ptr<Rule>> &rules() const
    {
        return rules_;
    }

    /** The rule named @p name, or nullptr. */
    const Rule *find(const std::string &name) const;

    /** Every built-in project-invariant rule, in catalog order. */
    static RuleRegistry builtin();

  private:
    std::vector<std::unique_ptr<Rule>> rules_;
};

/**
 * Register the semantic-tier rules (src/lint/flow_rules.cc):
 * layering, include-cycle, dead-stat, schema-sync,
 * enum-switch-exhaustive, phase-order. Called by
 * RuleRegistry::builtin(); exposed for registries built by hand.
 */
void addModelRules(RuleRegistry &reg);

/** Aggregated result of linting a set of files. */
struct LintReport
{
    std::vector<Finding> findings;  ///< post-suppression, in scan order
    int filesScanned = 0;
    int suppressionsTotal = 0;  ///< allow() annotations seen
    int suppressionsUsed = 0;   ///< annotations that suppressed >= 1

    bool clean() const { return findings.empty(); }
};

/**
 * Runs a RuleRegistry over sources one file at a time and applies
 * suppressions. Tier-2 only: rules' checkModel() hooks never run, so
 * cross-TU checks stay silent — use Analysis for the full pipeline.
 * Kept for single-buffer fixtures and as the building block Analysis
 * shares its traversal and suppression logic with.
 */
class Linter
{
  public:
    explicit Linter(const RuleRegistry &rules)
        : rules_(rules)
    {}

    /** Lint one in-memory buffer (used by tests and fixtures). */
    void lintSource(const std::string &path,
                    const std::string &content,
                    LintReport &report) const;

    /**
     * Lint a file, or recursively every .hh/.h/.hpp/.cc/.cpp file
     * under a directory. Traversal is sorted, so finding order is
     * deterministic — the linter holds itself to the reproducibility
     * bar it enforces. Throws std::runtime_error on unreadable
     * paths.
     */
    void lintPath(const std::string &path, LintReport &report) const;

  private:
    const RuleRegistry &rules_;
};

/** What a full Analysis run checks beyond the per-file rules. */
struct AnalysisOptions
{
    LayerSpec layers;    ///< loaded => layering checks active
    SchemaGolden schema; ///< loaded => schema-sync checks active
};

/**
 * The two-tier pipeline: collect every file first, build one
 * ProjectModel, then run each rule's per-file check() plus its
 * cross-TU checkModel() hook, and apply suppressions last — so a
 * `// kilolint: allow(layering)` on an #include line covers a
 * model finding exactly like a per-file one.
 */
class Analysis
{
  public:
    explicit Analysis(const RuleRegistry &rules,
                      AnalysisOptions opts = {})
        : rules_(rules), opts_(std::move(opts))
    {}

    /** Queue one in-memory buffer. */
    void addSource(std::string path, const std::string &content);

    /**
     * Queue a file, or recursively every .hh/.h/.hpp/.cc/.cpp file
     * under a directory (sorted traversal). Throws
     * std::runtime_error on unreadable paths.
     */
    void addPath(const std::string &path);

    /** Build the model, run every rule, apply suppressions. */
    LintReport run();

    /** The model of the last run(); nullptr before. */
    const ProjectModel *model() const { return model_.get(); }

  private:
    const RuleRegistry &rules_;
    AnalysisOptions opts_;
    std::vector<SourceFile> files_;
    std::unique_ptr<ProjectModel> model_;
};

/**
 * Machine-readable report:
 * {"files":N,"suppressions":{"total":N,"used":N},
 *  "findings":[{"file","line","rule","severity","message"}...]}
 */
std::string reportJson(const LintReport &report);

/**
 * SARIF 2.1.0 report for GitHub code scanning: one run, one result
 * per finding, the rule catalog under tool.driver.rules. Paths are
 * normalized repo-relative (normalizePath) so upload works no matter
 * what directory kilolint was invoked from.
 */
std::string sarifJson(const LintReport &report,
                      const RuleRegistry &rules);

/**
 * Baseline identity of a finding: normalized-path|rule|message.
 * Deliberately line-free, so reflowing a file does not churn a
 * checked-in baseline.
 */
std::string baselineKey(const Finding &f);

/**
 * Parse the "findings" of a reportJson()-format document into
 * baseline keys (a multiset: two identical findings need two
 * baseline entries). Returns false on malformed input.
 */
bool parseBaselineKeys(const std::string &json,
                       std::multiset<std::string> &keys);

/**
 * Drop findings present in @p keys (each key absorbs one finding).
 * PR CI lints the full tree but gates only on what the checked-in
 * baseline does not already carry.
 */
void filterBaseline(LintReport &report,
                    std::multiset<std::string> keys);

/** Changed-line ranges, for --diff: only findings inside them gate. */
struct DiffRanges
{
    /** normalized path -> inclusive [start, end] line ranges */
    std::map<std::string, std::vector<std::pair<int, int>>> ranges;

    /** Add "path:start[-end]"; false on malformed spec. */
    bool add(const std::string &spec);

    bool contains(const std::string &path, int line) const;
};

/** Keep only findings whose (file, line) falls in @p d. */
void filterDiff(LintReport &report, const DiffRanges &d);

} // namespace kilo::lint
