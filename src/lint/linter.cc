#include "src/lint/linter.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "src/util/logging.hh"

namespace kilo::lint
{

const char *
severityName(Severity s)
{
    return s == Severity::Error ? "error" : "warning";
}

std::string
findingLine(const Finding &f)
{
    return f.path + ":" + std::to_string(f.line) + ": [kilolint-" +
           f.rule + "] " + f.message;
}

void
Rule::report(std::vector<Finding> &out, const SourceFile &f,
             int line, std::string message) const
{
    reportAt(out, f.path, line, std::move(message));
}

void
Rule::reportAt(std::vector<Finding> &out, std::string path,
               int line, std::string message) const
{
    Finding fd;
    fd.path = std::move(path);
    fd.line = line;
    fd.rule = name_;
    fd.severity = severity_;
    fd.message = std::move(message);
    out.push_back(std::move(fd));
}

void
RuleRegistry::add(std::unique_ptr<Rule> rule)
{
    KILO_ASSERT(rule != nullptr, "null rule registered");
    for (const auto &r : rules_) {
        if (r->name() == rule->name())
            KILO_PANIC("duplicate lint rule '%s'",
                       rule->name().c_str());
    }
    rules_.push_back(std::move(rule));
}

const Rule *
RuleRegistry::find(const std::string &name) const
{
    for (const auto &r : rules_)
        if (r->name() == name)
            return r.get();
    return nullptr;
}

namespace
{

/**
 * Apply one file's allow() annotations to its raw findings: the
 * suppressed ones vanish, used/total counters advance, and stale
 * annotations turn into unused-suppression findings. Shared between
 * the per-file Linter and the whole-project Analysis — the only
 * difference is *when* the raw findings were produced.
 */
void
applySuppressions(const SourceFile &f, std::vector<Finding> &raw,
                  LintReport &report)
{
    std::stable_sort(raw.begin(), raw.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.line < b.line;
                     });

    std::map<int, std::set<std::string>> used;
    for (auto &fd : raw) {
        if (f.allowed(fd.line, fd.rule)) {
            auto &entry = f.allows.find(fd.line)->second;
            used[fd.line].insert(entry.count("*") ? "*" : fd.rule);
            continue;
        }
        report.findings.push_back(std::move(fd));
    }

    for (const auto &[line, rules] : f.allows) {
        report.suppressionsTotal += int(rules.size());
        auto it = used.find(line);
        for (const auto &r : rules) {
            bool fired = it != used.end() && it->second.count(r);
            if (fired) {
                ++report.suppressionsUsed;
                continue;
            }
            Finding fd;
            fd.path = f.path;
            fd.line = line;
            fd.rule = "unused-suppression";
            fd.severity = Severity::Warning;
            fd.message = "kilolint: allow(" + r +
                         ") suppressed nothing; remove it";
            report.findings.push_back(std::move(fd));
        }
    }
}

/** Sorted recursive traversal over lintable files. */
void
visitLintable(const std::string &path,
              const std::function<void(const std::filesystem::path &)>
                  &fn)
{
    namespace fs = std::filesystem;

    auto lintable = [](const fs::path &p) {
        std::string ext = p.extension().string();
        return ext == ".hh" || ext == ".h" || ext == ".hpp" ||
               ext == ".cc" || ext == ".cpp";
    };

    fs::path root(path);
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
        std::vector<fs::path> files;
        for (fs::recursive_directory_iterator it(root), end;
             it != end; ++it) {
            if (it->is_regular_file() && lintable(it->path()))
                files.push_back(it->path());
        }
        std::sort(files.begin(), files.end());
        for (const auto &p : files)
            fn(p);
        return;
    }
    if (fs::is_regular_file(root, ec)) {
        fn(root);
        return;
    }
    throw std::runtime_error("kilolint: no such file or directory: " +
                             path);
}

std::string
readFileOrThrow(const std::filesystem::path &p)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        throw std::runtime_error("kilolint: cannot read " +
                                 p.string());
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // anonymous namespace

void
Linter::lintSource(const std::string &path,
                   const std::string &content,
                   LintReport &report) const
{
    SourceFile f = lex(path, content);
    ++report.filesScanned;

    std::vector<Finding> raw;
    for (const auto &rule : rules_.rules()) {
        if (rule->appliesTo(f))
            rule->check(f, raw);
    }
    applySuppressions(f, raw, report);
}

void
Linter::lintPath(const std::string &path, LintReport &report) const
{
    visitLintable(path, [&](const std::filesystem::path &p) {
        lintSource(p.generic_string(), readFileOrThrow(p), report);
    });
}

void
Analysis::addSource(std::string path, const std::string &content)
{
    files_.push_back(lex(std::move(path), content));
}

void
Analysis::addPath(const std::string &path)
{
    visitLintable(path, [&](const std::filesystem::path &p) {
        addSource(p.generic_string(), readFileOrThrow(p));
    });
}

LintReport
Analysis::run()
{
    LintReport report;
    report.filesScanned = int(files_.size());

    model_ = std::make_unique<ProjectModel>(
        ProjectModel::build(files_, opts_.layers, opts_.schema));

    std::vector<Finding> raw;
    for (const auto &rule : rules_.rules()) {
        for (const SourceFile &f : files_) {
            if (rule->appliesTo(f))
                rule->check(f, raw);
        }
        rule->checkModel(*model_, raw);
    }

    // Suppressions act per file, whichever tier produced the
    // finding. Findings on paths that are not lexed files (the layer
    // spec, the schema golden) cannot carry annotations and pass
    // through.
    std::map<std::string, std::vector<Finding>> byPath;
    for (auto &fd : raw)
        byPath[fd.path].push_back(std::move(fd));

    for (const SourceFile &f : files_) {
        std::vector<Finding> own;
        auto it = byPath.find(f.path);
        if (it != byPath.end())
            own = std::move(it->second);
        byPath.erase(f.path);
        applySuppressions(f, own, report);
    }
    for (auto &[path, rest] : byPath)
        for (auto &fd : rest)
            report.findings.push_back(std::move(fd));

    std::stable_sort(report.findings.begin(), report.findings.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.path != b.path)
                             return a.path < b.path;
                         if (a.line != b.line)
                             return a.line < b.line;
                         if (a.rule != b.rule)
                             return a.rule < b.rule;
                         return a.message < b.message;
                     });
    return report;
}

// ------------------------------------------------- report formats

namespace
{

void
jsonEscape(std::ostringstream &os, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

} // anonymous namespace

std::string
reportJson(const LintReport &report)
{
    std::ostringstream os;
    os << "{\"files\":" << report.filesScanned
       << ",\"suppressions\":{\"total\":" << report.suppressionsTotal
       << ",\"used\":" << report.suppressionsUsed
       << "},\"findings\":[";
    bool first = true;
    for (const auto &f : report.findings) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"file\":\"";
        jsonEscape(os, f.path);
        os << "\",\"line\":" << f.line << ",\"rule\":\"";
        jsonEscape(os, f.rule);
        os << "\",\"severity\":\"" << severityName(f.severity)
           << "\",\"message\":\"";
        jsonEscape(os, f.message);
        os << "\"}";
    }
    os << "]}";
    return os.str();
}

std::string
sarifJson(const LintReport &report, const RuleRegistry &rules)
{
    std::ostringstream os;
    os << "{\"version\":\"2.1.0\",\"$schema\":"
          "\"https://json.schemastore.org/sarif-2.1.0.json\","
          "\"runs\":[{\"tool\":{\"driver\":{\"name\":\"kilolint\","
          "\"informationUri\":\"src/lint/DESIGN.md\",\"rules\":[";
    bool first = true;
    for (const auto &r : rules.rules()) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"id\":\"";
        jsonEscape(os, r->name());
        os << "\",\"shortDescription\":{\"text\":\"";
        jsonEscape(os, r->description());
        os << "\"},\"defaultConfiguration\":{\"level\":\""
           << severityName(r->severity()) << "\"}}";
    }
    os << "]}},\"results\":[";
    first = true;
    for (const auto &f : report.findings) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"ruleId\":\"";
        jsonEscape(os, f.rule);
        os << "\",\"level\":\"" << severityName(f.severity)
           << "\",\"message\":{\"text\":\"";
        jsonEscape(os, f.message);
        os << "\"},\"locations\":[{\"physicalLocation\":"
              "{\"artifactLocation\":{\"uri\":\"";
        jsonEscape(os, normalizePath(f.path));
        os << "\"},\"region\":{\"startLine\":"
           << (f.line > 0 ? f.line : 1) << "}}}]}";
    }
    os << "]}]}";
    return os.str();
}

// --------------------------------------------- baseline filtering

std::string
baselineKey(const Finding &f)
{
    return normalizePath(f.path) + "|" + f.rule + "|" + f.message;
}

namespace
{

/** Scan one JSON string value starting at the opening quote of
 *  @p json[i]; returns the unescaped value and leaves @p i one past
 *  the closing quote. False on malformed input. */
bool
scanJsonString(const std::string &json, size_t &i, std::string &out)
{
    if (i >= json.size() || json[i] != '"')
        return false;
    ++i;
    out.clear();
    while (i < json.size()) {
        char c = json[i];
        if (c == '"') {
            ++i;
            return true;
        }
        if (c == '\\') {
            if (i + 1 >= json.size())
                return false;
            char e = json[i + 1];
            switch (e) {
              case '"':
                out.push_back('"');
                break;
              case '\\':
                out.push_back('\\');
                break;
              case '/':
                out.push_back('/');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                  if (i + 5 >= json.size())
                      return false;
                  unsigned v = 0;
                  for (int k = 0; k < 4; ++k) {
                      char h = json[i + 2 + k];
                      v <<= 4;
                      if (h >= '0' && h <= '9')
                          v |= unsigned(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          v |= unsigned(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          v |= unsigned(h - 'A' + 10);
                      else
                          return false;
                  }
                  // Only control characters are emitted escaped by
                  // reportJson; others pass through as one byte.
                  out.push_back(char(v & 0xff));
                  i += 4;
                  break;
              }
              default:
                return false;
            }
            i += 2;
            continue;
        }
        out.push_back(c);
        ++i;
    }
    return false;
}

} // anonymous namespace

bool
parseBaselineKeys(const std::string &json,
                  std::multiset<std::string> &keys)
{
    size_t at = json.find("\"findings\"");
    if (at == std::string::npos)
        return false;
    at = json.find('[', at);
    if (at == std::string::npos)
        return false;

    // Walk the findings array object by object: pick out the
    // "file"/"rule"/"message" members, skip everything else. This
    // only has to parse what reportJson emits.
    size_t i = at + 1;
    std::string file, rule, message;
    bool haveFile = false, haveRule = false, haveMessage = false;
    int depth = 0;
    while (i < json.size()) {
        char c = json[i];
        if (c == '{') {
            ++depth;
            ++i;
            haveFile = haveRule = haveMessage = false;
            continue;
        }
        if (c == '}') {
            if (depth == 0)
                return false;
            --depth;
            if (!haveFile || !haveRule || !haveMessage)
                return false;
            Finding f;
            f.path = file;
            f.rule = rule;
            f.message = message;
            keys.insert(baselineKey(f));
            ++i;
            continue;
        }
        if (c == ']' && depth == 0)
            return true;
        if (c == '"') {
            std::string name;
            if (!scanJsonString(json, i, name))
                return false;
            while (i < json.size() &&
                   (json[i] == ' ' || json[i] == '\n' ||
                    json[i] == '\t'))
                ++i;
            if (i >= json.size() || json[i] != ':')
                return false;  // a bare value where a member starts
            ++i;
            while (i < json.size() &&
                   (json[i] == ' ' || json[i] == '\n' ||
                    json[i] == '\t'))
                ++i;
            if (i < json.size() && json[i] == '"') {
                std::string value;
                if (!scanJsonString(json, i, value))
                    return false;
                if (name == "file") {
                    file = value;
                    haveFile = true;
                } else if (name == "rule") {
                    rule = value;
                    haveRule = true;
                } else if (name == "message") {
                    message = value;
                    haveMessage = true;
                }
            }
            // Non-string member values (line numbers) fall through
            // to the generic skip below.
            continue;
        }
        ++i;
    }
    return false;
}

void
filterBaseline(LintReport &report, std::multiset<std::string> keys)
{
    std::vector<Finding> kept;
    kept.reserve(report.findings.size());
    for (auto &f : report.findings) {
        auto it = keys.find(baselineKey(f));
        if (it != keys.end()) {
            keys.erase(it);  // one baseline entry absorbs one finding
            continue;
        }
        kept.push_back(std::move(f));
    }
    report.findings = std::move(kept);
}

// ------------------------------------------------- diff filtering

bool
DiffRanges::add(const std::string &spec)
{
    size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= spec.size())
        return false;
    std::string path = spec.substr(0, colon);
    std::string tail = spec.substr(colon + 1);
    size_t dash = tail.find('-');
    int start = 0, end = 0;
    try {
        size_t used = 0;
        start = std::stoi(tail, &used);
        if (dash == std::string::npos) {
            if (used != tail.size())
                return false;
            end = start;
        } else {
            if (used != dash)
                return false;
            std::string second = tail.substr(dash + 1);
            end = std::stoi(second, &used);
            if (used != second.size())
                return false;
        }
    } catch (const std::exception &) {
        return false;
    }
    if (start <= 0 || end < start)
        return false;
    ranges[normalizePath(path)].emplace_back(start, end);
    return true;
}

bool
DiffRanges::contains(const std::string &path, int line) const
{
    auto it = ranges.find(normalizePath(path));
    if (it == ranges.end())
        return false;
    for (const auto &[s, e] : it->second)
        if (line >= s && line <= e)
            return true;
    return false;
}

void
filterDiff(LintReport &report, const DiffRanges &d)
{
    std::vector<Finding> kept;
    kept.reserve(report.findings.size());
    for (auto &f : report.findings)
        if (d.contains(f.path, f.line))
            kept.push_back(std::move(f));
    report.findings = std::move(kept);
}

} // namespace kilo::lint
