#include "src/lint/linter.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/util/logging.hh"

namespace kilo::lint
{

const char *
severityName(Severity s)
{
    return s == Severity::Error ? "error" : "warning";
}

std::string
findingLine(const Finding &f)
{
    return f.path + ":" + std::to_string(f.line) + ": [kilolint-" +
           f.rule + "] " + f.message;
}

void
Rule::report(std::vector<Finding> &out, const SourceFile &f,
             int line, std::string message) const
{
    Finding fd;
    fd.path = f.path;
    fd.line = line;
    fd.rule = name_;
    fd.severity = severity_;
    fd.message = std::move(message);
    out.push_back(std::move(fd));
}

void
RuleRegistry::add(std::unique_ptr<Rule> rule)
{
    KILO_ASSERT(rule != nullptr, "null rule registered");
    for (const auto &r : rules_) {
        if (r->name() == rule->name())
            KILO_PANIC("duplicate lint rule '%s'",
                       rule->name().c_str());
    }
    rules_.push_back(std::move(rule));
}

const Rule *
RuleRegistry::find(const std::string &name) const
{
    for (const auto &r : rules_)
        if (r->name() == name)
            return r.get();
    return nullptr;
}

void
Linter::lintSource(const std::string &path,
                   const std::string &content,
                   LintReport &report) const
{
    SourceFile f = lex(path, content);
    ++report.filesScanned;

    std::vector<Finding> raw;
    for (const auto &rule : rules_.rules()) {
        if (rule->appliesTo(f))
            rule->check(f, raw);
    }
    std::stable_sort(raw.begin(), raw.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.line < b.line;
                     });

    // Apply per-line suppressions, tracking which annotations fired
    // so stale ones can be reported below.
    std::map<int, std::set<std::string>> used;
    for (auto &fd : raw) {
        if (f.allowed(fd.line, fd.rule)) {
            auto &entry = f.allows.find(fd.line)->second;
            used[fd.line].insert(entry.count("*") ? "*" : fd.rule);
            continue;
        }
        report.findings.push_back(std::move(fd));
    }

    for (const auto &[line, rules] : f.allows) {
        report.suppressionsTotal += int(rules.size());
        auto it = used.find(line);
        for (const auto &r : rules) {
            bool fired = it != used.end() && it->second.count(r);
            if (fired) {
                ++report.suppressionsUsed;
                continue;
            }
            Finding fd;
            fd.path = f.path;
            fd.line = line;
            fd.rule = "unused-suppression";
            fd.severity = Severity::Warning;
            fd.message = "kilolint: allow(" + r +
                         ") suppressed nothing; remove it";
            report.findings.push_back(std::move(fd));
        }
    }
}

void
Linter::lintPath(const std::string &path, LintReport &report) const
{
    namespace fs = std::filesystem;

    auto lintable = [](const fs::path &p) {
        std::string ext = p.extension().string();
        return ext == ".hh" || ext == ".h" || ext == ".hpp" ||
               ext == ".cc" || ext == ".cpp";
    };
    auto lintFile = [&](const fs::path &p) {
        std::ifstream in(p, std::ios::binary);
        if (!in)
            throw std::runtime_error("kilolint: cannot read " +
                                     p.string());
        std::ostringstream buf;
        buf << in.rdbuf();
        lintSource(p.generic_string(), buf.str(), report);
    };

    fs::path root(path);
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
        std::vector<fs::path> files;
        for (fs::recursive_directory_iterator it(root), end;
             it != end; ++it) {
            if (it->is_regular_file() && lintable(it->path()))
                files.push_back(it->path());
        }
        std::sort(files.begin(), files.end());
        for (const auto &p : files)
            lintFile(p);
        return;
    }
    if (fs::is_regular_file(root, ec)) {
        lintFile(root);
        return;
    }
    throw std::runtime_error("kilolint: no such file or directory: " +
                             path);
}

namespace
{

void
jsonEscape(std::ostringstream &os, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

} // anonymous namespace

std::string
reportJson(const LintReport &report)
{
    std::ostringstream os;
    os << "{\"files\":" << report.filesScanned
       << ",\"suppressions\":{\"total\":" << report.suppressionsTotal
       << ",\"used\":" << report.suppressionsUsed
       << "},\"findings\":[";
    bool first = true;
    for (const auto &f : report.findings) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"file\":\"";
        jsonEscape(os, f.path);
        os << "\",\"line\":" << f.line << ",\"rule\":\"";
        jsonEscape(os, f.rule);
        os << "\",\"severity\":\"" << severityName(f.severity)
           << "\",\"message\":\"";
        jsonEscape(os, f.message);
        os << "\"}";
    }
    os << "]}";
    return os.str();
}

} // namespace kilo::lint
