#include "src/lint/fix.hh"

#include <algorithm>
#include <vector>

#include "src/lint/lexer.hh"

namespace kilo::lint
{

namespace
{

/** One pending text splice: replace [pos, end) with text. */
struct Edit
{
    size_t pos;
    size_t end;
    std::string text;
};

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

bool
isRegMethod(const std::string &s)
{
    return s == "counter" || s == "gauge" || s == "gaugeInt" ||
           s == "histogram";
}

} // anonymous namespace

std::string
applyFixes(const std::string &path, const std::string &content,
           FixStats *stats)
{
    SourceFile f = lex(path, content);
    const auto &t = f.tokens;
    FixStats local;
    std::vector<Edit> edits;

    // ---- std::endl -> '\n' -----------------------------------
    for (size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind == TokKind::Identifier && t[i].text == "std" &&
            isPunct(t[i + 1], "::") &&
            t[i + 2].kind == TokKind::Identifier &&
            t[i + 2].text == "endl") {
            edits.push_back(Edit{t[i].pos, t[i + 2].end, "'\\n'"});
            ++local.endl;
        }
    }

    // ---- missing #pragma once --------------------------------
    if (f.isHeader && !t.empty()) {
        bool pragmaOnce = false;
        for (const Token &tok : t) {
            if (tok.kind == TokKind::Directive &&
                tok.text == "pragma once") {
                pragmaOnce = true;
                break;
            }
        }
        if (!pragmaOnce) {
            // Insert at the start of the first code line, which
            // keeps any leading file comment where it is (the lexer
            // skips comments, so tokens[0] is the first code).
            size_t at = t.front().pos;
            while (at > 0 && content[at - 1] != '\n')
                --at;
            edits.push_back(Edit{at, at, "#pragma once\n\n"});
            ++local.pragmaOnce;
        }
    }

    // ---- trailing '_' in stat names --------------------------
    for (size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier ||
            !isRegMethod(t[i].text))
            continue;
        const Token &prev = i ? t[i - 1] : t[i];
        if (i == 0 ||
            !(isPunct(prev, ".") || isPunct(prev, "->")))
            continue;
        if (!isPunct(t[i + 1], "(") ||
            t[i + 2].kind != TokKind::String)
            continue;
        const std::string &name = t[i + 2].text;
        size_t keep = name.find_last_not_of('_');
        if (keep == std::string::npos || keep + 1 == name.size())
            continue;  // all underscores (not mechanical) or clean
        edits.push_back(Edit{t[i + 2].pos, t[i + 2].end,
                             "\"" + name.substr(0, keep + 1) +
                                 "\""});
        ++local.statName;
    }

    if (stats)
        *stats = local;
    if (edits.empty())
        return content;

    // Splice back to front so earlier offsets stay valid. Edits
    // never overlap: each targets a distinct token span.
    std::sort(edits.begin(), edits.end(),
              [](const Edit &a, const Edit &b) {
                  return a.pos > b.pos;
              });
    std::string out = content;
    for (const Edit &e : edits)
        out.replace(e.pos, e.end - e.pos, e.text);
    return out;
}

} // namespace kilo::lint
