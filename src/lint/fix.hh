/**
 * @file
 * kilolint --fix: mechanical autofixes.
 *
 * Only rewrites with exactly one right answer are automated — the
 * fixer must be safe to run blind in CI:
 *
 *   - `std::endl`                -> `'\n'`   (header-hygiene)
 *   - header missing #pragma once -> inserted above the first
 *     non-comment line            (header-hygiene)
 *   - stat name with trailing '_' -> stripped (stat-name-style)
 *
 * Everything else (layering, dead stats, exhaustiveness) changes
 * meaning and stays a human's call. Fixing is idempotent by
 * construction: each rewrite removes the pattern it matched, so
 * fix -> re-lint is clean for these rules and fix -> re-fix is a
 * no-op — CI asserts exactly that round trip.
 */

#pragma once

#include <string>

namespace kilo::lint
{

/** Edit counts from one applyFixes() pass. */
struct FixStats
{
    int endl = 0;        ///< std::endl -> '\n'
    int pragmaOnce = 0;  ///< #pragma once inserted
    int statName = 0;    ///< trailing '_' stripped from a stat name

    int total() const { return endl + pragmaOnce + statName; }
};

/**
 * Return @p content with every mechanical fix applied; @p path
 * decides header-ness exactly as lex() does. @p stats (optional)
 * receives the edit counts; content comes back unchanged when
 * nothing matched.
 */
std::string applyFixes(const std::string &path,
                       const std::string &content,
                       FixStats *stats = nullptr);

} // namespace kilo::lint
