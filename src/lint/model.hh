/**
 * @file
 * kilolint tier 1: the cross-translation-unit project model.
 *
 * PR 7's rules are per-line token patterns over one file at a time;
 * nothing they can say survives a file boundary. The invariants that
 * keep the sharded sweep fabric and the coming multi-core refactor
 * tractable are *structural*: the module layering (util below stats
 * below mem below core ... — an upward #include couples a foundation
 * layer to its clients), the include graph being acyclic, and the
 * stats registry staying in sync with both its update sites and the
 * checked-in JSONL schema golden.
 *
 * ProjectModel is built in one pass over every lexed file and holds
 * exactly the indices those checks need:
 *
 *   - the project-include graph (normalized "src/..." targets with
 *     the line of each #include);
 *   - every `enum class` definition with its enumerator list (for
 *     the enum-switch-exhaustive flow rule);
 *   - every stats::Registry registration site (name literal, method,
 *     bound field identifier) and, project-wide, the set of field
 *     identifiers that are ever mutated, sampled into, or address-
 *     taken outside a registration — the dead-stat cross-check;
 *   - the parsed layer DAG (src/lint/layers) and the parsed schema
 *     golden (tools/stats_schema.golden) when the analysis was given
 *     them.
 *
 * Like the per-file rules, everything here is heuristic token
 * pattern matching — the bar is "no false positives on this tree"
 * (src/lint/DESIGN.md), not soundness. Checks degrade gracefully:
 * an ambiguous enum name or an unparseable construct drops the
 * check, never the build.
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/lint/lexer.hh"

namespace kilo::lint
{

/**
 * Repo-relative form of @p path: the suffix starting at the first
 * "src/", "tools/", "bench/", "examples/" or "tests/" component
 * ("/root/repo/src/core/lsq.cc" and "../src/core/lsq.cc" both map
 * to "src/core/lsq.cc"). Paths rooted elsewhere are returned as
 * given, so fixture buffers with synthetic names keep working.
 */
std::string normalizePath(const std::string &path);

/**
 * Module of a normalized path: "core" for "src/core/lsq.cc", the
 * top-level directory name ("tools", "bench", ...) for non-src
 * trees, "" when there is no directory at all.
 */
std::string moduleOf(const std::string &norm_path);

/** One project-local #include ("src/..." target), by line. */
struct IncludeRef
{
    std::string target;  ///< normalized include path text
    int line = 0;
};

/** One `enum class` definition and its enumerators. */
struct EnumDef
{
    std::string name;
    std::vector<std::string> enumerators;  ///< declaration order
    std::string file;                      ///< normalized
    int line = 0;
};

/** One stats::Registry registration site. */
struct StatReg
{
    std::string name;    ///< registered stat name (string literal)
    std::string method;  ///< counter / gauge / gaugeInt / histogram
    std::string field;   ///< bound field identifier; "" when none
    std::string file;    ///< normalized
    int line = 0;
};

/**
 * The declared module-layer DAG, parsed from src/lint/layers:
 *
 *     # comment
 *     util:
 *     stats: util
 *     mem: stats util
 *
 * One line per src/ module, listing the modules its files may
 * #include *directly*; the check closes the list transitively (if
 * mem may use stats and stats may use util, mem may use util even
 * when not spelled out). A cycle among the declared edges is a spec
 * error. Modules outside src/ (tools, bench, examples, tests) are
 * implicitly top-of-stack: they may include anything and nothing
 * may include them.
 */
struct LayerSpec
{
    /** A problem in the spec file itself (bad syntax, declared
     *  cycle); the layering rule reports these as findings. */
    struct Error
    {
        int line = 0;
        std::string message;
    };

    std::string path;  ///< display path for findings
    /** module -> transitively closed allowed modules (incl. self). */
    std::map<std::string, std::set<std::string>> allowed;
    std::vector<Error> errors;

    bool loaded = false;  ///< an analysis was given a spec at all

    static LayerSpec parse(const std::string &path,
                           const std::string &text);
};

/** The schema golden's stat keys (tools/stats_schema.golden). */
struct SchemaGolden
{
    std::string path;                  ///< display path for findings
    std::map<std::string, int> keys;   ///< key -> first line seen
    bool loaded = false;

    static SchemaGolden parse(const std::string &path,
                              const std::string &text);
};

/**
 * Per-token function-body map for one file: the name of the
 * innermost enclosing function definition and a unique id per body
 * instance (distinct bodies never share an id, even when the
 * functions share a name — gtest TEST bodies all "look like" a
 * function named TEST). Tokens at file/class/namespace scope get
 * name "" / id -1.
 */
struct FunctionMap
{
    std::vector<std::string> nameAt;
    std::vector<int> bodyAt;
};

FunctionMap functionMap(const SourceFile &f);

/** See file comment. Built once per Analysis run. */
class ProjectModel
{
  public:
    /**
     * Build the model over @p files (lexed, any path style). The
     * pointers must outlive the model. @p layers / @p schema may be
     * default-constructed (loaded == false) to disable the checks
     * that need them.
     */
    static ProjectModel build(const std::vector<SourceFile> &files,
                              LayerSpec layers, SchemaGolden schema);

    const std::vector<const SourceFile *> &files() const
    {
        return files_;
    }

    /** Normalized path of every scanned file, sorted. */
    const std::set<std::string> &scannedPaths() const
    {
        return scanned_;
    }

    /** normalized file -> its project includes, scan order. */
    const std::map<std::string, std::vector<IncludeRef>> &
    includes() const
    {
        return includes_;
    }

    const std::vector<EnumDef> &enums() const { return enums_; }

    /** Registration sites in src/ files, scan order. */
    const std::vector<StatReg> &statRegs() const { return regs_; }

    /** True when identifier @p field is incremented, assigned,
     *  sampled into, or address-taken outside a registration site
     *  anywhere in the scanned src/ files. */
    bool fieldUpdated(const std::string &field) const
    {
        return updated_.count(field) != 0;
    }

    const LayerSpec &layers() const { return layers_; }
    const SchemaGolden &schema() const { return schema_; }

  private:
    std::vector<const SourceFile *> files_;
    std::set<std::string> scanned_;
    std::map<std::string, std::vector<IncludeRef>> includes_;
    std::vector<EnumDef> enums_;
    std::vector<StatReg> regs_;
    std::set<std::string> updated_;
    LayerSpec layers_;
    SchemaGolden schema_;
};

} // namespace kilo::lint
