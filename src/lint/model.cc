#include "src/lint/model.hh"

#include <algorithm>
#include <cctype>
#include <functional>
#include <sstream>

namespace kilo::lint
{

namespace
{

const char *const kRoots[] = {"src/", "tools/", "bench/",
                              "examples/", "tests/"};

bool
isPunctTok(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

/** tokens[i], or a harmless sentinel when out of range. */
const Token &
at(const std::vector<Token> &t, size_t i)
{
    static const Token sentinel{TokKind::Punct, "", 0, 0, 0};
    return i < t.size() ? t[i] : sentinel;
}

/** Skip a balanced bracket run starting at @p i (tokens[i] must be
 *  @p open); returns the index one past the matching close, or
 *  t.size() when unbalanced. */
size_t
skipBalanced(const std::vector<Token> &t, size_t i, const char *open,
             const char *close)
{
    int depth = 0;
    for (; i < t.size(); ++i) {
        if (isPunctTok(t[i], open))
            ++depth;
        else if (isPunctTok(t[i], close) && --depth == 0)
            return i + 1;
    }
    return t.size();
}

bool
isMutatingOp(const Token &t)
{
    if (t.kind != TokKind::Punct)
        return false;
    const std::string &x = t.text;
    // The lexer pairs ++ -- <= >= == != << >> :: -> && ||; compound
    // assignments arrive as op + '=' token pairs ("+" then "="), so
    // checking the single-char op followed by '=' is the caller's
    // job. Here: the tokens that alone imply mutation.
    return x == "++" || x == "--";
}

} // anonymous namespace

std::string
normalizePath(const std::string &path)
{
    for (const char *root : kRoots) {
        size_t n = std::string(root).size();
        size_t pos = 0;
        while ((pos = path.find(root, pos)) != std::string::npos) {
            if (pos == 0 || path[pos - 1] == '/')
                return path.substr(pos);
            pos += n;
        }
    }
    return path;
}

std::string
moduleOf(const std::string &norm_path)
{
    size_t slash = norm_path.find('/');
    if (slash == std::string::npos)
        return "";
    std::string top = norm_path.substr(0, slash);
    if (top != "src")
        return top;
    size_t next = norm_path.find('/', slash + 1);
    if (next == std::string::npos)
        return "";
    return norm_path.substr(slash + 1, next - slash - 1);
}

// ------------------------------------------------------ layer spec

LayerSpec
LayerSpec::parse(const std::string &path, const std::string &text)
{
    LayerSpec spec;
    spec.path = path;
    spec.loaded = true;

    // Declared direct edges, in declaration order for deterministic
    // cycle reporting.
    std::vector<std::string> order;
    std::map<std::string, std::set<std::string>> direct;

    std::istringstream in(text);
    std::string raw;
    int lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        size_t hash = raw.find('#');
        std::string ln =
            hash == std::string::npos ? raw : raw.substr(0, hash);
        // Trim.
        size_t b = ln.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            continue;
        size_t e = ln.find_last_not_of(" \t\r");
        ln = ln.substr(b, e - b + 1);

        size_t colon = ln.find(':');
        if (colon == std::string::npos) {
            spec.errors.push_back(
                {lineno, "expected '<module>: <deps...>'"});
            continue;
        }
        std::string mod = ln.substr(0, colon);
        size_t me = mod.find_last_not_of(" \t");
        mod = me == std::string::npos ? "" : mod.substr(0, me + 1);
        if (mod.empty()) {
            spec.errors.push_back({lineno, "empty module name"});
            continue;
        }
        if (direct.count(mod)) {
            spec.errors.push_back(
                {lineno, "module '" + mod + "' declared twice"});
            continue;
        }
        order.push_back(mod);
        std::set<std::string> &deps = direct[mod];
        std::istringstream rest(ln.substr(colon + 1));
        std::string dep;
        while (rest >> dep) {
            if (dep == mod)
                spec.errors.push_back(
                    {lineno, "module '" + mod + "' lists itself"});
            else
                deps.insert(dep);
        }
    }

    for (const auto &[mod, deps] : direct) {
        for (const std::string &d : deps) {
            if (!direct.count(d))
                spec.errors.push_back(
                    {0, "module '" + mod + "' depends on '" + d +
                            "', which is not declared"});
        }
    }

    // Transitive closure by DFS, with cycle detection over the
    // declared edges (0 = unvisited, 1 = on stack, 2 = done).
    std::map<std::string, int> state;
    std::vector<std::string> stack;
    bool cycle = false;

    std::function<void(const std::string &)> close =
        [&](const std::string &mod) {
            state[mod] = 1;
            stack.push_back(mod);
            auto it = direct.find(mod);
            std::set<std::string> &out = spec.allowed[mod];
            out.insert(mod);
            if (it != direct.end()) {
                for (const std::string &d : it->second) {
                    if (state[d] == 1) {
                        if (!cycle) {
                            std::string msg = "layer cycle: ";
                            auto from = std::find(stack.begin(),
                                                  stack.end(), d);
                            for (auto s = from; s != stack.end();
                                 ++s)
                                msg += *s + " -> ";
                            msg += d;
                            spec.errors.push_back({0, msg});
                        }
                        cycle = true;
                        continue;
                    }
                    if (state[d] == 0 && direct.count(d))
                        close(d);
                    out.insert(d);
                    auto dit = spec.allowed.find(d);
                    if (dit != spec.allowed.end())
                        out.insert(dit->second.begin(),
                                   dit->second.end());
                }
            }
            stack.pop_back();
            state[mod] = 2;
        };

    for (const std::string &mod : order)
        if (state[mod] == 0)
            close(mod);

    return spec;
}

// --------------------------------------------------- schema golden

SchemaGolden
SchemaGolden::parse(const std::string &path, const std::string &text)
{
    SchemaGolden g;
    g.path = path;
    g.loaded = true;

    std::istringstream in(text);
    std::string ln;
    int lineno = 0;
    while (std::getline(in, ln)) {
        ++lineno;
        size_t b = ln.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            continue;
        if (ln.compare(b, 2, "==") == 0)
            continue;  // "== MACHINE ==" section header
        size_t e = ln.find_first_of(" \t", b);
        std::string key = ln.substr(b, e == std::string::npos
                                           ? std::string::npos
                                           : e - b);
        g.keys.emplace(key, lineno);
    }
    return g;
}

// ----------------------------------------------- function bodies

/** Keywords that look like `name (` but never open a function. */
static bool
controlKeyword(const std::string &s)
{
    static const std::set<std::string> kw = {
        "if",       "for",          "while",    "switch",
        "catch",    "return",       "sizeof",   "alignof",
        "decltype", "static_assert", "new",     "delete",
        "throw",    "case",         "defined",  "alignas",
        "operator", "noexcept",     "requires", "assert"};
    return kw.count(s) != 0;
}

FunctionMap
functionMap(const SourceFile &f)
{
    const auto &t = f.tokens;
    FunctionMap out;
    out.nameAt.resize(t.size());
    out.bodyAt.assign(t.size(), -1);

    struct Open
    {
        std::string name;
        int id;
        int depth;  ///< brace depth at which the body opened
    };
    std::vector<Open> stack;
    int depth = 0;
    int nextId = 0;

    std::string pendingName;
    size_t pendingBody = size_t(-1);

    for (size_t i = 0; i < t.size(); ++i) {
        if (!stack.empty()) {
            out.nameAt[i] = stack.back().name;
            out.bodyAt[i] = stack.back().id;
        }

        const Token &tok = t[i];
        if (tok.kind == TokKind::Punct) {
            if (tok.text == "{") {
                if (i == pendingBody) {
                    stack.push_back(
                        Open{pendingName, nextId++, depth});
                    pendingBody = size_t(-1);
                }
                ++depth;
                continue;
            }
            if (tok.text == "}") {
                --depth;
                if (!stack.empty() && depth <= stack.back().depth)
                    stack.pop_back();
                continue;
            }
        }

        if (!stack.empty() || pendingBody != size_t(-1))
            continue;
        if (tok.kind != TokKind::Identifier ||
            controlKeyword(tok.text) ||
            !isPunctTok(at(t, i + 1), "("))
            continue;

        // Match the parameter list.
        size_t j = i + 1;
        int paren = 0;
        bool balanced = false;
        for (; j < t.size(); ++j) {
            if (isPunctTok(t[j], "(")) {
                ++paren;
            } else if (isPunctTok(t[j], ")")) {
                if (--paren == 0) {
                    balanced = true;
                    break;
                }
            } else if (isPunctTok(t[j], "{") ||
                       isPunctTok(t[j], "}") ||
                       isPunctTok(t[j], ";")) {
                break;
            }
        }
        if (!balanced)
            continue;

        // Scan the post-parameter tail for a body brace.
        bool inInit = false;
        int nest = 0;
        for (size_t k = j + 1; k < t.size(); ++k) {
            const Token &u = t[k];
            if (u.kind == TokKind::Directive)
                continue;
            if (u.kind == TokKind::Punct) {
                const std::string &x = u.text;
                if (x == "(") {
                    ++nest;
                    continue;
                }
                if (x == ")") {
                    --nest;
                    continue;
                }
                if (x == "{") {
                    if (nest == 0 && inInit) {
                        // `b{y}` member initializer vs the body: an
                        // initializer brace directly follows a name
                        // or template close.
                        const Token &prev = at(t, k - 1);
                        bool init_brace =
                            prev.kind == TokKind::Identifier ||
                            isPunctTok(prev, ">") ||
                            isPunctTok(prev, "::");
                        if (init_brace) {
                            ++nest;
                            continue;
                        }
                    }
                    if (nest == 0) {
                        pendingName = tok.text;
                        pendingBody = k;
                        break;
                    }
                    ++nest;
                    continue;
                }
                if (x == "}") {
                    --nest;
                    continue;
                }
                if (nest > 0)
                    continue;
                if (x == ":" && !inInit) {
                    inInit = true;  // constructor initializer list
                    continue;
                }
                if (x == ";" || x == "=")
                    break;  // declaration / = default / variable
                if (x == "->" || x == "::" || x == "<" || x == ">" ||
                    x == "*" || x == "&" || x == "," || x == "[" ||
                    x == "]")
                    continue;
                break;
            }
        }
    }
    return out;
}

// --------------------------------------------------- model build

namespace
{

/** Extract project includes from one file's directive tokens. */
void
collectIncludes(const SourceFile &f, const std::string &norm,
                std::map<std::string, std::vector<IncludeRef>> &out)
{
    std::vector<IncludeRef> &refs = out[norm];
    for (const Token &t : f.tokens) {
        if (t.kind != TokKind::Directive)
            continue;
        // Directive text is normalised: `include "src/foo/bar.hh"`.
        if (t.text.compare(0, 7, "include") != 0)
            continue;
        size_t open = t.text.find('"');
        if (open == std::string::npos)
            continue;  // <system> include
        size_t close = t.text.find('"', open + 1);
        if (close == std::string::npos)
            continue;
        std::string target =
            t.text.substr(open + 1, close - open - 1);
        refs.push_back(IncludeRef{std::move(target), t.line});
    }
}

/** Extract `enum class Name { ... }` definitions from one file. */
void
collectEnums(const SourceFile &f, const std::string &norm,
             std::vector<EnumDef> &out)
{
    const auto &t = f.tokens;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier || t[i].text != "enum")
            continue;
        size_t j = i + 1;
        if (at(t, j).kind == TokKind::Identifier &&
            (t[j].text == "class" || t[j].text == "struct"))
            ++j;
        if (at(t, j).kind != TokKind::Identifier)
            continue;  // anonymous enum
        EnumDef def;
        def.name = t[j].text;
        def.file = norm;
        def.line = t[j].line;
        ++j;
        if (isPunctTok(at(t, j), ":")) {
            // Underlying type: skip identifiers/:: until '{' or ';'.
            ++j;
            while (j < t.size() && !isPunctTok(t[j], "{") &&
                   !isPunctTok(t[j], ";"))
                ++j;
        }
        if (!isPunctTok(at(t, j), "{"))
            continue;  // forward declaration
        ++j;
        // Enumerators at relative depth 0; initializers may nest
        // parens/braces (size_t(X), Foo{1}).
        bool expectName = true;
        int nest = 0;
        for (; j < t.size(); ++j) {
            const Token &u = t[j];
            if (isPunctTok(u, "(") || isPunctTok(u, "{")) {
                ++nest;
                continue;
            }
            if (isPunctTok(u, ")")) {
                --nest;
                continue;
            }
            if (isPunctTok(u, "}")) {
                if (nest == 0)
                    break;
                --nest;
                continue;
            }
            if (nest > 0)
                continue;
            if (isPunctTok(u, ",")) {
                expectName = true;
                continue;
            }
            if (expectName && u.kind == TokKind::Identifier) {
                def.enumerators.push_back(u.text);
                expectName = false;
            }
        }
        if (!def.enumerators.empty())
            out.push_back(std::move(def));
    }
}

/** The registry registration methods the stats rules key on. */
bool
isRegMethod(const std::string &s)
{
    return s == "counter" || s == "gauge" || s == "gaugeInt" ||
           s == "histogram";
}

/**
 * Extract registration sites and the token ranges of their argument
 * lists (so the update scan can exclude the `&field` binding at the
 * registration itself).
 */
void
collectStatRegs(const SourceFile &f, const std::string &norm,
                std::vector<StatReg> &out,
                std::vector<std::pair<size_t, size_t>> &arg_ranges)
{
    const auto &t = f.tokens;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier ||
            !isRegMethod(t[i].text))
            continue;
        const Token &prev = at(t, i ? i - 1 : t.size());
        if (!(isPunctTok(prev, ".") || isPunctTok(prev, "->")))
            continue;
        if (!isPunctTok(t[i + 1], "(") ||
            t[i + 2].kind != TokKind::String)
            continue;

        size_t close = skipBalanced(t, i + 1, "(", ")");
        StatReg reg;
        reg.name = t[i + 2].text;
        reg.method = t[i].text;
        reg.file = norm;
        reg.line = t[i + 2].line;

        // The bound field: the argument that starts with '&'. Its
        // chain's last identifier at relative bracket depth 0 is the
        // field name (&st.stallSlots[idx] -> stallSlots).
        int depth = 1;
        bool argStart = false;
        for (size_t j = i + 2; j + 1 < close; ++j) {
            if (isPunctTok(t[j], "(") || isPunctTok(t[j], "[")) {
                ++depth;
                continue;
            }
            if (isPunctTok(t[j], ")") || isPunctTok(t[j], "]")) {
                --depth;
                continue;
            }
            if (depth == 1 && isPunctTok(t[j], ",")) {
                argStart = true;
                continue;
            }
            if (depth == 1 && argStart && isPunctTok(t[j], "&")) {
                // Walk the ident chain.
                std::string field;
                size_t k = j + 1;
                while (k < close) {
                    const Token &u = t[k];
                    if (u.kind == TokKind::Identifier) {
                        field = u.text;
                        ++k;
                        continue;
                    }
                    if (isPunctTok(u, ".") || isPunctTok(u, "->") ||
                        isPunctTok(u, "::")) {
                        ++k;
                        continue;
                    }
                    if (isPunctTok(u, "[")) {
                        k = skipBalanced(t, k, "[", "]");
                        continue;
                    }
                    break;
                }
                reg.field = field;
                break;
            }
            if (depth == 1 && !isPunctTok(t[j], ","))
                argStart = false;
        }

        arg_ranges.emplace_back(i + 1, close);
        out.push_back(std::move(reg));
        i = close > i ? close - 1 : i;
    }
}

/**
 * Project-wide update scan: identifiers that are mutated (++/--,
 * compound or plain assignment outside a declaration), sampled into
 * (.addSample), or address-taken outside a registration argument
 * list. Anything in this set is "live" for dead-stat purposes.
 */
void
collectUpdates(const SourceFile &f,
               const std::vector<std::pair<size_t, size_t>> &reg_args,
               std::set<std::string> &out)
{
    const auto &t = f.tokens;
    auto inRegArgs = [&](size_t i) {
        for (const auto &[b, e] : reg_args)
            if (i >= b && i < e)
                return true;
        return false;
    };

    for (size_t i = 0; i < t.size(); ++i) {
        const Token &tok = t[i];

        // Prefix ++x / --x: the chain's last identifier mutates.
        if (isMutatingOp(tok)) {
            std::string field;
            size_t k = i + 1;
            while (k < t.size()) {
                const Token &u = t[k];
                if (u.kind == TokKind::Identifier) {
                    field = u.text;
                    ++k;
                    continue;
                }
                if (isPunctTok(u, ".") || isPunctTok(u, "->") ||
                    isPunctTok(u, "::")) {
                    ++k;
                    continue;
                }
                break;
            }
            if (!field.empty())
                out.insert(field);
            continue;
        }

        if (tok.kind != TokKind::Identifier)
            continue;

        // x.sample(...) / x.addSample(...) — histogram feed.
        if ((isPunctTok(at(t, i + 1), ".") ||
             isPunctTok(at(t, i + 1), "->")) &&
            at(t, i + 2).kind == TokKind::Identifier &&
            (at(t, i + 2).text == "sample" ||
             at(t, i + 2).text == "addSample") &&
            isPunctTok(at(t, i + 3), "(")) {
            out.insert(tok.text);
            continue;
        }

        // Postfix / assignment: skip subscripts, then look at the
        // operator. Plain '=' only counts when the identifier is not
        // a declaration's name (previous token is not an identifier
        // or type punctuation), so `uint64_t cycles = 0;` at the
        // declaration does not mark the stat live.
        size_t j = i + 1;
        while (isPunctTok(at(t, j), "["))
            j = skipBalanced(t, j, "[", "]");
        const Token &op = at(t, j);
        bool mutated = false;
        if (isMutatingOp(op)) {
            mutated = true;
        } else if (op.kind == TokKind::Punct &&
                   (op.text == "+" || op.text == "-" ||
                    op.text == "*" || op.text == "/" ||
                    op.text == "|" || op.text == "&" ||
                    op.text == "^" || op.text == "%") &&
                   isPunctTok(at(t, j + 1), "=")) {
            mutated = true;
        } else if (isPunctTok(op, "=") &&
                   !isPunctTok(at(t, j + 1), "=")) {
            const Token &prev = at(t, i ? i - 1 : t.size());
            bool decl = prev.kind == TokKind::Identifier ||
                        isPunctTok(prev, "*") ||
                        isPunctTok(prev, "&") ||
                        isPunctTok(prev, ">") ||
                        isPunctTok(prev, "::");
            mutated = !decl;
        }
        if (mutated) {
            out.insert(tok.text);
            continue;
        }

        // Address-taken outside a registration: passed somewhere
        // that may mutate it — conservatively live.
        const Token &prev = at(t, i ? i - 1 : t.size());
        if (isPunctTok(prev, "&") && !inRegArgs(i)) {
            // Only the chain head matters for `&x`; `&st.f` puts the
            // '&' before `st`, so walk the chain to its last ident.
            std::string field = tok.text;
            size_t k = i + 1;
            while (k < t.size()) {
                const Token &u = t[k];
                if (isPunctTok(u, ".") || isPunctTok(u, "->") ||
                    isPunctTok(u, "::")) {
                    const Token &nx = at(t, k + 1);
                    if (nx.kind != TokKind::Identifier)
                        break;
                    field = nx.text;
                    k += 2;
                    continue;
                }
                break;
            }
            out.insert(field);
        }
    }
}

} // anonymous namespace

ProjectModel
ProjectModel::build(const std::vector<SourceFile> &files,
                    LayerSpec layers, SchemaGolden schema)
{
    ProjectModel m;
    m.layers_ = std::move(layers);
    m.schema_ = std::move(schema);

    for (const SourceFile &f : files) {
        m.files_.push_back(&f);
        std::string norm = normalizePath(f.path);
        m.scanned_.insert(norm);
        collectIncludes(f, norm, m.includes_);
        collectEnums(f, norm, m.enums_);

        // Stats indices only consider src/ files: a test or bench
        // fixture registering or poking a stat must not change what
        // the production tree is judged on.
        bool inSrc = norm.compare(0, 4, "src/") == 0;
        std::vector<std::pair<size_t, size_t>> regArgs;
        if (inSrc) {
            collectStatRegs(f, norm, m.regs_, regArgs);
            collectUpdates(f, regArgs, m.updated_);
        }
    }
    return m;
}

} // namespace kilo::lint
