/**
 * @file
 * The built-in kilolint rules.
 *
 * Each rule is the static twin of a dynamic invariant the test suite
 * pins (see src/lint/DESIGN.md for the full mapping):
 *
 *   hot-path-alloc    — the counting-operator-new zero-allocation
 *                       test (tests/test_arena.cpp)
 *   nondeterminism    — the golden JSONL / trace / sharded-merge
 *                       bit-identity diffs
 *   stat-name-style   — the stats_schema.golden naming contract
 *                       (src/stats/DESIGN.md)
 *   raw-serialization — the versioned KILOTRC/KILOCKPT formats owned
 *                       by src/trace and src/ckpt
 *   header-hygiene    — include-once, no using-namespace in headers,
 *                       no std::endl
 *
 * Rules are token-pattern checks, deliberately heuristic: they key
 * on *names* (a function called `tick` is a hot path; an identifier
 * called `rand` is a random source), which is exactly the level the
 * project's conventions are written at. Anything a rule cannot see
 * (a std::vector::push_back that grows, an ordered map used with a
 * nondeterministic key) stays the dynamic tests' job.
 */

#include <array>
#include <cctype>
#include <string_view>

#include "src/lint/linter.hh"

namespace kilo::lint
{

namespace
{

using sv = std::string_view;

bool
isPunct(const Token &t, sv text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

/** tokens[i], or a harmless sentinel when out of range. */
const Token &
at(const std::vector<Token> &t, size_t i)
{
    static const Token sentinel{TokKind::Punct, "", 0};
    return i < t.size() ? t[i] : sentinel;
}

bool
anyOf(sv needle, std::initializer_list<sv> hay)
{
    for (sv h : hay)
        if (needle == h)
            return true;
    return false;
}

// ------------------------------------------------- hot-path-alloc

/** Function names that are steady-state hot paths by convention. */
bool
isHotFunction(const std::string &name)
{
    static constexpr std::array<sv, 22> exact = {
        "tick", "access", "warmAccess", "wouldBlock", "lookup",
        "allocate", "alloc", "free", "next", "nextBlock", "op",
        "endCycle", "idleSkip", "scheduleCompletion",
        "addDependence", "addDependent", "releaseDependents",
        "addSample", "record",
        // KILOAUD digest paths: folded once per audit interval but
        // over the entire architectural state, and required to be
        // zero-perturbation — any allocation here shows up as noise
        // in the run under audit.
        "fold", "foldValues", "stateDigest",
    };
    static constexpr std::array<sv, 14> prefix = {
        "stage", "issue", "dispatch", "commit", "wake", "complete",
        "squash", "recover", "insert", "extract", "push", "pop",
        "advance", "beginCycle",
    };
    for (sv e : exact)
        if (name == e)
            return true;
    for (sv p : prefix)
        if (name.size() > p.size() &&
            name.compare(0, p.size(), p) == 0)
            return true;
    // onCommitInst, onSquashInst, ... — pipeline subclass hooks.
    if (name.size() > 2 && name.compare(0, 2, "on") == 0 &&
        std::isupper(static_cast<unsigned char>(name[2])))
        return true;
    return false;
}

class HotPathAllocRule : public Rule
{
  public:
    HotPathAllocRule()
        : Rule("hot-path-alloc",
               "no heap allocation in tick/issue/commit-class "
               "functions of src/core, src/dkip, src/kilo_proc, "
               "src/mem, src/obs, src/util, nor in the KILOAUD "
               "digest fold paths of src/ckpt and src/stats (static "
               "twin of the counting-operator-new zero-allocation "
               "test)",
               Severity::Error)
    {}

    bool
    appliesTo(const SourceFile &f) const override
    {
        return pathInDir(f.path, "src/core") ||
               pathInDir(f.path, "src/ckpt") ||
               pathInDir(f.path, "src/dkip") ||
               pathInDir(f.path, "src/kilo_proc") ||
               pathInDir(f.path, "src/mem") ||
               pathInDir(f.path, "src/obs") ||
               pathInDir(f.path, "src/stats") ||
               pathInDir(f.path, "src/util");
    }

    void
    check(const SourceFile &f, std::vector<Finding> &out) const override
    {
        const auto &t = f.tokens;
        // Innermost-enclosing-function map from the project model
        // layer (src/lint/model.hh) — lambdas and local classes
        // inherit the enclosing function's name, which is right for
        // hot-path purposes: their code runs where the function runs.
        std::vector<std::string> fn = functionMap(f).nameAt;
        for (size_t i = 0; i < t.size(); ++i) {
            if (fn[i].empty() || !isHotFunction(fn[i]) ||
                t[i].kind != TokKind::Identifier)
                continue;
            const std::string &x = t[i].text;
            const Token &prev = at(t, i ? i - 1 : t.size());
            const Token &next = at(t, i + 1);
            bool member = isPunct(prev, ".") || isPunct(prev, "->");

            if ((x == "new" || x == "delete") && !member) {
                report(out, f, t[i].line,
                       "operator " + x + " in hot function '" +
                           fn[i] + "()'");
            } else if (!member && isPunct(next, "(") &&
                       anyOf(x, {"malloc", "calloc", "realloc",
                                 "aligned_alloc", "strdup",
                                 "free"})) {
                report(out, f, t[i].line,
                       x + "() in hot function '" + fn[i] + "()'");
            } else if (anyOf(x, {"make_unique", "make_shared"}) &&
                       (isPunct(next, "(") || isPunct(next, "<"))) {
                report(out, f, t[i].line,
                       "std::" + x + " in hot function '" + fn[i] +
                           "()'");
            } else if (member && isPunct(next, "(") &&
                       anyOf(x, {"resize", "reserve",
                                 "shrink_to_fit"})) {
                report(out, f, t[i].line,
                       "." + x + "() (container growth) in hot "
                                 "function '" +
                           fn[i] + "()'");
            }
        }
    }
};

// ------------------------------------------------- nondeterminism

class NondeterminismRule : public Rule
{
  public:
    NondeterminismRule()
        : Rule("nondeterminism",
               "no wall clocks, libc/std random sources, or "
               "unordered-container types in code that feeds stats, "
               "JSONL, trace or checkpoint bytes (static twin of "
               "the golden bit-identity diffs); sanctioned wall-"
               "deadline sites carry explicit allow() suppressions",
               Severity::Error)
    {}

    void
    check(const SourceFile &f, std::vector<Finding> &out) const override
    {
        const auto &t = f.tokens;
        for (size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != TokKind::Identifier)
                continue;
            const std::string &x = t[i].text;
            const Token &prev = at(t, i ? i - 1 : t.size());
            const Token &next = at(t, i + 1);
            bool member = isPunct(prev, ".") || isPunct(prev, "->");

            if (anyOf(x, {"unordered_map", "unordered_set",
                          "unordered_multimap",
                          "unordered_multiset"})) {
                report(out, f, t[i].line,
                       "std::" + x +
                           ": iteration order is nondeterministic; "
                           "use std::map or a sorted vector");
            } else if (anyOf(x, {"random_device", "mt19937",
                                 "mt19937_64", "minstd_rand",
                                 "minstd_rand0",
                                 "default_random_engine",
                                 "uniform_int_distribution",
                                 "uniform_real_distribution",
                                 "normal_distribution",
                                 "bernoulli_distribution"})) {
                report(out, f, t[i].line,
                       "std::" + x +
                           " is seed/implementation-defined; use "
                           "kilo::Rng (src/util/rng.hh)");
            } else if (!member && isPunct(next, "(") &&
                       anyOf(x, {"rand", "srand", "rand_r",
                                 "drand48", "lrand48", "mrand48",
                                 "random", "srandom"})) {
                report(out, f, t[i].line,
                       x + "() is nondeterministic; use kilo::Rng "
                           "(src/util/rng.hh)");
            } else if (!member && isPunct(next, "(") &&
                       anyOf(x, {"time", "clock", "gettimeofday",
                                 "clock_gettime", "localtime",
                                 "gmtime", "ctime", "getpid"})) {
                report(out, f, t[i].line,
                       x + "() reads wall-clock/process state; "
                           "results must not depend on it");
            } else if (x == "now" && isPunct(prev, "::") &&
                       isPunct(next, "(")) {
                report(out, f, t[i].line,
                       "wall-clock read (::now()); simulated time "
                       "only — suppress only at sanctioned "
                       "deadline sites");
            }
        }
    }
};

// ------------------------------------------------ stat-name-style

class StatNameStyleRule : public Rule
{
  public:
    StatNameStyleRule()
        : Rule("stat-name-style",
               "stat names at Registry registration sites "
               "(.counter/.gauge/.gaugeInt/.histogram) are "
               "lower_snake_case per src/stats/DESIGN.md",
               Severity::Error)
    {}

    void
    check(const SourceFile &f, std::vector<Finding> &out) const override
    {
        const auto &t = f.tokens;
        for (size_t i = 0; i + 2 < t.size(); ++i) {
            if (t[i].kind != TokKind::Identifier ||
                !anyOf(t[i].text,
                       {"counter", "gauge", "gaugeInt", "histogram"}))
                continue;
            const Token &prev = at(t, i ? i - 1 : t.size());
            if (!(isPunct(prev, ".") || isPunct(prev, "->")))
                continue;
            if (!isPunct(t[i + 1], "(") ||
                t[i + 2].kind != TokKind::String)
                continue;
            const std::string &name = t[i + 2].text;
            if (!snakeCase(name)) {
                report(out, f, t[i + 2].line,
                       "stat name \"" + name +
                           "\" is not lower_snake_case "
                           "([a-z][a-z0-9_]*, no trailing or "
                           "double underscore)");
            }
        }
    }

  private:
    static bool
    snakeCase(const std::string &s)
    {
        if (s.empty() || !std::islower(static_cast<unsigned char>(s[0])))
            return false;
        char last = 0;
        for (char c : s) {
            bool ok = std::islower(static_cast<unsigned char>(c)) ||
                      std::isdigit(static_cast<unsigned char>(c)) ||
                      c == '_';
            if (!ok || (c == '_' && last == '_'))
                return false;
            last = c;
        }
        return s.back() != '_';
    }
};

// ---------------------------------------------- raw-serialization

class RawSerializationRule : public Rule
{
  public:
    RawSerializationRule()
        : Rule("raw-serialization",
               "no raw-byte file I/O (fwrite/fread) outside the "
               "versioned-format owners: src/ckpt and src/trace "
               "(KILOCKPT/KILOTRC) and src/obs/audit.cc (KILOAUD)",
               Severity::Error)
    {}

    bool
    appliesTo(const SourceFile &f) const override
    {
        // bench/ and examples/ are out of scope: only the portable
        // rules (nondeterminism, header-hygiene, stat-name-style)
        // extend there — demo code writing a scratch file is not a
        // format-ownership violation. src/obs/audit.cc is the third
        // format owner: it carries the KILOAUD magic/version/checksum
        // container end to end (src/obs/audit.hh).
        return !pathInDir(f.path, "src/ckpt") &&
               !pathInDir(f.path, "src/trace") &&
               !pathInDir(f.path, "bench") &&
               !pathInDir(f.path, "examples") &&
               f.path.find("src/obs/audit.cc") == std::string::npos;
    }

    void
    check(const SourceFile &f, std::vector<Finding> &out) const override
    {
        const auto &t = f.tokens;
        for (size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != TokKind::Identifier ||
                !anyOf(t[i].text, {"fwrite", "fread"}))
                continue;
            const Token &prev = at(t, i ? i - 1 : t.size());
            if (isPunct(prev, ".") || isPunct(prev, "->"))
                continue;  // member function of some stream class
            if (!isPunct(at(t, i + 1), "("))
                continue;
            report(out, f, t[i].line,
                   t[i].text +
                       "() outside src/ckpt and src/trace: raw bytes "
                       "on disk need a versioned, checksummed "
                       "format owner");
        }
    }
};

// ------------------------------------------------- header-hygiene

class HeaderHygieneRule : public Rule
{
  public:
    HeaderHygieneRule()
        : Rule("header-hygiene",
               "headers start with #pragma once and never contain "
               "using namespace; std::endl is banned everywhere "
               "(flush per line)",
               Severity::Error)
    {}

    void
    check(const SourceFile &f, std::vector<Finding> &out) const override
    {
        const auto &t = f.tokens;
        if (f.isHeader) {
            bool pragmaOnce = false;
            for (const auto &tok : t) {
                if (tok.kind == TokKind::Directive &&
                    tok.text == "pragma once") {
                    pragmaOnce = true;
                    break;
                }
            }
            if (!pragmaOnce)
                report(out, f, 1, "header is missing #pragma once");
        }
        for (size_t i = 0; i + 1 < t.size(); ++i) {
            if (f.isHeader && t[i].kind == TokKind::Identifier &&
                t[i].text == "using" &&
                t[i + 1].kind == TokKind::Identifier &&
                t[i + 1].text == "namespace") {
                report(out, f, t[i].line,
                       "using namespace in a header leaks into "
                       "every includer");
            }
            if (t[i].kind == TokKind::Identifier &&
                t[i].text == "endl" && i > 0 &&
                isPunct(t[i - 1], "::")) {
                report(out, f, t[i].line,
                       "std::endl flushes the stream; write '\\n'");
            }
        }
    }
};

// --------------------------------------------- unused-suppression

/**
 * Placeholder for --list and the severity table: the findings are
 * produced by Linter::lintSource itself, which is the only place
 * that knows whether an annotation fired.
 */
class UnusedSuppressionRule : public Rule
{
  public:
    UnusedSuppressionRule()
        : Rule("unused-suppression",
               "a // kilolint: allow(<rule>) annotation that "
               "suppressed no finding is stale and must be removed",
               Severity::Warning)
    {}

    void
    check(const SourceFile &, std::vector<Finding> &) const override
    {}
};

} // anonymous namespace

RuleRegistry
RuleRegistry::builtin()
{
    RuleRegistry reg;
    reg.add(std::make_unique<HotPathAllocRule>());
    reg.add(std::make_unique<NondeterminismRule>());
    reg.add(std::make_unique<StatNameStyleRule>());
    reg.add(std::make_unique<RawSerializationRule>());
    reg.add(std::make_unique<HeaderHygieneRule>());
    reg.add(std::make_unique<UnusedSuppressionRule>());
    addModelRules(reg);
    return reg;
}

} // namespace kilo::lint
