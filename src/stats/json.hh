/**
 * @file
 * Generic JSONL emission from stats snapshots.
 *
 * One JsonRowBuilder produces one row: identity fields first (machine,
 * workload, optionally an interval index), then every Row::Yes entry
 * of a Snapshot in registration order. Doubles are serialised with
 * round-trip (precision 17) formatting, integers exactly — the same
 * bytes the hand-written emitter produced, which is what keeps the
 * JSONL schema stable across the registry redesign.
 */

#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

#include "src/stats/snapshot.hh"

namespace kilo::stats
{

/** Builds one JSON object, emitted as a single line. */
class JsonRowBuilder
{
  public:
    JsonRowBuilder();

    /** Append a string field. */
    JsonRowBuilder &field(std::string_view key, std::string_view value);

    /** Append an integer field. */
    JsonRowBuilder &field(std::string_view key, uint64_t value);

    /** Append a real field (round-trip precision). */
    JsonRowBuilder &field(std::string_view key, double value);

    /** Append one snapshot value under its own name. */
    JsonRowBuilder &field(const Snapshot::Entry &entry);

    /** Append every Row::Yes snapshot entry, in order. */
    JsonRowBuilder &rowStats(const Snapshot &snapshot);

    /** Finish the object: "{...}". */
    std::string str() const;

  private:
    void key(std::string_view k);

    std::ostringstream os;
    bool first = true;
};

} // namespace kilo::stats

