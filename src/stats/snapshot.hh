/**
 * @file
 * Point-in-time values of a run's registered statistics.
 *
 * A Snapshot is a flat, ordered copy of every stat a stats::Registry
 * knows about: name, kind, row membership and current value. It is
 * what RunResult carries instead of hand-maintained fields, what the
 * generic JSONL emitter iterates, and what interval sampling stores
 * once per RunConfig::intervalInsts committed instructions.
 */

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kilo::stats
{

/** What a registered statistic is. */
enum class Kind : uint8_t
{
    Counter,    ///< monotonically incremented integer, zeroed on reset
    Gauge,      ///< derived value, computed on demand, never reset
    Histogram,  ///< bucketed distribution (util::Histogram)
};

/** Name of a Kind for schema dumps. */
const char *kindName(Kind kind);

/**
 * One numeric value. Integer-valued stats keep their exact uint64
 * representation so JSON emission is bit-faithful; real-valued stats
 * carry a double.
 */
struct Value
{
    bool real = false;  ///< true: read d; false: read u
    uint64_t u = 0;
    double d = 0.0;

    /** Numeric view regardless of representation. */
    double
    asDouble() const
    {
        return real ? d : double(u);
    }

    static Value
    ofInt(uint64_t v)
    {
        Value val;
        val.u = v;
        return val;
    }

    static Value
    ofReal(double v)
    {
        Value val;
        val.real = true;
        val.d = v;
        return val;
    }
};

/** Ordered point-in-time copy of every registered stat. */
struct Snapshot
{
    struct Entry
    {
        std::string name;
        Kind kind = Kind::Counter;
        bool inRow = false;  ///< member of the stable JSONL row schema
        Value value;
    };

    std::vector<Entry> entries;

    bool empty() const { return entries.empty(); }

    /** Entry by name, nullptr when absent. */
    const Entry *find(std::string_view name) const;

    /** Numeric value by name; 0.0 when absent. */
    double value(std::string_view name) const;
};

/**
 * One interval-sampling row (RunConfig::intervalInsts): cumulative
 * measured-region position, the delta since the previous sample, and
 * a full cumulative Snapshot taken at the boundary.
 */
struct IntervalSample
{
    uint64_t index = 0;           ///< 0-based interval number
    uint64_t cycles = 0;          ///< cumulative measured cycles
    uint64_t committed = 0;       ///< cumulative measured instructions
    uint64_t deltaCycles = 0;     ///< cycles in this interval
    uint64_t deltaCommitted = 0;  ///< instructions in this interval
    Snapshot snapshot;            ///< cumulative stats at the boundary

    /** IPC of this interval alone (the IPC-over-time series). */
    double
    intervalIpc() const
    {
        return deltaCycles ? double(deltaCommitted) / double(deltaCycles)
                           : 0.0;
    }
};

} // namespace kilo::stats

