/**
 * @file
 * Self-describing statistics registry.
 *
 * Components (core pipeline, memory hierarchy, the decoupled D-KIP /
 * KILO structures) register each statistic once, with a name and a
 * description, against the per-run Registry their PipelineBase owns:
 *
 *     reg.counter("cycles", "Simulated cycles", &st.cycles,
 *                 stats::Row::Yes);
 *     reg.gauge("ipc", "Committed instructions per cycle",
 *               [this] { return st.ipc(); }, stats::Row::Yes);
 *     reg.histogram("issue_latency", "Decode->issue distance",
 *                   &st.issueLatency);
 *
 * Counters and histograms stay plain fields on their owning component
 * — the hot loop keeps incrementing raw uint64_t's; the registry only
 * holds bindings. What registration buys:
 *
 *   - snapshot(): an ordered, typed copy of every value (RunResult,
 *     interval sampling, generic JSONL emission);
 *   - reset(): registry-driven zeroing at the end of warm-up —
 *     counters are zeroed and histograms reset *in place*, so bucket
 *     configuration is never reconstructed;
 *   - defs(): the self-describing schema (tools/stats_schema, whose
 *     golden dump CI diffs to catch accidental JSONL drift).
 *
 * Entries registered with Row::Yes form the stable JSONL row schema,
 * emitted in registration order; see src/stats/DESIGN.md for the
 * naming scheme and the schema stability policy.
 *
 * Duplicate names panic: two components claiming one name is a
 * simulator bug, never a runtime condition.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/stats/snapshot.hh"
#include "src/util/histogram.hh"

namespace kilo::stats
{

/** Whether a stat belongs to the stable JSONL row schema. */
enum class Row : uint8_t
{
    No,
    Yes,
};

/** Per-run binding of names/descriptions to component statistics. */
class Registry
{
  public:
    /** One registered statistic. */
    struct Def
    {
        std::string name;
        std::string description;
        Kind kind = Kind::Counter;
        bool inRow = false;
        bool integer = true;  ///< value representation in snapshots

        uint64_t *counter = nullptr;            ///< Kind::Counter
        std::function<double()> realGauge;      ///< Kind::Gauge, real
        std::function<uint64_t()> intGauge;     ///< Kind::Gauge, int
        Histogram *hist = nullptr;              ///< Kind::Histogram
    };

    Registry() = default;

    /** Bindings point into the owning component; never copy. @{ */
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;
    /** @} */

    /** Register a zero-on-reset integer counter. */
    void counter(std::string name, std::string description,
                 uint64_t *src, Row row = Row::No);

    /** Register a derived real-valued gauge (never reset). */
    void gauge(std::string name, std::string description,
               std::function<double()> fn, Row row = Row::No);

    /** Register a derived integer-valued gauge (never reset). */
    void gaugeInt(std::string name, std::string description,
                  std::function<uint64_t()> fn, Row row = Row::No);

    /**
     * Register a histogram. Reset in place on reset() — bucket width
     * and count are preserved. Snapshots carry its sample count;
     * derived summaries (percentiles) are registered as gauges.
     */
    void histogram(std::string name, std::string description,
                   Histogram *hist);

    /** Registered definitions, in registration order. */
    const std::vector<Def> &defs() const { return defs_; }

    size_t size() const { return defs_.size(); }

    /** Current value of @p def. */
    static Value read(const Def &def);

    /** Ordered copy of every current value. */
    Snapshot snapshot() const;

    /**
     * Fold every current value into @p h (FNV-style multiply-mix, in
     * registration order) and return the result. Allocation-free —
     * the audit plane calls this at interval boundaries, so it must
     * never perturb the run it is hashing. Real-valued gauges
     * contribute their exact bit pattern: determinism auditing wants
     * "the same bits", not "approximately equal".
     */
    uint64_t foldValues(uint64_t h) const;

    /**
     * Zero every counter and reset every histogram in place; gauges
     * are derived and therefore untouched.
     */
    void reset() const;

  private:
    void add(Def def);

    std::vector<Def> defs_;
};

} // namespace kilo::stats

