#include "src/stats/registry.hh"

#include <cstring>

#include "src/util/logging.hh"

namespace kilo::stats
{

const char *
kindName(Kind kind)
{
    switch (kind) {
      case Kind::Counter: return "counter";
      case Kind::Gauge: return "gauge";
      case Kind::Histogram: return "histogram";
    }
    KILO_PANIC("unknown stats::Kind");
}

const Snapshot::Entry *
Snapshot::find(std::string_view name) const
{
    for (const auto &e : entries) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

double
Snapshot::value(std::string_view name) const
{
    const Entry *e = find(name);
    return e ? e->value.asDouble() : 0.0;
}

void
Registry::add(Def def)
{
    for (const auto &existing : defs_) {
        if (existing.name == def.name) {
            KILO_PANIC("stat '%s' registered twice "
                       "(\"%s\" vs \"%s\")",
                       def.name.c_str(),
                       existing.description.c_str(),
                       def.description.c_str());
        }
    }
    defs_.push_back(std::move(def));
}

void
Registry::counter(std::string name, std::string description,
                  uint64_t *src, Row row)
{
    KILO_ASSERT(src != nullptr, "null counter source for '%s'",
                name.c_str());
    Def def;
    def.name = std::move(name);
    def.description = std::move(description);
    def.kind = Kind::Counter;
    def.inRow = row == Row::Yes;
    def.integer = true;
    def.counter = src;
    add(std::move(def));
}

void
Registry::gauge(std::string name, std::string description,
                std::function<double()> fn, Row row)
{
    Def def;
    def.name = std::move(name);
    def.description = std::move(description);
    def.kind = Kind::Gauge;
    def.inRow = row == Row::Yes;
    def.integer = false;
    def.realGauge = std::move(fn);
    add(std::move(def));
}

void
Registry::gaugeInt(std::string name, std::string description,
                   std::function<uint64_t()> fn, Row row)
{
    Def def;
    def.name = std::move(name);
    def.description = std::move(description);
    def.kind = Kind::Gauge;
    def.inRow = row == Row::Yes;
    def.integer = true;
    def.intGauge = std::move(fn);
    add(std::move(def));
}

void
Registry::histogram(std::string name, std::string description,
                    Histogram *hist)
{
    KILO_ASSERT(hist != nullptr, "null histogram for '%s'",
                name.c_str());
    Def def;
    def.name = std::move(name);
    def.description = std::move(description);
    def.kind = Kind::Histogram;
    def.inRow = false;
    def.integer = true;
    def.hist = hist;
    add(std::move(def));
}

Value
Registry::read(const Def &def)
{
    switch (def.kind) {
      case Kind::Counter:
        return Value::ofInt(*def.counter);
      case Kind::Gauge:
        return def.integer ? Value::ofInt(def.intGauge())
                           : Value::ofReal(def.realGauge());
      case Kind::Histogram:
        return Value::ofInt(def.hist->samples());
    }
    KILO_PANIC("unknown stats::Kind");
}

Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    snap.entries.reserve(defs_.size());
    for (const auto &def : defs_) {
        Snapshot::Entry e;
        e.name = def.name;
        e.kind = def.kind;
        e.inRow = def.inRow;
        e.value = read(def);
        snap.entries.push_back(std::move(e));
    }
    return snap;
}

uint64_t
Registry::foldValues(uint64_t h) const
{
    constexpr uint64_t prime = 1099511628211ull;
    for (const auto &def : defs_) {
        Value v = read(def);
        uint64_t bits;
        if (v.real) {
            double d = v.d;
            std::memcpy(&bits, &d, sizeof(bits));
        } else {
            bits = v.u;
        }
        h = (h ^ bits) * prime;
    }
    return h;
}

void
Registry::reset() const
{
    for (const auto &def : defs_) {
        switch (def.kind) {
          case Kind::Counter:
            *def.counter = 0;
            break;
          case Kind::Histogram:
            // In place: bucket width and count survive the reset.
            def.hist->reset();
            break;
          case Kind::Gauge:
            break;
        }
    }
}

} // namespace kilo::stats
