#include "src/stats/json.hh"

namespace kilo::stats
{

JsonRowBuilder::JsonRowBuilder()
{
    os.precision(17); // round-trip exact doubles
    os << "{";
}

void
JsonRowBuilder::key(std::string_view k)
{
    if (!first)
        os << ",";
    first = false;
    os << "\"" << k << "\":";
}

JsonRowBuilder &
JsonRowBuilder::field(std::string_view k, std::string_view value)
{
    key(k);
    os << "\"" << value << "\"";
    return *this;
}

JsonRowBuilder &
JsonRowBuilder::field(std::string_view k, uint64_t value)
{
    key(k);
    os << value;
    return *this;
}

JsonRowBuilder &
JsonRowBuilder::field(std::string_view k, double value)
{
    key(k);
    os << value;
    return *this;
}

JsonRowBuilder &
JsonRowBuilder::field(const Snapshot::Entry &entry)
{
    if (entry.value.real)
        return field(entry.name, entry.value.d);
    return field(entry.name, entry.value.u);
}

JsonRowBuilder &
JsonRowBuilder::rowStats(const Snapshot &snapshot)
{
    for (const auto &entry : snapshot.entries) {
        if (entry.inRow)
            field(entry);
    }
    return *this;
}

std::string
JsonRowBuilder::str() const
{
    return os.str() + "}";
}

} // namespace kilo::stats
