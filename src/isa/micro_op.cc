#include "src/isa/micro_op.hh"

#include <cstdio>

#include "src/util/logging.hh"

namespace kilo::isa
{

int
opLatency(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return 1;
      case OpClass::IntMul: return 3;
      case OpClass::FpAdd:  return 2;
      case OpClass::FpMul:  return 4;
      case OpClass::FpDiv:  return 12;
      case OpClass::Load:   return 0;   // determined by the hierarchy
      case OpClass::Store:  return 1;
      case OpClass::Branch: return 1;
      case OpClass::Nop:    return 1;
    }
    KILO_PANIC("unknown OpClass");
}

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "alu";
      case OpClass::IntMul: return "mul";
      case OpClass::FpAdd:  return "fadd";
      case OpClass::FpMul:  return "fmul";
      case OpClass::FpDiv:  return "fdiv";
      case OpClass::Load:   return "load";
      case OpClass::Store:  return "store";
      case OpClass::Branch: return "br";
      case OpClass::Nop:    return "nop";
    }
    KILO_PANIC("unknown OpClass");
}

bool
isFpClass(OpClass cls)
{
    return cls == OpClass::FpAdd || cls == OpClass::FpMul ||
           cls == OpClass::FpDiv;
}

std::string
MicroOp::toString() const
{
    char buf[128];
    if (isMem()) {
        std::snprintf(buf, sizeof(buf), "%s r%d <- [r%d] @%#lx",
                      opClassName(cls), dst, src1,
                      (unsigned long)effAddr);
    } else if (isBranch()) {
        std::snprintf(buf, sizeof(buf), "br r%d %s -> %#lx", src1,
                      taken ? "T" : "N", (unsigned long)target);
    } else {
        std::snprintf(buf, sizeof(buf), "%s r%d <- r%d, r%d",
                      opClassName(cls), dst, src1, src2);
    }
    return buf;
}

std::string
MicroOpHot::toString() const
{
    char buf[128];
    if (isMem()) {
        std::snprintf(buf, sizeof(buf), "%s r%d <- [r%d] @%#lx",
                      opClassName(cls), dst, src1,
                      (unsigned long)effAddr);
    } else if (isBranch()) {
        std::snprintf(buf, sizeof(buf), "br r%d", src1);
    } else {
        std::snprintf(buf, sizeof(buf), "%s r%d <- r%d, r%d",
                      opClassName(cls), dst, src1, src2);
    }
    return buf;
}

MicroOp
makeAlu(int16_t dst, int16_t src1, int16_t src2, uint64_t pc)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::IntAlu;
    op.dst = dst;
    op.src1 = src1;
    op.src2 = src2;
    return op;
}

MicroOp
makeMul(int16_t dst, int16_t src1, int16_t src2, uint64_t pc)
{
    MicroOp op = makeAlu(dst, src1, src2, pc);
    op.cls = OpClass::IntMul;
    return op;
}

MicroOp
makeFpAdd(int16_t dst, int16_t src1, int16_t src2, uint64_t pc)
{
    MicroOp op = makeAlu(dst, src1, src2, pc);
    op.cls = OpClass::FpAdd;
    return op;
}

MicroOp
makeFpMul(int16_t dst, int16_t src1, int16_t src2, uint64_t pc)
{
    MicroOp op = makeAlu(dst, src1, src2, pc);
    op.cls = OpClass::FpMul;
    return op;
}

MicroOp
makeFpDiv(int16_t dst, int16_t src1, int16_t src2, uint64_t pc)
{
    MicroOp op = makeAlu(dst, src1, src2, pc);
    op.cls = OpClass::FpDiv;
    return op;
}

MicroOp
makeLoad(int16_t dst, int16_t addr_reg, uint64_t eff_addr, uint64_t pc)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Load;
    op.dst = dst;
    op.src1 = addr_reg;
    op.effAddr = eff_addr;
    return op;
}

MicroOp
makeStore(int16_t addr_reg, int16_t data_reg, uint64_t eff_addr,
          uint64_t pc)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Store;
    op.src1 = addr_reg;
    op.src2 = data_reg;
    op.effAddr = eff_addr;
    return op;
}

MicroOp
makeBranch(int16_t src1, bool taken, uint64_t target, uint64_t pc)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Branch;
    op.src1 = src1;
    op.taken = taken;
    op.target = target;
    return op;
}

MicroOp
makeNop(uint64_t pc)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Nop;
    return op;
}

} // namespace kilo::isa
