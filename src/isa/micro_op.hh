/**
 * @file
 * The synthetic micro-op ISA consumed by every core model.
 *
 * The paper evaluates Alpha binaries under SimpleScalar; this library
 * substitutes a compact trace-level ISA that carries everything the
 * timing models need: register dataflow, operation latency class,
 * effective addresses for memory operations and resolved outcomes for
 * branches. Like Alpha, an instruction reads at most two registers and
 * writes at most one, which is the property the LLRF's
 * one-READY-operand-per-instruction pre-allocation relies on.
 */

#pragma once

#include <cstdint>
#include <string>

namespace kilo::isa
{

/** Number of integer logical registers (r0..r31). */
constexpr int NumIntRegs = 32;

/** Number of floating-point logical registers (f0..f31). */
constexpr int NumFpRegs = 32;

/** Total logical register namespace; FP registers follow integer. */
constexpr int NumRegs = NumIntRegs + NumFpRegs;

/** Sentinel meaning "no register". */
constexpr int16_t NoReg = -1;

/** First FP register id in the unified namespace. */
constexpr int16_t FirstFpReg = NumIntRegs;

/** True when @p reg names a floating-point register. */
inline bool
isFpReg(int16_t reg)
{
    return reg >= FirstFpReg;
}

/** Operation classes; each maps to a functional unit type. */
enum class OpClass : uint8_t
{
    IntAlu,     ///< single-cycle integer ALU op
    IntMul,     ///< pipelined integer multiply
    FpAdd,      ///< FP add/sub/compare
    FpMul,      ///< FP multiply
    FpDiv,      ///< FP divide / sqrt (unpipelined)
    Load,       ///< memory read
    Store,      ///< memory write
    Branch,     ///< conditional or unconditional control transfer
    Nop,        ///< no-op (padding)
};

/** Number of OpClass values. */
constexpr int NumOpClasses = 9;

/** Execution latency in cycles of each op class, excluding memory. */
int opLatency(OpClass cls);

/** Human-readable mnemonic of an op class. */
const char *opClassName(OpClass cls);

/** True for op classes handled by floating-point pipelines. */
bool isFpClass(OpClass cls);

/**
 * One dynamic instruction in a trace.
 *
 * Micro-ops are produced by workload generators (src/wload) and carry
 * the *resolved* execution facts: the effective address a memory op
 * touches and the direction a branch actually goes. The timing models
 * never see values, only dataflow and these facts.
 */
struct MicroOp
{
    uint64_t pc = 0;          ///< instruction address
    OpClass cls = OpClass::Nop;
    int16_t src1 = NoReg;     ///< first source register or NoReg
    int16_t src2 = NoReg;     ///< second source register or NoReg
    int16_t dst = NoReg;      ///< destination register or NoReg
    uint64_t effAddr = 0;     ///< effective address (Load/Store)
    uint8_t memSize = 8;      ///< access size in bytes (Load/Store)
    bool taken = false;       ///< resolved direction (Branch)
    uint64_t target = 0;      ///< resolved target (Branch)

    /** Field-wise equality (trace round-trip verification). */
    bool operator==(const MicroOp &other) const = default;

    /** True for loads and stores. */
    bool isMem() const
    {
        return cls == OpClass::Load || cls == OpClass::Store;
    }

    /** True for loads. */
    bool isLoad() const { return cls == OpClass::Load; }

    /** True for stores. */
    bool isStore() const { return cls == OpClass::Store; }

    /** True for branches. */
    bool isBranch() const { return cls == OpClass::Branch; }

    /** True when routed to FP structures (FP LLIB / FP MP). */
    bool
    isFp() const
    {
        if (cls == OpClass::Load || cls == OpClass::Store)
            return dst != NoReg ? isFpReg(dst)
                                : (src2 != NoReg && isFpReg(src2));
        return isFpClass(cls);
    }

    /** Number of register sources. */
    int
    numSrcs() const
    {
        return (src1 != NoReg ? 1 : 0) + (src2 != NoReg ? 1 : 0);
    }

    /** Debug rendering, e.g. "load r3 <- [r1] @0x1000". */
    std::string toString() const;
};

/**
 * The hot subset of a MicroOp carried inside the in-flight DynInst
 * record: exactly the fields the per-cycle loops read (dataflow,
 * class, effective address). The cold facts — pc and branch target —
 * move to the DynInstCold record at fetch, and the resolved branch
 * direction is recomputed from the prediction bits
 * (taken == predTaken ^ mispredicted), keeping the hot record inside
 * one cache line.
 *
 * Implicitly convertible from MicroOp so `inst.op = op` keeps working
 * at every fetch/test site.
 */
struct MicroOpHot
{
    uint64_t effAddr = 0;     ///< effective address (Load/Store)
    int16_t src1 = NoReg;     ///< first source register or NoReg
    int16_t src2 = NoReg;     ///< second source register or NoReg
    int16_t dst = NoReg;      ///< destination register or NoReg
    OpClass cls = OpClass::Nop;
    uint8_t memSize = 8;      ///< access size in bytes (Load/Store)

    constexpr MicroOpHot() = default;

    /** Implicit: slicing a full MicroOp down to the hot fields. */
    constexpr MicroOpHot(const MicroOp &op)
        : effAddr(op.effAddr), src1(op.src1), src2(op.src2),
          dst(op.dst), cls(op.cls), memSize(op.memSize)
    {}

    /** True for loads and stores. */
    bool isMem() const
    {
        return cls == OpClass::Load || cls == OpClass::Store;
    }

    /** True for loads. */
    bool isLoad() const { return cls == OpClass::Load; }

    /** True for stores. */
    bool isStore() const { return cls == OpClass::Store; }

    /** True for branches. */
    bool isBranch() const { return cls == OpClass::Branch; }

    /** True when routed to FP structures (FP LLIB / FP MP). */
    bool
    isFp() const
    {
        if (cls == OpClass::Load || cls == OpClass::Store)
            return dst != NoReg ? isFpReg(dst)
                                : (src2 != NoReg && isFpReg(src2));
        return isFpClass(cls);
    }

    /** Number of register sources. */
    int
    numSrcs() const
    {
        return (src1 != NoReg ? 1 : 0) + (src2 != NoReg ? 1 : 0);
    }

    /** Debug rendering (no pc/target — those live in the cold
     *  record), e.g. "load r3 <- [r1] @0x1000". */
    std::string toString() const;
};

static_assert(sizeof(MicroOpHot) == 16,
              "MicroOpHot must stay a 16-byte record; the DynInst "
              "one-cache-line layout depends on it");

/** Convenience builders used by generators and unit tests. @{ */
MicroOp makeAlu(int16_t dst, int16_t src1, int16_t src2, uint64_t pc = 0);
MicroOp makeMul(int16_t dst, int16_t src1, int16_t src2, uint64_t pc = 0);
MicroOp makeFpAdd(int16_t dst, int16_t src1, int16_t src2,
                  uint64_t pc = 0);
MicroOp makeFpMul(int16_t dst, int16_t src1, int16_t src2,
                  uint64_t pc = 0);
MicroOp makeFpDiv(int16_t dst, int16_t src1, int16_t src2,
                  uint64_t pc = 0);
MicroOp makeLoad(int16_t dst, int16_t addr_reg, uint64_t eff_addr,
                 uint64_t pc = 0);
MicroOp makeStore(int16_t addr_reg, int16_t data_reg, uint64_t eff_addr,
                  uint64_t pc = 0);
MicroOp makeBranch(int16_t src1, bool taken, uint64_t target,
                   uint64_t pc = 0);
MicroOp makeNop(uint64_t pc = 0);
/** @} */

} // namespace kilo::isa

