/**
 * @file
 * Traditional KILO-instruction processor baseline (Cristal et al.,
 * HPCA 2004 — reference [9] of the paper).
 *
 * A centralised machine with a pseudo-ROB: instructions drain past
 * the head a fixed timer after decode, exactly like the D-KIP's
 * Aging-ROB, but long-latency slices move to the Slow Lane
 * Instruction Queue (SLIQ) — a large *out-of-order* secondary queue
 * with global wakeup that issues to the same functional units. This
 * is the KILO-1024 configuration of the paper's Figure 9: better on
 * pointer chasing than the FIFO LLIB, but paying for a 1024-entry
 * CAM and the ephemeral-register machinery.
 */

#pragma once

#include "src/core/ooo_core.hh"
#include "src/dkip/checkpoint_stack.hh"
#include "src/util/bit_vector.hh"

namespace kilo::kilo_proc
{

/** Parameters of the KILO baseline. */
struct KiloParams
{
    /** Front core (pseudo-ROB 64, 72-entry issue queues). */
    core::CoreParams cp;

    int robTimer = 16;          ///< pseudo-ROB drain timer
    int analyzeWidth = 4;
    size_t sliqCapacity = 1024;
    int sliqIssueWidth = 4;
    size_t checkpointCapacity = 16;
    int recoveryExtraPenalty = 8;

    /** The KILO-1024 configuration of Figure 9. */
    static KiloParams kilo1024();
};

/** Checkpointed out-of-order-commit processor with a SLIQ. */
class KiloCore : public core::OooCore
{
  public:
    using InstRef = core::InstRef;

    KiloCore(const KiloParams &params, wload::Workload &workload,
             const mem::MemConfig &mem_config);

    /** SLIQ occupancy (tests). */
    size_t sliqOccupancy() const { return sliq.size(); }

    /** Checkpoint stack (tests). */
    const dkip::CheckpointStack &checkpoints() const { return chkpt; }

  protected:
    void tick() override;
    void onCommitInst(InstRef inst) override;
    void onSquashInst(InstRef inst) override;
    void onBranchResolved(InstRef inst) override;
    void onRecovered(InstRef branch) override;
    int recoveryExtraPenalty(InstRef branch) const override;
    size_t totalReady() const override;
    void beginCycleQueues() override;
    uint64_t nextTimedWake() const override;
    core::StallReason
    refineStallReason(const core::DynInst &head,
                      core::StallReason r) const override;
    void saveDerived(ckpt::Sink &s) const override;
    void restoreDerived(ckpt::Source &s) override;

    void stageAnalyze();

  private:
    bool sourcesLongLatency(const core::DynInst &inst) const;
    bool moveToSliq(InstRef ref);

    KiloParams kprm;
    BitVector llbv;
    core::IssueQueue sliq;
    dkip::CheckpointStack chkpt;
};

} // namespace kilo::kilo_proc

