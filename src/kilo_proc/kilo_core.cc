#include "src/kilo_proc/kilo_core.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace kilo::kilo_proc
{

KiloParams
KiloParams::kilo1024()
{
    KiloParams p;
    p.cp.name = "kilo-1024";
    p.cp.robSize = 64;          // pseudo-ROB
    p.cp.intIqSize = 72;
    p.cp.fpIqSize = 72;
    p.cp.commitWidth = 8;       // checkpointed bulk retirement
    return p;
}

KiloCore::KiloCore(const KiloParams &params, wload::Workload &wl,
                   const mem::MemConfig &mem_config)
    : core::OooCore(params.cp, wl, mem_config),
      kprm(params),
      llbv(isa::NumRegs),
      sliq("sliq", params.sliqCapacity,
           core::SchedPolicy::OutOfOrder, arena),
      chkpt(params.checkpointCapacity)
{
    registerIssueQueue(sliq);

    // SLIQ statistics: the KILO baseline stores its slow-lane
    // accounting in the shared llib*/analyze CoreStats fields, but
    // names them for what they measure on this machine (they only
    // appear in the KILO stats schema).
    auto &r = statsReg;
    r.counter("sliq_inserted_int",
              "Low-locality int instructions moved to the SLIQ",
              &st.llibInsertedInt);
    r.counter("sliq_inserted_fp",
              "Low-locality FP instructions moved to the SLIQ",
              &st.llibInsertedFp);
    r.counter("analyze_stall_cycles",
              "Cycles the Analyze stage stalled the pseudo-ROB drain",
              &st.analyzeStallCycles);
    r.counter("sliq_full_stalls",
              "Analyze stalls because the SLIQ was full",
              &st.llibFullStalls);
    r.counter("checkpoint_skips",
              "SLIQ branches with no free checkpoint entry",
              &st.checkpointSkips);
    r.counter("checkpoints_taken", "Checkpoints taken at SLIQ branches",
              &st.checkpointsTaken);
    r.counter("max_sliq_instrs", "Peak SLIQ occupancy",
              &st.maxLlibInstrsInt);
    r.gaugeInt("sliq_occupancy", "Current SLIQ entries",
               [this] { return uint64_t(sliq.size()); });
    r.gaugeInt("checkpoint_depth", "Live checkpoint-stack entries",
               [this] { return uint64_t(chkpt.size()); });
}

void
KiloCore::beginCycleQueues()
{
    core::OooCore::beginCycleQueues();
    sliq.beginCycle();
}

size_t
KiloCore::totalReady() const
{
    return core::OooCore::totalReady() + sliq.numReady();
}

core::StallReason
KiloCore::refineStallReason(const core::DynInst &head,
                            core::StallReason r) const
{
    using R = core::StallReason;
    // A head waiting in the SLIQ belongs to the checkpointed slow
    // lane; charge its slots to the decoupled machinery rather than
    // the front core's dataflow or issue bandwidth.
    if ((r == R::Depend || r == R::Issue) && head.execInMp)
        return R::Decoupled;
    return r;
}

uint64_t
KiloCore::nextTimedWake() const
{
    uint64_t wake = core::OooCore::nextTimedWake();
    if (!rob.empty()) {
        wake = std::min(wake,
                        arena.cold(rob.front()).dispatchCycle +
                            uint64_t(kprm.robTimer));
    }
    return wake;
}

bool
KiloCore::sourcesLongLatency(const core::DynInst &inst) const
{
    int16_t s1 = inst.op.src1;
    int16_t s2 = inst.op.src2;
    return (s1 != isa::NoReg && llbv.test(size_t(s1))) ||
           (s2 != isa::NoReg && llbv.test(size_t(s2)));
}

bool
KiloCore::moveToSliq(InstRef ref)
{
    core::DynInst &inst = arena.get(ref);
    if (sliq.full()) {
        ++st.llibFullStalls;
        return false;
    }
    if (inst.op.isBranch()) {
        if (chkpt.full()) {
            ++st.checkpointSkips;
        } else {
            chkpt.push(inst.seq, llbv);
            ++st.checkpointsTaken;
            obsEvent(obs::EventKind::CkptCreate, inst.seq,
                     chkpt.size());
        }
    }
    if (core::IssueQueue *iq = queueById(inst.iqId))
        iq->erase(ref);
    if (inst.op.dst != isa::NoReg)
        llbv.set(size_t(inst.op.dst));
    inst.longLatency = true;
    inst.execInMp = true;       // "slow lane" execution
    obsEvent(obs::EventKind::Park, inst.seq, 0,
             inst.op.isFp() ? 1 : 0);
    sliq.insert(ref);
    if (inst.op.isFp())
        ++st.llibInsertedFp;
    else
        ++st.llibInsertedInt;
    return true;
}

void
KiloCore::stageAnalyze()
{
    int budget = kprm.analyzeWidth;
    while (budget > 0 && !rob.empty()) {
        InstRef headRef = rob.front();
        core::DynInst &head = arena.get(headRef);
        if (now <
            arena.coldOf(head).dispatchCycle + uint64_t(kprm.robTimer))
            break;

        if (head.completed) {
            if (head.op.dst != isa::NoReg)
                llbv.clear(size_t(head.op.dst));
            rob.popFront();
            releaseAgingRobEntry(head);
            --budget;
            ++activity;
            continue;
        }

        if (head.op.isLoad() && head.issued) {
            if (head.longLatency) {
                if (head.op.dst != isa::NoReg)
                    llbv.set(size_t(head.op.dst));
                rob.popFront();
                releaseAgingRobEntry(head);
                --budget;
                ++activity;
                continue;
            }
            ++st.analyzeStallCycles;
            break;
        }

        if (head.issued) {
            // Already executing: short latency; wait for writeback.
            ++st.analyzeStallCycles;
            break;
        }

        bool low = sourcesLongLatency(head);
        if (!low && head.op.isLoad() && !head.issued) {
            auto check = lsq.checkLoad(head);
            if (check.kind == core::LoadCheck::Kind::Blocked) {
                const core::DynInst &st_ = arena.get(check.store);
                if (st_.execInMp || st_.longLatency)
                    low = true;
            }
        }

        if (low) {
            if (!moveToSliq(headRef))
                break;
            rob.popFront();
            releaseAgingRobEntry(head);
            --budget;
            ++activity;
            continue;
        }

        ++st.analyzeStallCycles;
        break;
    }

    st.maxLlibInstrsInt =
        std::max(st.maxLlibInstrsInt, uint64_t(sliq.size()));
}

void
KiloCore::onCommitInst(InstRef inst)
{
    (void)inst; // entries left the pseudo-ROB at Analyze
}

void
KiloCore::onSquashInst(InstRef inst)
{
    if (!rob.empty() && rob.back() == inst) {
        rob.popBack();
        arena.get(inst).inRob = false;
    }
    // SLIQ residency is handled through DynInst::iqId by the base.
}

void
KiloCore::onBranchResolved(InstRef ref)
{
    const core::DynInst &inst = arena.get(ref);
    if (inst.execInMp)
        chkpt.resolve(inst.seq);
}

int
KiloCore::recoveryExtraPenalty(InstRef ref) const
{
    const core::DynInst &branch = arena.get(ref);
    if (!branch.execInMp)
        return 0;
    bool covered = chkpt.findFor(branch.seq) != nullptr;
    return covered ? kprm.recoveryExtraPenalty
                   : 3 * kprm.recoveryExtraPenalty;
}

void
KiloCore::onRecovered(InstRef ref)
{
    const core::DynInst &branch = arena.get(ref);
    if (branch.execInMp) {
        const dkip::Checkpoint *cp = chkpt.findFor(branch.seq);
        if (cp)
            llbv = cp->llbv;
        else
            llbv.clearAll();
        obsEvent(obs::EventKind::CkptRestore, branch.seq,
                 cp ? 1 : 0);
    }
    chkpt.squashFrom(branch.seq);
}

void
KiloCore::tick()
{
    beginCycle();
    stageCommit();
    stageComplete();
    stageAnalyze();
    issueFromQueue(intIq, fus, prm.issueWidthInt);
    issueFromQueue(fpIq, fus, prm.issueWidthFp);
    issueFromQueue(sliq, fus, kprm.sliqIssueWidth);
    stageDispatch();
    stageFetch();
    endCycle();
}


void
KiloCore::saveDerived(ckpt::Sink &s) const
{
    OooCore::saveDerived(s);
    llbv.save(s);
    sliq.save(s);
    chkpt.save(s);
}

void
KiloCore::restoreDerived(ckpt::Source &s)
{
    OooCore::restoreDerived(s);
    llbv.load(s);
    sliq.load(s);
    chkpt.load(s);
}

} // namespace kilo::kilo_proc
