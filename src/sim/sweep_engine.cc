#include "src/sim/sweep_engine.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <ostream>
#include <thread>

#include "src/stats/json.hh"
#include "src/util/logging.hh"

namespace kilo::sim
{

namespace
{

unsigned
defaultThreads()
{
    if (const char *env = std::getenv("KILO_SWEEP_THREADS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return unsigned(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // anonymous namespace

SweepEngine::SweepEngine(unsigned num_threads)
    : numThreads(num_threads ? num_threads : defaultThreads())
{}

std::vector<RunResult>
SweepEngine::run(const std::vector<SweepJob> &jobs) const
{
    std::vector<RunResult> results(jobs.size());

    auto execute = [&](size_t i) {
        const SweepJob &job = jobs[i];
        results[i] =
            Simulator::run(job.machine, job.workload, job.mem,
                           job.run);
    };

    unsigned workers =
        unsigned(std::min<size_t>(numThreads, jobs.size()));
    if (workers <= 1) {
        for (size_t i = 0; i < jobs.size(); ++i)
            execute(i);
        return results;
    }

    // Self-scheduling index dispatch: each worker claims the next
    // unstarted job. Runs share nothing, so placement does not affect
    // the results, only the finish time.
    std::atomic<size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            execute(i);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
    return results;
}

std::vector<RunResult>
SweepEngine::runSubset(const std::vector<SweepJob> &jobs,
                       const std::vector<size_t> &indices) const
{
    std::vector<SweepJob> subset;
    subset.reserve(indices.size());
    for (size_t idx : indices) {
        KILO_ASSERT(idx < jobs.size(),
                    "shard index %zu outside a %zu-job matrix", idx,
                    jobs.size());
        subset.push_back(jobs[idx]);
    }
    return run(subset);
}

std::vector<size_t>
SweepEngine::shardIndices(size_t num_jobs, uint32_t shard_index,
                          uint32_t shard_count)
{
    KILO_ASSERT(shard_count > 0, "shard count must be positive");
    KILO_ASSERT(shard_index < shard_count,
                "shard index %u outside count %u", shard_index,
                shard_count);
    std::vector<size_t> indices;
    indices.reserve(num_jobs / shard_count + 1);
    for (size_t i = shard_index; i < num_jobs; i += shard_count)
        indices.push_back(i);
    return indices;
}

std::vector<SweepJob>
SweepEngine::matrix(const std::vector<MachineConfig> &machines,
                    const std::vector<std::string> &workloads,
                    const std::vector<mem::MemConfig> &mems,
                    const RunConfig &run_config)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(machines.size() * workloads.size() * mems.size());
    for (const auto &machine : machines)
        for (const auto &workload : workloads)
            for (const auto &mem : mems)
                jobs.push_back(
                    SweepJob{machine, workload, mem, run_config});
    return jobs;
}

std::vector<SweepJob>
SweepEngine::matrixMemMajor(
    const std::vector<MachineConfig> &machines,
    const std::vector<std::string> &workloads,
    const std::vector<mem::MemConfig> &mems,
    const RunConfig &run_config)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(machines.size() * workloads.size() * mems.size());
    for (const auto &mem : mems)
        for (const auto &machine : machines)
            for (const auto &workload : workloads)
                jobs.push_back(
                    SweepJob{machine, workload, mem, run_config});
    return jobs;
}

std::vector<SweepJob>
SweepEngine::matrixByName(const std::vector<std::string> &machines,
                          const std::vector<std::string> &workloads,
                          const std::vector<std::string> &mems,
                          const RunConfig &run_config)
{
    std::vector<MachineConfig> machine_cfgs;
    machine_cfgs.reserve(machines.size());
    for (const auto &name : machines)
        machine_cfgs.push_back(MachineConfig::byName(name));
    std::vector<mem::MemConfig> mem_cfgs;
    mem_cfgs.reserve(mems.size());
    for (const auto &name : mems)
        mem_cfgs.push_back(mem::MemConfig::byName(name));
    return matrix(machine_cfgs, workloads, mem_cfgs, run_config);
}

std::vector<RunResult>
SweepEngine::runSuite(const MachineConfig &machine,
                      const std::vector<std::string> &suite,
                      const mem::MemConfig &mem_config,
                      const RunConfig &run_config) const
{
    return run(matrix({machine}, suite, {mem_config}, run_config));
}

std::string
runResultJson(const RunResult &r)
{
    // Generated generically: identity fields, then every Row::Yes
    // stat of the snapshot in registration order — the stable JSONL
    // schema tools/stats_schema pins (see src/stats/DESIGN.md).
    stats::JsonRowBuilder row;
    row.field("machine", r.machine).field("workload", r.workload);
    if (!r.snapshot.empty()) {
        row.rowStats(r.snapshot);
        return row.str();
    }
    // A hand-assembled RunResult (no snapshot) still renders from the
    // deprecated flat fields so aggregation code stays usable.
    row.field("ipc", r.ipc)
        .field("cycles", r.stats.cycles)
        .field("committed", r.stats.committed)
        .field("branches", r.stats.branches)
        .field("mispredict_rate", r.stats.mispredictRate())
        .field("mp_fraction", r.stats.mpFraction())
        .field("mem_accesses", r.memAccesses)
        .field("l2_misses", r.l2Misses)
        .field("l2_miss_ratio", r.l2MissRatio)
        .field("mem_fills", r.memFills)
        .field("mshr_merges", r.mshrMerges)
        .field("mshr_peak", uint64_t(r.mshrPeak))
        .field("mshr_set_p50", uint64_t(r.mshrSetP50))
        .field("mshr_set_p99", uint64_t(r.mshrSetP99))
        .field("mshr_set_max", uint64_t(r.mshrSetMax));
    return row.str();
}

void
writeJsonRows(std::ostream &os, const std::vector<RunResult> &results)
{
    for (const auto &r : results)
        os << runResultJson(r) << "\n";
}

void
writeIntervalRows(std::ostream &os, const RunResult &result)
{
    for (const auto &s : result.intervals) {
        stats::JsonRowBuilder row;
        row.field("machine", result.machine)
            .field("workload", result.workload)
            .field("interval", s.index)
            .field("interval_cycles", s.deltaCycles)
            .field("interval_committed", s.deltaCommitted)
            .field("interval_ipc", s.intervalIpc());
        row.rowStats(s.snapshot);
        os << row.str() << "\n";
    }
}

} // namespace kilo::sim
