#include "src/sim/sweep_engine.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <thread>

namespace kilo::sim
{

namespace
{

unsigned
defaultThreads()
{
    if (const char *env = std::getenv("KILO_SWEEP_THREADS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return unsigned(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // anonymous namespace

SweepEngine::SweepEngine(unsigned num_threads)
    : numThreads(num_threads ? num_threads : defaultThreads())
{}

std::vector<RunResult>
SweepEngine::run(const std::vector<SweepJob> &jobs) const
{
    std::vector<RunResult> results(jobs.size());

    auto execute = [&](size_t i) {
        const SweepJob &job = jobs[i];
        results[i] =
            Simulator::run(job.machine, job.workload, job.mem,
                           job.run);
    };

    unsigned workers =
        unsigned(std::min<size_t>(numThreads, jobs.size()));
    if (workers <= 1) {
        for (size_t i = 0; i < jobs.size(); ++i)
            execute(i);
        return results;
    }

    // Self-scheduling index dispatch: each worker claims the next
    // unstarted job. Runs share nothing, so placement does not affect
    // the results, only the finish time.
    std::atomic<size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            execute(i);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
    return results;
}

std::vector<SweepJob>
SweepEngine::matrix(const std::vector<MachineConfig> &machines,
                    const std::vector<std::string> &workloads,
                    const std::vector<mem::MemConfig> &mems,
                    const RunConfig &run_config)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(machines.size() * workloads.size() * mems.size());
    for (const auto &machine : machines)
        for (const auto &workload : workloads)
            for (const auto &mem : mems)
                jobs.push_back(
                    SweepJob{machine, workload, mem, run_config});
    return jobs;
}

std::vector<RunResult>
SweepEngine::runSuite(const MachineConfig &machine,
                      const std::vector<std::string> &suite,
                      const mem::MemConfig &mem_config,
                      const RunConfig &run_config) const
{
    return run(matrix({machine}, suite, {mem_config}, run_config));
}

std::string
runResultJson(const RunResult &r)
{
    std::ostringstream os;
    os.precision(17); // round-trip exact doubles
    os << "{\"machine\":\"" << r.machine << "\""
       << ",\"workload\":\"" << r.workload << "\""
       << ",\"ipc\":" << r.ipc
       << ",\"cycles\":" << r.stats.cycles
       << ",\"committed\":" << r.stats.committed
       << ",\"branches\":" << r.stats.branches
       << ",\"mispredict_rate\":" << r.stats.mispredictRate()
       << ",\"mp_fraction\":" << r.stats.mpFraction()
       << ",\"mem_accesses\":" << r.memAccesses
       << ",\"l2_misses\":" << r.l2Misses
       << ",\"l2_miss_ratio\":" << r.l2MissRatio
       << ",\"mem_fills\":" << r.memFills
       << ",\"mshr_merges\":" << r.mshrMerges
       << ",\"mshr_peak\":" << r.mshrPeak
       << ",\"mshr_set_p50\":" << r.mshrSetP50
       << ",\"mshr_set_p99\":" << r.mshrSetP99
       << ",\"mshr_set_max\":" << r.mshrSetMax
       << "}";
    return os.str();
}

void
writeJsonRows(std::ostream &os, const std::vector<RunResult> &results)
{
    for (const auto &r : results)
        os << runResultJson(r) << "\n";
}

} // namespace kilo::sim
