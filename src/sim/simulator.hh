/**
 * @file
 * Top-level simulation driver: one (machine, workload, memory) run.
 *
 * The one-shot entry point:
 *
 *     auto result = sim::Simulator::run(
 *         sim::MachineConfig::dkip2048(), "swim",
 *         mem::MemConfig::mem400(), sim::RunConfig());
 *     std::printf("IPC %.2f\n", result.ipc);
 *
 * Simulator::run is a thin wrapper over sim::Session
 * (src/sim/session.hh), the stepwise run object to use when a run
 * must be sampled mid-flight, paced against a wall clock, or aborted
 * on a cycle deadline.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/core_stats.hh"
#include "src/core/pipeline_base.hh"
#include "src/mem/hierarchy.hh"
#include "src/obs/audit.hh"
#include "src/sim/config.hh"
#include "src/stats/snapshot.hh"
#include "src/wload/workload.hh"

namespace kilo::sim
{

/** How a run's measured region is simulated. */
enum class SamplingMode : uint8_t
{
    Off,      ///< exact: every instruction in detail
    Sampled,  ///< cluster representatives only (src/sample/)
};

/** Length and instrumentation of a simulation. */
struct RunConfig
{
    uint64_t warmupInsts = 20000;   ///< committed, stats then reset
    uint64_t measureInsts = 100000; ///< committed, measured region

    /**
     * Measured-region cycle deadline; 0 means unlimited. A run whose
     * measured region reaches this many cycles before committing
     * measureInsts stops and reports RunResult::aborted — the per-job
     * timeout SweepEngine matrices need for cluster-scale sweeps.
     * (Enforced between engine quanta: an idle skip over a long
     * memory stall may overshoot the deadline by that stall.)
     */
    uint64_t maxCycles = 0;

    /**
     * Wall-clock deadline in milliseconds for the whole run (warm-up
     * plus measured region); 0 means unlimited. A run still going
     * when the host clock passes the deadline stops at the next check
     * quantum and reports RunResult::aborted — the per-job insurance
     * sharded sweep workers need against a pathological config
     * wedging a whole shard. Unlike maxCycles this deadline is
     * inherently non-deterministic (it depends on host speed); the
     * simulated timing of the region that did run is unaffected.
     */
    uint64_t maxWallMs = 0;

    /**
     * Interval statistics sampling period in committed instructions;
     * 0 disables. When set, the Session records a stats::IntervalSample
     * (cumulative snapshot + per-interval IPC) every intervalInsts
     * committed instructions of the measured region —
     * RunResult::intervals, emitted as JSONL by writeIntervalRows().
     * Sampling does not perturb timing.
     */
    uint64_t intervalInsts = 0;

    /**
     * SamplingMode::Sampled makes Simulator::run (and therefore
     * SweepEngine matrices and sharded sweeps) estimate the measured
     * region by simulating only cluster-representative intervals —
     * see src/sample/DESIGN.md. intervalInsts is the sampling
     * interval length (0 picks a default of measureInsts / 50),
     * numClusters bounds how many representatives are simulated, and
     * warmupInsts doubles as the functional-warming span replayed
     * before each representative. Deterministic: a sampled job
     * produces the same JSONL row in any process or thread.
     */
    SamplingMode samplingMode = SamplingMode::Off;

    /** Behaviour clusters (= representative intervals simulated) of
     *  a SamplingMode::Sampled run. */
    uint32_t numClusters = 8;

    /**
     * Determinism-audit cadence in committed instructions; 0 (the
     * default) disables the audit plane entirely. When set, the
     * Session records one obs::AuditRecord — committed instructions,
     * absolute cycle, a digest of the complete checkpointable state
     * plus every registered statistic, and the rolling chain digest —
     * every auditIntervalInsts committed instructions of the measured
     * region (RunResult::audit, written to disk as a KILOAUD stream
     * by tools/kilodiff). Zero-perturbation pinned like the other
     * observability planes: the fold reads state, never changes it.
     * Ignored under SamplingMode::Sampled (a sampled run estimates;
     * there is no exact state trajectory to audit).
     */
    uint64_t auditIntervalInsts = 0;

    /**
     * Test-only divergence seed for the audit plane: when non-zero,
     * XOR auditFlipMask into the fetch global history at the first
     * simulated cycle >= auditFlipCycle (warm-up included). Exists so
     * the CI kilodiff smoke test can plant a known single-bit fault
     * and assert the audit plane localizes it; never set by real
     * drivers. Deliberately excluded from Manifest serialization of
     * normal sweeps and from the state digest (only the fired latch
     * is hashed). @{
     */
    uint64_t auditFlipCycle = 0;
    uint64_t auditFlipMask = 1;
    /** @} */

    /**
     * When non-empty, run-by-name replays this KILOTRC trace file
     * instead of constructing a synthetic generator; the name
     * argument is ignored in favour of the trace header's. (Workload
     * names of the form "trace:<path>" do the same per-job, which is
     * how SweepEngine matrices name trace-backed workloads.)
     */
    std::string tracePath;

    /** Short preset for wide parameter sweeps. */
    static RunConfig
    sweep()
    {
        RunConfig r;
        r.warmupInsts = 10000;
        r.measureInsts = 40000;
        return r;
    }
};

/**
 * Outcome of one run.
 *
 * The authoritative payload is `snapshot` — the self-describing
 * stats::Registry snapshot every component contributed to; JSONL rows
 * are generated from it generically. The flat convenience fields
 * below (ipc, memAccesses, ...) are populated for source
 * compatibility but deprecated for new code; see the MIGRATION note
 * in README.md.
 */
struct RunResult
{
    std::string machine;
    std::string workload;
    double ipc = 0.0;
    core::CoreStats stats;

    /** True when RunConfig::maxCycles expired before measureInsts
     *  committed; the stats cover the truncated region. */
    bool aborted = false;

    /** Every registered stat at the end of the run. */
    stats::Snapshot snapshot;

    /** Interval samples (RunConfig::intervalInsts; empty when off). */
    std::vector<stats::IntervalSample> intervals;

    /** Audit records (RunConfig::auditIntervalInsts; empty when
     *  off). One per audit boundary of the measured region. */
    std::vector<obs::AuditRecord> audit;

    /** Rolling chain digest over `audit` (obs::AuditBasis when the
     *  plane is off) — the one-word determinism witness a sharded
     *  worker ships back instead of the whole stream. */
    uint64_t auditRolling = obs::AuditBasis;

    /** Deprecated flat memory-side fields (use snapshot). @{ */
    uint64_t memAccesses = 0;
    uint64_t l2Misses = 0;
    double l2MissRatio = 0.0;
    uint64_t memFills = 0;    ///< off-chip line fills started
    uint64_t mshrMerges = 0;  ///< accesses merged into in-flight fills
    uint32_t mshrPeak = 0;    ///< peak MSHR occupancy (measured region)

    /** Per-set MSHR occupancy at fill allocation (MLP clustering):
     *  median, 99th percentile and maximum of the live ways in the
     *  allocating set. @{ */
    uint32_t mshrSetP50 = 0;
    uint32_t mshrSetP99 = 0;
    uint32_t mshrSetMax = 0;
    /** @} */
    /** @} */
};

/**
 * Resolve @p workload_name exactly as Session's by-name constructor
 * does: RunConfig::tracePath wins, then a "trace:<path>" name, then
 * the synthetic preset registry. The sampling layer and benches use
 * this to walk the same instruction stream a Session would run.
 */
wload::WorkloadPtr openWorkload(const std::string &workload_name,
                                const RunConfig &run_config);

/** Builds cores and executes runs. */
class Simulator
{
  public:
    /** Instantiate the core described by @p machine. */
    static std::unique_ptr<core::PipelineBase>
    makeCore(const MachineConfig &machine, wload::Workload &workload,
             const mem::MemConfig &mem_config);

    /** Run @p workload_name on @p machine and collect statistics. */
    static RunResult run(const MachineConfig &machine,
                         const std::string &workload_name,
                         const mem::MemConfig &mem_config,
                         const RunConfig &run_config = RunConfig());

    /** Same, with a caller-provided workload instance. */
    static RunResult run(const MachineConfig &machine,
                         wload::Workload &workload,
                         const mem::MemConfig &mem_config,
                         const RunConfig &run_config = RunConfig());
};

} // namespace kilo::sim

