/**
 * @file
 * Suite-level sweep helpers.
 *
 * The paper reports arithmetic-mean IPC over the SpecINT and SpecFP
 * suites; these helpers run a machine over a whole suite and reduce
 * the results the same way.
 */

#pragma once

#include <string>
#include <vector>

#include "src/sim/simulator.hh"

namespace kilo::sim
{

/** Names of the SpecINT-like suite, Figure 13 order. */
std::vector<std::string> intSuite();

/** Names of the SpecFP-like suite, Figure 14 order. */
std::vector<std::string> fpSuite();

/**
 * Run @p machine over every workload in @p suite.
 *
 * Dispatches over the default SweepEngine thread pool (see
 * src/sim/sweep_engine.hh); per-run state is fully isolated, so the
 * results are bit-identical to a serial loop and arrive in suite
 * order. Set KILO_SWEEP_THREADS=1 to force serial execution.
 */
std::vector<RunResult> runSuite(const MachineConfig &machine,
                                const std::vector<std::string> &suite,
                                const mem::MemConfig &mem_config,
                                const RunConfig &run_config);

/** Arithmetic mean of IPC over @p results (the paper's reduction). */
double meanIpc(const std::vector<RunResult> &results);

/** Mean fraction of committed instructions executed in the MP. */
double meanMpFraction(const std::vector<RunResult> &results);

} // namespace kilo::sim

