#include "src/sim/table.hh"

#include <cstdio>

namespace kilo::sim
{

Table::Table(std::vector<std::string> header_cells)
    : headers(std::move(header_cells))
{}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers.size());
    rows.push_back(std::move(cells));
}

std::string
Table::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers.size());
    for (size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            if (row[c].size() > widths[c])
                widths[c] = row[c].size();

    std::string out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < headers.size(); ++c) {
            const std::string &cell =
                c < cells.size() ? cells[c] : std::string();
            out += cell;
            out.append(widths[c] - cell.size() + 2, ' ');
        }
        while (!out.empty() && out.back() == ' ')
            out.pop_back();
        out += '\n';
    };

    emit(headers);
    std::vector<std::string> rule;
    for (size_t c = 0; c < headers.size(); ++c)
        rule.push_back(std::string(widths[c], '-'));
    emit(rule);
    for (const auto &row : rows)
        emit(row);
    return out;
}

} // namespace kilo::sim
