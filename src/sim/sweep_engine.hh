/**
 * @file
 * Parallel sweep engine: fans a (machine × workload × memory) run
 * matrix out over a thread pool.
 *
 * Every run is fully isolated — its own workload generator, core,
 * instruction arena and memory hierarchy — so parallel execution is
 * bit-identical to serial execution. Results are written to
 * pre-assigned slots, which makes the output ordering deterministic
 * regardless of scheduling: jobs[i] always produces results[i].
 *
 *     sim::SweepEngine engine(4);
 *     auto jobs = sim::SweepEngine::matrix(
 *         {MachineConfig::dkip2048()}, sim::intSuite(),
 *         {mem::MemConfig::mem400()}, RunConfig());
 *     auto results = engine.run(jobs);
 *     sim::writeJsonRows(std::cout, results);
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/sim/simulator.hh"

namespace kilo::sim
{

/**
 * One cell of a sweep matrix.
 *
 * `workload` names a synthetic preset ("swim") or a recorded trace
 * ("trace:/path/to/file.ktrc" — see src/trace/), so a matrix can mix
 * generated and captured workloads freely.
 */
struct SweepJob
{
    MachineConfig machine;
    std::string workload;
    mem::MemConfig mem;
    RunConfig run;
};

/** Thread-pooled, deterministically-ordered run executor. */
class SweepEngine
{
  public:
    /**
     * @param num_threads worker count; 0 picks the value of the
     * KILO_SWEEP_THREADS environment variable or, failing that,
     * std::thread::hardware_concurrency().
     */
    explicit SweepEngine(unsigned num_threads = 0);

    /** Worker count this engine dispatches over. */
    unsigned threads() const { return numThreads; }

    /**
     * Execute every job; results[i] corresponds to jobs[i]. Runs
     * serially (no threads spawned) when the engine has one worker
     * or there is one job.
     */
    std::vector<RunResult> run(const std::vector<SweepJob> &jobs) const;

    /**
     * Execute only the jobs named by @p indices (global positions in
     * @p jobs); results[i] corresponds to jobs[indices[i]]. This is
     * the shard-execution entry the kilosim_worker binary drives: a
     * shard runs its slice with full per-job isolation, so sharded
     * results are bit-identical to the full-matrix run.
     */
    std::vector<RunResult>
    runSubset(const std::vector<SweepJob> &jobs,
              const std::vector<size_t> &indices) const;

    /**
     * Deterministic job→shard partitioning: the global job indices
     * owned by shard @p shard_index of @p shard_count. Round-robin
     * (job i belongs to shard i % count), so the machine-major matrix
     * ordering spreads each machine's jobs — the usual cost outliers
     * — across all shards instead of loading one of them. Shards are
     * disjoint and cover [0, num_jobs) by construction.
     */
    static std::vector<size_t> shardIndices(size_t num_jobs,
                                            uint32_t shard_index,
                                            uint32_t shard_count);

    /**
     * Build the row-major (machine-major, then workload, then memory)
     * job matrix the paper's figures sweep over.
     */
    static std::vector<SweepJob>
    matrix(const std::vector<MachineConfig> &machines,
           const std::vector<std::string> &workloads,
           const std::vector<mem::MemConfig> &mems,
           const RunConfig &run_config);

    /**
     * Memory-major variant of matrix(): the memory axis is the
     * OUTERMOST loop (then machine, then workload), so results group
     * by memory point the way ablation studies over hierarchy
     * parameters read their tables. One call replaces the
     * one-matrix-per-memory-point loop those studies used to need.
     */
    static std::vector<SweepJob>
    matrixMemMajor(const std::vector<MachineConfig> &machines,
                   const std::vector<std::string> &workloads,
                   const std::vector<mem::MemConfig> &mems,
                   const RunConfig &run_config);

    /**
     * Same matrix from names alone — machines through
     * MachineConfig::byName ("r10-64", "kilo", "dkip", ...), memories
     * through mem::MemConfig::byName ("mem-400", "l2-11", ...) —
     * which is how externally-described jobs (CLI arguments, sharded
     * sweep manifests) parse into runnable matrices. Workload names
     * pass through untouched (presets or "trace:<path>").
     */
    static std::vector<SweepJob>
    matrixByName(const std::vector<std::string> &machines,
                 const std::vector<std::string> &workloads,
                 const std::vector<std::string> &mems,
                 const RunConfig &run_config);

    /** Convenience: one machine over a suite on one hierarchy. */
    std::vector<RunResult>
    runSuite(const MachineConfig &machine,
             const std::vector<std::string> &suite,
             const mem::MemConfig &mem_config,
             const RunConfig &run_config) const;

  private:
    unsigned numThreads;
};

/**
 * One machine-readable result row (JSON object, single line),
 * generated generically from RunResult::snapshot: identity fields
 * (machine, workload) followed by every Row::Yes stat in registration
 * order. The key set and ordering are the stable JSONL schema pinned
 * by tools/stats_schema's golden dump.
 */
std::string runResultJson(const RunResult &result);

/** Emit every result as one JSON object per line (JSONL). */
void writeJsonRows(std::ostream &os,
                   const std::vector<RunResult> &results);

/**
 * Emit one JSONL row per stats::IntervalSample of @p result
 * (RunConfig::intervalInsts): identity fields, the interval index,
 * the per-interval cycle/instruction deltas and IPC (the IPC-over-
 * time series), then the cumulative row stats at the boundary.
 */
void writeIntervalRows(std::ostream &os, const RunResult &result);

} // namespace kilo::sim

