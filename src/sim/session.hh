/**
 * @file
 * Stepwise run object: one (machine, workload, memory) simulation
 * with explicit phases.
 *
 * Where Simulator::run is fire-and-forget, a Session lets the caller
 * interleave its own logic with the simulation — sample statistics
 * mid-flight, pace a run against a wall clock, enforce deadlines, or
 * abort cleanly:
 *
 *     sim::Session session(sim::MachineConfig::dkip2048(), "swim",
 *                          mem::MemConfig::mem400(), rc);
 *     session.warmup();
 *     while (!session.finished()) {
 *         session.step(10000);                   // <= 10k cycles
 *         auto snap = session.snapshot();        // sample anything
 *         if (wallClockExpired())
 *             break;                             // abort cleanly
 *     }
 *     sim::RunResult result = session.finish();
 *
 * Stepping is exact: a run advanced via any sequence of step() /
 * runFor() calls commits the same instructions over the same cycles
 * as one-shot Simulator::run — the engine's tick sequence only ever
 * pauses at the boundaries, it never diverges (pinned bit-identical
 * by tests/test_session.cpp).
 *
 * The Session owns everything a run needs (workload or a borrowed
 * caller workload, core, arena, memory hierarchy), applies the
 * functional cache prewarm at construction, honours
 * RunConfig::maxCycles as a measured-region deadline (finished runs
 * report RunResult::aborted) and records stats::IntervalSamples every
 * RunConfig::intervalInsts committed instructions.
 */

#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "src/ckpt/serial.hh"
#include "src/obs/profiler.hh"
#include "src/sim/simulator.hh"

namespace kilo::sim
{

/** A constructed-once, stepwise simulation run. */
class Session
{
  public:
    /** Resolve @p workload_name (preset, "trace:<path>" or
     *  RunConfig::tracePath) and own the resulting workload. */
    Session(const MachineConfig &machine,
            const std::string &workload_name,
            const mem::MemConfig &mem_config,
            const RunConfig &run_config = RunConfig());

    /** Borrow a caller-provided workload (not reset, not owned). */
    Session(const MachineConfig &machine, wload::Workload &workload,
            const mem::MemConfig &mem_config,
            const RunConfig &run_config = RunConfig());

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * Run the warm-up region (RunConfig::warmupInsts) and reset
     * statistics. Idempotent; implied by the first advance if the
     * caller never calls it.
     */
    void warmup();

    /**
     * Advance the measured region by at most @p max_cycles cycles.
     * Returns the number of instructions committed by this call.
     * (An idle skip over a long memory stall may overshoot the cycle
     * bound by that stall; the next call simply runs shorter.)
     */
    uint64_t step(uint64_t max_cycles);

    /**
     * Advance the measured region until @p insts more instructions
     * commit (bounded by measureInsts and the deadline). Returns the
     * number actually committed by this call.
     */
    uint64_t runFor(uint64_t insts);

    /** Advance to completion (measureInsts or the deadline). */
    void run();

    /** Measured region complete — target reached or aborted. */
    bool finished() const;

    /** A RunConfig::maxCycles or maxWallMs deadline expired before
     *  the measured region completed. */
    bool aborted() const { return aborted_; }

    /** Cycles of the measured region so far (0 before warmup()). */
    uint64_t measuredCycles() const;

    /** Committed instructions of the measured region so far. */
    uint64_t measuredCommitted() const;

    /** Point-in-time values of every registered statistic. */
    stats::Snapshot snapshot() const;

    /** Interval samples recorded so far (RunConfig::intervalInsts). */
    const std::vector<stats::IntervalSample> &intervals() const
    {
        return intervals_;
    }

    /** Audit records recorded so far (RunConfig::auditIntervalInsts;
     *  the fourth observability plane, src/obs/audit.hh). */
    const std::vector<obs::AuditRecord> &auditRecords() const
    {
        return audit_;
    }

    /** Rolling audit chain digest (obs::AuditBasis before the first
     *  record / when the plane is off). */
    uint64_t auditRolling() const { return auditRolling_; }

    /**
     * Digest of the complete architectural state right now: every
     * byte checkpoint() would serialize, folded through a Digest-mode
     * ckpt::Sink, then every registered statistic. Allocation-free
     * and const — auditing never perturbs the run. Two Sessions agree
     * on stateDigest() iff their checkpoints and stats agree.
     */
    uint64_t stateDigest() const;

    /** The underlying core (structure inspection, registry). @{ */
    core::PipelineBase &core() { return *core_; }
    const core::PipelineBase &core() const { return *core_; }
    /** @} */

    /** The run's configuration. */
    const RunConfig &config() const { return rc; }

    /**
     * Attach a wall-time self-profiler (may be null to detach). The
     * session then accounts its warmup / measure / finish phases into
     * it. Purely observational: profiling never touches simulated
     * timing, and a detached session takes no clock reads at all.
     */
    void attachProfiler(obs::Profiler *p) { profiler = p; }

    /**
     * Collect the RunResult. Steals the interval samples; the Session
     * remains inspectable but should not be advanced further.
     */
    RunResult finish();

    /**
     * Capture the complete run state — machine and workload identity,
     * session phase, and every mutable byte of the core (arena,
     * hierarchy, predictor, queues, workload position) — as an
     * in-memory snapshot. restore() into a Session built with the
     * same machine/workload/memory configuration resumes
     * bit-identically: checkpoint-at-cycle-C-then-restore produces
     * the same stats row as running straight through (pinned by
     * tests/test_checkpoint.cpp). A mismatched machine or workload
     * throws ckpt::CheckpointError. Interval samples are not part of
     * the image; restore() clears them. @{
     */
    ckpt::Checkpoint checkpoint() const;
    void restore(const ckpt::Checkpoint &c);

    /** Same, through the on-disk KILOCKPT container (versioned,
     *  checksummed; see src/ckpt/serial.hh). */
    void saveCheckpoint(const std::string &path) const;
    void loadCheckpoint(const std::string &path);
    /** @} */

  private:
    /** Advance toward @p target_committed, capped at @p cycle_cap
     *  (both absolute), recording intervals and the deadline abort. */
    void advance(uint64_t target_committed, uint64_t cycle_cap);

    void recordInterval();
    void recordAudit();

    /**
     * The checkpoint payload body, shared verbatim between
     * checkpoint() (Store sink) and stateDigest() (Digest sink) so
     * the audit plane hashes exactly what a checkpoint captures.
     */
    void serializePayload(ckpt::Sink &s) const;

    /** Absolute cycle the measured region must end by. */
    uint64_t deadlineCycle() const;

    /** The RunConfig::maxWallMs host-clock deadline passed. */
    bool wallExpired() const;

    std::string machineName;
    RunConfig rc;

    wload::WorkloadPtr owned;     ///< by-name constructor only
    wload::Workload *wl;          ///< always valid
    std::unique_ptr<core::PipelineBase> core_;

    bool warmedUp = false;
    bool aborted_ = false;

    /** Wall-clock anchor of RunConfig::maxWallMs (set at
     *  construction, so prewarm and warm-up count against it). */
    std::chrono::steady_clock::time_point wallStart =
        // kilolint: allow(nondeterminism) wall-deadline anchor
        std::chrono::steady_clock::now();

    uint64_t measureStartCycle = 0;   ///< absolute core cycle
    uint64_t nextIntervalAt = 0;      ///< committed insts, 0 = off
    uint64_t nextAuditAt = 0;         ///< committed insts, 0 = off
    uint64_t auditRolling_ = obs::AuditBasis;
    std::vector<stats::IntervalSample> intervals_;
    std::vector<obs::AuditRecord> audit_;
    obs::Profiler *profiler = nullptr;
};

} // namespace kilo::sim

