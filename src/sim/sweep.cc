#include "src/sim/sweep.hh"

#include "src/sim/sweep_engine.hh"
#include "src/wload/profile.hh"

namespace kilo::sim
{

std::vector<std::string>
intSuite()
{
    std::vector<std::string> names;
    for (const auto &p : wload::intProfiles())
        names.push_back(p.name);
    return names;
}

std::vector<std::string>
fpSuite()
{
    std::vector<std::string> names;
    for (const auto &p : wload::fpProfiles())
        names.push_back(p.name);
    return names;
}

std::vector<RunResult>
runSuite(const MachineConfig &machine,
         const std::vector<std::string> &suite,
         const mem::MemConfig &mem_config, const RunConfig &run_config)
{
    // Fan out over the default thread pool (KILO_SWEEP_THREADS or
    // hardware concurrency); runs are isolated, so the results are
    // bit-identical to the old serial loop and come back in suite
    // order.
    SweepEngine engine;
    return engine.runSuite(machine, suite, mem_config, run_config);
}

double
meanIpc(const std::vector<RunResult> &results)
{
    if (results.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : results)
        sum += r.ipc;
    return sum / double(results.size());
}

double
meanMpFraction(const std::vector<RunResult> &results)
{
    if (results.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : results)
        sum += r.stats.mpFraction();
    return sum / double(results.size());
}

} // namespace kilo::sim
