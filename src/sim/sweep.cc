#include "src/sim/sweep.hh"

#include "src/wload/profile.hh"

namespace kilo::sim
{

std::vector<std::string>
intSuite()
{
    std::vector<std::string> names;
    for (const auto &p : wload::intProfiles())
        names.push_back(p.name);
    return names;
}

std::vector<std::string>
fpSuite()
{
    std::vector<std::string> names;
    for (const auto &p : wload::fpProfiles())
        names.push_back(p.name);
    return names;
}

std::vector<RunResult>
runSuite(const MachineConfig &machine,
         const std::vector<std::string> &suite,
         const mem::MemConfig &mem_config, const RunConfig &run_config)
{
    std::vector<RunResult> results;
    results.reserve(suite.size());
    for (const auto &name : suite) {
        results.push_back(
            Simulator::run(machine, name, mem_config, run_config));
    }
    return results;
}

double
meanIpc(const std::vector<RunResult> &results)
{
    if (results.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : results)
        sum += r.ipc;
    return sum / double(results.size());
}

double
meanMpFraction(const std::vector<RunResult> &results)
{
    if (results.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : results)
        sum += r.stats.mpFraction();
    return sum / double(results.size());
}

} // namespace kilo::sim
