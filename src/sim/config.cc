#include "src/sim/config.hh"

#include <cstdio>

#include "src/util/logging.hh"
#include "src/util/names.hh"

namespace kilo::sim
{

MachineConfig
MachineConfig::r10_64()
{
    MachineConfig m;
    m.kind = MachineKind::Ooo;
    m.name = "R10-64";
    m.cp.name = m.name;
    m.cp.robSize = 64;
    m.cp.intIqSize = 40;
    m.cp.fpIqSize = 40;
    return m;
}

MachineConfig
MachineConfig::r10_256()
{
    MachineConfig m = r10_64();
    m.name = "R10-256";
    m.cp.name = m.name;
    m.cp.robSize = 256;
    m.cp.intIqSize = 160;
    m.cp.fpIqSize = 160;
    return m;
}

MachineConfig
MachineConfig::r10_768()
{
    MachineConfig m = r10_64();
    m.name = "R10-768";
    m.cp.name = m.name;
    m.cp.robSize = 768;
    m.cp.intIqSize = 256;
    m.cp.fpIqSize = 256;
    return m;
}

MachineConfig
MachineConfig::kilo1024()
{
    MachineConfig m;
    m.kind = MachineKind::Kilo;
    m.name = "KILO-1024";
    m.kilo = kilo_proc::KiloParams::kilo1024();
    return m;
}

MachineConfig
MachineConfig::dkip2048()
{
    MachineConfig m;
    m.kind = MachineKind::Dkip;
    m.name = "DKIP-2048";
    m.dkip = dkip::DkipParams::dkip2048();
    return m;
}

MachineConfig
MachineConfig::windowLimit(size_t window)
{
    MachineConfig m;
    m.kind = MachineKind::Ooo;
    m.name = "WIN-" + std::to_string(window);
    m.cp.name = m.name;
    m.cp.robSize = window;
    m.cp.intIqSize = window;
    m.cp.fpIqSize = window;
    m.cp.lsqSize = window > 512 ? window : 512;
    m.cp.fetchBufferSize = 64;
    return m;
}

MachineConfig
MachineConfig::dkipSched(core::SchedPolicy cp_policy, size_t cp_queue,
                         core::SchedPolicy mp_policy, size_t mp_queue)
{
    MachineConfig m = dkip2048();
    m.name = schedLabel(cp_policy, cp_queue, mp_policy, mp_queue);
    m.dkip.cp.name = m.name;
    m.dkip.cp.intPolicy = cp_policy;
    m.dkip.cp.fpPolicy = cp_policy;
    m.dkip.cp.intIqSize = cp_queue;
    m.dkip.cp.fpIqSize = cp_queue;
    m.dkip.mpPolicy = mp_policy;
    m.dkip.mpIqSize = mp_queue;
    return m;
}

namespace
{

struct MachinePreset
{
    const char *alias;
    MachineConfig (*make)();
};

constexpr MachinePreset MachinePresets[] = {
    {"r10-64", MachineConfig::r10_64},
    {"r10-256", MachineConfig::r10_256},
    {"r10-768", MachineConfig::r10_768},
    {"kilo", MachineConfig::kilo1024},
    {"dkip", MachineConfig::dkip2048},
};

} // anonymous namespace

MachineConfig
MachineConfig::byName(const std::string &name)
{
    using util::iequals;
    for (const auto &preset : MachinePresets) {
        MachineConfig cfg = preset.make();
        if (iequals(name, preset.alias) || iequals(name, cfg.name))
            return cfg;
    }
    KILO_FATAL("unknown machine '%s' (known: r10-64 r10-256 r10-768 "
               "kilo dkip)", name.c_str());
}

std::vector<std::string>
MachineConfig::names()
{
    std::vector<std::string> out;
    for (const auto &preset : MachinePresets)
        out.push_back(preset.alias);
    return out;
}

std::string
MachineConfig::schedLabel(core::SchedPolicy cp_policy, size_t cp_queue,
                          core::SchedPolicy mp_policy, size_t mp_queue)
{
    auto part = [](core::SchedPolicy p, size_t q) {
        if (p == core::SchedPolicy::InOrder)
            return std::string("INO");
        return "OOO" + std::to_string(q);
    };
    return part(cp_policy, cp_queue) + "-" + part(mp_policy, mp_queue);
}

} // namespace kilo::sim
