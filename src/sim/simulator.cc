#include "src/sim/simulator.hh"

#include "src/core/ooo_core.hh"
#include "src/dkip/dkip_core.hh"
#include "src/kilo_proc/kilo_core.hh"
#include "src/trace/trace_reader.hh"
#include "src/util/logging.hh"
#include "src/wload/synthetic.hh"

namespace kilo::sim
{

std::unique_ptr<core::PipelineBase>
Simulator::makeCore(const MachineConfig &machine,
                    wload::Workload &workload,
                    const mem::MemConfig &mem_config)
{
    switch (machine.kind) {
      case MachineKind::Ooo:
        return std::make_unique<core::OooCore>(machine.cp, workload,
                                               mem_config);
      case MachineKind::Kilo:
        return std::make_unique<kilo_proc::KiloCore>(
            machine.kilo, workload, mem_config);
      case MachineKind::Dkip:
        return std::make_unique<dkip::DkipCore>(machine.dkip, workload,
                                                mem_config);
    }
    KILO_PANIC("unknown MachineKind");
}

namespace
{

constexpr const char TracePrefix[] = "trace:";

/** Resolve a workload name to a generator or a trace replay. */
wload::WorkloadPtr
resolveWorkload(const std::string &name, const RunConfig &run_config)
{
    if (!run_config.tracePath.empty())
        return trace::openTrace(run_config.tracePath);
    if (name.rfind(TracePrefix, 0) == 0)
        return trace::openTrace(name.substr(sizeof(TracePrefix) - 1));
    return wload::makeWorkload(name);
}

} // anonymous namespace

RunResult
Simulator::run(const MachineConfig &machine,
               const std::string &workload_name,
               const mem::MemConfig &mem_config,
               const RunConfig &run_config)
{
    auto workload = resolveWorkload(workload_name, run_config);
    return run(machine, *workload, mem_config, run_config);
}

RunResult
Simulator::run(const MachineConfig &machine, wload::Workload &workload,
               const mem::MemConfig &mem_config,
               const RunConfig &run_config)
{
    auto core = makeCore(machine, workload, mem_config);

    // Functional cache warm-up: install the workload's working set so
    // the short timed region sees the steady-state hit rates a 200M-
    // instruction SimPoint run would.
    for (const auto &region : workload.regions())
        core->memory().prewarm(region.base, region.bytes);

    if (run_config.warmupInsts) {
        core->run(run_config.warmupInsts);
        core->resetStats();
    }
    core->run(run_config.measureInsts);

    RunResult res;
    res.machine = machine.name;
    res.workload = workload.name();
    res.stats = core->stats();
    res.ipc = core->stats().ipc();
    res.memAccesses = core->memory().accesses();
    res.l2Misses = core->memory().l2Misses();
    res.l2MissRatio = core->memory().l2MissRatio();
    res.memFills = core->memory().memFills();
    res.mshrMerges = core->memory().mshrMerges();
    res.mshrPeak = core->memory().mshrPeakOccupancy();
    const Histogram &set_occ = core->memory().mshrSetOccupancy();
    res.mshrSetP50 = uint32_t(set_occ.percentile(0.50));
    res.mshrSetP99 = uint32_t(set_occ.percentile(0.99));
    res.mshrSetMax = uint32_t(set_occ.maxSample());
    return res;
}

} // namespace kilo::sim
