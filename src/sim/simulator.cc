#include "src/sim/simulator.hh"

#include "src/core/ooo_core.hh"
#include "src/dkip/dkip_core.hh"
#include "src/kilo_proc/kilo_core.hh"
// The one sanctioned inversion of the layer DAG: runSimulation() is
// the single entry point for every driver, so SamplingMode::Sampled
// has to dispatch *down* into the sampling harness even though
// src/sample sits above src/sim (it drives whole Sessions). Moving
// the dispatch up would force every driver to special-case sampling.
// Inventory: src/lint/DESIGN.md, suppression table.
#include "src/sample/sampled_run.hh"  // kilolint: allow(layering)
#include "src/sim/session.hh"
#include "src/util/logging.hh"

namespace kilo::sim
{

std::unique_ptr<core::PipelineBase>
Simulator::makeCore(const MachineConfig &machine,
                    wload::Workload &workload,
                    const mem::MemConfig &mem_config)
{
    switch (machine.kind) {
      case MachineKind::Ooo:
        return std::make_unique<core::OooCore>(machine.cp, workload,
                                               mem_config);
      case MachineKind::Kilo:
        return std::make_unique<kilo_proc::KiloCore>(
            machine.kilo, workload, mem_config);
      case MachineKind::Dkip:
        return std::make_unique<dkip::DkipCore>(machine.dkip, workload,
                                                mem_config);
    }
    KILO_PANIC("unknown MachineKind");
}

// Simulator::run is the fire-and-forget wrapper: a Session advanced
// straight to completion. Callers that need mid-flight sampling,
// wall-clock pacing or clean aborts construct the Session themselves
// (src/sim/session.hh).

RunResult
Simulator::run(const MachineConfig &machine,
               const std::string &workload_name,
               const mem::MemConfig &mem_config,
               const RunConfig &run_config)
{
    if (run_config.samplingMode == SamplingMode::Sampled)
        return sample::runSampled(machine, workload_name, mem_config,
                                  run_config)
            .result;
    Session session(machine, workload_name, mem_config, run_config);
    session.warmup();
    session.run();
    return session.finish();
}

RunResult
Simulator::run(const MachineConfig &machine, wload::Workload &workload,
               const mem::MemConfig &mem_config,
               const RunConfig &run_config)
{
    if (run_config.samplingMode == SamplingMode::Sampled)
        return sample::runSampled(machine, workload, mem_config,
                                  run_config)
            .result;
    Session session(machine, workload, mem_config, run_config);
    session.warmup();
    session.run();
    return session.finish();
}

} // namespace kilo::sim
