#include "src/sim/session.hh"

#include "src/trace/trace_reader.hh"
#include "src/wload/synthetic.hh"

namespace kilo::sim
{

namespace
{

constexpr const char TracePrefix[] = "trace:";

/**
 * Cycle quantum between host-clock checks when RunConfig::maxWallMs
 * is armed: coarse enough that the clock read never shows up in
 * profiles, fine enough (a millisecond or two of simulation) that a
 * deadline is honoured promptly.
 */
constexpr uint64_t WallCheckCycles = 1 << 16;

/** Resolve a workload name to a generator or a trace replay. */
wload::WorkloadPtr
resolveWorkload(const std::string &name, const RunConfig &run_config)
{
    if (!run_config.tracePath.empty())
        return trace::openTrace(run_config.tracePath);
    if (name.rfind(TracePrefix, 0) == 0)
        return trace::openTrace(name.substr(sizeof(TracePrefix) - 1));
    return wload::makeWorkload(name);
}

} // anonymous namespace

wload::WorkloadPtr
openWorkload(const std::string &workload_name,
             const RunConfig &run_config)
{
    return resolveWorkload(workload_name, run_config);
}

Session::Session(const MachineConfig &machine,
                 const std::string &workload_name,
                 const mem::MemConfig &mem_config,
                 const RunConfig &run_config)
    : machineName(machine.name), rc(run_config),
      owned(resolveWorkload(workload_name, run_config)), wl(owned.get()),
      core_(Simulator::makeCore(machine, *wl, mem_config))
{
    // Functional cache warm-up: install the workload's working set so
    // the short timed region sees the steady-state hit rates a 200M-
    // instruction SimPoint run would.
    for (const auto &region : wl->regions())
        core_->memory().prewarm(region.base, region.bytes);
    if (rc.auditFlipCycle)
        core_->setDebugFlip(rc.auditFlipCycle, rc.auditFlipMask);
}

Session::Session(const MachineConfig &machine, wload::Workload &workload,
                 const mem::MemConfig &mem_config,
                 const RunConfig &run_config)
    : machineName(machine.name), rc(run_config), wl(&workload),
      core_(Simulator::makeCore(machine, workload, mem_config))
{
    for (const auto &region : wl->regions())
        core_->memory().prewarm(region.base, region.bytes);
    if (rc.auditFlipCycle)
        core_->setDebugFlip(rc.auditFlipCycle, rc.auditFlipMask);
}

bool
Session::wallExpired() const
{
    if (!rc.maxWallMs)
        return false;
    // kilolint: allow(nondeterminism) wall-deadline check
    auto elapsed = std::chrono::steady_clock::now() - wallStart;
    return elapsed >=
           std::chrono::milliseconds(int64_t(rc.maxWallMs));
}

void
Session::warmup()
{
    if (warmedUp)
        return;
    obs::Profiler::Scope prof(profiler, "warmup");
    warmedUp = true;
    if (rc.warmupInsts) {
        if (rc.maxWallMs) {
            // Chunked so a pathological configuration cannot wedge a
            // deadline-carrying job inside the warm-up region.
            uint64_t target = core_->stats().committed +
                              rc.warmupInsts;
            while (core_->stats().committed < target &&
                   !wallExpired()) {
                core_->runUntil(target,
                                core_->cycle() + WallCheckCycles);
            }
            if (core_->stats().committed < target)
                aborted_ = true;
        } else {
            core_->run(rc.warmupInsts);
        }
        core_->resetStats();
    }
    measureStartCycle = core_->cycle();
    nextIntervalAt = rc.intervalInsts;
    nextAuditAt = rc.auditIntervalInsts;
}

uint64_t
Session::deadlineCycle() const
{
    return rc.maxCycles ? measureStartCycle + rc.maxCycles
                        : UINT64_MAX;
}

uint64_t
Session::measuredCycles() const
{
    return core_->stats().cycles;
}

uint64_t
Session::measuredCommitted() const
{
    return core_->stats().committed;
}

bool
Session::finished() const
{
    return aborted_ ||
           (warmedUp && core_->stats().committed >= rc.measureInsts);
}

void
Session::advance(uint64_t target_committed, uint64_t cycle_cap)
{
    warmup();
    obs::Profiler::Scope prof(profiler, "measure");
    if (target_committed > rc.measureInsts)
        target_committed = rc.measureInsts;
    const uint64_t deadline = deadlineCycle();
    if (cycle_cap > deadline)
        cycle_cap = deadline;

    while (!aborted_ &&
           core_->stats().committed < target_committed &&
           core_->cycle() < cycle_cap) {
        // Pause at the next interval boundary, if one comes first.
        // runUntil's tick sequence is unaffected by where it pauses,
        // so sampling never perturbs timing.
        uint64_t stop = target_committed;
        if (nextIntervalAt && nextIntervalAt < stop)
            stop = nextIntervalAt;
        if (nextAuditAt && nextAuditAt < stop)
            stop = nextAuditAt;
        uint64_t cap = cycle_cap;
        if (rc.maxWallMs) {
            uint64_t quantum_end = core_->cycle() + WallCheckCycles;
            if (quantum_end < cap)
                cap = quantum_end;
        }
        core_->runUntil(stop, cap);
        if (nextIntervalAt &&
            core_->stats().committed >= nextIntervalAt) {
            recordInterval();
            nextIntervalAt += rc.intervalInsts;
        }
        // A wide commit stage can overshoot several audit boundaries
        // in one runUntil() quantum; record one fold per boundary so
        // two runs with different pause slicing stay record-aligned.
        while (nextAuditAt &&
               core_->stats().committed >= nextAuditAt) {
            recordAudit();
            nextAuditAt += rc.auditIntervalInsts;
        }
        if (wallExpired() &&
            core_->stats().committed < rc.measureInsts) {
            aborted_ = true;
            break;
        }
    }

    if (core_->cycle() >= deadline &&
        core_->stats().committed < rc.measureInsts)
        aborted_ = true;
}

uint64_t
Session::step(uint64_t max_cycles)
{
    warmup();
    uint64_t before = core_->stats().committed;
    uint64_t cap = core_->cycle() + max_cycles;
    if (cap < core_->cycle()) // overflow: treat as unbounded
        cap = UINT64_MAX;
    advance(rc.measureInsts, cap);
    return core_->stats().committed - before;
}

uint64_t
Session::runFor(uint64_t insts)
{
    warmup();
    uint64_t before = core_->stats().committed;
    advance(before + insts, UINT64_MAX);
    return core_->stats().committed - before;
}

void
Session::run()
{
    advance(UINT64_MAX, UINT64_MAX);
}

stats::Snapshot
Session::snapshot() const
{
    return core_->statsRegistry().snapshot();
}

void
Session::recordInterval()
{
    stats::IntervalSample s;
    s.index = intervals_.size();
    s.cycles = core_->stats().cycles;
    s.committed = core_->stats().committed;
    const stats::IntervalSample *prev =
        intervals_.empty() ? nullptr : &intervals_.back();
    s.deltaCycles = s.cycles - (prev ? prev->cycles : 0);
    s.deltaCommitted = s.committed - (prev ? prev->committed : 0);
    s.snapshot = core_->statsRegistry().snapshot();
    intervals_.push_back(std::move(s));
}

void
Session::serializePayload(ckpt::Sink &s) const
{
    s.str(machineName);
    s.str(wl->name());
    s.scalar(uint8_t(warmedUp ? 1 : 0));
    s.scalar(uint8_t(aborted_ ? 1 : 0));
    s.scalar(uint64_t(measureStartCycle));
    s.scalar(uint64_t(nextIntervalAt));
    s.scalar(uint64_t(nextAuditAt));
    s.scalar(uint64_t(auditRolling_));
    core_->saveState(s);
}

ckpt::Checkpoint
Session::checkpoint() const
{
    ckpt::Sink s;
    serializePayload(s);
    ckpt::Checkpoint c;
    c.bytes = s.take();
    return c;
}

uint64_t
Session::stateDigest() const
{
    // The same payload traversal as checkpoint(), folded instead of
    // stored, then every registered statistic: the audit plane hashes
    // exactly what a checkpoint would capture plus what a JSONL row
    // would report. Allocation-free end to end.
    ckpt::Sink s(ckpt::SinkMode::Digest);
    serializePayload(s);
    return core_->statsRegistry().foldValues(s.digest());
}

void
Session::recordAudit()
{
    obs::AuditRecord r;
    r.insts = core_->stats().committed;
    r.cycle = core_->cycle();
    r.state = stateDigest();
    auditRolling_ =
        obs::auditMix(auditRolling_, r.insts, r.cycle, r.state);
    r.rolling = auditRolling_;
    audit_.push_back(r);
}

void
Session::restore(const ckpt::Checkpoint &c)
{
    ckpt::Source s(c.bytes);
    std::string machine = s.str();
    if (machine != machineName)
        throw ckpt::CheckpointError(
            "checkpoint was taken on machine '" + machine +
            "', this session runs '" + machineName + "'");
    std::string workload = s.str();
    if (workload != wl->name())
        throw ckpt::CheckpointError(
            "checkpoint was taken on workload '" + workload +
            "', this session runs '" + wl->name() + "'");
    warmedUp = s.scalar<uint8_t>() != 0;
    aborted_ = s.scalar<uint8_t>() != 0;
    measureStartCycle = s.scalar<uint64_t>();
    nextIntervalAt = s.scalar<uint64_t>();
    nextAuditAt = s.scalar<uint64_t>();
    auditRolling_ = s.scalar<uint64_t>();
    core_->restoreState(s);
    if (!s.atEnd())
        throw ckpt::CheckpointError(
            "checkpoint has trailing bytes after the core state");
    intervals_.clear();
    // Like interval samples, already-recorded audit records are not
    // part of the image — but the rolling digest and the cursor are,
    // so a restored run's chain continues exactly where the
    // checkpointed run's would have.
    audit_.clear();
}

void
Session::saveCheckpoint(const std::string &path) const
{
    ckpt::writeCheckpointFile(path, checkpoint().bytes);
}

void
Session::loadCheckpoint(const std::string &path)
{
    ckpt::Checkpoint c;
    c.bytes = ckpt::readCheckpointFile(path);
    restore(c);
}

RunResult
Session::finish()
{
    obs::Profiler::Scope prof(profiler, "finish");
    RunResult res;
    res.machine = machineName;
    res.workload = wl->name();
    res.stats = core_->stats();
    res.ipc = core_->stats().ipc();
    res.aborted = aborted_;
    res.snapshot = core_->statsRegistry().snapshot();
    res.intervals = std::move(intervals_);
    intervals_.clear();
    res.audit = std::move(audit_);
    audit_.clear();
    res.auditRolling = auditRolling_;

    // Deprecated flat fields (see the MIGRATION note in README.md).
    const mem::MemoryHierarchy &m = core_->memory();
    res.memAccesses = m.accesses();
    res.l2Misses = m.l2Misses();
    res.l2MissRatio = m.l2MissRatio();
    res.memFills = m.memFills();
    res.mshrMerges = m.mshrMerges();
    res.mshrPeak = m.mshrPeakOccupancy();
    const Histogram &set_occ = m.mshrSetOccupancy();
    res.mshrSetP50 = uint32_t(set_occ.percentile(0.50));
    res.mshrSetP99 = uint32_t(set_occ.percentile(0.99));
    res.mshrSetMax = uint32_t(set_occ.maxSample());
    return res;
}

} // namespace kilo::sim
