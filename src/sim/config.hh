/**
 * @file
 * Machine configuration presets.
 *
 * Builders for every processor evaluated in the paper: the R10000
 * baselines (section 4.2), the window-scaling limit cores (section
 * 2), the KILO-1024 baseline and the D-KIP variants of sections
 * 4.2-4.4.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/params.hh"
#include "src/dkip/dkip_core.hh"
#include "src/kilo_proc/kilo_core.hh"

namespace kilo::sim
{

/** Which core model a configuration instantiates. */
enum class MachineKind : uint8_t
{
    Ooo,   ///< core::OooCore
    Kilo,  ///< kilo_proc::KiloCore
    Dkip,  ///< dkip::DkipCore
};

/** A fully-specified machine. */
struct MachineConfig
{
    MachineKind kind = MachineKind::Ooo;
    std::string name = "machine";

    core::CoreParams cp;           ///< used when kind == Ooo
    kilo_proc::KiloParams kilo;    ///< used when kind == Kilo
    dkip::DkipParams dkip;         ///< used when kind == Dkip

    /** R10000 with a 64-entry ROB and 40-entry queues (Fig. 9). */
    static MachineConfig r10_64();

    /** Futuristic R10000: 256-entry ROB, 160-entry queues (Fig. 9). */
    static MachineConfig r10_256();

    /** The R10-768 reference of section 4.2. */
    static MachineConfig r10_768();

    /** KILO-1024: pseudo-ROB 64 + 1024-entry SLIQ (Fig. 9). */
    static MachineConfig kilo1024();

    /** D-KIP-2048: the paper's default decoupled machine (Fig. 9). */
    static MachineConfig dkip2048();

    /**
     * Idealised ROB-limited core for the limit study of Figures 1-3:
     * every queue is sized to the window so "stalls can only occur
     * due to shortage of entries in the ROB".
     */
    static MachineConfig windowLimit(size_t window);

    /**
     * D-KIP with explicit CP/MP scheduler configurations, the axes
     * of Figures 10-12 (e.g. INO/INO, OOO-80/OOO-40).
     */
    static MachineConfig dkipSched(core::SchedPolicy cp_policy,
                                   size_t cp_queue,
                                   core::SchedPolicy mp_policy,
                                   size_t mp_queue);

    /** Human-readable CP-MP label, e.g. "OOO80-INO" (Figs. 11/12). */
    static std::string schedLabel(core::SchedPolicy cp_policy,
                                  size_t cp_queue,
                                  core::SchedPolicy mp_policy,
                                  size_t mp_queue);

    /**
     * Canonical preset registry: resolves either a short CLI alias
     * ("r10-64", "r10-256", "r10-768", "kilo", "dkip") or a preset's
     * own name ("R10-64", "KILO-1024", "DKIP-2048"),
     * case-insensitively. Exits with a diagnostic on an unknown name
     * — the one name->machine mapping examples/, bench/ and
     * sweep-job parsing (SweepEngine::matrixByName) share.
     */
    static MachineConfig byName(const std::string &name);

    /** The short aliases byName() accepts, presentation order. */
    static std::vector<std::string> names();
};

} // namespace kilo::sim

