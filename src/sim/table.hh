/**
 * @file
 * Fixed-width ASCII table printer used by the benchmark harnesses to
 * emit paper-style rows.
 */

#pragma once

#include <string>
#include <vector>

namespace kilo::sim
{

/** Column-aligned table builder. */
class Table
{
  public:
    /** Start a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row (cells beyond the header count are dropped). */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double value, int precision = 2);

    /** Render with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace kilo::sim

