/**
 * @file
 * Checkpoint byte-stream primitives (KILOCKPT).
 *
 * A checkpoint is a flat byte stream written through a Sink and read
 * back through a bounds-checked Source. Every stateful simulator
 * component exposes `save(ckpt::Sink&) const` / `load(ckpt::Source&)`
 * members that serialize its complete mutable state field by field,
 * in a fixed order, so that restoring a checkpoint and continuing is
 * bit-identical to never having paused (pinned by
 * tests/test_checkpoint.cpp).
 *
 * The in-memory payload can be wrapped in the on-disk KILOCKPT
 * container: an 8-byte magic, a format version, the payload length
 * and an FNV-1a checksum, then the payload. readCheckpointFile
 * rejects bad magic, version mismatches, truncation and corruption
 * with CheckpointError — never with undefined behaviour.
 *
 * Versioning policy: FileVersion bumps on ANY change to the payload
 * layout (there are no per-component version fields; a checkpoint is
 * a whole-simulator snapshot and is never migrated forward). Old
 * checkpoints are rejected, not converted.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace kilo::ckpt
{

/** Any failure to produce or apply a checkpoint. */
class CheckpointError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Raise CheckpointError when @p got differs from @p want. */
void expectEq(uint64_t got, uint64_t want, const char *what);

/** What a Sink does with the bytes serialized into it. */
enum class SinkMode : uint8_t
{
    Store,   ///< append to the in-memory payload (checkpointing)
    Digest,  ///< fold into a running FNV-style hash (audit plane)
};

/**
 * Byte consumer a component serializes itself into.
 *
 * The default (SinkMode::Store) grows the checkpoint payload. A
 * Digest sink reuses the exact same save() traversal — every mutable
 * byte the checkpoint machinery covers — but folds each field into a
 * 64-bit word-mixed FNV digest instead of storing it: no allocation,
 * no buffer, just the hash the KILOAUD audit plane records at
 * interval boundaries (src/obs/audit.hh). Each bytes() call folds
 * its length first, so field boundaries contribute to the digest and
 * two adjacent fields cannot alias by concatenation.
 */
class Sink
{
  public:
    Sink() = default;
    explicit Sink(SinkMode m) : mode_(m) {}

    /** Append @p n raw bytes. */
#if defined(__GNUC__) && !defined(__clang__)
// GCC 12 flags the reallocation move inside vector::insert with an
// impossible size when the call is inlined into large callers
// (stringop-overflow false positive, GCC PR 107852 family).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif
    void
    bytes(const void *p, size_t n)
    {
        if (mode_ == SinkMode::Digest) {
            fold(p, n);
            return;
        }
        if (!n)
            return; // empty strings may pass a null/dangling data()
        const uint8_t *b = static_cast<const uint8_t *>(p);
        buf.insert(buf.end(), b, b + n);
    }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

    /** Append one trivially-copyable value verbatim. */
    template <typename T>
    void
    scalar(T v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "scalar() needs a trivially copyable type");
        bytes(&v, sizeof(v));
    }

    /** Append a length-prefixed string. */
    void
    str(const std::string &s)
    {
        scalar(uint64_t(s.size()));
        bytes(s.data(), s.size());
    }

    /** Append a length-prefixed vector of trivially-copyable T. */
    template <typename T>
    void
    podVector(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "podVector() needs a trivially copyable type");
        scalar(uint64_t(v.size()));
        if (!v.empty())
            bytes(v.data(), v.size() * sizeof(T));
    }

    const std::vector<uint8_t> &data() const { return buf; }
    std::vector<uint8_t> take() { return std::move(buf); }
    size_t size() const { return buf.size(); }

    SinkMode mode() const { return mode_; }

    /** Digest accumulated so far (meaningful in Digest mode only). */
    uint64_t digest() const { return hash_; }

  private:
    /**
     * Word-mixed FNV-1a fold: length first, then 8-byte words, then
     * the byte tail. Allocation-free by construction — the audit
     * plane calls this on the hot interval boundary.
     */
    void
    fold(const void *p, size_t n)
    {
        constexpr uint64_t prime = 1099511628211ull;
        uint64_t h = hash_;
        h = (h ^ uint64_t(n)) * prime;
        const uint8_t *b = static_cast<const uint8_t *>(p);
        size_t i = 0;
        for (; i + 8 <= n; i += 8) {
            uint64_t w;
            std::memcpy(&w, b + i, 8);
            h = (h ^ w) * prime;
        }
        for (; i < n; ++i)
            h = (h ^ b[i]) * prime;
        hash_ = h;
    }

    std::vector<uint8_t> buf;
    SinkMode mode_ = SinkMode::Store;
    uint64_t hash_ = 14695981039346656037ull; // FNV-1a offset basis
};

/** Bounds-checked reader over a checkpoint payload. */
class Source
{
  public:
    Source(const uint8_t *data, size_t size) : p(data), len(size) {}

    explicit Source(const std::vector<uint8_t> &v)
        : p(v.data()), len(v.size())
    {}

    /** Read @p n raw bytes; throws CheckpointError on overrun. */
    void
    bytes(void *out, size_t n)
    {
        if (n > len - off || off > len)
            throw CheckpointError("checkpoint truncated: read past "
                                  "end of payload");
        std::memcpy(out, p + off, n);
        off += n;
    }

    template <typename T>
    T
    scalar()
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "scalar() needs a trivially copyable type");
        T v;
        bytes(&v, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        uint64_t n = scalar<uint64_t>();
        if (n > remaining())
            throw CheckpointError("checkpoint truncated: string "
                                  "length past end of payload");
        std::string s(size_t(n), '\0');
        bytes(s.data(), size_t(n));
        return s;
    }

    template <typename T>
    void
    podVector(std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "podVector() needs a trivially copyable type");
        uint64_t n = scalar<uint64_t>();
        if (n > remaining() / sizeof(T))
            throw CheckpointError("checkpoint truncated: vector "
                                  "length past end of payload");
        v.resize(size_t(n));
        if (n)
            bytes(v.data(), size_t(n) * sizeof(T));
    }

    size_t remaining() const { return len - off; }
    bool atEnd() const { return off == len; }

  private:
    const uint8_t *p;
    size_t len;
    size_t off = 0;
};

/** On-disk KILOCKPT container. @{ */

/** File magic, first 8 bytes of every KILOCKPT file. */
constexpr char FileMagic[8] = {'K', 'I', 'L', 'O', 'C', 'K', 'P', 'T'};

/**
 * Container format version; bumped on any payload-layout change.
 * v2: Session payload carries the audit cursor (nextAuditAt, rolling
 * digest) and PipelineBase appends the debug-flip latch.
 */
constexpr uint32_t FileVersion = 2;

/** FNV-1a over @p n bytes (payload integrity). */
uint64_t fnv1a(const uint8_t *p, size_t n);

/** Write @p payload to @p path in the KILOCKPT container. */
void writeCheckpointFile(const std::string &path,
                         const std::vector<uint8_t> &payload);

/**
 * Read and validate a KILOCKPT file; returns the payload. Throws
 * CheckpointError on bad magic, version mismatch, truncation or a
 * checksum failure.
 */
std::vector<uint8_t> readCheckpointFile(const std::string &path);

/** @} */

/** An in-memory simulator snapshot (Session::checkpoint payload). */
struct Checkpoint
{
    std::vector<uint8_t> bytes;
};

} // namespace kilo::ckpt

