#include "src/ckpt/serial.hh"

#include <cstdio>

namespace kilo::ckpt
{

void
expectEq(uint64_t got, uint64_t want, const char *what)
{
    if (got != want) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "checkpoint mismatch: %s is %llu, expected %llu",
                      what, (unsigned long long)got,
                      (unsigned long long)want);
        throw CheckpointError(buf);
    }
}

uint64_t
fnv1a(const uint8_t *p, size_t n)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

void
writeCheckpointFile(const std::string &path,
                    const std::vector<uint8_t> &payload)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw CheckpointError("cannot open checkpoint file for "
                              "writing: " + path);
    uint32_t version = FileVersion;
    uint64_t size = payload.size();
    uint64_t checksum = fnv1a(payload.data(), payload.size());
    bool ok = std::fwrite(FileMagic, 1, sizeof(FileMagic), f) ==
                  sizeof(FileMagic) &&
              std::fwrite(&version, 1, sizeof(version), f) ==
                  sizeof(version) &&
              std::fwrite(&size, 1, sizeof(size), f) == sizeof(size) &&
              std::fwrite(&checksum, 1, sizeof(checksum), f) ==
                  sizeof(checksum) &&
              (payload.empty() ||
               std::fwrite(payload.data(), 1, payload.size(), f) ==
                   payload.size());
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        throw CheckpointError("short write to checkpoint file: " +
                              path);
}

std::vector<uint8_t>
readCheckpointFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw CheckpointError("cannot open checkpoint file: " + path);
    struct Closer
    {
        std::FILE *f;
        ~Closer() { std::fclose(f); }
    } closer{f};

    char magic[sizeof(FileMagic)];
    uint32_t version = 0;
    uint64_t size = 0;
    uint64_t checksum = 0;
    if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
        std::memcmp(magic, FileMagic, sizeof(magic)) != 0)
        throw CheckpointError("not a KILOCKPT file: " + path);
    if (std::fread(&version, 1, sizeof(version), f) != sizeof(version))
        throw CheckpointError("truncated KILOCKPT header: " + path);
    if (version != FileVersion) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "KILOCKPT version %u not supported (this build "
                      "reads version %u)",
                      version, FileVersion);
        throw CheckpointError(buf);
    }
    if (std::fread(&size, 1, sizeof(size), f) != sizeof(size) ||
        std::fread(&checksum, 1, sizeof(checksum), f) !=
            sizeof(checksum))
        throw CheckpointError("truncated KILOCKPT header: " + path);

    std::vector<uint8_t> payload;
    payload.resize(size_t(size));
    if (!payload.empty() &&
        std::fread(payload.data(), 1, payload.size(), f) !=
            payload.size())
        throw CheckpointError("truncated KILOCKPT payload: " + path);
    if (fnv1a(payload.data(), payload.size()) != checksum)
        throw CheckpointError("KILOCKPT checksum mismatch "
                              "(corrupt file): " + path);
    return payload;
}

} // namespace kilo::ckpt
