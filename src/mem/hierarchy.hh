/**
 * @file
 * Two-level data-memory hierarchy with fixed service latencies.
 *
 * This models the memory subsystems of Table 1 of the paper: an L1
 * (possibly perfect), an optional L2 (possibly infinite) and main
 * memory with a flat access time. Misses to a line that is already
 * in flight merge MSHR-style and complete together, which is what
 * gives streaming FP codes their memory-level parallelism.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/mem/cache.hh"
#include "src/mem/mshr.hh"
#include "src/stats/registry.hh"

namespace kilo::mem
{

/** Where an access was serviced. */
enum class ServiceLevel : uint8_t
{
    L1,      ///< L1 hit
    L2,      ///< L1 miss, L2 hit
    Memory,  ///< L2 miss (or merged into an in-flight line fill)
};

/** Name of a service level for stat output. */
const char *serviceLevelName(ServiceLevel lvl);

/** Outcome of one data access. */
struct AccessResult
{
    uint32_t latency = 0;        ///< total cycles from issue to data
    ServiceLevel level = ServiceLevel::L1;

    /** True when the Analyze stage must classify this long-latency. */
    bool offChip() const { return level == ServiceLevel::Memory; }
};

/**
 * Configuration of a memory subsystem (one row of Table 1, or the
 * default evaluation hierarchy of Table 2).
 *
 * Latencies are *total* from issue: an L2 hit costs l2Latency cycles,
 * not l1Latency + l2Latency; this matches the paper's "L2 access time
 * 11 (1+10)" notation.
 */
struct MemConfig
{
    std::string name = "MEM-400";
    uint32_t lineBytes = 64;

    bool perfectL1 = false;      ///< every access hits L1
    uint64_t l1Size = 32 * 1024;
    uint32_t l1Assoc = 4;
    uint32_t l1Latency = 2;

    bool hasL2 = true;
    bool perfectL2 = false;      ///< every L1 miss hits L2
    uint64_t l2Size = 512 * 1024;
    uint32_t l2Assoc = 8;
    uint32_t l2Latency = 11;

    uint32_t memLatency = 400;

    /**
     * Capacity of the MSHR file tracking in-flight off-chip fills.
     * The default is generous — far above the fills a core can have
     * outstanding within one memory latency — so merge behaviour (and
     * therefore timing) is identical to an unbounded tracker; see
     * MemoryHierarchy::mshrDisplacements() for the proof obligation.
     */
    uint32_t numMshrs = 4096;

    /**
     * Model finite MSHRs as a structural hazard: when true, an access
     * that would start a new off-chip fill while its MSHR set is full
     * of live fills is refused (MemoryHierarchy::wouldBlock) and the
     * core back-pressures — the issue slot retries next cycle —
     * instead of the file displacing the soonest-completing fill.
     * Off (the default) preserves the displacement model and is
     * timing-identical to earlier revisions.
     */
    bool mshrStall = false;

    /** Table 1 presets. @{ */
    static MemConfig l1Only();             ///< L1-2
    static MemConfig l2Perfect11();        ///< L2-11
    static MemConfig l2Perfect21();        ///< L2-21
    static MemConfig mem100();             ///< MEM-100
    static MemConfig mem400();             ///< MEM-400 (default)
    static MemConfig mem1000();            ///< MEM-1000
    /** @} */

    /** MEM-400 with an explicit L2 capacity (Figures 11/12 sweep). */
    static MemConfig withL2Size(uint64_t bytes);

    /**
     * Canonical preset registry: resolves either a short CLI alias
     * ("l1", "l2-11", "l2-21", "mem-100", "mem-400", "mem-1000") or a
     * preset's own name ("L1-2", "MEM-400", ...), case-insensitively.
     * Exits with a diagnostic on an unknown name — this is the one
     * name->config mapping examples/, bench/ and sweep-job parsing
     * share.
     */
    static MemConfig byName(const std::string &name);

    /** The short aliases byName() accepts, presentation order. */
    static std::vector<std::string> names();
};

/**
 * The data-memory hierarchy.
 *
 * access() returns the total service latency of a read or write and
 * updates tag state. In-flight off-chip line fills are tracked so
 * that a second miss to the same line completes when the first fill
 * arrives instead of paying a full memory round trip.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const MemConfig &cfg);

    /**
     * Perform one data access.
     *
     * @param addr     effective byte address
     * @param is_write true for stores
     * @param now      current cycle (for miss merging)
     */
    AccessResult access(uint64_t addr, bool is_write, uint64_t now);

    /**
     * Structural-hazard probe (MemConfig::mshrStall): true when an
     * access to @p addr would have to start a new off-chip fill and
     * every way of the line's MSHR set is live — the core must hold
     * the access and retry. Always false when mshrStall is off; never
     * mutates cache tag or statistics state beyond the MSHR file's
     * idempotent lazy expiry, so a false result followed by access()
     * behaves exactly as access() alone.
     */
    bool wouldBlock(uint64_t addr, uint64_t now);

    /**
     * Same structural answer as wouldBlock() without charging the
     * mshr_stalls counter: the stall-attribution classifier
     * (PipelineBase, src/obs/DESIGN.md) asks "is the head MSHR
     * blocked?" purely diagnostically, and the probe must not inflate
     * the back-pressure statistic the issue path owns. Shares
     * wouldBlock()'s only side effect — the MSHR file's idempotent
     * lazy expiry — so interleaving probes with accesses is
     * timing-invisible.
     */
    bool wouldBlockProbe(uint64_t addr, uint64_t now);

    /** Accesses refused by wouldBlock() (mshrStall back-pressure). */
    uint64_t mshrStalls() const { return nMshrStalls; }

    /** Configuration used to build this hierarchy. */
    const MemConfig &config() const { return cfg; }

    /** Statistics. @{ */
    uint64_t accesses() const { return nAccesses; }
    uint64_t l1Misses() const { return nL1Misses; }

    /** Misses of an existing L2 (0 for hierarchies without one). */
    uint64_t l2Misses() const { return nL2Misses; }

    /** Off-chip line fills started (L2 misses, plus L1 misses that go
     *  straight to memory when the hierarchy has no L2). */
    uint64_t memFills() const { return nMemFills; }

    /** Accesses merged into an already-in-flight fill. Merges are
     *  counted here only — never as additional L1/L2 misses. */
    uint64_t mshrMerges() const { return nMerges; }

    double
    l2MissRatio() const
    {
        return nAccesses ? double(nL2Misses) / double(nAccesses) : 0.0;
    }

    /** MSHR file instrumentation. @{ */
    uint32_t mshrOccupancy() const { return mshrs.occupancy(); }
    uint32_t mshrPeakOccupancy() const { return mshrs.peakOccupancy(); }
    uint32_t mshrCapacity() const { return mshrs.capacity(); }
    uint64_t mshrDisplacements() const { return mshrs.displacements(); }

    /** Per-set live-fill occupancy distribution, sampled at each
     *  fill allocation (MLP clustering; see MshrFile::setOccupancy). */
    const Histogram &mshrSetOccupancy() const
    {
        return mshrs.setOccupancy();
    }
    /** @} */
    /** @} */

    /** Zero statistics (end of warm-up); tag state is preserved. */
    void resetStats();

    /**
     * Register this hierarchy's statistics on @p reg — the memory
     * block of the stable JSONL row schema (mem_accesses ..
     * mshr_set_max) plus non-row diagnostics. Called once by the
     * owning core; the hierarchy must outlive the registry.
     */
    void registerStats(stats::Registry &reg);

    /**
     * Install the lines of [base, base+bytes) into the tag arrays in
     * address order (functional warm-up; no latency, no statistics
     * beyond LRU state).
     */
    void prewarm(uint64_t base, uint64_t bytes);

    /**
     * Functional-warming access: evolve L1/L2 tag state exactly as a
     * demand access would (LRU refresh on a hit, installation on a
     * miss) without timing, MSHR tracking or statistics. This is the
     * per-op fast-forward path of sampled simulation — caches stay
     * warm across skipped intervals at decode speed.
     */
    void warmAccess(uint64_t addr);

    /** Serialize / restore tag state, in-flight fills and counters.
     *  Geometry is configuration and must match. @{ */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        if (l1)
            l1->save(s);
        if (l2)
            l2->save(s);
        mshrs.save(s);
        s.template scalar<uint64_t>(nAccesses);
        s.template scalar<uint64_t>(nL1Misses);
        s.template scalar<uint64_t>(nL2Misses);
        s.template scalar<uint64_t>(nMemFills);
        s.template scalar<uint64_t>(nMerges);
        s.template scalar<uint64_t>(nMshrStalls);
    }

    template <typename Source>
    void
    load(Source &s)
    {
        if (l1)
            l1->load(s);
        if (l2)
            l2->load(s);
        mshrs.load(s);
        nAccesses = s.template scalar<uint64_t>();
        nL1Misses = s.template scalar<uint64_t>();
        nL2Misses = s.template scalar<uint64_t>();
        nMemFills = s.template scalar<uint64_t>();
        nMerges = s.template scalar<uint64_t>();
        nMshrStalls = s.template scalar<uint64_t>();
    }
    /** @} */

  private:
    uint64_t lineOf(uint64_t addr) const { return addr / cfg.lineBytes; }

    MemConfig cfg;
    std::unique_ptr<SetAssocCache> l1;
    std::unique_ptr<SetAssocCache> l2;

    /** In-flight off-chip fills: fixed capacity, zero steady-state
     *  heap traffic, O(ways) lookup (src/mem/mshr.hh). */
    MshrFile mshrs;

    uint64_t nAccesses = 0;
    uint64_t nL1Misses = 0;
    uint64_t nL2Misses = 0;
    uint64_t nMemFills = 0;
    uint64_t nMerges = 0;
    uint64_t nMshrStalls = 0;
};

} // namespace kilo::mem

