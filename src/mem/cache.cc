#include "src/mem/cache.hh"

#include "src/util/logging.hh"

namespace kilo::mem
{

namespace
{

bool
isPow2(uint64_t v)
{
    return v && !(v & (v - 1));
}

} // anonymous namespace

SetAssocCache::SetAssocCache(const CacheGeometry &geom)
    : ways(geom.assoc), line(geom.lineBytes)
{
    KILO_ASSERT(isPow2(geom.lineBytes), "line size must be power of 2");
    KILO_ASSERT(geom.assoc > 0, "associativity must be positive");
    uint64_t lines = geom.sizeBytes / geom.lineBytes;
    KILO_ASSERT(lines >= geom.assoc, "cache smaller than one set");
    sets = uint32_t(lines / geom.assoc);
    KILO_ASSERT(isPow2(sets), "number of sets must be power of 2");
    store.resize(size_t(sets) * ways);
}

bool
SetAssocCache::access(uint64_t addr)
{
    ++nAccesses;
    ++stamp;
    uint32_t set = setOf(addr);
    uint64_t tag = tagOf(addr);
    Way *base = &store[size_t(set) * ways];

    Way *victim = base;
    for (uint32_t w = 0; w < ways; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lruStamp = stamp;
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lruStamp < victim->lruStamp) {
            victim = &way;
        }
    }

    ++nMisses;
    victim->valid = true;
    victim->tag = tag;
    victim->lruStamp = stamp;
    return false;
}

bool
SetAssocCache::probe(uint64_t addr) const
{
    uint32_t set = setOf(addr);
    uint64_t tag = tagOf(addr);
    const Way *base = &store[size_t(set) * ways];
    for (uint32_t w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
SetAssocCache::invalidateAll()
{
    for (auto &way : store)
        way.valid = false;
}

void
SetAssocCache::resetStats()
{
    nAccesses = 0;
    nMisses = 0;
}

} // namespace kilo::mem
