#include "src/mem/cache.hh"

#include <bit>

#include "src/util/logging.hh"

namespace kilo::mem
{

namespace
{

bool
isPow2(uint64_t v)
{
    return v && !(v & (v - 1));
}

} // anonymous namespace

SetAssocCache::SetAssocCache(const CacheGeometry &geom)
    : ways(geom.assoc), line(geom.lineBytes)
{
    KILO_ASSERT(isPow2(geom.lineBytes), "line size must be power of 2");
    KILO_ASSERT(geom.assoc > 0, "associativity must be positive");
    uint64_t lines = geom.sizeBytes / geom.lineBytes;
    KILO_ASSERT(lines >= geom.assoc, "cache smaller than one set");
    uint64_t want_sets = lines / geom.assoc;
    uint64_t pow2_sets = std::bit_floor(want_sets);
    if (pow2_sets != want_sets) {
        // A capacity sweep point such as 384 KB yields a non-pow2 set
        // count; index with the largest power of two that fits rather
        // than panicking mid-sweep.
        KILO_WARN("cache: %llu-byte capacity gives %llu sets; "
                  "rounding down to %llu (effective %llu KB)",
                  (unsigned long long)geom.sizeBytes,
                  (unsigned long long)want_sets,
                  (unsigned long long)pow2_sets,
                  (unsigned long long)(pow2_sets * geom.assoc *
                                       geom.lineBytes / 1024));
    }
    sets = uint32_t(pow2_sets);
    lineShift = uint32_t(std::countr_zero(uint64_t(line)));
    setShift = uint32_t(std::countr_zero(uint64_t(sets)));
    setMask = sets - 1;
    store.resize(size_t(sets) * ways);
}

bool
SetAssocCache::probeInstall(uint64_t addr, bool count_stats)
{
    if (count_stats)
        ++nAccesses;
    ++stamp;
    uint32_t set = setOf(addr);
    uint64_t tag = tagOf(addr);
    Way *base = &store[size_t(set) * ways];

    Way *victim = base;
    for (uint32_t w = 0; w < ways; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lruStamp = stamp;
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lruStamp < victim->lruStamp) {
            victim = &way;
        }
    }

    if (count_stats)
        ++nMisses;
    victim->valid = true;
    victim->tag = tag;
    victim->lruStamp = stamp;
    return false;
}

bool
SetAssocCache::access(uint64_t addr)
{
    return probeInstall(addr, true);
}

void
SetAssocCache::touch(uint64_t addr)
{
    probeInstall(addr, false);
}

bool
SetAssocCache::probe(uint64_t addr) const
{
    uint32_t set = setOf(addr);
    uint64_t tag = tagOf(addr);
    const Way *base = &store[size_t(set) * ways];
    for (uint32_t w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
SetAssocCache::invalidateAll()
{
    for (auto &way : store)
        way.valid = false;
}

void
SetAssocCache::resetStats()
{
    nAccesses = 0;
    nMisses = 0;
}

} // namespace kilo::mem
