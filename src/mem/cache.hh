/**
 * @file
 * Set-associative cache tag model with LRU replacement.
 *
 * Only tags are modelled — the simulator is trace driven and never
 * needs data. One instance each models the L1D and the (size-swept)
 * L2 of the paper's memory subsystems.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "src/util/logging.hh"

namespace kilo::mem
{

/** Geometry of a cache level. */
struct CacheGeometry
{
    uint64_t sizeBytes = 32 * 1024;
    uint32_t assoc = 4;
    uint32_t lineBytes = 64;
};

/**
 * Tag array of one cache level.
 *
 * access() probes and, on a miss, installs the line (fetch-on-miss,
 * write-allocate); LRU state is a per-way generation stamp.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheGeometry &geom);

    /**
     * Probe for @p addr, updating LRU state and installing the line
     * on a miss.
     * @return true on hit.
     */
    bool access(uint64_t addr);

    /**
     * Evolve tag state exactly as access() would — LRU refresh on a
     * hit, installation on absence — without counting an access or a
     * miss. Used for MSHR fill reservations: a merged access keeps
     * the line's tag warm, but its miss was already charged to the
     * primary access that started the fill.
     */
    void touch(uint64_t addr);

    /** Probe without modifying any state. */
    bool probe(uint64_t addr) const;

    /** Drop every line. */
    void invalidateAll();

    /** Number of sets. */
    uint32_t numSets() const { return sets; }

    /** Associativity. */
    uint32_t numWays() const { return ways; }

    /** Line size in bytes. */
    uint32_t lineSize() const { return line; }

    /** Total accesses observed. */
    uint64_t accesses() const { return nAccesses; }

    /** Total misses observed. */
    uint64_t misses() const { return nMisses; }

    /** Miss ratio in [0, 1]. */
    double
    missRatio() const
    {
        return nAccesses ? double(nMisses) / double(nAccesses) : 0.0;
    }

    /** Zero the statistics (end of warm-up). */
    void resetStats();

    /** Serialize / restore tag state and statistics, field by field
     *  (Way has tail padding; indeterminate padding bytes must never
     *  reach a checkpoint payload or a KILOAUD state digest).
     *  Geometry is configuration; load() asserts it matches. @{ */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        s.template scalar<uint64_t>(store.size());
        for (const Way &w : store) {
            s.template scalar<uint64_t>(w.tag);
            s.template scalar<uint64_t>(w.lruStamp);
            s.template scalar<uint8_t>(w.valid ? 1 : 0);
        }
        s.template scalar<uint64_t>(stamp);
        s.template scalar<uint64_t>(nAccesses);
        s.template scalar<uint64_t>(nMisses);
    }

    template <typename Source>
    void
    load(Source &s)
    {
        uint64_t sz = s.template scalar<uint64_t>();
        KILO_ASSERT(sz == store.size(),
                    "cache checkpoint geometry mismatch");
        for (Way &w : store) {
            w.tag = s.template scalar<uint64_t>();
            w.lruStamp = s.template scalar<uint64_t>();
            w.valid = s.template scalar<uint8_t>() != 0;
        }
        stamp = s.template scalar<uint64_t>();
        nAccesses = s.template scalar<uint64_t>();
        nMisses = s.template scalar<uint64_t>();
    }
    /** @} */

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint64_t lruStamp = 0;
        bool valid = false;
    };

    /** Geometry is power-of-two by construction, so indexing is pure
     *  shift/mask — no divide or modulo on the access path. @{ */
    uint64_t lineOf(uint64_t addr) const { return addr >> lineShift; }

    uint32_t
    setOf(uint64_t addr) const
    {
        return uint32_t(lineOf(addr)) & setMask;
    }

    uint64_t tagOf(uint64_t addr) const { return lineOf(addr) >> setShift; }
    /** @} */

    bool probeInstall(uint64_t addr, bool count_stats);

    uint32_t sets;
    uint32_t ways;
    uint32_t line;
    uint32_t lineShift; ///< log2(line)
    uint32_t setShift;  ///< log2(sets)
    uint32_t setMask;   ///< sets - 1
    std::vector<Way> store;
    uint64_t stamp = 0;
    uint64_t nAccesses = 0;
    uint64_t nMisses = 0;
};

} // namespace kilo::mem

