#include "src/mem/hierarchy.hh"

#include "src/util/logging.hh"

namespace kilo::mem
{

const char *
serviceLevelName(ServiceLevel lvl)
{
    switch (lvl) {
      case ServiceLevel::L1: return "L1";
      case ServiceLevel::L2: return "L2";
      case ServiceLevel::Memory: return "MEM";
    }
    KILO_PANIC("unknown ServiceLevel");
}

MemConfig
MemConfig::l1Only()
{
    MemConfig cfg;
    cfg.name = "L1-2";
    cfg.perfectL1 = true;
    cfg.hasL2 = false;
    return cfg;
}

MemConfig
MemConfig::l2Perfect11()
{
    MemConfig cfg;
    cfg.name = "L2-11";
    cfg.perfectL2 = true;
    cfg.l2Latency = 11;
    return cfg;
}

MemConfig
MemConfig::l2Perfect21()
{
    MemConfig cfg;
    cfg.name = "L2-21";
    cfg.perfectL2 = true;
    cfg.l2Latency = 21;
    return cfg;
}

MemConfig
MemConfig::mem100()
{
    MemConfig cfg;
    cfg.name = "MEM-100";
    cfg.memLatency = 100;
    return cfg;
}

MemConfig
MemConfig::mem400()
{
    MemConfig cfg;
    cfg.name = "MEM-400";
    cfg.memLatency = 400;
    return cfg;
}

MemConfig
MemConfig::mem1000()
{
    MemConfig cfg;
    cfg.name = "MEM-1000";
    cfg.memLatency = 1000;
    return cfg;
}

MemConfig
MemConfig::withL2Size(uint64_t bytes)
{
    MemConfig cfg = mem400();
    cfg.l2Size = bytes;
    cfg.name = "MEM-400/L2-" + std::to_string(bytes / 1024) + "KB";
    return cfg;
}

MemoryHierarchy::MemoryHierarchy(const MemConfig &cfg)
    : cfg(cfg),
      // Sweeping once per fill latency keeps lazy expiry exact to
      // within one fill lifetime at negligible amortised cost.
      mshrs(cfg.numMshrs, cfg.memLatency)
{
    if (!cfg.perfectL1) {
        CacheGeometry g;
        g.sizeBytes = cfg.l1Size;
        g.assoc = cfg.l1Assoc;
        g.lineBytes = cfg.lineBytes;
        l1 = std::make_unique<SetAssocCache>(g);
    }
    if (cfg.hasL2 && !cfg.perfectL2) {
        CacheGeometry g;
        g.sizeBytes = cfg.l2Size;
        g.assoc = cfg.l2Assoc;
        g.lineBytes = cfg.lineBytes;
        l2 = std::make_unique<SetAssocCache>(g);
    }
}

AccessResult
MemoryHierarchy::access(uint64_t addr, bool is_write, uint64_t now)
{
    ++nAccesses;
    AccessResult res;

    if (cfg.perfectL1) {
        res.latency = cfg.l1Latency;
        res.level = ServiceLevel::L1;
        return res;
    }

    // A line with an in-flight off-chip fill services this access when
    // the fill lands, regardless of what the tag arrays say.
    uint64_t line = lineOf(addr);
    if (uint64_t fill_done = mshrs.lookup(line, now)) {
        ++nMerges;
        res.latency = uint32_t(fill_done - now);
        if (res.latency < cfg.l1Latency)
            res.latency = cfg.l1Latency;
        res.level = ServiceLevel::Memory;
        // The fill reservation keeps the tags exactly as warm as a
        // demand access would, but the line's miss was already
        // charged to the primary access — a merge is a merge, not
        // another L1/L2 miss.
        l1->touch(addr);
        if (l2)
            l2->touch(addr);
        return res;
    }

    bool l1_hit = l1->access(addr);
    if (l1_hit) {
        res.latency = cfg.l1Latency;
        res.level = ServiceLevel::L1;
        return res;
    }
    ++nL1Misses;

    if (!cfg.hasL2) {
        // Unreachable with Table 1 configs (L1-2 is perfect), but a
        // two-level-less hierarchy goes straight to memory. There is
        // no L2 to miss in, so this is an L1-to-memory fill, not an
        // L2 miss.
        ++nMemFills;
        res.latency = cfg.memLatency;
        res.level = ServiceLevel::Memory;
        mshrs.allocate(line, now + cfg.memLatency, now);
        return res;
    }

    bool l2_hit = cfg.perfectL2 ? true : l2->access(addr);
    if (l2_hit) {
        res.latency = cfg.l2Latency;
        res.level = ServiceLevel::L2;
        return res;
    }
    ++nL2Misses;
    ++nMemFills;

    res.latency = cfg.memLatency;
    res.level = ServiceLevel::Memory;
    mshrs.allocate(line, now + cfg.memLatency, now);
    (void)is_write; // write-allocate; store latency is hidden by the
                    // write buffer at the core level.
    return res;
}

void
MemoryHierarchy::prewarm(uint64_t base, uint64_t bytes)
{
    for (uint64_t addr = base; addr < base + bytes;
         addr += cfg.lineBytes) {
        if (l1)
            l1->access(addr);
        if (l2)
            l2->access(addr);
    }
}

void
MemoryHierarchy::resetStats()
{
    nAccesses = 0;
    nL1Misses = 0;
    nL2Misses = 0;
    nMemFills = 0;
    nMerges = 0;
    mshrs.resetPeak();
    if (l1)
        l1->resetStats();
    if (l2)
        l2->resetStats();
}

} // namespace kilo::mem
