#include "src/mem/hierarchy.hh"

#include "src/util/logging.hh"
#include "src/util/names.hh"

namespace kilo::mem
{

const char *
serviceLevelName(ServiceLevel lvl)
{
    switch (lvl) {
      case ServiceLevel::L1: return "L1";
      case ServiceLevel::L2: return "L2";
      case ServiceLevel::Memory: return "MEM";
    }
    KILO_PANIC("unknown ServiceLevel");
}

MemConfig
MemConfig::l1Only()
{
    MemConfig cfg;
    cfg.name = "L1-2";
    cfg.perfectL1 = true;
    cfg.hasL2 = false;
    return cfg;
}

MemConfig
MemConfig::l2Perfect11()
{
    MemConfig cfg;
    cfg.name = "L2-11";
    cfg.perfectL2 = true;
    cfg.l2Latency = 11;
    return cfg;
}

MemConfig
MemConfig::l2Perfect21()
{
    MemConfig cfg;
    cfg.name = "L2-21";
    cfg.perfectL2 = true;
    cfg.l2Latency = 21;
    return cfg;
}

MemConfig
MemConfig::mem100()
{
    MemConfig cfg;
    cfg.name = "MEM-100";
    cfg.memLatency = 100;
    return cfg;
}

MemConfig
MemConfig::mem400()
{
    MemConfig cfg;
    cfg.name = "MEM-400";
    cfg.memLatency = 400;
    return cfg;
}

MemConfig
MemConfig::mem1000()
{
    MemConfig cfg;
    cfg.name = "MEM-1000";
    cfg.memLatency = 1000;
    return cfg;
}

MemConfig
MemConfig::withL2Size(uint64_t bytes)
{
    MemConfig cfg = mem400();
    cfg.l2Size = bytes;
    cfg.name = "MEM-400/L2-" + std::to_string(bytes / 1024) + "KB";
    return cfg;
}

namespace
{

struct MemPreset
{
    const char *alias;
    MemConfig (*make)();
};

constexpr MemPreset MemPresets[] = {
    {"l1", MemConfig::l1Only},
    {"l2-11", MemConfig::l2Perfect11},
    {"l2-21", MemConfig::l2Perfect21},
    {"mem-100", MemConfig::mem100},
    {"mem-400", MemConfig::mem400},
    {"mem-1000", MemConfig::mem1000},
};

} // anonymous namespace

MemConfig
MemConfig::byName(const std::string &name)
{
    using util::iequals;
    for (const auto &preset : MemPresets) {
        MemConfig cfg = preset.make();
        if (iequals(name, preset.alias) || iequals(name, cfg.name))
            return cfg;
    }
    KILO_FATAL("unknown memory config '%s' (known: l1 l2-11 l2-21 "
               "mem-100 mem-400 mem-1000)", name.c_str());
}

std::vector<std::string>
MemConfig::names()
{
    std::vector<std::string> out;
    for (const auto &preset : MemPresets)
        out.push_back(preset.alias);
    return out;
}

MemoryHierarchy::MemoryHierarchy(const MemConfig &config)
    : cfg(config),
      // Sweeping once per fill latency keeps lazy expiry exact to
      // within one fill lifetime at negligible amortised cost.
      mshrs(cfg.numMshrs, cfg.memLatency)
{
    if (!cfg.perfectL1) {
        CacheGeometry g;
        g.sizeBytes = cfg.l1Size;
        g.assoc = cfg.l1Assoc;
        g.lineBytes = cfg.lineBytes;
        l1 = std::make_unique<SetAssocCache>(g);
    }
    if (cfg.hasL2 && !cfg.perfectL2) {
        CacheGeometry g;
        g.sizeBytes = cfg.l2Size;
        g.assoc = cfg.l2Assoc;
        g.lineBytes = cfg.lineBytes;
        l2 = std::make_unique<SetAssocCache>(g);
    }
}

AccessResult
MemoryHierarchy::access(uint64_t addr, bool is_write, uint64_t now)
{
    ++nAccesses;
    AccessResult res;

    if (cfg.perfectL1) {
        res.latency = cfg.l1Latency;
        res.level = ServiceLevel::L1;
        return res;
    }

    // A line with an in-flight off-chip fill services this access when
    // the fill lands, regardless of what the tag arrays say.
    uint64_t line = lineOf(addr);
    if (uint64_t fill_done = mshrs.lookup(line, now)) {
        ++nMerges;
        res.latency = uint32_t(fill_done - now);
        if (res.latency < cfg.l1Latency)
            res.latency = cfg.l1Latency;
        res.level = ServiceLevel::Memory;
        // The fill reservation keeps the tags exactly as warm as a
        // demand access would, but the line's miss was already
        // charged to the primary access — a merge is a merge, not
        // another L1/L2 miss.
        l1->touch(addr);
        if (l2)
            l2->touch(addr);
        return res;
    }

    bool l1_hit = l1->access(addr);
    if (l1_hit) {
        res.latency = cfg.l1Latency;
        res.level = ServiceLevel::L1;
        return res;
    }
    ++nL1Misses;

    if (!cfg.hasL2) {
        // Unreachable with Table 1 configs (L1-2 is perfect), but a
        // two-level-less hierarchy goes straight to memory. There is
        // no L2 to miss in, so this is an L1-to-memory fill, not an
        // L2 miss.
        ++nMemFills;
        res.latency = cfg.memLatency;
        res.level = ServiceLevel::Memory;
        mshrs.allocate(line, now + cfg.memLatency, now);
        return res;
    }

    bool l2_hit = cfg.perfectL2 ? true : l2->access(addr);
    if (l2_hit) {
        res.latency = cfg.l2Latency;
        res.level = ServiceLevel::L2;
        return res;
    }
    ++nL2Misses;
    ++nMemFills;

    res.latency = cfg.memLatency;
    res.level = ServiceLevel::Memory;
    mshrs.allocate(line, now + cfg.memLatency, now);
    (void)is_write; // write-allocate; store latency is hidden by the
                    // write buffer at the core level.
    return res;
}

bool
MemoryHierarchy::wouldBlock(uint64_t addr, uint64_t now)
{
    if (!wouldBlockProbe(addr, now))
        return false;
    ++nMshrStalls;
    return true;
}

bool
MemoryHierarchy::wouldBlockProbe(uint64_t addr, uint64_t now)
{
    if (!cfg.mshrStall || cfg.perfectL1)
        return false;

    // Only an access that must start a *new* off-chip fill can need a
    // free MSHR way: merges ride the existing entry, and on-chip hits
    // never reach the file. Probes here are read-only (no LRU touch,
    // no install, no counters) so a false answer followed by access()
    // is indistinguishable from access() alone.
    uint64_t line = lineOf(addr);
    if (mshrs.lookup(line, now) != 0)
        return false; // merges into the in-flight fill
    if (l1->probe(addr))
        return false;
    if (cfg.hasL2 && (cfg.perfectL2 || l2->probe(addr)))
        return false;
    return mshrs.setFull(line, now);
}

void
MemoryHierarchy::prewarm(uint64_t base, uint64_t bytes)
{
    for (uint64_t addr = base; addr < base + bytes;
         addr += cfg.lineBytes) {
        if (l1)
            l1->access(addr);
        if (l2)
            l2->access(addr);
    }
}

void
MemoryHierarchy::warmAccess(uint64_t addr)
{
    if (cfg.perfectL1)
        return;
    // Mirror access()'s tag evolution: the L2 only sees the line when
    // the L1 misses. touch() installs on absence without counting.
    bool l1_hit = l1->probe(addr);
    l1->touch(addr);
    if (!l1_hit && l2)
        l2->touch(addr);
}

void
MemoryHierarchy::registerStats(stats::Registry &reg)
{
    using stats::Row;

    // The JSONL row block, in schema order.
    reg.counter("mem_accesses", "Data accesses into the hierarchy",
                &nAccesses, Row::Yes);
    reg.counter("l2_misses", "Misses of an existing L2", &nL2Misses,
                Row::Yes);
    reg.gauge("l2_miss_ratio", "L2 misses per hierarchy access",
              [this] { return l2MissRatio(); }, Row::Yes);
    reg.counter("mem_fills", "Off-chip line fills started", &nMemFills,
                Row::Yes);
    reg.counter("mshr_merges",
                "Accesses merged into an in-flight fill", &nMerges,
                Row::Yes);
    reg.gaugeInt("mshr_peak", "Peak MSHR occupancy (measured region)",
                 [this] { return uint64_t(mshrs.peakOccupancy()); },
                 Row::Yes);
    reg.gaugeInt("mshr_set_p50",
                 "Median per-set live fills at allocation",
                 [this] {
                     return mshrs.setOccupancy().percentile(0.50);
                 },
                 Row::Yes);
    reg.gaugeInt("mshr_set_p99",
                 "99th-percentile per-set live fills at allocation",
                 [this] {
                     return mshrs.setOccupancy().percentile(0.99);
                 },
                 Row::Yes);
    reg.gaugeInt("mshr_set_max",
                 "Maximum per-set live fills at allocation",
                 [this] { return mshrs.setOccupancy().maxSample(); },
                 Row::Yes);

    // Diagnostics outside the stable row schema.
    reg.counter("l1_misses", "L1 misses", &nL1Misses);
    reg.counter("mshr_stalls",
                "Issue attempts back-pressured by a full MSHR set "
                "(MemConfig::mshrStall structural hazard)",
                &nMshrStalls);
    reg.gaugeInt("mshr_displacements",
                 "Live fills displaced by a full MSHR set "
                 "(nonzero means merges were lost)",
                 [this] { return mshrs.displacements(); });
    // Registry reset and MshrFile::resetPeak (via resetStats) both
    // reset this histogram in place; the overlap is idempotent.
    reg.histogram("mshr_set_occupancy",
                  "Per-set live-fill occupancy sampled at each fill "
                  "allocation (MLP clustering)",
                  &mshrs.setOccupancy());
}

void
MemoryHierarchy::resetStats()
{
    nAccesses = 0;
    nL1Misses = 0;
    nL2Misses = 0;
    nMemFills = 0;
    nMerges = 0;
    nMshrStalls = 0;
    mshrs.resetPeak();
    if (l1)
        l1->resetStats();
    if (l2)
        l2->resetStats();
}

} // namespace kilo::mem
