#include "src/mem/mshr.hh"

#include <bit>

#include "src/util/logging.hh"

namespace kilo::mem
{

MshrFile::MshrFile(uint32_t capacity, uint64_t sweep_period)
    : sweepPeriod(sweep_period ? sweep_period : 1)
{
    KILO_ASSERT(capacity > 0, "MSHR file needs at least one entry");
    // A file smaller than one full set narrows the ways instead of
    // silently rounding up, so deliberately tiny configurations
    // (capacity-sensitivity sweeps) really are that small.
    numWays = capacity < Ways ? capacity : Ways;
    uint32_t sets = std::bit_ceil((capacity + numWays - 1) / numWays);
    setMask = sets - 1;
    entries.resize(size_t(sets) * numWays);
}

MshrFile::Entry *
MshrFile::setOf(uint64_t line)
{
    return &entries[size_t(uint32_t(line) & setMask) * numWays];
}

void
MshrFile::sweepIfDue(uint64_t now)
{
    if (now < nextSweep)
        return;
    for (Entry &e : entries) {
        if (e.fillDone != 0 && e.fillDone <= now)
            freeWay(e);
    }
    nextSweep = now + sweepPeriod;
}

uint64_t
MshrFile::lookup(uint64_t line, uint64_t now)
{
    sweepIfDue(now);
    Entry *set = setOf(line);
    uint64_t fill_done = 0;
    for (uint32_t w = 0; w < numWays; ++w) {
        Entry &e = set[w];
        if (e.fillDone == 0)
            continue;
        if (e.fillDone <= now) {
            // Landed (for the probed line: the tag arrays own it
            // now); reclaim every expired way met along the walk so
            // occupancy tracks live fills, not stale residue.
            freeWay(e);
            continue;
        }
        if (e.line == line)
            fill_done = e.fillDone;
    }
    return fill_done;
}

bool
MshrFile::setFull(uint64_t line, uint64_t now)
{
    sweepIfDue(now);
    Entry *set = setOf(line);
    uint32_t live = 0;
    for (uint32_t w = 0; w < numWays; ++w) {
        Entry &e = set[w];
        if (e.fillDone != 0 && e.fillDone <= now)
            freeWay(e); // lazy expiry, same as lookup/allocate
        if (e.fillDone != 0)
            ++live;
    }
    return live == numWays;
}

void
MshrFile::allocate(uint64_t line, uint64_t fill_done, uint64_t now)
{
    KILO_ASSERT(fill_done > now,
                "fill completing at cycle %llu scheduled at %llu",
                (unsigned long long)fill_done,
                (unsigned long long)now);
    sweepIfDue(now);
    Entry *set = setOf(line);
    Entry *victim = nullptr;
    Entry *soonest = &set[0];
    uint32_t set_live = 0; // live ways after expiry (one set walk)
    for (uint32_t w = 0; w < numWays; ++w) {
        Entry &e = set[w];
        if (e.fillDone != 0 && e.fillDone <= now)
            freeWay(e); // lazy expiry on the probed set
        if (e.fillDone == 0) {
            victim = &e;
        } else {
            ++set_live;
            if (e.fillDone < soonest->fillDone ||
                soonest->fillDone == 0) {
                soonest = &e;
            }
        }
    }
    if (victim == nullptr) {
        // Set full of live fills: displace the one closest to landing
        // (its primary access already carries the correct latency; it
        // only loses the remainder of its merge window).
        ++nDisplaced;
        freeWay(*soonest);
        victim = soonest;
        --set_live;
    }
    victim->line = line;
    victim->fillDone = fill_done;
    ++liveCount;
    if (liveCount > peak)
        peak = liveCount;

    // Sample this set's live-way count after insertion (1..numWays)
    // for the per-set occupancy distribution.
    setOccHist.sample(set_live + 1);
}

} // namespace kilo::mem
