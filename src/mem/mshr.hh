/**
 * @file
 * Fixed-capacity MSHR file tracking in-flight off-chip line fills.
 *
 * The hierarchy used to track fills in an unbounded
 * std::unordered_map whose expired entries were only erased when the
 * same line was re-accessed — a streaming workload (exactly the FP
 * codes the paper studies) leaked one entry per missed line forever
 * and paid a hash probe on every access. This file replaces it with
 * a set-associative array sized at construction:
 *
 *  - lookup is O(ways) over a power-of-two set — no hashing, no
 *    growth, no heap traffic after construction;
 *  - expiry is lazy: a probed set reclaims its own expired ways, and
 *    a compact full scan keyed off `now` (one sweep per fill
 *    latency) reclaims entries in sets that are never revisited, so
 *    steady-state occupancy is exact and bounded;
 *  - when a set is full of live fills the soonest-completing way is
 *    displaced (it loses only its merge window, never its timing) and
 *    the displacement is counted, so a capacity too small for a
 *    workload is visible in the stats instead of silently wrong.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "src/util/histogram.hh"
#include "src/util/logging.hh"

namespace kilo::mem
{

/** Fixed-capacity file of in-flight line fills (MSHR array). */
class MshrFile
{
  public:
    /** Maximum ways per set; lookup cost is bounded by this. A file
     *  smaller than one full set gets exactly @c capacity ways. */
    static constexpr uint32_t Ways = 8;

    /**
     * @param capacity     requested number of entries (rounded up to
     *                     a whole power-of-two number of sets)
     * @param sweep_period cycles between compact expiry scans;
     *                     one fill latency keeps occupancy exact to
     *                     within a single fill lifetime
     */
    MshrFile(uint32_t capacity, uint64_t sweep_period);

    /**
     * Fill-completion cycle of the live in-flight fill covering
     * @p line, or 0 when no such fill exists. Expired entries met
     * along the way are reclaimed.
     */
    uint64_t lookup(uint64_t line, uint64_t now);

    /** Record an off-chip fill of @p line completing at @p fill_done.
     *  @pre fill_done > now (a fill takes at least one cycle) */
    void allocate(uint64_t line, uint64_t fill_done, uint64_t now);

    /**
     * True when every way of @p line's set holds a live fill, i.e. an
     * allocate() now would displace. Expired ways met along the walk
     * are reclaimed first. This is the structural-hazard probe of
     * MemConfig::mshrStall: the core holds the access back instead of
     * letting the file displace a merge window.
     */
    bool setFull(uint64_t line, uint64_t now);

    /** Total entries (post-rounding). */
    uint32_t capacity() const { return uint32_t(entries.size()); }

    /** Live in-flight fills as of the last operation. */
    uint32_t occupancy() const { return liveCount; }

    /** High-water mark of occupancy since the last resetPeak(). */
    uint32_t peakOccupancy() const { return peak; }

    /** Live fills displaced by capacity pressure (should be 0 at a
     *  generous capacity; nonzero means merges were lost). */
    uint64_t displacements() const { return nDisplaced; }

    /**
     * Distribution of per-set live-fill occupancy, sampled at every
     * allocation (after insertion, so samples run 1..ways). This is
     * the MLP clustering view the paper's analysis needs: a workload
     * whose misses pile onto few sets shows a heavy tail here long
     * before displacements() goes nonzero.
     */
    const Histogram &setOccupancy() const { return setOccHist; }

    /** Mutable view for stats registration (reset-in-place binding). */
    Histogram &setOccupancy() { return setOccHist; }

    /** Restart peak tracking from the current occupancy (end of
     *  warm-up); in-flight fills themselves are preserved. */
    void
    resetPeak()
    {
        peak = liveCount;
        nDisplaced = 0;
        setOccHist.reset();
    }

    /** Serialize / restore in-flight fills and statistics. Capacity
     *  and sweep period are configuration. @{ */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        s.podVector(entries);
        setOccHist.save(s);
        s.template scalar<uint32_t>(liveCount);
        s.template scalar<uint32_t>(peak);
        s.template scalar<uint64_t>(nDisplaced);
        s.template scalar<uint64_t>(nextSweep);
    }

    template <typename Source>
    void
    load(Source &s)
    {
        size_t sz = entries.size();
        s.podVector(entries);
        KILO_ASSERT(entries.size() == sz,
                    "MSHR checkpoint capacity mismatch");
        setOccHist.load(s);
        liveCount = s.template scalar<uint32_t>();
        peak = s.template scalar<uint32_t>();
        nDisplaced = s.template scalar<uint64_t>();
        nextSweep = s.template scalar<uint64_t>();
    }
    /** @} */

  private:
    /** One tracked fill; fillDone == 0 means the way is free. */
    struct Entry
    {
        uint64_t line = 0;
        uint64_t fillDone = 0;
    };

    Entry *setOf(uint64_t line);
    void sweepIfDue(uint64_t now);

    void
    freeWay(Entry &e)
    {
        e.fillDone = 0;
        --liveCount;
    }

    std::vector<Entry> entries;  ///< sets x numWays, sized once
    Histogram setOccHist{1, Ways + 1};  ///< per-set live-way samples
    uint32_t numWays;            ///< min(capacity, Ways)
    uint32_t setMask;            ///< numSets - 1 (power of two)
    uint32_t liveCount = 0;
    uint32_t peak = 0;
    uint64_t nDisplaced = 0;
    uint64_t sweepPeriod;
    uint64_t nextSweep = 0;
};

} // namespace kilo::mem

