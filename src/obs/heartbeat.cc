#include "src/obs/heartbeat.hh"

#include <cinttypes>
#include <cstdio>

namespace kilo::obs
{

std::string
serializeHeartbeat(const Heartbeat &hb)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%s %d %" PRIu64 " %" PRIu64 " %d %" PRIu64
                  " %" PRIu64 " %" PRIu64,
                  HeartbeatTag, hb.shard, hb.jobsDone, hb.jobsTotal,
                  hb.lastJob, hb.instsDone, hb.elapsedMs,
                  hb.lastJobWallMs);
    return buf;
}

bool
parseHeartbeat(const std::string &line, Heartbeat &out)
{
    Heartbeat hb;
    char tag[16] = {};
    int trailing = -1;
    int n = std::sscanf(line.c_str(),
                        "%15s %d %" SCNu64 " %" SCNu64 " %d %" SCNu64
                        " %" SCNu64 " %" SCNu64 " %n",
                        tag, &hb.shard, &hb.jobsDone, &hb.jobsTotal,
                        &hb.lastJob, &hb.instsDone, &hb.elapsedMs,
                        &hb.lastJobWallMs, &trailing);
    if (n != 8 || std::string(tag) != HeartbeatTag)
        return false;
    // Reject trailing garbage: a heartbeat is the whole line.
    if (trailing >= 0 && size_t(trailing) < line.size())
        return false;
    out = hb;
    return true;
}

} // namespace kilo::obs
