/**
 * @file
 * Offline exporters for captured instruction timelines.
 *
 * A Timeline (src/obs/timeline.hh) is a flat event ring; these
 * functions assemble it into per-instruction records and render the
 * two interchange formats the ecosystem's pipeline viewers consume:
 *
 *  - gem5 O3PipeView text ("Konata text"): one fetch line plus one
 *    line per stage per instruction, loadable directly by the Konata
 *    pipeline viewer. The stage mapping and the conventions for
 *    squashed / still-in-flight instructions are documented in
 *    src/obs/DESIGN.md.
 *  - Chrome trace-event JSON: one complete ("X") event per retired
 *    instruction laid out on non-overlapping lanes — the kilo-window
 *    miss-overlap picture — plus instant events for checkpoint
 *    creates/restores. Loadable by chrome://tracing and Perfetto.
 *
 * Export runs strictly offline (after or outside simulation), so it
 * may allocate freely; only Timeline::record() is on the hot path.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/timeline.hh"

namespace kilo::obs
{

/** One instruction's lifecycle, assembled from timeline events. */
struct InstRecord
{
    /** Sentinel for a stage the capture never observed. */
    static constexpr uint64_t Unseen = UINT64_MAX;

    uint64_t seq = 0;
    uint64_t pc = 0;
    uint8_t opClass = 0;

    uint64_t fetch = Unseen;
    uint64_t rename = Unseen;
    uint64_t issue = Unseen;
    uint64_t complete = Unseen;
    uint64_t commit = Unseen;

    bool squashed = false;
    uint64_t squashCycle = Unseen;
    bool parked = false;   ///< diverted to LLIB/SLIQ/AP
};

/**
 * Group the ring's events per instruction, program order. Events for
 * an instruction never seen fetching (attached mid-flight) still
 * yield a record with fetch == Unseen.
 */
std::vector<InstRecord> collectInstructions(const Timeline &t);

/**
 * Render gem5 O3PipeView text (Konata-loadable). Only instructions
 * whose fetch was captured are emitted; instructions still in flight
 * when capture ended are skipped (their lifecycle is incomplete by
 * construction, not by loss).
 */
std::string konataText(const Timeline &t);

/** Render Chrome trace-event JSON (chrome://tracing, Perfetto). */
std::string chromeTraceJson(const Timeline &t);

} // namespace kilo::obs
