/**
 * @file
 * Wall-time self-profile for simulator runs.
 *
 * A Profiler accumulates real (steady-clock) time per named phase via
 * RAII Scope timers. It measures the simulator itself — where a run's
 * wall time goes (warmup vs. measure vs. finish, trace replay vs.
 * core ticking) — and is entirely separate from simulated time.
 *
 * Scopes accept a null Profiler and then do nothing, not even a clock
 * read, so instrumented call sites cost nothing when profiling is off
 * and simulated timing is never affected either way.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kilo::obs
{

class Profiler
{
  public:
    struct Phase
    {
        std::string name;
        uint64_t ns = 0;    ///< accumulated wall time
        uint64_t count = 0; ///< number of scopes recorded
    };

    /** RAII timer; records into the profiler on destruction. */
    class Scope
    {
      public:
        /** @p p may be null: the scope then does nothing at all. */
        Scope(Profiler *p, const char *name);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Profiler *prof;
        size_t idx;
        uint64_t startNs;
    };

    /** Phases in first-seen order; repeated names accumulate. */
    const std::vector<Phase> &phases() const { return data; }

    /** Human-readable table: per-phase ms, share of total, count. */
    std::string report() const;

  private:
    friend class Scope;

    /** Index of @p name, appending a fresh phase on first sight. */
    size_t indexOf(const char *name);

    std::vector<Phase> data;
};

} // namespace kilo::obs
