#include "src/obs/profiler.hh"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace kilo::obs
{

namespace
{

uint64_t
nowNs()
{
    // kilolint: allow(nondeterminism) wall-time self-profile clock
    auto t = std::chrono::steady_clock::now().time_since_epoch();
    return uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t)
            .count());
}

} // anonymous namespace

Profiler::Scope::Scope(Profiler *p, const char *name)
    : prof(p), idx(0), startNs(0)
{
    if (!prof)
        return;
    idx = prof->indexOf(name);
    startNs = nowNs();
}

Profiler::Scope::~Scope()
{
    if (!prof)
        return;
    Phase &ph = prof->data[idx];
    ph.ns += nowNs() - startNs;
    ++ph.count;
}

size_t
Profiler::indexOf(const char *name)
{
    for (size_t i = 0; i < data.size(); ++i) {
        if (data[i].name == name)
            return i;
    }
    Phase ph;
    ph.name = name;
    data.push_back(ph);
    return data.size() - 1;
}

std::string
Profiler::report() const
{
    uint64_t total = 0;
    for (const Phase &p : data)
        total += p.ns;
    std::string out;
    char buf[160];
    for (const Phase &p : data) {
        double ms = double(p.ns) / 1e6;
        double pct =
            total ? 100.0 * double(p.ns) / double(total) : 0.0;
        std::snprintf(buf, sizeof(buf),
                      "%-12s %12.3f ms %6.1f%% %8" PRIu64 "x\n",
                      p.name.c_str(), ms, pct, p.count);
        out += buf;
    }
    return out;
}

} // namespace kilo::obs
