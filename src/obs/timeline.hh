/**
 * @file
 * Plane 1 of the observability layer: per-instruction lifecycle
 * timelines.
 *
 * A Timeline is a fixed-capacity, allocation-free event ring the core
 * models write into when (and only when) one is attached through
 * PipelineBase::attachTimeline(). Every recording site is a single
 * null-check when observability is off — the default — so a run
 * without a timeline executes the exact same instruction/cycle
 * schedule and produces bit-identical statistics (pinned by
 * tests/test_obs.cpp).
 *
 * Capacity is fixed at construction: the buffer is preallocated once
 * and record() never touches the heap, keeping the zero-steady-state-
 * allocation guarantee intact even with observability on. When the
 * buffer fills, further events are dropped (not overwritten) and
 * counted — the captured prefix stays a contiguous, in-order record
 * of the run from the attach point, which is what the offline
 * exporters (src/obs/export.hh) need.
 *
 * Events carry cycle, instruction sequence number, a small payload
 * (pc at fetch, service level at issue, ...) and nothing else; all
 * interpretation — per-instruction grouping, Konata/Chrome-trace
 * mapping — happens offline in the exporters. See src/obs/DESIGN.md
 * for the event schema.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kilo::obs
{

/** Lifecycle points recorded per instruction (src/obs/DESIGN.md). */
enum class EventKind : uint8_t
{
    Fetch = 0,    ///< entered the fetch buffer; payload = pc, a = op class
    Rename,       ///< renamed/dispatched into the window
    Issue,        ///< issued to execute; a = mem service level
    Complete,     ///< result written back
    Commit,       ///< architecturally retired
    Squash,       ///< discarded on a recovery
    Park,         ///< diverted to a slow-lane structure (LLIB/SLIQ/AP)
    CkptCreate,   ///< checkpoint taken at this branch; payload = depth
    CkptRestore,  ///< recovery restored through a checkpoint;
                  ///< payload = 1 covered, 0 replayed uncovered
    NumKinds
};

/** One timeline entry (32 bytes, trivially copyable). */
struct TimelineEvent
{
    uint64_t cycle = 0;
    uint64_t seq = 0;      ///< dynamic instruction sequence number
    uint64_t payload = 0;  ///< kind-specific (see EventKind)
    EventKind kind = EventKind::Fetch;
    uint8_t a = 0;         ///< kind-specific small payload
    uint16_t pad16 = 0;
    uint32_t pad32 = 0;
};

static_assert(sizeof(TimelineEvent) == 32,
              "TimelineEvent is sized for bulk capture; keep it tight");

/** Fixed-capacity, allocation-free instruction-event ring. */
class Timeline
{
  public:
    /** Preallocates @p capacity event slots up front. */
    explicit Timeline(size_t capacity);

    /** Append one event; drops (and counts) when full. Never
     *  allocates. */
    void
    record(uint64_t cycle, EventKind kind, uint64_t seq,
           uint64_t payload = 0, uint8_t a = 0)
    {
        if (used == buf.size()) {
            ++nDropped;
            return;
        }
        TimelineEvent &e = buf[used++];
        e.cycle = cycle;
        e.seq = seq;
        e.payload = payload;
        e.kind = kind;
        e.a = a;
    }

    /** Captured events, oldest first. */
    const TimelineEvent *data() const { return buf.data(); }

    /** Captured event count (<= capacity()). */
    size_t size() const { return used; }

    /** Event slots allocated at construction. */
    size_t capacity() const { return buf.size(); }

    /** Events discarded because the buffer was full. */
    uint64_t dropped() const { return nDropped; }

    /** Forget captured events; capacity is retained. */
    void
    clear()
    {
        used = 0;
        nDropped = 0;
    }

  private:
    std::vector<TimelineEvent> buf;
    size_t used = 0;
    uint64_t nDropped = 0;
};

} // namespace kilo::obs
