#include "src/obs/audit.hh"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>

namespace kilo::obs
{

namespace
{

// Local FNV-1a for the header checksum: audit.hh owns the KILOAUD
// format end to end, so it does not borrow ckpt::fnv1a (readers of
// this file must never need the checkpoint layer).
uint64_t
fnv1a(const uint8_t *p, size_t n)
{
    uint64_t h = AuditBasis;
    for (size_t i = 0; i < n; ++i)
        h = (h ^ p[i]) * AuditPrime;
    return h;
}

void
putBytes(std::FILE *f, const void *data, size_t size,
         const std::string &path)
{
    if (size && std::fwrite(data, 1, size, f) != size)
        throw AuditError("audit write failed: " + path);
}

void
getBytes(std::FILE *f, void *out, size_t size, const std::string &path)
{
    if (size && std::fread(out, 1, size, f) != size)
        throw AuditError("audit stream truncated: " + path);
}

template <typename T>
T
peel(const uint8_t *&p)
{
    // Little-endian on-disk; every supported target is too, so a
    // byte copy of the in-memory representation is the decoding.
    static_assert(std::endian::native == std::endian::little,
                  "KILOAUD format requires a little-endian host");
    T v;
    std::memcpy(&v, p, sizeof(v));
    p += sizeof(v);
    return v;
}

template <typename T>
void
pack(uint8_t *&p, T v)
{
    static_assert(std::endian::native == std::endian::little,
                  "KILOAUD format requires a little-endian host");
    std::memcpy(p, &v, sizeof(v));
    p += sizeof(v);
}

constexpr size_t HeaderBytes = 8 + 4 + 4 + 8 + 8; // before checksum
constexpr size_t RecordBytes = 32;

/** RAII FILE handle so validation throws don't leak the stream. */
struct FileCloser
{
    std::FILE *f;
    ~FileCloser()
    {
        if (f)
            std::fclose(f);
    }
};

} // anonymous namespace

void
writeAuditFile(const std::string &path, const AuditStream &stream)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw AuditError("cannot create audit file: " + path);
    FileCloser closer{f};

    uint8_t header[HeaderBytes];
    uint8_t *p = header;
    std::memcpy(p, AuditMagic, sizeof(AuditMagic));
    p += sizeof(AuditMagic);
    pack(p, AuditVersion);
    pack(p, uint32_t(0)); // reserved
    pack(p, stream.intervalInsts);
    pack(p, uint64_t(stream.records.size()));
    putBytes(f, header, sizeof(header), path);
    uint64_t checksum = fnv1a(header, sizeof(header));
    putBytes(f, &checksum, sizeof(checksum), path);

    for (const AuditRecord &r : stream.records) {
        uint8_t rec[RecordBytes];
        uint8_t *q = rec;
        pack(q, r.insts);
        pack(q, r.cycle);
        pack(q, r.state);
        pack(q, r.rolling);
        putBytes(f, rec, sizeof(rec), path);
    }

    uint64_t final_rolling = stream.finalRolling();
    putBytes(f, &final_rolling, sizeof(final_rolling), path);

    closer.f = nullptr;
    if (std::fclose(f) != 0)
        throw AuditError("audit close failed: " + path);
}

AuditStream
readAuditFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw AuditError("cannot open audit file: " + path);
    FileCloser closer{f};

    uint8_t header[HeaderBytes];
    getBytes(f, header, sizeof(header), path);
    const uint8_t *p = header;
    if (std::memcmp(p, AuditMagic, sizeof(AuditMagic)) != 0)
        throw AuditError("not a KILOAUD file (bad magic): " + path);
    p += sizeof(AuditMagic);
    uint32_t version = peel<uint32_t>(p);
    if (version != AuditVersion) {
        throw AuditError("KILOAUD version mismatch in " + path +
                         ": file has v" + std::to_string(version) +
                         ", reader expects v" +
                         std::to_string(AuditVersion) +
                         " (streams are never migrated)");
    }
    peel<uint32_t>(p); // reserved
    AuditStream stream;
    stream.intervalInsts = peel<uint64_t>(p);
    uint64_t count = peel<uint64_t>(p);

    uint64_t checksum;
    getBytes(f, &checksum, sizeof(checksum), path);
    if (checksum != fnv1a(header, sizeof(header)))
        throw AuditError("KILOAUD header checksum mismatch: " + path);

    // Guard the reserve below against a fabricated record count:
    // anything past ~2^40 records cannot be a real stream.
    if (count > (uint64_t(1) << 40))
        throw AuditError("KILOAUD record count implausible: " + path);

    uint64_t rolling = AuditBasis;
    stream.records.reserve(size_t(count));
    for (uint64_t i = 0; i < count; ++i) {
        uint8_t rec[RecordBytes];
        getBytes(f, rec, sizeof(rec), path);
        const uint8_t *q = rec;
        AuditRecord r;
        r.insts = peel<uint64_t>(q);
        r.cycle = peel<uint64_t>(q);
        r.state = peel<uint64_t>(q);
        r.rolling = peel<uint64_t>(q);
        rolling = auditMix(rolling, r.insts, r.cycle, r.state);
        if (r.rolling != rolling) {
            throw AuditError(
                "KILOAUD rolling chain broken at record " +
                std::to_string(i) + ": " + path);
        }
        stream.records.push_back(r);
    }

    uint64_t final_rolling;
    getBytes(f, &final_rolling, sizeof(final_rolling), path);
    if (final_rolling != stream.finalRolling())
        throw AuditError("KILOAUD trailing digest mismatch: " + path);
    if (std::fgetc(f) != EOF)
        throw AuditError("KILOAUD trailing garbage after stream: " +
                         path);
    return stream;
}

long
firstDivergence(const AuditStream &a, const AuditStream &b)
{
    if (a.intervalInsts != b.intervalInsts) {
        throw AuditError(
            "KILOAUD streams recorded at different cadences (" +
            std::to_string(a.intervalInsts) + " vs " +
            std::to_string(b.intervalInsts) +
            " insts) are not comparable");
    }
    size_t n = std::min(a.records.size(), b.records.size());
    for (size_t i = 0; i < n; ++i) {
        const AuditRecord &ra = a.records[i];
        const AuditRecord &rb = b.records[i];
        if (ra.insts != rb.insts || ra.cycle != rb.cycle ||
            ra.state != rb.state || ra.rolling != rb.rolling)
            return long(i);
    }
    if (a.records.size() != b.records.size())
        return long(n);
    return -1;
}

} // namespace kilo::obs
