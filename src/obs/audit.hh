/**
 * @file
 * Determinism audit plane: KILOAUD state-hash streams.
 *
 * The fourth observability plane (src/obs/DESIGN.md v2). At a
 * configurable instruction cadence a Session folds a deterministic
 * FNV-style digest over its complete architectural state — exactly
 * the bytes the checkpoint machinery serializes, via a Digest-mode
 * ckpt::Sink, plus every registered statistic — and records one
 * 32-byte AuditRecord per interval. Two runs of the same
 * configuration are deterministic if and only if their KILOAUD
 * streams are byte-identical; the first record that differs names
 * the first divergent interval, and tools/kilodiff bisects inside it
 * (src/obs_audit/bisect.hh) to the first divergent cycle.
 *
 * This header is self-contained on purpose: the stream format owns
 * its own FNV constants and file IO so that readers (tools, the
 * shard orchestrator) never need the simulator proper. The digest
 * *producer* lives in src/sim/session.cc.
 *
 * On-disk container (all fields little-endian, mirroring the
 * KILOTRC conventions in src/trace/trace_format.hh):
 *
 *     char[8]  magic      "KILOAUD1"
 *     u32      version    AuditVersion (bumped on any layout or
 *                         digest-composition change; old streams are
 *                         rejected, never migrated)
 *     u32      reserved   0
 *     u64      intervalInsts   cadence the stream was recorded at
 *     u64      recordCount
 *     u64      headerChecksum  FNV-1a over the 32 bytes above
 *     records  recordCount × 32-byte AuditRecord
 *     u64      finalRolling    rolling digest after the last record
 *
 * Each AuditRecord chains into a rolling digest via auditMix(), so a
 * reader can detect both corruption (the chain breaks) and
 * truncation (finalRolling disagrees) without trusting the header.
 */

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace kilo::obs
{

/** Any failure to produce, parse or validate a KILOAUD stream. */
class AuditError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** File magic, first 8 bytes of every KILOAUD file. */
constexpr char AuditMagic[8] = {'K', 'I', 'L', 'O', 'A', 'U', 'D', '1'};

/** Stream format version; bumped on any layout or digest change. */
constexpr uint32_t AuditVersion = 1;

/** FNV-1a offset basis — the seed of every audit digest chain. */
constexpr uint64_t AuditBasis = 14695981039346656037ull;

/** FNV prime used by every audit fold. */
constexpr uint64_t AuditPrime = 1099511628211ull;

/** One interval-boundary observation; exactly 32 bytes on disk. */
struct AuditRecord
{
    uint64_t insts = 0;   ///< committed instructions at the boundary
    uint64_t cycle = 0;   ///< absolute core cycle at the boundary
    uint64_t state = 0;   ///< state digest (checkpoint bytes + stats)
    uint64_t rolling = 0; ///< chain digest after folding this record
};

/** Fold one record into the rolling chain digest. */
constexpr uint64_t
auditMix(uint64_t rolling, uint64_t insts, uint64_t cycle,
         uint64_t state)
{
    rolling = (rolling ^ insts) * AuditPrime;
    rolling = (rolling ^ cycle) * AuditPrime;
    rolling = (rolling ^ state) * AuditPrime;
    return rolling;
}

/** A parsed (or under-construction) KILOAUD stream. */
struct AuditStream
{
    uint64_t intervalInsts = 0;
    std::vector<AuditRecord> records;

    /** finalRolling of the stream (AuditBasis when empty). */
    uint64_t
    finalRolling() const
    {
        return records.empty() ? AuditBasis : records.back().rolling;
    }
};

/** Write @p stream to @p path in the KILOAUD container. */
void writeAuditFile(const std::string &path,
                    const AuditStream &stream);

/**
 * Read and validate a KILOAUD file. Validates magic, version, header
 * checksum, record count against file size, the per-record rolling
 * chain (recomputed from AuditBasis) and the trailing finalRolling.
 * Throws AuditError on any malformation.
 */
AuditStream readAuditFile(const std::string &path);

/**
 * Index of the first record where @p a and @p b disagree (any field),
 * or -1 if no compared record differs. Streams of unequal length
 * diverge at the shorter length if all shared records agree. Streams
 * recorded at different cadences are not comparable (AuditError).
 */
long firstDivergence(const AuditStream &a, const AuditStream &b);

} // namespace kilo::obs
