#include "src/obs/timeline.hh"

namespace kilo::obs
{

Timeline::Timeline(size_t capacity)
{
    // The one allocation this class ever performs: record() writes
    // into preallocated slots and drops on overflow.
    buf.resize(capacity ? capacity : 1);
}

} // namespace kilo::obs
