/**
 * @file
 * Worker heartbeat lines for live sweep telemetry.
 *
 * A sharded worker running with --heartbeat emits one Heartbeat line
 * on stderr after every finished job; the orchestrator parses them
 * out of the stderr stream to drive its merged progress display and
 * per-shard telemetry. The wire format is a single text line,
 *
 *   KILOHB <shard> <jobsDone> <jobsTotal> <lastJob> <instsDone>
 *          <elapsedMs> <lastJobWallMs>
 *
 * chosen so heartbeats survive line-buffered pipes, interleave safely
 * with diagnostic stderr output, and stay trivially greppable. Lines
 * not starting with the KILOHB tag are not heartbeats and must be
 * passed through untouched.
 */

#pragma once

#include <cstdint>
#include <string>

namespace kilo::obs
{

struct Heartbeat
{
    int shard = 0;            ///< shard index within the sweep
    uint64_t jobsDone = 0;    ///< jobs finished so far
    uint64_t jobsTotal = 0;   ///< jobs assigned to this shard
    int lastJob = -1;         ///< global index of last finished job
    uint64_t instsDone = 0;   ///< committed insts across done jobs
    uint64_t elapsedMs = 0;   ///< wall time since the worker started
    uint64_t lastJobWallMs = 0; ///< wall time of the last job alone
};

/** Wire tag heartbeat lines start with. */
inline constexpr const char *HeartbeatTag = "KILOHB";

/** Render @p hb as one wire line (no trailing newline). */
std::string serializeHeartbeat(const Heartbeat &hb);

/**
 * Parse one wire line into @p out. Returns false (leaving @p out
 * untouched) when @p line is not a well-formed heartbeat; callers
 * then treat the line as ordinary stderr output.
 */
bool parseHeartbeat(const std::string &line, Heartbeat &out);

} // namespace kilo::obs
