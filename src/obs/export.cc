#include "src/obs/export.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>

#include "src/isa/micro_op.hh"

namespace kilo::obs
{

std::vector<InstRecord>
collectInstructions(const Timeline &t)
{
    // Sequence numbers are NOT unique across a capture: a squash
    // rewinds the fetch sequence, so the refetched correct path
    // reuses the wrong path's seq values. A Fetch event therefore
    // always opens a fresh dynamic instance; `open` maps each seq to
    // its current (youngest) instance. The output keeps event order,
    // which is fetch order for instructions seen fetching.
    // (std::map, not unordered: determinism lint, tree-wide.)
    std::vector<InstRecord> out;
    std::map<uint64_t, size_t> open;
    auto liveRecord = [&](uint64_t seq) -> InstRecord & {
        auto it = open.find(seq);
        if (it != open.end())
            return out[it->second];
        out.emplace_back();
        out.back().seq = seq;
        open[seq] = out.size() - 1;
        return out.back();
    };
    const TimelineEvent *ev = t.data();
    for (size_t i = 0; i < t.size(); ++i) {
        const TimelineEvent &e = ev[i];
        switch (e.kind) {
          case EventKind::Fetch: {
            open.erase(e.seq); // retire any previous instance
            InstRecord &r = liveRecord(e.seq);
            r.fetch = e.cycle;
            r.pc = e.payload;
            r.opClass = e.a;
            break;
          }
          case EventKind::Rename:
            liveRecord(e.seq).rename = e.cycle;
            break;
          case EventKind::Issue:
            liveRecord(e.seq).issue = e.cycle;
            break;
          case EventKind::Complete:
            liveRecord(e.seq).complete = e.cycle;
            break;
          case EventKind::Commit:
            liveRecord(e.seq).commit = e.cycle;
            break;
          case EventKind::Squash: {
            InstRecord &r = liveRecord(e.seq);
            r.squashed = true;
            r.squashCycle = e.cycle;
            break;
          }
          case EventKind::Park:
            liveRecord(e.seq).parked = true;
            break;
          default:
            break; // checkpoint events are not lifecycle stages
        }
    }
    return out;
}

namespace
{

void
appendLine(std::string &out, const char *fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

void
appendLine(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (n > 0)
        out.append(buf, std::min(size_t(n), sizeof(buf) - 1));
}

/** Monotone stage clamp: a stage the capture missed inherits the
 *  previous stage's cycle so viewers see a well-formed lifecycle. */
uint64_t
stageOr(uint64_t stage, uint64_t prev)
{
    return stage == InstRecord::Unseen ? prev : stage;
}

} // anonymous namespace

std::string
konataText(const Timeline &t)
{
    std::string out;
    auto insts = collectInstructions(t);
    for (const InstRecord &r : insts) {
        if (r.fetch == InstRecord::Unseen)
            continue; // attached mid-flight; lifecycle head missing
        bool done = r.commit != InstRecord::Unseen || r.squashed;
        if (!done)
            continue; // still in flight when capture ended
        uint64_t fetch = r.fetch;
        uint64_t rename = stageOr(r.rename, fetch);
        uint64_t issue = stageOr(r.issue, rename);
        uint64_t complete = stageOr(r.complete, issue);
        const char *mn = isa::opClassName(isa::OpClass(r.opClass));
        appendLine(out,
                   "O3PipeView:fetch:%" PRIu64 ":0x%08" PRIx64
                   ":0:%" PRIu64 ":%s%s\n",
                   fetch, r.pc, r.seq, mn, r.parked ? " [slow]" : "");
        appendLine(out, "O3PipeView:decode:%" PRIu64 "\n", rename);
        appendLine(out, "O3PipeView:rename:%" PRIu64 "\n", rename);
        appendLine(out, "O3PipeView:dispatch:%" PRIu64 "\n", rename);
        appendLine(out, "O3PipeView:issue:%" PRIu64 "\n", issue);
        appendLine(out, "O3PipeView:complete:%" PRIu64 "\n", complete);
        if (r.squashed) {
            // gem5's convention for squashed instructions: a zero
            // retire tick marks the lifecycle as flushed.
            appendLine(out, "O3PipeView:retire:0:store:0\n");
        } else {
            appendLine(out, "O3PipeView:retire:%" PRIu64 ":store:0\n",
                       r.commit);
        }
    }
    return out;
}

std::string
chromeTraceJson(const Timeline &t)
{
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const std::string &obj) {
        if (!first)
            out += ',';
        first = false;
        out += obj;
    };

    // Retired instructions as complete events on non-overlapping
    // lanes: greedy first-free-lane assignment over fetch..commit
    // intervals makes the window's miss overlap directly visible.
    auto insts = collectInstructions(t);
    std::vector<uint64_t> lane_end; // last occupied cycle per lane
    for (const InstRecord &r : insts) {
        if (r.fetch == InstRecord::Unseen)
            continue;
        uint64_t end = r.squashed ? r.squashCycle : r.commit;
        if (end == InstRecord::Unseen || end < r.fetch)
            continue;
        size_t lane = lane_end.size();
        for (size_t i = 0; i < lane_end.size(); ++i) {
            if (lane_end[i] <= r.fetch) {
                lane = i;
                break;
            }
        }
        if (lane == lane_end.size())
            lane_end.push_back(0);
        lane_end[lane] = end + 1;

        char buf[320];
        std::snprintf(
            buf, sizeof(buf),
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64
            ",\"pid\":0,\"tid\":%zu,\"args\":{\"seq\":%" PRIu64
            ",\"pc\":\"0x%" PRIx64 "\",\"issue\":%" PRIu64
            ",\"complete\":%" PRIu64 "}}",
            isa::opClassName(isa::OpClass(r.opClass)),
            r.squashed ? "squashed" : (r.parked ? "slow" : "inst"),
            r.fetch, end - r.fetch, lane, r.seq, r.pc,
            r.issue == InstRecord::Unseen ? 0 : r.issue,
            r.complete == InstRecord::Unseen ? 0 : r.complete);
        emit(buf);
    }

    // Checkpoint creates/restores as global instant events.
    const TimelineEvent *ev = t.data();
    for (size_t i = 0; i < t.size(); ++i) {
        const TimelineEvent &e = ev[i];
        if (e.kind != EventKind::CkptCreate &&
            e.kind != EventKind::CkptRestore)
            continue;
        char buf[192];
        std::snprintf(
            buf, sizeof(buf),
            "{\"name\":\"%s\",\"cat\":\"ckpt\",\"ph\":\"i\","
            "\"ts\":%" PRIu64 ",\"pid\":0,\"s\":\"g\","
            "\"args\":{\"seq\":%" PRIu64 ",\"v\":%" PRIu64 "}}",
            e.kind == EventKind::CkptCreate ? "ckpt_create"
                                            : "ckpt_restore",
            e.cycle, e.seq, e.payload);
        emit(buf);
    }

    out += "],\"displayTimeUnit\":\"ns\",\"otherData\":{"
           "\"dropped\":" +
           std::to_string(t.dropped()) + "}}";
    return out;
}

} // namespace kilo::obs
