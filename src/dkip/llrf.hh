/**
 * @file
 * Low-Locality Register File (LLRF).
 *
 * Banked storage for the single READY operand an instruction may
 * carry into the LLIB (paper section 3.2). Eight single-ported banks
 * with independent free lists; insertion and extraction operate on
 * disjoint bank groups, and a read that collides with a bank written
 * in the same cycle stalls extraction for one cycle. The paper
 * computes a 6.6x area reduction against a centralised 4R/4W file —
 * we model the timing consequences (bank conflicts, fill-up stalls).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "src/core/dyn_inst.hh"
#include "src/util/free_list.hh"

namespace kilo::dkip
{

/** Banked LLRF model. */
class Llrf
{
  public:
    /**
     * @param num_banks      number of single-ported banks
     * @param regs_per_bank  slots per bank
     */
    Llrf(int num_banks = 8, int regs_per_bank = 256);

    /** Total slots. */
    uint32_t numSlots() const;

    /** Slots currently allocated. */
    uint32_t numAllocated() const;

    /** True when no bank has a free slot. */
    bool fullyAllocated() const;

    /**
     * Allocate a slot for @p inst's READY operand, round-robin over
     * the banks, and mark the chosen bank written this cycle.
     * @return false when every bank is full.
     */
    bool tryAlloc(core::DynInst &inst);

    /** Free the slot held by @p inst (extraction or squash). */
    void release(core::DynInst &inst);

    /** True when @p bank was written this cycle (read conflict). */
    bool bankWrittenThisCycle(int bank) const;

    /** Clear the per-cycle write marks. */
    void beginCycle() { writtenMask = 0; }

    /** Number of banks. */
    int numBanks() const { return int(banks.size()); }

    /** Serialize / restore bank free lists, per-cycle write marks and
     *  the round-robin cursor. Bank geometry is configuration. @{ */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        for (const FreeList &b : banks)
            b.save(s);
        s.template scalar<uint64_t>(writtenMask);
        s.template scalar<int32_t>(int32_t(rrBank));
    }

    template <typename Source>
    void
    load(Source &s)
    {
        for (FreeList &b : banks)
            b.load(s);
        writtenMask = s.template scalar<uint64_t>();
        rrBank = int(s.template scalar<int32_t>());
    }
    /** @} */

  private:
    std::vector<FreeList> banks;
    uint64_t writtenMask = 0;
    int rrBank = 0;
};

} // namespace kilo::dkip

