#include "src/dkip/dkip_core.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace kilo::dkip
{

DkipParams
DkipParams::dkip2048()
{
    DkipParams p;
    p.cp.name = "dkip-2048";
    p.cp.robSize = 64;
    p.cp.intIqSize = 40;
    p.cp.fpIqSize = 40;
    p.cp.intPolicy = core::SchedPolicy::OutOfOrder;
    p.cp.fpPolicy = core::SchedPolicy::OutOfOrder;
    // Out-of-order-commit machines retire in checkpointed bulk; the
    // in-order accounting drain is widened so it never throttles the
    // decoupled back end.
    p.cp.commitWidth = 8;
    return p;
}

DkipCore::DkipCore(const DkipParams &params, wload::Workload &wl,
                   const mem::MemConfig &mem_config)
    : core::OooCore(params.cp, wl, mem_config),
      dprm(params),
      llbv(isa::NumRegs),
      llibInt("llibInt", params.llibCapacity, arena),
      llibFp("llibFp", params.llibCapacity, arena),
      llrfInt(params.llrfBanks, params.llrfRegsPerBank),
      llrfFp(params.llrfBanks, params.llrfRegsPerBank),
      mpIntQ("mpIntQ", params.mpIqSize, params.mpPolicy, arena),
      mpFpQ("mpFpQ", params.mpIqSize, params.mpPolicy, arena),
      apQ("apQ", params.cp.lsqSize, core::SchedPolicy::OutOfOrder,
          arena),
      mpIntFus(params.mpIntFus),
      mpFpFus(params.mpFpFus),
      chkpt(params.checkpointCapacity)
{
    registerIssueQueue(mpIntQ);
    registerIssueQueue(mpFpQ);
    registerIssueQueue(apQ);

    // Decoupled-machine statistics: maintained here, so named and
    // described here (they only appear in the D-KIP stats schema).
    using stats::Row;
    auto &r = statsReg;
    r.counter("llib_inserted_int",
              "Low-locality instructions inserted into the int LLIB",
              &st.llibInsertedInt);
    r.counter("llib_inserted_fp",
              "Low-locality instructions inserted into the FP LLIB",
              &st.llibInsertedFp);
    r.counter("analyze_stall_cycles",
              "Cycles the Analyze stage stalled the aging-ROB drain",
              &st.analyzeStallCycles);
    r.counter("llrf_conflict_stalls",
              "Extractions replayed on an LLRF bank-port conflict",
              &st.llrfConflictStalls);
    r.counter("llib_full_stalls",
              "Analyze stalls because the target LLIB was full",
              &st.llibFullStalls);
    r.counter("llrf_full_stalls",
              "Analyze stalls because no LLRF register was free",
              &st.llrfFullStalls);
    r.counter("checkpoint_skips",
              "LLIB branches with no free checkpoint entry",
              &st.checkpointSkips);
    r.counter("checkpoints_taken", "Checkpoints taken at LLIB branches",
              &st.checkpointsTaken);
    r.counter("max_llib_instrs_int", "Peak int LLIB occupancy",
              &st.maxLlibInstrsInt);
    r.counter("max_llib_instrs_fp", "Peak FP LLIB occupancy",
              &st.maxLlibInstrsFp);
    r.counter("max_llib_regs_int", "Peak int LLRF registers allocated",
              &st.maxLlibRegsInt);
    r.counter("max_llib_regs_fp", "Peak FP LLRF registers allocated",
              &st.maxLlibRegsFp);
    r.gaugeInt("llib_int_occupancy", "Current int LLIB entries",
               [this] { return uint64_t(llibInt.size()); });
    r.gaugeInt("llib_fp_occupancy", "Current FP LLIB entries",
               [this] { return uint64_t(llibFp.size()); });
    r.gaugeInt("checkpoint_depth", "Live checkpoint-stack entries",
               [this] { return uint64_t(chkpt.size()); });
}

void
DkipCore::beginCycleQueues()
{
    core::OooCore::beginCycleQueues();
    mpIntQ.beginCycle();
    mpFpQ.beginCycle();
    apQ.beginCycle();
    llrfInt.beginCycle();
    llrfFp.beginCycle();
}

size_t
DkipCore::totalReady() const
{
    return core::OooCore::totalReady() + mpIntQ.numReady() +
           mpFpQ.numReady() + apQ.numReady();
}

core::StallReason
DkipCore::refineStallReason(const core::DynInst &head,
                            core::StallReason r) const
{
    using R = core::StallReason;
    // A head sitting unissued in a slow-lane structure (LLIB FIFO,
    // MP reservation queue, AP window) is stalled on the decoupled
    // machinery itself — checkpointed slow-lane execution — not on
    // the CP's dataflow or issue bandwidth.
    if ((r == R::Depend || r == R::Issue) &&
        (head.inLlib || head.execInMp))
        return R::Decoupled;
    return r;
}

uint64_t
DkipCore::nextTimedWake() const
{
    uint64_t wake = core::OooCore::nextTimedWake();
    if (!rob.empty()) {
        wake = std::min(wake,
                        arena.cold(rob.front()).dispatchCycle +
                            uint64_t(dprm.robTimer));
    }
    return wake;
}

// ---------------------------------------------------------------------
// Analyze
// ---------------------------------------------------------------------

bool
DkipCore::sourcesLongLatency(const core::DynInst &inst) const
{
    // The paper's rule: classify by the LLBV bits of the source
    // registers; Analyze is in order, so at this point the LLBV
    // reflects exactly the definitions older than inst.
    int16_t s1 = inst.op.src1;
    int16_t s2 = inst.op.src2;
    return (s1 != isa::NoReg && llbv.test(size_t(s1))) ||
           (s2 != isa::NoReg && llbv.test(size_t(s2)));
}

bool
DkipCore::hasReadyOperand(const core::DynInst &inst) const
{
    const core::DynInstCold &cold = arena.coldOf(inst);
    auto slot_ready = [&](int16_t reg, int slot) {
        if (reg == isa::NoReg)
            return false;
        // Stale handle == producer already left the pipeline, so the
        // operand value is available.
        const core::DynInst *prod =
            arena.tryGet(cold.producers[slot]);
        return !prod || prod->completed;
    };
    return slot_ready(inst.op.src1, 0) ||
           slot_ready(inst.op.src2, 1);
}

bool
DkipCore::insertIntoLlib(InstRef ref)
{
    core::DynInst &inst = arena.get(ref);
    KILO_ASSERT(!inst.issued,
                "issued instruction classified low-locality");
    bool fp = inst.op.isFp();
    Llib &q = fp ? llibFp : llibInt;
    Llrf &rf = fp ? llrfFp : llrfInt;

    if (q.full()) {
        ++st.llibFullStalls;
        return false;
    }
    bool needs_reg = hasReadyOperand(inst);
    if (needs_reg && !rf.tryAlloc(inst)) {
        ++st.llrfFullStalls;
        return false;
    }
    if (inst.op.isBranch()) {
        if (chkpt.full()) {
            // No free checkpoint: the branch proceeds uncovered (the
            // hardware would have skipped this high-confidence-style
            // checkpoint); a misprediction then replays from an older
            // checkpoint at a higher recovery penalty.
            ++st.checkpointSkips;
        } else {
            chkpt.push(inst.seq, llbv);
            ++st.checkpointsTaken;
            obsEvent(obs::EventKind::CkptCreate, inst.seq,
                     chkpt.size());
        }
    }

    if (core::IssueQueue *iq = queueById(inst.iqId))
        iq->erase(ref);
    if (inst.op.dst != isa::NoReg)
        llbv.set(size_t(inst.op.dst));
    inst.inLlib = true;
    inst.longLatency = true;
    inst.execInMp = true;
    obsEvent(obs::EventKind::Park, inst.seq, 0, fp ? 1 : 0);
    q.push(ref);
    if (fp)
        ++st.llibInsertedFp;
    else
        ++st.llibInsertedInt;
    return true;
}

void
DkipCore::stageAnalyze()
{
    int budget = dprm.analyzeWidth;
    while (budget > 0 && !rob.empty()) {
        InstRef headRef = rob.front();
        core::DynInst &head = arena.get(headRef);

        // The Aging-ROB: entries face Analyze a fixed timer after
        // decode. The timer is sized so an L2 hit/miss indication is
        // back by the time a load reaches the head.
        if (now <
            arena.coldOf(head).dispatchCycle + uint64_t(dprm.robTimer))
            break;

        if (head.completed) {
            // Executed: short latency. Completion redefines the
            // destination as high-locality.
            if (head.op.dst != isa::NoReg)
                llbv.clear(size_t(head.op.dst));
            rob.popFront();
            releaseAgingRobEntry(head);
            --budget;
            ++activity;
            continue;
        }

        if (head.op.isLoad() && head.issued) {
            if (head.longLatency) {
                // Off-chip miss: mark the destination low-locality;
                // the Address Processor delivers the value to the
                // LLIB's value FIFO when memory returns.
                if (head.op.dst != isa::NoReg)
                    llbv.set(size_t(head.op.dst));
                rob.popFront();
                releaseAgingRobEntry(head);
                --budget;
                ++activity;
                continue;
            }
            // Cache hit still in flight: wait for writeback.
            ++st.analyzeStallCycles;
            break;
        }

        if (head.issued) {
            // Non-load already executing (its sources were ready even
            // if the LLBV still flags them): short latency by
            // definition; wait for writeback.
            ++st.analyzeStallCycles;
            break;
        }

        bool low = sourcesLongLatency(head);
        if (!low && head.op.isLoad() && !head.issued) {
            // Memory dependence through a low-locality store: the
            // load belongs to the slice even though its registers are
            // high-locality.
            auto check = lsq.checkLoad(head);
            if (check.kind == core::LoadCheck::Kind::Blocked) {
                const core::DynInst &st_ = arena.get(check.store);
                if (st_.execInMp || st_.longLatency)
                    low = true;
            }
        }

        if (low) {
            if (head.op.isMem()) {
                // Memory operations never enter the LLIB: they have
                // held an LSQ entry since dispatch, and the Address
                // Processor issues them over the memory ports the
                // moment their operands arrive ("long-latency loads
                // are executed in the address processor", 3.2). This
                // keeps independent miss chains overlapped even
                // though the LLIB is a FIFO.
                if (apQ.full())
                    break;
                if (core::IssueQueue *iq = queueById(head.iqId))
                    iq->erase(headRef);
                if (head.op.dst != isa::NoReg)
                    llbv.set(size_t(head.op.dst));
                head.longLatency = true;
                head.execInMp = true;
                obsEvent(obs::EventKind::Park, head.seq, 0, 2);
                apQ.insert(headRef);
            } else if (!insertIntoLlib(headRef)) {
                break;
            }
            rob.popFront();
            releaseAgingRobEntry(head);
            --budget;
            ++activity;
            continue;
        }

        // Short-latency but not yet executed: the paper stalls
        // Analyze until writeback so checkpoints always see READY
        // short-latency values (~0.7% IPC loss reported).
        ++st.analyzeStallCycles;
        break;
    }
}

// ---------------------------------------------------------------------
// LLIB -> MP extraction
// ---------------------------------------------------------------------

void
DkipCore::extractFrom(Llib &llib, Llrf &llrf, core::IssueQueue &mpq)
{
    int budget = dprm.llibExtractRate;
    while (budget > 0 && !llib.empty()) {
        if (mpq.full())
            break;
        if (llib.headBlocked())
            break;
        InstRef ref = llib.front();
        core::DynInst &inst = arena.get(ref);
        if (inst.llrfBank >= 0 &&
            llrf.bankWrittenThisCycle(inst.llrfBank)) {
            // Single-ported bank being written by insertion this
            // cycle; retry next cycle.
            ++st.llrfConflictStalls;
            break;
        }
        llib.popFront();
        llrf.release(inst);
        inst.inLlib = false;
        mpq.insert(ref);
        --budget;
        ++activity;
    }
}

void
DkipCore::stageExtract()
{
    extractFrom(llibInt, llrfInt, mpIntQ);
    extractFrom(llibFp, llrfFp, mpFpQ);
}

// ---------------------------------------------------------------------
// Issue, recovery hooks, accounting
// ---------------------------------------------------------------------

void
DkipCore::stageIssueDecoupled()
{
    // Cache Processor first: the Address Processor's memory ports are
    // asymmetrically shared in the CP's favour (paper section 3.3).
    issueFromQueue(intIq, fus, prm.issueWidthInt);
    issueFromQueue(fpIq, fus, prm.issueWidthFp);
    issueFromQueue(apQ, mpIntFus, prm.memPorts);
    issueFromQueue(mpIntQ, mpIntFus, dprm.mpIssueWidth);
    issueFromQueue(mpFpQ, mpFpFus, dprm.mpIssueWidth);
}

void
DkipCore::onCommitInst(InstRef inst)
{
    // Unlike the baseline, ROB entries left at Analyze; commit is
    // bookkeeping only.
    (void)inst;
}

void
DkipCore::onSquashInst(InstRef ref)
{
    core::DynInst &inst = arena.get(ref);
    if (!rob.empty() && rob.back() == ref) {
        rob.popBack();
        inst.inRob = false;
    }
    if (inst.inLlib) {
        bool fp = inst.op.isFp();
        (fp ? llibFp : llibInt).notifySquashed(ref);
        (fp ? llrfFp : llrfInt).release(inst);
        inst.inLlib = false;
    } else if (inst.llrfBank >= 0) {
        (inst.op.isFp() ? llrfFp : llrfInt).release(inst);
    }
}

void
DkipCore::onBranchResolved(InstRef ref)
{
    const core::DynInst &inst = arena.get(ref);
    if (inst.execInMp)
        chkpt.resolve(inst.seq);
}

int
DkipCore::recoveryExtraPenalty(InstRef ref) const
{
    const core::DynInst &branch = arena.get(ref);
    if (!branch.execInMp)
        return 0;
    // MP mispredictions restore a full checkpoint instead of using
    // the CP's rename stack; an uncovered branch replays from an
    // older checkpoint and pays correspondingly more.
    bool covered = chkpt.findFor(branch.seq) != nullptr;
    return covered ? dprm.mpRecoveryExtraPenalty
                   : 3 * dprm.mpRecoveryExtraPenalty;
}

void
DkipCore::onRecovered(InstRef ref)
{
    const core::DynInst &branch = arena.get(ref);
    if (branch.execInMp) {
        const Checkpoint *cp = chkpt.findFor(branch.seq);
        if (cp) {
            llbv = cp->llbv;
        } else {
            // Conservative full clear (paper's literal recovery
            // semantics) when no checkpoint is available.
            llbv.clearAll();
        }
        obsEvent(obs::EventKind::CkptRestore, branch.seq,
                 cp ? 1 : 0);
    }
    chkpt.squashFrom(branch.seq);
}

void
DkipCore::trackOccupancy()
{
    st.maxLlibInstrsInt =
        std::max(st.maxLlibInstrsInt, uint64_t(llibInt.size()));
    st.maxLlibInstrsFp =
        std::max(st.maxLlibInstrsFp, uint64_t(llibFp.size()));
    st.maxLlibRegsInt =
        std::max(st.maxLlibRegsInt, uint64_t(llrfInt.numAllocated()));
    st.maxLlibRegsFp =
        std::max(st.maxLlibRegsFp, uint64_t(llrfFp.numAllocated()));
}

void
DkipCore::tick()
{
    beginCycle();
    stageCommit();
    stageComplete();
    stageAnalyze();
    stageExtract();
    stageIssueDecoupled();
    stageDispatch();
    stageFetch();
    trackOccupancy();
    endCycle();
}


void
DkipCore::saveDerived(ckpt::Sink &s) const
{
    OooCore::saveDerived(s);
    llbv.save(s);
    llibInt.save(s);
    llibFp.save(s);
    llrfInt.save(s);
    llrfFp.save(s);
    mpIntQ.save(s);
    mpFpQ.save(s);
    apQ.save(s);
    mpIntFus.save(s);
    mpFpFus.save(s);
    chkpt.save(s);
}

void
DkipCore::restoreDerived(ckpt::Source &s)
{
    OooCore::restoreDerived(s);
    llbv.load(s);
    llibInt.load(s);
    llibFp.load(s);
    llrfInt.load(s);
    llrfFp.load(s);
    mpIntQ.load(s);
    mpFpQ.load(s);
    apQ.load(s);
    mpIntFus.load(s);
    mpFpFus.load(s);
    chkpt.load(s);
}

} // namespace kilo::dkip
