/**
 * @file
 * Low-Locality Instruction Buffer (LLIB).
 *
 * A plain FIFO with no issue capability and no CAM — the structural
 * heart of the D-KIP's complexity argument. Instructions enter at
 * Analyze and leave, in order, toward a Memory Processor once the
 * long-latency load(s) they directly depend on have completed.
 */

#pragma once

#include <string>

#include "src/core/dyn_inst.hh"
#include "src/core/inst_arena.hh"
#include "src/util/circular_buffer.hh"

namespace kilo::dkip
{

/** FIFO instruction buffer for one locality domain (int or FP). */
class Llib
{
  public:
    Llib(std::string name, size_t capacity, core::InstArena &arena);

    const std::string &name() const { return label; }
    size_t capacity() const { return q.capacity(); }
    size_t size() const { return q.size(); }
    bool empty() const { return q.empty(); }
    bool full() const { return q.full(); }

    /** High-water mark of occupancy (Figures 13/14). */
    uint64_t maxOccupancy() const { return maxOcc; }

    /** Append at the tail (Analyze insertion, program order). */
    void push(core::InstRef ref);

    /** Oldest entry. */
    core::InstRef front() const { return q.front(); }

    /** Remove the oldest entry (extraction into the MP). */
    core::InstRef popFront() { return q.popFront(); }

    /** @p ref was squashed; it must be the youngest entry. */
    void notifySquashed(core::InstRef ref);

    /**
     * True when the head must keep waiting: it depends directly on a
     * long-latency load that has not yet delivered its value.
     */
    bool headBlocked() const;

    /** Serialize / restore the FIFO contents (handles into the shared
     *  arena, serialized alongside) and the high-water mark. @{ */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        q.save(s);
        s.template scalar<uint64_t>(maxOcc);
    }

    template <typename Source>
    void
    load(Source &s)
    {
        q.load(s);
        maxOcc = s.template scalar<uint64_t>();
    }
    /** @} */

  private:
    core::InstArena &arena;
    std::string label;
    CircularBuffer<core::InstRef> q;
    uint64_t maxOcc = 0;
};

} // namespace kilo::dkip

