/**
 * @file
 * The Decoupled KILO-Instruction Processor (D-KIP) — the paper's
 * primary contribution.
 *
 * Structure (paper Figures 5-8):
 *   - Cache Processor (CP): the inherited out-of-order core with an
 *     Aging-ROB — entries drain past the Analyze stage a fixed ROB
 *     timer after decode instead of waiting to commit.
 *   - Analyze: classifies each instruction by execution locality
 *     using the Low-Locality Bit Vector (LLBV); low-locality
 *     instructions divert to an LLIB with at most one READY operand
 *     parked in the banked LLRF.
 *   - LLIBs: two FIFO buffers (integer, FP) with no issue logic.
 *   - Memory Processors (MP): two simple Future-File machines with
 *     small reservation queues (in-order by default) that execute the
 *     low-locality slices when their feeding loads complete.
 *   - Address Processor: the shared LSQ + 2 global memory ports the
 *     base pipeline already models; completed long-latency load
 *     values flow to the MPs through per-LLIB value FIFOs.
 *   - Checkpoint stack: selective checkpoints at LLIB-resident
 *     branches; a misprediction resolving in the MP recovers the full
 *     machine (CP + LLIBs + MPs) through its checkpoint.
 */

#pragma once

#include "src/core/ooo_core.hh"
#include "src/dkip/checkpoint_stack.hh"
#include "src/dkip/llib.hh"
#include "src/dkip/llrf.hh"
#include "src/util/bit_vector.hh"

namespace kilo::dkip
{

/** Parameters specific to the decoupled machine. */
struct DkipParams
{
    /** Cache Processor parameters (Table 2 defaults). */
    core::CoreParams cp;

    int robTimer = 16;            ///< aging cycles before Analyze
    int analyzeWidth = 4;

    size_t llibCapacity = 2048;   ///< entries per LLIB
    int llibExtractRate = 4;      ///< extractions per LLIB per cycle

    int llrfBanks = 8;
    int llrfRegsPerBank = 256;

    size_t mpIqSize = 20;         ///< MP reservation-queue entries
    core::SchedPolicy mpPolicy = core::SchedPolicy::InOrder;
    int mpIssueWidth = 4;

    size_t checkpointCapacity = 16;
    int mpRecoveryExtraPenalty = 8;  ///< checkpoint restore cost

    core::FuConfig mpIntFus = core::FuConfig::intMemProcessor();
    core::FuConfig mpFpFus = core::FuConfig::fpMemProcessor();

    /** The D-KIP-2048 configuration evaluated in the paper. */
    static DkipParams dkip2048();
};

/** The decoupled KILO-instruction processor. */
class DkipCore : public core::OooCore
{
  public:
    using InstRef = core::InstRef;

    DkipCore(const DkipParams &params, wload::Workload &workload,
             const mem::MemConfig &mem_config);

    /** Structure inspection for tests and occupancy benches. @{ */
    const Llib &intLlib() const { return llibInt; }
    const Llib &fpLlib() const { return llibFp; }
    const Llrf &intLlrf() const { return llrfInt; }
    const Llrf &fpLlrf() const { return llrfFp; }
    const CheckpointStack &checkpoints() const { return chkpt; }
    const BitVector &lowLocalityBits() const { return llbv; }
    /** @} */

  protected:
    void tick() override;
    void onCommitInst(InstRef inst) override;
    void onSquashInst(InstRef inst) override;
    void onBranchResolved(InstRef inst) override;
    void onRecovered(InstRef branch) override;
    int recoveryExtraPenalty(InstRef branch) const override;
    size_t totalReady() const override;
    void beginCycleQueues() override;
    uint64_t nextTimedWake() const override;
    core::StallReason
    refineStallReason(const core::DynInst &head,
                      core::StallReason r) const override;
    void saveDerived(ckpt::Sink &s) const override;
    void restoreDerived(ckpt::Source &s) override;

    void stageAnalyze();
    void stageExtract();
    void stageIssueDecoupled();

  private:
    bool sourcesLongLatency(const core::DynInst &inst) const;
    bool hasReadyOperand(const core::DynInst &inst) const;
    bool insertIntoLlib(InstRef ref);
    void extractFrom(Llib &llib, Llrf &llrf, core::IssueQueue &mpq);
    void trackOccupancy();

    DkipParams dprm;
    BitVector llbv;

    Llib llibInt;
    Llib llibFp;
    Llrf llrfInt;
    Llrf llrfFp;

    core::IssueQueue mpIntQ;
    core::IssueQueue mpFpQ;
    /**
     * Address Processor scheduling window: low-locality loads and
     * stores leave the LLIB straight into the decoupled LSQ's
     * control, which issues them over the global memory ports as
     * soon as their address operand is available (paper 3.2:
     * "long-latency loads are executed in the address processor").
     */
    core::IssueQueue apQ;
    core::FuPool mpIntFus;
    core::FuPool mpFpFus;

    CheckpointStack chkpt;
};

} // namespace kilo::dkip

