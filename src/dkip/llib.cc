#include "src/dkip/llib.hh"

#include "src/util/logging.hh"

namespace kilo::dkip
{

Llib::Llib(std::string name, size_t capacity,
           core::InstArena &inst_arena)
    : arena(inst_arena), label(std::move(name)), q(capacity)
{}

void
Llib::push(core::InstRef ref)
{
    KILO_ASSERT(!q.full(), "push into full LLIB %s", label.c_str());
    KILO_ASSERT(q.empty() ||
                    arena.get(q.back()).seq < arena.get(ref).seq,
                "LLIB insertion out of program order");
    q.pushBack(ref);
    if (q.size() > maxOcc)
        maxOcc = q.size();
}

void
Llib::notifySquashed(core::InstRef ref)
{
    KILO_ASSERT(!q.empty() && q.back() == ref,
                "LLIB squash of non-youngest entry");
    q.popBack();
}

bool
Llib::headBlocked() const
{
    if (q.empty())
        return false;
    const core::DynInst &head = arena.get(q.front());
    // "When the depending instructions arrive at the head of the LLIB
    // and the load value is available [...] insertion into the MP
    // happens. For other instructions insertion is performed without
    // additional checks." (paper, sections 3.2 and 3.4)
    // The head waits for the values of its feeding loads — they
    // arrive through the per-LLIB value FIFO and are written into
    // the MP's Future File at insertion. Non-load producers are
    // low-locality MP work already extracted ahead of the head (the
    // LLIB is a FIFO), so their results flow through the Future File
    // and "insertion is performed without additional checks" (3.4).
    // A stale producer handle means that load already completed and
    // committed.
    for (core::InstRef prodRef : arena.coldOf(head).producers) {
        const core::DynInst *prod = arena.tryGet(prodRef);
        if (prod && prod->op.isLoad() && !prod->completed)
            return true;
    }
    return false;
}

} // namespace kilo::dkip
