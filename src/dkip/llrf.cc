#include "src/dkip/llrf.hh"

#include "src/util/logging.hh"

namespace kilo::dkip
{

Llrf::Llrf(int num_banks, int regs_per_bank)
{
    KILO_ASSERT(num_banks >= 1 && num_banks <= 64,
                "LLRF bank count out of range");
    banks.reserve(size_t(num_banks));
    for (int b = 0; b < num_banks; ++b)
        banks.emplace_back(uint32_t(regs_per_bank));
}

uint32_t
Llrf::numSlots() const
{
    uint32_t n = 0;
    for (const auto &b : banks)
        n += b.numSlots();
    return n;
}

uint32_t
Llrf::numAllocated() const
{
    uint32_t n = 0;
    for (const auto &b : banks)
        n += b.numAllocated();
    return n;
}

bool
Llrf::fullyAllocated() const
{
    for (const auto &b : banks)
        if (b.hasFree())
            return false;
    return true;
}

bool
Llrf::tryAlloc(core::DynInst &inst)
{
    int n = numBanks();
    for (int i = 0; i < n; ++i) {
        int bank = (rrBank + i) % n;
        if (banks[size_t(bank)].hasFree()) {
            inst.llrfBank = bank;
            inst.llrfSlot = int(banks[size_t(bank)].alloc());
            writtenMask |= uint64_t(1) << bank;
            rrBank = (bank + 1) % n;
            return true;
        }
    }
    return false;
}

void
Llrf::release(core::DynInst &inst)
{
    if (inst.llrfBank < 0)
        return;
    banks[size_t(inst.llrfBank)].release(uint32_t(inst.llrfSlot));
    inst.llrfBank = -1;
    inst.llrfSlot = -1;
}

bool
Llrf::bankWrittenThisCycle(int bank) const
{
    return (writtenMask >> bank) & 1;
}

} // namespace kilo::dkip
