#include "src/dkip/checkpoint_stack.hh"

#include "src/util/logging.hh"

namespace kilo::dkip
{

CheckpointStack::CheckpointStack(size_t capacity)
    : cap(capacity ? capacity : 1)
{}

void
CheckpointStack::push(uint64_t seq, const BitVector &llbv)
{
    KILO_ASSERT(!full(), "checkpoint stack overflow");
    KILO_ASSERT(entries.empty() || entries.back().seq < seq,
                "checkpoints must be taken in program order");
    Checkpoint cp;
    cp.seq = seq;
    cp.llbv = llbv;
    entries.push_back(cp);
}

void
CheckpointStack::resolve(uint64_t seq)
{
    for (auto &cp : entries) {
        if (cp.seq == seq) {
            cp.resolved = true;
            break;
        }
    }
    while (!entries.empty() && entries.front().resolved)
        entries.pop_front();
}

const Checkpoint *
CheckpointStack::findFor(uint64_t seq) const
{
    for (const auto &cp : entries)
        if (cp.seq == seq)
            return &cp;
    return nullptr;
}

void
CheckpointStack::squashFrom(uint64_t seq)
{
    while (!entries.empty() && entries.back().seq >= seq)
        entries.pop_back();
}

} // namespace kilo::dkip
