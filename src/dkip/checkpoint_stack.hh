/**
 * @file
 * Checkpointing stack with the Architectural Writers Log (AWL).
 *
 * The D-KIP takes a full register-state checkpoint whenever a branch
 * is inserted into an LLIB (selective checkpointing at the risky,
 * long-latency branches). The stack records the LLBV snapshot so that
 * recovery can restore the Cache Processor's locality state; the AWL
 * (the per-register writer positions the hardware needs to fill in
 * long-latency values) is implied by the trace-driven dataflow and
 * carries no separate timing state.
 */

#pragma once

#include <cstdint>
#include <deque>

#include "src/util/bit_vector.hh"
#include "src/util/logging.hh"

namespace kilo::dkip
{

/** One checkpoint record. */
struct Checkpoint
{
    uint64_t seq = 0;        ///< branch the checkpoint covers
    BitVector llbv;          ///< LLBV snapshot at Analyze time
    bool resolved = false;   ///< branch resolved correctly
};

/** Bounded stack of in-flight checkpoints. */
class CheckpointStack
{
  public:
    explicit CheckpointStack(size_t capacity);

    size_t capacity() const { return cap; }
    size_t size() const { return entries.size(); }
    bool full() const { return entries.size() >= cap; }
    bool empty() const { return entries.empty(); }

    /** Take a checkpoint for the branch with sequence @p seq. */
    void push(uint64_t seq, const BitVector &llbv);

    /**
     * The branch with sequence @p seq resolved correctly; release its
     * checkpoint (and any older resolved ones) from the head.
     */
    void resolve(uint64_t seq);

    /** Checkpoint belonging to branch @p seq, or null. */
    const Checkpoint *findFor(uint64_t seq) const;

    /** Drop every checkpoint with sequence >= @p seq (recovery). */
    void squashFrom(uint64_t seq);

    /** Serialize / restore the in-flight checkpoints element-wise
     *  (each entry carries a BitVector). Capacity is configuration;
     *  load() asserts the saved count fits. @{ */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        s.template scalar<uint64_t>(entries.size());
        for (const Checkpoint &c : entries) {
            s.template scalar<uint64_t>(c.seq);
            c.llbv.save(s);
            s.template scalar<uint8_t>(c.resolved ? 1 : 0);
        }
    }

    template <typename Source>
    void
    load(Source &s)
    {
        uint64_t n = s.template scalar<uint64_t>();
        KILO_ASSERT(n <= cap,
                    "checkpoint-stack checkpoint exceeds capacity");
        entries.clear();
        for (uint64_t i = 0; i < n; ++i) {
            Checkpoint c;
            c.seq = s.template scalar<uint64_t>();
            c.llbv.load(s);
            c.resolved = s.template scalar<uint8_t>() != 0;
            entries.push_back(std::move(c));
        }
    }
    /** @} */

  private:
    size_t cap;
    std::deque<Checkpoint> entries;
};

} // namespace kilo::dkip

