/**
 * @file
 * Sweep-shard manifest: the self-contained, shippable description of
 * one sweep matrix slice.
 *
 * A manifest is a small versioned text file (format below, full
 * specification in src/shard/DESIGN.md) naming a (machine × workload
 * × memory) matrix by preset names and trace paths, the RunConfig
 * scalars that apply to every job, and which shard of how many this
 * file describes:
 *
 *     KILOSHARD 1
 *     machine r10-64
 *     machine dkip
 *     workload swim
 *     workload trace:/data/mcf.ktrc
 *     mem mem-400
 *     warmup 20000
 *     measure 100000
 *     max_cycles 0
 *     max_wall_ms 0
 *     shard 0/4
 *
 * Optional sampling directives (`interval N`, `clusters K`,
 * `sampling sampled`) make every job of the matrix a sampled run
 * (src/sample/); an optional `audit N` directive sets the
 * determinism-audit cadence (RunConfig::auditIntervalInsts) of every
 * job. All of them are emitted by serialize() only when they deviate
 * from the RunConfig defaults, so older manifests round-trip
 * unchanged.
 *
 * Every worker process of a sharded sweep loads the same manifest
 * (the shard line is overridable on the worker command line), expands
 * the same full matrix through SweepEngine::matrixByName, and takes
 * its slice through SweepEngine::shardIndices — so the partitioning
 * is a pure function of the manifest and never needs coordination.
 *
 * Malformed input (bad magic, future version, unknown directive,
 * duplicate scalar, unparseable number, impossible shard spec, empty
 * matrix) raises ShardError with a line-numbered message; resolving
 * *names* (machines, memories) is deferred to job expansion, where
 * the canonical byName registries report unknown presets.
 */

#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/sim/sweep_engine.hh"

namespace kilo::shard
{

/** Malformed manifest input or an orchestration failure. */
class ShardError : public std::runtime_error
{
  public:
    explicit ShardError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Current manifest format version; bumped on any layout change. */
constexpr uint32_t ManifestVersion = 1;

/** Parsed sweep-shard manifest. */
struct Manifest
{
    /** Matrix axes, in declaration order (machine-major expansion,
     *  matching SweepEngine::matrix). @{ */
    std::vector<std::string> machines;
    std::vector<std::string> workloads;  ///< presets or "trace:<path>"
    std::vector<std::string> mems;
    /** @} */

    /** Per-job run scalars (warmup/measure/max_cycles/max_wall_ms
     *  plus the optional interval/clusters/sampling directives). */
    sim::RunConfig run;

    /** Which slice this manifest describes; 0/1 = the whole matrix. @{ */
    uint32_t shardIndex = 0;
    uint32_t shardCount = 1;
    /** @} */

    /** Parse a manifest; throws ShardError on malformed input. @{ */
    static Manifest parse(std::istream &in, const std::string &where);
    static Manifest parse(const std::string &text);
    static Manifest load(const std::string &path);
    /** @} */

    /** Canonical text form; parse(serialize()) reproduces *this. */
    std::string serialize() const;

    /** Write serialize() to @p path; throws ShardError on failure. */
    void save(const std::string &path) const;

    /** Jobs of the FULL matrix (machine-major), via matrixByName;
     *  exits with a diagnostic on an unknown preset name. */
    std::vector<sim::SweepJob> jobs() const;

    /** Size of the full matrix. */
    size_t jobCount() const
    {
        return machines.size() * workloads.size() * mems.size();
    }

    /** Global job indices this manifest's shard owns. */
    std::vector<size_t> shardJobIndices() const
    {
        return sim::SweepEngine::shardIndices(jobCount(), shardIndex,
                                              shardCount);
    }

    bool
    operator==(const Manifest &o) const
    {
        return machines == o.machines && workloads == o.workloads &&
               mems == o.mems &&
               run.warmupInsts == o.run.warmupInsts &&
               run.measureInsts == o.run.measureInsts &&
               run.maxCycles == o.run.maxCycles &&
               run.maxWallMs == o.run.maxWallMs &&
               run.intervalInsts == o.run.intervalInsts &&
               run.numClusters == o.run.numClusters &&
               run.samplingMode == o.run.samplingMode &&
               run.auditIntervalInsts ==
                   o.run.auditIntervalInsts &&
               shardIndex == o.shardIndex &&
               shardCount == o.shardCount;
    }
};

/**
 * Parse a "I/N" shard specification (worker --shard override).
 * Throws ShardError unless I and N are integers with I < N, N >= 1.
 */
void parseShardSpec(const std::string &spec, uint32_t &index,
                    uint32_t &count);

} // namespace kilo::shard

