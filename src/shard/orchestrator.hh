/**
 * @file
 * Parent side of a multi-process sharded sweep.
 *
 * The Orchestrator turns one Manifest into N worker processes
 * (fork/exec of the kilosim_worker binary, one per shard), collects
 * their stdout through pipes, enforces a per-attempt wall-clock
 * deadline, retries failed shards, and merges the job-tagged rows
 * back into a single JSONL stream ordered by global job index — a
 * stream byte-identical to what a single-process
 * SweepEngine::run(manifest.jobs()) + writeJsonRows would produce
 * (pinned by tests/test_shard.cpp and the CI golden diff).
 *
 * Failure semantics (details in src/shard/DESIGN.md):
 *  - a worker that exits nonzero, dies on a signal, or overruns the
 *    deadline (SIGKILL) fails its attempt; the attempt's partial
 *    output is excluded from the merge wholesale;
 *  - a failed shard is retried with a fresh process up to
 *    maxAttempts total attempts, with a stderr-tail-bearing retry
 *    line logged on the parent's stderr;
 *  - a shard exhausting its attempts fails the sweep: remaining
 *    workers are killed and run() throws ShardError carrying the
 *    last attempt's stderr tail.
 *
 * Worker stderr is piped to the parent. KILOHB heartbeat lines
 * (src/obs/heartbeat.hh, emitted by workers spawned with
 * --heartbeat) are absorbed into per-shard telemetry — and, with
 * OrchestratorConfig::progress, rendered as a merged live progress
 * stream on the parent's stderr; every other stderr line is
 * forwarded through verbatim and its tail kept for failure reports.
 *
 * Workers default to one sweep thread each (process-level sharding
 * replaces thread-level fan-out); all workers replaying a common
 * trace share its pages through the mmap reader and the page cache.
 */

#pragma once

#include <string>
#include <vector>

#include "src/obs/heartbeat.hh"
#include "src/shard/manifest.hh"

namespace kilo::shard
{

/** Process-level knobs of one sharded sweep. */
struct OrchestratorConfig
{
    /** Worker binary (tools/kilosim_worker); typically argv[0] when
     *  the orchestrator runs inside that same binary. */
    std::string workerPath;

    /** Extra argv entries inserted before --shard (test hooks). */
    std::vector<std::string> workerArgs;

    /** Worker process count; clamped to the job count. */
    uint32_t shards = 4;

    /** Per-attempt wall-clock deadline in ms; 0 disables. An
     *  overrunning worker is SIGKILLed and the attempt fails. */
    uint64_t workerDeadlineMs = 0;

    /** Total spawn attempts per shard (1 = no retry). */
    uint32_t maxAttempts = 2;

    /** KILO_SWEEP_THREADS exported to workers; 0 inherits the
     *  parent's environment unchanged. */
    unsigned workerThreads = 1;

    /** Spawn workers with --heartbeat and collect their KILOHB
     *  telemetry (implied by progress). */
    bool heartbeat = false;

    /** Render worker heartbeats as a merged live progress stream on
     *  the parent's stderr. */
    bool progress = false;

    /**
     * Spawn workers with --audit: every job runs under the
     * determinism-audit plane (src/obs/audit.hh) and reports its
     * final rolling state digest on a KILOAUD line. The orchestrator
     * then (a) cross-checks the digest of every job that completed
     * in more than one attempt of its shard — a retried worker that
     * silently computes different state is a hard ShardError carrying
     * both digests — and (b) appends the KILOAUD lines, in job order,
     * after the merged rows (the stream an audited --single run
     * prints, so the two remain byte-diffable).
     */
    bool audit = false;
};

/** What the orchestrator observed about one shard. */
struct ShardTelemetry
{
    uint32_t shard = 0;
    uint32_t attempts = 0;        ///< processes spawned (>= 1)
    bool deadlineKilled = false;  ///< any attempt overran and died
    uint64_t wallMs = 0;          ///< wall time of the final attempt
    bool sawHeartbeat = false;
    obs::Heartbeat lastHeartbeat; ///< valid when sawHeartbeat
};

/** Sweep-level telemetry assembled from a finished run(). */
struct SweepTelemetry
{
    uint32_t retries = 0;
    uint32_t deadlineKills = 0;
    std::vector<ShardTelemetry> shards;

    /** Final rolling audit digest per job of the full matrix
     *  (OrchestratorConfig::audit runs only; empty otherwise). */
    std::vector<uint64_t> auditDigests;

    /** Jobs whose digest was verified against an earlier attempt's
     *  (i.e. the job completed under >= 2 processes and agreed). */
    uint32_t auditCrossChecked = 0;
};

/** Spawns, supervises and merges one sharded sweep. */
class Orchestrator
{
  public:
    Orchestrator(Manifest manifest, OrchestratorConfig config);

    /**
     * Execute the sweep: spawn every shard, supervise to completion,
     * merge. Returns the merged JSONL stream (one row per job of the
     * full matrix, global job order). Throws ShardError when a shard
     * exhausts its attempts, a worker emits malformed rows, or the
     * platform cannot spawn processes.
     */
    std::string run();

    /** Shard attempts beyond the first, across all shards. */
    uint32_t retries() const { return nRetries; }

    /** Workers killed for overrunning the deadline. */
    uint32_t deadlineKills() const { return nDeadlineKills; }

    /** Per-shard telemetry of the last run() (empty before it). */
    const SweepTelemetry &telemetry() const { return tele; }

  private:
    Manifest manifest;
    OrchestratorConfig cfg;
    uint32_t nRetries = 0;
    uint32_t nDeadlineKills = 0;
    SweepTelemetry tele;
};

} // namespace kilo::shard

