#include "src/shard/manifest.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace kilo::shard
{

namespace
{

/** Strip leading/trailing blanks. */
std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

[[noreturn]] void
fail(const std::string &where, size_t line_no, const std::string &msg)
{
    throw ShardError("malformed manifest: " + where + ":" +
                     std::to_string(line_no) + ": " + msg);
}

/** Whole-string unsigned parse; any trailing junk is an error. */
uint64_t
parseU64(const std::string &where, size_t line_no,
         const std::string &key, const std::string &value)
{
    if (value.empty() || value.find_first_not_of("0123456789") !=
                             std::string::npos) {
        fail(where, line_no,
             key + " needs an unsigned integer, got '" + value + "'");
    }
    errno = 0;
    uint64_t v = std::strtoull(value.c_str(), nullptr, 10);
    if (errno == ERANGE)
        fail(where, line_no, key + " value out of range: " + value);
    return v;
}

} // anonymous namespace

void
parseShardSpec(const std::string &spec, uint32_t &index,
               uint32_t &count)
{
    size_t slash = spec.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= spec.size()) {
        throw ShardError("shard spec must be INDEX/COUNT, got '" +
                         spec + "'");
    }
    std::string is = spec.substr(0, slash);
    std::string cs = spec.substr(slash + 1);
    if (is.find_first_not_of("0123456789") != std::string::npos ||
        cs.find_first_not_of("0123456789") != std::string::npos) {
        throw ShardError("shard spec must be INDEX/COUNT, got '" +
                         spec + "'");
    }
    uint64_t i = std::strtoull(is.c_str(), nullptr, 10);
    uint64_t c = std::strtoull(cs.c_str(), nullptr, 10);
    if (c == 0 || c > 1u << 20)
        throw ShardError("implausible shard count in '" + spec + "'");
    if (i >= c) {
        throw ShardError("shard index " + std::to_string(i) +
                         " outside count " + std::to_string(c));
    }
    index = uint32_t(i);
    count = uint32_t(c);
}

Manifest
Manifest::parse(std::istream &in, const std::string &where)
{
    Manifest m;
    std::string line;
    size_t line_no = 0;
    bool saw_magic = false;
    bool saw_warmup = false, saw_measure = false;
    bool saw_max_cycles = false, saw_max_wall = false;
    bool saw_interval = false, saw_clusters = false;
    bool saw_sampling = false;
    bool saw_audit = false;
    bool saw_shard = false;

    while (std::getline(in, line)) {
        ++line_no;
        std::string text = trim(line);
        if (text.empty() || text[0] == '#')
            continue;

        if (!saw_magic) {
            // The first significant line must be the versioned magic.
            std::istringstream hs(text);
            std::string magic;
            uint32_t version = 0;
            hs >> magic >> version;
            if (magic != "KILOSHARD" || hs.fail())
                fail(where, line_no,
                     "expected 'KILOSHARD <version>' header");
            if (version != ManifestVersion) {
                fail(where, line_no,
                     "manifest version mismatch: file v" +
                         std::to_string(version) + ", reader v" +
                         std::to_string(ManifestVersion));
            }
            std::string rest;
            if (hs >> rest)
                fail(where, line_no, "trailing tokens after header");
            saw_magic = true;
            continue;
        }

        size_t space = text.find_first_of(" \t");
        if (space == std::string::npos)
            fail(where, line_no, "directive '" + text +
                                     "' has no value");
        std::string key = text.substr(0, space);
        std::string value = trim(text.substr(space + 1));
        if (value.empty())
            fail(where, line_no, "directive '" + key +
                                     "' has no value");

        auto scalar_once = [&](bool &seen) {
            if (seen)
                fail(where, line_no, "duplicate '" + key +
                                         "' directive");
            seen = true;
        };

        if (key == "machine") {
            m.machines.push_back(value);
        } else if (key == "workload") {
            m.workloads.push_back(value);
        } else if (key == "mem") {
            m.mems.push_back(value);
        } else if (key == "warmup") {
            scalar_once(saw_warmup);
            m.run.warmupInsts = parseU64(where, line_no, key, value);
        } else if (key == "measure") {
            scalar_once(saw_measure);
            m.run.measureInsts = parseU64(where, line_no, key, value);
        } else if (key == "max_cycles") {
            scalar_once(saw_max_cycles);
            m.run.maxCycles = parseU64(where, line_no, key, value);
        } else if (key == "max_wall_ms") {
            scalar_once(saw_max_wall);
            m.run.maxWallMs = parseU64(where, line_no, key, value);
        } else if (key == "interval") {
            scalar_once(saw_interval);
            m.run.intervalInsts =
                parseU64(where, line_no, key, value);
        } else if (key == "clusters") {
            scalar_once(saw_clusters);
            uint64_t v = parseU64(where, line_no, key, value);
            if (v == 0 || v > 1u << 20)
                fail(where, line_no,
                     "implausible cluster count: " + value);
            m.run.numClusters = uint32_t(v);
        } else if (key == "sampling") {
            scalar_once(saw_sampling);
            if (value == "off") {
                m.run.samplingMode = sim::SamplingMode::Off;
            } else if (value == "sampled") {
                m.run.samplingMode = sim::SamplingMode::Sampled;
            } else {
                fail(where, line_no,
                     "sampling must be 'off' or 'sampled', got '" +
                         value + "'");
            }
        } else if (key == "audit") {
            scalar_once(saw_audit);
            m.run.auditIntervalInsts =
                parseU64(where, line_no, key, value);
        } else if (key == "shard") {
            scalar_once(saw_shard);
            try {
                parseShardSpec(value, m.shardIndex, m.shardCount);
            } catch (const ShardError &e) {
                fail(where, line_no, e.what());
            }
        } else {
            fail(where, line_no, "unknown directive '" + key + "'");
        }
    }

    if (!saw_magic)
        fail(where, line_no, "empty manifest (no KILOSHARD header)");
    if (m.machines.empty())
        fail(where, line_no, "no 'machine' directive");
    if (m.workloads.empty())
        fail(where, line_no, "no 'workload' directive");
    if (m.mems.empty())
        fail(where, line_no, "no 'mem' directive");
    return m;
}

Manifest
Manifest::parse(const std::string &text)
{
    std::istringstream in(text);
    return parse(in, "<string>");
}

Manifest
Manifest::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw ShardError("cannot open manifest: " + path);
    return parse(in, path);
}

std::string
Manifest::serialize() const
{
    std::ostringstream os;
    os << "KILOSHARD " << ManifestVersion << "\n";
    for (const auto &v : machines)
        os << "machine " << v << "\n";
    for (const auto &v : workloads)
        os << "workload " << v << "\n";
    for (const auto &v : mems)
        os << "mem " << v << "\n";
    os << "warmup " << run.warmupInsts << "\n";
    os << "measure " << run.measureInsts << "\n";
    os << "max_cycles " << run.maxCycles << "\n";
    os << "max_wall_ms " << run.maxWallMs << "\n";
    // Sampling directives appear only when they deviate from the
    // defaults, so pre-sampling manifests round-trip byte-identically.
    if (run.intervalInsts)
        os << "interval " << run.intervalInsts << "\n";
    if (run.numClusters != sim::RunConfig().numClusters)
        os << "clusters " << run.numClusters << "\n";
    if (run.samplingMode == sim::SamplingMode::Sampled)
        os << "sampling sampled\n";
    if (run.auditIntervalInsts)
        os << "audit " << run.auditIntervalInsts << "\n";
    os << "shard " << shardIndex << "/" << shardCount << "\n";
    return os.str();
}

void
Manifest::save(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        throw ShardError("cannot create manifest: " + path);
    out << serialize();
    out.flush();
    if (!out)
        throw ShardError("manifest write failed: " + path);
}

std::vector<sim::SweepJob>
Manifest::jobs() const
{
    return sim::SweepEngine::matrixByName(machines, workloads, mems,
                                          run);
}

} // namespace kilo::shard
