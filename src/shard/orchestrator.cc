#include "src/shard/orchestrator.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define KILO_SHARD_HAVE_FORK 1
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace kilo::shard
{

Orchestrator::Orchestrator(Manifest m, OrchestratorConfig config)
    : manifest(std::move(m)), cfg(std::move(config))
{}

#ifdef KILO_SHARD_HAVE_FORK

namespace
{

using Clock = std::chrono::steady_clock;

/** One shard's supervision state across attempts. */
struct ShardState
{
    uint32_t shard = 0;
    uint32_t attempts = 0;
    bool done = false;
    bool running = false;
    bool killed = false;             ///< this attempt was SIGKILLed
    pid_t pid = -1;
    int fd = -1;                     ///< read end of the stdout pipe
    Clock::time_point deadline = Clock::time_point::max();
    std::string output;              ///< this attempt's rows
    std::string lastFailure;
};

/** Temp file that unlinks itself. */
struct TempFile
{
    std::string path;

    explicit TempFile(const std::string &contents)
    {
        const char *tmpdir = std::getenv("TMPDIR");
        std::string templ =
            std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") +
            "/kilo_manifest_XXXXXX";
        std::vector<char> buf(templ.begin(), templ.end());
        buf.push_back('\0');
        int fd = ::mkstemp(buf.data());
        if (fd < 0)
            throw ShardError("cannot create temp manifest file");
        path.assign(buf.data());
        size_t off = 0;
        while (off < contents.size()) {
            ssize_t n = ::write(fd, contents.data() + off,
                                contents.size() - off);
            if (n <= 0) {
                ::close(fd);
                ::unlink(path.c_str());
                throw ShardError("temp manifest write failed");
            }
            off += size_t(n);
        }
        ::close(fd);
    }

    ~TempFile() { ::unlink(path.c_str()); }

    TempFile(const TempFile &) = delete;
    TempFile &operator=(const TempFile &) = delete;
};

std::string
describeExit(int status)
{
    if (WIFEXITED(status))
        return "exit status " + std::to_string(WEXITSTATUS(status));
    if (WIFSIGNALED(status))
        return "killed by signal " + std::to_string(WTERMSIG(status));
    return "unknown wait status " + std::to_string(status);
}

void
spawnAttempt(ShardState &s, const OrchestratorConfig &cfg,
             uint32_t shard_count, const std::string &manifest_path)
{
    int fds[2];
    if (::pipe(fds) != 0)
        throw ShardError("pipe() failed for shard " +
                         std::to_string(s.shard));
    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        throw ShardError("fork() failed for shard " +
                         std::to_string(s.shard));
    }
    if (pid == 0) {
        // Child: stdout -> pipe; stderr passes through for
        // diagnosability. Process-level sharding replaces thread
        // fan-out, so workers default to one sweep thread.
        ::dup2(fds[1], STDOUT_FILENO);
        ::close(fds[0]);
        ::close(fds[1]);
        if (cfg.workerThreads) {
            ::setenv("KILO_SWEEP_THREADS",
                     std::to_string(cfg.workerThreads).c_str(), 1);
        }
        std::vector<std::string> args;
        args.push_back(cfg.workerPath);
        for (const auto &a : cfg.workerArgs)
            args.push_back(a);
        args.push_back("--shard");
        args.push_back(std::to_string(s.shard) + "/" +
                       std::to_string(shard_count));
        args.push_back(manifest_path);
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (auto &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(cfg.workerPath.c_str(), argv.data());
        std::fprintf(stderr, "kilo-shard: cannot exec %s\n",
                     cfg.workerPath.c_str());
        ::_exit(127);
    }
    ::close(fds[1]);
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    s.pid = pid;
    s.fd = fds[0];
    s.running = true;
    s.killed = false;
    ++s.attempts;
    s.output.clear();
    s.deadline = cfg.workerDeadlineMs
                     // kilolint: allow(nondeterminism) worker deadline
                     ? Clock::now() + std::chrono::milliseconds(
                                          int64_t(cfg.workerDeadlineMs))
                     : Clock::time_point::max();
}

/** Kill and reap every still-running attempt (error unwind). */
void
killAll(std::vector<ShardState> &shards)
{
    for (auto &s : shards) {
        if (!s.running)
            continue;
        ::kill(s.pid, SIGKILL);
        ::close(s.fd);
        int status = 0;
        ::waitpid(s.pid, &status, 0);
        s.running = false;
    }
}

/** Drain available stdout; returns true when the attempt finished
 *  (EOF reached and the child reaped). */
bool
drainPipe(ShardState &s, int &exit_status)
{
    char buf[1 << 16];
    for (;;) {
        ssize_t n = ::read(s.fd, buf, sizeof(buf));
        if (n > 0) {
            s.output.append(buf, size_t(n));
            continue;
        }
        if (n == 0) {
            ::close(s.fd);
            s.fd = -1;
            ::waitpid(s.pid, &exit_status, 0);
            s.running = false;
            return true;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return false;
        if (errno == EINTR)
            continue;
        // A pipe read error is unrecoverable for this attempt; treat
        // it like a crash.
        ::close(s.fd);
        s.fd = -1;
        ::kill(s.pid, SIGKILL);
        ::waitpid(s.pid, &exit_status, 0);
        s.running = false;
        return true;
    }
}

} // anonymous namespace

std::string
Orchestrator::run()
{
    const size_t total_jobs = manifest.jobCount();
    uint32_t shard_count = cfg.shards ? cfg.shards : 1;
    shard_count = uint32_t(
        std::min<uint64_t>(shard_count,
                           std::max<uint64_t>(total_jobs, 1)));
    if (cfg.workerPath.empty())
        throw ShardError("OrchestratorConfig::workerPath is empty");
    if (cfg.maxAttempts == 0)
        throw ShardError("OrchestratorConfig::maxAttempts must be "
                         ">= 1");

    TempFile manifest_file(manifest.serialize());

    std::vector<ShardState> shards(shard_count);
    for (uint32_t i = 0; i < shard_count; ++i)
        shards[i].shard = i;

    try {
        for (auto &s : shards)
            spawnAttempt(s, cfg, shard_count, manifest_file.path);

        std::vector<pollfd> pfds;
        std::vector<uint32_t> pfd_shard;
        for (;;) {
            pfds.clear();
            pfd_shard.clear();
            Clock::time_point next_deadline =
                Clock::time_point::max();
            for (auto &s : shards) {
                if (!s.running)
                    continue;
                pfds.push_back({s.fd, POLLIN, 0});
                pfd_shard.push_back(s.shard);
                // Attempts already killed only need the EOF that the
                // SIGKILL guarantees; their past deadline must not
                // zero the poll timeout into a busy loop.
                if (!s.killed)
                    next_deadline = std::min(next_deadline,
                                             s.deadline);
            }
            if (pfds.empty())
                break; // every shard resolved

            int timeout_ms = -1;
            if (next_deadline != Clock::time_point::max()) {
                auto left =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(next_deadline -
                                                   // kilolint: allow(nondeterminism) poll timeout
                                                   Clock::now())
                        .count();
                timeout_ms = int(std::clamp<long long>(left + 1, 0,
                                                       60'000));
            }
            ::poll(pfds.data(), nfds_t(pfds.size()), timeout_ms);

            // kilolint: allow(nondeterminism) deadline enforcement
            Clock::time_point now = Clock::now();
            for (size_t p = 0; p < pfds.size(); ++p) {
                ShardState &s = shards[pfd_shard[p]];
                if (!s.running)
                    continue;
                if (!s.killed && now >= s.deadline) {
                    // Deadline overrun: SIGKILL (once) closes the
                    // pipe; the drain below observes EOF and reaps
                    // the corpse on this or a later iteration.
                    ::kill(s.pid, SIGKILL);
                    s.killed = true;
                    ++nDeadlineKills;
                    s.lastFailure =
                        "deadline (" +
                        std::to_string(cfg.workerDeadlineMs) +
                        " ms) overrun";
                }
                if (!(pfds[p].revents & (POLLIN | POLLHUP | POLLERR))
                    && !s.killed)
                    continue;
                int status = 0;
                if (!drainPipe(s, status))
                    continue; // more output later
                if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
                    s.done = true;
                    continue;
                }
                // Failed attempt: its partial rows are excluded
                // wholesale and a fresh process retries the shard.
                if (s.lastFailure.empty())
                    s.lastFailure = describeExit(status);
                if (s.attempts >= cfg.maxAttempts) {
                    throw ShardError(
                        "shard " + std::to_string(s.shard) + "/" +
                        std::to_string(shard_count) + " failed after " +
                        std::to_string(s.attempts) + " attempt(s): " +
                        s.lastFailure);
                }
                ++nRetries;
                s.lastFailure.clear();
                spawnAttempt(s, cfg, shard_count,
                             manifest_file.path);
            }
        }
    } catch (...) {
        killAll(shards);
        throw;
    }

    // ----------------------------------------------------------- merge
    // Workers tag each row "<global-job-index> <json>"; rows are
    // placed by tag, checked for coverage, and emitted untagged in
    // global job order — the exact writeJsonRows stream of the full
    // matrix.
    std::vector<std::string> rows(total_jobs);
    std::vector<bool> seen(total_jobs, false);
    for (const auto &s : shards) {
        size_t pos = 0;
        while (pos < s.output.size()) {
            size_t eol = s.output.find('\n', pos);
            if (eol == std::string::npos)
                eol = s.output.size();
            std::string line = s.output.substr(pos, eol - pos);
            pos = eol + 1;
            if (line.empty())
                continue;
            size_t sep = line.find(' ');
            if (sep == std::string::npos || sep == 0 ||
                line.find_first_not_of("0123456789") != sep) {
                throw ShardError("shard " + std::to_string(s.shard) +
                                 " emitted a malformed row: " + line);
            }
            size_t idx = size_t(
                std::strtoull(line.substr(0, sep).c_str(), nullptr,
                              10));
            if (idx >= total_jobs)
                throw ShardError("shard " + std::to_string(s.shard) +
                                 " emitted job index " +
                                 std::to_string(idx) +
                                 " outside the " +
                                 std::to_string(total_jobs) +
                                 "-job matrix");
            if (idx % shard_count != s.shard)
                throw ShardError("shard " + std::to_string(s.shard) +
                                 " emitted job " +
                                 std::to_string(idx) +
                                 ", which shard " +
                                 std::to_string(idx % shard_count) +
                                 " owns");
            if (seen[idx])
                throw ShardError("duplicate row for job " +
                                 std::to_string(idx));
            seen[idx] = true;
            rows[idx] = line.substr(sep + 1);
        }
    }
    for (size_t i = 0; i < total_jobs; ++i) {
        if (!seen[i])
            throw ShardError("no row for job " + std::to_string(i) +
                             " (shard " +
                             std::to_string(i % shard_count) + ")");
    }

    std::string merged;
    for (const auto &row : rows) {
        merged += row;
        merged += '\n';
    }
    return merged;
}

#else // !KILO_SHARD_HAVE_FORK

std::string
Orchestrator::run()
{
    throw ShardError("process-level sweep sharding requires a POSIX "
                     "platform (fork/exec/pipe)");
}

#endif

} // namespace kilo::shard
