#include "src/shard/orchestrator.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define KILO_SHARD_HAVE_FORK 1
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace kilo::shard
{

Orchestrator::Orchestrator(Manifest m, OrchestratorConfig config)
    : manifest(std::move(m)), cfg(std::move(config))
{}

#ifdef KILO_SHARD_HAVE_FORK

namespace
{

using Clock = std::chrono::steady_clock;

/** Cap on the retained per-attempt worker stderr tail. */
constexpr size_t ErrTailBytes = 4096;

/** Stderr-tail lines surfaced in retry and failure messages. */
constexpr size_t ErrTailLogLines = 5;

/** One shard's supervision state across attempts. */
struct ShardState
{
    uint32_t shard = 0;
    uint32_t attempts = 0;
    bool done = false;
    bool running = false;
    bool killed = false;             ///< this attempt was SIGKILLed
    bool everKilled = false;         ///< any attempt was SIGKILLed
    pid_t pid = -1;
    int fd = -1;                     ///< read end of the stdout pipe
    int errFd = -1;                  ///< read end of the stderr pipe
    Clock::time_point deadline = Clock::time_point::max();
    Clock::time_point attemptStart;
    uint64_t wallMs = 0;             ///< final attempt's wall time
    std::string output;              ///< this attempt's rows
    std::string errBuf;              ///< partial stderr line
    std::string errTail;             ///< last ErrTailBytes of stderr
    bool sawHeartbeat = false;
    obs::Heartbeat lastHeartbeat;
    std::string lastFailure;

    /** (job, rolling digest) pairs harvested from FAILED attempts'
     *  partial output — the evidence the cross-attempt audit check
     *  compares the winning attempt against. Survives respawns. */
    std::vector<std::pair<size_t, uint64_t>> priorAudit;
};

/**
 * Parse one "KILOAUD <job-index> <16-hex-digest>" worker line.
 * Returns false when @p line is not of that exact shape.
 */
bool
parseAuditLine(const std::string &line, size_t *idx, uint64_t *digest)
{
    constexpr const char *Tag = "KILOAUD ";
    constexpr size_t TagLen = 8;
    if (line.compare(0, TagLen, Tag) != 0)
        return false;
    size_t sep = line.find(' ', TagLen);
    if (sep == std::string::npos || sep == TagLen)
        return false;
    std::string is = line.substr(TagLen, sep - TagLen);
    std::string hs = line.substr(sep + 1);
    if (is.find_first_not_of("0123456789") != std::string::npos)
        return false;
    if (hs.size() != 16 ||
        hs.find_first_not_of("0123456789abcdef") != std::string::npos)
        return false;
    *idx = size_t(std::strtoull(is.c_str(), nullptr, 10));
    *digest = std::strtoull(hs.c_str(), nullptr, 16);
    return true;
}

/** 16-digit lowercase hex of an audit digest (error messages). */
std::string
hexDigest(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)v);
    return buf;
}

/**
 * Harvest the audit digests a FAILED attempt managed to report
 * before dying: every complete, well-formed KILOAUD line of its
 * partial output. Everything else about a failed attempt is suspect
 * and excluded from the merge, but a digest line that made it out
 * whole is a claim about a finished job, and a later attempt of the
 * same shard must reproduce it exactly.
 */
void
harvestAudit(ShardState &s)
{
    size_t pos = 0;
    size_t eol;
    while ((eol = s.output.find('\n', pos)) != std::string::npos) {
        std::string line = s.output.substr(pos, eol - pos);
        pos = eol + 1;
        size_t idx = 0;
        uint64_t digest = 0;
        if (parseAuditLine(line, &idx, &digest))
            s.priorAudit.emplace_back(idx, digest);
    }
}

/** Temp file that unlinks itself. */
struct TempFile
{
    std::string path;

    explicit TempFile(const std::string &contents)
    {
        const char *tmpdir = std::getenv("TMPDIR");
        std::string templ =
            std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") +
            "/kilo_manifest_XXXXXX";
        std::vector<char> buf(templ.begin(), templ.end());
        buf.push_back('\0');
        int fd = ::mkstemp(buf.data());
        if (fd < 0)
            throw ShardError("cannot create temp manifest file");
        path.assign(buf.data());
        size_t off = 0;
        while (off < contents.size()) {
            ssize_t n = ::write(fd, contents.data() + off,
                                contents.size() - off);
            if (n <= 0) {
                ::close(fd);
                ::unlink(path.c_str());
                throw ShardError("temp manifest write failed");
            }
            off += size_t(n);
        }
        ::close(fd);
    }

    ~TempFile() { ::unlink(path.c_str()); }

    TempFile(const TempFile &) = delete;
    TempFile &operator=(const TempFile &) = delete;
};

std::string
describeExit(int status)
{
    if (WIFEXITED(status))
        return "exit status " + std::to_string(WEXITSTATUS(status));
    if (WIFSIGNALED(status))
        return "killed by signal " + std::to_string(WTERMSIG(status));
    return "unknown wait status " + std::to_string(status);
}

void
spawnAttempt(ShardState &s, const OrchestratorConfig &cfg,
             uint32_t shard_count, const std::string &manifest_path)
{
    int fds[2];
    int err_fds[2];
    if (::pipe(fds) != 0)
        throw ShardError("pipe() failed for shard " +
                         std::to_string(s.shard));
    if (::pipe(err_fds) != 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        throw ShardError("pipe() failed for shard " +
                         std::to_string(s.shard));
    }
    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        ::close(err_fds[0]);
        ::close(err_fds[1]);
        throw ShardError("fork() failed for shard " +
                         std::to_string(s.shard));
    }
    if (pid == 0) {
        // Child: stdout and stderr each go to a pipe; the parent
        // parses heartbeats out of stderr and forwards the rest.
        // Process-level sharding replaces thread fan-out, so workers
        // default to one sweep thread.
        ::dup2(fds[1], STDOUT_FILENO);
        ::dup2(err_fds[1], STDERR_FILENO);
        ::close(fds[0]);
        ::close(fds[1]);
        ::close(err_fds[0]);
        ::close(err_fds[1]);
        if (cfg.workerThreads) {
            ::setenv("KILO_SWEEP_THREADS",
                     std::to_string(cfg.workerThreads).c_str(), 1);
        }
        std::vector<std::string> args;
        args.push_back(cfg.workerPath);
        for (const auto &a : cfg.workerArgs)
            args.push_back(a);
        if (cfg.heartbeat || cfg.progress)
            args.push_back("--heartbeat");
        if (cfg.audit)
            args.push_back("--audit");
        args.push_back("--shard");
        args.push_back(std::to_string(s.shard) + "/" +
                       std::to_string(shard_count));
        args.push_back(manifest_path);
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (auto &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(cfg.workerPath.c_str(), argv.data());
        std::fprintf(stderr, "kilo-shard: cannot exec %s\n",
                     cfg.workerPath.c_str());
        ::_exit(127);
    }
    ::close(fds[1]);
    ::close(err_fds[1]);
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    ::fcntl(err_fds[0], F_SETFL, O_NONBLOCK);
    s.pid = pid;
    s.fd = fds[0];
    s.errFd = err_fds[0];
    s.running = true;
    s.killed = false;
    ++s.attempts;
    s.output.clear();
    s.errBuf.clear();
    s.errTail.clear();
    s.sawHeartbeat = false;
    // kilolint: allow(nondeterminism) attempt wall-time anchor
    s.attemptStart = Clock::now();
    s.deadline = cfg.workerDeadlineMs
                     ? s.attemptStart +
                           std::chrono::milliseconds(
                               int64_t(cfg.workerDeadlineMs))
                     : Clock::time_point::max();
}

/** Kill and reap every still-running attempt (error unwind). */
void
killAll(std::vector<ShardState> &shards)
{
    for (auto &s : shards) {
        if (!s.running)
            continue;
        ::kill(s.pid, SIGKILL);
        ::close(s.fd);
        if (s.errFd >= 0) {
            ::close(s.errFd);
            s.errFd = -1;
        }
        int status = 0;
        ::waitpid(s.pid, &status, 0);
        s.running = false;
    }
}

/** Absorb one complete worker stderr line: heartbeats update the
 *  shard's telemetry (and the live progress stream); anything else
 *  is forwarded verbatim and its tail kept for failure reports. */
void
processErrLine(ShardState &s, const std::string &line, bool progress)
{
    obs::Heartbeat hb;
    if (obs::parseHeartbeat(line, hb)) {
        s.sawHeartbeat = true;
        s.lastHeartbeat = hb;
        if (progress) {
            uint64_t left = hb.jobsTotal > hb.jobsDone
                                ? hb.jobsTotal - hb.jobsDone
                                : 0;
            uint64_t eta =
                hb.jobsDone ? hb.elapsedMs * left / hb.jobsDone : 0;
            std::fprintf(stderr,
                         "kilo-shard: [%d] %llu/%llu jobs, "
                         "%llu insts, last job %d (%llu ms), "
                         "eta ~%llu ms\n",
                         hb.shard,
                         (unsigned long long)hb.jobsDone,
                         (unsigned long long)hb.jobsTotal,
                         (unsigned long long)hb.instsDone,
                         hb.lastJob,
                         (unsigned long long)hb.lastJobWallMs,
                         (unsigned long long)eta);
        }
        return;
    }
    std::fprintf(stderr, "%s\n", line.c_str());
    s.errTail += line;
    s.errTail += '\n';
    if (s.errTail.size() > ErrTailBytes) {
        s.errTail.erase(0, s.errTail.size() - ErrTailBytes);
    }
}

/** Drain available stderr; closes errFd at EOF. */
void
drainErr(ShardState &s, bool progress)
{
    if (s.errFd < 0)
        return;
    char buf[1 << 14];
    for (;;) {
        ssize_t n = ::read(s.errFd, buf, sizeof(buf));
        if (n > 0) {
            s.errBuf.append(buf, size_t(n));
            size_t pos = 0;
            size_t eol;
            while ((eol = s.errBuf.find('\n', pos)) !=
                   std::string::npos) {
                processErrLine(s, s.errBuf.substr(pos, eol - pos),
                               progress);
                pos = eol + 1;
            }
            s.errBuf.erase(0, pos);
            continue;
        }
        if (n == 0) {
            ::close(s.errFd);
            s.errFd = -1;
            if (!s.errBuf.empty()) {
                processErrLine(s, s.errBuf, progress);
                s.errBuf.clear();
            }
            return;
        }
        if (errno == EINTR)
            continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK) {
            ::close(s.errFd);
            s.errFd = -1;
        }
        return;
    }
}

/** Last @p max_lines lines of @p tail, indented for a log message. */
std::string
indentTail(const std::string &tail, size_t max_lines)
{
    std::vector<std::string> lines;
    size_t pos = 0;
    while (pos < tail.size()) {
        size_t eol = tail.find('\n', pos);
        if (eol == std::string::npos)
            eol = tail.size();
        if (eol > pos)
            lines.push_back(tail.substr(pos, eol - pos));
        pos = eol + 1;
    }
    std::string out;
    size_t start =
        lines.size() > max_lines ? lines.size() - max_lines : 0;
    for (size_t i = start; i < lines.size(); ++i) {
        out += "\n    | ";
        out += lines[i];
    }
    return out;
}

/** Drain available stdout; returns true when the attempt finished
 *  (EOF reached and the child reaped). */
bool
drainPipe(ShardState &s, int &exit_status)
{
    char buf[1 << 16];
    for (;;) {
        ssize_t n = ::read(s.fd, buf, sizeof(buf));
        if (n > 0) {
            s.output.append(buf, size_t(n));
            continue;
        }
        if (n == 0) {
            ::close(s.fd);
            s.fd = -1;
            ::waitpid(s.pid, &exit_status, 0);
            s.running = false;
            return true;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return false;
        if (errno == EINTR)
            continue;
        // A pipe read error is unrecoverable for this attempt; treat
        // it like a crash.
        ::close(s.fd);
        s.fd = -1;
        ::kill(s.pid, SIGKILL);
        ::waitpid(s.pid, &exit_status, 0);
        s.running = false;
        return true;
    }
}

} // anonymous namespace

std::string
Orchestrator::run()
{
    const size_t total_jobs = manifest.jobCount();
    uint32_t shard_count = cfg.shards ? cfg.shards : 1;
    shard_count = uint32_t(
        std::min<uint64_t>(shard_count,
                           std::max<uint64_t>(total_jobs, 1)));
    if (cfg.workerPath.empty())
        throw ShardError("OrchestratorConfig::workerPath is empty");
    if (cfg.maxAttempts == 0)
        throw ShardError("OrchestratorConfig::maxAttempts must be "
                         ">= 1");

    TempFile manifest_file(manifest.serialize());

    std::vector<ShardState> shards(shard_count);
    for (uint32_t i = 0; i < shard_count; ++i)
        shards[i].shard = i;

    try {
        for (auto &s : shards)
            spawnAttempt(s, cfg, shard_count, manifest_file.path);

        std::vector<pollfd> pfds;
        for (;;) {
            pfds.clear();
            Clock::time_point next_deadline =
                Clock::time_point::max();
            bool any_running = false;
            for (auto &s : shards) {
                if (!s.running)
                    continue;
                any_running = true;
                pfds.push_back({s.fd, POLLIN, 0});
                if (s.errFd >= 0)
                    pfds.push_back({s.errFd, POLLIN, 0});
                // Attempts already killed only need the EOF that the
                // SIGKILL guarantees; their past deadline must not
                // zero the poll timeout into a busy loop.
                if (!s.killed)
                    next_deadline = std::min(next_deadline,
                                             s.deadline);
            }
            if (!any_running)
                break; // every shard resolved

            int timeout_ms = -1;
            if (next_deadline != Clock::time_point::max()) {
                auto left =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(next_deadline -
                                                   // kilolint: allow(nondeterminism) poll timeout
                                                   Clock::now())
                        .count();
                timeout_ms = int(std::clamp<long long>(left + 1, 0,
                                                       60'000));
            }
            ::poll(pfds.data(), nfds_t(pfds.size()), timeout_ms);

            // Both pipes are non-blocking, so every running shard is
            // simply drained on each wake-up; poll() exists to sleep,
            // not to route.
            // kilolint: allow(nondeterminism) deadline enforcement
            Clock::time_point now = Clock::now();
            for (auto &s : shards) {
                if (!s.running)
                    continue;
                if (!s.killed && now >= s.deadline) {
                    // Deadline overrun: SIGKILL (once) closes the
                    // pipe; the drain below observes EOF and reaps
                    // the corpse on this or a later iteration.
                    ::kill(s.pid, SIGKILL);
                    s.killed = true;
                    s.everKilled = true;
                    ++nDeadlineKills;
                    s.lastFailure =
                        "deadline (" +
                        std::to_string(cfg.workerDeadlineMs) +
                        " ms) overrun";
                }
                drainErr(s, cfg.progress);
                int status = 0;
                if (!drainPipe(s, status))
                    continue; // more output later
                // The child is reaped: whatever stderr remains is
                // already in the pipe, so this final drain sees EOF.
                drainErr(s, cfg.progress);
                s.wallMs = uint64_t(
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(now -
                                                   s.attemptStart)
                        .count());
                if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
                    s.done = true;
                    continue;
                }
                // Failed attempt: its partial rows are excluded
                // wholesale and a fresh process retries the shard.
                if (s.lastFailure.empty())
                    s.lastFailure = describeExit(status);
                if (s.attempts >= cfg.maxAttempts) {
                    throw ShardError(
                        "shard " + std::to_string(s.shard) + "/" +
                        std::to_string(shard_count) + " failed after " +
                        std::to_string(s.attempts) + " attempt(s): " +
                        s.lastFailure +
                        indentTail(s.errTail, ErrTailLogLines));
                }
                ++nRetries;
                std::fprintf(
                    stderr,
                    "kilo-shard: shard %u attempt %u/%u failed "
                    "(%s); retrying%s\n",
                    s.shard, s.attempts, cfg.maxAttempts,
                    s.lastFailure.c_str(),
                    indentTail(s.errTail, ErrTailLogLines).c_str());
                s.lastFailure.clear();
                // Keep the dead attempt's audit evidence before the
                // respawn clears its output buffer.
                if (cfg.audit)
                    harvestAudit(s);
                spawnAttempt(s, cfg, shard_count,
                             manifest_file.path);
            }
        }
    } catch (...) {
        killAll(shards);
        throw;
    }

    // --------------------------------------------------- telemetry
    tele = SweepTelemetry();
    tele.retries = nRetries;
    tele.deadlineKills = nDeadlineKills;
    tele.shards.reserve(shards.size());
    for (const auto &s : shards) {
        ShardTelemetry st;
        st.shard = s.shard;
        st.attempts = s.attempts;
        st.deadlineKilled = s.everKilled;
        st.wallMs = s.wallMs;
        st.sawHeartbeat = s.sawHeartbeat;
        st.lastHeartbeat = s.lastHeartbeat;
        tele.shards.push_back(st);
    }

    // ----------------------------------------------------------- merge
    // Workers tag each row "<global-job-index> <json>"; rows are
    // placed by tag, checked for coverage, and emitted untagged in
    // global job order — the exact writeJsonRows stream of the full
    // matrix.
    std::vector<std::string> rows(total_jobs);
    std::vector<bool> seen(total_jobs, false);
    std::vector<uint64_t> auditDigests(cfg.audit ? total_jobs : 0, 0);
    std::vector<bool> auditSeen(cfg.audit ? total_jobs : 0, false);
    for (const auto &s : shards) {
        size_t pos = 0;
        while (pos < s.output.size()) {
            size_t eol = s.output.find('\n', pos);
            if (eol == std::string::npos)
                eol = s.output.size();
            std::string line = s.output.substr(pos, eol - pos);
            pos = eol + 1;
            if (line.empty())
                continue;
            if (cfg.audit && line.compare(0, 7, "KILOAUD") == 0) {
                // Audited workers follow each row with a digest
                // line; it is merged like a row (ownership-checked,
                // duplicate-checked) but reported separately.
                size_t aidx = 0;
                uint64_t digest = 0;
                if (!parseAuditLine(line, &aidx, &digest))
                    throw ShardError(
                        "shard " + std::to_string(s.shard) +
                        " emitted a malformed KILOAUD line: " + line);
                if (aidx >= total_jobs ||
                    aidx % shard_count != s.shard)
                    throw ShardError(
                        "shard " + std::to_string(s.shard) +
                        " emitted a KILOAUD digest for job " +
                        std::to_string(aidx) + ", which it does not "
                        "own");
                if (auditSeen[aidx])
                    throw ShardError(
                        "duplicate KILOAUD digest for job " +
                        std::to_string(aidx));
                auditSeen[aidx] = true;
                auditDigests[aidx] = digest;
                continue;
            }
            size_t sep = line.find(' ');
            if (sep == std::string::npos || sep == 0 ||
                line.find_first_not_of("0123456789") != sep) {
                throw ShardError("shard " + std::to_string(s.shard) +
                                 " emitted a malformed row: " + line);
            }
            size_t idx = size_t(
                std::strtoull(line.substr(0, sep).c_str(), nullptr,
                              10));
            if (idx >= total_jobs)
                throw ShardError("shard " + std::to_string(s.shard) +
                                 " emitted job index " +
                                 std::to_string(idx) +
                                 " outside the " +
                                 std::to_string(total_jobs) +
                                 "-job matrix");
            if (idx % shard_count != s.shard)
                throw ShardError("shard " + std::to_string(s.shard) +
                                 " emitted job " +
                                 std::to_string(idx) +
                                 ", which shard " +
                                 std::to_string(idx % shard_count) +
                                 " owns");
            if (seen[idx])
                throw ShardError("duplicate row for job " +
                                 std::to_string(idx));
            seen[idx] = true;
            rows[idx] = line.substr(sep + 1);
        }
    }
    for (size_t i = 0; i < total_jobs; ++i) {
        if (!seen[i])
            throw ShardError("no row for job " + std::to_string(i) +
                             " (shard " +
                             std::to_string(i % shard_count) + ")");
        if (cfg.audit && !auditSeen[i])
            throw ShardError("no KILOAUD digest for job " +
                             std::to_string(i) + " (shard " +
                             std::to_string(i % shard_count) + ")");
    }

    // ------------------------------------- cross-attempt audit check
    // Any job that completed under more than one process — reported
    // by a failed attempt AND by the attempt that won the merge —
    // must carry the same rolling state digest in both; anything
    // else means a retry silently computed different architectural
    // state, which no amount of row-level merging can be trusted
    // over.
    if (cfg.audit) {
        for (const auto &s : shards) {
            for (const auto &[idx, digest] : s.priorAudit) {
                // A crashed process's line that parses but names a
                // job outside this shard is noise, not evidence.
                if (idx >= total_jobs || idx % shard_count != s.shard)
                    continue;
                if (digest != auditDigests[idx])
                    throw ShardError(
                        "audit digest mismatch for job " +
                        std::to_string(idx) + ": a failed attempt "
                        "of shard " + std::to_string(s.shard) +
                        " reported " + hexDigest(digest) +
                        ", the merged attempt reported " +
                        hexDigest(auditDigests[idx]) +
                        " — retried work did not reproduce the same "
                        "architectural state");
                ++tele.auditCrossChecked;
            }
        }
        tele.auditDigests = auditDigests;
    }

    std::string merged;
    for (const auto &row : rows) {
        merged += row;
        merged += '\n';
    }
    // Digest lines after the rows, in job order — the exact stream
    // an audited --single run prints, so CI byte-diffs the two.
    if (cfg.audit) {
        for (size_t i = 0; i < total_jobs; ++i) {
            merged += "KILOAUD " + std::to_string(i) + " " +
                      hexDigest(auditDigests[i]) + "\n";
        }
    }
    return merged;
}

#else // !KILO_SHARD_HAVE_FORK

std::string
Orchestrator::run()
{
    throw ShardError("process-level sweep sharding requires a POSIX "
                     "platform (fork/exec/pipe)");
}

#endif

} // namespace kilo::shard
