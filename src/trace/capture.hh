/**
 * @file
 * Transparent capture wrapper: records any workload's stream to a
 * trace file while passing it through unchanged.
 *
 * Wrap a workload, hand the wrapper to the simulator, and every
 * micro-op the machine pulls — warm-up, measured region and the
 * fetch-ahead overshoot — lands in the trace in pull order, so a
 * later TraceWorkload replay feeds the same machine an identical
 * stream. Any existing synthetic preset (or hand-written Workload)
 * becomes a durable, shippable artifact this way.
 *
 * reset() forwards to the inner workload and keeps recording: the
 * trace is the honest concatenation of everything that was pulled.
 */

#pragma once

#include "src/trace/trace_writer.hh"

namespace kilo::trace
{

/** Records an inner workload's stream while forwarding it. */
class CapturingWorkload : public wload::Workload
{
  public:
    /**
     * @param inner workload to record; must outlive the wrapper
     * @param path  trace file to create
     * @param seed  generator seed stored as provenance (0 = unknown)
     */
    CapturingWorkload(wload::Workload &inner, const std::string &path,
                      uint64_t seed = 0);

    isa::MicroOp next() override;
    size_t nextBlock(isa::MicroOp *out, size_t n) override;
    const std::string &name() const override { return inner.name(); }
    bool isFp() const override { return inner.isFp(); }
    void reset() override { inner.reset(); }
    std::vector<wload::AddressRegion> regions() const override
    {
        return inner.regions();
    }

    /** Seal the trace file (flush + header patch). Idempotent. */
    void finish() { writer.finish(); }

    /** Ops recorded so far. */
    uint64_t recorded() const { return writer.opCount(); }

  private:
    wload::Workload &inner;
    Writer writer;
};

} // namespace kilo::trace

