#include "src/trace/trace_reader.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define KILO_TRACE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace kilo::trace
{

namespace
{

/** Byte sources the header parser runs over: a stdio stream or a
 *  memory range. Both throw the same truncation diagnostics. @{ */
struct FileSource
{
    std::FILE *f;

    void
    bytes(void *out, size_t size, const char *what)
    {
        if (size && std::fread(out, 1, size, f) != size)
            throw TraceError(
                std::string("trace truncated: EOF inside ") + what);
    }
};

struct MemSource
{
    const uint8_t *p;
    const uint8_t *end;

    void
    bytes(void *out, size_t size, const char *what)
    {
        if (size_t(end - p) < size)
            throw TraceError(
                std::string("trace truncated: EOF inside ") + what);
        std::memcpy(out, p, size);
        p += size;
    }
};
/** @} */

template <typename Src, typename T>
T
getScalar(Src &src, const char *what)
{
    T v;
    src.bytes(&v, sizeof(v), what);
    return v;
}

template <typename Src>
void
parseHeader(Src &src, const std::string &path, TraceMeta &meta,
            uint64_t &n_ops)
{
    char magic[sizeof(Magic)];
    src.bytes(magic, sizeof(magic), "magic");
    if (std::memcmp(magic, Magic, sizeof(Magic)) != 0)
        throw TraceError("not a KILOTRC trace file: " + path);
    uint32_t version = getScalar<Src, uint32_t>(src, "version");
    if (version != FormatVersion) {
        throw TraceError("trace version mismatch: file v" +
                         std::to_string(version) + ", reader v" +
                         std::to_string(FormatVersion) + ": " + path);
    }
    n_ops = getScalar<Src, uint64_t>(src, "op count");
    meta.seed = getScalar<Src, uint64_t>(src, "seed");
    meta.fp = getScalar<Src, uint8_t>(src, "fp flag") != 0;
    uint16_t name_len = getScalar<Src, uint16_t>(src, "name length");
    meta.name.resize(name_len);
    src.bytes(meta.name.data(), name_len, "name");
    uint32_t num_regions = getScalar<Src, uint32_t>(src,
                                                    "region count");
    for (uint32_t i = 0; i < num_regions; ++i) {
        wload::AddressRegion r;
        r.base = getScalar<Src, uint64_t>(src, "region base");
        r.bytes = getScalar<Src, uint64_t>(src, "region size");
        meta.regions.push_back(r);
    }
}

/** The 12-byte header of one block: payload size, record count,
 *  checksum. */
struct BlockFrame
{
    uint32_t payloadBytes;
    uint32_t blockOps;
    uint32_t checksum;
};

/** Decode and plausibility-check one frame. */
BlockFrame
parseFrame(const uint8_t *raw, const std::string &path)
{
    BlockFrame f;
    std::memcpy(&f.payloadBytes, raw + 0, 4);
    std::memcpy(&f.blockOps, raw + 4, 4);
    std::memcpy(&f.checksum, raw + 8, 4);
    if (f.payloadBytes == 0 || f.payloadBytes > BlockMaxBytes ||
        f.blockOps == 0) {
        throw TraceError("trace block corrupt: implausible frame "
                         "(payload " +
                         std::to_string(f.payloadBytes) + " B, " +
                         std::to_string(f.blockOps) + " ops): " +
                         path);
    }
    return f;
}

void
checkPayload(const BlockFrame &f, const uint8_t *payload,
             const std::string &path)
{
    if (blockChecksum(payload, f.payloadBytes) != f.checksum)
        throw TraceError("trace block corrupt: checksum mismatch: " +
                         path);
}

} // anonymous namespace

void
Reader::openStreaming()
{
    file = std::fopen(path_.c_str(), "rb");
    if (!file)
        throw TraceError("cannot open trace file: " + path_);
    try {
        FileSource src{file};
        parseHeader(src, path_, meta_, nOps);
        firstBlockOffset = size_t(std::ftell(file));
    } catch (...) {
        std::fclose(file);
        file = nullptr;
        throw;
    }
}

void
Reader::openMapped()
{
#ifdef KILO_TRACE_HAVE_MMAP
    int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd < 0)
        throw TraceError("cannot open trace file: " + path_);
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        throw TraceError("cannot stat trace file: " + path_);
    }
    size_t size = size_t(st.st_size);
    if (size == 0) {
        ::close(fd);
        throw TraceError("trace truncated: EOF inside magic: " +
                         path_);
    }
    void *m = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping holds its own reference
    if (m == MAP_FAILED)
        throw TraceError("cannot mmap trace file: " + path_);
    map = static_cast<const uint8_t *>(m);
    mapBytes = size;
    try {
        MemSource src{map, map + mapBytes};
        parseHeader(src, path_, meta_, nOps);
        firstBlockOffset = size_t(src.p - map);
    } catch (...) {
        ::munmap(const_cast<uint8_t *>(map), mapBytes);
        map = nullptr;
        throw;
    }
    mapOff = firstBlockOffset;
#else
    throw TraceError("mmap trace reading unsupported on this "
                     "platform: " + path_);
#endif
}

Reader::Reader(const std::string &path, ReadMode mode)
    : path_(path)
{
    if (mode == ReadMode::Auto) {
#ifdef KILO_TRACE_HAVE_MMAP
        const char *env = std::getenv("KILO_TRACE_MMAP");
        bool want_map = !(env && env[0] == '0');
        if (want_map) {
            try {
                openMapped();
                return;
            } catch (const TraceError &) {
                // A mapping-layer failure falls back to streaming;
                // a malformed header would fail there identically.
            }
        }
#endif
        openStreaming();
        return;
    }
    if (mode == ReadMode::Mmap)
        openMapped();
    else
        openStreaming();
}

Reader::~Reader()
{
    if (file)
        std::fclose(file);
#ifdef KILO_TRACE_HAVE_MMAP
    if (map)
        ::munmap(const_cast<uint8_t *>(map), mapBytes);
#endif
}

uint32_t
Reader::nextBlockView(const uint8_t *&payload, size_t &payload_bytes)
{
    payload = nullptr;
    payload_bytes = 0;

    if (map) {
        if (mapOff == mapBytes)
            return 0; // clean end-of-file
        if (mapBytes - mapOff < 12)
            throw TraceError("trace truncated: torn block frame: " +
                             path_);
        BlockFrame f = parseFrame(map + mapOff, path_);
        if (mapBytes - mapOff - 12 < f.payloadBytes)
            throw TraceError("trace truncated: EOF inside block "
                             "payload: " + path_);
        checkPayload(f, map + mapOff + 12, path_);
        payload = map + mapOff + 12;
        payload_bytes = f.payloadBytes;
        mapOff += 12 + size_t(f.payloadBytes);
        return f.blockOps;
    }

    // Streaming: one frame read, one payload read into the reusable
    // buffer. Distinguish clean EOF (zero bytes) from a torn frame.
    uint8_t frame[12];
    size_t got = std::fread(frame, 1, sizeof(frame), file);
    if (got == 0) {
        if (std::ferror(file))
            throw TraceError("trace read error: " + path_);
        return 0;
    }
    if (got != sizeof(frame))
        throw TraceError("trace truncated: torn block frame: " +
                         path_);
    BlockFrame f = parseFrame(frame, path_);
    streamBuf.resize(f.payloadBytes);
    if (std::fread(streamBuf.data(), 1, f.payloadBytes, file) !=
        f.payloadBytes) {
        throw TraceError("trace truncated: EOF inside block "
                         "payload: " + path_);
    }
    checkPayload(f, streamBuf.data(), path_);
    payload = streamBuf.data();
    payload_bytes = f.payloadBytes;
    return f.blockOps;
}

bool
Reader::readBlock(std::vector<isa::MicroOp> &out)
{
    out.clear();
    const uint8_t *cursor = nullptr;
    size_t bytes = 0;
    uint32_t block_ops = nextBlockView(cursor, bytes);
    if (block_ops == 0)
        return false;

    out.reserve(block_ops);
    CodecState codec;
    const uint8_t *end = cursor + bytes;
    for (uint32_t i = 0; i < block_ops; ++i)
        out.push_back(decodeOp(cursor, end, codec));
    if (cursor != end)
        throw TraceError("trace block corrupt: " +
                         std::to_string(end - cursor) +
                         " undecoded trailing bytes: " + path_);
    return true;
}

uint64_t
Reader::skipOps(uint64_t n)
{
    uint64_t skipped = 0;
    while (n > 0) {
        uint8_t frame[12];
        if (map) {
            if (mapOff == mapBytes)
                break; // clean end-of-file
            if (mapBytes - mapOff < sizeof(frame))
                throw TraceError("trace truncated: torn block "
                                 "frame: " + path_);
            std::memcpy(frame, map + mapOff, sizeof(frame));
        } else {
            size_t got = std::fread(frame, 1, sizeof(frame), file);
            if (got == 0) {
                if (std::ferror(file))
                    throw TraceError("trace read error: " + path_);
                break;
            }
            if (got != sizeof(frame))
                throw TraceError("trace truncated: torn block "
                                 "frame: " + path_);
        }
        BlockFrame f = parseFrame(frame, path_);
        if (f.blockOps > n) {
            // This block overshoots; leave it for the decode path.
            if (!map &&
                std::fseek(file, -long(sizeof(frame)), SEEK_CUR) != 0)
                throw TraceError("trace seek failed: " + path_);
            break;
        }
        if (map) {
            if (mapBytes - mapOff - sizeof(frame) < f.payloadBytes)
                throw TraceError("trace truncated: EOF inside block "
                                 "payload: " + path_);
            mapOff += sizeof(frame) + size_t(f.payloadBytes);
        } else {
            if (std::fseek(file, long(f.payloadBytes), SEEK_CUR) != 0)
                throw TraceError("trace truncated: EOF inside block "
                                 "payload: " + path_);
        }
        n -= f.blockOps;
        skipped += f.blockOps;
    }
    return skipped;
}

void
Reader::rewind()
{
    if (map) {
        mapOff = firstBlockOffset;
        return;
    }
    if (std::fseek(file, long(firstBlockOffset), SEEK_SET) != 0)
        throw TraceError("trace rewind failed: " + path_);
}

TraceWorkload::TraceWorkload(const std::string &path, ReadMode mode)
    : reader(path, mode)
{
    refill();
}

void
TraceWorkload::refill()
{
    if (remainingOps == 0 && cursor != payloadEnd && cursor != nullptr)
        throw TraceError("trace block corrupt: undecoded trailing "
                         "bytes");
    size_t bytes = 0;
    remainingOps = reader.nextBlockView(cursor, bytes);
    if (remainingOps == 0) {
        // End of file: the blocks walked must account for exactly the
        // op count the header was sealed with — a file truncated at a
        // block boundary, or never finish()ed, would otherwise wrap
        // early and replay a plausible but wrong stream.
        if (opsThisPass != reader.opCount()) {
            throw TraceError(
                "trace truncated: header declares " +
                std::to_string(reader.opCount()) +
                " ops, blocks hold " + std::to_string(opsThisPass));
        }
        // The Workload contract is an endless stream: wrap to block
        // 0, exactly like reset().
        reader.rewind();
        opsThisPass = 0;
        remainingOps = reader.nextBlockView(cursor, bytes);
        if (remainingOps == 0)
            throw TraceError("trace contains no records");
    }
    opsThisPass += remainingOps;
    payloadEnd = cursor + bytes;
    codec = CodecState{};
}

isa::MicroOp
TraceWorkload::decodeNext()
{
    if (remainingOps == 0)
        refill();
    --remainingOps;
    return decodeOp(cursor, payloadEnd, codec);
}

isa::MicroOp
TraceWorkload::next()
{
    return decodeNext();
}

size_t
TraceWorkload::nextBlock(isa::MicroOp *out, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = decodeNext();
    return n;
}

void
TraceWorkload::skip(uint64_t n)
{
    while (n > 0) {
        if (remainingOps > 0) {
            // Mid-block: the delta codec is sequential, so records up
            // to the block boundary (or the target) decode-discard.
            uint64_t take =
                n < remainingOps ? n : uint64_t(remainingOps);
            for (uint64_t i = 0; i < take; ++i)
                (void)decodeOp(cursor, payloadEnd, codec);
            remainingOps -= uint32_t(take);
            n -= take;
            continue;
        }
        if (cursor != payloadEnd)
            throw TraceError("trace block corrupt: undecoded "
                             "trailing bytes");
        // Block boundary: leap whole blocks without decoding.
        uint64_t skipped = reader.skipOps(n);
        opsThisPass += skipped;
        n -= skipped;
        if (n > 0) {
            // Either the next block overshoots (decode into it) or
            // we hit end-of-file (refill() wraps to block 0).
            refill();
        }
    }
}

void
TraceWorkload::reset()
{
    reader.rewind();
    // Discard any partially-decoded block before pulling block 0.
    remainingOps = 0;
    opsThisPass = 0;
    cursor = payloadEnd;
    refill();
}

wload::WorkloadPtr
openTrace(const std::string &path, ReadMode mode)
{
    return std::make_unique<TraceWorkload>(path, mode);
}

} // namespace kilo::trace
