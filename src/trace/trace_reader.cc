#include "src/trace/trace_reader.hh"

#include <algorithm>
#include <cstring>

namespace kilo::trace
{

namespace
{

void
getBytes(std::FILE *f, void *out, size_t size, const char *what)
{
    if (size && std::fread(out, 1, size, f) != size)
        throw TraceError(std::string("trace truncated: EOF inside ") +
                         what);
}

template <typename T>
T
getScalar(std::FILE *f, const char *what)
{
    T v;
    getBytes(f, &v, sizeof(v), what);
    return v;
}

} // anonymous namespace

Reader::Reader(const std::string &path)
    : path_(path)
{
    file = std::fopen(path.c_str(), "rb");
    if (!file)
        throw TraceError("cannot open trace file: " + path);

    try {
        char magic[sizeof(Magic)];
        getBytes(file, magic, sizeof(magic), "magic");
        if (std::memcmp(magic, Magic, sizeof(Magic)) != 0)
            throw TraceError("not a KILOTRC trace file: " + path);
        uint32_t version = getScalar<uint32_t>(file, "version");
        if (version != FormatVersion) {
            throw TraceError(
                "trace version mismatch: file v" +
                std::to_string(version) + ", reader v" +
                std::to_string(FormatVersion) + ": " + path);
        }
        nOps = getScalar<uint64_t>(file, "op count");
        meta_.seed = getScalar<uint64_t>(file, "seed");
        meta_.fp = getScalar<uint8_t>(file, "fp flag") != 0;
        uint16_t name_len = getScalar<uint16_t>(file, "name length");
        meta_.name.resize(name_len);
        getBytes(file, meta_.name.data(), name_len, "name");
        uint32_t num_regions =
            getScalar<uint32_t>(file, "region count");
        for (uint32_t i = 0; i < num_regions; ++i) {
            wload::AddressRegion r;
            r.base = getScalar<uint64_t>(file, "region base");
            r.bytes = getScalar<uint64_t>(file, "region size");
            meta_.regions.push_back(r);
        }
        firstBlockOffset = std::ftell(file);
    } catch (...) {
        std::fclose(file);
        file = nullptr;
        throw;
    }
}

Reader::~Reader()
{
    if (file)
        std::fclose(file);
}

uint32_t
Reader::readBlockRaw(std::vector<uint8_t> &out)
{
    // A block frame is 12 bytes: payload size, record count,
    // checksum. Distinguish clean EOF (zero bytes) from a torn frame.
    uint8_t frame[12];
    size_t got = std::fread(frame, 1, sizeof(frame), file);
    if (got == 0) {
        if (std::ferror(file))
            throw TraceError("trace read error: " + path_);
        return 0; // clean end-of-file
    }
    if (got != sizeof(frame))
        throw TraceError("trace truncated: torn block frame: " +
                         path_);
    uint32_t payload_bytes, block_ops, checksum;
    std::memcpy(&payload_bytes, frame + 0, 4);
    std::memcpy(&block_ops, frame + 4, 4);
    std::memcpy(&checksum, frame + 8, 4);

    if (payload_bytes == 0 || payload_bytes > BlockMaxBytes ||
        block_ops == 0) {
        throw TraceError("trace block corrupt: implausible frame "
                         "(payload " + std::to_string(payload_bytes) +
                         " B, " + std::to_string(block_ops) +
                         " ops): " + path_);
    }
    out.resize(payload_bytes);
    getBytes(file, out.data(), payload_bytes, "block payload");
    if (blockChecksum(out.data(), payload_bytes) != checksum)
        throw TraceError("trace block corrupt: checksum mismatch: " +
                         path_);
    return block_ops;
}

bool
Reader::readBlock(std::vector<isa::MicroOp> &out)
{
    out.clear();
    std::vector<uint8_t> raw;
    uint32_t block_ops = readBlockRaw(raw);
    if (block_ops == 0)
        return false;

    out.reserve(block_ops);
    CodecState codec;
    const uint8_t *cursor = raw.data();
    const uint8_t *end = cursor + raw.size();
    for (uint32_t i = 0; i < block_ops; ++i)
        out.push_back(decodeOp(cursor, end, codec));
    if (cursor != end)
        throw TraceError("trace block corrupt: " +
                         std::to_string(end - cursor) +
                         " undecoded trailing bytes: " + path_);
    return true;
}

void
Reader::rewind()
{
    if (std::fseek(file, firstBlockOffset, SEEK_SET) != 0)
        throw TraceError("trace rewind failed: " + path_);
}

TraceWorkload::TraceWorkload(const std::string &path)
    : reader(path)
{
    refill();
}

void
TraceWorkload::refill()
{
    if (remainingOps == 0 && cursor != payloadEnd && cursor != nullptr)
        throw TraceError("trace block corrupt: undecoded trailing "
                         "bytes");
    remainingOps = reader.readBlockRaw(payload);
    if (remainingOps == 0) {
        // End of file: the blocks walked must account for exactly the
        // op count the header was sealed with — a file truncated at a
        // block boundary, or never finish()ed, would otherwise wrap
        // early and replay a plausible but wrong stream.
        if (opsThisPass != reader.opCount()) {
            throw TraceError(
                "trace truncated: header declares " +
                std::to_string(reader.opCount()) +
                " ops, blocks hold " + std::to_string(opsThisPass));
        }
        // The Workload contract is an endless stream: wrap to block
        // 0, exactly like reset().
        reader.rewind();
        opsThisPass = 0;
        remainingOps = reader.readBlockRaw(payload);
        if (remainingOps == 0)
            throw TraceError("trace contains no records");
    }
    opsThisPass += remainingOps;
    cursor = payload.data();
    payloadEnd = cursor + payload.size();
    codec = CodecState{};
}

isa::MicroOp
TraceWorkload::decodeNext()
{
    if (remainingOps == 0)
        refill();
    --remainingOps;
    return decodeOp(cursor, payloadEnd, codec);
}

isa::MicroOp
TraceWorkload::next()
{
    return decodeNext();
}

size_t
TraceWorkload::nextBlock(isa::MicroOp *out, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = decodeNext();
    return n;
}

void
TraceWorkload::reset()
{
    reader.rewind();
    // Discard any partially-decoded block before pulling block 0.
    remainingOps = 0;
    opsThisPass = 0;
    cursor = payloadEnd;
    refill();
}

wload::WorkloadPtr
openTrace(const std::string &path)
{
    return std::make_unique<TraceWorkload>(path);
}

} // namespace kilo::trace
