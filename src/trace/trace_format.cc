#include "src/trace/trace_format.hh"

#include <bit>
#include <cstring>

namespace kilo::trace
{

namespace
{

void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(uint8_t(v) | 0x80);
        v >>= 7;
    }
    out.push_back(uint8_t(v));
}

uint8_t
encodeReg(int16_t reg)
{
    return uint8_t(reg + 1);
}

} // anonymous namespace

void
encodeOp(std::vector<uint8_t> &out, const isa::MicroOp &op,
         CodecState &state)
{
    using detail::ClassMask;
    using detail::TakenBit;
    using detail::zigzag;

    out.push_back(uint8_t(uint8_t(op.cls) & ClassMask) |
                  (op.taken ? TakenBit : 0));
    out.push_back(encodeReg(op.src1));
    out.push_back(encodeReg(op.src2));
    out.push_back(encodeReg(op.dst));
    putVarint(out, zigzag(int64_t(op.pc - state.prevPc)));
    state.prevPc = op.pc;
    if (op.isMem()) {
        putVarint(out, zigzag(int64_t(op.effAddr - state.prevEffAddr)));
        state.prevEffAddr = op.effAddr;
        out.push_back(op.memSize);
    }
    if (op.isBranch())
        putVarint(out, zigzag(int64_t(op.target - op.pc)));
}

uint32_t
blockChecksum(const uint8_t *data, size_t size)
{
    // Word-at-a-time xor-rotate-multiply mix (FNV constants). A
    // byte-serial FNV would put a dependent multiply on every payload
    // byte, costing more than the record decode itself.
    uint64_t h = 0xcbf29ce484222325ull ^ size;
    size_t i = 0;
    for (; i + 8 <= size; i += 8) {
        uint64_t w;
        std::memcpy(&w, data + i, 8);
        h = (std::rotl(h, 5) ^ w) * 0x00000100000001b3ull;
    }
    if (i < size) {
        uint64_t tail = 0;
        std::memcpy(&tail, data + i, size - i);
        h = (std::rotl(h, 5) ^ tail) * 0x00000100000001b3ull;
    }
    return uint32_t(h ^ (h >> 32));
}

} // namespace kilo::trace
