/**
 * @file
 * Streaming trace writer: header + block-framed record emission.
 *
 * The writer buffers encoded records and flushes a framed block when
 * the payload crosses BlockTargetBytes, so capture adds one fwrite
 * per ~64 KB of trace, not one per micro-op. finish() flushes the
 * tail block and back-patches the header's total op count; the
 * destructor calls it for you (best-effort) if you forget.
 */

#pragma once

#include <cstdio>
#include <vector>

#include "src/trace/trace_format.hh"

namespace kilo::trace
{

/** Writes one trace file; not copyable, single-stream. */
class Writer
{
  public:
    /** Open @p path for writing and emit the header. Throws
     *  TraceError when the file cannot be created. */
    Writer(const std::string &path, const TraceMeta &meta);

    ~Writer();

    Writer(const Writer &) = delete;
    Writer &operator=(const Writer &) = delete;

    /** Append one micro-op record. */
    void append(const isa::MicroOp &op);

    /** Flush the tail block, patch the header op count and close.
     *  Idempotent. Throws TraceError on write failure. */
    void finish();

    /** Total ops appended so far. */
    uint64_t opCount() const { return nOps; }

    /** Metadata written to the header. */
    const TraceMeta &meta() const { return meta_; }

  private:
    void flushBlock();

    TraceMeta meta_;
    std::string path_;
    std::FILE *file = nullptr;
    std::vector<uint8_t> payload;   ///< current block, encoded
    uint32_t blockOps = 0;          ///< records in `payload`
    CodecState codec;
    uint64_t nOps = 0;
    bool finished = false;
};

} // namespace kilo::trace

