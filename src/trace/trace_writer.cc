#include "src/trace/trace_writer.hh"

#include <bit>

namespace kilo::trace
{

namespace
{

void
putBytes(std::FILE *f, const void *data, size_t size,
         const std::string &path)
{
    if (size && std::fwrite(data, 1, size, f) != size)
        throw TraceError("trace write failed: " + path);
}

template <typename T>
void
putScalar(std::FILE *f, T v, const std::string &path)
{
    // The format is little-endian; every supported target is too, so
    // a byte copy of the in-memory representation is the encoding.
    static_assert(std::endian::native == std::endian::little,
                  "trace format requires a little-endian host");
    putBytes(f, &v, sizeof(v), path);
}

} // anonymous namespace

Writer::Writer(const std::string &path, const TraceMeta &meta)
    : meta_(meta), path_(path)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        throw TraceError("cannot create trace file: " + path);
    payload.reserve(BlockTargetBytes + 32);

    try {
        // Header. The op count at OpCountOffset is a placeholder
        // patched by finish(); everything else is final.
        putBytes(file, Magic, sizeof(Magic), path_);
        putScalar(file, FormatVersion, path_);
        putScalar(file, uint64_t(0), path_); // op count (patched)
        putScalar(file, meta_.seed, path_);
        putScalar(file, uint8_t(meta_.fp ? 1 : 0), path_);
        uint16_t name_len = uint16_t(meta_.name.size());
        putScalar(file, name_len, path_);
        putBytes(file, meta_.name.data(), name_len, path_);
        putScalar(file, uint32_t(meta_.regions.size()), path_);
        for (const auto &r : meta_.regions) {
            putScalar(file, r.base, path_);
            putScalar(file, r.bytes, path_);
        }
    } catch (...) {
        std::fclose(file);
        file = nullptr;
        throw;
    }
}

Writer::~Writer()
{
    try {
        finish();
    } catch (const TraceError &e) {
        // Destructors must not throw; the explicit finish() path is
        // the one that reports failures.
        std::fprintf(stderr, "warn: %s\n", e.what());
    }
}

void
Writer::append(const isa::MicroOp &op)
{
    encodeOp(payload, op, codec);
    ++blockOps;
    ++nOps;
    if (payload.size() >= BlockTargetBytes)
        flushBlock();
}

void
Writer::flushBlock()
{
    if (blockOps == 0)
        return;
    putScalar(file, uint32_t(payload.size()), path_);
    putScalar(file, blockOps, path_);
    putScalar(file, blockChecksum(payload.data(), payload.size()),
              path_);
    putBytes(file, payload.data(), payload.size(), path_);
    payload.clear();
    blockOps = 0;
    codec = CodecState{}; // blocks decode independently
}

void
Writer::finish()
{
    if (finished)
        return;
    try {
        flushBlock();
        if (std::fseek(file, OpCountOffset, SEEK_SET) != 0) {
            throw TraceError("trace op-count patch seek failed: " +
                             path_);
        }
        uint64_t n = nOps;
        putBytes(file, &n, sizeof(n), path_);
    } catch (...) {
        // The trace is broken either way; don't leak the handle, and
        // don't let the destructor re-enter a failed finish.
        std::fclose(file);
        file = nullptr;
        finished = true;
        throw;
    }
    finished = true;
    if (std::fclose(file) != 0) {
        file = nullptr;
        throw TraceError("trace close failed: " + path_);
    }
    file = nullptr;
}

} // namespace kilo::trace
