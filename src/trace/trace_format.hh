/**
 * @file
 * The KILOTRC binary micro-op trace format: constants, metadata and
 * the per-record codec shared by the writer and the reader.
 *
 * A trace file turns a workload into a durable, exchangeable artifact:
 * a versioned little-endian header (provenance: name, FP suite flag,
 * generator seed, prewarm regions) followed by a sequence of framed
 * blocks of delta+varint-encoded MicroOp records. Blocks are
 * independently decodable (the delta predictor resets per block) and
 * carry their uncompressed payload size, record count and a checksum,
 * so a reader can stream, skip or validate blocks without decoding
 * the whole file. See src/trace/DESIGN.md for the layout diagram and
 * the versioning policy.
 */

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/isa/micro_op.hh"
#include "src/wload/workload.hh"

namespace kilo::trace
{

/** First 8 bytes of every trace file ("KILOTRC" + format family). */
constexpr char Magic[8] = {'K', 'I', 'L', 'O', 'T', 'R', 'C', '1'};

/** Current format version; bumped on any layout change. */
constexpr uint32_t FormatVersion = 1;

/** Target uncompressed payload bytes per block (flush threshold). */
constexpr size_t BlockTargetBytes = 64 * 1024;

/** Upper bound a reader accepts for one block's payload; a declared
 *  size beyond this is treated as corruption, not an allocation. */
constexpr size_t BlockMaxBytes = 4 * 1024 * 1024;

/** Byte offset of the total-op-count field patched by finish(). */
constexpr long OpCountOffset = 12;

/** Upper bound of one encoded record: 4 fixed bytes + memSize + three
 *  varints of at most 10 bytes each. The decoder takes an unchecked
 *  fast path while at least this many payload bytes remain. */
constexpr size_t MaxRecordBytes = 35;

/** Malformed, truncated or mismatched trace input. */
class TraceError : public std::runtime_error
{
  public:
    explicit TraceError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Provenance carried in the trace header. */
struct TraceMeta
{
    std::string name = "trace";     ///< benchmark name
    bool fp = false;                ///< FP suite member
    uint64_t seed = 0;              ///< generator seed (provenance)
    std::vector<wload::AddressRegion> regions;  ///< prewarm regions
};

/**
 * Delta predictor of the record codec. PCs and effective addresses
 * are encoded as zigzag deltas from the previous record's values;
 * branch targets as deltas from the branch's own PC. The state is
 * reset at every block boundary so blocks decode independently.
 */
struct CodecState
{
    uint64_t prevPc = 0;
    uint64_t prevEffAddr = 0;
};

/** Append the encoding of @p op to @p out, advancing @p state. */
void encodeOp(std::vector<uint8_t> &out, const isa::MicroOp &op,
              CodecState &state);

/** 32-bit word-mixed checksum over a block payload. */
uint32_t blockChecksum(const uint8_t *data, size_t size);

namespace detail
{

/**
 * Record layout (all fields little-endian, byte-granular):
 *
 *   byte 0      bits 0-3: OpClass, bit 4: taken
 *   byte 1-3    src1+1, src2+1, dst+1   (0 encodes NoReg)
 *   varint      zigzag(pc - prevPc)
 *   [mem only]  varint zigzag(effAddr - prevEffAddr), byte memSize
 *   [branch]    varint zigzag(target - pc)
 *
 * Register fields are +1-biased so the common NoReg sentinel is the
 * zero byte; the synthetic ISA's 64-register namespace fits a byte
 * with room to spare. The decoder lives here, inline, because replay
 * feeds the simulator's hottest loop — every micro-op fetched passes
 * through decodeOp.
 */

constexpr uint8_t TakenBit = 0x10;
constexpr uint8_t ClassMask = 0x0f;

inline uint64_t
zigzag(int64_t v)
{
    return (uint64_t(v) << 1) ^ uint64_t(v >> 63);
}

inline int64_t
unzigzag(uint64_t v)
{
    return int64_t(v >> 1) ^ -int64_t(v & 1);
}

/**
 * Varint decode. @tparam Checked bounds-checks every byte; the
 * unchecked variant is only entered with MaxRecordBytes of payload
 * remaining, and the 64-bit shift cap bounds it to 10 bytes, so it
 * can never read past the block even on corrupt input.
 */
template <bool Checked>
inline uint64_t
getVarint(const uint8_t *&cursor, const uint8_t *end)
{
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
        if (Checked && cursor >= end)
            throw TraceError("trace block corrupt: varint overruns "
                             "block payload");
        if (shift >= 64)
            throw TraceError("trace block corrupt: varint longer "
                             "than 64 bits");
        uint8_t byte = *cursor++;
        v |= uint64_t(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return v;
        shift += 7;
    }
}

inline int16_t
decodeReg(uint8_t byte)
{
    if (byte > uint8_t(isa::NumRegs))
        throw TraceError("trace block corrupt: register id out of "
                         "range");
    return int16_t(byte) - 1;
}

template <bool Checked>
inline uint8_t
getByte(const uint8_t *&cursor, const uint8_t *end)
{
    if (Checked && cursor >= end)
        throw TraceError("trace block corrupt: record overruns block "
                         "payload");
    return *cursor++;
}

template <bool Checked>
inline isa::MicroOp
decodeOpImpl(const uint8_t *&cursor, const uint8_t *end,
             CodecState &state)
{
    isa::MicroOp op;
    uint8_t head = getByte<Checked>(cursor, end);
    uint8_t cls = head & ClassMask;
    if (cls >= uint8_t(isa::NumOpClasses))
        throw TraceError("trace block corrupt: op class out of "
                         "range");
    op.cls = isa::OpClass(cls);
    op.taken = (head & TakenBit) != 0;
    op.src1 = decodeReg(getByte<Checked>(cursor, end));
    op.src2 = decodeReg(getByte<Checked>(cursor, end));
    op.dst = decodeReg(getByte<Checked>(cursor, end));
    op.pc = state.prevPc +
        uint64_t(unzigzag(getVarint<Checked>(cursor, end)));
    state.prevPc = op.pc;
    if (op.isMem()) {
        op.effAddr = state.prevEffAddr +
            uint64_t(unzigzag(getVarint<Checked>(cursor, end)));
        state.prevEffAddr = op.effAddr;
        op.memSize = getByte<Checked>(cursor, end);
    }
    if (op.isBranch()) {
        op.target = op.pc +
            uint64_t(unzigzag(getVarint<Checked>(cursor, end)));
    }
    return op;
}

} // namespace detail

/**
 * Decode one record from [@p cursor, @p end), advancing @p cursor and
 * @p state. Throws TraceError on any overrun or invalid field — a
 * corrupt block can never produce UB or a silently wrong op.
 */
inline isa::MicroOp
decodeOp(const uint8_t *&cursor, const uint8_t *end,
         CodecState &state)
{
    if (size_t(end - cursor) >= MaxRecordBytes)
        return detail::decodeOpImpl<false>(cursor, end, state);
    return detail::decodeOpImpl<true>(cursor, end, state);
}

} // namespace kilo::trace

