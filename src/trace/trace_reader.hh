/**
 * @file
 * Trace reader and the replay workload built on it.
 *
 * Reader serves a KILOTRC file block by block, validating framing,
 * checksums and record encoding as it goes — every way a file can be
 * malformed (bad magic, newer version, truncation, mid-block bit
 * flips) raises TraceError with a specific message, never UB.
 *
 * Two backends sit behind one interface (ReadMode):
 *
 *  - Streaming: buffered fread of one block at a time — works on
 *    pipes and non-mappable inputs, owns a single reusable block
 *    buffer.
 *  - Mmap: the whole file mapped read-only; nextBlockView() returns
 *    pointers straight into the mapping, so replay decodes zero-copy
 *    and N worker processes replaying one file on a host share its
 *    pages through the page cache (the fan-out mode cluster-scale
 *    sharded sweeps use — see src/shard/DESIGN.md).
 *
 * Auto (the default) tries mmap and silently falls back to streaming
 * when the platform or the file refuses; KILO_TRACE_MMAP=0 forces the
 * streaming backend for A/B comparison. Both backends run the same
 * validation and the same checked/unchecked decode fast paths, and
 * are bit-for-bit equivalent (pinned by tests/test_trace.cpp).
 *
 * The malformation guarantee covers the file's *contents* as mapped
 * or read. The mapped backend additionally assumes — like any mmap
 * consumer — that the file is not truncated by another process while
 * open: shrinking a live mapping yields SIGBUS on the vanished
 * pages, which no userspace validation can turn into an exception.
 * Re-recording a trace in place while workers replay it is a usage
 * error; write to a temp path and rename, or force streaming.
 *
 * TraceWorkload adapts a Reader to the wload::Workload interface:
 * deterministic, endless (the stream wraps to block 0 at EOF, like
 * every other workload), with regions() served from the header for
 * cache prewarm and nextBlock() decoding straight through with one
 * virtual call per batch.
 */

#pragma once

#include <cstdio>
#include <vector>

#include "src/trace/trace_format.hh"

namespace kilo::trace
{

/** Which block-serving backend a Reader uses. */
enum class ReadMode : uint8_t
{
    Auto,       ///< mmap when possible, else streaming
    Streaming,  ///< buffered fread, block-sized copies
    Mmap,       ///< whole-file read-only mapping, zero-copy views
};

/** Block-at-a-time reader of one trace file. */
class Reader
{
  public:
    /** Open @p path and parse the header; throws TraceError on any
     *  malformation (and, under ReadMode::Mmap, when the file cannot
     *  be mapped). */
    explicit Reader(const std::string &path,
                    ReadMode mode = ReadMode::Auto);

    ~Reader();

    Reader(const Reader &) = delete;
    Reader &operator=(const Reader &) = delete;

    /** Header metadata. */
    const TraceMeta &meta() const { return meta_; }

    /** Total records in the file (from the header). */
    uint64_t opCount() const { return nOps; }

    /** True when the mmap backend is serving blocks. */
    bool mapped() const { return map != nullptr; }

    /**
     * Decode the next block into @p out (replacing its contents).
     * Returns false at a clean end-of-file; throws TraceError on a
     * truncated frame, checksum mismatch or undecodable payload.
     */
    bool readBlock(std::vector<isa::MicroOp> &out);

    /**
     * Validate the next block and expose its payload without copying:
     * under mmap the pointers land straight in the file mapping, under
     * streaming in a reader-owned buffer reused by the next call.
     * Returns the block's record count, or 0 at a clean end-of-file
     * (payload left null). The view is valid until the next read or
     * rewind.
     */
    uint32_t nextBlockView(const uint8_t *&payload,
                           size_t &payload_bytes);

    /**
     * Skip forward past whole blocks totalling at most @p n records,
     * without decoding or checksumming their payloads — under mmap
     * this is pure pointer arithmetic, under streaming one fseek per
     * block. Stops before a block that would overshoot @p n and at a
     * clean end-of-file; returns the records actually skipped
     * (<= @p n). Frame plausibility and truncation are still
     * validated; payload corruption inside a skipped block goes
     * undetected by design (fast-forward never consumes it).
     */
    uint64_t skipOps(uint64_t n);

    /** Seek back to the first block. */
    void rewind();

  private:
    void openStreaming();
    void openMapped();

    TraceMeta meta_;
    std::string path_;

    /** Streaming backend. @{ */
    std::FILE *file = nullptr;
    std::vector<uint8_t> streamBuf;  ///< nextBlockView() storage
    /** @} */

    /** Mmap backend. @{ */
    const uint8_t *map = nullptr;
    size_t mapBytes = 0;
    size_t mapOff = 0;               ///< next unread byte
    /** @} */

    size_t firstBlockOffset = 0;
    uint64_t nOps = 0;
};

/** Deterministic replay of a trace file as a Workload. */
class TraceWorkload : public wload::Workload
{
  public:
    /** Throws TraceError on a malformed or empty trace. */
    explicit TraceWorkload(const std::string &path,
                           ReadMode mode = ReadMode::Auto);

    isa::MicroOp next() override;
    size_t nextBlock(isa::MicroOp *out, size_t n) override;
    void skip(uint64_t n) override;
    const std::string &name() const override
    {
        return reader.meta().name;
    }
    bool isFp() const override { return reader.meta().fp; }
    void reset() override;
    std::vector<wload::AddressRegion> regions() const override
    {
        return reader.meta().regions;
    }

    /** Records in the underlying file (one pass, before wrapping). */
    uint64_t traceOps() const { return reader.opCount(); }

    /** True when replay decodes from a zero-copy file mapping. */
    bool mapped() const { return reader.mapped(); }

  private:
    void refill();
    isa::MicroOp decodeNext();

    Reader reader;

    /** Current block: records are parsed straight out of the block
     *  view (mapped pages or the reader's buffer) into the consumer's
     *  buffer, so replay is one decode pass with no intermediate op
     *  vector. @{ */
    const uint8_t *cursor = nullptr;
    const uint8_t *payloadEnd = nullptr;
    uint32_t remainingOps = 0;        ///< undecoded records left
    uint64_t opsThisPass = 0;         ///< ops loaded since block 0
    CodecState codec;
    /** @} */
};

/** Convenience: open @p path for replay. */
wload::WorkloadPtr openTrace(const std::string &path,
                             ReadMode mode = ReadMode::Auto);

} // namespace kilo::trace

