/**
 * @file
 * Trace reader and the replay workload built on it.
 *
 * Reader streams a KILOTRC file block by block, validating framing,
 * checksums and record encoding as it goes — every way a file can be
 * malformed (bad magic, newer version, truncation, mid-block bit
 * flips) raises TraceError with a specific message, never UB.
 *
 * TraceWorkload adapts a Reader to the wload::Workload interface:
 * deterministic, endless (the stream wraps to block 0 at EOF, like
 * every other workload), with regions() served from the header for
 * cache prewarm and nextBlock() decoding straight through with one
 * virtual call per batch.
 */

#ifndef KILO_TRACE_TRACE_READER_HH
#define KILO_TRACE_TRACE_READER_HH

#include <cstdio>
#include <vector>

#include "src/trace/trace_format.hh"

namespace kilo::trace
{

/** Streaming block-at-a-time reader of one trace file. */
class Reader
{
  public:
    /** Open @p path and parse the header; throws TraceError on any
     *  malformation. */
    explicit Reader(const std::string &path);

    ~Reader();

    Reader(const Reader &) = delete;
    Reader &operator=(const Reader &) = delete;

    /** Header metadata. */
    const TraceMeta &meta() const { return meta_; }

    /** Total records in the file (from the header). */
    uint64_t opCount() const { return nOps; }

    /**
     * Decode the next block into @p out (replacing its contents).
     * Returns false at a clean end-of-file; throws TraceError on a
     * truncated frame, checksum mismatch or undecodable payload.
     */
    bool readBlock(std::vector<isa::MicroOp> &out);

    /**
     * Load the next block's raw payload into @p out, validating the
     * frame and checksum but deferring record decode to the caller.
     * Returns the block's record count, or 0 at a clean end-of-file.
     */
    uint32_t readBlockRaw(std::vector<uint8_t> &out);

    /** Seek back to the first block. */
    void rewind();

  private:
    TraceMeta meta_;
    std::string path_;
    std::FILE *file = nullptr;
    long firstBlockOffset = 0;
    uint64_t nOps = 0;
};

/** Deterministic replay of a trace file as a Workload. */
class TraceWorkload : public wload::Workload
{
  public:
    /** Throws TraceError on a malformed or empty trace. */
    explicit TraceWorkload(const std::string &path);

    isa::MicroOp next() override;
    size_t nextBlock(isa::MicroOp *out, size_t n) override;
    const std::string &name() const override
    {
        return reader.meta().name;
    }
    bool isFp() const override { return reader.meta().fp; }
    void reset() override;
    std::vector<wload::AddressRegion> regions() const override
    {
        return reader.meta().regions;
    }

    /** Records in the underlying file (one pass, before wrapping). */
    uint64_t traceOps() const { return reader.opCount(); }

  private:
    void refill();
    isa::MicroOp decodeNext();

    Reader reader;

    /** Current block, decoded on demand: records are parsed straight
     *  out of the raw payload into the consumer's buffer, so replay
     *  is one decode pass with no intermediate op vector. @{ */
    std::vector<uint8_t> payload;
    const uint8_t *cursor = nullptr;
    const uint8_t *payloadEnd = nullptr;
    uint32_t remainingOps = 0;        ///< undecoded records left
    uint64_t opsThisPass = 0;         ///< ops loaded since block 0
    CodecState codec;
    /** @} */
};

/** Convenience: open @p path for replay. */
wload::WorkloadPtr openTrace(const std::string &path);

} // namespace kilo::trace

#endif // KILO_TRACE_TRACE_READER_HH
