#include "src/trace/capture.hh"

namespace kilo::trace
{

namespace
{

TraceMeta
metaOf(const wload::Workload &inner, uint64_t seed)
{
    TraceMeta meta;
    meta.name = inner.name();
    meta.fp = inner.isFp();
    meta.seed = seed;
    meta.regions = inner.regions();
    return meta;
}

} // anonymous namespace

CapturingWorkload::CapturingWorkload(wload::Workload &source,
                                     const std::string &path,
                                     uint64_t seed)
    : inner(source), writer(path, metaOf(source, seed))
{}

isa::MicroOp
CapturingWorkload::next()
{
    isa::MicroOp op = inner.next();
    writer.append(op);
    return op;
}

size_t
CapturingWorkload::nextBlock(isa::MicroOp *out, size_t n)
{
    size_t got = inner.nextBlock(out, n);
    for (size_t i = 0; i < got; ++i)
        writer.append(out[i]);
    return got;
}

} // namespace kilo::trace
