/**
 * @file
 * Perceptron branch predictor (Jimenez & Lin, HPCA 2001) — the
 * predictor the paper's Cache Processor uses (Table 2).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "src/pred/predictor.hh"

namespace kilo::pred
{

/**
 * Table of perceptrons over global branch history.
 *
 * Each table entry holds historyLength weights plus a bias. The
 * prediction is the sign of the dot product of the weights with the
 * (+1/-1 encoded) history; training bumps weights when the prediction
 * was wrong or the output magnitude is under the threshold
 * theta = floor(1.93 * h + 14), the value derived in the original
 * paper.
 */
class PerceptronPredictor : public BranchPredictor
{
  public:
    /**
     * @param num_entries    number of perceptrons (power of two)
     * @param history_length global history bits used (<= 64)
     */
    PerceptronPredictor(uint32_t num_entries = 1024,
                        uint32_t history_length = 28);

    bool lookup(uint64_t pc, uint64_t history) override;
    void train(uint64_t pc, uint64_t history, bool taken) override;
    BpKind kind() const override { return BpKind::Perceptron; }

    /** History length in use. */
    uint32_t historyLength() const { return histLen; }

    /** Training threshold theta. */
    int32_t threshold() const { return theta; }

    void
    save(ckpt::Sink &s) const override
    {
        s.podVector(weights);
    }

    void
    load(ckpt::Source &s) override
    {
        size_t sz = weights.size();
        s.podVector(weights);
        if (weights.size() != sz)
            throw ckpt::CheckpointError(
                "predictor checkpoint geometry mismatch");
    }

  private:
    int32_t output(uint64_t pc, uint64_t history) const;
    uint32_t index(uint64_t pc) const;

    uint32_t entries;
    uint32_t histLen;
    int32_t theta;
    int32_t weightMax;
    int32_t weightMin;
    /** entries x (histLen + 1) weights; column 0 is the bias. */
    std::vector<int16_t> weights;
};

} // namespace kilo::pred

