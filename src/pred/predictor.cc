#include "src/pred/predictor.hh"

#include "src/pred/perceptron.hh"
#include "src/pred/table_predictors.hh"
#include "src/util/logging.hh"

namespace kilo::pred
{

const char *
bpKindName(BpKind kind)
{
    switch (kind) {
      case BpKind::Perceptron: return "perceptron";
      case BpKind::Gshare: return "gshare";
      case BpKind::Bimodal: return "bimodal";
      case BpKind::AlwaysTaken: return "always-taken";
      case BpKind::Perfect: return "perfect";
    }
    KILO_PANIC("unknown BpKind");
}

std::unique_ptr<BranchPredictor>
makePredictor(BpKind kind, uint64_t seed)
{
    (void)seed;
    switch (kind) {
      case BpKind::Perceptron:
        return std::make_unique<PerceptronPredictor>();
      case BpKind::Gshare:
        return std::make_unique<GsharePredictor>();
      case BpKind::Bimodal:
        return std::make_unique<BimodalPredictor>();
      case BpKind::AlwaysTaken:
        return std::make_unique<AlwaysTakenPredictor>();
      case BpKind::Perfect:
        return std::make_unique<PerfectPredictor>();
    }
    KILO_PANIC("unknown BpKind");
}

} // namespace kilo::pred
