/**
 * @file
 * Branch-direction predictor interface and factory.
 *
 * Predictors are stateless with respect to global history: the fetch
 * engine owns the speculative history register and passes it to
 * lookup()/train(), which lets recovery snapshot and restore history
 * per in-flight branch.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/ckpt/serial.hh"

namespace kilo::pred
{

/** Selectable predictor families. */
enum class BpKind : uint8_t
{
    Perceptron,   ///< Jimenez & Lin perceptron (the paper's default)
    Gshare,       ///< 2-bit counters indexed by pc ^ history
    Bimodal,      ///< 2-bit counters indexed by pc
    AlwaysTaken,  ///< static taken
    Perfect,      ///< oracle; handled by the fetch engine
};

/** Name of a predictor kind. */
const char *bpKindName(BpKind kind);

/** Direction predictor interface. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the branch at @p pc. */
    virtual bool lookup(uint64_t pc, uint64_t history) = 0;

    /**
     * Train with the resolved outcome.
     *
     * @param history the global history *at prediction time*
     * @param taken   the actual direction
     */
    virtual void train(uint64_t pc, uint64_t history, bool taken) = 0;

    /** True when the fetch engine should bypass with the oracle. */
    virtual bool isPerfect() const { return false; }

    /** Kind tag for stat output. */
    virtual BpKind kind() const = 0;

    /** Serialize / restore predictor table state. Stateless
     *  predictors (always-taken, perfect) keep the no-op default;
     *  geometry is configuration and must match on load. @{ */
    virtual void save(ckpt::Sink &) const {}
    virtual void load(ckpt::Source &) {}
    /** @} */
};

/** Build a predictor of the given kind with its default geometry. */
std::unique_ptr<BranchPredictor> makePredictor(BpKind kind,
                                               uint64_t seed = 1);

} // namespace kilo::pred

