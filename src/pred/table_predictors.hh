/**
 * @file
 * Classic saturating-counter predictors (bimodal, gshare) plus the
 * static always-taken and oracle predictors. These serve as ablation
 * baselines against the perceptron default.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "src/pred/predictor.hh"

namespace kilo::pred
{

/** Two-bit saturating counters indexed by PC. */
class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(uint32_t num_entries = 4096);

    bool lookup(uint64_t pc, uint64_t history) override;
    void train(uint64_t pc, uint64_t history, bool taken) override;
    BpKind kind() const override { return BpKind::Bimodal; }

    void
    save(ckpt::Sink &s) const override
    {
        s.podVector(counters);
    }

    void
    load(ckpt::Source &s) override
    {
        size_t sz = counters.size();
        s.podVector(counters);
        if (counters.size() != sz)
            throw ckpt::CheckpointError(
                "predictor checkpoint geometry mismatch");
    }

  protected:
    uint32_t index(uint64_t pc, uint64_t history) const;

    uint32_t entries;
    uint32_t histBits;
    std::vector<uint8_t> counters;
};

/** Two-bit counters indexed by pc XOR global history. */
class GsharePredictor : public BimodalPredictor
{
  public:
    explicit GsharePredictor(uint32_t num_entries = 4096,
                             uint32_t history_bits = 12);

    BpKind kind() const override { return BpKind::Gshare; }
};

/** Statically predicts taken. */
class AlwaysTakenPredictor : public BranchPredictor
{
  public:
    bool lookup(uint64_t, uint64_t) override { return true; }
    void train(uint64_t, uint64_t, bool) override {}
    BpKind kind() const override { return BpKind::AlwaysTaken; }
};

/** Oracle marker; the fetch engine substitutes the actual outcome. */
class PerfectPredictor : public BranchPredictor
{
  public:
    bool lookup(uint64_t, uint64_t) override { return true; }
    void train(uint64_t, uint64_t, bool) override {}
    bool isPerfect() const override { return true; }
    BpKind kind() const override { return BpKind::Perfect; }
};

} // namespace kilo::pred

