#include "src/pred/perceptron.hh"

#include <cmath>

#include "src/util/logging.hh"

namespace kilo::pred
{

PerceptronPredictor::PerceptronPredictor(uint32_t num_entries,
                                         uint32_t history_length)
    : entries(num_entries), histLen(history_length)
{
    KILO_ASSERT(histLen >= 1 && histLen <= 64,
                "perceptron history length must be 1..64");
    KILO_ASSERT(entries && !(entries & (entries - 1)),
                "perceptron table size must be a power of two");
    theta = int32_t(std::floor(1.93 * histLen + 14));
    // 8-bit signed weights as in the original hardware proposal.
    weightMax = 127;
    weightMin = -128;
    weights.assign(size_t(entries) * (histLen + 1), 0);
}

uint32_t
PerceptronPredictor::index(uint64_t pc) const
{
    // Drop the byte offset; mix upper bits in for large codes.
    uint64_t v = (pc >> 2) ^ (pc >> 13);
    return uint32_t(v & (entries - 1));
}

int32_t
PerceptronPredictor::output(uint64_t pc, uint64_t history) const
{
    const int16_t *w = &weights[size_t(index(pc)) * (histLen + 1)];
    int32_t y = w[0];
    for (uint32_t i = 0; i < histLen; ++i) {
        bool bit = (history >> i) & 1;
        y += bit ? w[i + 1] : -w[i + 1];
    }
    return y;
}

bool
PerceptronPredictor::lookup(uint64_t pc, uint64_t history)
{
    return output(pc, history) >= 0;
}

void
PerceptronPredictor::train(uint64_t pc, uint64_t history, bool taken)
{
    int32_t y = output(pc, history);
    bool pred = y >= 0;
    if (pred == taken && std::abs(y) > theta)
        return;

    int16_t *w = &weights[size_t(index(pc)) * (histLen + 1)];
    int t = taken ? 1 : -1;

    int32_t b = w[0] + t;
    w[0] = int16_t(b > weightMax ? weightMax
                                 : (b < weightMin ? weightMin : b));
    for (uint32_t i = 0; i < histLen; ++i) {
        int h = ((history >> i) & 1) ? 1 : -1;
        int32_t v = w[i + 1] + t * h;
        w[i + 1] = int16_t(v > weightMax ? weightMax
                                         : (v < weightMin ? weightMin
                                                          : v));
    }
}

} // namespace kilo::pred
