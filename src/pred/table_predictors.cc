#include "src/pred/table_predictors.hh"

#include "src/util/logging.hh"

namespace kilo::pred
{

BimodalPredictor::BimodalPredictor(uint32_t num_entries)
    : entries(num_entries), histBits(0),
      counters(num_entries, 2) // weakly taken
{
    KILO_ASSERT(entries && !(entries & (entries - 1)),
                "predictor table size must be a power of two");
}

uint32_t
BimodalPredictor::index(uint64_t pc, uint64_t history) const
{
    uint64_t v = pc >> 2;
    if (histBits)
        v ^= history & ((uint64_t(1) << histBits) - 1);
    return uint32_t(v & (entries - 1));
}

bool
BimodalPredictor::lookup(uint64_t pc, uint64_t history)
{
    return counters[index(pc, history)] >= 2;
}

void
BimodalPredictor::train(uint64_t pc, uint64_t history, bool taken)
{
    uint8_t &ctr = counters[index(pc, history)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

GsharePredictor::GsharePredictor(uint32_t num_entries,
                                 uint32_t history_bits)
    : BimodalPredictor(num_entries)
{
    histBits = history_bits;
}

} // namespace kilo::pred
