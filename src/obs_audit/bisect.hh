/**
 * @file
 * KILOAUD first-divergence bisection (the kilodiff engine).
 *
 * src/obs/audit.hh answers "which interval diverged first"; this
 * module answers "which cycle". Given two run specifications and
 * their recorded KILOAUD streams, bisect():
 *
 *   1. finds the first divergent record index k (obs::firstDivergence);
 *   2. replays both runs to the last agreeing boundary (record k-1),
 *      verifying en route that the live audit prefix matches the
 *      input streams (else the streams are not from these specs);
 *   3. takes a Session::checkpoint() of each run there, then binary
 *      searches the cycle range (lastAgree.cycle, firstDiverge.cycle]
 *      by restore + step-to-cycle + Session::stateDigest(), narrowing
 *      to the first cycle whose execution changed the digest;
 *   4. optionally re-replays a window around that cycle with an
 *      obs::Timeline attached and dumps Konata + Chrome-trace views
 *      of both runs for eyeball diffing.
 *
 * The search assumes divergence is persistent — once the two state
 * trajectories split they never re-converge bit-exactly within the
 * interval. A hash collision or a self-healing divergence violates
 * the P(lo)=agree / P(hi)=disagree invariant; both endpoints are
 * verified and a violation throws obs::AuditError rather than
 * reporting a wrong cycle.
 *
 * Sits above src/sim (drives whole Sessions) like src/sample and
 * src/shard: declared `obs_audit: ckpt mem obs sim` in
 * src/lint/layers.
 */

#pragma once

#include <cstdint>
#include <string>

#include "src/obs/audit.hh"
#include "src/sim/config.hh"
#include "src/sim/simulator.hh"

namespace kilo::obs_audit
{

/** Everything needed to (re)construct one auditable run. */
struct RunSpec
{
    std::string machine;   ///< sim::MachineConfig::byName
    std::string workload;  ///< preset or "trace:<path>"
    std::string mem;       ///< mem::MemConfig::byName
    sim::RunConfig rc;     ///< must carry auditIntervalInsts != 0
};

/** Run @p spec to completion and return its live KILOAUD stream. */
obs::AuditStream recordRun(const RunSpec &spec);

/** Outcome of a bisection. */
struct BisectResult
{
    bool diverged = false;

    /** First divergent record index (obs::firstDivergence). */
    long record = -1;

    /**
     * First divergent cycle: the absolute cycle whose execution first
     * made the two state digests differ (its boundary state still
     * agrees; the state one cycle later does not).
     */
    uint64_t firstDivergentCycle = 0;

    /** State digests one cycle past the divergence. @{ */
    uint64_t digestA = 0;
    uint64_t digestB = 0;
    /** @} */

    /** Timeline dump paths (empty when no dumpPrefix given). @{ */
    std::string konataA, konataB;
    std::string chromeA, chromeB;
    /** @} */
};

/**
 * Narrow the first divergence between @p a and @p b (whose recorded
 * streams are @p sa / @p sb) to a cycle. When @p dump_prefix is
 * non-empty, writes `<prefix>_a.konata`, `<prefix>_b.konata`,
 * `<prefix>_a.json`, `<prefix>_b.json` covering the divergent cycle
 * plus @p margin_cycles of context. Throws obs::AuditError when the
 * streams do not match live replays of the specs, when the
 * divergence precedes the first audit boundary's checkpointable
 * window, or when the persistence assumption fails.
 */
BisectResult bisect(const RunSpec &a, const RunSpec &b,
                    const obs::AuditStream &sa,
                    const obs::AuditStream &sb,
                    const std::string &dump_prefix = "",
                    uint64_t margin_cycles = 200);

} // namespace kilo::obs_audit
