#include "src/obs_audit/bisect.hh"

#include <algorithm>
#include <fstream>
#include <memory>

#include "src/mem/hierarchy.hh"
#include "src/obs/export.hh"
#include "src/obs/timeline.hh"
#include "src/sim/session.hh"

namespace kilo::obs_audit
{

namespace
{

/** Event-ring capacity of a divergence-window timeline dump. */
constexpr size_t DumpTimelineCapacity = size_t(1) << 16;

std::unique_ptr<sim::Session>
makeSession(const RunSpec &spec)
{
    if (!spec.rc.auditIntervalInsts)
        throw obs::AuditError("bisection needs an auditing run "
                              "(RunConfig::auditIntervalInsts == 0)");
    return std::make_unique<sim::Session>(
        sim::MachineConfig::byName(spec.machine), spec.workload,
        mem::MemConfig::byName(spec.mem), spec.rc);
}

/** Advance @p s to the first pause at or past absolute cycle @p x. */
void
stepTo(sim::Session &s, uint64_t x)
{
    while (s.core().cycle() < x && !s.finished())
        s.step(x - s.core().cycle());
}

/**
 * Replay @p spec to the pause point of record @p upto (exclusive;
 * 0 replays just the warm-up) and verify the live audit prefix
 * matches @p recorded — the proof that the stream being bisected
 * really came from this spec.
 */
std::unique_ptr<sim::Session>
replayTo(const RunSpec &spec, const obs::AuditStream &recorded,
         size_t upto, const char *which)
{
    auto s = makeSession(spec);
    s->warmup();
    if (upto) {
        uint64_t target = recorded.records[upto - 1].insts;
        s->runFor(target - s->measuredCommitted());
    }
    const auto &live = s->auditRecords();
    if (live.size() < upto)
        throw obs::AuditError(
            std::string("live replay of run ") + which +
            " produced fewer audit records than the input stream — "
            "the stream was not recorded from this configuration");
    for (size_t i = 0; i < upto; ++i) {
        const obs::AuditRecord &a = live[i];
        const obs::AuditRecord &b = recorded.records[i];
        if (a.insts != b.insts || a.cycle != b.cycle ||
            a.state != b.state || a.rolling != b.rolling)
            throw obs::AuditError(
                std::string("live replay of run ") + which +
                " diverges from its input stream at record " +
                std::to_string(i) +
                " — the stream was not recorded from this "
                "configuration (or the host is non-deterministic)");
    }
    return s;
}

void
writeText(const std::string &path, const std::string &text)
{
    std::ofstream f(path, std::ios::binary);
    f.write(text.data(), std::streamsize(text.size()));
    if (!f.good())
        throw obs::AuditError("dump write failed: " + path);
}

} // anonymous namespace

obs::AuditStream
recordRun(const RunSpec &spec)
{
    auto s = makeSession(spec);
    s->warmup();
    s->run();
    obs::AuditStream stream;
    stream.intervalInsts = spec.rc.auditIntervalInsts;
    stream.records = s->auditRecords();
    return stream;
}

BisectResult
bisect(const RunSpec &a, const RunSpec &b, const obs::AuditStream &sa,
       const obs::AuditStream &sb, const std::string &dump_prefix,
       uint64_t margin_cycles)
{
    BisectResult res;
    long k = obs::firstDivergence(sa, sb);
    if (k < 0)
        return res; // identical streams: nothing to narrow
    res.diverged = true;
    res.record = k;
    if (size_t(k) >= sa.records.size() ||
        size_t(k) >= sb.records.size())
        throw obs::AuditError(
            "streams diverge by length only (record " +
            std::to_string(k) +
            " exists in one stream but not the other); cycle "
            "bisection needs the divergent record in both");

    // Phase 2: replay both runs to the last agreeing boundary. The
    // replay target is exact — it is the recorded pause point of an
    // identical tick sequence — and the prefix check inside
    // replayTo() proves it.
    auto sessA = replayTo(a, sa, size_t(k), "A");
    auto sessB = replayTo(b, sb, size_t(k), "B");
    ckpt::Checkpoint ckA = sessA->checkpoint();
    ckpt::Checkpoint ckB = sessB->checkpoint();

    uint64_t lo = std::max(sessA->core().cycle(),
                           sessB->core().cycle());
    if (sessA->core().cycle() != sessB->core().cycle() ||
        sessA->stateDigest() != sessB->stateDigest())
        throw obs::AuditError(
            "state already differs at the last agreeing audit "
            "boundary (record " + std::to_string(k - 1) +
            ") — divergence precedes the bisection window");
    uint64_t hi = std::max(sa.records[size_t(k)].cycle,
                           sb.records[size_t(k)].cycle) + 1;

    // P(x): do the two runs still agree after pausing at cycle x?
    // Restore-from-checkpoint each probe so earlier probes cannot
    // contaminate later ones.
    auto differsAt = [&](uint64_t x, uint64_t *da, uint64_t *db) {
        sessA->restore(ckA);
        sessB->restore(ckB);
        stepTo(*sessA, x);
        stepTo(*sessB, x);
        uint64_t ha = sessA->stateDigest();
        uint64_t hb = sessB->stateDigest();
        if (da)
            *da = ha;
        if (db)
            *db = hb;
        return ha != hb ||
               sessA->core().cycle() != sessB->core().cycle();
    };

    if (differsAt(lo, nullptr, nullptr))
        throw obs::AuditError(
            "bisection invariant broken: runs disagree at the "
            "agreeing boundary cycle after restore");
    if (!differsAt(hi, nullptr, nullptr))
        throw obs::AuditError(
            "bisection invariant broken: runs agree at the divergent "
            "record's cycle — the divergence is not persistent "
            "within the interval (transient or hash collision)");

    // Invariant: agree at lo, disagree at hi. Narrow to adjacent.
    while (hi - lo > 1) {
        uint64_t mid = lo + (hi - lo) / 2;
        if (differsAt(mid, nullptr, nullptr))
            hi = mid;
        else
            lo = mid;
    }
    // States agree when paused at cycle lo == hi-1 and differ when
    // paused at hi: executing cycle hi-1 introduced the divergence.
    res.firstDivergentCycle = hi - 1;
    differsAt(hi, &res.digestA, &res.digestB);

    if (!dump_prefix.empty()) {
        auto dump = [&](sim::Session &s, const ckpt::Checkpoint &ck,
                        const char *suffix, std::string *konata,
                        std::string *chrome) {
            s.restore(ck);
            // Attach at the restore point, not at the divergent
            // cycle: the exporters can only render instructions
            // whose fetch they saw, and everything in flight near
            // the divergence was fetched earlier in the interval.
            obs::Timeline tl(DumpTimelineCapacity);
            s.core().attachTimeline(&tl);
            stepTo(s, res.firstDivergentCycle + margin_cycles);
            s.core().attachTimeline(nullptr);
            *konata = dump_prefix + "_" + suffix + ".konata";
            *chrome = dump_prefix + "_" + suffix + ".json";
            writeText(*konata, obs::konataText(tl));
            writeText(*chrome, obs::chromeTraceJson(tl));
        };
        dump(*sessA, ckA, "a", &res.konataA, &res.chromeA);
        dump(*sessB, ckB, "b", &res.konataB, &res.chromeB);
    }
    return res;
}

} // namespace kilo::obs_audit
