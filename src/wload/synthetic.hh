/**
 * @file
 * The synthetic kernel generator: turns a WorkloadProfile into an
 * endless, deterministic micro-op stream.
 *
 * Each "iteration" emits a fixed template of micro-ops (induction
 * update, chase loads, stream loads, random loads, dependent and
 * independent compute, an occasional store and divide, conditional
 * branches, loop-back branch). Program counters are stable per
 * template slot so branch predictors see a real static branch set.
 */

#pragma once

#include <deque>
#include <vector>

#include "src/util/rng.hh"
#include "src/wload/profile.hh"
#include "src/wload/workload.hh"

namespace kilo::wload
{

/** Workload generator driven by a WorkloadProfile. */
class SyntheticWorkload : public Workload
{
  public:
    explicit SyntheticWorkload(const WorkloadProfile &profile);

    isa::MicroOp next() override;
    size_t nextBlock(isa::MicroOp *out, size_t n) override;
    const std::string &name() const override { return prof.name; }
    bool isFp() const override { return prof.fp; }
    void reset() override;
    std::vector<AddressRegion> regions() const override;

    /** Profile in use. */
    const WorkloadProfile &profile() const { return prof; }

    /** Number of micro-ops in one full iteration template. */
    int opsPerIteration() const { return slotsPerIter; }

  private:
    void emitIteration();
    uint64_t storeRegionBytes() const;
    uint64_t slotPc(int slot) const;
    int16_t nextLoadReg();
    int16_t nextComputeReg();
    void emitDepCompute(int16_t loaded_reg, int &slot);
    void buildChaseChain();

    WorkloadProfile prof;
    Rng rng;
    std::deque<isa::MicroOp> pending;

    /** Pointer-chase permutation (node index -> next node index). */
    std::vector<uint32_t> chain;
    uint32_t chaseNode = 0;
    int chaseSteps = 0;   ///< steps taken in the current chain

    std::vector<uint64_t> streamPos;
    uint64_t storePos = 0;
    uint64_t iter = 0;
    int loadRegIdx = 0;
    int computeRegIdx = 0;
    int indepRegIdx = 0;
    int16_t newestLoadReg;
    int slotsPerIter = 0;

    /** Address-space bases for the regions. @{ */
    static constexpr uint64_t chaseBase = 0x10000000ull;
    static constexpr uint64_t streamBase = 0x40000000ull;
    static constexpr uint64_t streamSpacing = 0x04000000ull;
    static constexpr uint64_t randBase = 0x80000000ull;
    static constexpr uint64_t storeBase = 0xc0000000ull;
    static constexpr uint64_t farBase = 0x100000000ull;
    static constexpr uint64_t kernelPcBase = 0x10000ull;
    /** @} */
};

/** Construct the generator for a named benchmark. */
WorkloadPtr makeWorkload(const std::string &name);

/** Construct a generator from an explicit profile. */
WorkloadPtr makeWorkload(const WorkloadProfile &profile);

} // namespace kilo::wload

