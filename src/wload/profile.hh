/**
 * @file
 * Parameter block describing one synthetic benchmark.
 *
 * A profile fixes everything that determines a benchmark's execution
 * locality: footprint and access pattern of each memory region, the
 * amount of computation hung off each load, and how branches couple to
 * loaded data. The 26 presets in profiles.cc model the SPEC CPU2000
 * suite the paper evaluates.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kilo::wload
{

/** Knobs of the synthetic kernel generator. */
struct WorkloadProfile
{
    std::string name = "synthetic";
    bool fp = false;            ///< FP suite member (FP compute/regs)
    uint64_t seed = 1;

    /**
     * Streaming region: numStreams arrays of streamBytes each, walked
     * sequentially with streamStride; streamLoads loads per iteration
     * are issued round-robin over the streams. Independent misses —
     * this is the paper's "many independent instructions under the
     * shadow of a miss" source of MLP.
     * @{
     */
    int streamLoads = 0;
    int numStreams = 1;
    uint64_t streamBytes = 1 << 20;
    uint32_t streamStride = 64;
    /** @} */

    /**
     * Pointer-chase region: a random cyclic permutation of
     * chaseBytes/64 nodes; each chase load's address depends on the
     * previous chase load's value. Serial misses — nothing hides
     * them, the SpecINT pathology.
     * @{
     */
    int chaseLoads = 0;
    uint64_t chaseBytes = 0;
    int chaseEvery = 1;         ///< perform the chase every N iters
    /**
     * Chase steps before the chain restarts at an independent node
     * (a new list traversal). Finite chains bound the serial-miss
     * depth and let independent traversals overlap in a large
     * window, as real list-walking codes do.
     */
    int chaseChainLen = 4;
    /** @} */

    /** Random-access region (hash/table lookups). @{ */
    int randLoads = 0;
    uint64_t randBytes = 0;
    /**
     * Indirect gathers a[b[i]]: pairs of dependent random loads.
     * Each pair is a two-miss chain (the paper's ~800-cycle issue
     * group), but pairs are independent of each other, so a large
     * window still overlaps them.
     */
    int indirectLoads = 0;
    /** @} */

    /**
     * Sparse far misses: one load from a region far larger than any
     * L2 every farEvery iterations. This dials the benchmark's
     * off-chip MPKI directly (most SPECint members sit at a few
     * misses per kilo-instruction with a 512KB L2).
     * @{
     */
    int farEvery = 0;           ///< 0 = no far misses
    uint64_t farBytes = 32 * 1024 * 1024;
    /** @} */

    /** Computation. @{ */
    int depComputePerLoad = 1;  ///< ops chained on each loaded value
    int indepCompute = 2;       ///< independent ALU/FP ops per iter
    int fpDivEvery = 0;         ///< 1 FP divide every N iters (0=off)
    int storeEvery = 4;         ///< 1 store every N iters (0=never)
    /** @} */

    /**
     * Branch behaviour. Each iteration emits condBranches conditional
     * branches plus one loop-back branch. A conditional branch's
     * outcome is random (Bernoulli takenBias) with probability
     * branchRandFrac and otherwise follows a short learnable pattern.
     * When branchOnLoad is set, conditional branches source the
     * newest loaded register — a mispredicted one that consumed
     * uncached data resolves only when memory returns, the paper's
     * worst case.
     * @{
     */
    int condBranches = 1;
    double branchRandFrac = 0.10;
    double takenBias = 0.5;
    bool branchOnLoad = true;
    /**
     * Fraction of conditional branches that source the newest loaded
     * value (the rest source high-locality compute registers and
     * resolve quickly in the CP). Only meaningful with branchOnLoad.
     */
    double branchOnLoadFrac = 0.5;
    uint32_t innerLoopLen = 64;
    /** @} */
};

/** The 12 SpecINT-like profiles, in the paper's Figure 13 order. */
std::vector<WorkloadProfile> intProfiles();

/** The 14 SpecFP-like profiles, in the paper's Figure 14 order. */
std::vector<WorkloadProfile> fpProfiles();

/** Profile by benchmark name; fatal on unknown names. */
WorkloadProfile profileByName(const std::string &name);

/** All 26 profiles (INT then FP). */
std::vector<WorkloadProfile> allProfiles();

} // namespace kilo::wload

