#include "src/wload/trace_window.hh"

#include "src/util/logging.hh"

namespace kilo::wload
{

TraceWindow::TraceWindow(Workload &wl)
    : workload(wl)
{}

const isa::MicroOp &
TraceWindow::op(uint64_t seq)
{
    KILO_ASSERT(seq >= baseSeq,
                "TraceWindow: sequence %lu already released (base %lu)",
                (unsigned long)seq, (unsigned long)baseSeq);
    while (seq >= frontier()) {
        // Batched refill: one virtual call per RefillBatch ops. The
        // overshoot past `seq` is just read-ahead of a deterministic
        // stream — replay and capture both see identical ops.
        isa::MicroOp batch[RefillBatch];
        size_t got = workload.nextBlock(batch, RefillBatch);
        KILO_ASSERT(got > 0, "TraceWindow: workload produced no ops");
        for (size_t i = 0; i < got; ++i)
            buf.push_back(batch[i]);
    }
    return buf[size_t(seq - baseSeq)];
}

void
TraceWindow::release(uint64_t seq)
{
    while (baseSeq < seq && !buf.empty()) {
        buf.pop_front();
        ++baseSeq;
    }
}

void
TraceWindow::jumpTo(uint64_t seq)
{
    KILO_ASSERT(seq >= baseSeq,
                "TraceWindow: cannot jump to released sequence %lu "
                "(base %lu)",
                (unsigned long)seq, (unsigned long)baseSeq);
    if (seq <= frontier()) {
        release(seq);
        return;
    }
    // Past the read-ahead: drop the buffer and let the workload leap
    // the gap without materialising the skipped ops.
    uint64_t gap = seq - frontier();
    buf.clear();
    workload.skip(gap);
    baseSeq = seq;
}

} // namespace kilo::wload
