#include "src/wload/trace_window.hh"

#include "src/util/logging.hh"

namespace kilo::wload
{

TraceWindow::TraceWindow(Workload &workload)
    : workload(workload)
{}

const isa::MicroOp &
TraceWindow::op(uint64_t seq)
{
    KILO_ASSERT(seq >= baseSeq,
                "TraceWindow: sequence %lu already released (base %lu)",
                (unsigned long)seq, (unsigned long)baseSeq);
    while (seq >= frontier())
        buf.push_back(workload.next());
    return buf[size_t(seq - baseSeq)];
}

void
TraceWindow::release(uint64_t seq)
{
    while (baseSeq < seq && !buf.empty()) {
        buf.pop_front();
        ++baseSeq;
    }
}

} // namespace kilo::wload
