/**
 * @file
 * Rewindable window over a workload's instruction stream.
 *
 * The cores model branch misprediction as squash-and-replay: fetch
 * runs ahead down the (correct-path) trace, and when a branch resolves
 * wrong everything younger is squashed and re-fetched. The window
 * therefore buffers every micro-op from the oldest in-flight
 * instruction to the youngest fetched one so that re-fetch replays
 * identical micro-ops.
 */

#pragma once

#include <cstdint>

#include "src/isa/micro_op.hh"
#include "src/util/logging.hh"
#include "src/util/ring_deque.hh"
#include "src/wload/workload.hh"

namespace kilo::wload
{

/** Buffered, seekable view of a Workload keyed by dynamic sequence. */
class TraceWindow
{
  public:
    /** Micro-ops pulled from the workload per refill: the window is
     *  the core's one consumer of the stream, so steady-state fetch
     *  costs one virtual nextBlock() call per this many ops. */
    static constexpr size_t RefillBatch = 64;

    explicit TraceWindow(Workload &workload);

    /**
     * Micro-op with dynamic sequence number @p seq.
     * Generates forward on demand (in RefillBatch-op batches);
     * @p seq must be >= the release point.
     */
    const isa::MicroOp &op(uint64_t seq);

    /** Mark every op with sequence < @p seq as retired/reclaimable. */
    void release(uint64_t seq);

    /** Oldest sequence number still buffered. */
    uint64_t base() const { return baseSeq; }

    /** One past the youngest generated sequence number. */
    uint64_t frontier() const { return baseSeq + buf.size(); }

    /**
     * Reposition the window so the next op() serves @p seq, skipping
     * the underlying workload forward without buffering the ops in
     * between (functional fast-forward). @p seq must be >= base();
     * jumping backwards within the buffer just releases.
     */
    void jumpTo(uint64_t seq);

    /**
     * Serialize / restore the window position. Buffered ops are NOT
     * stored: the stream is deterministic, so load() repositions the
     * workload (reset + skip) and re-pulls the buffered span —
     * byte-for-byte the ops the saved window held. @{
     */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        s.template scalar<uint64_t>(baseSeq);
        s.template scalar<uint64_t>(buf.size());
    }

    template <typename Source>
    void
    load(Source &s)
    {
        uint64_t base = s.template scalar<uint64_t>();
        uint64_t count = s.template scalar<uint64_t>();
        buf.clear();
        baseSeq = base;
        workload.reset();
        workload.skip(base);
        // Re-pull EXACTLY count ops — not op()'s batch-rounded
        // refill, whose read-ahead overshoot depends on how the live
        // window's pulls happened to align. The frontier is part of
        // the serialized state, so a restore must land on the same
        // one or re-checkpointing (and the audit plane's state
        // digests) would differ from the run it resumed.
        isa::MicroOp batch[RefillBatch];
        for (uint64_t need = count; need;) {
            size_t want = need < RefillBatch ? size_t(need)
                                             : RefillBatch;
            size_t got = workload.nextBlock(batch, want);
            KILO_ASSERT(got > 0 && got <= want,
                        "TraceWindow: workload under-ran its own "
                        "checkpointed span");
            for (size_t i = 0; i < got; ++i)
                buf.push_back(batch[i]);
            need -= got;
        }
    }
    /** @} */

  private:
    Workload &workload;
    RingDeque<isa::MicroOp> buf;
    uint64_t baseSeq = 0;
};

} // namespace kilo::wload

