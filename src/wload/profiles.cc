/**
 * @file
 * Per-benchmark parameterisations of the synthetic generator.
 *
 * Each profile models the execution-locality-relevant behaviour of its
 * SPEC CPU2000 namesake:
 *   - footprint vs. the 512KB default L2 fixes the L2 hit rate, and
 *     farEvery dials the residual off-chip MPKI;
 *   - streaming regions give independent misses (MLP), chase regions
 *     give serial miss chains, random regions sit in between;
 *   - branchRandFrac / branchOnLoadFrac fix how often a
 *     hard-to-predict branch consumes uncached data (the SpecINT
 *     pathology of section 2 of the paper).
 *
 * The parameters are calibrated so the suite-level IPC relations of
 * the paper's figures reproduce; see EXPERIMENTS.md for the
 * calibration results.
 */

#include "src/wload/profile.hh"

#include "src/util/logging.hh"

namespace kilo::wload
{

namespace
{

constexpr uint64_t KiB = 1024;
constexpr uint64_t MiB = 1024 * 1024;

WorkloadProfile
baseInt(const std::string &name, uint64_t seed)
{
    WorkloadProfile p;
    p.name = name;
    p.fp = false;
    p.seed = seed;
    p.depComputePerLoad = 1;
    p.indepCompute = 3;
    p.innerLoopLen = 64;
    p.branchOnLoad = true;
    p.branchOnLoadFrac = 0.5;
    return p;
}

WorkloadProfile
baseFp(const std::string &name, uint64_t seed)
{
    WorkloadProfile p;
    p.name = name;
    p.fp = true;
    p.seed = seed;
    p.depComputePerLoad = 1;
    p.indepCompute = 5;
    p.innerLoopLen = 128;
    p.branchOnLoad = false;
    p.branchRandFrac = 0.02;
    p.storeEvery = 4;
    return p;
}

} // anonymous namespace

std::vector<WorkloadProfile>
intProfiles()
{
    std::vector<WorkloadProfile> v;

    { // bzip2: block-sorting compressor; resident streams plus
      // moderate far misses, data-dependent branches on bytes.
        auto p = baseInt("bzip2", 101);
        p.streamLoads = 2; p.numStreams = 2;
        p.streamBytes = 160 * KiB; p.streamStride = 8;
        p.farEvery = 36;
        p.condBranches = 1; p.branchRandFrac = 0.14; p.takenBias = 0.6;
        p.branchOnLoadFrac = 0.55;
        p.storeEvery = 3;
        v.push_back(p);
    }
    { // crafty: chess; resident hash probes, compute heavy, rare
      // misses, fairly predictable.
        auto p = baseInt("crafty", 102);
        p.streamLoads = 1; p.numStreams = 1;
        p.streamBytes = 96 * KiB; p.streamStride = 8;
        p.randLoads = 2; p.randBytes = 256 * KiB;
        p.farEvery = 64;
        p.condBranches = 2; p.branchRandFrac = 0.08;
        p.branchOnLoadFrac = 0.3;
        p.indepCompute = 4; p.storeEvery = 6;
        v.push_back(p);
    }
    { // eon: C++ ray tracer; small footprint, high ILP, almost no
      // off-chip traffic.
        auto p = baseInt("eon", 103);
        p.streamLoads = 2; p.numStreams = 2;
        p.streamBytes = 96 * KiB; p.streamStride = 8;
        p.randLoads = 1; p.randBytes = 64 * KiB;
        p.farEvery = 150;
        p.condBranches = 1; p.branchRandFrac = 0.04;
        p.branchOnLoadFrac = 0.2;
        p.depComputePerLoad = 2; p.indepCompute = 5; p.storeEvery = 3;
        v.push_back(p);
    }
    { // gap: group theory; workspace scans with periodic far misses.
        auto p = baseInt("gap", 104);
        p.streamLoads = 2; p.numStreams = 2;
        p.streamBytes = 256 * KiB; p.streamStride = 16;
        p.farEvery = 64;
        p.condBranches = 1; p.branchRandFrac = 0.05;
        p.branchOnLoadFrac = 0.35;
        p.storeEvery = 4;
        v.push_back(p);
    }
    { // gcc: compiler; resident IR tables plus pointer-heavy misses
      // and moderately hard branches.
        auto p = baseInt("gcc", 105);
        p.randLoads = 2; p.randBytes = 352 * KiB;
        p.farEvery = 32;
        p.condBranches = 2; p.branchRandFrac = 0.10;
        p.branchOnLoadFrac = 0.5;
        p.storeEvery = 4;
        v.push_back(p);
    }
    { // gzip: LZ77; resident window, data-dependent match branches,
      // few misses.
        auto p = baseInt("gzip", 106);
        p.streamLoads = 2; p.numStreams = 2;
        p.streamBytes = 192 * KiB; p.streamStride = 8;
        p.farEvery = 40;
        p.condBranches = 1; p.branchRandFrac = 0.13; p.takenBias = 0.55;
        p.branchOnLoadFrac = 0.5;
        p.storeEvery = 3;
        v.push_back(p);
    }
    { // mcf: network simplex; the pointer-chasing pathology with
      // mispredictions that consume uncached data.
        auto p = baseInt("mcf", 107);
        p.chaseLoads = 1; p.chaseBytes = 2 * MiB; p.chaseEvery = 2;
        p.chaseChainLen = 48;
        p.randLoads = 1; p.randBytes = 256 * KiB;
        p.condBranches = 1; p.branchRandFrac = 0.22;
        p.branchOnLoadFrac = 0.7;
        p.indepCompute = 3; p.storeEvery = 8;
        v.push_back(p);
    }
    { // parser: dictionary lookups + short linked-list walks.
        auto p = baseInt("parser", 108);
        p.chaseLoads = 1; p.chaseBytes = 512 * KiB; p.chaseEvery = 4;
        p.chaseChainLen = 24;
        p.randLoads = 1; p.randBytes = 192 * KiB;
        p.indepCompute = 4;
        p.condBranches = 2; p.branchRandFrac = 0.08;
        p.branchOnLoadFrac = 0.4;
        v.push_back(p);
    }
    { // perlbmk: interpreter; resident hashes, rare misses, mildly
      // hard indirect-style branches.
        auto p = baseInt("perlbmk", 109);
        p.randLoads = 2; p.randBytes = 320 * KiB;
        p.farEvery = 48;
        p.condBranches = 2; p.branchRandFrac = 0.05;
        p.branchOnLoadFrac = 0.3;
        p.indepCompute = 4; p.storeEvery = 5;
        v.push_back(p);
    }
    { // twolf: place&route; linked structures + random probes.
        auto p = baseInt("twolf", 110);
        p.chaseLoads = 1; p.chaseBytes = 448 * KiB; p.chaseEvery = 4;
        p.chaseChainLen = 24;
        p.randLoads = 1; p.randBytes = 192 * KiB;
        p.indepCompute = 4;
        p.condBranches = 1; p.branchRandFrac = 0.09;
        p.branchOnLoadFrac = 0.45;
        v.push_back(p);
    }
    { // vortex: OO database; resident object heap with sparse cold
      // misses, predictable control.
        auto p = baseInt("vortex", 111);
        p.randLoads = 2; p.randBytes = 384 * KiB;
        p.farEvery = 64;
        p.condBranches = 1; p.branchRandFrac = 0.05;
        p.branchOnLoadFrac = 0.3;
        p.indepCompute = 4; p.storeEvery = 3;
        v.push_back(p);
    }
    { // vpr: FPGA place&route; netlist chasing + RNG-driven moves.
        auto p = baseInt("vpr", 112);
        p.chaseLoads = 1; p.chaseBytes = 448 * KiB; p.chaseEvery = 4;
        p.chaseChainLen = 24;
        p.randLoads = 1; p.randBytes = 160 * KiB;
        p.indepCompute = 4;
        p.condBranches = 1; p.branchRandFrac = 0.08;
        p.branchOnLoadFrac = 0.45;
        v.push_back(p);
    }

    return v;
}

std::vector<WorkloadProfile>
fpProfiles()
{
    std::vector<WorkloadProfile> v;

    { // ammp: molecular dynamics with pointer-linked atom lists —
      // the FP benchmark with chase behaviour.
        auto p = baseFp("ammp", 201);
        p.chaseLoads = 1; p.chaseBytes = 1 * MiB; p.chaseEvery = 8;
        p.chaseChainLen = 2;
        p.streamLoads = 1; p.numStreams = 1;
        p.streamBytes = 256 * KiB; p.streamStride = 8;
        p.indepCompute = 5;
        v.push_back(p);
    }
    { // applu: SSOR solver; several big streams, deeper FP chains.
        auto p = baseFp("applu", 202);
        p.streamLoads = 3; p.numStreams = 3;
        p.streamBytes = 6 * MiB; p.streamStride = 16;
        p.depComputePerLoad = 2; p.indepCompute = 4; p.storeEvery = 2;
        v.push_back(p);
    }
    { // apsi: pollution model; mid-size streams, partly resident.
        auto p = baseFp("apsi", 203);
        p.streamLoads = 3; p.numStreams = 3;
        p.streamBytes = 144 * KiB; p.streamStride = 8;
        p.farEvery = 20;
        p.depComputePerLoad = 2;
        p.storeEvery = 3;
        v.push_back(p);
    }
    { // art: neural net scans; every access off-chip.
        auto p = baseFp("art", 204);
        p.streamLoads = 2; p.numStreams = 2;
        p.streamBytes = 3 * MiB; p.streamStride = 64;
        p.indepCompute = 3;
        p.branchRandFrac = 0.03; p.storeEvery = 6;
        v.push_back(p);
    }
    { // equake: sparse matrix-vector; indexed gathers over a region
      // bigger than the L2.
        auto p = baseFp("equake", 205);
        p.randLoads = 1; p.randBytes = 768 * KiB;
        p.indirectLoads = 1;
        p.depComputePerLoad = 2;
        p.streamLoads = 1; p.numStreams = 1;
        p.streamBytes = 512 * KiB; p.streamStride = 8;
        p.indepCompute = 4;
        v.push_back(p);
    }
    { // facerec: image correlation; two big streams.
        auto p = baseFp("facerec", 206);
        p.streamLoads = 2; p.numStreams = 2;
        p.streamBytes = 192 * KiB; p.streamStride = 8;
        p.farEvery = 28;
        p.depComputePerLoad = 2;
        v.push_back(p);
    }
    { // fma3d: crash simulation; element streams.
        auto p = baseFp("fma3d", 207);
        p.streamLoads = 3; p.numStreams = 3;
        p.streamBytes = 144 * KiB; p.streamStride = 8;
        p.farEvery = 24;
        p.depComputePerLoad = 2;
        p.indepCompute = 4; p.branchRandFrac = 0.03; p.storeEvery = 3;
        v.push_back(p);
    }
    { // galgel: fluid dynamics; blocked — mostly cache resident.
        auto p = baseFp("galgel", 208);
        p.streamLoads = 2; p.numStreams = 2;
        p.streamBytes = 160 * KiB; p.streamStride = 8;
        p.farEvery = 80;
        p.depComputePerLoad = 2; p.indepCompute = 5;
        p.branchRandFrac = 0.01;
        v.push_back(p);
    }
    { // lucas: FFT-based primality; huge power-of-two strides.
        auto p = baseFp("lucas", 209);
        p.streamLoads = 2; p.numStreams = 2;
        p.streamBytes = 6 * MiB; p.streamStride = 64;
        p.indepCompute = 4; p.branchRandFrac = 0.01;
        v.push_back(p);
    }
    { // mesa: software GL; small footprint, high ILP.
        auto p = baseFp("mesa", 210);
        p.streamLoads = 1; p.numStreams = 1;
        p.streamBytes = 224 * KiB; p.streamStride = 8;
        p.farEvery = 120;
        p.indepCompute = 6; p.branchRandFrac = 0.015; p.storeEvery = 3;
        v.push_back(p);
    }
    { // mgrid: multigrid; 3 streams over big grids.
        auto p = baseFp("mgrid", 211);
        p.streamLoads = 3; p.numStreams = 3;
        p.streamBytes = 4 * MiB; p.streamStride = 16;
        p.depComputePerLoad = 2; p.indepCompute = 4;
        p.branchRandFrac = 0.005; p.storeEvery = 3;
        v.push_back(p);
    }
    { // sixtrack: particle tracking; tiny footprint, divides.
        auto p = baseFp("sixtrack", 212);
        p.streamLoads = 1; p.numStreams = 1;
        p.streamBytes = 160 * KiB; p.streamStride = 8;
        p.depComputePerLoad = 2; p.indepCompute = 6;
        p.branchRandFrac = 0.01; p.fpDivEvery = 24;
        v.push_back(p);
    }
    { // swim: shallow water; the classic streaming memory hog.
        auto p = baseFp("swim", 213);
        p.streamLoads = 4; p.numStreams = 4;
        p.streamBytes = 6 * MiB; p.streamStride = 64;
        p.indepCompute = 3; p.branchRandFrac = 0.005; p.storeEvery = 2;
        v.push_back(p);
    }
    { // wupwise: lattice QCD; streams + dense FP compute.
        auto p = baseFp("wupwise", 214);
        p.streamLoads = 2; p.numStreams = 2;
        p.streamBytes = 192 * KiB; p.streamStride = 8;
        p.farEvery = 30;
        p.depComputePerLoad = 2;
        p.fpDivEvery = 32;
        v.push_back(p);
    }

    return v;
}

WorkloadProfile
profileByName(const std::string &name)
{
    for (const auto &p : intProfiles())
        if (p.name == name)
            return p;
    for (const auto &p : fpProfiles())
        if (p.name == name)
            return p;
    KILO_FATAL("unknown benchmark '%s'", name.c_str());
}

std::vector<WorkloadProfile>
allProfiles()
{
    auto v = intProfiles();
    auto f = fpProfiles();
    v.insert(v.end(), f.begin(), f.end());
    return v;
}

} // namespace kilo::wload
