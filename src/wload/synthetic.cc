#include "src/wload/synthetic.hh"

#include <algorithm>
#include <utility>

#include "src/util/logging.hh"

namespace kilo::wload
{

namespace
{

/** Rotating register pools; see DESIGN.md section 5. */
constexpr int16_t ChaseReg = 1;
constexpr int16_t InductionReg = 4;
constexpr int16_t LoadRegBase = 8;     ///< r8..r15 (or f8..f15)
constexpr int16_t LoadRegCount = 8;
constexpr int16_t DepRegBase = 16;     ///< pool A: r16..r19
constexpr int16_t DepRegCount = 4;
constexpr int16_t IndepRegBase = 20;   ///< pool B: r20..r27
constexpr int16_t IndepRegCount = 8;

} // anonymous namespace

SyntheticWorkload::SyntheticWorkload(const WorkloadProfile &profile)
    : prof(profile), rng(profile.seed), newestLoadReg(DepRegBase)
{
    KILO_ASSERT(prof.streamLoads == 0 || prof.numStreams > 0,
                "stream loads require at least one stream");
    KILO_ASSERT(prof.chaseLoads == 0 || prof.chaseBytes >= 64 * 64,
                "chase region too small");
    KILO_ASSERT(prof.randLoads == 0 || prof.randBytes >= 64,
                "random region too small");

    buildChaseChain();
    streamPos.assign(size_t(std::max(prof.numStreams, 1)), 0);

    int loads = prof.chaseLoads + prof.streamLoads + prof.randLoads +
        (prof.farEvery > 0 ? 1 : 0);
    slotsPerIter = 1                                      // induction
        + loads * (1 + prof.depComputePerLoad)            // loads+dep
        + prof.indirectLoads * (2 + prof.depComputePerLoad)
        + prof.indepCompute
        + (prof.fpDivEvery > 0 ? 1 : 0)
        + (prof.storeEvery > 0 ? 1 : 0)
        + prof.condBranches
        + 1;                                              // loop-back

    newestLoadReg = int16_t((prof.fp ? isa::FirstFpReg : 0) +
                            LoadRegBase);
}

void
SyntheticWorkload::buildChaseChain()
{
    if (prof.chaseLoads == 0)
        return;
    uint32_t nodes = uint32_t(prof.chaseBytes / 64);
    chain.resize(nodes);
    for (uint32_t i = 0; i < nodes; ++i)
        chain[i] = i;
    // Sattolo's algorithm: a single cycle covering every node, so the
    // traversal touches the whole region before repeating.
    Rng chain_rng(prof.seed * 0x9e37u + 0x7f4a7c15u);
    for (uint32_t i = nodes - 1; i > 0; --i) {
        uint32_t j = uint32_t(chain_rng.range(i));
        std::swap(chain[i], chain[j]);
    }
    chaseNode = 0;
}

uint64_t
SyntheticWorkload::storeRegionBytes() const
{
    // Streaming codes write output arrays commensurate with their
    // input streams; non-streaming codes write small result buffers.
    if (prof.streamLoads > 0)
        return std::max<uint64_t>(prof.streamBytes, 64 * 1024);
    return 64 * 1024;
}

uint64_t
SyntheticWorkload::slotPc(int slot) const
{
    return kernelPcBase + uint64_t(slot) * 4;
}

int16_t
SyntheticWorkload::nextLoadReg()
{
    int16_t base = int16_t((prof.fp ? isa::FirstFpReg : 0) +
                           LoadRegBase);
    int16_t reg = int16_t(base + loadRegIdx);
    loadRegIdx = (loadRegIdx + 1) % LoadRegCount;
    return reg;
}

int16_t
SyntheticWorkload::nextComputeReg()
{
    int16_t base = int16_t((prof.fp ? isa::FirstFpReg : 0) +
                           DepRegBase);
    int16_t reg = int16_t(base + computeRegIdx);
    computeRegIdx = (computeRegIdx + 1) % DepRegCount;
    return reg;
}

void
SyntheticWorkload::emitDepCompute(int16_t loaded_reg, int &slot)
{
    // Single-source chains: each op fully redefines its destination,
    // so a long-latency slice *ends* when its last member executes
    // (the paper's observation that short-latency redefinitions keep
    // clearing the LLBV; self-reading accumulators would instead mark
    // registers long-latency forever).
    int16_t src = loaded_reg;
    for (int d = 0; d < prof.depComputePerLoad; ++d) {
        int16_t dst = nextComputeReg();
        isa::MicroOp op;
        if (prof.fp) {
            op = (d % 2 == 0)
                ? isa::makeFpAdd(dst, src, isa::NoReg, slotPc(slot))
                : isa::makeFpMul(dst, src, isa::NoReg, slotPc(slot));
        } else {
            op = isa::makeAlu(dst, src, isa::NoReg, slotPc(slot));
        }
        pending.push_back(op);
        src = dst;
        ++slot;
    }
}

void
SyntheticWorkload::emitIteration()
{
    int slot = 0;
    const int16_t fp_base = prof.fp ? isa::FirstFpReg : 0;
    const int16_t indep_base = int16_t(fp_base + IndepRegBase);

    // 1. Induction variable update; all stream/random loads hang off
    //    this one-cycle chain, so fetch-ahead exposes their MLP.
    pending.push_back(isa::makeAlu(InductionReg, InductionReg,
                                   isa::NoReg, slotPc(slot)));
    ++slot;

    // 2. Pointer chase: serial dependent loads.
    bool do_chase = prof.chaseLoads > 0 &&
        (prof.chaseEvery <= 1 || iter % uint64_t(prof.chaseEvery) == 0);
    for (int c = 0; c < prof.chaseLoads; ++c) {
        if (do_chase) {
            uint64_t addr = chaseBase + uint64_t(chaseNode) * 64;
            bool restart = prof.chaseChainLen > 0 &&
                chaseSteps >= prof.chaseChainLen;
            if (restart) {
                // Start a fresh traversal at an independent node:
                // the load's address comes from the (ready) induction
                // register, so successive chains overlap in a large
                // window instead of forming one endless serial chain.
                uint32_t nodes = uint32_t(chain.size());
                chaseNode = uint32_t(rng.range(nodes));
                addr = chaseBase + uint64_t(chaseNode) * 64;
                pending.push_back(isa::makeLoad(
                    ChaseReg, InductionReg, addr, slotPc(slot)));
                chaseSteps = 0;
            } else {
                pending.push_back(isa::makeLoad(ChaseReg, ChaseReg,
                                                addr, slotPc(slot)));
                ++chaseSteps;
            }
            chaseNode = chain[chaseNode];
            ++slot;
            newestLoadReg = ChaseReg;
            emitDepCompute(ChaseReg, slot);
        } else {
            slot += 1 + prof.depComputePerLoad;
        }
    }

    // 3. Streaming loads, round-robin over the streams.
    for (int s = 0; s < prof.streamLoads; ++s) {
        int stream = prof.numStreams ? (s % prof.numStreams) : 0;
        uint64_t addr = streamBase +
            uint64_t(stream) * streamSpacing + streamPos[stream];
        streamPos[stream] =
            (streamPos[stream] + prof.streamStride) % prof.streamBytes;
        int16_t dst = nextLoadReg();
        pending.push_back(isa::makeLoad(dst, InductionReg, addr,
                                        slotPc(slot)));
        ++slot;
        newestLoadReg = dst;
        emitDepCompute(dst, slot);
    }

    // 4. Random-access loads.
    for (int r = 0; r < prof.randLoads; ++r) {
        uint64_t addr = randBase + (rng.range(prof.randBytes) & ~7ull);
        int16_t dst = nextLoadReg();
        pending.push_back(isa::makeLoad(dst, InductionReg, addr,
                                        slotPc(slot)));
        ++slot;
        newestLoadReg = dst;
        emitDepCompute(dst, slot);
    }

    // 4a. Indirect gathers: a[b[i]] pairs — independent two-deep
    //     miss chains.
    for (int g = 0; g < prof.indirectLoads; ++g) {
        uint64_t idx_addr =
            randBase + (rng.range(prof.randBytes) & ~7ull);
        int16_t idx_dst = nextLoadReg();
        pending.push_back(isa::makeLoad(idx_dst, InductionReg,
                                        idx_addr, slotPc(slot)));
        ++slot;
        uint64_t dat_addr =
            randBase + (rng.range(prof.randBytes) & ~7ull);
        int16_t dat_dst = nextLoadReg();
        pending.push_back(isa::makeLoad(dat_dst, idx_dst, dat_addr,
                                        slotPc(slot)));
        ++slot;
        newestLoadReg = dat_dst;
        emitDepCompute(dat_dst, slot);
    }

    // 4b. Sparse far miss: an independent access far outside any
    //     cacheable footprint.
    bool far_iter = false;
    if (prof.farEvery > 0) {
        if (iter % uint64_t(prof.farEvery) == 0) {
            far_iter = true;
            uint64_t addr =
                farBase + (rng.range(prof.farBytes) & ~7ull);
            int16_t dst = nextLoadReg();
            pending.push_back(isa::makeLoad(dst, InductionReg, addr,
                                            slotPc(slot)));
            newestLoadReg = dst;
            ++slot;
            emitDepCompute(dst, slot);
        } else {
            slot += 1 + prof.depComputePerLoad;
        }
    }

    // 5. Independent compute on pool B: eight self-recurrent
    //    accumulator chains, never touching loaded values, so this
    //    code keeps high execution locality and plenty of ILP.
    for (int i = 0; i < prof.indepCompute; ++i) {
        int16_t dst =
            int16_t(indep_base + (indepRegIdx % IndepRegCount));
        ++indepRegIdx;
        isa::MicroOp op;
        if (prof.fp) {
            op = (i % 2 == 0)
                ? isa::makeFpAdd(dst, dst, dst, slotPc(slot))
                : isa::makeFpMul(dst, dst, dst, slotPc(slot));
        } else {
            op = isa::makeAlu(dst, dst, dst, slotPc(slot));
        }
        pending.push_back(op);
        ++slot;
    }

    // 6. Occasional FP divide (unpipelined unit pressure).
    if (prof.fpDivEvery > 0) {
        if (iter % uint64_t(prof.fpDivEvery) == 0) {
            int16_t dst = int16_t(indep_base);
            pending.push_back(isa::makeFpDiv(dst, dst,
                                             int16_t(indep_base + 1),
                                             slotPc(slot)));
        }
        ++slot;
    }

    // 7. Occasional store to an output stream.
    if (prof.storeEvery > 0) {
        if (iter % uint64_t(prof.storeEvery) == 0) {
            uint64_t addr = storeBase + storePos;
            storePos = (storePos + 64) % storeRegionBytes();
            int16_t data = int16_t(fp_base + DepRegBase);
            pending.push_back(isa::makeStore(InductionReg, data, addr,
                                             slotPc(slot)));
        }
        ++slot;
    }

    // 8. Conditional branches. In far-miss iterations the branch
    //    consumes the missed value with elevated randomness — the
    //    paper's worst case, a misprediction that depends on uncached
    //    data and squashes the whole runahead window.
    for (int b = 0; b < prof.condBranches; ++b) {
        double rand_frac = prof.branchRandFrac;
        if (far_iter && b == 0 && prof.branchOnLoad)
            rand_frac = std::min(1.0, rand_frac * 2.5);
        bool taken;
        if (rng.chance(rand_frac)) {
            taken = rng.chance(prof.takenBias);
        } else {
            // Learnable short pattern: mostly taken with a periodic
            // not-taken pulse per static branch.
            taken = ((iter + uint64_t(b) * 5) % 16) != 0;
        }
        bool on_load = (far_iter && b == 0 && prof.branchOnLoad) ||
            (prof.branchOnLoad && rng.chance(prof.branchOnLoadFrac));
        int16_t src = on_load
            ? newestLoadReg
            : int16_t(indep_base + (b % IndepRegCount));
        // Conditional branches are modelled as non-taken-path
        // fall-throughs so the fetch template stays linear.
        pending.push_back(isa::makeBranch(src, taken,
                                          slotPc(slot + 1),
                                          slotPc(slot)));
        ++slot;
    }

    // 9. Loop-back branch: strongly biased taken, exits the inner
    //    loop every innerLoopLen iterations.
    bool back_taken = prof.innerLoopLen == 0 ||
        (iter % prof.innerLoopLen) != prof.innerLoopLen - 1;
    pending.push_back(isa::makeBranch(InductionReg, back_taken,
                                      kernelPcBase, slotPc(slot)));

    ++iter;
}

isa::MicroOp
SyntheticWorkload::next()
{
    if (pending.empty())
        emitIteration();
    isa::MicroOp op = pending.front();
    pending.pop_front();
    return op;
}

size_t
SyntheticWorkload::nextBlock(isa::MicroOp *out, size_t n)
{
    // Same stream as n calls to next(), amortising the per-call
    // overhead: generate whole iterations, then drain the pending
    // queue in runs.
    size_t produced = 0;
    while (produced < n) {
        if (pending.empty())
            emitIteration();
        size_t take = std::min(n - produced, pending.size());
        for (size_t i = 0; i < take; ++i)
            out[produced + i] = pending[i];
        pending.erase(pending.begin(),
                      pending.begin() + long(take));
        produced += take;
    }
    return produced;
}

void
SyntheticWorkload::reset()
{
    rng.seed(prof.seed);
    pending.clear();
    for (auto &p : streamPos)
        p = 0;
    storePos = 0;
    iter = 0;
    loadRegIdx = 0;
    computeRegIdx = 0;
    indepRegIdx = 0;
    chaseNode = 0;
    chaseSteps = 0;
    newestLoadReg = int16_t((prof.fp ? isa::FirstFpReg : 0) +
                            LoadRegBase);
}

std::vector<AddressRegion>
SyntheticWorkload::regions() const
{
    // Installed in order, so the regions meant to stay L2-resident
    // (chase and random tables) come last and survive the LRU.
    std::vector<AddressRegion> regs;
    if (prof.storeEvery > 0)
        regs.push_back({storeBase, storeRegionBytes()});
    for (int s = 0; s < prof.numStreams && prof.streamLoads > 0; ++s) {
        regs.push_back({streamBase + uint64_t(s) * streamSpacing,
                        prof.streamBytes});
    }
    if (prof.chaseLoads > 0)
        regs.push_back({chaseBase, prof.chaseBytes});
    if (prof.randLoads > 0)
        regs.push_back({randBase, prof.randBytes});
    return regs;
}

WorkloadPtr
makeWorkload(const std::string &name)
{
    return std::make_unique<SyntheticWorkload>(profileByName(name));
}

WorkloadPtr
makeWorkload(const WorkloadProfile &profile)
{
    return std::make_unique<SyntheticWorkload>(profile);
}

} // namespace kilo::wload
