/**
 * @file
 * Workload interface: a deterministic producer of micro-op traces.
 *
 * The paper evaluates SPEC CPU2000 through SimPoint-selected regions.
 * We cannot redistribute SPEC, so each benchmark is modelled by a
 * synthetic kernel generator that reproduces the properties execution
 * locality depends on: L2 miss rate, miss independence (MLP vs pointer
 * chasing), branch predictability, and the coupling between branches
 * and uncached data. See src/wload/profiles.cc for the per-benchmark
 * parameterisations and DESIGN.md for the substitution rationale.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/isa/micro_op.hh"

namespace kilo::wload
{

/** A contiguous data region a workload touches (cache pre-warming). */
struct AddressRegion
{
    uint64_t base = 0;
    uint64_t bytes = 0;
};

/** A deterministic, endless instruction stream. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the next micro-op of the dynamic instruction stream. */
    virtual isa::MicroOp next() = 0;

    /**
     * Produce the next @p n micro-ops into @p out and return how many
     * were written (always @p n for an endless stream). Semantically
     * identical to calling next() @p n times; generators override it
     * so the simulator's steady-state fetch path pays one virtual
     * call per batch instead of one per micro-op.
     */
    virtual size_t
    nextBlock(isa::MicroOp *out, size_t n)
    {
        for (size_t i = 0; i < n; ++i)
            out[i] = next();
        return n;
    }

    /**
     * Advance the stream past the next @p n micro-ops without
     * handing them to the caller. Semantically identical to @p n
     * next() calls; the default decodes and discards, while seekable
     * workloads (trace replay) override it to jump whole blocks —
     * that is the fast-forward primitive of sampled simulation.
     */
    virtual void
    skip(uint64_t n)
    {
        isa::MicroOp buf[64];
        while (n) {
            size_t take = n < 64 ? size_t(n) : size_t(64);
            size_t got = nextBlock(buf, take);
            n -= got;
        }
    }

    /** Benchmark name (e.g. "mcf", "swim"). */
    virtual const std::string &name() const = 0;

    /** True for the floating-point suite. */
    virtual bool isFp() const = 0;

    /** Restart the stream from the beginning, deterministically. */
    virtual void reset() = 0;

    /**
     * Data regions for functional cache warm-up. The paper measures
     * 200M-instruction SimPoint regions with warm caches; installing
     * the working set's tags before the timed region reproduces that
     * steady state without simulating hundreds of millions of
     * instructions.
     */
    virtual std::vector<AddressRegion> regions() const { return {}; }
};

using WorkloadPtr = std::unique_ptr<Workload>;

} // namespace kilo::wload

