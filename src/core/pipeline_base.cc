#include "src/core/pipeline_base.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace kilo::core
{

PipelineBase::PipelineBase(const CoreParams &params,
                           wload::Workload &workload,
                           const mem::MemConfig &mem_config)
    : prm(params), workload(workload), trace(workload),
      bp(pred::makePredictor(params.predictor)),
      fetchEngine(trace, *bp, prm), mem_(mem_config),
      lsq(params.lsqSize)
{}

void
PipelineBase::beginCycle()
{
    activity = 0;
    portsUsed = 0;
    beginCycleQueues();
}

void
PipelineBase::endCycle()
{
    lsq.retireCompleted();
    ++st.cycles;
    ++now;
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

void
PipelineBase::stageCommit()
{
    int budget = prm.commitWidth;
    while (budget > 0 && !globalOrder.empty() &&
           globalOrder.front()->completed) {
        DynInstPtr inst = globalOrder.front();
        globalOrder.pop_front();
        --budget;
        ++activity;

        ++st.committed;
        lastCommitCycle = now;
        if (inst->op.isBranch()) {
            ++st.branches;
            if (inst->mispredicted)
                ++st.mispredicts;
        } else if (inst->op.isLoad()) {
            ++st.loads;
            switch (inst->serviceLevel) {
              case mem::ServiceLevel::L1: ++st.loadL1; break;
              case mem::ServiceLevel::L2: ++st.loadL2; break;
              case mem::ServiceLevel::Memory: ++st.loadMem; break;
            }
        } else if (inst->op.isStore()) {
            ++st.stores;
        }
        if (inst->execInMp)
            ++st.mpExecuted;
        else
            ++st.cpExecuted;
        st.issueLatency.sample(inst->issueLatency());

        onCommitInst(inst);
    }
    // Ops may only be reclaimed once nothing can replay them: they
    // must be older than every in-flight instruction, everything in
    // the fetch buffer, and the (possibly rewound) fetch point.
    uint64_t keep = fetchEngine.nextSeq();
    if (!fetchBuffer.empty())
        keep = std::min(keep, fetchBuffer.front()->seq);
    if (!globalOrder.empty())
        keep = std::min(keep, globalOrder.front()->seq);
    trace.release(keep);
}

// ---------------------------------------------------------------------
// Completion and recovery
// ---------------------------------------------------------------------

void
PipelineBase::scheduleCompletion(const DynInstPtr &inst,
                                 uint32_t latency)
{
    wheel.schedule(now + (latency ? latency : 1), inst);
}

void
PipelineBase::wakeDependents(const DynInstPtr &inst)
{
    for (auto &dep : inst->dependents) {
        if (dep->squashed)
            continue;
        KILO_ASSERT(dep->srcNotReady > 0,
                    "wakeup underflow on seq %lu",
                    (unsigned long)dep->seq);
        if (--dep->srcNotReady == 0) {
            dep->readyFlag = true;
            dep->readyCycle = now;
            if (dep->iq)
                dep->iq->markReady(dep);
        }
    }
    inst->dropDependents();
}

void
PipelineBase::completeInst(const DynInstPtr &inst)
{
    KILO_ASSERT(!inst->completed, "double completion of seq %lu",
                (unsigned long)inst->seq);
    inst->completed = true;
    inst->completeCycle = now;
    scoreboard.complete(inst);
    wakeDependents(inst);
    inst->dropProducers();
    ++activity;

    if (inst->op.isBranch()) {
        if (!bp->isPerfect())
            bp->train(inst->op.pc, inst->historySnapshot,
                      inst->op.taken);
        if (inst->mispredicted)
            resolvedMispredicts.push_back(inst);
        else
            onBranchResolved(inst);
    }
}

void
PipelineBase::stageComplete()
{
    dueBuf.clear();
    resolvedMispredicts.clear();
    wheel.popDue(now, dueBuf);
    for (auto &inst : dueBuf) {
        if (inst->squashed)
            continue;
        completeInst(inst);
    }

    if (!resolvedMispredicts.empty()) {
        // Recover from the oldest mispredicted branch; younger ones
        // sit in its shadow and are squashed by the recovery.
        auto oldest = *std::min_element(
            resolvedMispredicts.begin(), resolvedMispredicts.end(),
            [](const DynInstPtr &a, const DynInstPtr &b) {
                return a->seq < b->seq;
            });
        recoverFromBranch(oldest);
        resolvedMispredicts.clear();
    }
}

void
PipelineBase::squashYoungerThan(uint64_t seq)
{
    while (!globalOrder.empty() && globalOrder.back()->seq > seq) {
        DynInstPtr inst = globalOrder.back();
        globalOrder.pop_back();
        inst->squashed = true;
        ++st.squashed;
        if (inst->iq)
            inst->iq->notifySquashed(inst);
        if (inst->inLsq)
            lsq.notifySquashed(inst);
        scoreboard.restore(inst);
        onSquashInst(inst);
        inst->dropDependents();
        inst->dropProducers();
    }
}

void
PipelineBase::recoverFromBranch(const DynInstPtr &branch)
{
    squashYoungerThan(branch->seq);

    // Everything in the fetch buffer is younger than the branch.
    for (auto &inst : fetchBuffer)
        inst->squashed = true;
    fetchBuffer.clear();

    uint64_t history =
        (branch->historySnapshot << 1) | (branch->op.taken ? 1 : 0);
    uint64_t penalty = uint64_t(prm.mispredictPenalty) +
        uint64_t(recoveryExtraPenalty(branch));
    fetchEngine.redirect(branch->seq + 1, now + penalty, history);

    onRecovered(branch);
}

// ---------------------------------------------------------------------
// Issue
// ---------------------------------------------------------------------

void
PipelineBase::issueCommon(const DynInstPtr &inst, IssueQueue &iq,
                          uint32_t latency)
{
    inst->issued = true;
    inst->issueCycle = now;
    iq.removeIssued(inst);
    scheduleCompletion(inst, latency);
    ++st.issued;
    ++activity;
}

bool
PipelineBase::tryIssueInst(const DynInstPtr &inst, IssueQueue &iq,
                           FuPool &fus)
{
    const isa::MicroOp &op = inst->op;

    if (op.isMem()) {
        if (!memPortAvailable()) {
            iq.requeue(inst);
            return false;
        }
        if (op.isLoad()) {
            LoadCheck check = lsq.checkLoad(inst);
            if (check.kind == LoadCheck::Kind::Blocked) {
                // Wait for the conflicting older store to execute.
                inst->readyFlag = false;
                iq.droppedNotReady(inst);
                addDependence(inst, check.store);
                return false;
            }
            uint32_t latency;
            if (check.kind == LoadCheck::Kind::Forward) {
                latency = 1;
                inst->serviceLevel = mem::ServiceLevel::L1;
                lsq.countForward();
                ++st.storeForwards;
            } else {
                auto res = mem_.access(op.effAddr, false, now);
                latency = res.latency;
                inst->serviceLevel = res.level;
                inst->longLatency = res.offChip();
            }
            ++portsUsed;
            issueCommon(inst, iq, latency);
        } else {
            // Stores drain through the write buffer: the line is
            // installed now, dependents (via forwarding) see the data
            // next cycle, and commit is never blocked on the miss.
            mem_.access(op.effAddr, true, now);
            ++portsUsed;
            issueCommon(inst, iq, 1);
        }
        return true;
    }

    if (op.cls == isa::OpClass::Nop) {
        issueCommon(inst, iq, 1);
        return true;
    }

    uint32_t latency = uint32_t(isa::opLatency(op.cls));
    if (!fus.tryAcquire(op.cls, now, latency)) {
        iq.requeue(inst);
        return false;
    }
    issueCommon(inst, iq, latency);
    return true;
}

int
PipelineBase::issueFromQueue(IssueQueue &iq, FuPool &fus, int width)
{
    int issued = 0;
    while (issued < width) {
        DynInstPtr inst = iq.popReady(now);
        if (!inst)
            break;
        if (tryIssueInst(inst, iq, fus))
            ++issued;
    }
    return issued;
}

void
PipelineBase::addDependence(const DynInstPtr &inst,
                            const DynInstPtr &producer)
{
    KILO_ASSERT(!producer->completed,
                "dependence on completed producer");
    producer->dependents.push_back(inst);
    ++inst->srcNotReady;
}

// ---------------------------------------------------------------------
// Dispatch and fetch
// ---------------------------------------------------------------------

void
PipelineBase::dispatchCommon(const DynInstPtr &inst)
{
    inst->dispatched = true;
    inst->dispatchCycle = now;

    auto wire = [&](int16_t reg, int slot) {
        if (reg == isa::NoReg)
            return;
        const RegState &rs = scoreboard.get(reg);
        if (rs.producer && !rs.producer->completed) {
            rs.producer->dependents.push_back(inst);
            inst->producers[slot] = rs.producer;
            ++inst->srcNotReady;
        }
    };
    wire(inst->op.src1, 0);
    wire(inst->op.src2, 1);

    if (inst->srcNotReady == 0) {
        inst->readyFlag = true;
        inst->readyCycle = now;
    }

    scoreboard.define(inst);
    globalOrder.push_back(inst);
    if (inst->op.isMem())
        lsq.insert(inst);
    ++st.dispatched;
    ++activity;
}

void
PipelineBase::stageFetch()
{
    if (fetchBuffer.size() >= prm.fetchBufferSize)
        return;
    if (fetchEngine.blocked(now))
        return;
    int space = int(prm.fetchBufferSize - fetchBuffer.size());
    int count = std::min(prm.fetchWidth, space);
    auto fetched = fetchEngine.fetch(now, count);
    for (auto &inst : fetched) {
        fetchBuffer.push_back(inst);
        ++st.fetched;
        ++activity;
    }
}

// ---------------------------------------------------------------------
// Run loop
// ---------------------------------------------------------------------

uint64_t
PipelineBase::nextTimedWake() const
{
    if (!fetchBuffer.empty()) {
        return fetchBuffer.front()->fetchCycle +
               uint64_t(prm.frontEndDepth);
    }
    return UINT64_MAX;
}

void
PipelineBase::idleSkip()
{
    if (activity != 0 || totalReady() != 0)
        return;

    uint64_t wake = UINT64_MAX;
    if (!wheel.empty())
        wake = wheel.nextCycle();
    if (fetchEngine.blocked(now))
        wake = std::min(wake, fetchEngine.redirectReady());
    wake = std::min(wake, nextTimedWake());

    if (wake == UINT64_MAX) {
        // Fetch can proceed next cycle (the redirect just expired).
        if (!fetchEngine.blocked(now) &&
            fetchBuffer.size() < prm.fetchBufferSize) {
            return;
        }
        KILO_PANIC("deadlock at cycle %lu: %zu in flight, "
                   "%zu in fetch buffer, lsq %zu",
                   (unsigned long)now, globalOrder.size(),
                   fetchBuffer.size(), lsq.size());
    }
    if (wake > now) {
        st.cycles += wake - now;
        now = wake;
    }
}

void
PipelineBase::run(uint64_t num_insts)
{
    uint64_t target = st.committed + num_insts;
    while (st.committed < target) {
        tick();
        idleSkip();
        if (now - lastCommitCycle >= 4000000) {
            if (!globalOrder.empty()) {
                const auto &h = globalOrder.front();
                std::fprintf(stderr,
                             "stuck head: seq %lu %s ready=%d "
                             "issued=%d completed=%d srcNotReady=%d "
                             "inLlib=%d inLsq=%d iq=%s\n",
                             (unsigned long)h->seq,
                             h->op.toString().c_str(), h->readyFlag,
                             h->issued, h->completed, h->srcNotReady,
                             h->inLlib, h->inLsq,
                             h->iq ? h->iq->name().c_str() : "-");
                if (h->iq) {
                    auto qh = h->iq->debugFront();
                    if (qh) {
                        std::fprintf(
                            stderr,
                            "queue head: seq %lu %s ready=%d "
                            "issued=%d srcNotReady=%d\n",
                            (unsigned long)qh->seq,
                            qh->op.toString().c_str(), qh->readyFlag,
                            qh->issued, qh->srcNotReady);
                    }
                }
            }
            KILO_PANIC("no commit in 4M cycles at cycle %lu "
                       "(in flight %zu)",
                       (unsigned long)now, globalOrder.size());
        }
    }
}

void
PipelineBase::runCycles(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        tick();
}

void
PipelineBase::resetStats()
{
    st.reset();
    mem_.resetStats();
    lastCommitCycle = now;
}

} // namespace kilo::core
