#include "src/core/pipeline_base.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace kilo::core
{

PipelineBase::PipelineBase(const CoreParams &params,
                           wload::Workload &wl,
                           const mem::MemConfig &mem_config)
    : prm(params), workload(wl), trace(wl),
      bp(pred::makePredictor(params.predictor)),
      fetchEngine(trace, *bp, prm, arena), mem_(mem_config),
      lsq(params.lsqSize, arena)
{
    registerBaseStats();
}

void
PipelineBase::registerBaseStats()
{
    using stats::Row;
    auto &r = statsReg;

    // The Row::Yes registrations below, in this order, define the
    // stable JSONL row schema (see src/stats/DESIGN.md): derived
    // throughput metrics first, then the memory hierarchy's block.
    r.gauge("ipc", "Committed instructions per cycle (measured region)",
            [this] { return st.ipc(); }, Row::Yes);
    r.counter("cycles", "Simulated cycles in the measured region",
              &st.cycles, Row::Yes);
    r.counter("committed", "Instructions committed", &st.committed,
              Row::Yes);
    r.counter("branches", "Branches committed", &st.branches, Row::Yes);
    r.gauge("mispredict_rate", "Branch mispredictions per branch",
            [this] { return st.mispredictRate(); }, Row::Yes);
    r.gauge("mp_fraction",
            "Fraction of committed instructions executed in the MP",
            [this] { return st.mpFraction(); }, Row::Yes);
    mem_.registerStats(r);

    // Commit-slot stall attribution (Plane 2, src/obs/DESIGN.md):
    // every commit slot a cycle leaves unused is charged to the head's
    // stall reason, so over an exactly-simulated region
    // sum(stall_*) + committed == commitWidth * cycles. Appended after
    // the memory block so the pre-existing row prefix is unchanged.
    r.counter("stall_frontend",
              "Commit slots idle with an empty window while fetch "
              "waited out a redirect",
              &st.stallSlots[size_t(StallReason::Frontend)], Row::Yes);
    r.counter("stall_empty",
              "Commit slots idle with an empty window while the "
              "front end refilled",
              &st.stallSlots[size_t(StallReason::Empty)], Row::Yes);
    r.counter("stall_mem",
              "Commit slots lost to the head waiting on memory data",
              &st.stallSlots[size_t(StallReason::Mem)], Row::Yes);
    r.counter("stall_exec",
              "Commit slots lost to the head still executing a "
              "non-memory op",
              &st.stallSlots[size_t(StallReason::Exec)], Row::Yes);
    r.counter("stall_depend",
              "Commit slots lost to the head waiting on source "
              "operands",
              &st.stallSlots[size_t(StallReason::Depend)], Row::Yes);
    r.counter("stall_issue",
              "Commit slots lost to a ready head starved of issue "
              "bandwidth or a functional unit",
              &st.stallSlots[size_t(StallReason::Issue)], Row::Yes);
    r.counter("stall_mshr",
              "Commit slots lost to a ready head memory op held by "
              "MSHR back-pressure",
              &st.stallSlots[size_t(StallReason::Mshr)], Row::Yes);
    r.counter("stall_decoupled",
              "Commit slots lost to the head parked in a slow-lane "
              "structure (LLIB/SLIQ/MP)",
              &st.stallSlots[size_t(StallReason::Decoupled)],
              Row::Yes);

    r.counter("dispatch_blocked_rob",
              "Dispatch cycles cut short by a full ROB",
              &st.dispatchBlockedRob);
    r.counter("dispatch_blocked_iq",
              "Dispatch cycles cut short by a full issue queue",
              &st.dispatchBlockedIq);
    r.counter("dispatch_blocked_lsq",
              "Dispatch cycles cut short by a full LSQ",
              &st.dispatchBlockedLsq);

    r.counter("fetched", "Instructions fetched", &st.fetched);
    r.counter("dispatched", "Instructions dispatched", &st.dispatched);
    r.counter("issued", "Instructions issued", &st.issued);
    r.counter("squashed", "Instructions squashed on recovery",
              &st.squashed);
    r.counter("mispredicts", "Branches mispredicted", &st.mispredicts);
    r.counter("loads", "Loads committed", &st.loads);
    r.counter("stores", "Stores committed", &st.stores);
    r.counter("load_l1", "Committed loads serviced by the L1",
              &st.loadL1);
    r.counter("load_l2", "Committed loads serviced by the L2",
              &st.loadL2);
    r.counter("load_mem", "Committed loads serviced off chip",
              &st.loadMem);
    r.counter("store_forwards", "Loads forwarded from an older store",
              &st.storeForwards);
    r.counter("mp_executed", "Committed instructions executed in MP",
              &st.mpExecuted);
    r.counter("cp_executed", "Committed instructions executed in CP",
              &st.cpExecuted);
    r.histogram("issue_latency",
                "Decode->issue distance of committed instructions "
                "(cycles, Figure 3)",
                &st.issueLatency);
}

void
PipelineBase::beginCycle()
{
    activity = 0;
    portsUsed = 0;
    beginCycleQueues();
}

void
PipelineBase::endCycle()
{
    lsq.retireCompleted();
    ++st.cycles;
    ++now;
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

void
PipelineBase::stageCommit()
{
    int budget = prm.commitWidth;
    while (budget > 0 && !globalOrder.empty()) {
        InstRef ref = globalOrder.front();
        DynInst &inst = arena.get(ref);
        if (!inst.completed)
            break;
        globalOrder.pop_front();
        --budget;
        ++activity;

        ++st.committed;
        lastCommitCycle = now;
        if (inst.op.isBranch()) {
            ++st.branches;
            if (inst.mispredicted)
                ++st.mispredicts;
        } else if (inst.op.isLoad()) {
            ++st.loads;
            switch (inst.serviceLevel) {
              case mem::ServiceLevel::L1: ++st.loadL1; break;
              case mem::ServiceLevel::L2: ++st.loadL2; break;
              case mem::ServiceLevel::Memory: ++st.loadMem; break;
            }
        } else if (inst.op.isStore()) {
            ++st.stores;
        }
        if (inst.execInMp)
            ++st.mpExecuted;
        else
            ++st.cpExecuted;
        st.issueLatency.sample(arena.coldOf(inst).issueLatency());
        obsEvent(obs::EventKind::Commit, inst.seq, 0,
                 uint8_t(inst.execInMp));

        onCommitInst(ref);

        // Recycle the slot unless a structure still holds the entry:
        // an LSQ resident defers to Lsq::retireCompleted, an
        // aging-ROB resident (D-KIP/KILO commit does not drain the
        // pseudo-ROB) defers to the Analyze-stage pop. The last
        // releaser recycles.
        inst.retired = true;
        if (!inst.inLsq && !inst.inRob)
            arena.free(ref);
    }
    // Commit-slot accounting: the loop above exits early only when
    // the head is incomplete or the window is empty; every slot it
    // left unused is charged to that single cause (commit is
    // in-order, so nothing younger could have used them either).
    if (budget > 0)
        st.stallSlots[size_t(classifyStall())] += uint64_t(budget);
    // Ops may only be reclaimed once nothing can replay them: they
    // must be older than every in-flight instruction, everything in
    // the fetch buffer, and the (possibly rewound) fetch point.
    uint64_t keep = fetchEngine.nextSeq();
    if (!fetchBuffer.empty())
        keep = std::min(keep, arena.get(fetchBuffer.front()).seq);
    if (!globalOrder.empty())
        keep = std::min(keep, arena.get(globalOrder.front()).seq);
    trace.release(keep);
}

StallReason
PipelineBase::classifyStall()
{
    if (globalOrder.empty()) {
        return fetchEngine.blocked(now) ? StallReason::Frontend
                                        : StallReason::Empty;
    }
    const DynInst &head = arena.get(globalOrder.front());
    StallReason r;
    if (head.issued) {
        r = head.op.isMem() ? StallReason::Mem : StallReason::Exec;
    } else if (!head.readyFlag) {
        r = StallReason::Depend;
    } else if (head.op.isMem() &&
               mem_.wouldBlockProbe(head.op.effAddr, now)) {
        r = StallReason::Mshr;
    } else {
        r = StallReason::Issue;
    }
    return refineStallReason(head, r);
}

// ---------------------------------------------------------------------
// Completion and recovery
// ---------------------------------------------------------------------

void
PipelineBase::scheduleCompletion(InstRef inst, uint32_t latency)
{
    wheel.schedule(now + (latency ? latency : 1), inst);
}

void
PipelineBase::wakeDependents(DynInst &inst)
{
    // Walk the pooled chain, returning each node as it is consumed;
    // the producer's next tenant starts with an empty chain.
    uint32_t node = inst.depHead;
    inst.depHead = DynInst::NoDep;
    while (node != DynInst::NoDep) {
        InstRef depRef = arena.depNode(node).dep;
        uint32_t next = arena.depNode(node).next;
        arena.depFree(node);
        node = next;

        // A stale handle is a dependent that was squashed and
        // recycled after the edge was recorded.
        DynInst *dep = arena.tryGet(depRef);
        if (!dep || dep->squashed)
            continue;
        KILO_ASSERT(dep->srcNotReady > 0,
                    "wakeup underflow on seq %lu",
                    (unsigned long)dep->seq);
        if (--dep->srcNotReady == 0) {
            dep->readyFlag = true;
            dep->readyCycle = now;
            if (IssueQueue *iq = queueById(dep->iqId))
                iq->markReady(depRef);
        }
    }
}

void
PipelineBase::completeInst(InstRef ref)
{
    DynInst &inst = arena.get(ref);
    DynInstCold &cold = arena.coldOf(inst);
    KILO_ASSERT(!inst.completed, "double completion of seq %lu",
                (unsigned long)inst.seq);
    inst.completed = true;
    cold.completeCycle = now;
    scoreboard.complete(inst, cold);
    wakeDependents(inst);
    cold.dropProducers();
    ++activity;
    obsEvent(obs::EventKind::Complete, inst.seq, 0,
             uint8_t(inst.mispredicted));

    if (inst.op.isBranch()) {
        if (!bp->isPerfect())
            bp->train(cold.pc, cold.historySnapshot, inst.taken());
        if (inst.mispredicted)
            resolvedMispredicts.push_back(ref);
        else
            onBranchResolved(ref);
    }
}

void
PipelineBase::stageComplete()
{
    dueBuf.clear();
    resolvedMispredicts.clear();
    wheel.popDue(now, dueBuf);
    for (InstRef ref : dueBuf) {
        // Squash recycles slots, so events for squashed instructions
        // surface here as stale handles.
        DynInst *inst = arena.tryGet(ref);
        if (!inst || inst->squashed)
            continue;
        completeInst(ref);
    }

    if (!resolvedMispredicts.empty()) {
        // Recover from the oldest mispredicted branch; younger ones
        // sit in its shadow and are squashed by the recovery.
        auto oldest = *std::min_element(
            resolvedMispredicts.begin(), resolvedMispredicts.end(),
            [this](InstRef a, InstRef b) {
                return arena.get(a).seq < arena.get(b).seq;
            });
        recoverFromBranch(oldest);
        resolvedMispredicts.clear();
    }
}

void
PipelineBase::squashYoungerThan(uint64_t seq)
{
    while (!globalOrder.empty() &&
           arena.get(globalOrder.back()).seq > seq) {
        InstRef ref = globalOrder.back();
        DynInst &inst = arena.get(ref);
        DynInstCold &cold = arena.coldOf(inst);
        globalOrder.pop_back();
        inst.squashed = true;
        ++st.squashed;
        obsEvent(obs::EventKind::Squash, inst.seq);
        if (IssueQueue *iq = queueById(inst.iqId))
            iq->notifySquashed(ref);
        if (inst.inLsq)
            lsq.notifySquashed(ref);
        // A stale saved producer means it already committed; restore
        // null rather than parking a dead handle in the scoreboard
        // indefinitely (a register may go unredefined for arbitrarily
        // long, outliving any generation-wrap guarantee).
        if (cold.prevProducer && !arena.isLive(cold.prevProducer))
            cold.prevProducer = InstRef();
        scoreboard.restore(inst, cold);
        onSquashInst(ref);
        // Recycle immediately: every reference that survives (wheel
        // events, ready-heap entries, dependence edges) goes stale
        // and is filtered at its consumer; the dependent chain
        // returns to the pool inside free().
        arena.free(ref);
    }
}

void
PipelineBase::recoverFromBranch(InstRef branchRef)
{
    DynInst &branch = arena.get(branchRef);
    squashYoungerThan(branch.seq);

    // Everything in the fetch buffer is younger than the branch and
    // owns no pipeline state yet; recycle the records directly.
    for (size_t i = 0; i < fetchBuffer.size(); ++i) {
        obsEvent(obs::EventKind::Squash,
                 arena.get(fetchBuffer[i]).seq);
        arena.free(fetchBuffer[i]);
    }
    fetchBuffer.clear();

    uint64_t history = (arena.coldOf(branch).historySnapshot << 1) |
                       (branch.taken() ? 1 : 0);
    uint64_t penalty = uint64_t(prm.mispredictPenalty) +
        uint64_t(recoveryExtraPenalty(branchRef));
    fetchEngine.redirect(branch.seq + 1, now + penalty, history);

    onRecovered(branchRef);
}

// ---------------------------------------------------------------------
// Issue
// ---------------------------------------------------------------------

void
PipelineBase::issueCommon(InstRef ref, IssueQueue &iq,
                          uint32_t latency)
{
    DynInst &inst = arena.get(ref);
    inst.issued = true;
    arena.coldOf(inst).issueCycle = now;
    iq.removeIssued(ref);
    scheduleCompletion(ref, latency);
    ++st.issued;
    ++activity;
    obsEvent(obs::EventKind::Issue, inst.seq, latency,
             uint8_t(inst.serviceLevel));
}

bool
PipelineBase::tryIssueInst(InstRef ref, IssueQueue &iq, FuPool &fus)
{
    DynInst &inst = arena.get(ref);
    const isa::MicroOpHot &op = inst.op;

    if (op.isMem()) {
        if (!memPortAvailable()) {
            iq.requeue(ref);
            return false;
        }
        if (op.isLoad()) {
            LoadCheck check = lsq.checkLoad(inst);
            if (check.kind == LoadCheck::Kind::Blocked) {
                // Wait for the conflicting older store to execute.
                inst.readyFlag = false;
                iq.droppedNotReady(ref);
                addDependence(ref, check.store);
                return false;
            }
            uint32_t latency;
            if (check.kind == LoadCheck::Kind::Forward) {
                latency = 1;
                inst.serviceLevel = mem::ServiceLevel::L1;
                lsq.countForward();
                ++st.storeForwards;
            } else {
                if (mem_.wouldBlock(op.effAddr, now)) {
                    // Finite-MSHR structural hazard: hold the load in
                    // its slot until a fill lands and frees a way.
                    iq.requeue(ref);
                    return false;
                }
                auto res = mem_.access(op.effAddr, false, now);
                latency = res.latency;
                inst.serviceLevel = res.level;
                inst.longLatency = res.offChip();
            }
            ++portsUsed;
            issueCommon(ref, iq, latency);
        } else {
            if (mem_.wouldBlock(op.effAddr, now)) {
                // A missing store also needs an MSHR way (write
                // allocate); back-pressure it the same way.
                iq.requeue(ref);
                return false;
            }
            // Stores drain through the write buffer: the line is
            // installed now, dependents (via forwarding) see the data
            // next cycle, and commit is never blocked on the miss.
            mem_.access(op.effAddr, true, now);
            ++portsUsed;
            issueCommon(ref, iq, 1);
        }
        return true;
    }

    if (op.cls == isa::OpClass::Nop) {
        issueCommon(ref, iq, 1);
        return true;
    }

    uint32_t latency = uint32_t(isa::opLatency(op.cls));
    if (!fus.tryAcquire(op.cls, now, latency)) {
        iq.requeue(ref);
        return false;
    }
    issueCommon(ref, iq, latency);
    return true;
}

int
PipelineBase::issueFromQueue(IssueQueue &iq, FuPool &fus, int width)
{
    int issued = 0;
    while (issued < width) {
        InstRef ref = iq.popReady(now);
        if (!ref)
            break;
        if (tryIssueInst(ref, iq, fus))
            ++issued;
    }
    return issued;
}

void
PipelineBase::addDependence(InstRef inst, InstRef producer)
{
    DynInst &prod = arena.get(producer);
    KILO_ASSERT(!prod.completed, "dependence on completed producer");
    arena.addDependent(prod, inst);
    ++arena.get(inst).srcNotReady;
}

// ---------------------------------------------------------------------
// Dispatch and fetch
// ---------------------------------------------------------------------

void
PipelineBase::dispatchCommon(InstRef ref)
{
    DynInst &inst = arena.get(ref);
    DynInstCold &cold = arena.coldOf(inst);
    inst.dispatched = true;
    cold.dispatchCycle = now;

    auto wire = [&](int16_t reg, int slot) {
        if (reg == isa::NoReg)
            return;
        const RegState &rs = scoreboard.get(reg);
        // A stale producer handle means the producer already
        // committed: the value is architecturally available.
        DynInst *prod = arena.tryGet(rs.producer);
        if (prod && !prod->completed) {
            arena.addDependent(*prod, ref);
            cold.producers[slot] = rs.producer;
            ++inst.srcNotReady;
        }
    };
    wire(inst.op.src1, 0);
    wire(inst.op.src2, 1);

    if (inst.srcNotReady == 0) {
        inst.readyFlag = true;
        inst.readyCycle = now;
    }

    scoreboard.define(inst, cold);
    globalOrder.push_back(ref);
    if (inst.op.isMem())
        lsq.insert(ref);
    ++st.dispatched;
    ++activity;
    obsEvent(obs::EventKind::Rename, inst.seq);
}

void
PipelineBase::stageFetch()
{
    if (fetchHold)
        return;
    if (fetchBuffer.size() >= prm.fetchBufferSize)
        return;
    if (fetchEngine.blocked(now))
        return;
    int space = int(prm.fetchBufferSize - fetchBuffer.size());
    int count = std::min(prm.fetchWidth, space);
    fetchScratch.clear();
    fetchEngine.fetch(now, count, fetchScratch);
    for (InstRef ref : fetchScratch) {
        fetchBuffer.push_back(ref);
        ++st.fetched;
        ++activity;
        if (timeline) {
            const DynInst &inst = arena.get(ref);
            timeline->record(now, obs::EventKind::Fetch, inst.seq,
                             arena.coldOf(inst).pc,
                             uint8_t(inst.op.cls));
        }
    }
}

// ---------------------------------------------------------------------
// Run loop
// ---------------------------------------------------------------------

uint64_t
PipelineBase::nextTimedWake() const
{
    if (!fetchBuffer.empty()) {
        return arena.get(fetchBuffer.front()).fetchCycle +
               uint64_t(prm.frontEndDepth);
    }
    return UINT64_MAX;
}

void
PipelineBase::idleSkip()
{
    if (activity != 0 || totalReady() != 0)
        return;

    uint64_t wake = UINT64_MAX;
    if (!wheel.empty())
        wake = wheel.nextCycle();
    if (fetchEngine.blocked(now))
        wake = std::min(wake, fetchEngine.redirectReady());
    wake = std::min(wake, nextTimedWake());

    if (wake == UINT64_MAX) {
        // Fetch can proceed next cycle (the redirect just expired).
        if (!fetchHold && !fetchEngine.blocked(now) &&
            fetchBuffer.size() < prm.fetchBufferSize) {
            return;
        }
        KILO_PANIC("deadlock at cycle %lu: %zu in flight, "
                   "%zu in fetch buffer, lsq %zu",
                   (unsigned long)now, globalOrder.size(),
                   fetchBuffer.size(), lsq.size());
    }
    if (wake > now) {
        // Skipped cycles never reach stageCommit, so their commit
        // slots are attributed here — same classifier, whole cycles
        // at a time — keeping the slot-sum invariant exact under
        // event-assisted simulation.
        st.stallSlots[size_t(classifyStall())] +=
            (wake - now) * uint64_t(prm.commitWidth);
        st.cycles += wake - now;
        now = wake;
    }
}

void
PipelineBase::run(uint64_t num_insts)
{
    runUntil(st.committed + num_insts, UINT64_MAX);
}

void
PipelineBase::runUntil(uint64_t target_committed, uint64_t cycle_limit)
{
    while (st.committed < target_committed && now < cycle_limit) {
        // Test-only divergence seed for the KILOAUD audit plane:
        // checked before tick() so the flip lands at exactly cycle
        // dbgFlipCycle regardless of how callers slice their
        // runUntil() calls (stepping-invariant by construction).
        if (dbgFlipCycle && !dbgFlipDone && now >= dbgFlipCycle) {
            fetchEngine.debugFlipHistory(dbgFlipMask);
            dbgFlipDone = true;
        }
        tick();
        idleSkip();
        if (now - lastCommitCycle >= 4000000) {
            if (!globalOrder.empty()) {
                const DynInst &h = arena.get(globalOrder.front());
                IssueQueue *hq = queueById(h.iqId);
                std::fprintf(stderr,
                             "stuck head: seq %lu %s ready=%d "
                             "issued=%d completed=%d srcNotReady=%d "
                             "inLlib=%d inLsq=%d iq=%s\n",
                             (unsigned long)h.seq,
                             h.op.toString().c_str(), h.readyFlag,
                             h.issued, h.completed, h.srcNotReady,
                             h.inLlib, h.inLsq,
                             hq ? hq->name().c_str() : "-");
                if (hq) {
                    InstRef qh = hq->debugFront();
                    if (qh) {
                        const DynInst &q = arena.get(qh);
                        std::fprintf(
                            stderr,
                            "queue head: seq %lu %s ready=%d "
                            "issued=%d srcNotReady=%d\n",
                            (unsigned long)q.seq,
                            q.op.toString().c_str(), q.readyFlag,
                            q.issued, q.srcNotReady);
                    }
                }
            }
            KILO_PANIC("no commit in 4M cycles at cycle %lu "
                       "(in flight %zu)",
                       (unsigned long)now, globalOrder.size());
        }
    }
}

void
PipelineBase::runCycles(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        tick();
}

// ---------------------------------------------------------------------
// Checkpointing and fast-forward
// ---------------------------------------------------------------------

void
PipelineBase::saveState(ckpt::Sink &s) const
{
    // Fixed serialization order; restoreState() mirrors it exactly.
    // Per-cycle scratch (portsUsed, activity, dueBuf, ...) is reset
    // at every beginCycle() and checkpoints are only taken at cycle
    // boundaries, so it is deliberately not stored.
    s.scalar(uint64_t(now));
    s.scalar(uint64_t(lastCommitCycle));
    st.save(s);
    trace.save(s);
    fetchEngine.save(s);
    bp->save(s);
    arena.save(s);
    mem_.save(s);
    scoreboard.save(s);
    lsq.save(s);
    wheel.save(s);
    globalOrder.save(s);
    fetchBuffer.save(s);
    // Only the latch: the flip *configuration* is re-armed by the
    // restoring Session and must never contaminate state digests —
    // a flipped run and a clean run hash identically until the flip
    // cycle actually executes.
    s.scalar(uint8_t(dbgFlipDone));
    saveDerived(s);
}

void
PipelineBase::restoreState(ckpt::Source &s)
{
    now = s.scalar<uint64_t>();
    lastCommitCycle = s.scalar<uint64_t>();
    st.load(s);
    trace.load(s);
    fetchEngine.load(s);
    bp->load(s);
    arena.load(s);
    mem_.load(s);
    scoreboard.load(s);
    lsq.load(s);
    wheel.load(s);
    globalOrder.load(s);
    fetchBuffer.load(s);
    dbgFlipDone = s.scalar<uint8_t>() != 0;
    restoreDerived(s);

    // Scratch state is clear-at-use but clear it anyway so a restore
    // into a mid-cycle-abandoned core cannot leak stale handles.
    portsUsed = 0;
    activity = 0;
    fetchHold = false;
    dueBuf.clear();
    resolvedMispredicts.clear();
    fetchScratch.clear();
}

void
PipelineBase::drain()
{
    fetchHold = true;
    while (!globalOrder.empty() || !fetchBuffer.empty()) {
        tick();
        idleSkip();
    }
    fetchHold = false;
}

void
PipelineBase::fastForward(uint64_t target_seq, FfMode mode)
{
    drain();
    uint64_t seq = fetchEngine.nextSeq();
    if (target_seq <= seq)
        return;

    if (mode == FfMode::Skip) {
        trace.jumpTo(target_seq);
        fetchEngine.redirect(target_seq, now, fetchEngine.history());
        return;
    }

    // Warm: walk every skipped op, evolving cache tags, predictor
    // tables and the global history exactly as correct-path execution
    // would — the structures the next sampled interval depends on.
    uint64_t ghr = fetchEngine.history();
    const bool perfect = bp->isPerfect();
    for (; seq < target_seq; ++seq) {
        trace.release(seq);
        const isa::MicroOp &op = trace.op(seq);
        if (op.isMem()) {
            mem_.warmAccess(op.effAddr);
        } else if (op.isBranch()) {
            if (!perfect)
                bp->train(op.pc, ghr, op.taken);
            ghr = (ghr << 1) | (op.taken ? 1 : 0);
        }
    }
    trace.release(target_seq);
    fetchEngine.redirect(target_seq, now, ghr);
}

void
PipelineBase::resetStats()
{
    // Registry-driven: zero every registered counter and reset the
    // histograms in place (bucket configuration survives). The
    // hierarchy's own resetStats still runs for the stats the
    // registry reads through gauges (MSHR peak/occupancy, the cache
    // arrays' internal counters).
    statsReg.reset();
    mem_.resetStats();
    lastCommitCycle = now;
}

} // namespace kilo::core
