/**
 * @file
 * Statistics block maintained by every core model.
 *
 * All counters are zeroed by PipelineBase::resetStats() at the end of
 * warm-up; derived metrics (IPC, misprediction rate) are computed over
 * the post-warm-up region only.
 *
 * Every field is registered — with a name and a description — on the
 * owning core's stats::Registry (src/stats/registry.hh): the shared
 * fields by PipelineBase, the decoupled-machine fields by the model
 * that maintains them (DkipCore / KiloCore). Resetting is
 * registry-driven, which zeroes counters and resets the histogram *in
 * place*; there is deliberately no whole-struct reassignment anywhere,
 * so histogram bucket configuration is never silently reconstructed.
 */

#pragma once

#include <cstdint>

#include "src/util/histogram.hh"

namespace kilo::core
{

/**
 * Why a commit slot went unused (Plane 2 of the observability layer,
 * src/obs/DESIGN.md). Commit is in-order, so the window head's state
 * explains every slot the cycle left on the table; PipelineBase
 * classifies once per stalled cycle and charges all unused slots to
 * that reason. Over any exactly-simulated region the slots balance:
 *
 *     sum(stallSlots) + committed == commitWidth * cycles
 *
 * (pinned by tests/test_obs.cpp on all three machines; sampled-run
 * reconstructions are weighted estimates and only balance
 * approximately).
 */
enum class StallReason : uint8_t
{
    Frontend = 0, ///< window empty, fetch blocked on a redirect
    Empty,        ///< window empty, front end still refilling
    Mem,          ///< head issued memory op, data not back yet
    Exec,         ///< head issued non-memory op, still executing
    Depend,       ///< head unissued, waiting on source operands
    Issue,        ///< head ready but unissued (issue bandwidth / FU)
    Mshr,         ///< head ready memory op held by MSHR back-pressure
    Decoupled,    ///< head parked in a slow-lane structure
                  ///< (LLIB / SLIQ / MP queues; D-KIP and KILO only)
    NumReasons
};

constexpr size_t NumStallReasons = size_t(StallReason::NumReasons);

/** Counters and distributions collected during simulation. */
struct CoreStats
{
    /** Basic throughput. @{ */
    uint64_t cycles = 0;
    uint64_t committed = 0;
    uint64_t fetched = 0;
    uint64_t dispatched = 0;
    uint64_t issued = 0;
    uint64_t squashed = 0;
    /** @} */

    /** Control flow. @{ */
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    /** @} */

    /** Memory operations. @{ */
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t loadL1 = 0;
    uint64_t loadL2 = 0;
    uint64_t loadMem = 0;
    uint64_t storeForwards = 0;
    /** @} */

    /** Commit-slot stall attribution, indexed by StallReason. @{ */
    uint64_t stallSlots[NumStallReasons] = {};
    /** @} */

    /** Dispatch-blocked cycle diagnostics: stageDispatch gave up on a
     *  full structure with instructions still waiting. @{ */
    uint64_t dispatchBlockedRob = 0;
    uint64_t dispatchBlockedIq = 0;
    uint64_t dispatchBlockedLsq = 0;
    /** @} */

    /** Decoupled-machine statistics (D-KIP / KILO only). @{ */
    uint64_t llibInsertedInt = 0;
    uint64_t llibInsertedFp = 0;
    uint64_t mpExecuted = 0;       ///< committed insts executed in MP
    uint64_t cpExecuted = 0;       ///< committed insts executed in CP
    uint64_t analyzeStallCycles = 0;
    uint64_t llrfConflictStalls = 0;
    uint64_t llibFullStalls = 0;
    uint64_t llrfFullStalls = 0;
    uint64_t checkpointSkips = 0;   ///< branches with no free entry
    uint64_t checkpointsTaken = 0;
    uint64_t maxLlibInstrsInt = 0;
    uint64_t maxLlibRegsInt = 0;
    uint64_t maxLlibInstrsFp = 0;
    uint64_t maxLlibRegsFp = 0;
    /** @} */

    /** Decode->issue distance distribution (Figure 3). */
    Histogram issueLatency{25, 80};   // 25-cycle buckets to 2000

    /** Instructions per cycle over the measured region. */
    double
    ipc() const
    {
        return cycles ? double(committed) / double(cycles) : 0.0;
    }

    /** Branch misprediction rate (per branch). */
    double
    mispredictRate() const
    {
        return branches ? double(mispredicts) / double(branches) : 0.0;
    }

    /** Fraction of committed instructions executed in the MP. */
    double
    mpFraction() const
    {
        uint64_t total = mpExecuted + cpExecuted;
        return total ? double(mpExecuted) / double(total) : 0.0;
    }

    /** Serialize / restore every counter and the histogram, field by
     *  field (a new field must be added here too — the checkpoint
     *  round-trip test catches omissions). @{ */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        for (uint64_t v :
             {cycles, committed, fetched, dispatched, issued, squashed,
              branches, mispredicts, loads, stores, loadL1, loadL2,
              loadMem, storeForwards, llibInsertedInt, llibInsertedFp,
              mpExecuted, cpExecuted, analyzeStallCycles,
              llrfConflictStalls, llibFullStalls, llrfFullStalls,
              checkpointSkips, checkpointsTaken, maxLlibInstrsInt,
              maxLlibRegsInt, maxLlibInstrsFp, maxLlibRegsFp,
              dispatchBlockedRob, dispatchBlockedIq,
              dispatchBlockedLsq})
            s.template scalar<uint64_t>(v);
        for (uint64_t v : stallSlots)
            s.template scalar<uint64_t>(v);
        issueLatency.save(s);
    }

    template <typename Source>
    void
    load(Source &s)
    {
        for (uint64_t *v :
             {&cycles, &committed, &fetched, &dispatched, &issued,
              &squashed, &branches, &mispredicts, &loads, &stores,
              &loadL1, &loadL2, &loadMem, &storeForwards,
              &llibInsertedInt, &llibInsertedFp, &mpExecuted,
              &cpExecuted, &analyzeStallCycles, &llrfConflictStalls,
              &llibFullStalls, &llrfFullStalls, &checkpointSkips,
              &checkpointsTaken, &maxLlibInstrsInt, &maxLlibRegsInt,
              &maxLlibInstrsFp, &maxLlibRegsFp, &dispatchBlockedRob,
              &dispatchBlockedIq, &dispatchBlockedLsq})
            *v = s.template scalar<uint64_t>();
        for (uint64_t &v : stallSlots)
            v = s.template scalar<uint64_t>();
        issueLatency.load(s);
    }
    /** @} */
};

} // namespace kilo::core

