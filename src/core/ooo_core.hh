/**
 * @file
 * Baseline out-of-order core (MIPS R10000 style).
 *
 * A conventional machine: ROB-gated dispatch, separate integer and FP
 * issue queues with selectable policy, in-order commit. Instances of
 * this class model R10-64, R10-256, R10-768 and the idealised
 * ROB-limited cores of the paper's Figures 1-3 limit study.
 */

#pragma once

#include "src/core/pipeline_base.hh"
#include "src/util/circular_buffer.hh"

namespace kilo::core
{

/** Conventional out-of-order processor. */
class OooCore : public PipelineBase
{
  public:
    OooCore(const CoreParams &params, wload::Workload &workload,
            const mem::MemConfig &mem_config);

    /** ROB occupancy (tests). */
    size_t robOccupancy() const { return rob.size(); }

    /** Issue-queue occupancies (tests). @{ */
    size_t intIqOccupancy() const { return intIq.size(); }
    size_t fpIqOccupancy() const { return fpIq.size(); }
    /** @} */

  protected:
    void tick() override;
    void onCommitInst(InstRef inst) override;
    void onSquashInst(InstRef inst) override;
    size_t totalReady() const override;
    void beginCycleQueues() override;
    void saveDerived(ckpt::Sink &s) const override;
    void restoreDerived(ckpt::Source &s) override;

    void stageDispatch();
    void stageIssue();

    /** Queue an instruction belongs to (loads/stores/branches are
     *  integer-side; FP arithmetic is FP-side). */
    IssueQueue &queueFor(const DynInst &inst);

    CircularBuffer<InstRef> rob;
    IssueQueue intIq;
    IssueQueue fpIq;
    FuPool fus;
};

} // namespace kilo::core

