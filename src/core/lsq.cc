#include "src/core/lsq.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace kilo::core
{

Lsq::Lsq(size_t capacity)
    : cap(capacity ? capacity : 1)
{}

void
Lsq::insert(const DynInstPtr &inst)
{
    KILO_ASSERT(!full(), "insert into full LSQ");
    KILO_ASSERT(inst->op.isMem(), "non-memory op inserted in LSQ");
    KILO_ASSERT(entries.empty() || entries.back()->seq < inst->seq,
                "LSQ insert out of program order");
    entries.push_back(inst);
    inst->inLsq = true;
    if (inst->op.isStore())
        storeIndex[keyOf(inst->op.effAddr)].push_back(inst);
}

LoadCheck
Lsq::checkLoad(const DynInstPtr &load) const
{
    LoadCheck res;
    auto it = storeIndex.find(keyOf(load->op.effAddr));
    if (it == storeIndex.end())
        return res;
    // Youngest store older than the load; the per-address vector is
    // in program order.
    const auto &stores = it->second;
    for (auto sit = stores.rbegin(); sit != stores.rend(); ++sit) {
        const DynInstPtr &st = *sit;
        if (st->seq < load->seq) {
            res.store = st;
            res.kind = st->issued ? LoadCheck::Kind::Forward
                                  : LoadCheck::Kind::Blocked;
            return res;
        }
    }
    return res;
}

void
Lsq::retireCompleted()
{
    while (!entries.empty() && entries.front()->completed) {
        DynInstPtr head = entries.front();
        entries.pop_front();
        head->inLsq = false;
        if (head->op.isStore())
            removeFromIndex(head);
    }
}

void
Lsq::removeFromIndex(const DynInstPtr &store)
{
    auto it = storeIndex.find(keyOf(store->op.effAddr));
    KILO_ASSERT(it != storeIndex.end(), "store missing from index");
    auto &vec = it->second;
    auto vit = std::find(vec.begin(), vec.end(), store);
    KILO_ASSERT(vit != vec.end(), "store missing from index vector");
    vec.erase(vit);
    if (vec.empty())
        storeIndex.erase(it);
}

void
Lsq::notifySquashed(const DynInstPtr &inst)
{
    KILO_ASSERT(!entries.empty() && entries.back() == inst,
                "LSQ squash of non-youngest entry");
    entries.pop_back();
    inst->inLsq = false;
    if (inst->op.isStore())
        removeFromIndex(inst);
}

} // namespace kilo::core
