#include "src/core/lsq.hh"

#include "src/util/logging.hh"

namespace kilo::core
{

Lsq::Lsq(size_t capacity, InstArena &inst_arena)
    : arena(inst_arena), cap(capacity ? capacity : 1),
      buckets(NumBuckets)
{}

void
Lsq::insert(InstRef ref)
{
    DynInst &inst = arena.get(ref);
    KILO_ASSERT(!full(), "insert into full LSQ");
    KILO_ASSERT(inst.op.isMem(), "non-memory op inserted in LSQ");
    KILO_ASSERT(entries.empty() ||
                    arena.get(entries.back()).seq < inst.seq,
                "LSQ insert out of program order");
    entries.push_back(ref);
    inst.inLsq = true;
    if (inst.op.isStore()) {
        // Chain at the bucket head: program-order inserts keep every
        // chain in descending sequence order.
        size_t b = bucketOf(keyOf(inst.op.effAddr));
        inst.lsqBucketNext = buckets[b];
        buckets[b] = ref;
    }
}

LoadCheck
Lsq::checkLoad(const DynInst &load) const
{
    LoadCheck res;
    uint64_t key = keyOf(load.op.effAddr);
    InstRef cur = buckets[bucketOf(key)];
    // The chain is newest-first, so the first same-granule store
    // older than the load is the youngest such store.
    while (cur) {
        const DynInst &st = arena.get(cur);
        if (st.seq < load.seq && keyOf(st.op.effAddr) == key) {
            res.store = cur;
            res.kind = st.issued ? LoadCheck::Kind::Forward
                                 : LoadCheck::Kind::Blocked;
            return res;
        }
        cur = st.lsqBucketNext;
    }
    return res;
}

void
Lsq::retireCompleted()
{
    while (!entries.empty() &&
           arena.get(entries.front()).completed) {
        InstRef ref = entries.front();
        DynInst &head = arena.get(ref);
        entries.pop_front();
        head.inLsq = false;
        if (head.op.isStore())
            removeFromIndex(head);
        // An instruction that commits while still holding its LSQ
        // entry defers its recycling to this release point.
        if (head.retired && !head.inRob)
            arena.free(ref);
    }
}

void
Lsq::removeFromIndex(DynInst &store)
{
    size_t b = bucketOf(keyOf(store.op.effAddr));
    InstRef cur = buckets[b];
    if (cur == store.self) {
        buckets[b] = store.lsqBucketNext;
        store.lsqBucketNext = InstRef();
        return;
    }
    while (cur) {
        DynInst &walk = arena.get(cur);
        if (walk.lsqBucketNext == store.self) {
            walk.lsqBucketNext = store.lsqBucketNext;
            store.lsqBucketNext = InstRef();
            return;
        }
        cur = walk.lsqBucketNext;
    }
    KILO_PANIC("store missing from LSQ index");
}

void
Lsq::notifySquashed(InstRef ref)
{
    DynInst &inst = arena.get(ref);
    KILO_ASSERT(!entries.empty() && entries.back() == ref,
                "LSQ squash of non-youngest entry");
    entries.pop_back();
    inst.inLsq = false;
    if (inst.op.isStore())
        removeFromIndex(inst);
}

} // namespace kilo::core
