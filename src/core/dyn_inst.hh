/**
 * @file
 * Dynamic instruction state shared by every core model.
 *
 * A DynInst is a micro-op in flight. Instructions live in a per-core
 * InstArena (src/core/inst_arena.hh) and reference each other through
 * generation-checked 32-bit InstRef handles instead of shared_ptrs:
 * containers (ROB, queues, LLIB) hold handles, and a slot is recycled
 * explicitly when its instruction commits or is squashed. A handle
 * held across its target's recycling goes *stale* — tryGet() returns
 * null for it — which encodes exactly the "producer is no longer in
 * flight" answer every dataflow query wants.
 *
 * The record is split hot/cold for cache footprint. DynInst itself
 * holds only what the per-cycle loops touch — the hot MicroOp slice,
 * sequence, status flags, wakeup state, structure-residency links —
 * and fits in exactly 64 bytes (one cache line, down from the 224 of
 * the unsplit struct). Everything read a bounded number of times per
 * instruction (pc and branch target, timestamps past fetch, branch
 * recovery state, producer links, the scoreboard's squash-restore
 * snapshot) lives in a parallel DynInstCold array owned by the arena,
 * reachable through InstArena::cold(). Dataflow edges are arena-pooled
 * intrusive chains (DynInst::depHead) rather than a per-instruction
 * std::vector, so building and walking them never touches the heap.
 *
 * Issue-queue residency is an id (DynInst::iqId) into the owning
 * core's queue table rather than a pointer, which keeps the record
 * both compact and position-independent — a prerequisite for the
 * checkpoint layer's verbatim slab serialization (src/ckpt/).
 */

#pragma once

#include <cstdint>
#include <type_traits>

#include "src/isa/micro_op.hh"
#include "src/mem/hierarchy.hh"

namespace kilo::core
{

/**
 * Generation-checked handle to a DynInst slot in an InstArena.
 *
 * Packs a 20-bit slot index and a 12-bit generation into 32 bits.
 * A default-constructed handle is null (boolean false); a non-null
 * handle whose generation no longer matches its slot is *stale* and
 * is rejected by InstArena::get()/filtered by InstArena::tryGet().
 */
class InstRef
{
  public:
    static constexpr uint32_t IndexBits = 20;
    static constexpr uint32_t GenBits = 32 - IndexBits;
    static constexpr uint32_t MaxSlots = 1u << IndexBits;
    static constexpr uint32_t GenMask = (1u << GenBits) - 1;

    constexpr InstRef() = default;

    static InstRef
    make(uint32_t index, uint32_t gen)
    {
        InstRef r;
        r.bits = (gen << IndexBits) | index;
        return r;
    }

    bool valid() const { return bits != Invalid; }
    explicit operator bool() const { return valid(); }

    uint32_t index() const { return bits & (MaxSlots - 1); }
    uint32_t gen() const { return bits >> IndexBits; }
    uint32_t raw() const { return bits; }

    friend bool
    operator==(InstRef a, InstRef b)
    {
        return a.bits == b.bits;
    }

    friend bool
    operator!=(InstRef a, InstRef b)
    {
        return a.bits != b.bits;
    }

  private:
    static constexpr uint32_t Invalid = UINT32_MAX;

    uint32_t bits = Invalid;
};

/**
 * One in-flight instruction (an InstArena slot): the hot fields the
 * per-cycle loops touch. Cold per-instruction state lives in the
 * parallel DynInstCold record at the same slot index.
 */
struct DynInst
{
    /** Null link of the arena-pooled dependent chains. */
    static constexpr uint32_t NoDep = UINT32_MAX;

    isa::MicroOpHot op;
    uint64_t seq = 0;            ///< dynamic sequence number

    /** Cycle the last source arrived (wakeup). */
    uint64_t readyCycle = 0;

    /** Fetch timestamp; gates dispatch (front-end depth). */
    uint64_t fetchCycle = 0;

    /** Arena bookkeeping (owned by InstArena). @{ */
    InstRef self;                ///< this instruction's own handle
    uint32_t gen = 0;            ///< slot generation (bumped on free)
    /** @} */

    /** Head of this producer's dependent chain (InstArena dep pool),
     *  or NoDep. Producers wake dependents through it on completion. */
    uint32_t depHead = NoDep;

    /** Next older store in the same LSQ store-index bucket. */
    InstRef lsqBucketNext;

    /** Id of the issue queue currently holding this instruction in
     *  the owning core's queue table (-1 = none); see
     *  PipelineBase::queueById(). */
    int8_t iqId = -1;

    /** Status flags. @{ */
    bool dispatched : 1 = false;
    bool readyFlag : 1 = false;  ///< all sources available
    bool issued : 1 = false;
    bool completed : 1 = false;
    bool squashed : 1 = false;
    bool retired : 1 = false;    ///< committed; slot freed once the
                                 ///< LSQ releases its entry
    bool inLsq : 1 = false;      ///< holds an LSQ entry
    bool inRob : 1 = false;      ///< holds a ROB / aging-ROB entry
    bool predTaken : 1 = false;
    bool mispredicted : 1 = false;
    /** @} */

    /** Resolved branch direction, recovered from the prediction bits
     *  (mispredicted == predTaken != taken at fetch). */
    bool taken() const { return predTaken != mispredicted; }

    /** D-KIP / KILO classification state. @{ */
    bool longLatency : 1 = false; ///< classified low execution locality
    bool inLlib : 1 = false;      ///< currently resident in an LLIB
    bool execInMp : 1 = false;    ///< executed by a Memory Processor
    /** @} */

    /** Pending source count (wakeup underflow guard). */
    int8_t srcNotReady = 0;

    /** Level that serviced this op's memory access. */
    mem::ServiceLevel serviceLevel = mem::ServiceLevel::L1;

    /** LLRF binding of the READY operand (bank/slot, -1 = none). @{ */
    int8_t llrfBank = -1;
    int16_t llrfSlot = -1;
    /** @} */

    /**
     * Reinitialise every hot field for a fresh allocation, preserving
     * the slot generation. Assigning from a value-initialised
     * instance covers fields added later without a hand-maintained
     * list (stale state from the previous tenant would otherwise leak
     * silently). @pre the dependent chain was released to the pool.
     */
    void
    reset()
    {
        uint32_t keep_gen = gen;
        *this = DynInst();
        gen = keep_gen;
    }
};

static_assert(sizeof(DynInst) <= 64,
              "DynInst hot record grew past one cache line; move the "
              "new field to DynInstCold unless a per-cycle loop needs "
              "it");
static_assert(std::is_trivially_copyable_v<DynInst>,
              "DynInst must stay trivially copyable (arena slots are "
              "bulk-assigned; the checkpoint layer serializes them "
              "field by field — see inst_arena.cc saveSlot)");

/**
 * Cold per-instruction state: written once or twice and read a
 * bounded number of times per instruction, never scanned by the
 * per-cycle loops. Parallel array to the DynInst slots, owned by
 * InstArena and addressed by the same slot index.
 */
struct DynInstCold
{
    /** Instruction address (debug, predictor training). */
    uint64_t pc = 0;

    /** Resolved branch target (Branch only). */
    uint64_t target = 0;

    /** Pipeline timestamps past fetch (absolute cycles). @{ */
    uint64_t dispatchCycle = 0;  ///< rename/dispatch (decode time)
    uint64_t issueCycle = 0;
    uint64_t completeCycle = 0;
    /** @} */

    /** Global-history snapshot at prediction (branch recovery). */
    uint64_t historySnapshot = 0;

    /**
     * In-flight producers of src1/src2 at rename time (null when the
     * source was ready). Used by Analyze (long-latency-load tests);
     * a stale handle means the producer already left the pipeline.
     */
    InstRef producers[2];

    /** Previous scoreboard mapping of op.dst, for squash restore. @{ */
    InstRef prevProducer;
    uint64_t prevReadyCycle = 0;
    uint64_t prevDefinerSeq = 0;
    bool prevDefinerValid = false;
    /** @} */

    /** Decode-to-issue distance (the paper's Issue Latency). */
    uint64_t
    issueLatency() const
    {
        return issueCycle >= dispatchCycle ? issueCycle - dispatchCycle
                                           : 0;
    }

    /** Release producer links (called on completion and on squash). */
    void
    dropProducers()
    {
        producers[0] = InstRef();
        producers[1] = InstRef();
    }
};

static_assert(std::is_trivially_copyable_v<DynInstCold>,
              "DynInstCold must stay trivially copyable (arena slots "
              "are bulk-assigned; the checkpoint layer serializes "
              "them field by field — see inst_arena.cc saveSlot)");

} // namespace kilo::core

