/**
 * @file
 * Dynamic instruction state shared by every core model.
 *
 * A DynInst is a micro-op in flight: it carries pipeline timestamps,
 * dataflow links (producers wake dependents on completion), and the
 * D-KIP classification state (execution locality, LLIB/LLRF
 * residency). Instructions live in a per-core InstArena
 * (src/core/inst_arena.hh) and reference each other through
 * generation-checked 32-bit InstRef handles instead of shared_ptrs:
 * containers (ROB, queues, LLIB) hold handles, and a slot is recycled
 * explicitly when its instruction commits or is squashed. A handle
 * held across its target's recycling goes *stale* — tryGet() returns
 * null for it — which encodes exactly the "producer is no longer in
 * flight" answer every dataflow query wants.
 */

#ifndef KILO_CORE_DYN_INST_HH
#define KILO_CORE_DYN_INST_HH

#include <cstdint>
#include <vector>

#include "src/isa/micro_op.hh"
#include "src/mem/hierarchy.hh"

namespace kilo::core
{

class IssueQueue;

/**
 * Generation-checked handle to a DynInst slot in an InstArena.
 *
 * Packs a 20-bit slot index and a 12-bit generation into 32 bits.
 * A default-constructed handle is null (boolean false); a non-null
 * handle whose generation no longer matches its slot is *stale* and
 * is rejected by InstArena::get()/filtered by InstArena::tryGet().
 */
class InstRef
{
  public:
    static constexpr uint32_t IndexBits = 20;
    static constexpr uint32_t GenBits = 32 - IndexBits;
    static constexpr uint32_t MaxSlots = 1u << IndexBits;
    static constexpr uint32_t GenMask = (1u << GenBits) - 1;

    constexpr InstRef() = default;

    static InstRef
    make(uint32_t index, uint32_t gen)
    {
        InstRef r;
        r.bits = (gen << IndexBits) | index;
        return r;
    }

    bool valid() const { return bits != Invalid; }
    explicit operator bool() const { return valid(); }

    uint32_t index() const { return bits & (MaxSlots - 1); }
    uint32_t gen() const { return bits >> IndexBits; }
    uint32_t raw() const { return bits; }

    friend bool
    operator==(InstRef a, InstRef b)
    {
        return a.bits == b.bits;
    }

    friend bool
    operator!=(InstRef a, InstRef b)
    {
        return a.bits != b.bits;
    }

  private:
    static constexpr uint32_t Invalid = UINT32_MAX;

    uint32_t bits = Invalid;
};

/** One in-flight instruction (an InstArena slot). */
struct DynInst
{
    isa::MicroOp op;
    uint64_t seq = 0;            ///< dynamic sequence number

    /** Arena bookkeeping (owned by InstArena). @{ */
    InstRef self;                ///< this instruction's own handle
    uint32_t gen = 0;            ///< slot generation (bumped on free)
    /** @} */

    /** Pipeline timestamps (absolute cycles). @{ */
    uint64_t fetchCycle = 0;
    uint64_t dispatchCycle = 0;  ///< rename/dispatch (decode time)
    uint64_t issueCycle = 0;
    uint64_t completeCycle = 0;
    /** @} */

    /** Status flags. @{ */
    bool dispatched = false;
    bool readyFlag = false;      ///< all sources available
    bool issued = false;
    bool completed = false;
    bool squashed = false;
    bool retired = false;        ///< committed; slot freed once the
                                 ///< LSQ releases its entry
    /** @} */

    /** Dataflow. @{ */
    int srcNotReady = 0;         ///< pending source count
    std::vector<InstRef> dependents;
    /**
     * In-flight producers of src1/src2 at rename time (null when the
     * source was ready). Used by Analyze (long-latency-load tests);
     * a stale handle means the producer already left the pipeline.
     */
    InstRef producers[2];
    uint64_t readyCycle = 0;     ///< cycle the last source arrived
    /** @} */

    /** Branch state. @{ */
    bool predTaken = false;
    bool mispredicted = false;
    uint64_t historySnapshot = 0;
    /** @} */

    /** Memory state. @{ */
    mem::ServiceLevel serviceLevel = mem::ServiceLevel::L1;
    /** @} */

    /** True while this op holds an LSQ entry. */
    bool inLsq = false;

    /** True while this op holds a ROB / aging-ROB entry. */
    bool inRob = false;

    /** Next older store in the same LSQ store-index bucket. */
    InstRef lsqBucketNext;

    /** D-KIP / KILO classification state. @{ */
    bool longLatency = false;    ///< classified low execution locality
    bool inLlib = false;         ///< currently resident in an LLIB
    bool execInMp = false;       ///< executed by a Memory Processor
    int llrfBank = -1;           ///< LLRF bank of the READY operand
    int llrfSlot = -1;           ///< LLRF slot within the bank
    /** @} */

    /** Issue queue currently holding this instruction (or null). */
    IssueQueue *iq = nullptr;

    /** Previous scoreboard mapping of op.dst, for squash restore. @{ */
    InstRef prevProducer;
    uint64_t prevReadyCycle = 0;
    uint64_t prevDefinerSeq = 0;
    bool prevDefinerValid = false;
    /** @} */

    /** Decode-to-issue distance (the paper's Issue Latency). */
    uint64_t
    issueLatency() const
    {
        return issueCycle >= dispatchCycle ? issueCycle - dispatchCycle
                                           : 0;
    }

    /** Release dataflow edges (called on completion and on squash).
     *  The vector keeps its capacity so the recycled slot's next
     *  tenant builds its edge list allocation-free. */
    void
    dropDependents()
    {
        dependents.clear();
    }

    /** Release producer links (called on completion and on squash). */
    void
    dropProducers()
    {
        producers[0] = InstRef();
        producers[1] = InstRef();
    }

    /**
     * Reinitialise every field for a fresh allocation, preserving the
     * slot generation and the dependents capacity. Assigning from a
     * value-initialised instance covers fields added later without a
     * hand-maintained list (stale state from the previous tenant
     * would otherwise leak silently).
     */
    void
    reset()
    {
        uint32_t keep_gen = gen;
        std::vector<InstRef> deps = std::move(dependents);
        deps.clear();
        this->~DynInst();
        new (this) DynInst();
        gen = keep_gen;
        dependents = std::move(deps);
    }
};

} // namespace kilo::core

#endif // KILO_CORE_DYN_INST_HH
