/**
 * @file
 * Dynamic instruction state shared by every core model.
 *
 * A DynInst is a micro-op in flight: it carries pipeline timestamps,
 * dataflow links (producers wake dependents on completion), and the
 * D-KIP classification state (execution locality, LLIB/LLRF
 * residency). Ownership discipline: containers (ROB, queues, LLIB)
 * hold shared_ptrs; producers hold shared_ptrs to *dependents* only,
 * and clear that list on completion or squash, so no reference cycles
 * form (a dependent never outlives its producer's completion).
 */

#ifndef KILO_CORE_DYN_INST_HH
#define KILO_CORE_DYN_INST_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/isa/micro_op.hh"
#include "src/mem/hierarchy.hh"

namespace kilo::core
{

class IssueQueue;

struct DynInst;
using DynInstPtr = std::shared_ptr<DynInst>;

/** One in-flight instruction. */
struct DynInst
{
    isa::MicroOp op;
    uint64_t seq = 0;            ///< dynamic sequence number

    /** Pipeline timestamps (absolute cycles). @{ */
    uint64_t fetchCycle = 0;
    uint64_t dispatchCycle = 0;  ///< rename/dispatch (decode time)
    uint64_t issueCycle = 0;
    uint64_t completeCycle = 0;
    /** @} */

    /** Status flags. @{ */
    bool dispatched = false;
    bool readyFlag = false;      ///< all sources available
    bool issued = false;
    bool completed = false;
    bool squashed = false;
    /** @} */

    /** Dataflow. @{ */
    int srcNotReady = 0;         ///< pending source count
    std::vector<DynInstPtr> dependents;
    /**
     * In-flight producers of src1/src2 at rename time (null when the
     * source was ready). Used by Analyze (long-latency-load tests)
     * and released at completion/squash to avoid reference cycles.
     */
    DynInstPtr producers[2];
    uint64_t readyCycle = 0;     ///< cycle the last source arrived
    /** @} */

    /** Branch state. @{ */
    bool predTaken = false;
    bool mispredicted = false;
    uint64_t historySnapshot = 0;
    /** @} */

    /** Memory state. @{ */
    mem::ServiceLevel serviceLevel = mem::ServiceLevel::L1;
    /** @} */

    /** True while this op holds an LSQ entry. */
    bool inLsq = false;

    /** D-KIP / KILO classification state. @{ */
    bool longLatency = false;    ///< classified low execution locality
    bool inLlib = false;         ///< currently resident in an LLIB
    bool execInMp = false;       ///< executed by a Memory Processor
    int llrfBank = -1;           ///< LLRF bank of the READY operand
    int llrfSlot = -1;           ///< LLRF slot within the bank
    /** @} */

    /** Issue queue currently holding this instruction (or null). */
    IssueQueue *iq = nullptr;

    /** Previous scoreboard mapping of op.dst, for squash restore. @{ */
    DynInstPtr prevProducer;
    uint64_t prevReadyCycle = 0;
    uint64_t prevDefinerSeq = 0;
    bool prevDefinerValid = false;
    /** @} */

    /** Decode-to-issue distance (the paper's Issue Latency). */
    uint64_t
    issueLatency() const
    {
        return issueCycle >= dispatchCycle ? issueCycle - dispatchCycle
                                           : 0;
    }

    /** Release dataflow edges (called on completion and on squash). */
    void
    dropDependents()
    {
        dependents.clear();
        dependents.shrink_to_fit();
    }

    /** Release producer links (called on completion and on squash). */
    void
    dropProducers()
    {
        producers[0] = nullptr;
        producers[1] = nullptr;
    }
};

} // namespace kilo::core

#endif // KILO_CORE_DYN_INST_HH
