#include "src/core/inst_arena.hh"

#include "src/util/logging.hh"

namespace kilo::core
{

InstArena::InstArena(uint32_t initial_slots)
{
    uint32_t slabs_needed =
        (initial_slots + SlabSize - 1) / SlabSize;
    if (slabs_needed == 0)
        slabs_needed = 1;
    for (uint32_t i = 0; i < slabs_needed; ++i)
        addSlab();
}

void
InstArena::addSlab()
{
    KILO_ASSERT(numSlots + SlabSize <= InstRef::MaxSlots,
                "InstArena exceeds the %u-slot handle space",
                InstRef::MaxSlots);
    slabs.push_back(std::make_unique<DynInst[]>(SlabSize));
    coldSlabs.push_back(std::make_unique<DynInstCold[]>(SlabSize));
    slots.grow(SlabSize);
    numSlots += SlabSize;
}

uint32_t
InstArena::depAlloc()
{
    if (depFreeHead == DynInst::NoDep) {
        // Grow the edge pool by one slab worth of nodes, chained onto
        // the free list. Hits only until the window's dataflow
        // high-water mark; steady state recycles.
        uint32_t base = uint32_t(depNodes.size());
        KILO_ASSERT(base + SlabSize >= base, "dep pool overflow");
        depNodes.resize(size_t(base) + SlabSize);
        for (uint32_t i = 0; i < SlabSize; ++i) {
            depNodes[base + i].next =
                i + 1 < SlabSize ? base + i + 1 : DynInst::NoDep;
        }
        depFreeHead = base;
    }
    uint32_t node = depFreeHead;
    depFreeHead = depNodes[node].next;
    ++depsLive;
    return node;
}

InstRef
InstArena::alloc()
{
    if (!slots.hasFree())
        addSlab();
    uint32_t idx = slots.alloc();
    DynInst &inst = slotAt(idx);
    KILO_ASSERT(inst.depHead == DynInst::NoDep,
                "recycled slot still holds a dependent chain");
    inst.reset();
    coldAt(idx) = DynInstCold();
    inst.self = InstRef::make(idx, inst.gen & InstRef::GenMask);
    KILO_ASSERT(inst.self.valid(),
                "live handle collided with the null sentinel");
    ++nAllocs;
    return inst.self;
}

// Slots are serialized field by field, never as raw slab bytes:
// DynInst (bitfields) and DynInstCold (tail padding) both carry
// indeterminate padding, and DynInst::reset()'s whole-struct assign
// copies a stack temporary's padding into the slab — raw bytes would
// make checkpoint payloads (and therefore KILOAUD state digests)
// vary run to run under ASLR. The exact-size asserts force this list
// to be revisited whenever either struct grows a field.
static_assert(sizeof(DynInst) == 64 && sizeof(DynInstCold) == 88,
              "DynInst/DynInstCold layout changed: update "
              "saveSlot()/loadSlot() to cover the new fields");

namespace
{

void
saveSlot(ckpt::Sink &s, const DynInst &d, const DynInstCold &c)
{
    s.scalar(d.op);
    s.scalar(d.seq);
    s.scalar(d.readyCycle);
    s.scalar(d.fetchCycle);
    s.scalar(d.self);
    s.scalar(d.gen);
    s.scalar(d.depHead);
    s.scalar(d.lsqBucketNext);
    s.scalar(d.iqId);
    uint16_t flags =
        uint16_t(d.dispatched) | uint16_t(d.readyFlag) << 1 |
        uint16_t(d.issued) << 2 | uint16_t(d.completed) << 3 |
        uint16_t(d.squashed) << 4 | uint16_t(d.retired) << 5 |
        uint16_t(d.inLsq) << 6 | uint16_t(d.inRob) << 7 |
        uint16_t(d.predTaken) << 8 | uint16_t(d.mispredicted) << 9 |
        uint16_t(d.longLatency) << 10 | uint16_t(d.inLlib) << 11 |
        uint16_t(d.execInMp) << 12;
    s.scalar(flags);
    s.scalar(d.srcNotReady);
    s.scalar(uint8_t(d.serviceLevel));
    s.scalar(d.llrfBank);
    s.scalar(d.llrfSlot);

    s.scalar(c.pc);
    s.scalar(c.target);
    s.scalar(c.dispatchCycle);
    s.scalar(c.issueCycle);
    s.scalar(c.completeCycle);
    s.scalar(c.historySnapshot);
    s.scalar(c.producers[0]);
    s.scalar(c.producers[1]);
    s.scalar(c.prevProducer);
    s.scalar(c.prevReadyCycle);
    s.scalar(c.prevDefinerSeq);
    s.scalar(uint8_t(c.prevDefinerValid));
}

void
loadSlot(ckpt::Source &s, DynInst &d, DynInstCold &c)
{
    d.op = s.scalar<isa::MicroOpHot>();
    d.seq = s.scalar<uint64_t>();
    d.readyCycle = s.scalar<uint64_t>();
    d.fetchCycle = s.scalar<uint64_t>();
    d.self = s.scalar<InstRef>();
    d.gen = s.scalar<uint32_t>();
    d.depHead = s.scalar<uint32_t>();
    d.lsqBucketNext = s.scalar<InstRef>();
    d.iqId = s.scalar<int8_t>();
    uint16_t flags = s.scalar<uint16_t>();
    d.dispatched = flags & 1;
    d.readyFlag = flags >> 1 & 1;
    d.issued = flags >> 2 & 1;
    d.completed = flags >> 3 & 1;
    d.squashed = flags >> 4 & 1;
    d.retired = flags >> 5 & 1;
    d.inLsq = flags >> 6 & 1;
    d.inRob = flags >> 7 & 1;
    d.predTaken = flags >> 8 & 1;
    d.mispredicted = flags >> 9 & 1;
    d.longLatency = flags >> 10 & 1;
    d.inLlib = flags >> 11 & 1;
    d.execInMp = flags >> 12 & 1;
    d.srcNotReady = s.scalar<int8_t>();
    d.serviceLevel = mem::ServiceLevel(s.scalar<uint8_t>());
    d.llrfBank = s.scalar<int8_t>();
    d.llrfSlot = s.scalar<int16_t>();

    c.pc = s.scalar<uint64_t>();
    c.target = s.scalar<uint64_t>();
    c.dispatchCycle = s.scalar<uint64_t>();
    c.issueCycle = s.scalar<uint64_t>();
    c.completeCycle = s.scalar<uint64_t>();
    c.historySnapshot = s.scalar<uint64_t>();
    c.producers[0] = s.scalar<InstRef>();
    c.producers[1] = s.scalar<InstRef>();
    c.prevProducer = s.scalar<InstRef>();
    c.prevReadyCycle = s.scalar<uint64_t>();
    c.prevDefinerSeq = s.scalar<uint64_t>();
    c.prevDefinerValid = s.scalar<uint8_t>() != 0;
}

} // anonymous namespace

void
InstArena::save(ckpt::Sink &s) const
{
    auto *self = const_cast<InstArena *>(this);
    s.scalar(uint32_t(numSlots));
    for (uint32_t i = 0; i < numSlots; ++i)
        saveSlot(s, self->slotAt(i), self->coldAt(i));
    s.podVector(depNodes);
    s.scalar(uint32_t(depFreeHead));
    s.scalar(uint32_t(depsLive));
    slots.save(s);
    s.scalar(uint64_t(nAllocs));
    s.scalar(uint64_t(nFrees));
}

void
InstArena::load(ckpt::Source &s)
{
    uint32_t saved_slots = s.scalar<uint32_t>();
    if (numSlots > saved_slots)
        throw ckpt::CheckpointError(
            "arena checkpoint is smaller than the current arena "
            "(slots cannot shrink)");
    while (numSlots < saved_slots)
        addSlab();
    for (uint32_t i = 0; i < numSlots; ++i)
        loadSlot(s, slotAt(i), coldAt(i));
    s.podVector(depNodes);
    depFreeHead = s.scalar<uint32_t>();
    depsLive = s.scalar<uint32_t>();
    slots.load(s);
    nAllocs = s.scalar<uint64_t>();
    nFrees = s.scalar<uint64_t>();
}

void
InstArena::free(InstRef ref)
{
    DynInst *inst = tryGet(ref);
    KILO_ASSERT(inst != nullptr, "InstArena::free of stale handle");
    // Any dataflow edges still recorded go back to the pool; the
    // handles they held go stale with the slot anyway.
    releaseDependents(*inst);
    // Bump the generation: every outstanding handle to this slot is
    // now stale and dereferences to null. The last slot skips the
    // generation whose packed encoding would collide with the
    // all-ones null sentinel.
    inst->gen = (inst->gen + 1) & InstRef::GenMask;
    if (ref.index() == InstRef::MaxSlots - 1 &&
        inst->gen == InstRef::GenMask) {
        inst->gen = 0;
    }
    inst->self = InstRef();
    slots.release(ref.index());
    ++nFrees;
}

} // namespace kilo::core
