#include "src/core/inst_arena.hh"

#include "src/util/logging.hh"

namespace kilo::core
{

InstArena::InstArena(uint32_t initial_slots)
{
    uint32_t slabs_needed =
        (initial_slots + SlabSize - 1) / SlabSize;
    if (slabs_needed == 0)
        slabs_needed = 1;
    for (uint32_t i = 0; i < slabs_needed; ++i)
        addSlab();
}

void
InstArena::addSlab()
{
    KILO_ASSERT(numSlots + SlabSize <= InstRef::MaxSlots,
                "InstArena exceeds the %u-slot handle space",
                InstRef::MaxSlots);
    slabs.push_back(std::make_unique<DynInst[]>(SlabSize));
    coldSlabs.push_back(std::make_unique<DynInstCold[]>(SlabSize));
    slots.grow(SlabSize);
    numSlots += SlabSize;
}

uint32_t
InstArena::depAlloc()
{
    if (depFreeHead == DynInst::NoDep) {
        // Grow the edge pool by one slab worth of nodes, chained onto
        // the free list. Hits only until the window's dataflow
        // high-water mark; steady state recycles.
        uint32_t base = uint32_t(depNodes.size());
        KILO_ASSERT(base + SlabSize >= base, "dep pool overflow");
        depNodes.resize(size_t(base) + SlabSize);
        for (uint32_t i = 0; i < SlabSize; ++i) {
            depNodes[base + i].next =
                i + 1 < SlabSize ? base + i + 1 : DynInst::NoDep;
        }
        depFreeHead = base;
    }
    uint32_t node = depFreeHead;
    depFreeHead = depNodes[node].next;
    ++depsLive;
    return node;
}

InstRef
InstArena::alloc()
{
    if (!slots.hasFree())
        addSlab();
    uint32_t idx = slots.alloc();
    DynInst &inst = slotAt(idx);
    KILO_ASSERT(inst.depHead == DynInst::NoDep,
                "recycled slot still holds a dependent chain");
    inst.reset();
    coldAt(idx) = DynInstCold();
    inst.self = InstRef::make(idx, inst.gen & InstRef::GenMask);
    KILO_ASSERT(inst.self.valid(),
                "live handle collided with the null sentinel");
    ++nAllocs;
    return inst.self;
}

void
InstArena::save(ckpt::Sink &s) const
{
    auto *self = const_cast<InstArena *>(this);
    s.scalar(uint32_t(numSlots));
    for (uint32_t base = 0; base < numSlots; base += SlabSize) {
        s.bytes(&self->slotAt(base), SlabSize * sizeof(DynInst));
        s.bytes(&self->coldAt(base), SlabSize * sizeof(DynInstCold));
    }
    s.podVector(depNodes);
    s.scalar(uint32_t(depFreeHead));
    s.scalar(uint32_t(depsLive));
    slots.save(s);
    s.scalar(uint64_t(nAllocs));
    s.scalar(uint64_t(nFrees));
}

void
InstArena::load(ckpt::Source &s)
{
    uint32_t saved_slots = s.scalar<uint32_t>();
    if (numSlots > saved_slots)
        throw ckpt::CheckpointError(
            "arena checkpoint is smaller than the current arena "
            "(slots cannot shrink)");
    while (numSlots < saved_slots)
        addSlab();
    for (uint32_t base = 0; base < numSlots; base += SlabSize) {
        s.bytes(&slotAt(base), SlabSize * sizeof(DynInst));
        s.bytes(&coldAt(base), SlabSize * sizeof(DynInstCold));
    }
    s.podVector(depNodes);
    depFreeHead = s.scalar<uint32_t>();
    depsLive = s.scalar<uint32_t>();
    slots.load(s);
    nAllocs = s.scalar<uint64_t>();
    nFrees = s.scalar<uint64_t>();
}

void
InstArena::free(InstRef ref)
{
    DynInst *inst = tryGet(ref);
    KILO_ASSERT(inst != nullptr, "InstArena::free of stale handle");
    // Any dataflow edges still recorded go back to the pool; the
    // handles they held go stale with the slot anyway.
    releaseDependents(*inst);
    // Bump the generation: every outstanding handle to this slot is
    // now stale and dereferences to null. The last slot skips the
    // generation whose packed encoding would collide with the
    // all-ones null sentinel.
    inst->gen = (inst->gen + 1) & InstRef::GenMask;
    if (ref.index() == InstRef::MaxSlots - 1 &&
        inst->gen == InstRef::GenMask) {
        inst->gen = 0;
    }
    inst->self = InstRef();
    slots.release(ref.index());
    ++nFrees;
}

} // namespace kilo::core
