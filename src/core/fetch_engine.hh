/**
 * @file
 * Front end: prediction, fetch bandwidth and squash-replay redirects.
 *
 * The engine walks the trace window, consulting the branch predictor
 * at every branch. Because the trace is correct-path only, a wrong
 * prediction cannot divert fetch down the wrong path; instead the
 * fetched branch is tagged mispredicted and, when it resolves, the
 * core squashes everything younger and calls redirect() — fetch then
 * replays the same micro-ops, modelling the refill penalty and the
 * wasted work without simulating wrong-path instructions (see
 * DESIGN.md, substitution table).
 *
 * Every DynInst in the machine is born here, allocated from the
 * core's InstArena so that commit/squash recycling is total.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "src/core/dyn_inst.hh"
#include "src/core/inst_arena.hh"
#include "src/core/params.hh"
#include "src/pred/predictor.hh"
#include "src/wload/trace_window.hh"

namespace kilo::core
{

/** Instruction fetch with branch prediction and replay. */
class FetchEngine
{
  public:
    FetchEngine(wload::TraceWindow &window,
                pred::BranchPredictor &predictor,
                const CoreParams &params, InstArena &arena);

    /**
     * Fetch up to @p max_count micro-ops at cycle @p now, allocating
     * fresh DynInsts from the arena and appending their handles to
     * @p out. Honours redirect stalls and the stop-at-taken-branch
     * fetch break. Returns the number fetched.
     */
    int fetch(uint64_t now, int max_count, std::vector<InstRef> &out);

    /**
     * Restart fetch after a squash.
     *
     * @param resume_seq  first sequence number to refetch
     * @param ready_cycle cycle fetch may resume
     * @param history     global history after the resolving branch
     */
    void redirect(uint64_t resume_seq, uint64_t ready_cycle,
                  uint64_t history);

    /** True while the redirect stall is in effect. */
    bool blocked(uint64_t now) const { return now < redirectCycle; }

    /** Cycle fetch resumes after the pending redirect. */
    uint64_t redirectReady() const { return redirectCycle; }

    /** Next sequence number fetch will produce. */
    uint64_t nextSeq() const { return fetchSeq; }

    /** Current speculative global history (for checkpoint tests). */
    uint64_t history() const { return ghr; }

    /**
     * Test-only determinism-audit hook: XOR @p mask into the global
     * history, seeding a single deliberate divergence that the
     * KILOAUD plane must localize (CI kilodiff smoke). Never called
     * outside RunConfig::auditFlipCycle plumbing.
     */
    void debugFlipHistory(uint64_t mask) { ghr ^= mask; }

    /** Serialize / restore fetch position, redirect stall and global
     *  history. @{ */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        s.template scalar<uint64_t>(fetchSeq);
        s.template scalar<uint64_t>(redirectCycle);
        s.template scalar<uint64_t>(ghr);
    }

    template <typename Source>
    void
    load(Source &s)
    {
        fetchSeq = s.template scalar<uint64_t>();
        redirectCycle = s.template scalar<uint64_t>();
        ghr = s.template scalar<uint64_t>();
    }
    /** @} */

  private:
    wload::TraceWindow &window;
    pred::BranchPredictor &predictor;
    const CoreParams &params;
    InstArena &arena;

    uint64_t fetchSeq = 0;
    uint64_t redirectCycle = 0;
    uint64_t ghr = 0;
};

} // namespace kilo::core

