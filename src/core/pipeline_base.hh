/**
 * @file
 * Shared cycle-level pipeline engine.
 *
 * All three machines (OooCore baseline, KiloCore, DkipCore) are built
 * on this base, which owns the front end, register scoreboard, LSQ,
 * memory hierarchy, completion event wheel, and the squash-replay
 * recovery machinery. Subclasses own the instruction window policy:
 * what gates dispatch, which queues issue, and what happens when an
 * instruction reaches the head of the (aging) ROB.
 *
 * The engine is event assisted: wakeup is push-based (producers wake
 * dependents), and when a cycle performs no work and no instruction
 * is ready, simulation jumps to the next completion event, redirect
 * point or subclass deadline. This keeps 400-1000 cycle memory
 * stalls cheap to simulate.
 */

#ifndef KILO_CORE_PIPELINE_BASE_HH
#define KILO_CORE_PIPELINE_BASE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/core/core_stats.hh"
#include "src/core/dyn_inst.hh"
#include "src/core/fetch_engine.hh"
#include "src/core/fu_pool.hh"
#include "src/core/issue_queue.hh"
#include "src/core/lsq.hh"
#include "src/core/params.hh"
#include "src/core/scoreboard.hh"
#include "src/mem/hierarchy.hh"
#include "src/util/event_wheel.hh"
#include "src/wload/trace_window.hh"
#include "src/wload/workload.hh"

namespace kilo::core
{

/** Abstract cycle-level core. */
class PipelineBase
{
  public:
    PipelineBase(const CoreParams &params, wload::Workload &workload,
                 const mem::MemConfig &mem_config);
    virtual ~PipelineBase() = default;

    PipelineBase(const PipelineBase &) = delete;
    PipelineBase &operator=(const PipelineBase &) = delete;

    /** Simulate until @p num_insts more instructions commit. */
    void run(uint64_t num_insts);

    /** Simulate exactly @p n cycles (no idle skipping). */
    void runCycles(uint64_t n);

    /** Statistics of the measured region. */
    CoreStats &stats() { return st; }
    const CoreStats &stats() const { return st; }

    /** Data-memory hierarchy. */
    mem::MemoryHierarchy &memory() { return mem_; }
    const mem::MemoryHierarchy &memory() const { return mem_; }

    /** Zero statistics after warm-up; microarchitectural state and
     *  cache contents are preserved. */
    void resetStats();

    /** Current cycle. */
    uint64_t cycle() const { return now; }

    /** Configuration. */
    const CoreParams &params() const { return prm; }

    /** Number of instructions currently in flight. */
    size_t inFlight() const { return globalOrder.size(); }

  protected:
    /** One simulated cycle; subclasses order their stages here. */
    virtual void tick() = 0;

    /** Stages provided by the base. @{ */
    void stageCommit();
    void stageComplete();
    void stageFetch();
    /** @} */

    /** Per-cycle housekeeping (port counters, queue cycle reset). */
    void beginCycle();

    /** End-of-cycle housekeeping (LSQ retire, cycle advance). */
    void endCycle();

    /** Subclass hooks. @{ */
    virtual void onCommitInst(const DynInstPtr &inst) { (void)inst; }
    virtual void onSquashInst(const DynInstPtr &inst) { (void)inst; }
    virtual void onBranchResolved(const DynInstPtr &inst)
    {
        (void)inst;
    }
    virtual void onRecovered(const DynInstPtr &branch) { (void)branch; }
    /** Extra redirect penalty for @p branch (checkpoint recovery). */
    virtual int recoveryExtraPenalty(const DynInstPtr &branch) const
    {
        (void)branch;
        return 0;
    }
    /** Total ready-but-unissued instructions (idle-skip guard). */
    virtual size_t totalReady() const = 0;
    /** Reset per-cycle state of the subclass's queues. */
    virtual void beginCycleQueues() = 0;
    /** Earliest subclass-specific deadline (aging timers etc.). */
    virtual uint64_t nextTimedWake() const;
    /** @} */

    /** Services for subclasses. @{ */

    /**
     * Rename @p inst (wire producers), define its destination, append
     * it to the in-flight order and allocate its LSQ entry.
     */
    void dispatchCommon(const DynInstPtr &inst);

    /** Schedule completion at now + @p latency. */
    void scheduleCompletion(const DynInstPtr &inst, uint32_t latency);

    /**
     * Issue up to @p width instructions from @p iq using cluster
     * @p fus. Returns the number issued.
     */
    int issueFromQueue(IssueQueue &iq, FuPool &fus, int width);

    /** Make @p inst wait for @p producer (LSQ store dependence). */
    void addDependence(const DynInstPtr &inst,
                       const DynInstPtr &producer);

    /** True when a global memory port is free this cycle. */
    bool memPortAvailable() const
    {
        return portsUsed < prm.memPorts;
    }
    /** @} */

    CoreParams prm;
    CoreStats st;
    wload::Workload &workload;
    wload::TraceWindow trace;
    std::unique_ptr<pred::BranchPredictor> bp;
    FetchEngine fetchEngine;
    mem::MemoryHierarchy mem_;
    Scoreboard scoreboard;
    Lsq lsq;
    EventWheel<DynInstPtr> wheel;

    /** Every in-flight instruction in program order. */
    std::deque<DynInstPtr> globalOrder;

    /** Fetched, not yet dispatched. */
    std::deque<DynInstPtr> fetchBuffer;

    uint64_t now = 0;
    int portsUsed = 0;
    uint64_t activity = 0;     ///< work units this cycle

  private:
    void completeInst(const DynInstPtr &inst);
    void wakeDependents(const DynInstPtr &inst);
    void recoverFromBranch(const DynInstPtr &branch);
    void squashYoungerThan(uint64_t seq);
    bool tryIssueInst(const DynInstPtr &inst, IssueQueue &iq,
                      FuPool &fus);
    void issueCommon(const DynInstPtr &inst, IssueQueue &iq,
                     uint32_t latency);
    void idleSkip();

    std::vector<DynInstPtr> dueBuf;
    std::vector<DynInstPtr> resolvedMispredicts;
    uint64_t lastCommitCycle = 0;
};

} // namespace kilo::core

#endif // KILO_CORE_PIPELINE_BASE_HH
