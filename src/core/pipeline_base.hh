/**
 * @file
 * Shared cycle-level pipeline engine.
 *
 * All three machines (OooCore baseline, KiloCore, DkipCore) are built
 * on this base, which owns the instruction arena, the front end,
 * register scoreboard, LSQ, memory hierarchy, completion event wheel,
 * and the squash-replay recovery machinery. Subclasses own the
 * instruction window policy: what gates dispatch, which queues issue,
 * and what happens when an instruction reaches the head of the
 * (aging) ROB.
 *
 * The engine is event assisted: wakeup is push-based (producers wake
 * dependents), and when a cycle performs no work and no instruction
 * is ready, simulation jumps to the next completion event, redirect
 * point or subclass deadline. This keeps 400-1000 cycle memory
 * stalls cheap to simulate.
 *
 * Instruction lifetime: every DynInst is allocated from the per-core
 * InstArena at fetch and recycled at commit (or at LSQ release for
 * entries that commit while still resident) or at squash. Steady
 * state runs allocation-free; all cross-references are
 * generation-checked handles.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/ckpt/serial.hh"
#include "src/core/core_stats.hh"
#include "src/core/dyn_inst.hh"
#include "src/core/fetch_engine.hh"
#include "src/core/fu_pool.hh"
#include "src/core/inst_arena.hh"
#include "src/core/issue_queue.hh"
#include "src/core/lsq.hh"
#include "src/core/params.hh"
#include "src/core/scoreboard.hh"
#include "src/mem/hierarchy.hh"
#include "src/obs/timeline.hh"
#include "src/stats/registry.hh"
#include "src/util/event_wheel.hh"
#include "src/util/ring_deque.hh"
#include "src/wload/trace_window.hh"
#include "src/wload/workload.hh"

namespace kilo::core
{

/** Abstract cycle-level core. */
class PipelineBase
{
  public:
    PipelineBase(const CoreParams &params, wload::Workload &workload,
                 const mem::MemConfig &mem_config);
    virtual ~PipelineBase() = default;

    PipelineBase(const PipelineBase &) = delete;
    PipelineBase &operator=(const PipelineBase &) = delete;

    /** Simulate until @p num_insts more instructions commit. */
    void run(uint64_t num_insts);

    /**
     * Simulate until @p target_committed total instructions have
     * committed or the current cycle reaches @p cycle_limit,
     * whichever comes first. The tick sequence is identical to
     * run()'s — pausing at a cycle boundary and resuming is
     * bit-equivalent to running straight through — which is what
     * makes sim::Session stepping exact.
     */
    void runUntil(uint64_t target_committed, uint64_t cycle_limit);

    /** Simulate exactly @p n cycles (no idle skipping). */
    void runCycles(uint64_t n);

    /** Statistics of the measured region. */
    CoreStats &stats() { return st; }
    const CoreStats &stats() const { return st; }

    /**
     * Self-describing statistics registered by this core's components
     * (base pipeline, memory hierarchy, decoupled structures).
     */
    const stats::Registry &statsRegistry() const { return statsReg; }

    /** Data-memory hierarchy. */
    mem::MemoryHierarchy &memory() { return mem_; }
    const mem::MemoryHierarchy &memory() const { return mem_; }

    /** Zero statistics after warm-up; microarchitectural state and
     *  cache contents are preserved. */
    void resetStats();

    /** Current cycle. */
    uint64_t cycle() const { return now; }

    /** Configuration. */
    const CoreParams &params() const { return prm; }

    /** Number of instructions currently in flight. */
    size_t inFlight() const { return globalOrder.size(); }

    /** Instruction arena (occupancy and recycling inspection). */
    const InstArena &instArena() const { return arena; }

    /**
     * Attach (or detach, with null) an instruction-event timeline
     * (src/obs/timeline.hh). While attached, every lifecycle point —
     * fetch, rename, issue, complete, commit, squash, slow-lane
     * divert, checkpoint create/restore — is recorded into the ring.
     * Recording is pure observation: it never changes the simulated
     * schedule or any statistic, and with no timeline attached (the
     * default) every site is a single null test, so runs are
     * bit-identical either way (pinned by tests/test_obs.cpp). The
     * timeline must outlive the core or be detached first.
     */
    void attachTimeline(obs::Timeline *t) { timeline = t; }

    /**
     * Arm the test-only determinism-audit divergence seed: at the
     * first runUntil() iteration whose cycle reaches @p cycle, XOR
     * @p mask into the fetch global history, exactly once. Cycle 0
     * disarms. Only the fired/not-fired latch is checkpointed — the
     * arming itself is re-applied by the restoring Session, so a
     * flipped run and a clean run have identical state digests until
     * the flip actually executes (pinned by tests/test_audit.cpp).
     */
    void
    setDebugFlip(uint64_t cycle, uint64_t mask)
    {
        dbgFlipCycle = cycle;
        dbgFlipMask = mask;
    }

    /**
     * Serialize the complete mutable microarchitectural state —
     * cycle, statistics, arena, hierarchy, predictor, every queue —
     * in a fixed order. The workload stream position is stored as a
     * sequence number, not stream bytes: restoreState() repositions
     * the (deterministic) workload via reset + skip. Restoring and
     * continuing is bit-identical to never having paused (pinned by
     * tests/test_checkpoint.cpp). @{
     */
    void saveState(ckpt::Sink &s) const;
    void restoreState(ckpt::Source &s);
    /** @} */

    /** What functional fast-forward keeps warm. */
    enum class FfMode : uint8_t
    {
        Skip,  ///< advance the stream only (structures go stale)
        Warm,  ///< train caches and the branch predictor en route
    };

    /**
     * Run with fetch held until the pipeline is empty (everything in
     * flight commits or squashes). The cycle counter advances as the
     * machine drains; fetch resumes from the next unfetched sequence
     * afterwards.
     */
    void drain();

    /**
     * Functional fast-forward: drain, then advance the instruction
     * stream to sequence @p target_seq without timing simulation. In
     * Warm mode every skipped memory op touches the cache tags
     * (mem::MemoryHierarchy::warmAccess) and every skipped branch
     * trains the predictor and shifts the global history, so the
     * sampled interval that follows starts with warm structures; in
     * Skip mode the stream jumps block-at-a-time (trace replay skips
     * without decoding). No-op when @p target_seq is already behind
     * fetch.
     */
    void fastForward(uint64_t target_seq, FfMode mode);

  protected:
    /** One simulated cycle; subclasses order their stages here. */
    virtual void tick() = 0;

    /** Stages provided by the base. @{ */
    void stageCommit();
    void stageComplete();
    void stageFetch();
    /** @} */

    /** Per-cycle housekeeping (port counters, queue cycle reset). */
    void beginCycle();

    /** End-of-cycle housekeeping (LSQ retire, cycle advance). */
    void endCycle();

    /** Subclass hooks. @{ */
    virtual void onCommitInst(InstRef inst) { (void)inst; }
    virtual void onSquashInst(InstRef inst) { (void)inst; }
    virtual void onBranchResolved(InstRef inst) { (void)inst; }
    virtual void onRecovered(InstRef branch) { (void)branch; }
    /** Extra redirect penalty for @p branch (checkpoint recovery). */
    virtual int recoveryExtraPenalty(InstRef branch) const
    {
        (void)branch;
        return 0;
    }
    /** Total ready-but-unissued instructions (idle-skip guard). */
    virtual size_t totalReady() const = 0;
    /** Reset per-cycle state of the subclass's queues. */
    virtual void beginCycleQueues() = 0;
    /** Earliest subclass-specific deadline (aging timers etc.). */
    virtual uint64_t nextTimedWake() const;
    /** Serialize / restore the subclass's own structures (ROB, issue
     *  queues, LLIBs, checkpoint stack, ...), called after the base
     *  state inside saveState()/restoreState(). */
    virtual void saveDerived(ckpt::Sink &s) const = 0;
    virtual void restoreDerived(ckpt::Source &s) = 0;
    /** @} */

    /** Services for subclasses. @{ */

    /**
     * Rename @p inst (wire producers), define its destination, append
     * it to the in-flight order and allocate its LSQ entry.
     */
    void dispatchCommon(InstRef inst);

    /** Schedule completion at now + @p latency. */
    void scheduleCompletion(InstRef inst, uint32_t latency);

    /**
     * Issue up to @p width instructions from @p iq using cluster
     * @p fus. Returns the number issued.
     */
    int issueFromQueue(IssueQueue &iq, FuPool &fus, int width);

    /** Make @p inst wait for @p producer (LSQ store dependence). */
    void addDependence(InstRef inst, InstRef producer);

    /**
     * The aging ROB drained @p inst (D-KIP/KILO Analyze pop).
     * Recycles the slot when commit already passed and no other
     * structure holds the entry.
     */
    void
    releaseAgingRobEntry(DynInst &inst)
    {
        inst.inRob = false;
        if (inst.retired && !inst.inLsq)
            arena.free(inst.self);
    }

    /** True when a global memory port is free this cycle. */
    bool memPortAvailable() const
    {
        return portsUsed < prm.memPorts;
    }

    /**
     * Enter @p iq into the queue table, assigning the id resident
     * instructions carry as DynInst::iqId. Subclass constructors
     * register every queue, in a fixed order, before any fetch.
     */
    void
    registerIssueQueue(IssueQueue &iq)
    {
        KILO_ASSERT(numIqs < MaxIqs, "issue-queue table full");
        iq.assignId(int8_t(numIqs));
        iqTable[numIqs++] = &iq;
    }

    /** Resolve a DynInst::iqId to its queue (null for -1). */
    IssueQueue *
    queueById(int8_t id) const
    {
        KILO_ASSERT(id < numIqs, "bad issue-queue id %d", id);
        return id >= 0 ? iqTable[id] : nullptr;
    }

    /** Record a timeline event when observability is attached; a
     *  single null test otherwise. */
    void
    obsEvent(obs::EventKind kind, uint64_t seq, uint64_t payload = 0,
             uint8_t a = 0)
    {
        if (timeline)
            timeline->record(now, kind, seq, payload, a);
    }

    /**
     * Machine-specific refinement of the base commit-slot stall
     * classification: D-KIP/KILO reclassify a head parked in a
     * slow-lane structure (LLIB, SLIQ, MP queues) as
     * StallReason::Decoupled.
     */
    virtual StallReason
    refineStallReason(const DynInst &head, StallReason r) const
    {
        (void)head;
        return r;
    }
    /** @} */

    CoreParams prm;
    CoreStats st;
    stats::Registry statsReg;
    wload::Workload &workload;
    wload::TraceWindow trace;
    std::unique_ptr<pred::BranchPredictor> bp;
    InstArena arena;
    FetchEngine fetchEngine;
    mem::MemoryHierarchy mem_;
    Scoreboard scoreboard;
    Lsq lsq;
    EventWheel<InstRef> wheel;

    /** Every in-flight instruction in program order. */
    RingDeque<InstRef> globalOrder;

    /** Fetched, not yet dispatched. */
    RingDeque<InstRef> fetchBuffer;

    uint64_t now = 0;
    int portsUsed = 0;
    uint64_t activity = 0;     ///< work units this cycle

    /** Attached instruction-event ring; null (off) by default. */
    obs::Timeline *timeline = nullptr;

    /** Queue table indexed by DynInst::iqId. */
    static constexpr int MaxIqs = 8;
    IssueQueue *iqTable[MaxIqs] = {};
    int numIqs = 0;

  private:
    void registerBaseStats();

    /**
     * Classify why the commit head is not retiring this cycle
     * (Plane 2, src/obs/DESIGN.md). Called only when commit slots
     * went unused; stageCommit and idleSkip charge every unused slot
     * to the returned reason, which is what makes the
     * "sum(stall_*) + committed == commitWidth * cycles" invariant
     * exact. Non-const for the MSHR probe's lazy expiry only; never
     * changes timing or any statistic.
     */
    StallReason classifyStall();

    void completeInst(InstRef ref);
    void wakeDependents(DynInst &inst);
    void recoverFromBranch(InstRef branch);
    void squashYoungerThan(uint64_t seq);
    bool tryIssueInst(InstRef ref, IssueQueue &iq, FuPool &fus);
    void issueCommon(InstRef ref, IssueQueue &iq, uint32_t latency);
    void idleSkip();

    std::vector<InstRef> dueBuf;
    std::vector<InstRef> resolvedMispredicts;
    std::vector<InstRef> fetchScratch;
    uint64_t lastCommitCycle = 0;

    /** Test-only audit divergence seed (setDebugFlip). Only the
     *  fired latch is serialized; see saveState(). @{ */
    uint64_t dbgFlipCycle = 0;
    uint64_t dbgFlipMask = 1;
    bool dbgFlipDone = false;
    /** @} */

    /** Fetch gate for drain(): no new instruction enters while the
     *  pipeline empties ahead of a fast-forward. */
    bool fetchHold = false;
};

} // namespace kilo::core

