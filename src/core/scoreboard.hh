/**
 * @file
 * Register scoreboard / rename view.
 *
 * Maps each logical register to its youngest in-flight producer (or,
 * when the producer has completed, the cycle its value became
 * available). Because the simulator is trace driven there is no
 * physical register file to run out of — the paper's register
 * management proposals are modelled as capacity constraints on the
 * structures that actually bind registers (the LLRF banks and the MP
 * reservation stations).
 *
 * Producer links are arena handles; a link that goes stale (its
 * instruction committed and was recycled) reads as "no in-flight
 * producer" at the consumer, which is exactly the rename answer.
 */

#pragma once

#include <array>
#include <cstdint>
#include <type_traits>

#include "src/core/dyn_inst.hh"
#include "src/isa/micro_op.hh"

namespace kilo::core
{

/** Rename-time state of one logical register. */
struct RegState
{
    InstRef producer;         ///< youngest in-flight producer, or null
    uint64_t readyCycle = 0;  ///< valid when producer is null/complete
    uint64_t definerSeq = 0;  ///< sequence of the defining instruction
    bool definerValid = false;
};

/** Scoreboard over the unified 64-register logical namespace. */
class Scoreboard
{
  public:
    Scoreboard();

    /** State of register @p reg. */
    const RegState &get(int16_t reg) const;

    /**
     * Record @p inst as the new producer of its destination register,
     * saving the previous mapping into the instruction's cold record
     * for squash restore.
     */
    void define(DynInst &inst, DynInstCold &cold);

    /** Undo define() using the saved previous mapping. */
    void restore(DynInst &inst, DynInstCold &cold);

    /**
     * Note the completion of a producer: if @p inst is still the
     * current mapping of its destination, replace the producer link
     * with its ready cycle (from the cold record).
     */
    void complete(DynInst &inst, const DynInstCold &cold);

    /** Reset every register to ready-at-cycle-0. */
    void clear();

    /** Serialize / restore all register mappings, field by field —
     *  RegState has padding, and indeterminate padding bytes must
     *  never reach a checkpoint payload or a KILOAUD state digest. @{ */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        for (const RegState &r : regs) {
            s.template scalar<InstRef>(r.producer);
            s.template scalar<uint64_t>(r.readyCycle);
            s.template scalar<uint64_t>(r.definerSeq);
            s.template scalar<uint8_t>(r.definerValid ? 1 : 0);
        }
    }

    template <typename Source>
    void
    load(Source &s)
    {
        for (RegState &r : regs) {
            r.producer = s.template scalar<InstRef>();
            r.readyCycle = s.template scalar<uint64_t>();
            r.definerSeq = s.template scalar<uint64_t>();
            r.definerValid = s.template scalar<uint8_t>() != 0;
        }
    }
    /** @} */

  private:
    std::array<RegState, isa::NumRegs> regs;
};

} // namespace kilo::core

