#include "src/core/scoreboard.hh"

#include "src/util/logging.hh"

namespace kilo::core
{

Scoreboard::Scoreboard()
{
    clear();
}

const RegState &
Scoreboard::get(int16_t reg) const
{
    KILO_ASSERT(reg >= 0 && reg < isa::NumRegs,
                "scoreboard register %d out of range", reg);
    return regs[size_t(reg)];
}

void
Scoreboard::define(DynInst &inst, DynInstCold &cold)
{
    int16_t dst = inst.op.dst;
    if (dst == isa::NoReg)
        return;
    RegState &rs = regs[size_t(dst)];
    cold.prevProducer = rs.producer;
    cold.prevReadyCycle = rs.readyCycle;
    cold.prevDefinerSeq = rs.definerSeq;
    cold.prevDefinerValid = rs.definerValid;
    rs.producer = inst.self;
    rs.readyCycle = 0;
    rs.definerSeq = inst.seq;
    rs.definerValid = true;
}

void
Scoreboard::restore(DynInst &inst, DynInstCold &cold)
{
    int16_t dst = inst.op.dst;
    if (dst == isa::NoReg)
        return;
    RegState &rs = regs[size_t(dst)];
    // Only restore if this instruction is still the visible mapping;
    // when squashing youngest-first the definer-sequence check also
    // covers producers that already completed (producer == null).
    if (rs.definerValid && rs.definerSeq == inst.seq) {
        rs.producer = cold.prevProducer;
        rs.readyCycle = cold.prevReadyCycle;
        rs.definerSeq = cold.prevDefinerSeq;
        rs.definerValid = cold.prevDefinerValid;
    }
    cold.prevProducer = InstRef();
}

void
Scoreboard::complete(DynInst &inst, const DynInstCold &cold)
{
    int16_t dst = inst.op.dst;
    if (dst == isa::NoReg)
        return;
    RegState &rs = regs[size_t(dst)];
    if (rs.producer == inst.self) {
        rs.producer = InstRef();
        rs.readyCycle = cold.completeCycle;
    }
}

void
Scoreboard::clear()
{
    for (auto &rs : regs) {
        rs.producer = InstRef();
        rs.readyCycle = 0;
        rs.definerSeq = 0;
        rs.definerValid = false;
    }
}

} // namespace kilo::core
