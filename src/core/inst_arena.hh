/**
 * @file
 * Slab allocator for in-flight instructions.
 *
 * Every core model owns one InstArena; instruction records are
 * recycled at commit/squash instead of reference-counted, so the
 * per-cycle loop never touches the heap once the arena has grown to
 * the window's high-water mark. Slots are addressed by
 * generation-checked 32-bit InstRef handles: freeing a slot bumps its
 * generation, so a handle held across recycling dereferences to null
 * through tryGet() (and trips an assertion through get()), which is
 * exactly the "producer already left the pipeline" answer the
 * dataflow queries need.
 *
 * Each slot is split across two parallel slabs: the hot DynInst array
 * the per-cycle loops walk, and a DynInstCold array (timestamps past
 * fetch, branch state, producer links, scoreboard snapshots) reached
 * through cold() only at the pipeline events that need it. The arena
 * also owns the dependent-edge pool: producers record their waiting
 * consumers as intrusive chains of pooled DepNodes headed at
 * DynInst::depHead, replacing the per-instruction std::vector — edge
 * build-up and wakeup walk are allocation-free in steady state.
 *
 * Timing simulators with pooled instruction records (mcsim et al.)
 * use the same structure; the slab layout keeps record addresses
 * stable across growth so references held by the arena itself never
 * move.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/ckpt/serial.hh"
#include "src/core/dyn_inst.hh"
#include "src/util/free_list.hh"
#include "src/util/logging.hh"

namespace kilo::core
{

/** Growable pool of DynInst slots with generation-checked handles. */
class InstArena
{
  public:
    /** Slots added per growth step (power of two). */
    static constexpr uint32_t SlabSize = 1024;

    /** One dataflow edge: a waiting dependent plus the chain link. */
    struct DepNode
    {
        InstRef dep;
        uint32_t next = DynInst::NoDep;
    };

    explicit InstArena(uint32_t initial_slots = SlabSize);

    InstArena(const InstArena &) = delete;
    InstArena &operator=(const InstArena &) = delete;

    /**
     * Allocate a slot and reset its instruction (hot and cold halves)
     * to the fetched-fresh state. Grows by one slab when the pool is
     * exhausted.
     */
    InstRef alloc();

    /** Recycle @p ref's slot, returning any dependent chain it still
     *  holds to the pool. The handle (and every copy of it) goes
     *  stale immediately. @pre isLive(ref) */
    void free(InstRef ref);

    /** Dereference a live handle. Panics on null or stale handles. */
    DynInst &
    get(InstRef ref)
    {
        DynInst *inst = tryGet(ref);
        KILO_ASSERT(inst != nullptr,
                    "stale or null InstRef (index %u gen %u)",
                    ref.index(), ref.gen());
        return *inst;
    }

    const DynInst &
    get(InstRef ref) const
    {
        return const_cast<InstArena *>(this)->get(ref);
    }

    /**
     * Dereference, tolerating staleness: returns null when @p ref is
     * null or its slot has been recycled since the handle was taken.
     */
    DynInst *
    tryGet(InstRef ref)
    {
        if (!ref.valid())
            return nullptr;
        uint32_t idx = ref.index();
        if (idx >= numSlots)
            return nullptr;
        DynInst &inst = slotAt(idx);
        return (inst.gen & InstRef::GenMask) == ref.gen() ? &inst
                                                          : nullptr;
    }

    const DynInst *
    tryGet(InstRef ref) const
    {
        return const_cast<InstArena *>(this)->tryGet(ref);
    }

    /** Cold half of a live slot. Panics on null or stale handles. */
    DynInstCold &
    cold(InstRef ref)
    {
        get(ref); // liveness check
        return coldAt(ref.index());
    }

    const DynInstCold &
    cold(InstRef ref) const
    {
        return const_cast<InstArena *>(this)->cold(ref);
    }

    /** Cold half of an instruction already obtained from get() —
     *  skips the redundant liveness check. */
    DynInstCold &
    coldOf(const DynInst &inst)
    {
        return coldAt(inst.self.index());
    }

    const DynInstCold &
    coldOf(const DynInst &inst) const
    {
        return const_cast<InstArena *>(this)->coldOf(inst);
    }

    /** True when @p ref names a live (allocated, same-gen) slot. */
    bool isLive(InstRef ref) const { return tryGet(ref) != nullptr; }

    /** Dependent-chain pool. @{ */

    /** Link @p dep onto @p producer's dependent chain. */
    void
    addDependent(DynInst &producer, InstRef dep)
    {
        uint32_t node = depAlloc();
        depNodes[node].dep = dep;
        depNodes[node].next = producer.depHead;
        producer.depHead = node;
    }

    /** Node by pool index (valid while the chain is held). */
    const DepNode &depNode(uint32_t idx) const { return depNodes[idx]; }

    /** Return one node to the pool (chain walkers freeing as they
     *  go); the caller owns relinking. */
    void
    depFree(uint32_t idx)
    {
        depNodes[idx].dep = InstRef();
        depNodes[idx].next = depFreeHead;
        depFreeHead = idx;
        --depsLive;
    }

    /** Return @p inst's whole chain to the pool. */
    void
    releaseDependents(DynInst &inst)
    {
        uint32_t node = inst.depHead;
        inst.depHead = DynInst::NoDep;
        while (node != DynInst::NoDep) {
            uint32_t next = depNodes[node].next;
            depFree(node);
            node = next;
        }
    }

    /** Dataflow edges currently held by live chains. */
    uint32_t depEdgesLive() const { return depsLive; }
    /** @} */

    /** Slots currently allocated. */
    uint32_t live() const { return slots.numAllocated(); }

    /** Total slots (allocated + free). */
    uint32_t capacity() const { return numSlots; }

    /** Lifetime allocation count (recycled slots count again). */
    uint64_t totalAllocs() const { return nAllocs; }

    /** Lifetime free count. */
    uint64_t totalFrees() const { return nFrees; }

    /**
     * Serialize / restore the whole pool: every slot (hot and cold
     * halves, free slots included so generations survive), the
     * dependent-edge pool and the free list. load() grows a smaller
     * arena to match and throws CheckpointError when the current
     * arena is already larger than the image (slots cannot shrink).
     * @{
     */
    void save(ckpt::Sink &s) const;
    void load(ckpt::Source &s);
    /** @} */

  private:
    DynInst &
    slotAt(uint32_t idx)
    {
        return slabs[idx / SlabSize][idx % SlabSize];
    }

    DynInstCold &
    coldAt(uint32_t idx)
    {
        return coldSlabs[idx / SlabSize][idx % SlabSize];
    }

    void addSlab();
    uint32_t depAlloc();

    std::vector<std::unique_ptr<DynInst[]>> slabs;
    std::vector<std::unique_ptr<DynInstCold[]>> coldSlabs;

    /** Dependent-edge pool: grown in slab-sized steps, recycled
     *  through an intrusive LIFO free list threaded via next. */
    std::vector<DepNode> depNodes;
    uint32_t depFreeHead = DynInst::NoDep;
    uint32_t depsLive = 0;

    /** FIFO recycling: a freed slot rests behind every other free
     *  slot, so the generation of any one slot advances as slowly as
     *  the pool allows (wrap needs ~pool-size x 4096 frees while a
     *  handle is held). */
    FreeList slots{0, FreeList::Order::Fifo};
    uint32_t numSlots = 0;
    uint64_t nAllocs = 0;
    uint64_t nFrees = 0;
};

} // namespace kilo::core

