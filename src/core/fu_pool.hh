/**
 * @file
 * Functional-unit pool with per-class unit counts.
 *
 * Matches the paper's Table 2 resources: N integer ALUs, one integer
 * multiplier, N FP adders and one FP multiplier/divider. Pipelined
 * classes occupy a unit for one issue slot; the FP divider is
 * unpipelined and blocks its unit for the full latency.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "src/isa/micro_op.hh"

namespace kilo::core
{

/** Unit counts of one execution cluster. */
struct FuConfig
{
    int intAlu = 4;       ///< also executes branches
    int intMul = 1;
    int fpAdd = 4;
    int fpMulDiv = 1;     ///< FP multiply (pipelined) and divide (not)

    /** The paper's Cache Processor / R10000 cluster. */
    static FuConfig cacheProcessor() { return FuConfig(); }

    /** The paper's integer Memory Processor cluster. */
    static FuConfig
    intMemProcessor()
    {
        FuConfig f;
        f.fpAdd = 0;
        f.fpMulDiv = 0;
        return f;
    }

    /** The paper's FP Memory Processor cluster. */
    static FuConfig
    fpMemProcessor()
    {
        FuConfig f;
        f.intAlu = 1;     // branch resolution and address generation
        f.intMul = 0;
        return f;
    }
};

/** Execution-bandwidth tracker for one cluster. */
class FuPool
{
  public:
    explicit FuPool(const FuConfig &cfg);

    /**
     * Try to claim a unit for an op of class @p cls at cycle @p now
     * with execution latency @p latency.
     * @return true and reserves the unit on success.
     */
    bool tryAcquire(isa::OpClass cls, uint64_t now, uint32_t latency);

    /** True when @p cls needs a functional unit at all. */
    static bool needsUnit(isa::OpClass cls);

    /** Configuration. */
    const FuConfig &config() const { return cfg; }

    /** Serialize / restore per-unit busy-until timestamps (matters
     *  for the unpipelined FP divider mid-divide). @{ */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        s.podVector(intAlu.busyUntil);
        s.podVector(intMul.busyUntil);
        s.podVector(fpAdd.busyUntil);
        s.podVector(fpMulDiv.busyUntil);
    }

    template <typename Source>
    void
    load(Source &s)
    {
        s.podVector(intAlu.busyUntil);
        s.podVector(intMul.busyUntil);
        s.podVector(fpAdd.busyUntil);
        s.podVector(fpMulDiv.busyUntil);
    }
    /** @} */

  private:
    /** Unit group: busyUntil per unit. */
    struct Group
    {
        std::vector<uint64_t> busyUntil;
        bool pipelined = true;
    };

    Group *groupFor(isa::OpClass cls);
    static bool acquireFrom(Group &g, uint64_t now, uint64_t until);

    FuConfig cfg;
    Group intAlu;
    Group intMul;
    Group fpAdd;
    Group fpMulDiv;
};

} // namespace kilo::core

