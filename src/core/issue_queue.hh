/**
 * @file
 * Issue queue with selectable scheduling policy.
 *
 * Out-of-order mode models a CAM-based queue: any ready entry can be
 * selected, oldest first. In-order mode models the paper's INO
 * configurations (and the Memory Processor's default reservation
 * stations): only the head may issue, and a blocked head stalls the
 * queue for the cycle.
 *
 * Wakeup is event driven — producers call markReady() through the
 * core when the last outstanding source completes — so selection cost
 * does not scale with queue capacity, which keeps the 4096-entry
 * limit-study configurations fast.
 *
 * Entries are arena handles; the lazy-deletion ready heap tolerates
 * handles that went stale after a squash recycled their slots.
 */

#ifndef KILO_CORE_ISSUE_QUEUE_HH
#define KILO_CORE_ISSUE_QUEUE_HH

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "src/core/dyn_inst.hh"
#include "src/core/inst_arena.hh"
#include "src/util/ring_deque.hh"

namespace kilo::core
{

/** Scheduling policy of an issue queue. */
enum class SchedPolicy : uint8_t
{
    InOrder,
    OutOfOrder,
};

/** Name for table output ("INO"/"OOO"). */
const char *schedPolicyName(SchedPolicy policy);

/** Issue queue / reservation-station model. */
class IssueQueue
{
  public:
    IssueQueue(std::string name, size_t capacity, SchedPolicy policy,
               InstArena &arena);

    const std::string &name() const { return label; }
    SchedPolicy policy() const { return sched; }
    size_t capacity() const { return cap; }
    size_t size() const { return count; }
    bool full() const { return count >= cap; }
    bool empty() const { return count == 0; }

    /** Number of ready, unissued entries (idle-skip support). */
    size_t numReady() const { return readyCount; }

    /** Reset per-cycle selection state; call once per cycle. */
    void beginCycle();

    /** Add an instruction; sets inst->iq. @pre !full() */
    void insert(InstRef ref);

    /** Wakeup: @p ref (resident here) became ready. */
    void markReady(InstRef ref);

    /**
     * Select the next issue candidate under the policy, removing it
     * from the ready set. Returns null when nothing can issue this
     * cycle.
     */
    InstRef popReady(uint64_t now);

    /** Candidate could not issue (structural hazard); retry later. */
    void requeue(InstRef ref);

    /**
     * Candidate turned out not ready after all (e.g. blocked on an
     * older store); it re-enters via markReady() later.
     */
    void droppedNotReady(InstRef ref);

    /** Candidate issued; remove it from the queue. */
    void removeIssued(InstRef ref);

    /**
     * Remove @p ref without issuing (Analyze moving it to the LLIB).
     */
    void erase(InstRef ref);

    /** @p ref (resident here) was squashed; youngest-first order. */
    void notifySquashed(InstRef ref);

    /** Oldest entry of an in-order queue, null otherwise (debug). */
    InstRef debugFront() const;

  private:
    struct OlderSeq
    {
        bool
        operator()(const std::pair<uint64_t, InstRef> &a,
                   const std::pair<uint64_t, InstRef> &b) const
        {
            return a.first > b.first; // min-heap on sequence number
        }
    };

    void eraseFromFifo(InstRef ref);

    InstArena &arena;
    std::string label;
    size_t cap;
    SchedPolicy sched;
    size_t count = 0;
    size_t readyCount = 0;

    /** OutOfOrder: lazy min-heap of (seq, handle) ready entries. */
    std::priority_queue<std::pair<uint64_t, InstRef>,
                        std::vector<std::pair<uint64_t, InstRef>>,
                        OlderSeq>
        readyHeap;
    std::vector<std::pair<uint64_t, InstRef>> deferred;

    /** InOrder: entries in program order; head-only selection. */
    RingDeque<InstRef> fifo;
    bool stalledThisCycle = false;
};

} // namespace kilo::core

#endif // KILO_CORE_ISSUE_QUEUE_HH
