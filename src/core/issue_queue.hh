/**
 * @file
 * Issue queue with selectable scheduling policy.
 *
 * Out-of-order mode models a CAM-based queue: any ready entry can be
 * selected, oldest first. In-order mode models the paper's INO
 * configurations (and the Memory Processor's default reservation
 * stations): only the head may issue, and a blocked head stalls the
 * queue for the cycle.
 *
 * Wakeup is event driven — producers call markReady() through the
 * core when the last outstanding source completes — so selection cost
 * does not scale with queue capacity, which keeps the 4096-entry
 * limit-study configurations fast.
 */

#ifndef KILO_CORE_ISSUE_QUEUE_HH
#define KILO_CORE_ISSUE_QUEUE_HH

#include <cstdint>
#include <deque>
#include <queue>
#include <string>
#include <vector>

#include "src/core/dyn_inst.hh"

namespace kilo::core
{

/** Scheduling policy of an issue queue. */
enum class SchedPolicy : uint8_t
{
    InOrder,
    OutOfOrder,
};

/** Name for table output ("INO"/"OOO"). */
const char *schedPolicyName(SchedPolicy policy);

/** Issue queue / reservation-station model. */
class IssueQueue
{
  public:
    IssueQueue(std::string name, size_t capacity, SchedPolicy policy);

    const std::string &name() const { return label; }
    SchedPolicy policy() const { return sched; }
    size_t capacity() const { return cap; }
    size_t size() const { return count; }
    bool full() const { return count >= cap; }
    bool empty() const { return count == 0; }

    /** Number of ready, unissued entries (idle-skip support). */
    size_t numReady() const { return readyCount; }

    /** Reset per-cycle selection state; call once per cycle. */
    void beginCycle();

    /** Add an instruction; sets inst->iq. @pre !full() */
    void insert(const DynInstPtr &inst);

    /** Wakeup: @p inst (resident here) became ready. */
    void markReady(const DynInstPtr &inst);

    /**
     * Select the next issue candidate under the policy, removing it
     * from the ready set. Returns null when nothing can issue this
     * cycle.
     */
    DynInstPtr popReady(uint64_t now);

    /** Candidate could not issue (structural hazard); retry later. */
    void requeue(const DynInstPtr &inst);

    /**
     * Candidate turned out not ready after all (e.g. blocked on an
     * older store); it re-enters via markReady() later.
     */
    void droppedNotReady(const DynInstPtr &inst);

    /** Candidate issued; remove it from the queue. */
    void removeIssued(const DynInstPtr &inst);

    /**
     * Remove @p inst without issuing (Analyze moving it to the LLIB).
     */
    void erase(const DynInstPtr &inst);

    /** @p inst (resident here) was squashed; youngest-first order. */
    void notifySquashed(const DynInstPtr &inst);

    /** Oldest entry of an in-order queue, null otherwise (debug). */
    DynInstPtr debugFront() const;

  private:
    struct OlderSeq
    {
        bool
        operator()(const DynInstPtr &a, const DynInstPtr &b) const
        {
            return a->seq > b->seq; // min-heap on sequence number
        }
    };

    void eraseFromFifo(const DynInstPtr &inst);

    std::string label;
    size_t cap;
    SchedPolicy sched;
    size_t count = 0;
    size_t readyCount = 0;

    /** OutOfOrder: lazy min-heap of ready entries. */
    std::priority_queue<DynInstPtr, std::vector<DynInstPtr>, OlderSeq>
        readyHeap;
    std::vector<DynInstPtr> deferred;

    /** InOrder: entries in program order; head-only selection. */
    std::deque<DynInstPtr> fifo;
    bool stalledThisCycle = false;
};

} // namespace kilo::core

#endif // KILO_CORE_ISSUE_QUEUE_HH
