/**
 * @file
 * Issue queue with selectable scheduling policy.
 *
 * Out-of-order mode models a CAM-based queue: any ready entry can be
 * selected, oldest first. In-order mode models the paper's INO
 * configurations (and the Memory Processor's default reservation
 * stations): only the head may issue, and a blocked head stalls the
 * queue for the cycle.
 *
 * Wakeup is event driven — producers call markReady() through the
 * core when the last outstanding source completes — so selection cost
 * does not scale with queue capacity, which keeps the 4096-entry
 * limit-study configurations fast.
 *
 * Entries are arena handles; the lazy-deletion ready heap tolerates
 * handles that went stale after a squash recycled their slots.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/ckpt/serial.hh"
#include "src/core/dyn_inst.hh"
#include "src/core/inst_arena.hh"
#include "src/util/ring_deque.hh"

namespace kilo::core
{

/** Scheduling policy of an issue queue. */
enum class SchedPolicy : uint8_t
{
    InOrder,
    OutOfOrder,
};

/** Name for table output ("INO"/"OOO"). */
const char *schedPolicyName(SchedPolicy policy);

/** Issue queue / reservation-station model. */
class IssueQueue
{
  public:
    IssueQueue(std::string name, size_t capacity, SchedPolicy policy,
               InstArena &arena);

    const std::string &name() const { return label; }
    SchedPolicy policy() const { return sched; }

    /**
     * Table id of this queue in the owning core (what resident
     * instructions carry as DynInst::iqId). Assigned once by
     * PipelineBase::registerIssueQueue before any insert.
     */
    int8_t id() const { return id_; }
    void assignId(int8_t id) { id_ = id; }

    size_t capacity() const { return cap; }
    size_t size() const { return count; }
    bool full() const { return count >= cap; }
    bool empty() const { return count == 0; }

    /** Number of ready, unissued entries (idle-skip support). */
    size_t numReady() const { return readyCount; }

    /** Reset per-cycle selection state; call once per cycle. */
    void beginCycle();

    /** Add an instruction; sets inst.iqId. @pre !full() */
    void insert(InstRef ref);

    /** Wakeup: @p ref (resident here) became ready. */
    void markReady(InstRef ref);

    /**
     * Select the next issue candidate under the policy, removing it
     * from the ready set. Returns null when nothing can issue this
     * cycle.
     */
    InstRef popReady(uint64_t now);

    /** Candidate could not issue (structural hazard); retry later. */
    void requeue(InstRef ref);

    /**
     * Candidate turned out not ready after all (e.g. blocked on an
     * older store); it re-enters via markReady() later.
     */
    void droppedNotReady(InstRef ref);

    /** Candidate issued; remove it from the queue. */
    void removeIssued(InstRef ref);

    /**
     * Remove @p ref without issuing (Analyze moving it to the LLIB).
     */
    void erase(InstRef ref);

    /** @p ref (resident here) was squashed; youngest-first order. */
    void notifySquashed(InstRef ref);

    /** Oldest entry of an in-order queue, null otherwise (debug). */
    InstRef debugFront() const;

    /** Serialize / restore the complete queue state. Capacity,
     *  policy and id are configuration; load() asserts they match. @{ */
    void save(ckpt::Sink &s) const;
    void load(ckpt::Source &s);
    /** @} */

  private:
    /** (seq, handle) ready-heap entry; POD so it serializes. */
    struct ReadyEntry
    {
        uint64_t seq = 0;
        InstRef ref;
    };

    struct OlderSeq
    {
        bool
        operator()(const ReadyEntry &a, const ReadyEntry &b) const
        {
            return a.seq > b.seq; // min-heap on sequence number
        }
    };

    void eraseFromFifo(InstRef ref);

    void heapPush(ReadyEntry entry);
    void heapPop();

    InstArena &arena;
    std::string label;
    size_t cap;
    SchedPolicy sched;
    int8_t id_ = -1;
    size_t count = 0;
    size_t readyCount = 0;

    /**
     * OutOfOrder: lazy min-heap of (seq, handle) ready entries, kept
     * as a raw heap-ordered vector (std::push_heap/pop_heap) so the
     * checkpoint layer can serialize it verbatim. Sequence numbers
     * are unique, so pop order — hence simulated behaviour — is
     * independent of the arrangement of equal-priority entries.
     */
    std::vector<ReadyEntry> readyHeap;
    std::vector<ReadyEntry> deferred;

    /** InOrder: entries in program order; head-only selection. */
    RingDeque<InstRef> fifo;
    bool stalledThisCycle = false;
};

} // namespace kilo::core

