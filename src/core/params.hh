/**
 * @file
 * Core configuration parameters.
 *
 * Defaults reproduce Table 2 / Table 3 of the paper; the preset
 * builders in src/sim/config.hh derive the evaluated machines
 * (R10-64, R10-256, KILO-1024, D-KIP-2048, ...) from this block.
 */

#pragma once

#include <cstddef>
#include <string>

#include "src/core/fu_pool.hh"
#include "src/core/issue_queue.hh"
#include "src/pred/predictor.hh"

namespace kilo::core
{

/** Parameters shared by every core model. */
struct CoreParams
{
    std::string name = "ooo";

    /** Pipeline widths (the paper's 4-way machines). @{ */
    int fetchWidth = 4;
    int dispatchWidth = 4;
    int commitWidth = 4;
    int issueWidthInt = 4;
    int issueWidthFp = 4;
    /** @} */

    /** Front end. @{ */
    int frontEndDepth = 4;       ///< fetch-to-dispatch stages
    int mispredictPenalty = 8;   ///< redirect-to-refetch cycles
    bool fetchStopOnTaken = true;
    size_t fetchBufferSize = 32;
    pred::BpKind predictor = pred::BpKind::Perceptron;
    /** @} */

    /** Window and queues. @{ */
    size_t robSize = 64;
    size_t intIqSize = 40;
    size_t fpIqSize = 40;
    SchedPolicy intPolicy = SchedPolicy::OutOfOrder;
    SchedPolicy fpPolicy = SchedPolicy::OutOfOrder;
    /** @} */

    /** Memory interface. @{ */
    size_t lsqSize = 512;
    int memPorts = 2;            ///< global R/W ports per cycle
    /** @} */

    /** Execution resources. */
    FuConfig fus = FuConfig::cacheProcessor();
};

} // namespace kilo::core

