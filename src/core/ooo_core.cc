#include "src/core/ooo_core.hh"

#include "src/util/logging.hh"

namespace kilo::core
{

OooCore::OooCore(const CoreParams &params, wload::Workload &wl,
                 const mem::MemConfig &mem_config)
    : PipelineBase(params, wl, mem_config),
      rob(params.robSize),
      intIq("intIQ", params.intIqSize, params.intPolicy, arena),
      fpIq("fpIQ", params.fpIqSize, params.fpPolicy, arena),
      fus(params.fus)
{
    registerIssueQueue(intIq);
    registerIssueQueue(fpIq);
}

IssueQueue &
OooCore::queueFor(const DynInst &inst)
{
    return isa::isFpClass(inst.op.cls) ? fpIq : intIq;
}

void
OooCore::beginCycleQueues()
{
    intIq.beginCycle();
    fpIq.beginCycle();
}

size_t
OooCore::totalReady() const
{
    return intIq.numReady() + fpIq.numReady();
}

void
OooCore::stageIssue()
{
    issueFromQueue(intIq, fus, prm.issueWidthInt);
    issueFromQueue(fpIq, fus, prm.issueWidthFp);
}

void
OooCore::stageDispatch()
{
    int budget = prm.dispatchWidth;
    while (budget > 0 && !fetchBuffer.empty()) {
        InstRef ref = fetchBuffer.front();
        DynInst &inst = arena.get(ref);
        if (now < inst.fetchCycle + uint64_t(prm.frontEndDepth))
            break;
        if (rob.full()) {
            ++st.dispatchBlockedRob;
            break;
        }
        if (inst.op.isMem() && lsq.full()) {
            ++st.dispatchBlockedLsq;
            break;
        }
        IssueQueue &iq = queueFor(inst);
        bool needs_iq = inst.op.cls != isa::OpClass::Nop;
        if (needs_iq && iq.full()) {
            ++st.dispatchBlockedIq;
            break;
        }

        fetchBuffer.pop_front();
        dispatchCommon(ref);
        rob.pushBack(ref);
        inst.inRob = true;
        if (needs_iq) {
            iq.insert(ref);
        } else {
            // Nops complete without occupying any queue.
            inst.issued = true;
            arena.coldOf(inst).issueCycle = now;
            scheduleCompletion(ref, 1);
        }
        --budget;
    }
}

void
OooCore::onCommitInst(InstRef inst)
{
    KILO_ASSERT(!rob.empty() && rob.front() == inst,
                "ROB head does not match committing instruction");
    rob.popFront();
    arena.get(inst).inRob = false;
}

void
OooCore::onSquashInst(InstRef inst)
{
    KILO_ASSERT(!rob.empty() && rob.back() == inst,
                "ROB tail does not match squashed instruction");
    rob.popBack();
    arena.get(inst).inRob = false;
}

void
OooCore::tick()
{
    beginCycle();
    stageCommit();
    stageComplete();
    stageIssue();
    stageDispatch();
    stageFetch();
    endCycle();
}


void
OooCore::saveDerived(ckpt::Sink &s) const
{
    rob.save(s);
    intIq.save(s);
    fpIq.save(s);
    fus.save(s);
}

void
OooCore::restoreDerived(ckpt::Source &s)
{
    rob.load(s);
    intIq.load(s);
    fpIq.load(s);
    fus.load(s);
}

} // namespace kilo::core
