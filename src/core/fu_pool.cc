#include "src/core/fu_pool.hh"

#include "src/util/logging.hh"

namespace kilo::core
{

FuPool::FuPool(const FuConfig &config)
    : cfg(config)
{
    intAlu.busyUntil.assign(size_t(cfg.intAlu), 0);
    intMul.busyUntil.assign(size_t(cfg.intMul), 0);
    fpAdd.busyUntil.assign(size_t(cfg.fpAdd), 0);
    fpMulDiv.busyUntil.assign(size_t(cfg.fpMulDiv), 0);
}

bool
FuPool::needsUnit(isa::OpClass cls)
{
    switch (cls) {
      case isa::OpClass::Load:
      case isa::OpClass::Store:
      case isa::OpClass::Nop:
        return false;
      default:
        return true;
    }
}

FuPool::Group *
FuPool::groupFor(isa::OpClass cls)
{
    switch (cls) {
      case isa::OpClass::IntAlu:
      case isa::OpClass::Branch:
        return &intAlu;
      case isa::OpClass::IntMul:
        return &intMul;
      case isa::OpClass::FpAdd:
        return &fpAdd;
      case isa::OpClass::FpMul:
      case isa::OpClass::FpDiv:
        return &fpMulDiv;
      default:
        return nullptr;
    }
}

bool
FuPool::acquireFrom(Group &g, uint64_t now, uint64_t until)
{
    for (auto &busy : g.busyUntil) {
        if (busy <= now) {
            busy = until;
            return true;
        }
    }
    return false;
}

bool
FuPool::tryAcquire(isa::OpClass cls, uint64_t now, uint32_t latency)
{
    Group *g = groupFor(cls);
    if (!g)
        return true;          // loads/stores/nops need no unit here
    if (g->busyUntil.empty())
        return false;         // cluster lacks this unit type entirely
    // Pipelined classes free the issue slot next cycle; the
    // unpipelined FP divide holds its unit for the whole operation.
    uint64_t until =
        (cls == isa::OpClass::FpDiv) ? now + latency : now + 1;
    return acquireFrom(*g, now, until);
}

} // namespace kilo::core
