#include "src/core/fetch_engine.hh"

namespace kilo::core
{

FetchEngine::FetchEngine(wload::TraceWindow &trace_window,
                         pred::BranchPredictor &branch_predictor,
                         const CoreParams &core_params,
                         InstArena &inst_arena)
    : window(trace_window), predictor(branch_predictor),
      params(core_params), arena(inst_arena)
{}

int
FetchEngine::fetch(uint64_t now, int max_count,
                   std::vector<InstRef> &out)
{
    if (blocked(now))
        return 0;

    int fetched = 0;
    for (int i = 0; i < max_count; ++i) {
        const isa::MicroOp &op = window.op(fetchSeq);

        InstRef ref = arena.alloc();
        DynInst &inst = arena.get(ref);
        inst.op = op;
        inst.seq = fetchSeq;
        inst.fetchCycle = now;
        ++fetchSeq;

        DynInstCold &cold = arena.coldOf(inst);
        cold.pc = op.pc;

        if (op.isBranch()) {
            cold.target = op.target;
            cold.historySnapshot = ghr;
            bool pred_taken = predictor.isPerfect()
                ? op.taken
                : predictor.lookup(op.pc, ghr);
            inst.predTaken = pred_taken;
            inst.mispredicted = pred_taken != op.taken;
            // Correct-path fetch: speculative history tracks actual
            // outcomes (see DESIGN.md on squash-replay).
            ghr = (ghr << 1) | (op.taken ? 1 : 0);
        }

        out.push_back(ref);
        ++fetched;

        // A taken branch ends the fetch group.
        if (op.isBranch() && op.taken && params.fetchStopOnTaken)
            break;
    }
    return fetched;
}

void
FetchEngine::redirect(uint64_t resume_seq, uint64_t ready_cycle,
                      uint64_t history)
{
    fetchSeq = resume_seq;
    redirectCycle = ready_cycle;
    ghr = history;
}

} // namespace kilo::core
