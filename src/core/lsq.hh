/**
 * @file
 * Unified load/store queue (the Address Processor's storage).
 *
 * Entries are allocated at dispatch in program order and released
 * from the head once complete, so capacity pressure from long-latency
 * loads is modelled. Disambiguation is oracle (the trace carries
 * exact addresses): a load may issue as soon as its address register
 * is ready unless an older, unexecuted store to the same location
 * exists, in which case the load blocks on that store and forwards
 * from it when it executes. This is the behaviour the paper assumes
 * from the scalable LSQ proposals it cites ([12]-[14]).
 *
 * The store index is an open hash over fixed buckets with intrusive
 * chains through DynInst::lsqBucketNext (newest first, i.e. in
 * descending sequence order), so steady-state store traffic touches
 * no allocator. The LSQ also performs the deferred recycling of
 * instructions that commit while still holding an entry.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "src/core/dyn_inst.hh"
#include "src/core/inst_arena.hh"
#include "src/util/logging.hh"
#include "src/util/ring_deque.hh"

namespace kilo::core
{

/** Result of a load's disambiguation check. */
struct LoadCheck
{
    enum class Kind : uint8_t
    {
        Memory,    ///< no conflict; access the hierarchy
        Forward,   ///< forward from an executed older store
        Blocked,   ///< wait for an older store to execute
    };

    Kind kind = Kind::Memory;
    InstRef store;  ///< conflicting store for Forward/Blocked
};

/** Unified LSQ model. */
class Lsq
{
  public:
    Lsq(size_t capacity, InstArena &arena);

    size_t capacity() const { return cap; }
    size_t size() const { return entries.size(); }
    bool full() const { return entries.size() >= cap; }

    /** Allocate an entry at dispatch (program order). */
    void insert(InstRef ref);

    /** Disambiguate @p load against older stores. */
    LoadCheck checkLoad(const DynInst &load) const;

    /**
     * Release completed entries from the head, recycling any that
     * already committed (their slot free was deferred to here).
     */
    void retireCompleted();

    /** @p ref was squashed; must be the youngest entry. */
    void notifySquashed(InstRef ref);

    /** Total store-to-load forwards observed. */
    uint64_t forwards() const { return nForwards; }

    /** Count one forward (called by the core on a Forward result). */
    void countForward() { ++nForwards; }

    /** Serialize / restore entries, the store index and the forward
     *  counter. Capacity is configuration. @{ */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        entries.save(s);
        s.podVector(buckets);
        s.template scalar<uint64_t>(nForwards);
    }

    template <typename Source>
    void
    load(Source &s)
    {
        entries.load(s);
        s.podVector(buckets);
        KILO_ASSERT(buckets.size() == NumBuckets,
                    "Lsq checkpoint bucket-count mismatch");
        nForwards = s.template scalar<uint64_t>();
    }
    /** @} */

  private:
    static constexpr size_t NumBuckets = 1024; // power of two

    static uint64_t keyOf(uint64_t addr) { return addr >> 3; }

    static size_t
    bucketOf(uint64_t key)
    {
        // Fibonacci hash spreads the granule key over the buckets.
        return size_t((key * 0x9E3779B97F4A7C15ull) >> 32) &
               (NumBuckets - 1);
    }

    void removeFromIndex(DynInst &store);

    InstArena &arena;
    size_t cap;
    RingDeque<InstRef> entries;
    /** Bucket heads: newest store in the bucket's intrusive chain. */
    std::vector<InstRef> buckets;
    uint64_t nForwards = 0;
};

} // namespace kilo::core

