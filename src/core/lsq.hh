/**
 * @file
 * Unified load/store queue (the Address Processor's storage).
 *
 * Entries are allocated at dispatch in program order and released
 * from the head once complete, so capacity pressure from long-latency
 * loads is modelled. Disambiguation is oracle (the trace carries
 * exact addresses): a load may issue as soon as its address register
 * is ready unless an older, unexecuted store to the same location
 * exists, in which case the load blocks on that store and forwards
 * from it when it executes. This is the behaviour the paper assumes
 * from the scalable LSQ proposals it cites ([12]-[14]).
 */

#ifndef KILO_CORE_LSQ_HH
#define KILO_CORE_LSQ_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/core/dyn_inst.hh"

namespace kilo::core
{

/** Result of a load's disambiguation check. */
struct LoadCheck
{
    enum class Kind : uint8_t
    {
        Memory,    ///< no conflict; access the hierarchy
        Forward,   ///< forward from an executed older store
        Blocked,   ///< wait for an older store to execute
    };

    Kind kind = Kind::Memory;
    DynInstPtr store;  ///< conflicting store for Forward/Blocked
};

/** Unified LSQ model. */
class Lsq
{
  public:
    explicit Lsq(size_t capacity);

    size_t capacity() const { return cap; }
    size_t size() const { return entries.size(); }
    bool full() const { return entries.size() >= cap; }

    /** Allocate an entry at dispatch (program order). */
    void insert(const DynInstPtr &inst);

    /** Disambiguate @p load against older stores. */
    LoadCheck checkLoad(const DynInstPtr &load) const;

    /** Release completed entries from the head. */
    void retireCompleted();

    /** @p inst was squashed; must be the youngest entry. */
    void notifySquashed(const DynInstPtr &inst);

    /** Total store-to-load forwards observed. */
    uint64_t forwards() const { return nForwards; }

    /** Count one forward (called by the core on a Forward result). */
    void countForward() { ++nForwards; }

  private:
    static uint64_t keyOf(uint64_t addr) { return addr >> 3; }

    void removeFromIndex(const DynInstPtr &store);

    size_t cap;
    std::deque<DynInstPtr> entries;
    /** 8-byte-granule address -> stores in program order. */
    std::unordered_map<uint64_t, std::vector<DynInstPtr>> storeIndex;
    uint64_t nForwards = 0;
};

} // namespace kilo::core

#endif // KILO_CORE_LSQ_HH
