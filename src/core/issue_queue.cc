#include "src/core/issue_queue.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace kilo::core
{

const char *
schedPolicyName(SchedPolicy policy)
{
    return policy == SchedPolicy::InOrder ? "INO" : "OOO";
}

IssueQueue::IssueQueue(std::string name, size_t capacity,
                       SchedPolicy policy, InstArena &inst_arena)
    : arena(inst_arena), label(std::move(name)),
      cap(capacity ? capacity : 1), sched(policy)
{}

void
IssueQueue::heapPush(ReadyEntry entry)
{
    readyHeap.push_back(entry);
    std::push_heap(readyHeap.begin(), readyHeap.end(), OlderSeq());
}

void
IssueQueue::heapPop()
{
    std::pop_heap(readyHeap.begin(), readyHeap.end(), OlderSeq());
    readyHeap.pop_back();
}

void
IssueQueue::beginCycle()
{
    stalledThisCycle = false;
    for (auto &entry : deferred)
        heapPush(entry);
    deferred.clear();
}

void
IssueQueue::insert(InstRef ref)
{
    DynInst &inst = arena.get(ref);
    KILO_ASSERT(!full(), "insert into full issue queue %s",
                label.c_str());
    KILO_ASSERT(id_ >= 0, "issue queue %s never registered",
                label.c_str());
    KILO_ASSERT(inst.iqId < 0, "instruction already in a queue");
    inst.iqId = id_;
    ++count;
    if (sched == SchedPolicy::InOrder)
        fifo.push_back(ref);
    if (inst.readyFlag && !inst.issued) {
        ++readyCount;
        if (sched == SchedPolicy::OutOfOrder)
            heapPush({inst.seq, ref});
    }
}

void
IssueQueue::markReady(InstRef ref)
{
    DynInst &inst = arena.get(ref);
    KILO_ASSERT(inst.iqId == id_, "markReady on non-resident inst");
    if (inst.issued)
        return;
    ++readyCount;
    if (sched == SchedPolicy::OutOfOrder)
        heapPush({inst.seq, ref});
}

InstRef
IssueQueue::popReady(uint64_t now)
{
    (void)now;
    if (sched == SchedPolicy::InOrder) {
        if (stalledThisCycle || fifo.empty())
            return InstRef();
        InstRef head = fifo.front();
        DynInst &inst = arena.get(head);
        if (!inst.readyFlag || inst.issued)
            return InstRef();
        // Head-only selection: returning it without removal; the
        // caller resolves via removeIssued/requeue/droppedNotReady.
        // Guard against re-selection within the cycle.
        stalledThisCycle = true;
        return head;
    }

    while (!readyHeap.empty()) {
        InstRef ref = readyHeap.front().ref;
        heapPop();
        // Lazy deletion: skip entries whose instruction issued,
        // left this queue, or was squashed and recycled (stale).
        DynInst *inst = arena.tryGet(ref);
        if (!inst || inst->iqId != id_ || inst->issued ||
            inst->squashed || !inst->readyFlag) {
            continue;
        }
        return ref;
    }
    return InstRef();
}

void
IssueQueue::requeue(InstRef ref)
{
    if (sched == SchedPolicy::OutOfOrder) {
        deferred.push_back({arena.get(ref).seq, ref});
    }
    // InOrder: the head stays in place; stalledThisCycle already set.
}

void
IssueQueue::droppedNotReady(InstRef ref)
{
    KILO_ASSERT(readyCount > 0, "droppedNotReady underflow in %s",
                label.c_str());
    --readyCount;
    (void)ref;
}

void
IssueQueue::removeIssued(InstRef ref)
{
    DynInst &inst = arena.get(ref);
    KILO_ASSERT(inst.iqId == id_, "removeIssued on non-resident inst");
    KILO_ASSERT(readyCount > 0, "removeIssued underflow in %s",
                label.c_str());
    --readyCount;
    --count;
    inst.iqId = -1;
    if (sched == SchedPolicy::InOrder) {
        KILO_ASSERT(!fifo.empty() && fifo.front() == ref,
                    "in-order queue issued non-head instruction");
        fifo.pop_front();
        // The next head may issue in the same cycle.
        stalledThisCycle = false;
    }
}

void
IssueQueue::eraseFromFifo(InstRef ref)
{
    for (size_t i = 0; i < fifo.size(); ++i) {
        if (fifo[i] == ref) {
            fifo.erase(i);
            return;
        }
    }
    KILO_PANIC("instruction missing from fifo %s", label.c_str());
}

void
IssueQueue::erase(InstRef ref)
{
    DynInst &inst = arena.get(ref);
    KILO_ASSERT(inst.iqId == id_, "erase on non-resident inst");
    if (inst.readyFlag && !inst.issued) {
        KILO_ASSERT(readyCount > 0, "erase underflow in %s",
                    label.c_str());
        --readyCount;
    }
    --count;
    inst.iqId = -1;
    if (sched == SchedPolicy::InOrder)
        eraseFromFifo(ref);
}

InstRef
IssueQueue::debugFront() const
{
    return fifo.empty() ? InstRef() : fifo.front();
}

void
IssueQueue::notifySquashed(InstRef ref)
{
    DynInst &inst = arena.get(ref);
    KILO_ASSERT(inst.iqId == id_, "squash notify on non-resident inst");
    if (inst.readyFlag && !inst.issued) {
        KILO_ASSERT(readyCount > 0, "squash underflow in %s",
                    label.c_str());
        --readyCount;
    }
    --count;
    inst.iqId = -1;
    if (sched == SchedPolicy::InOrder)
        eraseFromFifo(ref);
}

namespace
{

// Element-wise: ReadyEntry has tail padding after its InstRef, and
// indeterminate padding bytes must never reach a checkpoint payload
// or a KILOAUD state digest. (Templated on the vector so the private
// nested type never has to be named here.)
template <typename V>
void
saveEntries(ckpt::Sink &s, const V &v)
{
    s.scalar(uint64_t(v.size()));
    for (const auto &e : v) {
        s.scalar(e.seq);
        s.scalar(e.ref);
    }
}

template <typename V>
void
loadEntries(ckpt::Source &s, V &v)
{
    uint64_t n = s.scalar<uint64_t>();
    v.clear();
    v.reserve(size_t(n));
    for (uint64_t i = 0; i < n; ++i) {
        typename V::value_type e;
        e.seq = s.scalar<uint64_t>();
        e.ref = s.scalar<InstRef>();
        v.push_back(e);
    }
}

} // anonymous namespace

void
IssueQueue::save(ckpt::Sink &s) const
{
    s.scalar(uint64_t(count));
    s.scalar(uint64_t(readyCount));
    saveEntries(s, readyHeap);
    saveEntries(s, deferred);
    fifo.save(s);
    s.scalar(uint8_t(stalledThisCycle));
}

void
IssueQueue::load(ckpt::Source &s)
{
    count = size_t(s.scalar<uint64_t>());
    readyCount = size_t(s.scalar<uint64_t>());
    if (count > cap)
        throw ckpt::CheckpointError(
            "issue queue " + label +
            " checkpoint exceeds configured capacity");
    loadEntries(s, readyHeap);
    loadEntries(s, deferred);
    fifo.load(s);
    stalledThisCycle = s.scalar<uint8_t>() != 0;
}

} // namespace kilo::core
