#include "src/core/issue_queue.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace kilo::core
{

const char *
schedPolicyName(SchedPolicy policy)
{
    return policy == SchedPolicy::InOrder ? "INO" : "OOO";
}

IssueQueue::IssueQueue(std::string name, size_t capacity,
                       SchedPolicy policy)
    : label(std::move(name)), cap(capacity ? capacity : 1),
      sched(policy)
{}

void
IssueQueue::beginCycle()
{
    stalledThisCycle = false;
    for (auto &inst : deferred)
        readyHeap.push(inst);
    deferred.clear();
}

void
IssueQueue::insert(const DynInstPtr &inst)
{
    KILO_ASSERT(!full(), "insert into full issue queue %s",
                label.c_str());
    KILO_ASSERT(inst->iq == nullptr, "instruction already in a queue");
    inst->iq = this;
    ++count;
    if (sched == SchedPolicy::InOrder)
        fifo.push_back(inst);
    if (inst->readyFlag && !inst->issued) {
        ++readyCount;
        if (sched == SchedPolicy::OutOfOrder)
            readyHeap.push(inst);
    }
}

void
IssueQueue::markReady(const DynInstPtr &inst)
{
    KILO_ASSERT(inst->iq == this, "markReady on non-resident inst");
    if (inst->issued)
        return;
    ++readyCount;
    if (sched == SchedPolicy::OutOfOrder)
        readyHeap.push(inst);
}

DynInstPtr
IssueQueue::popReady(uint64_t now)
{
    (void)now;
    if (sched == SchedPolicy::InOrder) {
        if (stalledThisCycle || fifo.empty())
            return nullptr;
        DynInstPtr head = fifo.front();
        if (!head->readyFlag || head->issued)
            return nullptr;
        // Head-only selection: returning it without removal; the
        // caller resolves via removeIssued/requeue/droppedNotReady.
        // Guard against re-selection within the cycle.
        stalledThisCycle = true;
        return head;
    }

    while (!readyHeap.empty()) {
        DynInstPtr inst = readyHeap.top();
        readyHeap.pop();
        // Lazy deletion: skip stale entries.
        if (inst->iq != this || inst->issued || inst->squashed ||
            !inst->readyFlag) {
            continue;
        }
        return inst;
    }
    return nullptr;
}

void
IssueQueue::requeue(const DynInstPtr &inst)
{
    if (sched == SchedPolicy::OutOfOrder) {
        deferred.push_back(inst);
    }
    // InOrder: the head stays in place; stalledThisCycle already set.
    (void)inst;
}

void
IssueQueue::droppedNotReady(const DynInstPtr &inst)
{
    KILO_ASSERT(readyCount > 0, "droppedNotReady underflow in %s",
                label.c_str());
    --readyCount;
    (void)inst;
}

void
IssueQueue::removeIssued(const DynInstPtr &inst)
{
    KILO_ASSERT(inst->iq == this, "removeIssued on non-resident inst");
    KILO_ASSERT(readyCount > 0, "removeIssued underflow in %s",
                label.c_str());
    --readyCount;
    --count;
    inst->iq = nullptr;
    if (sched == SchedPolicy::InOrder) {
        KILO_ASSERT(!fifo.empty() && fifo.front() == inst,
                    "in-order queue issued non-head instruction");
        fifo.pop_front();
        // The next head may issue in the same cycle.
        stalledThisCycle = false;
    }
}

void
IssueQueue::eraseFromFifo(const DynInstPtr &inst)
{
    auto it = std::find(fifo.begin(), fifo.end(), inst);
    KILO_ASSERT(it != fifo.end(), "instruction missing from fifo %s",
                label.c_str());
    fifo.erase(it);
}

void
IssueQueue::erase(const DynInstPtr &inst)
{
    KILO_ASSERT(inst->iq == this, "erase on non-resident inst");
    if (inst->readyFlag && !inst->issued) {
        KILO_ASSERT(readyCount > 0, "erase underflow in %s",
                    label.c_str());
        --readyCount;
    }
    --count;
    inst->iq = nullptr;
    if (sched == SchedPolicy::InOrder)
        eraseFromFifo(inst);
}

DynInstPtr
IssueQueue::debugFront() const
{
    return fifo.empty() ? nullptr : fifo.front();
}

void
IssueQueue::notifySquashed(const DynInstPtr &inst)
{
    KILO_ASSERT(inst->iq == this, "squash notify on non-resident inst");
    if (inst->readyFlag && !inst->issued) {
        KILO_ASSERT(readyCount > 0, "squash underflow in %s",
                    label.c_str());
        --readyCount;
    }
    --count;
    inst->iq = nullptr;
    if (sched == SchedPolicy::InOrder)
        eraseFromFifo(inst);
}

} // namespace kilo::core
