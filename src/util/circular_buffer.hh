/**
 * @file
 * Fixed-capacity circular FIFO used for ROBs, LLIBs and value queues.
 *
 * The hardware structures modelled by the simulator are all circular
 * buffers with head and tail pointers; this template mirrors that
 * organisation so that capacity limits and head-of-queue blocking are
 * modelled naturally.
 */

#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

#include "src/util/logging.hh"

namespace kilo
{

/**
 * Bounded circular FIFO with stable logical indexing.
 *
 * Elements are addressed both positionally (0 == head) and can be
 * popped from the back to support squashing the youngest entries,
 * which is exactly the operation a ROB walk performs on recovery.
 */
template <typename T>
class CircularBuffer
{
  public:
    /** Create a buffer holding at most @p capacity elements. */
    explicit CircularBuffer(size_t capacity)
        : store(capacity ? capacity : 1), cap(capacity ? capacity : 1)
    {}

    /** Number of valid elements. */
    size_t size() const { return count; }

    /** Maximum number of elements. */
    size_t capacity() const { return cap; }

    /** True when no elements are present. */
    bool empty() const { return count == 0; }

    /** True when no further push is possible. */
    bool full() const { return count == cap; }

    /** Free slots remaining. */
    size_t space() const { return cap - count; }

    /** Append at the tail. The buffer must not be full. */
    void
    pushBack(const T &value)
    {
        KILO_ASSERT(!full(), "pushBack on full CircularBuffer");
        store[(head + count) % cap] = value;
        ++count;
    }

    /** Remove and return the head element. */
    T
    popFront()
    {
        KILO_ASSERT(!empty(), "popFront on empty CircularBuffer");
        T value = store[head];
        store[head] = T();
        head = (head + 1) % cap;
        --count;
        return value;
    }

    /** Remove and return the tail element (squash path). */
    T
    popBack()
    {
        KILO_ASSERT(!empty(), "popBack on empty CircularBuffer");
        size_t idx = (head + count - 1) % cap;
        T value = store[idx];
        store[idx] = T();
        --count;
        return value;
    }

    /** Head element (oldest). */
    T &
    front()
    {
        KILO_ASSERT(!empty(), "front on empty CircularBuffer");
        return store[head];
    }

    const T &
    front() const
    {
        KILO_ASSERT(!empty(), "front on empty CircularBuffer");
        return store[head];
    }

    /** Tail element (youngest). */
    T &
    back()
    {
        KILO_ASSERT(!empty(), "back on empty CircularBuffer");
        return store[(head + count - 1) % cap];
    }

    /** Positional access; index 0 is the head. */
    T &
    at(size_t pos)
    {
        KILO_ASSERT(pos < count, "CircularBuffer index out of range");
        return store[(head + pos) % cap];
    }

    const T &
    at(size_t pos) const
    {
        KILO_ASSERT(pos < count, "CircularBuffer index out of range");
        return store[(head + pos) % cap];
    }

    /** Drop every element. */
    void
    clear()
    {
        while (!empty())
            popFront();
    }

    /**
     * Serialize / restore contents in logical (head-first) order.
     * Capacity is configuration, not state: load() asserts the
     * restored population fits the configured capacity. @{
     */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "CircularBuffer::save requires a POD element");
        std::vector<T> linear(count);
        for (size_t i = 0; i < count; ++i)
            linear[i] = at(i);
        s.podVector(linear);
    }

    template <typename Source>
    void
    load(Source &s)
    {
        std::vector<T> linear;
        s.podVector(linear);
        KILO_ASSERT(linear.size() <= cap,
                    "CircularBuffer checkpoint exceeds capacity");
        clear();
        for (const T &value : linear)
            pushBack(value);
    }
    /** @} */

  private:
    std::vector<T> store;
    size_t cap;
    size_t head = 0;
    size_t count = 0;
};

} // namespace kilo

