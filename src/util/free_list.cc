#include "src/util/free_list.hh"

#include "src/util/logging.hh"

namespace kilo
{

FreeList::FreeList(uint32_t num_slots, Order alloc_order)
    : total(num_slots), order(alloc_order),
      allocated(num_slots, false)
{
    pushInitialRange(0, num_slots);
}

void
FreeList::pushInitialRange(uint32_t lo, uint32_t hi)
{
    // Hand out low indices first for reproducibility: LIFO pops the
    // back, FIFO pops the front.
    if (order == Order::Lifo) {
        for (uint32_t i = hi; i > lo; --i)
            free.push_back(i - 1);
    } else {
        for (uint32_t i = lo; i < hi; ++i)
            free.push_back(i);
    }
}

uint32_t
FreeList::alloc()
{
    KILO_ASSERT(hasFree(), "FreeList::alloc with no free slots");
    uint32_t idx;
    if (order == Order::Lifo) {
        idx = free.back();
        free.pop_back();
    } else {
        idx = free.front();
        free.pop_front();
    }
    allocated[idx] = true;
    return idx;
}

void
FreeList::release(uint32_t idx)
{
    KILO_ASSERT(idx < total, "FreeList::release out of range");
    KILO_ASSERT(allocated[idx], "FreeList::release of free slot");
    allocated[idx] = false;
    free.push_back(idx);
}

void
FreeList::grow(uint32_t extra)
{
    uint32_t new_total = total + extra;
    allocated.resize(new_total, false);
    if (order == Order::Lifo) {
        // New slots join ahead of existing free ones, preserving the
        // low-indices-first handout among themselves.
        for (uint32_t i = new_total; i > total; --i)
            free.push_back(i - 1);
    } else {
        for (uint32_t i = total; i < new_total; ++i)
            free.push_back(i);
    }
    total = new_total;
}

void
FreeList::reset()
{
    free.clear();
    pushInitialRange(0, total);
    for (size_t i = 0; i < allocated.size(); ++i)
        allocated[i] = false;
}

} // namespace kilo
