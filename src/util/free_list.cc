#include "src/util/free_list.hh"

#include "src/util/logging.hh"

namespace kilo
{

FreeList::FreeList(uint32_t num_slots)
    : total(num_slots), allocated(num_slots, false)
{
    free.reserve(num_slots);
    // Hand out low indices first for reproducibility.
    for (uint32_t i = num_slots; i > 0; --i)
        free.push_back(i - 1);
}

uint32_t
FreeList::alloc()
{
    KILO_ASSERT(hasFree(), "FreeList::alloc with no free slots");
    uint32_t idx = free.back();
    free.pop_back();
    allocated[idx] = true;
    return idx;
}

void
FreeList::release(uint32_t idx)
{
    KILO_ASSERT(idx < total, "FreeList::release out of range");
    KILO_ASSERT(allocated[idx], "FreeList::release of free slot");
    allocated[idx] = false;
    free.push_back(idx);
}

void
FreeList::reset()
{
    free.clear();
    for (uint32_t i = total; i > 0; --i)
        free.push_back(i - 1);
    for (size_t i = 0; i < allocated.size(); ++i)
        allocated[i] = false;
}

} // namespace kilo
