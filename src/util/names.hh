/**
 * @file
 * Name-matching helper shared by the preset registries
 * (sim::MachineConfig::byName, mem::MemConfig::byName): one place
 * for the comparison rule, so the registries cannot drift apart.
 */

#pragma once

#include <cctype>
#include <string>

namespace kilo::util
{

/** Case-insensitive equality (ASCII; preset names are ASCII). */
inline bool
iequals(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::tolower((unsigned char)a[i]) !=
            std::tolower((unsigned char)b[i]))
            return false;
    }
    return true;
}

} // namespace kilo::util

