#include "src/util/bit_vector.hh"

#include <bit>

#include "src/util/logging.hh"

namespace kilo
{

BitVector::BitVector(size_t n)
    : bits(n), words((n + 63) / 64, 0)
{}

void
BitVector::set(size_t idx)
{
    KILO_ASSERT(idx < bits, "BitVector::set out of range");
    words[idx / 64] |= (uint64_t(1) << (idx % 64));
}

void
BitVector::clear(size_t idx)
{
    KILO_ASSERT(idx < bits, "BitVector::clear out of range");
    words[idx / 64] &= ~(uint64_t(1) << (idx % 64));
}

bool
BitVector::test(size_t idx) const
{
    KILO_ASSERT(idx < bits, "BitVector::test out of range");
    return (words[idx / 64] >> (idx % 64)) & 1;
}

void
BitVector::clearAll()
{
    for (auto &w : words)
        w = 0;
}

size_t
BitVector::popcount() const
{
    size_t n = 0;
    for (auto w : words)
        n += std::popcount(w);
    return n;
}

} // namespace kilo
